// Nfslab: run the Modified Andrew Benchmark over NFS for every client ×
// server combination — the full matrix behind the paper's Tables 6 and 7,
// including the combinations the authors lacked hardware for (§10: "We
// did not test FreeBSD or Solaris as servers, since we do not have the
// extra equipment available"). The simulation has no such constraint.
//
//	go run ./examples/nfslab
package main

import (
	"fmt"

	"repro/internal/bench"
	"repro/internal/disk"
	"repro/internal/netstack"
	"repro/internal/nfs"
	"repro/internal/osprofile"
	"repro/internal/sim"
)

func mustServer(s *nfs.Server, err error) *nfs.Server {
	if err != nil {
		panic(err)
	}
	return s
}

func main() {
	clients := osprofile.Paper()
	servers := []struct {
		name string
		make func() *nfs.Server
	}{
		{"Linux 1.2.8", func() *nfs.Server { return bench.NewNFSServer(bench.ServerLinux, 7) }},
		{"SunOS 4.1.4", func() *nfs.Server { return bench.NewNFSServer(bench.ServerSunOS, 7) }},
		// The combinations the paper could not run:
		{"FreeBSD 2.0.5R", func() *nfs.Server {
			return mustServer(nfs.NewServer(osprofile.FreeBSD205(), disk.QuantumEmpire2100(), 7))
		}},
		{"Solaris 2.4", func() *nfs.Server {
			return mustServer(nfs.NewServer(osprofile.Solaris24(), disk.QuantumEmpire2100(), 7))
		}},
	}

	fmt.Println("MAB over NFS, seconds (client rows × server columns):")
	fmt.Printf("%-18s", "")
	for _, s := range servers {
		fmt.Printf(" %16s", s.name)
	}
	fmt.Println()
	for _, c := range clients {
		fmt.Printf("%-18s", c.String())
		for _, s := range servers {
			server := s.make()
			clock := &sim.Clock{}
			opts := nfs.MountOptions{}
			if server.OS().NFS.RequiresPrivPort && !c.NFS.SendsPrivPort {
				opts.ResvPort = true // the §11 workaround
			}
			mount, err := nfs.NewMount(clock, c, server, netstack.Ethernet10(), opts)
			if err != nil {
				fmt.Printf(" %16s", "mount error")
				continue
			}
			res := bench.MABOn(clock, mount, c, bench.DefaultMAB())
			fmt.Printf(" %16.2f", res.Total.Seconds())
		}
		fmt.Println()
	}

	fmt.Println()
	fmt.Println("Paper landmarks: Table 6 (Linux server) F 53.24 / L 57.73 / S 58.38;")
	fmt.Println("Table 7 (SunOS server) F 67.60 / S 87.94 / L 115.06.")
	fmt.Println()
	fmt.Println("Note how every client slows on the spec-compliant synchronous servers")
	fmt.Println("(SunOS, FreeBSD, Solaris columns) and how the Linux client collapses")
	fmt.Println("against all of them: 1 KB-class foreign transfers, no pipelining, no")
	fmt.Println("client-side caching.")
}
