// Customos: define a hypothetical operating-system personality — one that
// combines the best trait of each 1995 system — and benchmark it against
// the paper's three on the same simulated hardware.
//
// The hypothetical takes Linux's syscall path and scheduler constants,
// ext2's asynchronous metadata, FreeBSD's networking, and a sane TCP
// window. The interesting output is how far ahead such a chimera would
// have been on every exhibit at once, which none of the real systems was.
//
//	go run ./examples/customos
package main

import (
	"fmt"

	"repro/internal/bench"
	"repro/internal/osprofile"
)

// chimera95 builds the hypothetical personality.
func chimera95() *osprofile.Profile {
	p := osprofile.Linux128() // fast syscalls, cheap switches, async ext2
	p.Name, p.Version = "Chimera", "'95"
	p.Lineage = "hypothetical: Linux kernel costs + ext2 metadata + BSD network stack"

	// Graft FreeBSD's network stack and a real TCP window.
	fb := osprofile.FreeBSD205()
	p.Net = fb.Net
	p.Net.TCPWindowPackets = 22 // a 32 KB socket buffer

	// And its buffer-cache efficiency for large files.
	p.FS.SeqReadEff = fb.FS.SeqReadEff
	p.FS.SeqWriteEff = fb.FS.SeqWriteEff
	p.FS.WritePerKB = fb.FS.WritePerKB
	p.FS.AllocPerCall = fb.FS.AllocPerCall
	p.FS.AttrCache = true
	return p
}

func main() {
	plat := bench.PaperPlatform()
	systems := append(osprofile.Paper(), chimera95())

	fmt.Println("A hypothetical best-of-1995 UNIX against the paper's three:")
	fmt.Println()
	fmt.Printf("%-18s %10s %10s %10s %10s %10s\n",
		"system", "getpid µs", "ctx@2 µs", "pipe Mb/s", "TCP Mb/s", "crtdel ms")
	for _, p := range systems {
		getpid := bench.Getpid(plat, p).Microseconds()
		ctx := bench.Ctx(plat, p, 2, bench.CtxRing).Microseconds()
		pipe := bench.BwPipe(plat, p)
		tcp := bench.BwTCP(p, 0)
		crtdel := bench.Crtdel(plat, p, 1024, 7).Milliseconds()
		fmt.Printf("%-18s %10.2f %10.1f %10.2f %10.2f %10.2f\n",
			p.String(), getpid, ctx, pipe, tcp, crtdel)
	}

	fmt.Println()
	fmt.Println("MAB (local), the closest thing to overall performance:")
	for _, p := range systems {
		r := bench.MAB(plat, p, bench.DefaultMAB(), 7)
		fmt.Printf("  %-18s %6.2f s  (phases: mkdir %.2f, copy %.2f, stat %.2f, read %.2f, compile %.2f)\n",
			p.String(), r.Total.Seconds(),
			r.Phase[0].Seconds(), r.Phase[1].Seconds(), r.Phase[2].Seconds(),
			r.Phase[3].Seconds(), r.Phase[4].Seconds())
	}

	fmt.Println()
	fmt.Println("The paper's conclusion holds: each real system wins somewhere, none")
	fmt.Println("everywhere — but the deficits were all fixable, as the chimera shows")
	fmt.Println("(and as the §13 future versions soon did).")
}
