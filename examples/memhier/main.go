// Memhier: explore the Pentium memory-hierarchy model behind §6 of the
// paper. Sweeps the custom read/write/copy routines across buffer sizes,
// shows the 8 KB / 256 KB plateaus and the write-allocate effect, and
// prints the cache traffic statistics that explain them.
//
//	go run ./examples/memhier
package main

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/cpu"
	"repro/internal/memmodel"
)

func main() {
	c := cpu.PentiumP54C100()
	fmt.Printf("CPU: %s\n", c)
	cfg := cache.PentiumConfig()
	fmt.Printf("L1: %d KB %d-way   L2: %d KB %d-way   line %d B   write-allocate: %v\n\n",
		cfg.L1Size>>10, cfg.L1Assoc, cfg.L2Size>>10, cfg.L2Assoc, cfg.LineSize, cfg.WriteAllocate)

	sizes := []int{2 << 10, 8 << 10, 32 << 10, 256 << 10, 1 << 20, 8 << 20}

	fmt.Printf("%-26s", "bandwidth (MB/s) at size:")
	for _, s := range sizes {
		fmt.Printf(" %8s", human(s))
	}
	fmt.Println()
	for r := memmodel.CustomRead; r <= memmodel.PrefetchCopy; r++ {
		fmt.Printf("%-26s", r.String())
		for _, s := range sizes {
			m := memmodel.NewModel(c, cfg)
			fmt.Printf(" %8.1f", m.Bandwidth(r, s))
		}
		fmt.Println()
	}

	// Why is memset slow? Show the traffic.
	fmt.Println("\nWhere memset's cycles go (1 MB buffer, no write-allocate):")
	m := memmodel.NewModel(c, cfg)
	m.Bandwidth(memmodel.Memset, 1<<20)
	st := m.Hierarchy().Stats()
	fmt.Printf("  memory word writes: %d (every store is an individual bus transaction)\n", st.MemWordWrites)
	fmt.Printf("  lines filled:       %d (writes never allocate)\n", st.LinesFilledFromMem+st.LinesFilledFromL2)

	fmt.Println("\nThe same machine with a write-allocate cache (ablation A1):")
	waCfg := cfg
	waCfg.WriteAllocate = true
	for _, r := range []memmodel.Routine{memmodel.Memset, memmodel.LibcMemcpy} {
		fmt.Printf("  %-14s", r.String())
		for _, s := range sizes {
			m := memmodel.NewModel(c, waCfg)
			fmt.Printf(" %8.1f", m.Bandwidth(r, s))
		}
		fmt.Println()
	}

	fmt.Println("\nPrefetch distance on the prefetching write, 2 MB buffer (ablation A2):")
	for _, d := range []int{0, 1, 2, 4, 8} {
		m := memmodel.NewModel(c, cfg)
		m.PrefetchDistance = d
		fmt.Printf("  distance %d: %6.1f MB/s\n", d, m.Bandwidth(memmodel.PrefetchWrite, 2<<20))
	}

	fmt.Println("\nThe §6.4 tail-loop dip (sizes just under a 16-byte multiple):")
	for _, s := range []int{512, 527, 1024, 1039} {
		m := memmodel.NewModel(c, cfg)
		fmt.Printf("  read %5d bytes: %6.1f MB/s\n", s, m.Bandwidth(memmodel.CustomRead, s))
	}
}

func human(n int) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%dMB", n>>20)
	case n >= 1<<10:
		return fmt.Sprintf("%dKB", n>>10)
	}
	return fmt.Sprintf("%dB", n)
}
