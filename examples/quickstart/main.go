// Quickstart: run the paper's headline tables and one figure on the
// simulated Pentium and print them in the paper's format.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/report"
)

func main() {
	cfg := core.DefaultConfig() // Linux 1.2.8, FreeBSD 2.0.5R, Solaris 2.4; 20 runs

	fmt.Println("Reproducing Lai & Baker (USENIX '96) on the simulated Pentium P54C-100.")
	fmt.Println()

	for _, id := range []string{"T2", "T4", "T5", "F12"} {
		exp, ok := core.Lookup(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "missing experiment %s\n", id)
			os.Exit(1)
		}
		report.Render(os.Stdout, exp.Run(cfg))
		fmt.Println()
	}

	fmt.Println("Run `go run ./cmd/pentiumbench run all` for every table and figure.")
}
