// Package repro's root benchmarks regenerate every table and figure of
// the paper, one testing.B benchmark per exhibit (DESIGN.md §4), plus the
// §5 ablations. Each benchmark runs the full twenty-run experiment and
// reports the headline numbers as custom metrics, so
//
//	go test -bench=. -benchmem
//
// reproduces the entire evaluation and prints the values EXPERIMENTS.md
// records. Wall-clock time per op is the cost of simulating the exhibit,
// not the simulated quantity; read the custom metrics.
package repro

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/nfsserver"
	"repro/internal/osprofile"
)

// runExhibit executes one experiment per b.N iteration and attaches the
// result means as custom metrics.
func runExhibit(b *testing.B, id string) {
	b.Helper()
	exp, ok := core.Lookup(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	cfg := core.DefaultConfig()
	var res *core.Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res = exp.Run(cfg)
	}
	b.StopTimer()
	unit := metricUnit(res.YUnit)
	for _, s := range res.Series {
		label := metricLabel(s.Label)
		if len(s.X) == 0 {
			b.ReportMetric(s.Samples[0].Mean(), label+"_"+unit)
			continue
		}
		// For figures, report first and peak points.
		first := s.Samples[0].Mean()
		peak := first
		for _, smp := range s.Samples {
			if m := smp.Mean(); m > peak {
				peak = m
			}
		}
		b.ReportMetric(first, label+"_first_"+unit)
		b.ReportMetric(peak, label+"_peak_"+unit)
	}
}

func metricLabel(s string) string {
	s = strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			return r
		default:
			return '-'
		}
	}, s)
	return strings.Trim(s, "-")
}

func metricUnit(u string) string {
	return strings.NewReplacer("µ", "u", "/", "p", " ", "-").Replace(u)
}

// Tables.

func BenchmarkTable2SystemCall(b *testing.B)    { runExhibit(b, "T2") }
func BenchmarkTable3MABLocal(b *testing.B)      { runExhibit(b, "T3") }
func BenchmarkTable4PipeBandwidth(b *testing.B) { runExhibit(b, "T4") }
func BenchmarkTable5TCPBandwidth(b *testing.B)  { runExhibit(b, "T5") }
func BenchmarkTable6MABNFSLinux(b *testing.B)   { runExhibit(b, "T6") }
func BenchmarkTable7MABNFSSunOS(b *testing.B)   { runExhibit(b, "T7") }

// Figures.

func BenchmarkFigure1ContextSwitch(b *testing.B) { runExhibit(b, "F1") }
func BenchmarkFigure2CustomRead(b *testing.B)    { runExhibit(b, "F2") }
func BenchmarkFigure3Memset(b *testing.B)        { runExhibit(b, "F3") }
func BenchmarkFigure4NaiveWrite(b *testing.B)    { runExhibit(b, "F4") }
func BenchmarkFigure5PrefetchWrite(b *testing.B) { runExhibit(b, "F5") }
func BenchmarkFigure6Memcpy(b *testing.B)        { runExhibit(b, "F6") }
func BenchmarkFigure7NaiveCopy(b *testing.B)     { runExhibit(b, "F7") }
func BenchmarkFigure8PrefetchCopy(b *testing.B)  { runExhibit(b, "F8") }
func BenchmarkFigure9BonnieRead(b *testing.B)    { runExhibit(b, "F9") }
func BenchmarkFigure10BonnieWrite(b *testing.B)  { runExhibit(b, "F10") }
func BenchmarkFigure11BonnieSeek(b *testing.B)   { runExhibit(b, "F11") }
func BenchmarkFigure12CreateDelete(b *testing.B) { runExhibit(b, "F12") }
func BenchmarkFigure13UDP(b *testing.B)          { runExhibit(b, "F13") }

// Ablations (DESIGN.md §5).

func BenchmarkAblationWriteAllocate(b *testing.B)    { runExhibit(b, "A1") }
func BenchmarkAblationPrefetchDistance(b *testing.B) { runExhibit(b, "A2") }
func BenchmarkAblationScheduler(b *testing.B)        { runExhibit(b, "A3") }
func BenchmarkAblationMetadataPolicy(b *testing.B)   { runExhibit(b, "A4") }
func BenchmarkAblationTCPWindow(b *testing.B)        { runExhibit(b, "A5") }
func BenchmarkAblationNFSWritePolicy(b *testing.B)   { runExhibit(b, "A6") }
func BenchmarkAblationMemoryPressure(b *testing.B)   { runExhibit(b, "A7") }

// Supplementary evidence exhibits.

func BenchmarkSupplementMABPhases(b *testing.B)     { runExhibit(b, "X1") }
func BenchmarkSupplementCrtdelDiskOps(b *testing.B) { runExhibit(b, "X2") }

// Scale-out exhibits: the full S1/S2 sweeps, then single server-model
// points at the populations the perf record tracks. The custom metric is
// the modelled served rate; ns/op is the cost of simulating the point.

func BenchmarkScaleThroughputSweep(b *testing.B) { runExhibit(b, "S1") }
func BenchmarkScaleLatencySweep(b *testing.B)    { runExhibit(b, "S2") }

// SMP and IPC exhibits (DESIGN.md §16).

func BenchmarkLockThroughputSweep(b *testing.B) { runExhibit(b, "L1") }
func BenchmarkLockWaitSweep(b *testing.B)       { runExhibit(b, "L2") }
func BenchmarkIPCBandwidthSweep(b *testing.B)   { runExhibit(b, "I1") }

func benchScalePoint(b *testing.B, clients int) {
	b.Helper()
	cfg := nfsserver.Config{Profile: osprofile.Linux128(), Clients: clients, Seed: 1}
	var res *nfsserver.Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res = nfsserver.Run(cfg)
	}
	b.StopTimer()
	b.ReportMetric(res.Throughput(), "modelled_opsps")
	b.ReportMetric(float64(res.Completed), "served_ops")
}

func BenchmarkScaleServer1kClients(b *testing.B) { benchScalePoint(b, 1_000) }
func BenchmarkScaleServer1MClients(b *testing.B) { benchScalePoint(b, 1_000_000) }

// Whole-suite benchmarks: the wall-clock cost of regenerating every
// exhibit. Serial is the seed harness's schedule (direct Run calls, no
// memo); Parallel is the core.Runner at the GOMAXPROCS default, which
// also memoizes shared cache-hierarchy sweeps. The "Harness performance"
// appendix of EXPERIMENTS.md records measured ratios.

func BenchmarkSuiteSerial(b *testing.B) {
	cfg := core.DefaultConfig()
	exps := core.All()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, e := range exps {
			if res := e.Run(cfg); res == nil {
				b.Fatalf("%s returned nil", e.ID)
			}
		}
	}
}

func BenchmarkSuiteParallel(b *testing.B) {
	cfg := core.DefaultConfig()
	exps := core.All()
	runner := core.NewRunner(0) // GOMAXPROCS workers
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results, _ := runner.RunAll(cfg, exps)
		if len(results) != len(exps) {
			b.Fatalf("got %d results, want %d", len(results), len(exps))
		}
	}
}

// TestEveryExhibitHasABenchmark cross-checks DESIGN.md's promise that each
// registered experiment has a root bench target.
func TestEveryExhibitHasABenchmark(t *testing.T) {
	covered := map[string]bool{
		"T2": true, "T3": true, "T4": true, "T5": true, "T6": true, "T7": true,
		"F1": true, "F2": true, "F3": true, "F4": true, "F5": true, "F6": true,
		"F7": true, "F8": true, "F9": true, "F10": true, "F11": true, "F12": true,
		"F13": true,
		"A1":  true, "A2": true, "A3": true, "A4": true, "A5": true, "A6": true, "A7": true,
		"X1": true, "X2": true,
		"S1": true, "S2": true,
		"L1": true, "L2": true, "I1": true,
	}
	for _, e := range core.All() {
		if !covered[e.ID] {
			t.Errorf("experiment %s has no root benchmark", e.ID)
		}
	}
}

// Example of reading one exhibit programmatically.
func Example() {
	exp, _ := core.Lookup("T2")
	res := exp.Run(core.DefaultConfig())
	for _, s := range res.Series {
		fmt.Printf("%s: %.2f %s\n", s.Label, s.Samples[0].Mean(), res.YUnit)
	}
	// Output:
	// Linux 1.2.8: 2.31 µs
	// FreeBSD 2.0.5R: 2.62 µs
	// Solaris 2.4: 3.49 µs
}
