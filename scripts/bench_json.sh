#!/bin/sh
# bench_json.sh [output.json] — machine-readable suite wall-clock timings.
#
# Builds pentiumbench from the working tree and times three suite
# configurations, best of three runs each:
#   cold   — `run all`, no persistent store (every experiment simulated)
#   fill   — `run all -memo <fresh dir>` (simulate + populate the store)
#   warm   — `run all -memo <filled dir>` (every experiment a store hit)
# The cold/warm outputs are also compared byte for byte; a mismatch fails
# the script, so the perf numbers can never come from divergent results.
#
# It also times the NFS scale-out sweeps (`scale`) at 10^3 and 10^6
# clients and records their wall times plus the modelled served rate at
# the sweep's top population (Linux personality), so the O(1)-per-op
# server model's speed has a trajectory too.
#
# Invoked by `make bench-json`, which writes BENCH_pr7.json — the
# perf-trajectory record this file format exists for.
set -eu

out="${1:-BENCH_pr7.json}"
runs=3
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

go build -o "$tmp/pentiumbench" ./cmd/pentiumbench

now_ms() { echo $(( $(date +%s%N) / 1000000 )); }

# time_cmd stdout cmd... — runs the command $runs times, leaving the
# per-run times (JSON array body) in $times and the best in $best_ms.
# Sets globals rather than echoing so no subshell swallows the results.
time_cmd() {
    stdout="$1"; shift
    times=""
    best_ms=""
    i=0
    while [ "$i" -lt "$runs" ]; do
        s=$(now_ms)
        "$@" > "$stdout" 2>/dev/null
        e=$(now_ms)
        d=$((e - s))
        times="${times}${times:+, }${d}"
        if [ -z "$best_ms" ] || [ "$d" -lt "$best_ms" ]; then best_ms=$d; fi
        i=$((i + 1))
    done
}

time_cmd "$tmp/cold.txt" "$tmp/pentiumbench" run all
cold_times="[$times]"; cold_best=$best_ms

time_cmd "$tmp/fill.txt" sh -c "rm -rf '$tmp/store'; exec '$tmp/pentiumbench' run all -memo '$tmp/store'"
fill_times="[$times]"; fill_best=$best_ms

time_cmd "$tmp/warm.txt" "$tmp/pentiumbench" run all -memo "$tmp/store"
warm_times="[$times]"; warm_best=$best_ms

cmp -s "$tmp/cold.txt" "$tmp/warm.txt" || {
    echo "bench_json: memo-warm output differs from cold output" >&2
    exit 1
}

time_cmd "$tmp/scale1k.txt" "$tmp/pentiumbench" -clients 1000 scale
scale1k_times="[$times]"; scale1k_best=$best_ms

time_cmd "$tmp/scale1m.txt" "$tmp/pentiumbench" -clients 1000000 scale
scale1m_times="[$times]"; scale1m_best=$best_ms

# Modelled served throughput (ops/s column) at the sweep's top
# population, first personality (Linux) — deterministic, so drift here
# is a result regression, not noise.
scale1k_opsps=$(awk '$1 == "1000"    { print $2; exit }' "$tmp/scale1k.txt")
scale1m_opsps=$(awk '$1 == "1000000" { print $2; exit }' "$tmp/scale1m.txt")

speedup=$(awk "BEGIN { printf \"%.1f\", $cold_best / ($warm_best > 0 ? $warm_best : 1) }")

cat > "$out" <<EOF
{
  "schema": 1,
  "go": "$(go env GOVERSION)",
  "suite": "run all",
  "runs_per_config": $runs,
  "cold_ms": $cold_times,
  "cold_best_ms": $cold_best,
  "memo_fill_ms": $fill_times,
  "memo_fill_best_ms": $fill_best,
  "memo_warm_ms": $warm_times,
  "memo_warm_best_ms": $warm_best,
  "warm_speedup": $speedup,
  "cold_warm_identical": true,
  "scale_1k_ms": $scale1k_times,
  "scale_1k_best_ms": $scale1k_best,
  "scale_1k_modelled_opsps": $scale1k_opsps,
  "scale_1m_ms": $scale1m_times,
  "scale_1m_best_ms": $scale1m_best,
  "scale_1m_modelled_opsps": $scale1m_opsps
}
EOF
echo "wrote $out: cold ${cold_best}ms, fill ${fill_best}ms, warm ${warm_best}ms (${speedup}x warm speedup), scale 10^3 ${scale1k_best}ms / 10^6 ${scale1m_best}ms"
