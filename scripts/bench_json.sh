#!/bin/sh
# bench_json.sh [output.json] — machine-readable suite wall-clock timings.
#
# Builds pentiumbench from the working tree and times three suite
# configurations, best of three runs each:
#   cold   — `run all`, no persistent store (every experiment simulated)
#   fill   — `run all -memo <fresh dir>` (simulate + populate the store)
#   warm   — `run all -memo <filled dir>` (every experiment a store hit)
# The cold/warm outputs are also compared byte for byte; a mismatch fails
# the script, so the perf numbers can never come from divergent results.
#
# Invoked by `make bench-json`, which writes BENCH_pr6.json — the
# perf-trajectory record this file format exists for.
set -eu

out="${1:-BENCH_pr6.json}"
runs=3
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

go build -o "$tmp/pentiumbench" ./cmd/pentiumbench

now_ms() { echo $(( $(date +%s%N) / 1000000 )); }

# time_cmd stdout cmd... — runs the command $runs times, leaving the
# per-run times (JSON array body) in $times and the best in $best_ms.
# Sets globals rather than echoing so no subshell swallows the results.
time_cmd() {
    stdout="$1"; shift
    times=""
    best_ms=""
    i=0
    while [ "$i" -lt "$runs" ]; do
        s=$(now_ms)
        "$@" > "$stdout" 2>/dev/null
        e=$(now_ms)
        d=$((e - s))
        times="${times}${times:+, }${d}"
        if [ -z "$best_ms" ] || [ "$d" -lt "$best_ms" ]; then best_ms=$d; fi
        i=$((i + 1))
    done
}

time_cmd "$tmp/cold.txt" "$tmp/pentiumbench" run all
cold_times="[$times]"; cold_best=$best_ms

time_cmd "$tmp/fill.txt" sh -c "rm -rf '$tmp/store'; exec '$tmp/pentiumbench' run all -memo '$tmp/store'"
fill_times="[$times]"; fill_best=$best_ms

time_cmd "$tmp/warm.txt" "$tmp/pentiumbench" run all -memo "$tmp/store"
warm_times="[$times]"; warm_best=$best_ms

cmp -s "$tmp/cold.txt" "$tmp/warm.txt" || {
    echo "bench_json: memo-warm output differs from cold output" >&2
    exit 1
}

speedup=$(awk "BEGIN { printf \"%.1f\", $cold_best / ($warm_best > 0 ? $warm_best : 1) }")

cat > "$out" <<EOF
{
  "schema": 1,
  "go": "$(go env GOVERSION)",
  "suite": "run all",
  "runs_per_config": $runs,
  "cold_ms": $cold_times,
  "cold_best_ms": $cold_best,
  "memo_fill_ms": $fill_times,
  "memo_fill_best_ms": $fill_best,
  "memo_warm_ms": $warm_times,
  "memo_warm_best_ms": $warm_best,
  "warm_speedup": $speedup,
  "cold_warm_identical": true
}
EOF
echo "wrote $out: cold ${cold_best}ms, fill ${fill_best}ms, warm ${warm_best}ms (${speedup}x warm speedup)"
