#!/bin/sh
# bench_json.sh [output.json] — machine-readable suite wall-clock timings.
#
# Builds pentiumbench from the working tree and times three suite
# configurations, best of three runs each:
#   cold   — `run all`, no persistent store (every experiment simulated)
#   fill   — `run all -memo <fresh dir>` (simulate + populate the store)
#   warm   — `run all -memo <filled dir>` (every experiment a store hit)
# The cold/warm outputs are also compared byte for byte; a mismatch fails
# the script, so the perf numbers can never come from divergent results.
#
# It also times the NFS scale-out sweeps (`scale`) at 10^3 and 10^6
# clients and records their wall times plus the modelled served rate at
# the sweep's top population (Linux personality), so the O(1)-per-op
# server model's speed has a trajectory too.
#
# Finally it load-tests `pentiumbench serve`: the server starts on a
# random port with the warm memo store, then scripts/serveload drives a
# memo-warm endpoint with concurrent clients and the achieved requests/s
# is recorded — the rate of the HTTP + content-hash replay path, since
# every response after the first is a cache hit.
#
# It also times the SMP lock-contention sweep (`locks` — every
# personality, both lock kinds, five CPU counts), so the parallel
# engine's speed has a trajectory alongside the uniprocessor suite's.
#
# Invoked by `make bench-json`, which writes BENCH_pr10.json — the
# perf-trajectory record this file format exists for.
set -eu

out="${1:-BENCH_pr10.json}"
runs=3
tmp="$(mktemp -d)"
serve_pid=""
trap 'if [ -n "$serve_pid" ]; then kill "$serve_pid" 2>/dev/null || true; fi; rm -rf "$tmp"' EXIT

go build -o "$tmp/pentiumbench" ./cmd/pentiumbench

now_ms() { echo $(( $(date +%s%N) / 1000000 )); }

# time_cmd stdout cmd... — runs the command $runs times, leaving the
# per-run times (JSON array body) in $times and the best in $best_ms.
# Sets globals rather than echoing so no subshell swallows the results.
time_cmd() {
    stdout="$1"; shift
    times=""
    best_ms=""
    i=0
    while [ "$i" -lt "$runs" ]; do
        s=$(now_ms)
        "$@" > "$stdout" 2>/dev/null
        e=$(now_ms)
        d=$((e - s))
        times="${times}${times:+, }${d}"
        if [ -z "$best_ms" ] || [ "$d" -lt "$best_ms" ]; then best_ms=$d; fi
        i=$((i + 1))
    done
}

time_cmd "$tmp/cold.txt" "$tmp/pentiumbench" run all
cold_times="[$times]"; cold_best=$best_ms

time_cmd "$tmp/fill.txt" sh -c "rm -rf '$tmp/store'; exec '$tmp/pentiumbench' run all -memo '$tmp/store'"
fill_times="[$times]"; fill_best=$best_ms

time_cmd "$tmp/warm.txt" "$tmp/pentiumbench" run all -memo "$tmp/store"
warm_times="[$times]"; warm_best=$best_ms

cmp -s "$tmp/cold.txt" "$tmp/warm.txt" || {
    echo "bench_json: memo-warm output differs from cold output" >&2
    exit 1
}

time_cmd "$tmp/scale1k.txt" "$tmp/pentiumbench" -clients 1000 scale
scale1k_times="[$times]"; scale1k_best=$best_ms

time_cmd "$tmp/scale1m.txt" "$tmp/pentiumbench" -clients 1000000 scale
scale1m_times="[$times]"; scale1m_best=$best_ms

# The SMP lock-contention sweep: every personality, spin and sleep,
# CPU counts 1..16 — the wall time of the conservative parallel engine.
time_cmd "$tmp/locks.txt" "$tmp/pentiumbench" locks
locks_times="[$times]"; locks_best=$best_ms

# Modelled served throughput (ops/s column) at the sweep's top
# population, first personality (Linux) — deterministic, so drift here
# is a result regression, not noise.
scale1k_opsps=$(awk '$1 == "1000"    { print $2; exit }' "$tmp/scale1k.txt")
scale1m_opsps=$(awk '$1 == "1000000" { print $2; exit }' "$tmp/scale1m.txt")

# Serve replay throughput: random port, warm memo store, 8 concurrent
# clients on one endpoint. serveload fails the run if any response is
# not a 200 with the warm-up's exact ETag, so the rate can never come
# from wrong or rolling answers.
serve_conc=8
serve_reqs=2000
go build -o "$tmp/serveload" ./scripts/serveload
"$tmp/pentiumbench" -clients 1000 -memo "$tmp/store" -addr 127.0.0.1:0 serve > "$tmp/serve.out" 2>&1 &
serve_pid=$!
i=0
until grep -q '^serving on ' "$tmp/serve.out" 2>/dev/null; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "bench_json: serve did not start: $(cat "$tmp/serve.out")" >&2
        exit 1
    fi
    sleep 0.1
done
serve_url=$(sed -n 's/^serving on //p' "$tmp/serve.out")
"$tmp/serveload" -url "$serve_url/api/metrics/S1" -c "$serve_conc" -n "$serve_reqs" > "$tmp/load.txt"
kill "$serve_pid" 2>/dev/null || true
serve_pid=""
serve_ms=$(awk '/^elapsed_ms/ { print $2 }' "$tmp/load.txt")
serve_rps=$(awk '/^rps/ { print $2 }' "$tmp/load.txt")

speedup=$(awk "BEGIN { printf \"%.1f\", $cold_best / ($warm_best > 0 ? $warm_best : 1) }")

cat > "$out" <<EOF
{
  "schema": 1,
  "go": "$(go env GOVERSION)",
  "suite": "run all",
  "runs_per_config": $runs,
  "cold_ms": $cold_times,
  "cold_best_ms": $cold_best,
  "memo_fill_ms": $fill_times,
  "memo_fill_best_ms": $fill_best,
  "memo_warm_ms": $warm_times,
  "memo_warm_best_ms": $warm_best,
  "warm_speedup": $speedup,
  "cold_warm_identical": true,
  "scale_1k_ms": $scale1k_times,
  "scale_1k_best_ms": $scale1k_best,
  "scale_1k_modelled_opsps": $scale1k_opsps,
  "scale_1m_ms": $scale1m_times,
  "scale_1m_best_ms": $scale1m_best,
  "scale_1m_modelled_opsps": $scale1m_opsps,
  "locks_sweep_ms": $locks_times,
  "locks_sweep_best_ms": $locks_best,
  "serve_endpoint": "/api/metrics/S1",
  "serve_clients": $serve_conc,
  "serve_requests": $serve_reqs,
  "serve_elapsed_ms": $serve_ms,
  "serve_rps": $serve_rps
}
EOF
echo "wrote $out: cold ${cold_best}ms, fill ${fill_best}ms, warm ${warm_best}ms (${speedup}x warm speedup), scale 10^3 ${scale1k_best}ms / 10^6 ${scale1m_best}ms, locks ${locks_best}ms, serve ${serve_rps} req/s"
