// Command serveload drives one pentiumbench serve endpoint with a fixed
// number of concurrent clients and reports the achieved request rate.
// It is the load half of the serve benchmark in scripts/bench_json.sh:
// the server computes the response once, then every request is a cache
// replay, so the rate measures the HTTP + content-hash path, not the
// simulation.
//
// Every response must be 200 with a non-empty body and carry the same
// ETag as the first — the server is content-addressed, so a rolling tag
// on a warm endpoint is a correctness failure, and the load test refuses
// to report a rate built from wrong answers.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

func main() {
	url := flag.String("url", "", "endpoint to load (required)")
	conc := flag.Int("c", 8, "concurrent clients")
	total := flag.Int("n", 2000, "total requests across all clients")
	flag.Parse()
	if *url == "" || *conc < 1 || *total < 1 {
		fmt.Fprintln(os.Stderr, "usage: serveload -url http://host:port/api/... [-c clients] [-n requests]")
		os.Exit(2)
	}

	// One warm-up request pins the reference ETag and lets the server
	// compute the response outside the timed window.
	refETag, err := fetch(*url, "")
	if err != nil {
		fmt.Fprintln(os.Stderr, "serveload: warm-up:", err)
		os.Exit(1)
	}

	var (
		issued int64
		errs   atomic.Value
		wg     sync.WaitGroup
	)
	start := time.Now()
	for range *conc {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for atomic.AddInt64(&issued, 1) <= int64(*total) {
				if _, err := fetch(*url, refETag); err != nil {
					errs.Store(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	if err, _ := errs.Load().(error); err != nil {
		fmt.Fprintln(os.Stderr, "serveload:", err)
		os.Exit(1)
	}

	ms := elapsed.Milliseconds()
	if ms < 1 {
		ms = 1
	}
	fmt.Printf("requests %d\n", *total)
	fmt.Printf("concurrency %d\n", *conc)
	fmt.Printf("elapsed_ms %d\n", ms)
	fmt.Printf("rps %.1f\n", float64(*total)/(float64(ms)/1000))
}

// fetch issues one GET and enforces the contract: 200, non-empty body,
// and (when refETag is set) a byte-identical ETag.
func fetch(url, refETag string) (string, error) {
	resp, err := http.Get(url)
	if err != nil {
		return "", err
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("%s: status %d: %.200s", url, resp.StatusCode, body)
	}
	if len(body) == 0 {
		return "", fmt.Errorf("%s: empty body", url)
	}
	etag := resp.Header.Get("ETag")
	if etag == "" {
		return "", fmt.Errorf("%s: no ETag", url)
	}
	if refETag != "" && etag != refETag {
		return "", fmt.Errorf("%s: ETag rolled from %s to %s on a warm endpoint", url, refETag, etag)
	}
	return etag, nil
}
