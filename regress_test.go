package repro

import (
	"os"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/validate"
)

// experimentsAppendixMarker separates the generated body of
// EXPERIMENTS.md from the hand-maintained "Harness performance" appendix.
// The appendix records wall-clock measurements, which are machine-
// dependent, so the golden comparison stops at this line.
const experimentsAppendixMarker = "<!-- harness appendix:"

// TestExperimentsGolden guards the committed EXPERIMENTS.md against
// calibration drift: any change to a model or constant that shifts a
// reported number must be accompanied by regenerating the file body
// (`go run ./cmd/pentiumbench experiments`, spliced in above the harness
// appendix marker), which makes every such change visible in review.
func TestExperimentsGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("golden regeneration runs every exhibit")
	}
	wantFile, err := os.ReadFile("EXPERIMENTS.md")
	if err != nil {
		t.Fatalf("missing golden file: %v", err)
	}
	want := wantFile
	if i := strings.Index(string(wantFile), experimentsAppendixMarker); i >= 0 {
		want = wantFile[:i]
	}
	cfg := core.DefaultConfig()
	var b strings.Builder
	var results []*core.Result
	for _, e := range core.All() {
		results = append(results, e.Run(cfg))
	}
	report.Markdown(&b, results)
	var lines []report.ClaimLine
	for _, o := range validate.RunAll(cfg) {
		l := report.ClaimLine{ID: o.Claim.ID, Exhibit: o.Claim.Exhibit,
			Statement: o.Claim.Statement, Passed: o.Passed()}
		if o.Err != nil {
			l.Err = o.Err.Error()
		}
		lines = append(lines, l)
	}
	report.MarkdownClaims(&b, lines)
	got := b.String()
	if got != string(want) {
		// Find the first differing line for a useful message.
		gl, wl := strings.Split(got, "\n"), strings.Split(string(want), "\n")
		for i := 0; i < len(gl) && i < len(wl); i++ {
			if gl[i] != wl[i] {
				t.Fatalf("EXPERIMENTS.md is stale at line %d:\n  committed: %s\n  computed:  %s\n"+
					"regenerate the body with `go run ./cmd/pentiumbench experiments` and splice it in above the harness appendix marker",
					i+1, wl[i], gl[i])
			}
		}
		t.Fatalf("EXPERIMENTS.md length differs: committed %d lines, computed %d; regenerate it",
			len(wl), len(gl))
	}
}
