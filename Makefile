# Tier-1 verification plus the runner's race certification, one command:
#
#   make check
#
# Individual targets mirror the steps CI (and reviewers) care about.

GO ?= go

.PHONY: all build test short race vet bench check

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Quick inner-loop pass: skips the full-suite golden and determinism tests.
short:
	$(GO) test -short ./...

# Certifies the parallel runner race-free (the determinism regression test
# in internal/core runs the whole suite on an 8-worker pool) and runs the
# cache fast-path differential tests under the race detector.
race:
	$(GO) test -race ./internal/core/... ./internal/cache/... ./internal/memmodel/...

vet:
	$(GO) vet ./...

# Whole-suite wall-clock: serial (seed harness schedule) vs the parallel
# memoized runner. One iteration each; see EXPERIMENTS.md "Harness
# performance" for recorded results.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkSuite' -benchtime 1x .

check: build vet test race
