# Tier-1 verification plus the runner's race certification, one command:
#
#   make check
#
# Individual targets mirror the steps CI (and reviewers) care about.

GO ?= go

.PHONY: all build test short race vet bench bench-json check baseline baseline-record

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Quick inner-loop pass: skips the full-suite golden and determinism tests.
short:
	$(GO) test -short ./...

# Certifies the parallel runner race-free (the determinism regression test
# in internal/core runs the whole suite on an 8-worker pool), the cache
# fast-path differential tests, the event-engine differential (timer wheel
# vs reference heap in internal/sim), the memo store, the NFS server
# scale-out model (including the 10^4-client -j1/-j8 byte-identity
# regression), the fault-injection layer — including the CLI
# regression that a faulted `faults` report is byte-identical at -j 1
# and -j 8 — the exemplar reservoirs, the queueing-law audit engine,
# and the serve single-flight path (N concurrent cold clients, one
# computation) under the race detector. The kernel and bench packages
# carry the SMP machine and its NCPU=1 differential suite, so the
# SMP engine (and the lock sweep that feeds exhibits L1/L2) is
# certified race-free too.
race:
	$(GO) test -race ./internal/core/... ./internal/cache/... ./internal/memmodel/... ./internal/memo/... ./internal/sim/... ./internal/fault/... ./internal/nfsserver/... ./internal/cli/... ./internal/obs/... ./internal/audit/... ./internal/kernel/... ./internal/bench/...

vet:
	$(GO) vet ./...

# Whole-suite wall-clock: serial (seed harness schedule) vs the parallel
# memoized runner. One iteration each; see EXPERIMENTS.md "Harness
# performance" for recorded results.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkSuite' -benchtime 1x .

# Machine-readable suite wall-clock timings (cold, memo-fill, memo-warm;
# best of three each, cold/warm outputs compared byte for byte), the NFS
# scale-out sweep timings at 10^3 and 10^6 clients, the SMP lock-sweep
# wall time (`locks`), and the `serve` replay throughput under
# concurrent load, written to BENCH_pr10.json — the perf-trajectory
# record.
bench-json:
	sh scripts/bench_json.sh BENCH_pr10.json

# Metric regression gate: re-run the probes with the committed baseline's
# recorded seed and diff every metric point (exact for integer ledgers,
# 1e-9 relative for floats). Fails with a ranked table on any change;
# re-record with `make baseline-record` when a change is intended.
baseline:
	$(GO) run ./cmd/pentiumbench baseline check

baseline-record:
	$(GO) run ./cmd/pentiumbench baseline record all

check: build vet test race
