// Package nfsserver models one NFS server under open-loop load from an
// arbitrary number of clients — the scale-out half of the paper's §10
// exhibit. The paper measures one client against one server; the model
// here asks what each personality's server policy (asynchronous Linux
// 1.2.8 answers-from-cache versus spec-compliant synchronous commits)
// costs once thousands or millions of clients contend for the same nfsd
// slots, buffer cache, and disk.
//
// The performance discipline is the point of the package:
//
//   - O(1) work and zero steady-state allocation per operation. All
//     request state lives in flat struct-of-array pools sized by the
//     server's capacity (queue depth + nfsd slots + retry rings), not by
//     the client population. Event closures are bound once at
//     construction and recycled through the timer wheel's slab.
//
//   - O(1) state per client: three uint32 counters (issued, completed,
//     retransmitted) — 12 bytes — so a 10^6-client sweep costs ~12 MB,
//     not a goroutine or map entry per client.
//
//   - O(1) memory per observation: latencies stream into a fixed-boundary
//     log-bucket stats.Histogram; no sample is ever stored.
//
// Arrivals are open-loop: the merged request stream of N clients at rate
// λ each is one Poisson process at rate Nλ, so the generator draws one
// exponential gap and one client index per operation — constant work no
// matter how many clients exist — in batches of 64 draws to keep the RNG
// loop tight. Each operation is timestamped at issue, pays header wire
// time to reach the server, then either enters the bounded ingress queue,
// is dropped (queue overflow, or wire loss from the fault layer) and
// retried with exponential backoff through per-tier FIFO retry rings, or
// is served by one of the nfsd slots. Reads miss the shared buffer cache
// with probability growing in the client population's working set;
// misses — and every write on a synchronous-commit server — serialize on
// the one shared disk.
//
// Every duration is integer virtual nanoseconds, and each completed
// operation's latency decomposes exactly:
//
//	latency = attempts·wireHdr + rtoWait + queueWait + cpu + diskWait +
//	          diskTime + wireRemainder
//
// The per-component Ledger sums to the histogram's exact Sum — the same
// ledger-equals-elapsed bar the repository's other models meet — and the
// whole run is single-threaded on one timer wheel, so results are
// byte-identical for a given Config no matter the host or worker count.
package nfsserver

import (
	"fmt"
	"math"

	"repro/internal/disk"
	"repro/internal/fault"
	"repro/internal/netstack"
	"repro/internal/obs"
	"repro/internal/osprofile"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Operation classes in the workload mix. The 6/3/1 read/write/getattr
// split follows the MAB-over-NFS shape: data-dominated with a metadata
// tail.
const (
	clRead = iota
	clWrite
	clGetattr
	numClasses
)

var classNames = [numClasses]string{"read", "write", "getattr"}

const (
	// rpcHeader is the RPC+NFS header size, matching the client model.
	rpcHeader = 128
	// batchSize is how many arrival draws (gap, client, class) are
	// precomputed per RNG batch.
	batchSize = 64
	// retryTiers is the number of backoff tiers with their own FIFO
	// retry ring; attempts beyond the last tier reuse its (capped) RTO.
	retryTiers = 6
	// retryRingCap bounds each tier's ring; an overflowing retry is shed
	// (the client soft-fails) rather than grown — memory stays bounded
	// under any overload.
	retryRingCap = 4096
	// maxSendsPerOp caps how often one operation is sent before the
	// client gives up; NFS hard mounts retry forever, but an unbounded
	// retry loop would unbound the simulation, so the model soft-fails
	// and counts the shed.
	maxSendsPerOp = 8
	// workingSetKB is each client's share of hot file data; the server
	// buffer cache's hit rate is its capacity over the population's
	// total working set.
	workingSetKB = 64
)

// Config parameterises one server run.
type Config struct {
	// Profile selects the server personality (CPU cost per RPC, write
	// commit policy, buffer cache size).
	Profile *osprofile.Profile
	// Clients is the client population size (>= 1).
	Clients int
	// Nfsd is the number of server worker slots (default 8, the
	// conventional nfsd count of the era).
	Nfsd int
	// QueueCap bounds the RPC ingress queue (default 1024); an arrival
	// finding it full is dropped and retried by the client.
	QueueCap int
	// RatePerClient is each client's open-loop request rate in
	// operations per virtual second (default 1).
	RatePerClient float64
	// TargetOps stops the run after this many completed operations
	// (default 20000): enough for a stable p999 without letting lightly
	// loaded points run forever.
	TargetOps int
	// AttemptBudget bounds total server-ingress attempts — first sends
	// plus retransmits (default 200000). Under overload the budget, not
	// TargetOps, ends the run; completions already in queue or in
	// service still drain and count.
	AttemptBudget int
	// Seed drives the arrival and service RNG streams.
	Seed uint64
	// Faults, when non-nil, injects wire loss (DropRPC) and supplies the
	// retransmit timeout schedule for every requeue. Nil means a
	// lossless wire with the default 100 ms ×2 (cap 3 s) backoff for
	// queue-overflow drops.
	Faults *fault.NetInjector
}

func (c *Config) defaults() {
	if c.Nfsd == 0 {
		c.Nfsd = 8
	}
	if c.QueueCap == 0 {
		c.QueueCap = 1024
	}
	if c.RatePerClient == 0 {
		c.RatePerClient = 1
	}
	if c.TargetOps == 0 {
		c.TargetOps = 20000
	}
	if c.AttemptBudget == 0 {
		c.AttemptBudget = 200000
	}
}

// Ledger decomposes the total completed-operation latency into its
// phases, in exact virtual nanoseconds. Sum() equals the latency
// histogram's Sum() exactly — the model's conservation law.
type Ledger struct {
	// Wire is request+reply transmission time across all sends.
	Wire sim.Duration
	// RTO is client-side retransmit backoff waiting.
	RTO sim.Duration
	// QueueWait is time spent in the ingress queue before an nfsd picked
	// the request up.
	QueueWait sim.Duration
	// CPU is nfsd service processing.
	CPU sim.Duration
	// DiskWait is time serialized behind other requests' disk I/O.
	DiskWait sim.Duration
	// DiskTime is the request's own disk I/O.
	DiskTime sim.Duration
}

// Sum returns the ledger total.
func (l Ledger) Sum() sim.Duration {
	return l.Wire + l.RTO + l.QueueWait + l.CPU + l.DiskWait + l.DiskTime
}

// Result reports one run. All fields are exact integers or exact integer
// ratios; two runs of the same Config produce identical Results.
type Result struct {
	// Clients and Nfsd echo the configuration.
	Clients, Nfsd int
	// Arrivals counts first sends; Attempts counts every server-ingress
	// try including retransmits; Completed counts served operations.
	Arrivals, Attempts, Completed uint64
	// Retransmits counts wire-loss timeouts (matches the fault
	// injector's RPCRetransmits); QueueDrops counts ingress-queue
	// overflows; Shed counts operations abandoned after too many sends
	// or a full retry ring.
	Retransmits, QueueDrops, Shed uint64
	// Elapsed is the virtual time of the last counted completion; Busy
	// is total nfsd busy time across slots for counted operations.
	Elapsed, Busy sim.Duration
	// Ledger is the exact latency decomposition; Hist the latency
	// distribution.
	Ledger Ledger
	Hist   stats.Histogram
}

// Throughput returns completed operations per virtual second.
func (r *Result) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Completed) / (float64(r.Elapsed) / 1e9)
}

// Quantile returns the q-quantile completion latency.
func (r *Result) Quantile(q float64) sim.Duration {
	return sim.Duration(r.Hist.Quantile(q))
}

// Utilization returns mean nfsd-slot busy fraction over the run.
func (r *Result) Utilization() float64 {
	if r.Elapsed <= 0 || r.Nfsd == 0 {
		return 0
	}
	return float64(r.Busy) / (float64(r.Elapsed) * float64(r.Nfsd))
}

// FoldMetrics adds the run's counters to a registry under the prefix.
func (r *Result) FoldMetrics(reg *obs.Registry, prefix string) {
	reg.Counter(prefix + "clients").Add(float64(r.Clients))
	reg.Counter(prefix + "completed").Add(float64(r.Completed))
	reg.Counter(prefix + "arrivals").Add(float64(r.Arrivals))
	reg.Counter(prefix + "attempts").Add(float64(r.Attempts))
	reg.Counter(prefix + "retransmits").Add(float64(r.Retransmits))
	reg.Counter(prefix + "queue_drops").Add(float64(r.QueueDrops))
	reg.Counter(prefix + "shed").Add(float64(r.Shed))
	reg.Counter(prefix + "elapsed_us").Add(r.Elapsed.Microseconds())
	reg.Counter(prefix + "busy_us").Add(r.Busy.Microseconds())
	reg.Counter(prefix + "wire_us").Add(r.Ledger.Wire.Microseconds())
	reg.Counter(prefix + "rto_us").Add(r.Ledger.RTO.Microseconds())
	reg.Counter(prefix + "queue_wait_us").Add(r.Ledger.QueueWait.Microseconds())
	reg.Counter(prefix + "cpu_us").Add(r.Ledger.CPU.Microseconds())
	reg.Counter(prefix + "disk_wait_us").Add(r.Ledger.DiskWait.Microseconds())
	reg.Counter(prefix + "disk_time_us").Add(r.Ledger.DiskTime.Microseconds())
	reg.Counter(prefix + "p50_us").Add(sim.Duration(r.Hist.Quantile(0.5)).Microseconds())
	reg.Counter(prefix + "p99_us").Add(sim.Duration(r.Hist.Quantile(0.99)).Microseconds())
	reg.Counter(prefix + "p999_us").Add(sim.Duration(r.Hist.Quantile(0.999)).Microseconds())
}

// ring is one backoff tier's FIFO of pending retransmits. Storage is a
// fixed circular buffer; one wheel event is outstanding per non-empty
// ring, always for the head entry.
type ring struct {
	idx     [retryRingCap]int32
	due     [retryRingCap]int64
	head, n int
}

// Server is one run's state. Build with New, optionally attach a
// recorder, then Run once.
type Server struct {
	cfg Config
	w   *sim.Wheel
	arr *sim.RNG // arrival stream: gaps, client picks, op classes
	svc *sim.RNG // service stream: buffer-cache hit draws

	// Precomputed per-class costs.
	wireHdr    int64             // header transmit time (first frame of any request)
	wireRem    [numClasses]int64 // remaining wire time: request payload + reply
	cpuOf      [numClasses]int64 // nfsd CPU service time
	diskAccess int64             // one disk access (seek + rotate + transfer + controller)
	writeDisk  int64             // disk accesses per write (0 on async servers)
	hitP       float64           // buffer-cache hit probability for reads
	rtoOf      [retryTiers]int64 // lossless-wire backoff schedule

	// Per-client state: 12 bytes each, nothing else scales with the
	// population.
	clIssued, clDone, clRetrans []uint32

	// Request pool, struct-of-arrays with a free-list stack. Capacity is
	// a function of server resources only.
	rqID       []uint64 // arrival ordinal (1-based), stable across reruns
	rqClient   []int32
	rqClass    []uint8
	rqSends    []uint8 // completed send attempts
	rqIssue    []int64 // client issue time
	rqRTO      []int64 // accumulated backoff wait
	rqDrop     []int64 // time of the most recent drop
	rqEnq      []int64 // ingress-queue entry time
	rqStart    []int64 // service start time
	rqDiskWait []int64
	rqDiskTime []int64
	freeList   []int32

	// Ingress queue: a circular buffer of request indices.
	q           []int32
	qHead, qLen int

	// nfsd slots.
	slotReq   []int32
	idle      []int32
	slotFns   []func()
	slotTrack []obs.TrackID

	rings   [retryTiers]ring
	ringFns [retryTiers]func()

	// Arrival generator: one pending arrival event at a time, drawing
	// from a precomputed batch.
	pendClient          int32
	pendClass           uint8
	nextIssue           int64
	arrivalFn           func()
	batGap              [batchSize]int64
	batClient           [batchSize]int32
	batClass            [batchSize]uint8
	batPos, batLen      int
	interarrivalScaleNs float64

	diskFreeAt int64
	attempts   uint64
	done       bool
	endAt      int64

	// Always-on audit accounting: O(1) integer work per flow event, no
	// allocation, no RNG — an independent double-entry ledger the audit
	// engine cross-checks the Result against. sysN counts requests in
	// system (ingress queue + service), busyN busy nfsd slots; the area
	// integrals ∫N(t)dt advance lazily at each population change.
	sysN, busyN       int
	lastFlow          int64
	sysArea, busyArea int64
	resends           uint64

	rec *obs.Recorder
	ex  *obs.Exemplars

	// Time-series handles, all nil when no sampler is attached — each
	// record below is then a nil-receiver no-op, so the unsampled hot
	// path pays one predictable branch and zero allocations.
	smp        *obs.Sampler
	tsArrivals *obs.SeriesCounter
	tsDone     *obs.SeriesCounter
	tsDrops    *obs.SeriesCounter
	tsRetrans  *obs.SeriesCounter
	tsShed     *obs.SeriesCounter
	tsBusy     *obs.SeriesCounter
	tsFaults   *obs.SeriesCounter
	tsDiskNs   *obs.SeriesCounter
	tsQueue    *obs.SeriesGauge
	tsSlots    *obs.SeriesGauge
	tsBacklog  *obs.SeriesGauge
	tsLat      *obs.SeriesHist
	tsFlight   *obs.SeriesCounter

	res Result
}

// New builds a server model for the configuration. It panics on a
// missing profile or non-positive client count — programming errors, not
// runtime conditions.
func New(cfg Config) *Server {
	cfg.defaults()
	if cfg.Profile == nil {
		panic("nfsserver: nil profile")
	}
	if cfg.Clients < 1 {
		panic(fmt.Sprintf("nfsserver: %d clients", cfg.Clients))
	}
	p := cfg.Profile
	s := &Server{
		cfg: cfg,
		w:   sim.NewWheel(),
		arr: sim.NewRNG(cfg.Seed).Fork(0x6e667361 /* "nfsa" */),
		svc: sim.NewRNG(cfg.Seed).Fork(0x6e667373 /* "nfss" */),
	}

	link := netstack.Ethernet10()
	xfer := p.NFS.TransferSize
	if xfer <= 0 {
		xfer = 8192
	}
	s.wireHdr = int64(link.TransmitTime(rpcHeader))
	wireData := int64(link.TransmitTime(xfer))
	// Remaining wire time per class = (request − header) + reply.
	s.wireRem[clRead] = s.wireHdr + wireData  // small request, data reply
	s.wireRem[clWrite] = wireData + s.wireHdr // data request, small reply
	s.wireRem[clGetattr] = s.wireHdr          // small request, small reply

	kb := int64(xfer) / 1024
	base := int64(p.NFS.ServerPerRPC)
	s.cpuOf[clRead] = base + int64(p.FS.ReadPerKB)*kb
	s.cpuOf[clWrite] = base + int64(p.FS.WritePerKB)*kb
	s.cpuOf[clGetattr] = base

	g := disk.HP3725()
	rotHalf := int64(60.0 / g.RPM / 2 * 1e9)
	blockXfer := int64(float64(disk.BlockSize) / (g.TransferMBs * 1e6) * 1e9)
	s.diskAccess = int64(g.AvgSeek) + rotHalf + blockXfer + int64(g.ControllerOverhead)
	if p.NFS.ServerSyncWrites {
		s.writeDisk = 1 + int64(p.NFS.ServerSyncMetaPerWrite)
	}

	cacheBytes := float64(p.FS.BufferCacheMB) * (1 << 20)
	wsBytes := float64(cfg.Clients) * workingSetKB * 1024
	s.hitP = cacheBytes / wsBytes
	if s.hitP > 1 {
		s.hitP = 1
	}

	for t := 0; t < retryTiers; t++ {
		ms := int64(100) << t
		if ms > 3000 {
			ms = 3000
		}
		s.rtoOf[t] = ms * int64(sim.Millisecond)
	}

	s.clIssued = make([]uint32, cfg.Clients)
	s.clDone = make([]uint32, cfg.Clients)
	s.clRetrans = make([]uint32, cfg.Clients)

	poolCap := cfg.QueueCap + cfg.Nfsd + retryTiers*retryRingCap + 1
	s.rqID = make([]uint64, poolCap)
	s.rqClient = make([]int32, poolCap)
	s.rqClass = make([]uint8, poolCap)
	s.rqSends = make([]uint8, poolCap)
	s.rqIssue = make([]int64, poolCap)
	s.rqRTO = make([]int64, poolCap)
	s.rqDrop = make([]int64, poolCap)
	s.rqEnq = make([]int64, poolCap)
	s.rqStart = make([]int64, poolCap)
	s.rqDiskWait = make([]int64, poolCap)
	s.rqDiskTime = make([]int64, poolCap)
	s.freeList = make([]int32, poolCap)
	for i := range s.freeList {
		s.freeList[i] = int32(poolCap - 1 - i)
	}

	s.q = make([]int32, cfg.QueueCap)
	s.slotReq = make([]int32, cfg.Nfsd)
	s.idle = make([]int32, 0, cfg.Nfsd)
	s.slotFns = make([]func(), cfg.Nfsd)
	for i := cfg.Nfsd - 1; i >= 0; i-- {
		slot := int32(i)
		s.slotReq[i] = -1
		s.slotFns[i] = func() { s.complete(slot) }
		s.idle = append(s.idle, slot)
	}
	for t := 0; t < retryTiers; t++ {
		tier := t
		s.ringFns[t] = func() { s.ringPop(tier) }
	}
	s.arrivalFn = func() { s.arrive() }
	s.interarrivalScaleNs = 1e9 / (cfg.RatePerClient * float64(cfg.Clients))

	s.res.Clients = cfg.Clients
	s.res.Nfsd = cfg.Nfsd
	return s
}

// Clock exposes the model's virtual clock, for attaching an
// obs.Recorder before Run.
func (s *Server) Clock() *sim.Clock { return s.w.Clock() }

// SetRecorder attaches a span recorder (built on this server's Clock);
// each nfsd slot gets its own track. Nil is fine and costs nothing.
func (s *Server) SetRecorder(rec *obs.Recorder) {
	s.rec = rec
	if rec == nil {
		return
	}
	s.slotTrack = make([]obs.TrackID, s.cfg.Nfsd)
	for i := range s.slotTrack {
		s.slotTrack[i] = rec.Track(fmt.Sprintf("nfsd%d", i))
	}
}

// SetSampler attaches a virtual-time time-series sampler before Run.
// Nil is fine and costs nothing: every handle stays nil and each record
// in the hot path is a nil-receiver no-op. The sampled series reconcile
// exactly with the end-of-run Result: per-window sums of nfs.completed,
// nfs.queue_drops, nfs.retransmits, nfs.shed, and nfs.busy_ns equal
// Completed, QueueDrops, Retransmits, Shed, and Busy, and nfs.latency's
// window counts and sums equal Hist.Count()/Hist.Sum().
func (s *Server) SetSampler(smp *obs.Sampler) {
	s.smp = smp
	s.tsArrivals = smp.Counter("nfs.arrivals")
	s.tsDone = smp.Counter("nfs.completed")
	s.tsDrops = smp.Counter("nfs.queue_drops")
	s.tsRetrans = smp.Counter("nfs.retransmits")
	s.tsShed = smp.Counter("nfs.shed")
	s.tsBusy = smp.Counter("nfs.busy_ns")
	s.tsFaults = smp.Counter("fault.rpc_drops")
	s.tsDiskNs = smp.Counter("disk.busy_ns")
	s.tsQueue = smp.Gauge("nfs.queue_depth")
	s.tsSlots = smp.Gauge("nfs.busy_slots")
	s.tsBacklog = smp.Gauge("disk.backlog_ns")
	s.tsLat = smp.Hist("nfs.latency_ns")
	s.tsFlight = smp.Counter("nfs.op_inflight")
}

// SetExemplars attaches an exemplar reservoir before Run: every
// completed or shed operation's full lifecycle is offered, and the
// reservoir keeps a deterministic tail-biased sample per window. Nil is
// fine and costs nothing — the offer sites are guarded, so the disabled
// hot path stays allocation free. Each retained exemplar's phase sum
// equals its recorded lifetime exactly (the per-request form of the
// ledger identity).
func (s *Server) SetExemplars(ex *obs.Exemplars) { s.ex = ex }

// Run executes the model to its TargetOps or AttemptBudget bound and
// returns the result. Run consumes the Server; call once.
func (s *Server) Run() *Result {
	s.scheduleNextArrival()
	for s.w.Step() {
		if s.done {
			break
		}
	}
	if s.endAt == 0 {
		s.endAt = int64(s.w.Now())
	}
	s.res.Attempts = s.attempts
	s.res.Elapsed = sim.Duration(s.endAt)
	return &s.res
}

// refillBatch draws the next batchSize arrivals' gaps, clients, and
// classes in one tight RNG loop.
func (s *Server) refillBatch() {
	for i := 0; i < batchSize; i++ {
		u := 1 - s.arr.Float64() // (0,1]: no log(0)
		s.batGap[i] = int64(-math.Log(u) * s.interarrivalScaleNs)
		s.batClient[i] = int32(s.arr.Intn(s.cfg.Clients))
		mix := s.arr.Intn(10)
		switch {
		case mix < 6:
			s.batClass[i] = clRead
		case mix < 9:
			s.batClass[i] = clWrite
		default:
			s.batClass[i] = clGetattr
		}
	}
	s.batPos, s.batLen = 0, batchSize
}

// scheduleNextArrival draws the next operation and schedules its
// server-ingress event at issue + header wire time.
func (s *Server) scheduleNextArrival() {
	if s.done || s.attempts >= uint64(s.cfg.AttemptBudget) {
		return
	}
	if s.batPos == s.batLen {
		s.refillBatch()
	}
	i := s.batPos
	s.batPos++
	s.nextIssue += s.batGap[i]
	s.pendClient = s.batClient[i]
	s.pendClass = s.batClass[i]
	s.w.ScheduleAt(sim.Time(s.nextIssue+s.wireHdr), s.arrivalFn)
}

// arrive materialises the pending arrival as a pooled request and feeds
// it to ingress, then schedules the next one.
func (s *Server) arrive() {
	n := len(s.freeList)
	if n == 0 {
		panic("nfsserver: request pool exhausted") // capacity bug, not load
	}
	r := s.freeList[n-1]
	s.freeList = s.freeList[:n-1]
	s.rqClient[r] = s.pendClient
	s.rqClass[r] = s.pendClass
	s.rqSends[r] = 0
	s.rqIssue[r] = s.nextIssue
	s.rqRTO[r] = 0
	s.res.Arrivals++
	s.rqID[r] = s.res.Arrivals
	s.clIssued[s.pendClient]++
	s.tsArrivals.Inc(s.w.Now())
	s.tsFlight.Inc(s.w.Now())
	s.ingress(r)
	s.scheduleNextArrival()
}

func (s *Server) freeReq(r int32) { s.freeList = append(s.freeList, r) }

// flowTick advances the occupancy area integrals to now; call before any
// change to the in-system or busy-slot population. Event times are
// non-decreasing, so dt is never negative.
func (s *Server) flowTick(now int64) {
	if dt := now - s.lastFlow; dt > 0 {
		s.sysArea += int64(s.sysN) * dt
		s.busyArea += int64(s.busyN) * dt
		s.lastFlow = now
	}
}

// shed abandons request r at now after wireSends send attempts (the last
// of which may still have been on the wire): counts the shed, offers the
// truncated lifecycle as an exemplar, and recycles the pool slot. The
// identity now − issue == wireSends·wireHdr + rqRTO holds at every call
// site, so the exemplar's phase sum equals its lifetime exactly.
func (s *Server) shed(r int32, now, wireSends int64, tier int) {
	s.res.Shed++
	s.tsShed.Inc(sim.Time(now))
	s.tsFlight.Add(sim.Time(now), -1)
	if s.ex != nil {
		s.ex.Offer(obs.Exemplar{
			ID: s.rqID[r], Client: s.rqClient[r], Class: classNames[s.rqClass[r]],
			Shed: true, Sends: int(wireSends), Tier: tier,
			IssueNs: s.rqIssue[r], EnqNs: -1, StartNs: -1, EndNs: now,
			WireNs: wireSends * s.wireHdr, RTONs: s.rqRTO[r],
		})
	}
	s.freeReq(r)
}

// ingress is one send attempt reaching the server: it may be lost on the
// wire, bounce off a full queue, or enter service.
func (s *Server) ingress(r int32) {
	s.attempts++
	s.rqSends[r]++
	if s.rqSends[r] > 1 {
		s.resends++ // attempts == arrivals + resends, exactly
	}
	if s.cfg.Faults.DropRPC() {
		s.clRetrans[s.rqClient[r]]++
		s.res.Retransmits++
		s.tsRetrans.Inc(s.w.Now())
		s.tsFaults.Inc(s.w.Now())
		s.requeue(r)
		return
	}
	if s.qLen == len(s.q) {
		s.res.QueueDrops++
		s.tsDrops.Inc(s.w.Now())
		s.requeue(r)
		return
	}
	now := int64(s.w.Now())
	s.rqEnq[r] = now
	s.flowTick(now)
	s.sysN++
	if n := len(s.idle); n > 0 {
		slot := s.idle[n-1]
		s.idle = s.idle[:n-1]
		s.dispatch(slot, r)
		return
	}
	tail := s.qHead + s.qLen
	if tail >= len(s.q) {
		tail -= len(s.q)
	}
	s.q[tail] = r
	s.qLen++
	s.tsQueue.Set(sim.Time(now), int64(s.qLen))
}

// requeue schedules a dropped send's retransmit through its backoff
// tier's FIFO ring, or sheds the operation when the client has retried
// too often or the ring is full.
func (s *Server) requeue(r int32) {
	sends := int(s.rqSends[r])
	// A shed here happens at the drop instant, after `sends` completed
	// sends; the deepest backoff tier entered was for send sends-1.
	shedTier := sends - 2
	if shedTier >= retryTiers {
		shedTier = retryTiers - 1
	}
	if sends >= maxSendsPerOp {
		s.shed(r, int64(s.w.Now()), int64(sends), shedTier)
		return
	}
	tier := sends - 1
	if tier >= retryTiers {
		tier = retryTiers - 1
	}
	var rto int64
	if s.cfg.Faults != nil {
		// The injector owns the backoff schedule (and accounts the
		// wait) for every requeue, wire loss or queue overflow alike,
		// so each tier's ring stays FIFO in due time.
		rto = int64(s.cfg.Faults.RTOWait(sends - 1))
	} else {
		rto = s.rtoOf[tier]
	}
	rg := &s.rings[tier]
	if rg.n == retryRingCap {
		s.shed(r, int64(s.w.Now()), int64(sends), shedTier)
		return
	}
	now := int64(s.w.Now())
	s.rqDrop[r] = now
	tail := rg.head + rg.n
	if tail >= retryRingCap {
		tail -= retryRingCap
	}
	rg.idx[tail] = r
	rg.due[tail] = now + rto + s.wireHdr
	rg.n++
	if rg.n == 1 {
		s.w.ScheduleAt(sim.Time(rg.due[tail]), s.ringFns[tier])
	}
}

// ringPop re-sends the head of one backoff tier and re-arms the ring's
// event for the next entry.
func (s *Server) ringPop(tier int) {
	rg := &s.rings[tier]
	r := rg.idx[rg.head]
	rg.head++
	if rg.head == retryRingCap {
		rg.head = 0
	}
	rg.n--
	now := int64(s.w.Now())
	if rg.n > 0 {
		due := rg.due[rg.head]
		if due < now {
			due = now // defensive: a custom backoff plan may not be monotone
		}
		s.w.ScheduleAt(sim.Time(due), s.ringFns[tier])
	}
	// Attribute the actual wait (backoff plus any ring delay) so the
	// ledger identity holds exactly even if the schedule slipped.
	s.rqRTO[r] += now - s.rqDrop[r] - s.wireHdr
	if s.attempts >= uint64(s.cfg.AttemptBudget) {
		// The abandoned resend was already on the wire (the pop time
		// includes its header transmit), so it counts as a send; this
		// request sat in `tier`'s ring.
		s.shed(r, now, int64(s.rqSends[r])+1, tier)
		return
	}
	s.ingress(r)
}

// dispatch starts service of request r on an idle slot: CPU first, then
// — for cache-missing reads and synchronous writes — a trip through the
// single shared disk, FIFO behind whatever I/O is already promised.
func (s *Server) dispatch(slot, r int32) {
	now := int64(s.w.Now())
	s.flowTick(now)
	s.busyN++
	class := s.rqClass[r]
	cpu := s.cpuOf[class]
	var diskOps int64
	switch class {
	case clRead:
		if s.hitP < 1 && s.svc.Float64() >= s.hitP {
			diskOps = 1
		}
	case clWrite:
		diskOps = s.writeDisk
	}
	var dw, dt int64
	if diskOps > 0 {
		t := now + cpu
		ds := s.diskFreeAt
		if t > ds {
			ds = t
		}
		dw = ds - t
		dt = diskOps * s.diskAccess
		s.diskFreeAt = ds + dt
		s.tsDiskNs.Add(sim.Time(now), dt)
		s.tsBacklog.Set(sim.Time(now), s.diskFreeAt-now)
	}
	s.rqStart[r] = now
	s.rqDiskWait[r] = dw
	s.rqDiskTime[r] = dt
	s.slotReq[slot] = r
	s.tsSlots.Set(sim.Time(now), int64(s.cfg.Nfsd-len(s.idle)))
	if s.rec != nil {
		s.rec.BeginAt(sim.Time(now), s.slotTrack[slot], classNames[class])
	}
	s.w.Schedule(sim.Duration(cpu+dw+dt), s.slotFns[slot])
}

// complete finishes the request in service on slot: folds its exact
// latency decomposition into the ledger and histogram, then pulls the
// next queued request or idles the slot.
func (s *Server) complete(slot int32) {
	r := s.slotReq[slot]
	s.slotReq[slot] = -1
	now := int64(s.w.Now())
	s.flowTick(now)
	s.sysN--
	s.busyN--
	class := s.rqClass[r]
	lat := now + s.wireRem[class] - s.rqIssue[r]
	s.res.Hist.Observe(lat)
	s.res.Completed++
	s.clDone[s.rqClient[r]]++
	led := &s.res.Ledger
	led.Wire += sim.Duration(int64(s.rqSends[r])*s.wireHdr + s.wireRem[class])
	led.RTO += sim.Duration(s.rqRTO[r])
	led.QueueWait += sim.Duration(s.rqStart[r] - s.rqEnq[r])
	led.CPU += sim.Duration(s.cpuOf[class])
	led.DiskWait += sim.Duration(s.rqDiskWait[r])
	led.DiskTime += sim.Duration(s.rqDiskTime[r])
	s.res.Busy += sim.Duration(now - s.rqStart[r])
	s.endAt = now
	s.tsDone.Inc(sim.Time(now))
	s.tsFlight.Add(sim.Time(now), -1)
	s.tsBusy.Add(sim.Time(now), now-s.rqStart[r])
	s.tsLat.Observe(sim.Time(now), lat)
	if s.ex != nil {
		tier := int(s.rqSends[r]) - 2 // deepest backoff tier entered; -1 if none
		if tier >= retryTiers {
			tier = retryTiers - 1
		}
		s.ex.Offer(obs.Exemplar{
			ID: s.rqID[r], Client: s.rqClient[r], Class: classNames[class],
			Sends: int(s.rqSends[r]), Tier: tier,
			IssueNs: s.rqIssue[r], EnqNs: s.rqEnq[r], StartNs: s.rqStart[r],
			EndNs:  s.rqIssue[r] + lat,
			WireNs: int64(s.rqSends[r])*s.wireHdr + s.wireRem[class],
			RTONs:  s.rqRTO[r], QueueNs: s.rqStart[r] - s.rqEnq[r],
			CPUNs: s.cpuOf[class], DiskWaitNs: s.rqDiskWait[r],
			DiskNs: s.rqDiskTime[r],
		})
	}
	if s.rec != nil {
		s.rec.EndAt(sim.Time(now), s.slotTrack[slot], classNames[class],
			float64(lat)/float64(sim.Microsecond))
	}
	s.freeReq(r)
	if s.res.Completed >= uint64(s.cfg.TargetOps) {
		s.done = true
		return
	}
	if s.qLen > 0 {
		h := s.q[s.qHead]
		s.qHead++
		if s.qHead == len(s.q) {
			s.qHead = 0
		}
		s.qLen--
		s.tsQueue.Set(sim.Time(now), int64(s.qLen))
		s.dispatch(slot, h)
	} else {
		s.idle = append(s.idle, slot)
		s.tsSlots.Set(sim.Time(now), int64(s.cfg.Nfsd-len(s.idle)))
	}
}

// ClientBalance reports per-client conservation sums for tests: total
// issued, completed, and retransmitted across the population.
func (s *Server) ClientBalance() (issued, done, retrans uint64) {
	for i := range s.clIssued {
		issued += uint64(s.clIssued[i])
		done += uint64(s.clDone[i])
		retrans += uint64(s.clRetrans[i])
	}
	return
}

// Facts is the server's independent double-entry accounting, collected
// by mechanisms disjoint from the Result's counters: occupancy area
// integrals advanced at each population change, the pool free-list, the
// retry rings, and the per-client counter arrays. The audit engine
// cross-checks the Result against these; every identity is exact in
// integer nanoseconds.
type Facts struct {
	// QueueCap, Nfsd, and PoolCap echo capacities; PoolFree is the
	// free-list depth at the end of the run.
	QueueCap, Nfsd, PoolCap, PoolFree int
	// InSystem counts requests in queue or in service at AuditEnd;
	// BusySlots counts occupied nfsd slots; RingPending counts requests
	// waiting in backoff rings.
	InSystem, BusySlots, RingPending int
	// Resends counts server-ingress attempts beyond each operation's
	// first (Attempts == Arrivals + Resends).
	Resends uint64
	// SysAreaNs is ∫(requests in system)dt and BusyAreaNs ∫(busy
	// slots)dt over [0, AuditEnd] — the L and ρ sides of Little's law
	// and the utilization law.
	SysAreaNs, BusyAreaNs int64
	// SysResidualNs and BusyResidualNs are the residence and busy time
	// accrued by requests still in flight at AuditEnd, which the ledger
	// (completed operations only) cannot see.
	SysResidualNs, BusyResidualNs int64
	// ClIssued, ClDone, and ClRetrans sum the per-client counters.
	ClIssued, ClDone, ClRetrans uint64
	// AuditEndNs is the instant the integrals run to: the later of the
	// last counted completion and the last flow event.
	AuditEndNs int64
}

// Facts finalizes and reports the audit accounting. Call after Run; it
// is idempotent and does not perturb the Result.
func (s *Server) Facts() Facts {
	end := s.endAt
	if s.lastFlow > end {
		end = s.lastFlow
	}
	s.flowTick(end)
	var sysRes, busyRes int64
	for i := 0; i < s.qLen; i++ {
		p := s.qHead + i
		if p >= len(s.q) {
			p -= len(s.q)
		}
		sysRes += end - s.rqEnq[s.q[p]]
	}
	busySlots := 0
	for _, r := range s.slotReq {
		if r >= 0 {
			busySlots++
			sysRes += end - s.rqEnq[r]
			busyRes += end - s.rqStart[r]
		}
	}
	ringPending := 0
	for t := range s.rings {
		ringPending += s.rings[t].n
	}
	issued, done, retrans := s.ClientBalance()
	return Facts{
		QueueCap: s.cfg.QueueCap, Nfsd: s.cfg.Nfsd,
		PoolCap: len(s.rqClient), PoolFree: len(s.freeList),
		InSystem: s.sysN, BusySlots: busySlots, RingPending: ringPending,
		Resends:   s.resends,
		SysAreaNs: s.sysArea, BusyAreaNs: s.busyArea,
		SysResidualNs: sysRes, BusyResidualNs: busyRes,
		ClIssued: issued, ClDone: done, ClRetrans: retrans,
		AuditEndNs: end,
	}
}

// Run builds and runs a server in one call.
func Run(cfg Config) *Result {
	return New(cfg).Run()
}
