package nfsserver

import (
	"testing"

	"repro/internal/obs"
	"repro/internal/osprofile"
	"repro/internal/sim"
)

// The sampler's per-window deltas must reconcile exactly with the
// end-of-run Result: windows are a decomposition of the run, not an
// approximation of it. A lossy overloaded point exercises every counted
// path (drops, sheds, retransmits) at once.
func TestSamplerReconcilesWithResult(t *testing.T) {
	s := New(Config{Profile: osprofile.Solaris24(), Clients: 200000, Seed: 17,
		TargetOps: 4000, AttemptBudget: 40000, QueueCap: 64,
		Faults: lossyInjector(0.05, 17)})
	smp := obs.NewSampler(10 * sim.Millisecond)
	s.SetSampler(smp)
	r := s.Run()
	ts := smp.Snapshot(sim.Time(r.Elapsed))

	for _, tc := range []struct {
		name string
		want int64
	}{
		{"nfs.arrivals", int64(r.Arrivals)},
		{"nfs.completed", int64(r.Completed)},
		{"nfs.queue_drops", int64(r.QueueDrops)},
		{"nfs.retransmits", int64(r.Retransmits)},
		{"nfs.shed", int64(r.Shed)},
		{"nfs.busy_ns", int64(r.Busy)},
		{"fault.rpc_drops", int64(r.Retransmits)},
	} {
		got, ok := ts.CounterTotal(tc.name)
		if !ok {
			t.Fatalf("series %s missing", tc.name)
		}
		if got != tc.want {
			t.Errorf("%s windows sum to %d, result says %d", tc.name, got, tc.want)
		}
	}
	if r.QueueDrops == 0 || r.Retransmits == 0 || r.Shed == 0 {
		t.Fatalf("config failed to exercise drops/retransmits/sheds: %+v", r)
	}

	var hist *obs.HistSeries
	for i := range ts.Hists {
		if ts.Hists[i].Name == "nfs.latency_ns" {
			hist = &ts.Hists[i]
		}
	}
	if hist == nil {
		t.Fatal("nfs.latency_ns series missing")
	}
	var n uint64
	var sum int64
	for _, w := range hist.Windows {
		n += w.N
		sum += w.Sum
	}
	if n != r.Hist.N() || sum != r.Hist.Sum() {
		t.Fatalf("latency windows n=%d sum=%d, histogram n=%d sum=%d",
			n, sum, r.Hist.N(), r.Hist.Sum())
	}
}

// Attaching a sampler must not perturb the model: same Config, same
// Result bytes, sampled or not.
func TestSamplerDoesNotPerturbRun(t *testing.T) {
	cfg := Config{Profile: osprofile.Linux128(), Clients: 500, Seed: 23,
		TargetOps: 2000, Faults: lossyInjector(0.02, 23)}
	plain := Run(cfg)
	cfg.Faults = lossyInjector(0.02, 23)
	s := New(cfg)
	s.SetSampler(obs.NewSampler(sim.Millisecond))
	sampled := s.Run()
	if resultJSON(t, plain) != resultJSON(t, sampled) {
		t.Fatal("sampler changed the run's result")
	}
}
