package nfsserver

import (
	"encoding/json"
	"runtime"
	"testing"

	"repro/internal/fault"
	"repro/internal/osprofile"
	"repro/internal/sim"
)

func lossyInjector(prob float64, seed uint64) *fault.NetInjector {
	plan := &fault.Plan{}
	plan.Net.UDPLossProb = prob
	return fault.New(plan, sim.NewRNG(seed)).Net
}

func resultJSON(t *testing.T, r *Result) string {
	t.Helper()
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestRunDeterministic(t *testing.T) {
	for _, clients := range []int{10, 1000} {
		cfg := Config{Profile: osprofile.FreeBSD205(), Clients: clients, Seed: 42, TargetOps: 2000}
		a := resultJSON(t, Run(cfg))
		b := resultJSON(t, Run(cfg))
		if a != b {
			t.Fatalf("%d clients: two identical runs differ:\n%s\n%s", clients, a, b)
		}
	}
}

// The model's conservation law: the per-phase ledger sums exactly — in
// integer nanoseconds — to the histogram's total latency, and the
// service phases sum exactly to nfsd busy time.
func TestLedgerSumsToLatency(t *testing.T) {
	for _, p := range osprofile.Paper() {
		for _, tc := range []struct {
			clients int
			loss    float64
		}{
			{10, 0}, {1000, 0}, {1000, 0.05}, {100000, 0.05},
		} {
			cfg := Config{Profile: p, Clients: tc.clients, Seed: 7, TargetOps: 3000, AttemptBudget: 30000}
			if tc.loss > 0 {
				cfg.Faults = lossyInjector(tc.loss, 7)
			}
			r := Run(cfg)
			if r.Completed == 0 {
				t.Fatalf("%s/%d: no completions", p.Name, tc.clients)
			}
			if got, want := r.Ledger.Sum(), sim.Duration(r.Hist.Sum()); got != want {
				t.Fatalf("%s/%d clients/loss %v: ledger sum %d != latency sum %d",
					p.Name, tc.clients, tc.loss, got, want)
			}
			if got, want := r.Ledger.CPU+r.Ledger.DiskWait+r.Ledger.DiskTime, r.Busy; got != want {
				t.Fatalf("%s/%d clients: service phases %d != busy %d", p.Name, tc.clients, got, want)
			}
		}
	}
}

func TestPerClientCountersBalance(t *testing.T) {
	inj := lossyInjector(0.05, 11)
	s := New(Config{Profile: osprofile.Solaris24(), Clients: 5000, Seed: 11,
		TargetOps: 3000, AttemptBudget: 30000, Faults: inj})
	r := s.Run()
	issued, done, retrans := s.ClientBalance()
	if issued != r.Arrivals {
		t.Fatalf("per-client issued %d != arrivals %d", issued, r.Arrivals)
	}
	if done != r.Completed {
		t.Fatalf("per-client completed %d != completions %d", done, r.Completed)
	}
	if retrans != r.Retransmits {
		t.Fatalf("per-client retransmits %d != aggregate %d", retrans, r.Retransmits)
	}
	// The injector's own ledger agrees: every wire loss was attributed
	// to exactly one client.
	if retrans != inj.RPCRetransmits {
		t.Fatalf("per-client retransmits %d != injector's %d", retrans, inj.RPCRetransmits)
	}
	if retrans == 0 {
		t.Fatal("5% loss over 30000 attempts produced no retransmits")
	}
}

// Lossy clients degrade the latency curves; they must not collapse the
// run. With 5% wire loss the sweep still completes, still serves
// operations, and the tail is no better than the lossless tail.
func TestLossyDegradesGracefully(t *testing.T) {
	// An unsaturated, in-cache point: latency is CPU plus wire, so wire
	// loss can only add backoff waits. (At a saturated point shedding 5%
	// of the load can legitimately *improve* the tail.)
	base := Config{Profile: osprofile.Linux128(), Clients: 300, Seed: 3,
		TargetOps: 3000, AttemptBudget: 30000}
	clean := Run(base)
	lossy := base
	lossy.Faults = lossyInjector(0.05, 3)
	got := Run(lossy)
	if got.Completed == 0 {
		t.Fatal("lossy run served nothing")
	}
	if got.Retransmits == 0 {
		t.Fatal("lossy run recorded no retransmits")
	}
	if got.Quantile(0.99) < clean.Quantile(0.99) {
		t.Fatalf("5%% loss improved p99: %v < %v", got.Quantile(0.99), clean.Quantile(0.99))
	}
	if got.Ledger.RTO == 0 {
		t.Fatal("lossy run charged no RTO wait")
	}
}

// The write-commit policy differentiates the personalities: at a load
// where the buffer cache still absorbs every read, an asynchronous
// server (Linux 1.2.8) touches the disk for nothing, while a
// spec-compliant synchronous server commits every write.
func TestSyncWritePolicySeparatesPersonalities(t *testing.T) {
	cfg := Config{Clients: 200, Seed: 5, TargetOps: 2000}
	cfg.Profile = osprofile.Linux128()
	linux := Run(cfg)
	cfg.Profile = osprofile.Solaris24()
	solaris := Run(cfg)
	if linux.Ledger.DiskTime != 0 {
		t.Fatalf("async Linux server paid %v of disk time at an in-cache load", linux.Ledger.DiskTime)
	}
	if solaris.Ledger.DiskTime == 0 {
		t.Fatal("synchronous Solaris server paid no disk time for writes")
	}
	if solaris.Quantile(0.5) <= linux.Quantile(0.5) {
		t.Fatalf("sync p50 %v not above async p50 %v", solaris.Quantile(0.5), linux.Quantile(0.5))
	}
}

func TestQueueOverloadDropsAndSheds(t *testing.T) {
	r := Run(Config{Profile: osprofile.Solaris24(), Clients: 1000000, Seed: 9,
		TargetOps: 20000, AttemptBudget: 50000})
	if r.QueueDrops == 0 {
		t.Fatal("a million clients never overflowed a 1024-deep queue")
	}
	if r.Shed == 0 {
		t.Fatal("overload shed nothing despite the retry cap")
	}
	if r.Completed == 0 {
		t.Fatal("overloaded server completed nothing")
	}
	if r.Attempts > 50000+uint64(maxSendsPerOp) {
		t.Fatalf("attempt budget not honoured: %d attempts", r.Attempts)
	}
}

// The hot path must not allocate in steady state: after warm-up (wheel
// slab, idle/free stacks at capacity) the remainder of a run performs
// a bounded, load-independent number of heap allocations.
func TestSteadyStateAllocFree(t *testing.T) {
	s := New(Config{Profile: osprofile.FreeBSD205(), Clients: 10000, Seed: 13,
		TargetOps: 20000, AttemptBudget: 40000})
	s.scheduleNextArrival()
	warm := 0
	for s.w.Step() && !s.done && warm < 2000 {
		warm++
	}
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	steps := 0
	for s.w.Step() && !s.done {
		steps++
	}
	runtime.ReadMemStats(&after)
	if steps < 10000 {
		t.Fatalf("measured only %d steady-state events", steps)
	}
	if got := after.Mallocs - before.Mallocs; got > 50 {
		t.Fatalf("steady state allocated %d times over %d events", got, steps)
	}
}

func TestResultJSONCarriesHistogram(t *testing.T) {
	r := Run(Config{Profile: osprofile.Linux128(), Clients: 100, Seed: 1, TargetOps: 500})
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var back Result
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Hist != r.Hist || back.Completed != r.Completed || back.Ledger != r.Ledger {
		t.Fatal("Result did not survive a JSON round trip")
	}
}
