package nfsserver

import (
	"testing"

	"repro/internal/obs"
	"repro/internal/osprofile"
	"repro/internal/sim"
)

// exemplarConfigs covers a light clean run and a lossy overloaded one
// (drops, retransmits, and sheds all exercised).
func exemplarConfigs() map[string]Config {
	return map[string]Config{
		"clean": {Profile: osprofile.Linux128(), Clients: 500, Seed: 11,
			TargetOps: 2000},
		"lossy": {Profile: osprofile.Solaris24(), Clients: 200000, Seed: 17,
			TargetOps: 4000, AttemptBudget: 40000, QueueCap: 64,
			Faults: lossyInjector(0.05, 17)},
	}
}

// Every retained exemplar's phase sum must equal its recorded lifetime
// exactly — the per-request form of the ledger identity — and completed
// exemplars must carry a coherent timestamp chain.
func TestExemplarPhaseSumsExact(t *testing.T) {
	for name, cfg := range exemplarConfigs() {
		t.Run(name, func(t *testing.T) {
			if name == "lossy" {
				cfg.Faults = lossyInjector(0.05, 17)
			}
			s := New(cfg)
			ex := obs.NewExemplars(cfg.Seed, 4, 100*sim.Millisecond)
			s.SetExemplars(ex)
			s.Run()
			wins := ex.Snapshot()
			if len(wins) == 0 {
				t.Fatal("no exemplars retained")
			}
			var completed, shed int
			for _, w := range wins {
				if len(w.Exemplars) > 4 {
					t.Fatalf("window %d retains %d exemplars, want <= 4", w.Window, len(w.Exemplars))
				}
				for _, e := range w.Exemplars {
					if got, want := e.PhaseSum(), e.LatencyNs; got != want {
						t.Fatalf("exemplar %d (%s, shed=%v): phase sum %d != lifetime %d",
							e.ID, e.Class, e.Shed, got, want)
					}
					if e.EndNs-e.IssueNs != e.LatencyNs {
						t.Fatalf("exemplar %d: end-issue %d != latency %d", e.ID, e.EndNs-e.IssueNs, e.LatencyNs)
					}
					if e.Shed {
						shed++
						if e.EnqNs != -1 || e.StartNs != -1 {
							t.Fatalf("shed exemplar %d has service timestamps", e.ID)
						}
						continue
					}
					completed++
					if !(e.IssueNs < e.EnqNs && e.EnqNs <= e.StartNs && e.StartNs < e.EndNs) {
						t.Fatalf("exemplar %d: incoherent timestamps %+v", e.ID, e)
					}
					if e.QueueNs != e.StartNs-e.EnqNs {
						t.Fatalf("exemplar %d: queue phase %d != start-enq %d", e.ID, e.QueueNs, e.StartNs-e.EnqNs)
					}
				}
			}
			if completed == 0 {
				t.Fatal("no completed exemplars retained")
			}
			if name == "lossy" && shed == 0 {
				t.Fatal("lossy run retained no shed exemplars")
			}
		})
	}
}

// Attaching an exemplar reservoir must not perturb the model.
func TestExemplarsDoNotPerturbRun(t *testing.T) {
	cfg := Config{Profile: osprofile.Linux128(), Clients: 500, Seed: 23,
		TargetOps: 2000, Faults: lossyInjector(0.02, 23)}
	plain := Run(cfg)
	cfg.Faults = lossyInjector(0.02, 23)
	s := New(cfg)
	s.SetExemplars(obs.NewExemplars(cfg.Seed, 4, 100*sim.Millisecond))
	sampled := s.Run()
	if resultJSON(t, plain) != resultJSON(t, sampled) {
		t.Fatal("exemplar reservoir changed the run's result")
	}
}

// The always-on audit accounting must reconcile exactly with the Result
// and the Ledger: flow balance against the pool free-list and ring
// occupancy, Little's law and the utilization law as exact integer area
// identities, and the per-client counter sums.
func TestFactsReconcileWithResult(t *testing.T) {
	for name, cfg := range exemplarConfigs() {
		t.Run(name, func(t *testing.T) {
			if name == "lossy" {
				cfg.Faults = lossyInjector(0.05, 17)
			}
			s := New(cfg)
			r := s.Run()
			f := s.Facts()

			inflight := uint64(f.PoolCap - f.PoolFree)
			if r.Arrivals != r.Completed+r.Shed+inflight {
				t.Fatalf("flow balance: arrivals %d != completed %d + shed %d + inflight %d",
					r.Arrivals, r.Completed, r.Shed, inflight)
			}
			if inflight != uint64(f.InSystem+f.RingPending) {
				t.Fatalf("pool occupancy %d != in-system %d + ring-pending %d",
					inflight, f.InSystem, f.RingPending)
			}
			if r.Attempts != r.Arrivals+f.Resends {
				t.Fatalf("attempts %d != arrivals %d + resends %d", r.Attempts, r.Arrivals, f.Resends)
			}
			led := r.Ledger
			if residence := int64(led.QueueWait + led.CPU + led.DiskWait + led.DiskTime); f.SysAreaNs != residence+f.SysResidualNs {
				t.Fatalf("Little's law: ∫N dt = %d, residence %d + residual %d = %d",
					f.SysAreaNs, residence, f.SysResidualNs, residence+f.SysResidualNs)
			}
			if f.BusyAreaNs != int64(r.Busy)+f.BusyResidualNs {
				t.Fatalf("utilization law: ∫busy dt = %d, Busy %d + residual %d",
					f.BusyAreaNs, r.Busy, f.BusyResidualNs)
			}
			if int64(led.CPU+led.DiskWait+led.DiskTime) != int64(r.Busy) {
				t.Fatalf("service decomposition: cpu+diskwait+disk %d != Busy %d",
					led.CPU+led.DiskWait+led.DiskTime, r.Busy)
			}
			if f.ClIssued != r.Arrivals || f.ClDone != r.Completed || f.ClRetrans != r.Retransmits {
				t.Fatalf("client balance (%d,%d,%d) != result (%d,%d,%d)",
					f.ClIssued, f.ClDone, f.ClRetrans, r.Arrivals, r.Completed, r.Retransmits)
			}
			// Facts is idempotent.
			if g := s.Facts(); g != f {
				t.Fatalf("Facts not idempotent: %+v then %+v", f, g)
			}
		})
	}
}

// The nfs.op_inflight series' window deltas must sum to the requests
// still in flight at the end of the run — the windowed flow balance.
func TestOpInflightSeriesBalances(t *testing.T) {
	cfg := exemplarConfigs()["lossy"]
	cfg.Faults = lossyInjector(0.05, 17)
	s := New(cfg)
	smp := obs.NewSampler(10 * sim.Millisecond)
	s.SetSampler(smp)
	r := s.Run()
	f := s.Facts()
	ts := smp.Snapshot(sim.Time(r.Elapsed))
	got, ok := ts.CounterTotal("nfs.op_inflight")
	if !ok {
		t.Fatal("nfs.op_inflight series missing")
	}
	if want := int64(f.PoolCap - f.PoolFree); got != want {
		t.Fatalf("op_inflight windows sum to %d, pool says %d in flight", got, want)
	}
}
