// Package osprofile defines the operating-system personalities under test.
//
// A Profile gathers everything that distinguishes one UNIX from another in
// the paper's benchmarks: scheduler structure, base system-call cost, pipe
// implementation, file-system metadata policy, buffer-cache behaviour,
// network-stack costs and windowing, and NFS client/server policy. The
// mechanisms (O(n) run-queue scans, synchronous metadata writes, one-packet
// TCP windows, ...) live in the kernel, fs, netstack and nfs packages; the
// Profile supplies the parameters that select and size them.
//
// Values fall into two classes:
//
//   - Policies the paper states outright (ext2 updates metadata
//     asynchronously; Linux 1.2.8's TCP window is one packet; FreeBSD keeps
//     a separate attribute cache; Solaris pipes ride on STREAMS). These are
//     encoded as booleans, counts, and structural choices.
//
//   - Base costs the paper measures but does not decompose (the 2.31 µs
//     Linux getpid, Solaris' 140 µs bare context switch). These are
//     calibrated constants, chosen so the simulated benchmarks land near
//     the paper's Tables and Figures on the modelled hardware.
package osprofile

import "repro/internal/sim"

// MetaPolicy is a file system's metadata-update discipline (§7.2).
type MetaPolicy int

const (
	// MetaSync writes metadata synchronously on create/delete/mkdir, the
	// BSD FFS discipline that preserves consistency across crashes.
	MetaSync MetaPolicy = iota
	// MetaAsync dirties metadata in the buffer cache and lets the flusher
	// write it later — ext2fs' policy, the source of Linux's
	// order-of-magnitude small-file advantage.
	MetaAsync
	// MetaOrderedAsync defers metadata writes but orders them so the disk
	// image stays recoverable — the policy the paper's §13 anticipates in
	// FreeBSD 2.1.
	MetaOrderedAsync
)

// String names the policy.
func (p MetaPolicy) String() string {
	switch p {
	case MetaSync:
		return "synchronous"
	case MetaAsync:
		return "asynchronous"
	case MetaOrderedAsync:
		return "ordered-asynchronous"
	}
	return "unknown"
}

// SchedulerKind selects the context-switch mechanism in the kernel model.
type SchedulerKind int

const (
	// SchedScanAll models Linux 1.2's scheduler, which recomputes goodness
	// across the whole task list on every switch: O(n) in active tasks.
	SchedScanAll SchedulerKind = iota
	// SchedRunQueues models 4.4BSD's constant-time priority queues.
	SchedRunQueues
	// SchedPreemptiveMT models Solaris' fully preemptive multi-threaded
	// dispatcher: constant-time pick with a high base cost, plus an
	// x86-specific 32-entry mapping resource whose overflow produces the
	// paper's Figure 1 discontinuity.
	SchedPreemptiveMT
)

// KernelCosts parameterises the kernel model (system calls, scheduling,
// pipes).
type KernelCosts struct {
	// Scheduler selects the context-switch mechanism.
	Scheduler SchedulerKind
	// Syscall is the bare trap-and-return cost (the getpid time, Table 2).
	Syscall sim.Duration
	// ReadWriteExtra is added to Syscall for read()/write() on pipes and
	// sockets: argument validation, file table lookup, locking.
	ReadWriteExtra sim.Duration
	// CtxBase is the fixed cost of a context switch: saving and loading
	// register state, switching address spaces.
	CtxBase sim.Duration
	// CtxPerTask is the per-active-task cost of the SchedScanAll pick.
	CtxPerTask sim.Duration
	// CtxTableSize is the capacity of the per-process mapping resource
	// consulted on each switch (SchedPreemptiveMT only; 0 disables).
	CtxTableSize int
	// CtxTableMiss is the penalty for reloading an entry of that table.
	CtxTableMiss sim.Duration
	// PipeWake is the cost of waking the peer blocked on a pipe.
	PipeWake sim.Duration
	// PipeWakeAll selects the pipe wakeup discipline: true wakes every
	// process waiting on the pipe with one PipeWake charge (the
	// thundering-herd behaviour of the era's kernels — woken processes
	// that find the buffer empty simply re-block), false wakes only the
	// head of the FIFO wait queue, charging PipeWake per wake. All the
	// built-in personalities use wake-all, matching what the paper's
	// kernels did; wake-one exists for what-if profiles.
	PipeWakeAll bool
	// PipeCopyPerKB is the one-direction cost of moving pipe data between
	// a user buffer and the kernel. Solaris' STREAMS-based pipes pay
	// message allocation on top of the copy, which is why theirs is
	// largest (§9.1, [Kottapurath 95]).
	PipeCopyPerKB sim.Duration
	// PipeCapacity is the kernel pipe buffer size in bytes.
	PipeCapacity int
	// Fork and Exec are process-creation costs (MAB's compile phase forks
	// a driver, preprocessor, compiler and assembler per source file).
	Fork, Exec sim.Duration
	// PerCPUQueues selects the SMP run-queue layout: true gives every
	// virtual CPU its own queue with deterministic work stealing
	// (Solaris' per-CPU dispatch queues), false shares one global queue
	// (the Linux 1.2 / 4.4BSD big-lock structure). Irrelevant at one CPU,
	// where both reduce to the uniprocessor scheduler bit for bit.
	PerCPUQueues bool
	// StealCost is the extra dispatch cost of pulling a thread off
	// another CPU's queue (PerCPUQueues only).
	StealCost sim.Duration
}

// LockCosts parameterises the SMP lock subsystem: spinlocks with
// capped exponential backoff, sleep locks that block through the
// scheduler, and RCU-style read-mostly paths. The constants are
// per-personality calibrations in the spirit of the kernel costs: the
// paper's systems were measured uniprocessor, so these encode each
// lineage's synchronization style (Linux's bare test-and-set, 4.4BSD's
// tsleep/wakeup, Solaris' adaptive mutexes and dispatcher locks) at
// plausible mid-90s magnitudes.
type LockCosts struct {
	// SpinAcquire is the cost of an uncontended spinlock acquire (and of
	// the release store) — one locked bus transaction plus bookkeeping.
	SpinAcquire sim.Duration
	// SpinCheck is the cost of one failed poll of a held spinlock.
	SpinCheck sim.Duration
	// SpinBackoffMax caps the exponential backoff delay between polls.
	// The ladder starts at SpinCheck and doubles per failed poll; the
	// cap bounds how stale a spinner's view of the lock can get, and is
	// what makes spinning lose to sleeping once critical sections grow
	// long (the handoff delay approaches the cap while a sleep lock's
	// wake+switch cost is fixed).
	SpinBackoffMax sim.Duration
	// SleepAcquire is the cost of an uncontended sleep-lock acquire (and
	// of an uncontended release).
	SleepAcquire sim.Duration
	// SleepBlock is the bookkeeping cost of enqueueing on the lock's
	// wait channel and entering the scheduler (the context-switch cost
	// itself is charged by the dispatcher, as always).
	SleepBlock sim.Duration
	// SleepWake is the releaser's cost of waking the head waiter.
	SleepWake sim.Duration
	// RCURead is the read-side enter+exit cost of an RCU-style section.
	RCURead sim.Duration
	// RCUSync is the writer's fixed cost of one synchronize call, on top
	// of waiting out the readers' grace period.
	RCUSync sim.Duration
}

// FSCosts parameterises the local file-system model.
type FSCosts struct {
	// Type names the file system implementation.
	Type string
	// MetaPolicy is the metadata-update discipline.
	MetaPolicy MetaPolicy
	// SyncWritesPerCreate/Unlink/Mkdir count the synchronous metadata disk
	// writes each operation performs under MetaSync. The paper infers
	// FreeBSD issues more (or farther) writes than Solaris from the
	// constant ~32 ms crtdel gap (§7.2).
	SyncWritesPerCreate int
	SyncWritesPerUnlink int
	SyncWritesPerMkdir  int
	// MetaSeekSpread is how many cylinders apart consecutive metadata
	// writes land — the "seeks further" half of the paper's FreeBSD
	// hypothesis.
	MetaSeekSpread int
	// MetaWriteBytes is the size of one synchronous metadata write.
	// 4.4BSD FFS rewrites whole blocks; SVR4 UFS writes fragments.
	MetaWriteBytes int
	// ReadPerKB/WritePerKB are the CPU+copy costs of moving file data
	// between a user buffer and the buffer cache.
	ReadPerKB, WritePerKB sim.Duration
	// AllocPerCall is the CPU cost a write(2) call pays when it has to
	// allocate new blocks (bitmap search, block-map locking, indirect
	// maintenance), charged once per allocating call. Because bonnie
	// writes 8 KB per call while crtdel writes the whole file in one
	// call, a per-call cost is what lets FreeBSD write bonnie files 50%
	// faster than Solaris (Figure 10) while the crtdel gap between them
	// stays constant in file size (Figure 12). ext2 in Linux 1.2.8 is
	// strikingly expensive here, which keeps its sequential write
	// bandwidth under half of the others' even though its in-place
	// rewrites are fast (Figure 11).
	AllocPerCall sim.Duration
	// RandomIOOverhead is the extra CPU cost of a non-sequential file
	// operation (block-map lookup without read-ahead help). FreeBSD's
	// larger value is what puts it ~50% behind on bonnie's in-cache seek
	// rate (Figure 11).
	RandomIOOverhead sim.Duration
	// OpFixed is the fixed CPU cost of one file-system operation beyond
	// the bare syscall (name lookup, inode manipulation).
	OpFixed sim.Duration
	// SeqReadEff/SeqWriteEff are the fractions of the disk's media rate
	// achieved on cache-miss sequential I/O (read-ahead and clustering
	// quality).
	SeqReadEff, SeqWriteEff float64
	// BufferCacheMB is how much of the 32 MB machine the dynamically sized
	// buffer cache will grow to claim (§7: all three cache ~20 MB files).
	BufferCacheMB int
	// DirtyLimitMB is how much dirty file data may accumulate before the
	// writer is throttled to disk speed.
	DirtyLimitMB int
	// AttrCache reports a separate attribute/name cache that survives data
	// cache pressure — FreeBSD's advantage in MAB's stat phase (§8.1).
	AttrCache bool
}

// NetCosts parameterises the UDP and TCP models (§9).
type NetCosts struct {
	// UDPPerPacket is the combined send+receive per-packet CPU cost:
	// header formation, checksum, buffer management, socket wakeups.
	UDPPerPacket sim.Duration
	// UDPCopyPerKB is the per-KB cost across all copies on the UDP path.
	// Linux 1.2.8's extra copies and "inefficient buffer allocation" make
	// its value much larger (§9.2).
	UDPCopyPerKB sim.Duration
	// TCPPerPacket and TCPCopyPerKB are the TCP equivalents.
	TCPPerPacket sim.Duration
	TCPCopyPerKB sim.Duration
	// TCPWindowPackets is the effective send window in packets. Linux
	// 1.2.8 has a window of one packet, which throttles its TCP to less
	// than half of FreeBSD's bandwidth (§9.3).
	TCPWindowPackets int
	// MSS is the maximum segment size on the loopback path, bytes.
	MSS int
	// AckCost is the receiver's cost to generate and the sender's cost to
	// process one acknowledgement (plus the scheduler round trip, charged
	// by the model).
	AckCost sim.Duration
	// TCPNoise is the relative run-to-run variability of TCP throughput.
	// The paper measured an unusually unstable 16.34% for Solaris.
	TCPNoise float64
	// UDPMaxDatagram is the largest datagram the stack accepts.
	UDPMaxDatagram int
}

// NFSCosts parameterises NFS client and server behaviour (§10).
type NFSCosts struct {
	// ClientPerRPC is the client-side CPU cost per NFS RPC.
	ClientPerRPC sim.Duration
	// TransferSize is the rsize/wsize the client uses with a
	// well-matched server.
	TransferSize int
	// ForeignTransferSize is the rsize/wsize used with a server of a
	// different lineage. Linux 1.2.8's client is "apparently tuned to work
	// with other Linux hosts and performs miserably when connected to
	// other types of servers" — modelled as a small foreign transfer size
	// plus no request pipelining.
	ForeignTransferSize int
	// Pipelined reports whether the client keeps multiple RPCs in flight
	// (biod-style read-ahead/write-behind), overlapping wire time with
	// server processing.
	Pipelined bool
	// ClientCachesData reports whether the client caches file data it has
	// read or written, so re-reads are local. Linux 1.2.8's client does
	// not, which is part of why MAB over NFS punishes it (§10).
	ClientCachesData bool
	// ClientCacheMB bounds the client-side data cache; a working set
	// beyond it falls back to the wire.
	ClientCacheMB int
	// SerializesSyncWrites reports a conservative client that stops
	// pipelining when the server commits synchronously — the Solaris
	// behaviour that makes it degrade badly against the SunOS server
	// (Table 7).
	SerializesSyncWrites bool
	// AttrCacheTTL is how long cached attributes satisfy stats without an
	// RPC (zero disables the attribute cache).
	AttrCacheTTL sim.Duration
	// ServerPerRPC is the server-side CPU cost per RPC when this OS serves.
	ServerPerRPC sim.Duration
	// ServerSyncWrites reports whether the server commits data and
	// metadata to disk before replying, as the NFS spec requires and SunOS
	// does; the Linux 1.2.8 server answers from its cache (§10).
	ServerSyncWrites bool
	// ServerSyncMetaPerWrite is how many synchronous metadata updates
	// (inode times, indirect blocks) accompany each committed write RPC on
	// a sync server.
	ServerSyncMetaPerWrite int
	// RequiresPrivPort reports the Linux 1.2.8 server quirk of rejecting
	// clients on non-privileged ports (§11).
	RequiresPrivPort bool
	// SendsPrivPort reports whether the client binds a privileged port by
	// default (FreeBSD 2.0.5 does not, §11).
	SendsPrivPort bool
}

// Noise gathers the relative run-to-run variability injected per benchmark
// area, calibrated to the paper's reported standard deviations.
type Noise struct {
	Syscall float64 // Table 2 Std Dev
	Ctx     float64 // Figure 1 (2-process values)
	Mem     float64 // Figures 2-8
	FS      float64 // Figures 9-12
	MAB     float64 // Table 3
	Pipe    float64 // Table 4
	UDP     float64 // Figure 13
	NFS     float64 // Tables 6-7
}

// Profile is one operating-system personality.
type Profile struct {
	// Name is the OS name, Version its release.
	Name, Version string
	// Lineage describes the code ancestry the paper discusses in §2.1.
	Lineage string
	// Kernel, FS, Net, NFS hold the subsystem parameters; Lock holds the
	// SMP lock-subsystem parameters.
	Kernel KernelCosts
	Lock   LockCosts
	FS     FSCosts
	Net    NetCosts
	NFS    NFSCosts
	// Noise holds the per-area variability.
	Noise Noise
}

// String returns "Name Version".
func (p *Profile) String() string { return p.Name + " " + p.Version }
