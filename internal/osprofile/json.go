package osprofile

import (
	"encoding/json"
	"fmt"
	"io"
)

// JSON serialization lets users define operating-system personalities in
// a file and benchmark them with `pentiumbench -profiles file.json ...`
// without writing Go. Durations serialize as readable strings ("2.31µs"),
// and the structural enums serialize by name.

var metaPolicyNames = map[MetaPolicy]string{
	MetaSync:         "sync",
	MetaAsync:        "async",
	MetaOrderedAsync: "ordered-async",
}

// MarshalJSON implements json.Marshaler.
func (p MetaPolicy) MarshalJSON() ([]byte, error) {
	name, ok := metaPolicyNames[p]
	if !ok {
		return nil, fmt.Errorf("osprofile: unknown MetaPolicy %d", int(p))
	}
	return json.Marshal(name)
}

// UnmarshalJSON implements json.Unmarshaler.
func (p *MetaPolicy) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	for k, v := range metaPolicyNames {
		if v == s {
			*p = k
			return nil
		}
	}
	return fmt.Errorf("osprofile: unknown metadata policy %q (want sync, async, or ordered-async)", s)
}

var schedulerNames = map[SchedulerKind]string{
	SchedScanAll:      "scan-all",
	SchedRunQueues:    "run-queues",
	SchedPreemptiveMT: "preemptive-mt",
}

// MarshalJSON implements json.Marshaler.
func (k SchedulerKind) MarshalJSON() ([]byte, error) {
	name, ok := schedulerNames[k]
	if !ok {
		return nil, fmt.Errorf("osprofile: unknown SchedulerKind %d", int(k))
	}
	return json.Marshal(name)
}

// UnmarshalJSON implements json.Unmarshaler.
func (k *SchedulerKind) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	for kk, v := range schedulerNames {
		if v == s {
			*k = kk
			return nil
		}
	}
	return fmt.Errorf("osprofile: unknown scheduler %q (want scan-all, run-queues, or preemptive-mt)", s)
}

// String names the scheduler kind (used by diagnostics).
func (k SchedulerKind) String() string {
	if n, ok := schedulerNames[k]; ok {
		return n
	}
	return fmt.Sprintf("SchedulerKind(%d)", int(k))
}

// WriteJSON serializes profiles as an indented JSON array.
func WriteJSON(w io.Writer, profiles []*Profile) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(profiles)
}

// LoadJSON reads a JSON array of profiles and validates each.
func LoadJSON(r io.Reader) ([]*Profile, error) {
	var profiles []*Profile
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&profiles); err != nil {
		return nil, fmt.Errorf("osprofile: %v", err)
	}
	for i, p := range profiles {
		if err := p.Validate(); err != nil {
			return nil, fmt.Errorf("osprofile: profile %d (%s): %v", i, p, err)
		}
	}
	return profiles, nil
}

// Validate checks a personality for the invariants the models rely on.
func (p *Profile) Validate() error {
	switch {
	case p.Name == "" || p.Version == "":
		return fmt.Errorf("missing name or version")
	case p.Kernel.Syscall <= 0:
		return fmt.Errorf("syscall cost must be positive")
	case p.Kernel.PipeCapacity <= 0:
		return fmt.Errorf("pipe capacity must be positive")
	case p.Kernel.Scheduler == SchedScanAll && p.Kernel.CtxPerTask <= 0:
		return fmt.Errorf("scan-all scheduler needs a per-task cost")
	case p.Kernel.Scheduler == SchedPreemptiveMT && p.Kernel.CtxTableSize < 0:
		return fmt.Errorf("negative dispatch table size")
	case p.Kernel.StealCost < 0:
		return fmt.Errorf("negative steal cost")
	// Lock costs are non-negative rather than required-positive so that
	// profile JSONs written before the SMP model existed stay loadable
	// (the kernel clamps zero spin quanta to a positive floor).
	case p.Lock.SpinAcquire < 0 || p.Lock.SpinCheck < 0 || p.Lock.SpinBackoffMax < 0 ||
		p.Lock.SleepAcquire < 0 || p.Lock.SleepBlock < 0 || p.Lock.SleepWake < 0 ||
		p.Lock.RCURead < 0 || p.Lock.RCUSync < 0:
		return fmt.Errorf("negative lock cost")
	case p.FS.ReadPerKB <= 0 || p.FS.WritePerKB <= 0:
		return fmt.Errorf("file data copy costs must be positive")
	case p.FS.SeqReadEff <= 0 || p.FS.SeqReadEff > 1 || p.FS.SeqWriteEff <= 0 || p.FS.SeqWriteEff > 1:
		return fmt.Errorf("sequential efficiencies must be in (0,1]")
	case p.FS.BufferCacheMB <= 0:
		return fmt.Errorf("buffer cache must be positive")
	case p.FS.MetaPolicy == MetaSync && p.FS.MetaWriteBytes <= 0:
		return fmt.Errorf("synchronous metadata needs a write size")
	case p.Net.MSS <= 0 || p.Net.TCPWindowPackets <= 0:
		return fmt.Errorf("TCP needs a positive MSS and window")
	case p.Net.UDPMaxDatagram <= 0:
		return fmt.Errorf("UDP needs a max datagram size")
	case p.NFS.TransferSize <= 0 || p.NFS.ForeignTransferSize <= 0:
		return fmt.Errorf("NFS transfer sizes must be positive")
	}
	return nil
}
