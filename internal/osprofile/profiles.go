package osprofile

import "repro/internal/sim"

// µs is a readability helper for the calibrated constants below.
const µs = sim.Microsecond

// Linux128 returns the personality of Linux 1.2.8 (Slackware), the paper's
// Linux under test.
//
// Structure the paper reports: a slightly more optimized syscall path than
// FreeBSD's; a scheduler that scans an O(n) task list on every switch
// (fastest below ~20 processes, linear above); ext2fs with asynchronous
// metadata updates (an order of magnitude faster on small-file workloads);
// the best pipe bandwidth; a UDP path burdened by unnecessary copies and
// inefficient buffer allocation; a TCP window of a single packet; and an
// NFS client tuned for Linux servers that collapses against others.
func Linux128() *Profile {
	return &Profile{
		Name:    "Linux",
		Version: "1.2.8",
		Lineage: "independent implementation (Posix.1ish, BSD+SysV features)",
		Kernel: KernelCosts{
			Scheduler:      SchedScanAll,
			Syscall:        2310 * sim.Nanosecond, // Table 2: 2.31 µs
			ReadWriteExtra: 2700 * sim.Nanosecond,
			CtxBase:        34 * µs,
			CtxPerTask:     1400 * sim.Nanosecond,
			PipeWake:       8 * µs,
			PipeWakeAll:    true,
			PipeCopyPerKB:  22 * µs,
			PipeCapacity:   4096,
			Fork:           1900 * µs,
			Exec:           4200 * µs,
		},
		// SMP style: a bare test-and-set spinlock under the big kernel
		// lock — cheapest polls, a short backoff cap, minimal sleep-path
		// bookkeeping. Global run queue (there is only one, under the BKL).
		Lock: LockCosts{
			SpinAcquire:    200 * sim.Nanosecond,
			SpinCheck:      120 * sim.Nanosecond,
			SpinBackoffMax: 60 * µs,
			SleepAcquire:   600 * sim.Nanosecond,
			SleepBlock:     4 * µs,
			SleepWake:      8 * µs,
			RCURead:        90 * sim.Nanosecond,
			RCUSync:        40 * µs,
		},
		FS: FSCosts{
			Type:                "ext2fs",
			MetaPolicy:          MetaAsync,
			SyncWritesPerCreate: 0,
			SyncWritesPerUnlink: 0,
			SyncWritesPerMkdir:  0,
			MetaSeekSpread:      8,
			MetaWriteBytes:      1024,
			ReadPerKB:           52 * µs,
			WritePerKB:          60 * µs,
			AllocPerCall:        2200 * µs,
			RandomIOOverhead:    120 * µs,
			OpFixed:             40 * µs,
			SeqReadEff:          0.55,
			SeqWriteEff:         0.35,
			BufferCacheMB:       20,
			DirtyLimitMB:        8,
			AttrCache:           false,
		},
		Net: NetCosts{
			UDPPerPacket:     450 * µs,
			UDPCopyPerKB:     455 * µs,
			TCPPerPacket:     80 * µs,
			TCPCopyPerKB:     118 * µs,
			TCPWindowPackets: 1, // §9.3: "a TCP window of only one packet"
			MSS:              1460,
			AckCost:          150 * µs,
			TCPNoise:         0.0545,
			UDPMaxDatagram:   65507,
		},
		NFS: NFSCosts{
			ClientPerRPC:        400 * µs,
			TransferSize:        4096,
			ForeignTransferSize: 2048,
			Pipelined:           false,
			ClientCachesData:    false,
			AttrCacheTTL:        0,
			ServerPerRPC:        300 * µs,
			ServerSyncWrites:    false, // §10: keeps its asynchronous policy
			RequiresPrivPort:    true,  // §11
			SendsPrivPort:       true,
		},
		Noise: Noise{
			Syscall: 0.0010,
			Ctx:     0.03,
			Mem:     0.01,
			FS:      0.035,
			MAB:     0.0410,
			Pipe:    0.0160,
			UDP:     0.05,
			NFS:     0.0220,
		},
	}
}

// FreeBSD205 returns the personality of FreeBSD 2.0.5R.
//
// Structure the paper reports: 4.4BSD-lite ancestry; constant-time
// scheduling (flat context-switch curve); FFS with synchronous metadata
// updates that issues more (or farther) metadata writes than Solaris; a
// separate attribute cache that wins MAB's stat phase; and the best
// network stack of the three.
func FreeBSD205() *Profile {
	return &Profile{
		Name:    "FreeBSD",
		Version: "2.0.5R",
		Lineage: "4.4BSD-lite (CSRG, U.C. Berkeley)",
		Kernel: KernelCosts{
			Scheduler:      SchedRunQueues,
			Syscall:        2620 * sim.Nanosecond, // Table 2: 2.62 µs
			ReadWriteExtra: 2900 * sim.Nanosecond,
			CtxBase:        58 * µs,
			PipeWake:       10 * µs,
			PipeWakeAll:    true,
			PipeCopyPerKB:  33 * µs,
			PipeCapacity:   8192,
			Fork:           4000 * µs,
			Exec:           10000 * µs,
		},
		// SMP style: 4.4BSD simple_locks plus tsleep/wakeup — moderate
		// poll cost, a mid-range backoff cap, and a heavier sleep path
		// than Linux's. Global run queue (the 4.4BSD sched_lock world).
		Lock: LockCosts{
			SpinAcquire:    320 * sim.Nanosecond,
			SpinCheck:      180 * sim.Nanosecond,
			SpinBackoffMax: 110 * µs,
			SleepAcquire:   900 * sim.Nanosecond,
			SleepBlock:     6 * µs,
			SleepWake:      10 * µs,
			RCURead:        160 * sim.Nanosecond,
			RCUSync:        70 * µs,
		},
		FS: FSCosts{
			Type:                "ufs (4.4BSD FFS)",
			MetaPolicy:          MetaSync,
			SyncWritesPerCreate: 2,
			SyncWritesPerUnlink: 6, // §7.2: "accesses the disk more than is necessary"
			SyncWritesPerMkdir:  2,
			MetaSeekSpread:      40,   // "... or seeks further" (§7.2)
			MetaWriteBytes:      4096, // FFS rewrites half-blocks
			ReadPerKB:           46 * µs,
			WritePerKB:          83 * µs,
			AllocPerCall:        180 * µs,
			RandomIOOverhead:    400 * µs,
			OpFixed:             100 * µs,
			SeqReadEff:          0.80,
			SeqWriteEff:         0.80,
			BufferCacheMB:       20,
			DirtyLimitMB:        8, // Figure 10: the 8 MB write knee
			AttrCache:           true,
		},
		Net: NetCosts{
			UDPPerPacket:     300 * µs,
			UDPCopyPerKB:     133 * µs,
			TCPPerPacket:     50 * µs,
			TCPCopyPerKB:     75 * µs,
			TCPWindowPackets: 11, // 16 KB socket buffer / MSS
			MSS:              1460,
			AckCost:          100 * µs,
			TCPNoise:         0.0236,
			UDPMaxDatagram:   65507,
		},
		NFS: NFSCosts{
			ClientPerRPC:           250 * µs,
			TransferSize:           8192,
			ForeignTransferSize:    8192,
			Pipelined:              true,
			ClientCachesData:       true,
			ClientCacheMB:          4,
			AttrCacheTTL:           3 * sim.Second,
			ServerPerRPC:           280 * µs,
			ServerSyncMetaPerWrite: 1,
			ServerSyncWrites:       true,
			RequiresPrivPort:       false,
			SendsPrivPort:          false, // §11: not by default
		},
		Noise: Noise{
			Syscall: 0.0008,
			Ctx:     0.04,
			Mem:     0.01,
			FS:      0.030,
			MAB:     0.0102,
			Pipe:    0.0279,
			UDP:     0.04,
			NFS:     0.0087,
		},
	}
}

// Solaris24 returns the personality of Solaris 2.4 (x86).
//
// Structure the paper reports: System V ancestry with a fully preemptive
// multi-threaded kernel whose extra bookkeeping slows system calls and
// context switches; an x86-specific 32-entry per-process mapping resource
// whose overflow produces the Figure 1 jump; STREAMS-based pipes (slowest
// of the three); SVR4 UFS with synchronous metadata but fewer/closer
// writes than FreeBSD; the best out-of-cache sequential reads; and a
// mid-pack network stack with strikingly unstable TCP throughput.
func Solaris24() *Profile {
	return &Profile{
		Name:    "Solaris",
		Version: "2.4",
		Lineage: "System V release 4 (Sun Microsystems)",
		Kernel: KernelCosts{
			Scheduler:      SchedPreemptiveMT,
			Syscall:        3520 * sim.Nanosecond,  // Table 2: 3.52 µs
			ReadWriteExtra: 36480 * sim.Nanosecond, // 40 µs pipe ops: §5's 80 µs self-pipe round trip
			CtxBase:        125 * µs,               // §5: 220 µs at 2 procs = 80 µs pipe ops + wake + this
			CtxTableSize:   32,
			CtxTableMiss:   130 * µs,
			PipeWake:       15 * µs,
			PipeWakeAll:    true,
			PipeCopyPerKB:  42 * µs, // STREAMS message allocation on the data path
			PipeCapacity:   8192,
			Fork:           12000 * µs,
			Exec:           48000 * µs, // dynamic linking makes SVR4 exec of big images slow
			// The genuinely multiprocessor kernel of the three: per-CPU
			// dispatch queues with migration/stealing between them.
			PerCPUQueues: true,
			StealCost:    6 * µs,
		},
		// SMP style: Solaris adaptive mutexes — every operation carries
		// the preemptive kernel's bookkeeping (owner tracking, turnstiles),
		// so fixed costs are highest and the backoff cap is generous.
		Lock: LockCosts{
			SpinAcquire:    520 * sim.Nanosecond,
			SpinCheck:      300 * sim.Nanosecond,
			SpinBackoffMax: 320 * µs,
			SleepAcquire:   1400 * sim.Nanosecond,
			SleepBlock:     9 * µs,
			SleepWake:      15 * µs,
			RCURead:        260 * sim.Nanosecond,
			RCUSync:        130 * µs,
		},
		FS: FSCosts{
			Type:                "ufs (SVR4 FFS derivative)",
			MetaPolicy:          MetaSync,
			SyncWritesPerCreate: 2,
			SyncWritesPerUnlink: 3,
			SyncWritesPerMkdir:  2,
			MetaSeekSpread:      8,
			MetaWriteBytes:      1024, // SVR4 UFS writes fragments
			ReadPerKB:           50 * µs,
			WritePerKB:          83 * µs,
			AllocPerCall:        560 * µs,
			RandomIOOverhead:    60 * µs,
			OpFixed:             80 * µs,
			SeqReadEff:          0.90, // §7.1: best read bandwidth outside the cache
			SeqWriteEff:         0.75,
			BufferCacheMB:       20,
			DirtyLimitMB:        8,
			AttrCache:           false,
		},
		Net: NetCosts{
			UDPPerPacket:     400 * µs,
			UDPCopyPerKB:     206 * µs,
			TCPPerPacket:     60 * µs,
			TCPCopyPerKB:     77 * µs,
			TCPWindowPackets: 16,
			MSS:              1460,
			AckCost:          100 * µs,
			TCPNoise:         0.1634, // Table 5's extraordinary Std Dev
			UDPMaxDatagram:   65507,
		},
		NFS: NFSCosts{
			ClientPerRPC:           300 * µs,
			TransferSize:           8192,
			ForeignTransferSize:    4096,
			Pipelined:              true,
			ClientCachesData:       true,
			ClientCacheMB:          5,
			SerializesSyncWrites:   true,
			AttrCacheTTL:           3 * sim.Second,
			ServerPerRPC:           320 * µs,
			ServerSyncMetaPerWrite: 1,
			ServerSyncWrites:       true,
			RequiresPrivPort:       false,
			SendsPrivPort:          true,
		},
		Noise: Noise{
			Syscall: 0.0295,
			Ctx:     0.09,
			Mem:     0.01,
			FS:      0.040,
			MAB:     0.0193,
			Pipe:    0.0156,
			UDP:     0.05,
			NFS:     0.0136,
		},
	}
}

// SunOS414 returns the personality of SunOS 4.1.4, which appears in the
// paper only as the second NFS server (Table 7). Its client-side and local
// parameters are reasonable 1995 values but are not exercised by the
// paper's experiments.
func SunOS414() *Profile {
	p := Solaris24()
	p.Name, p.Version = "SunOS", "4.1.4"
	p.Lineage = "4.3BSD derivative (Sun Microsystems)"
	p.NFS.ServerPerRPC = 350 * µs
	// §10: "The SunOS file server uses a synchronous update policy, as
	// required by the NFS specifications."
	p.NFS.ServerSyncWrites = true
	return p
}

// Linux1340 returns the §13 "future work" Linux development kernel: very
// fast context switching (10 µs at two processes) with very little
// slowdown as processes are added, and improved NFS.
func Linux1340() *Profile {
	p := Linux128()
	p.Version = "1.3.40 (development)"
	p.Kernel.CtxBase = 7 * µs
	p.Kernel.CtxPerTask = 50 * sim.Nanosecond
	p.NFS.ClientPerRPC = 250 * µs
	p.NFS.ForeignTransferSize = 4096
	p.NFS.Pipelined = true
	// The 1.3 series also rewrote the TCP path; give it a real window.
	p.Net.TCPWindowPackets = 8
	return p
}

// FreeBSD21 returns the §13 "future work" FreeBSD: ordered asynchronous
// metadata updates to fix small-file performance while preserving
// crash consistency.
func FreeBSD21() *Profile {
	p := FreeBSD205()
	p.Version = "2.1 (anticipated)"
	p.FS.MetaPolicy = MetaOrderedAsync
	return p
}

// Solaris25 returns the §13 "future work" Solaris: faster context
// switching and better performance in general.
func Solaris25() *Profile {
	p := Solaris24()
	p.Version = "2.5 (anticipated)"
	p.Kernel.Syscall = 3000 * sim.Nanosecond
	p.Kernel.CtxBase = 90 * µs
	p.Kernel.CtxTableMiss = 90 * µs
	p.Kernel.ReadWriteExtra = 25 * µs
	return p
}

// Paper returns the three systems of the study in the paper's canonical
// order: Linux, FreeBSD, Solaris.
func Paper() []*Profile {
	return []*Profile{Linux128(), FreeBSD205(), Solaris24()}
}

// All returns every personality this package defines, the paper's three
// first.
func All() []*Profile {
	return []*Profile{
		Linux128(), FreeBSD205(), Solaris24(),
		SunOS414(), Linux1340(), FreeBSD21(), Solaris25(),
	}
}
