package osprofile

import (
	"testing"

	"repro/internal/sim"
)

func TestPaperOrder(t *testing.T) {
	ps := Paper()
	if len(ps) != 3 {
		t.Fatalf("Paper() returned %d profiles, want 3", len(ps))
	}
	want := []string{"Linux 1.2.8", "FreeBSD 2.0.5R", "Solaris 2.4"}
	for i, p := range ps {
		if p.String() != want[i] {
			t.Errorf("Paper()[%d] = %q, want %q", i, p.String(), want[i])
		}
	}
}

func TestSyscallOrdering(t *testing.T) {
	// Table 2: Linux < FreeBSD < Solaris.
	l, f, s := Linux128(), FreeBSD205(), Solaris24()
	if !(l.Kernel.Syscall < f.Kernel.Syscall && f.Kernel.Syscall < s.Kernel.Syscall) {
		t.Errorf("syscall ordering wrong: %v %v %v",
			l.Kernel.Syscall, f.Kernel.Syscall, s.Kernel.Syscall)
	}
}

func TestMetadataPolicies(t *testing.T) {
	if Linux128().FS.MetaPolicy != MetaAsync {
		t.Error("ext2fs must be asynchronous (§7.2)")
	}
	if FreeBSD205().FS.MetaPolicy != MetaSync || Solaris24().FS.MetaPolicy != MetaSync {
		t.Error("both FFS derivatives must be synchronous (§7.2)")
	}
	if FreeBSD21().FS.MetaPolicy != MetaOrderedAsync {
		t.Error("FreeBSD 2.1 anticipates ordered async metadata (§13)")
	}
}

func TestFreeBSDIssuesMoreMetadataWrites(t *testing.T) {
	// §7.2: FreeBSD "accesses the disk more than is necessary or seeks
	// further" compared with Solaris.
	f, s := FreeBSD205().FS, Solaris24().FS
	fbsd := f.SyncWritesPerCreate + f.SyncWritesPerUnlink
	sol := s.SyncWritesPerCreate + s.SyncWritesPerUnlink
	if fbsd <= sol && f.MetaSeekSpread <= s.MetaSeekSpread {
		t.Errorf("FreeBSD (%d writes, spread %d) must exceed Solaris (%d, %d) in at least one dimension",
			fbsd, f.MetaSeekSpread, sol, s.MetaSeekSpread)
	}
}

func TestLinuxTCPWindowIsOnePacket(t *testing.T) {
	if w := Linux128().Net.TCPWindowPackets; w != 1 {
		t.Errorf("Linux 1.2.8 TCP window = %d packets, paper says 1 (§9.3)", w)
	}
	if w := FreeBSD205().Net.TCPWindowPackets; w <= 1 {
		t.Errorf("FreeBSD window = %d, must be a real window", w)
	}
}

func TestSchedulers(t *testing.T) {
	if Linux128().Kernel.Scheduler != SchedScanAll {
		t.Error("Linux 1.2 scheduler scans the task list (§5)")
	}
	if Linux128().Kernel.CtxPerTask <= 0 {
		t.Error("SchedScanAll needs a positive per-task cost")
	}
	if FreeBSD205().Kernel.Scheduler != SchedRunQueues {
		t.Error("FreeBSD scheduler is constant-time (§5)")
	}
	if s := Solaris24().Kernel; s.Scheduler != SchedPreemptiveMT || s.CtxTableSize != 32 {
		t.Error("Solaris needs the 32-entry mapping resource (§5, Figure 1)")
	}
}

func TestSolarisPipeRoundTrip(t *testing.T) {
	// §5: a byte through a pipe and back to the same process took 80 µs
	// on Solaris; that is two read/write class syscalls.
	s := Solaris24().Kernel
	rt := 2 * (s.Syscall + s.ReadWriteExtra)
	if rt < 75*sim.Microsecond || rt > 85*sim.Microsecond {
		t.Errorf("Solaris self-pipe round trip = %v, want ~80µs", rt)
	}
}

func TestSolarisCtxAtTwoProcs(t *testing.T) {
	// §5: Solaris two-process context switch is 220 µs including the
	// 80 µs of pipe operations.
	s := Solaris24().Kernel
	perHop := 2*(s.Syscall+s.ReadWriteExtra) + s.PipeWake + s.CtxBase
	if perHop < 215*sim.Microsecond || perHop > 225*sim.Microsecond {
		t.Errorf("Solaris 2-process ctx hop = %v, want ~220µs", perHop)
	}
}

func TestNFSPolicies(t *testing.T) {
	if Linux128().NFS.ServerSyncWrites {
		t.Error("Linux 1.2.8 NFS server answers from cache (§10)")
	}
	if !SunOS414().NFS.ServerSyncWrites {
		t.Error("SunOS NFS server follows the spec's sync writes (§10)")
	}
	if !Linux128().NFS.RequiresPrivPort {
		t.Error("Linux 1.2.8 server requires privileged client ports (§11)")
	}
	if FreeBSD205().NFS.SendsPrivPort {
		t.Error("FreeBSD 2.0.5 clients do not bind privileged ports by default (§11)")
	}
	l := Linux128().NFS
	if l.ForeignTransferSize >= l.TransferSize {
		t.Error("Linux client must degrade against foreign servers (§10)")
	}
}

func TestAttrCacheOnlyFreeBSD(t *testing.T) {
	if !FreeBSD205().FS.AttrCache {
		t.Error("FreeBSD keeps a separate attribute cache (§8.1)")
	}
	if Linux128().FS.AttrCache {
		t.Error("Linux does not have a separate attribute cache (§8.1)")
	}
}

func TestSolarisTCPNoiseIsLarge(t *testing.T) {
	// Table 5: Solaris TCP Std Dev 16.34%.
	if n := Solaris24().Net.TCPNoise; n < 0.15 || n > 0.18 {
		t.Errorf("Solaris TCP noise = %v, want ~0.1634", n)
	}
}

func TestAllProfilesComplete(t *testing.T) {
	for _, p := range All() {
		if p.Name == "" || p.Version == "" || p.Lineage == "" {
			t.Errorf("%q: missing identity fields", p.String())
		}
		if p.Kernel.Syscall <= 0 {
			t.Errorf("%s: non-positive syscall cost", p)
		}
		if p.Kernel.PipeCapacity <= 0 {
			t.Errorf("%s: non-positive pipe capacity", p)
		}
		if p.FS.ReadPerKB <= 0 || p.FS.WritePerKB <= 0 {
			t.Errorf("%s: non-positive FS copy costs", p)
		}
		if p.FS.SeqReadEff <= 0 || p.FS.SeqReadEff > 1 || p.FS.SeqWriteEff <= 0 || p.FS.SeqWriteEff > 1 {
			t.Errorf("%s: sequential efficiencies must be in (0,1]", p)
		}
		if p.FS.BufferCacheMB <= 0 || p.FS.BufferCacheMB >= 32 {
			t.Errorf("%s: buffer cache %d MB implausible on a 32 MB machine", p, p.FS.BufferCacheMB)
		}
		if p.Net.MSS <= 0 || p.Net.TCPWindowPackets <= 0 {
			t.Errorf("%s: invalid TCP geometry", p)
		}
		if p.NFS.TransferSize <= 0 || p.NFS.ForeignTransferSize <= 0 {
			t.Errorf("%s: invalid NFS transfer sizes", p)
		}
		if p.Noise.Syscall < 0 || p.Noise.MAB <= 0 {
			t.Errorf("%s: noise levels incomplete", p)
		}
	}
}

func TestFutureProfilesImprove(t *testing.T) {
	// §13's previews must actually be faster in the dimensions named.
	if Linux1340().Kernel.CtxBase >= Linux128().Kernel.CtxBase {
		t.Error("Linux 1.3.40 must context switch faster than 1.2.8")
	}
	if Solaris25().Kernel.CtxBase >= Solaris24().Kernel.CtxBase {
		t.Error("Solaris 2.5 must context switch faster than 2.4")
	}
}

func TestMetaPolicyStrings(t *testing.T) {
	for p, want := range map[MetaPolicy]string{
		MetaSync:         "synchronous",
		MetaAsync:        "asynchronous",
		MetaOrderedAsync: "ordered-asynchronous",
		MetaPolicy(9):    "unknown",
	} {
		if got := p.String(); got != want {
			t.Errorf("MetaPolicy(%d).String() = %q, want %q", int(p), got, want)
		}
	}
}

func TestProfilesAreIndependentCopies(t *testing.T) {
	a, b := Linux128(), Linux128()
	a.Kernel.Syscall = 0
	if b.Kernel.Syscall == 0 {
		t.Fatal("profile constructors must return independent values")
	}
}
