package osprofile

import (
	"strings"
	"testing"
)

// FuzzLoadJSON feeds arbitrary bytes to the profile loader: it must never
// panic, and anything it accepts must validate.
func FuzzLoadJSON(f *testing.F) {
	f.Add(`[]`)
	f.Add(`[{"Name":"X","Version":"1"}]`)
	f.Add(`[{"Kernel":{"Scheduler":"scan-all","Syscall":"2.31µs"}}]`)
	f.Fuzz(func(t *testing.T, src string) {
		ps, err := LoadJSON(strings.NewReader(src))
		if err != nil {
			return
		}
		for _, p := range ps {
			if err := p.Validate(); err != nil {
				t.Fatalf("LoadJSON accepted an invalid profile: %v", err)
			}
		}
	})
}
