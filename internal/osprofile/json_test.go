package osprofile

import (
	"bytes"
	"strings"
	"testing"
)

func TestJSONRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, Paper()); err != nil {
		t.Fatal(err)
	}
	got, err := LoadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("round-tripped %d profiles, want 3", len(got))
	}
	for i, p := range Paper() {
		q := got[i]
		if q.String() != p.String() {
			t.Errorf("identity lost: %s vs %s", q, p)
		}
		if q.Kernel.Syscall != p.Kernel.Syscall {
			t.Errorf("%s: syscall %v != %v", p, q.Kernel.Syscall, p.Kernel.Syscall)
		}
		if q.Kernel.Scheduler != p.Kernel.Scheduler {
			t.Errorf("%s: scheduler changed", p)
		}
		if q.FS.MetaPolicy != p.FS.MetaPolicy {
			t.Errorf("%s: metadata policy changed", p)
		}
		if q.Net.TCPWindowPackets != p.Net.TCPWindowPackets {
			t.Errorf("%s: window changed", p)
		}
		if q.Noise.MAB != p.Noise.MAB {
			t.Errorf("%s: noise changed", p)
		}
	}
}

func TestJSONIsReadable(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, []*Profile{Linux128()}); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	// Durations are strings, enums are names.
	for _, want := range []string{`"2.31µs"`, `"scan-all"`, `"async"`} {
		if !strings.Contains(s, want) {
			t.Errorf("JSON missing readable form %s:\n%.600s", want, s)
		}
	}
}

func TestLoadJSONRejectsUnknownFields(t *testing.T) {
	_, err := LoadJSON(strings.NewReader(`[{"Name":"X","Version":"1","Frobnitz":true}]`))
	if err == nil || !strings.Contains(err.Error(), "Frobnitz") {
		t.Fatalf("unknown field accepted: %v", err)
	}
}

func TestLoadJSONValidates(t *testing.T) {
	cases := []string{
		`[{"Name":"","Version":"1"}]`,
		`[{"Name":"X","Version":"1"}]`, // zero costs
	}
	for _, src := range cases {
		if _, err := LoadJSON(strings.NewReader(src)); err == nil {
			t.Errorf("invalid profile accepted: %s", src)
		}
	}
}

func TestLoadJSONBadEnum(t *testing.T) {
	_, err := LoadJSON(strings.NewReader(
		`[{"Name":"X","Version":"1","Kernel":{"Scheduler":"magic"}}]`))
	if err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("bad scheduler accepted: %v", err)
	}
	_, err = LoadJSON(strings.NewReader(
		`[{"Name":"X","Version":"1","FS":{"MetaPolicy":"lazy"}}]`))
	if err == nil || !strings.Contains(err.Error(), "lazy") {
		t.Fatalf("bad policy accepted: %v", err)
	}
}

func TestDurationJSONForms(t *testing.T) {
	// Nanosecond numbers are accepted too.
	got, err := LoadJSONOne(`{"Name":"X","Version":"1",
	  "Kernel":{"Scheduler":"run-queues","Syscall":2620,"ReadWriteExtra":"2.9µs","CtxBase":"58µs",
	    "PipeWake":"10µs","PipeCopyPerKB":"33µs","PipeCapacity":8192,"Fork":"4ms","Exec":"10ms"},
	  "FS":{"Type":"t","MetaPolicy":"sync","SyncWritesPerCreate":2,"SyncWritesPerUnlink":6,
	    "SyncWritesPerMkdir":2,"MetaSeekSpread":40,"MetaWriteBytes":4096,
	    "ReadPerKB":"46µs","WritePerKB":"83µs","AllocPerCall":"180µs","RandomIOOverhead":"400µs",
	    "OpFixed":"100µs","SeqReadEff":0.8,"SeqWriteEff":0.8,"BufferCacheMB":20,"DirtyLimitMB":8,"AttrCache":true},
	  "Net":{"UDPPerPacket":"300µs","UDPCopyPerKB":"133µs","TCPPerPacket":"50µs","TCPCopyPerKB":"75µs",
	    "TCPWindowPackets":11,"MSS":1460,"AckCost":"100µs","TCPNoise":0.02,"UDPMaxDatagram":65507},
	  "NFS":{"ClientPerRPC":"250µs","TransferSize":8192,"ForeignTransferSize":8192,"Pipelined":true,
	    "ClientCachesData":true,"ClientCacheMB":4,"SerializesSyncWrites":false,"AttrCacheTTL":"3s",
	    "ServerPerRPC":"280µs","ServerSyncWrites":true,"ServerSyncMetaPerWrite":1,
	    "RequiresPrivPort":false,"SendsPrivPort":false},
	  "Noise":{"Syscall":0.001,"Ctx":0.04,"Mem":0.01,"FS":0.03,"MAB":0.01,"Pipe":0.03,"UDP":0.04,"NFS":0.01},
	  "Lineage":"test"}`)
	if err != nil {
		t.Fatal(err)
	}
	if got.Kernel.Syscall != 2620 {
		t.Errorf("numeric nanoseconds parsed as %v", got.Kernel.Syscall)
	}
}

// LoadJSONOne is a test helper parsing a single profile object.
func LoadJSONOne(src string) (*Profile, error) {
	ps, err := LoadJSON(strings.NewReader("[" + src + "]"))
	if err != nil {
		return nil, err
	}
	return ps[0], nil
}
