package core

import (
	"repro/internal/bench"
	"repro/internal/fs"
	"repro/internal/osprofile"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Supplementary evidence exhibits (ids X1, X2): not tables or figures of
// the paper, but the measurements behind two of its inferences. X1 breaks
// the Modified Andrew Benchmark into its five phases, supporting §8.1's
// discussion (FreeBSD wins the stat phase; compile time dominates and
// compresses the spread). X2 counts actual disk operations during crtdel,
// turning §7.2's inference ("Linux clearly is not accessing the disk")
// into a direct observation.
func init() {
	plat := bench.PaperPlatform()

	register(&Experiment{
		ID:    "X1",
		Title: "MAB Phase Breakdown (supplementary)",
		Kind:  Figure,
		Paper: "§8.1 (discussion of Table 3)",
		Run: func(cfg Config) *Result {
			res := &Result{
				ID: "X1", Title: "MAB Phase Breakdown (supplementary)", Kind: Figure,
				YUnit: "s", XLabel: "phase (1=mkdir 2=copy 3=stat 4=read 5=compile)",
				Direction: stats.LowerIsBetter,
				Notes: []string{
					"FreeBSD is competitive with Solaris in every phase and beats even Linux in phase 3 (its attribute cache).",
					"Compile time dominates every system, which is why MAB totals sit so much closer than the microbenchmarks.",
				},
			}
			res.Series = make([]Series, len(cfg.Profiles))
			parallelFor(cfg, len(cfg.Profiles), func(pi int) {
				p := cfg.Profiles[pi]
				r := bench.MAB(plat, p, bench.DefaultMAB(), cfg.Seed)
				s := Series{Label: p.String()}
				for i, d := range r.Phase {
					s.X = append(s.X, float64(i+1))
					s.Samples = append(s.Samples,
						noiseSample(cfg, saltFor("X1", p.String(), i), noiseFor(p, noiseMAB), d.Seconds()))
				}
				res.Series[pi] = s
			})
			return res
		},
	})

	register(&Experiment{
		ID:    "X2",
		Title: "Disk Operations per crtdel Iteration (supplementary)",
		Kind:  Table,
		Paper: "§7.2 (the asynchronous-metadata inference)",
		Run: func(cfg Config) *Result {
			res := &Result{
				ID: "X2", Title: "Disk Operations per crtdel Iteration (supplementary)", Kind: Table,
				YUnit: "disk ops", Direction: stats.LowerIsBetter,
				Notes: []string{
					"Linux performs zero synchronous disk operations per create/write/read/delete cycle — §7.2's 'clearly not accessing the disk', observed directly.",
					"The FFS systems pay one synchronous metadata write per count shown; FreeBSD issues the most.",
				},
			}
			res.Series = make([]Series, len(cfg.Profiles))
			parallelFor(cfg, len(cfg.Profiles), func(i int) {
				p := cfg.Profiles[i]
				ops := crtdelDiskOps(plat, p, cfg.Seed)
				res.Series[i] = Series{
					Label:   p.String(),
					Samples: []*stats.Sample{exactSample(cfg, ops)},
				}
			})
			return res
		},
	})
}

// crtdelDiskOps counts synchronous metadata disk writes per crtdel
// iteration for one personality.
func crtdelDiskOps(plat bench.Platform, p *osprofile.Profile, seed uint64) float64 {
	clock := &sim.Clock{}
	fsys := fs.MustNew(clock, plat.Disk(sim.NewRNG(seed)), p)
	const iters = 20
	for i := 0; i < iters; i++ {
		f, err := fsys.Create("/t")
		if err != nil {
			panic(err)
		}
		f.Write(1024)
		f.Close()
		g, err := fsys.Open("/t")
		if err != nil {
			panic(err)
		}
		g.Read(1024)
		g.Close()
		if err := fsys.Unlink("/t"); err != nil {
			panic(err)
		}
	}
	return float64(fsys.Stats().SyncMetaWrites) / iters
}

// exactSample wraps a deterministic count (no measurement noise applies
// to an operation count) into a sample of the configured run length.
func exactSample(cfg Config, v float64) *stats.Sample {
	s := &stats.Sample{}
	runs := cfg.Runs
	if runs <= 0 {
		runs = 20
	}
	for i := 0; i < runs; i++ {
		s.Add(v)
	}
	return s
}
