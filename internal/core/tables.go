package core

import (
	"repro/internal/bench"
	"repro/internal/osprofile"
	"repro/internal/stats"
)

// Paper-reported table values (mean, std dev %) keyed by OS label, used
// both for the "Expected" columns and for EXPERIMENTS.md comparisons.
var (
	paperT2 = []Expectation{
		{Label: "Linux 1.2.8", Mean: 2.31, StdDevPct: 0.10},
		{Label: "FreeBSD 2.0.5R", Mean: 2.62, StdDevPct: 0.08},
		{Label: "Solaris 2.4", Mean: 3.52, StdDevPct: 2.95},
	}
	paperT3 = []Expectation{
		{Label: "Linux 1.2.8", Mean: 43.12, StdDevPct: 4.10},
		{Label: "FreeBSD 2.0.5R", Mean: 47.45, StdDevPct: 1.02},
		{Label: "Solaris 2.4", Mean: 54.31, StdDevPct: 1.93},
	}
	paperT4 = []Expectation{
		{Label: "Linux 1.2.8", Mean: 119.36, StdDevPct: 1.60},
		{Label: "FreeBSD 2.0.5R", Mean: 98.03, StdDevPct: 2.79},
		{Label: "Solaris 2.4", Mean: 65.38, StdDevPct: 1.56},
	}
	paperT5 = []Expectation{
		{Label: "FreeBSD 2.0.5R", Mean: 65.95, StdDevPct: 2.36},
		{Label: "Solaris 2.4", Mean: 60.11, StdDevPct: 16.34},
		{Label: "Linux 1.2.8", Mean: 25.03, StdDevPct: 5.45},
	}
	paperT6 = []Expectation{
		{Label: "FreeBSD 2.0.5R", Mean: 53.24, StdDevPct: 0.87},
		{Label: "Linux 1.2.8", Mean: 57.73, StdDevPct: 2.20},
		{Label: "Solaris 2.4", Mean: 58.38, StdDevPct: 1.36},
	}
	paperT7 = []Expectation{
		{Label: "FreeBSD 2.0.5R", Mean: 67.60, StdDevPct: 1.41},
		{Label: "Solaris 2.4", Mean: 87.94, StdDevPct: 3.17},
		{Label: "Linux 1.2.8", Mean: 115.06, StdDevPct: 1.54},
	}
)

// tableExperiment builds a one-value-per-OS experiment from a model
// function returning the deterministic mean for one OS.
func tableExperiment(id, title, paperRef, unit string, dir stats.Direction,
	area noiseArea, expected []Expectation, notes []string,
	model func(cfg Config, p *osprofile.Profile, runIdx int) float64) *Experiment {
	return &Experiment{
		ID:    id,
		Title: title,
		Kind:  Table,
		Paper: paperRef,
		Run: func(cfg Config) *Result {
			res := &Result{
				ID: id, Title: title, Kind: Table,
				YUnit: unit, Direction: dir,
				Expected: expected, Notes: notes,
			}
			res.Series = make([]Series, len(cfg.Profiles))
			parallelFor(cfg, len(cfg.Profiles), func(i int) {
				p := cfg.Profiles[i]
				mean := model(cfg, p, 0)
				sample := noiseSample(cfg, saltFor(id, p.String(), 0), noiseFor(p, area), mean)
				res.Series[i] = Series{
					Label:   p.String(),
					Samples: []*stats.Sample{sample},
				}
			})
			return res
		},
	}
}

func init() {
	plat := bench.PaperPlatform()

	register(tableExperiment(
		"T2", "System Call (getpid)", "Table 2, §4",
		"µs", stats.LowerIsBetter, noiseSyscall, paperT2,
		[]string{
			"Linux has the fastest basic system call, then FreeBSD, then Solaris.",
			"Solaris' multi-threaded fully-preemptive kernel costs it ~50% over Linux.",
		},
		func(cfg Config, p *osprofile.Profile, _ int) float64 {
			return bench.Getpid(plat, p).Microseconds()
		}))

	register(tableExperiment(
		"T3", "MAB Local", "Table 3, §8.1",
		"s", stats.LowerIsBetter, noiseMAB, paperT3,
		[]string{
			"Linux first (async metadata + good small-file reads).",
			"FreeBSD beats Solaris despite losing crtdel badly: its attribute cache wins the stat phase and the gap is amortised by compile time.",
			"Overall MAB spread is far narrower than the microbenchmarks (paper §12).",
		},
		func(cfg Config, p *osprofile.Profile, _ int) float64 {
			return bench.MAB(plat, p, bench.DefaultMAB(), cfg.Seed).Total.Seconds()
		}))

	register(tableExperiment(
		"T4", "Pipe Bandwidth (bw_pipe)", "Table 4, §9.1",
		"Mb/s", stats.HigherIsBetter, noisePipe, paperT4,
		[]string{
			"Linux and FreeBSD could theoretically keep up with 100 Mb/s Ethernet; Solaris could not.",
			"Solaris pipes ride on System V STREAMS, the bulk of its deficit.",
		},
		func(cfg Config, p *osprofile.Profile, _ int) float64 {
			return bench.BwPipe(plat, p)
		}))

	register(tableExperiment(
		"T5", "TCP Bandwidth (bw_tcp)", "Table 5, §9.3",
		"Mb/s", stats.HigherIsBetter, noiseTCP, paperT5,
		[]string{
			"FreeBSD first; Solaris close behind with wildly unstable throughput (16% σ).",
			"Linux collapses to ~38% of FreeBSD: its TCP window is one packet.",
		},
		func(cfg Config, p *osprofile.Profile, _ int) float64 {
			return bench.BwTCP(p, 0)
		}))

	register(tableExperiment(
		"T6", "MAB over NFS, Linux 1.2.8 server", "Table 6, §10",
		"s", stats.LowerIsBetter, noiseNFS, paperT6,
		[]string{
			"FreeBSD's networking wins; Linux and Solaris effectively tie behind it.",
			"The Linux server replies from its cache (async policy), keeping every client fast.",
		},
		func(cfg Config, p *osprofile.Profile, _ int) float64 {
			return bench.MABNFS(p, bench.ServerLinux, bench.DefaultMAB(), cfg.Seed).Total.Seconds()
		}))

	register(tableExperiment(
		"T7", "MAB over NFS, SunOS 4.1.4 server", "Table 7, §10",
		"s", stats.LowerIsBetter, noiseNFS, paperT7,
		[]string{
			"The spec-compliant synchronous server slows everyone; FreeBSD degrades least.",
			"Linux 'performs miserably when connected to other types of servers' — tiny foreign transfer size, no pipelining, no client caching.",
		},
		func(cfg Config, p *osprofile.Profile, _ int) float64 {
			return bench.MABNFS(p, bench.ServerSunOS, bench.DefaultMAB(), cfg.Seed).Total.Seconds()
		}))
}
