package core

import (
	"fmt"

	"repro/internal/bench"
	"repro/internal/osprofile"
	"repro/internal/stats"
	"repro/internal/vm"
)

// A7 — memory pressure: §7 attributes bonnie's 20 MB cache knee to the
// dynamically sized buffer cache trading physical pages with the VM
// system. This ablation makes the trade visible: it reruns bonnie's read
// sweep on FreeBSD with increasingly large memory hogs resident, and the
// knee moves left accordingly.
func init() {
	plat := bench.PaperPlatform()

	register(&Experiment{
		ID:    "A7",
		Title: "Ablation: buffer cache vs. memory pressure",
		Kind:  Figure,
		Paper: "§7 (the dynamic buffer cache); DESIGN.md A7",
		Run: func(cfg Config) *Result {
			res := &Result{
				ID: "A7", Title: "Ablation: buffer cache vs. memory pressure", Kind: Figure,
				YUnit: "MB/s", XLabel: "file MB", LogX: true,
				Direction: stats.HigherIsBetter,
				Notes: []string{
					"The bonnie read knee sits wherever the VM leaves room for the cache: ~20 MB idle, sliding left as resident processes claim pages.",
					"This is §7's 'trades physical pages for buffer cache pages' made visible.",
				},
			}
			p := osprofile.FreeBSD205()
			hogs := []int{0, 6, 12}
			sizes := bench.BonnieSweepSizes()
			res.Series = make([]Series, len(hogs))
			parallelFor(cfg, len(hogs), func(hi int) {
				hogMB := hogs[hi]
				pool := vm.PaperMachine(3)
				if hogMB > 0 {
					pool.Claim("memory hog", int64(hogMB)<<20)
				}
				budget := pool.CacheBudget()
				label := fmt.Sprintf("%s, %d MB hog (cache %d MB)", p.Name, hogMB, budget>>20)
				s := Series{
					Label:   label,
					X:       make([]float64, len(sizes)),
					Samples: make([]*stats.Sample, len(sizes)),
				}
				parallelFor(cfg, len(sizes), func(i int) {
					r := bench.BonnieWithCache(plat, p, sizes[i], cfg.Seed+uint64(i), budget)
					s.X[i] = float64(sizes[i])
					s.Samples[i] = noiseSample(cfg, saltFor("A7", label, i), noiseFor(p, noiseFS), r.ReadMBs)
				})
				res.Series[hi] = s
			})
			return res
		},
	})
}
