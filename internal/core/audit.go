package core

import (
	"fmt"

	"repro/internal/audit"
	"repro/internal/nfsserver"
	"repro/internal/obs"
	"repro/internal/osprofile"
	"repro/internal/sim"
)

// AuditObservation is the product of one experiment's queueing-law
// audit: one verdict report per OS personality.
type AuditObservation struct {
	ID      string
	Title   string
	Reports []*audit.Report
}

// OK reports whether every personality audited clean.
func (a *AuditObservation) OK() bool {
	for _, r := range a.Reports {
		if !r.OK() {
			return false
		}
	}
	return true
}

// AuditableIDs returns the experiments the audit engine can evaluate:
// the NFS scale-out probes, whose server model carries the double-entry
// accounting the queueing-law invariants cross-check, and the SMP
// lock-contention exhibit, whose per-CPU ledgers and lock flow counters
// carry the DESIGN.md §16 exactness invariants.
func AuditableIDs() []string { return []string{"S1", "S2", "L1"} }

// Audit re-runs one experiment's scale probe per personality — the same
// construction and seeds Observe uses, so the audited run is the
// exhibited run — with the sampler and exemplar reservoir attached, and
// evaluates every queueing-law invariant (DESIGN.md §15). Window
// defaults to 100 ms and ExemplarK to 4 when unset: an audit without
// windows or exemplars would skip most of its checks.
func Audit(cfg Config, id string, opts ObserveOpts) (*AuditObservation, error) {
	opts = opts.withDefaults()
	if opts.Window <= 0 {
		opts.Window = 100 * sim.Millisecond
	}
	if opts.ExemplarK <= 0 {
		opts.ExemplarK = 4
	}
	ok := false
	for _, a := range AuditableIDs() {
		if a == id {
			ok = true
		}
	}
	if !ok {
		return nil, fmt.Errorf("core: no audit for %q (have %v)", id, AuditableIDs())
	}
	profiles := cfg.Profiles
	if len(profiles) == 0 {
		profiles = osprofile.Paper()
	}
	title := id
	if e, found := Lookup(id); found {
		title = e.Title
	}
	out := &AuditObservation{ID: id, Title: title}
	if id == "L1" {
		// The SMP audit re-runs the L2 sweep point (eight CPUs, the L1
		// critical section) for both lock kinds per personality — the
		// same construction the exhibits use — and checks the per-CPU
		// ledger and lock flow-balance invariants. The run is a pure
		// function of its parameters (no RNG), so the audited run is the
		// exhibited run; fault plans have nothing to reach here.
		for _, p := range profiles {
			for _, kind := range lockKinds {
				r := LockPoint(p, kind, lockSweepNCPU, lockCrit)
				m, l := r.Machine, r.Lock
				in := audit.SMPInput{
					System:  fmt.Sprintf("%s %s", p, kind),
					NCPU:    m.NCPU(),
					Threads: len(m.Threads()),
					Elapsed: m.Elapsed(),
					Busy:    make([]sim.Duration, m.NCPU()),
					Idle:    make([]sim.Duration, m.NCPU()),
					Spin:    make([]sim.Duration, m.NCPU()),
					Locks: []audit.LockFacts{{
						Acquires:    l.Acquires,
						Releases:    l.Releases,
						Contended:   l.Contended,
						Uncontended: l.Uncontended,
						Blocks:      l.Blocks,
						Wakeups:     l.Wakeups,
						WaitCount:   l.WaitHist.N(),
					}},
				}
				for c := 0; c < m.NCPU(); c++ {
					in.Busy[c], in.Idle[c], in.Spin[c] = m.Ledger(c)
				}
				out.Reports = append(out.Reports, audit.EvaluateSMP(in))
			}
		}
		return out, nil
	}
	for _, p := range profiles {
		inj := injFor(cfg, opts, id, p)
		srv := nfsserver.New(nfsserver.Config{
			Profile: p,
			Clients: opts.Clients,
			Nfsd:    opts.Nfsd,
			Seed:    cfg.Seed ^ saltFor("scale", p.Name, opts.Clients),
			Faults:  inj.Net,
		})
		smp := obs.NewSampler(opts.Window)
		srv.SetSampler(smp)
		ex := exemplarsFor(cfg, opts, p)
		srv.SetExemplars(ex)
		res := srv.Run()
		ts := smp.Snapshot(sim.Time(res.Elapsed))
		out.Reports = append(out.Reports, audit.Evaluate(audit.Input{
			System:    p.String(),
			Res:       res,
			Facts:     srv.Facts(),
			Series:    &ts,
			Exemplars: ex.Snapshot(),
			ExemplarK: opts.ExemplarK,
		}))
	}
	return out, nil
}
