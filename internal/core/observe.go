package core

import (
	"fmt"
	"slices"
	"strings"
	"sync"
	"time"

	"repro/internal/bench"
	"repro/internal/cache"
	"repro/internal/fault"
	"repro/internal/memmodel"
	"repro/internal/nfsserver"
	"repro/internal/obs"
	"repro/internal/osprofile"
	"repro/internal/profile"
	"repro/internal/sim"
	"repro/internal/stats"
)

// PhaseRow is one attribution row of a metrics table: a named phase and
// the time (or cycles) it consumed.
type PhaseRow struct {
	Name  string
	Value float64
}

// ObservedRun is one observed model run of an experiment probe: one OS
// personality (or the hardware curve), its cycle-attribution rows, the
// captured trace and the full metric snapshot.
type ObservedRun struct {
	// Label identifies the run (an OS personality, or the hardware).
	Label string
	// Unit is the unit of Rows and Total ("µs" or "cycles").
	Unit string
	// Rows decompose Total by phase; they sum to Total within float
	// re-association tolerance (exactly, for integer-duration ledgers).
	Rows []PhaseRow
	// Total is the run's total simulated time or cycles.
	Total float64
	// Process is the captured trace for Chrome export.
	Process obs.Process
	// Metrics is the run's full metric snapshot.
	Metrics obs.Snapshot
	// Profile is the run's span stream folded into weighted call stacks
	// (virtual nanoseconds; DESIGN.md §10). Folding happens inside the
	// probe task, so parallel suites profile in parallel too.
	Profile *profile.Profile
	// Series is the run's virtual-time time-series snapshot, present
	// only when ObserveOpts.Window enabled sampling and the probe has
	// sampled instrumentation (see SampledIDs).
	Series *obs.TimeSeries
	// Exemplars is the run's per-window sampled request lifecycles,
	// present only when ObserveOpts.ExemplarK enabled exemplar tracing
	// and the probe's model offers them (S1/S2); ExemplarDrops counts
	// offers the per-window reservoir bound rejected.
	Exemplars     []obs.ExemplarWindow
	ExemplarDrops int64
	// LatencyHist is the model's exact latency histogram when the probe
	// has one (S1/S2) — the source of Prometheus `le` bucket boundaries
	// and the attachment point for exemplar buckets.
	LatencyHist *stats.Histogram
}

// Observation is the observability product of one experiment probe.
type Observation struct {
	ID    string
	Title string
	Runs  []ObservedRun
}

// ObserveOpts tune the probes. The zero value selects defaults.
type ObserveOpts struct {
	// Procs is the ctx process count for the F1 probe (default 8).
	Procs int
	// FileBytes is the crtdel file size for the F12 probe (default 64 KB).
	FileBytes int64
	// PacketSize is the datagram size for the F13 probe (default 1024).
	PacketSize int
	// Clients is the client population for the S1/S2 scale probes
	// (default 1000 — the knee of the curves); Nfsd is the server's
	// worker-slot count (default 8).
	Clients int
	Nfsd    int
	// Faults, when non-nil and active, injects the plan's faults into
	// the probes that model faultable hardware (disk, network, buffer
	// cache): T5, T6, T7, F12 and F13. Each (experiment, personality)
	// run forks its own injector RNG from the seed, so results are
	// bit-identical at every worker count. Nil runs clean.
	Faults *fault.Plan
	// Window, when positive, attaches a virtual-time time-series
	// sampler of that window width to the probes in SampledIDs; each
	// sampled run's ObservedRun.Series carries the snapshot. Zero (the
	// default) samples nothing and the probes are byte-identical to
	// builds without the sampler.
	Window sim.Duration
	// ExemplarK, when positive, attaches a deterministic per-window
	// exemplar reservoir of that capacity to the probes whose models
	// offer request lifecycles (S1/S2): each run's
	// ObservedRun.Exemplars carries the tail-biased sample, the trace
	// gains per-request tracks, and Series (when sampling is also on)
	// attaches the exemplars to its snapshot. Windows follow
	// ObserveOpts.Window, defaulting to 100 ms when sampling is off.
	// Zero (the default) traces nothing and the probes are
	// byte-identical to builds without the reservoir.
	ExemplarK int
}

func (o ObserveOpts) withDefaults() ObserveOpts {
	if o.Procs <= 0 {
		o.Procs = 8
	}
	if o.FileBytes <= 0 {
		o.FileBytes = 64 << 10
	}
	if o.PacketSize <= 0 {
		o.PacketSize = 1024
	}
	if o.Clients <= 0 {
		o.Clients = 1000
	}
	if o.Nfsd <= 0 {
		o.Nfsd = scaleNfsd
	}
	return o
}

// memRoutines maps the §6 figure IDs to their routines.
var memRoutines = map[string]memmodel.Routine{
	"F2": memmodel.CustomRead,
	"F3": memmodel.Memset,
	"F4": memmodel.NaiveWrite,
	"F5": memmodel.PrefetchWrite,
	"F6": memmodel.LibcMemcpy,
	"F7": memmodel.NaiveCopy,
	"F8": memmodel.PrefetchCopy,
}

// ObservableIDs returns the experiment IDs Observe has probes for, in
// presentation order.
func ObservableIDs() []string {
	ids := []string{"T2", "T4", "T5", "T6", "T7", "F1", "F12", "F13", "S1", "S2"}
	for id := range memRoutines {
		ids = append(ids, id)
	}
	// Same precomputed rank-key sort as All: ranks are distinct across
	// these IDs, so the order is deterministic despite the map walk.
	keys := make([]int64, len(ids))
	for i, id := range ids {
		keys[i] = int64(rank(id))<<32 | int64(i)
	}
	slices.Sort(keys)
	out := make([]string, len(ids))
	for j, k := range keys {
		out[j] = ids[k&(1<<32-1)]
	}
	return out
}

// SampledIDs returns the observable experiments whose probes carry
// time-series instrumentation: the kernel scheduler (F1), the benchmark
// disk (F12), and the NFS scale-out server (S1, S2). The other probes'
// models have no windowed series to report.
func SampledIDs() []string {
	return []string{"F1", "F12", "S1", "S2"}
}

// FaultableIDs returns the observable experiments whose probes consult
// the fault injectors: the ones modelling disk, network or buffer-cache
// hardware. The other probes run identically under any plan.
func FaultableIDs() []string {
	return []string{"T5", "T6", "T7", "F12", "F13", "S1", "S2"}
}

// rows extracts attribution rows from a snapshot: the counters carrying
// the given prefix and suffix, with both trimmed from the row name.
func rows(snap obs.Snapshot, prefix, suffix string) []PhaseRow {
	var out []PhaseRow
	for _, c := range snap.Counters {
		if strings.HasPrefix(c.Name, prefix) && strings.HasSuffix(c.Name, suffix) {
			name := strings.TrimSuffix(strings.TrimPrefix(c.Name, prefix), suffix)
			out = append(out, PhaseRow{Name: name, Value: c.Value})
		}
	}
	return out
}

// benchRun adapts a bench.Observation into an ObservedRun with µs rows
// drawn from the snapshot counters matching prefix+...+suffix.
func benchRun(label string, o bench.Observation, prefix, suffix string) ObservedRun {
	return ObservedRun{
		Label:   label,
		Unit:    "µs",
		Rows:    rows(o.Metrics, prefix, suffix),
		Total:   o.Total.Microseconds(),
		Process: o.Process,
		Metrics: o.Metrics,
	}
}

// Observe runs the observability probe for one experiment: the same model
// workload the experiment measures, instrumented with spans and metrics.
// Every probe is deterministic — virtual time stamps, fixed seeds — so
// its output is bit-identical across runs and worker counts.
func Observe(cfg Config, id string, opts ObserveOpts) (*Observation, error) {
	opts = opts.withDefaults()
	profiles := cfg.Profiles
	if len(profiles) == 0 {
		profiles = osprofile.Paper()
	}
	plat := bench.PaperPlatform()
	title := id
	if e, ok := Lookup(id); ok {
		title = e.Title
	}
	out := &Observation{ID: id, Title: title}

	if r, ok := memRoutines[id]; ok {
		const size = 1 << 20
		m := memmodel.NewModel(plat.CPU, cache.PentiumConfig())
		pt := m.ObservedBandwidth(r, size)
		reg := obs.NewRegistry()
		pt.Stats.FoldStats(reg, "cache.")
		reg.Counter("mem.mbs").Add(pt.MBs)
		reg.Counter("mem.overlap_cycles").Add(pt.Overlap)
		b := pt.Breakdown
		out.Runs = append(out.Runs, ObservedRun{
			Label: "Pentium P54C-100",
			Unit:  "cycles",
			Rows: []PhaseRow{
				{Name: "l1", Value: b.L1},
				{Name: "l2", Value: b.L2},
				{Name: "mem", Value: b.Mem},
				{Name: "writeback", Value: b.WriteBack},
				{Name: "overhead", Value: b.Overhead},
			},
			Total:   pt.SimCycles,
			Process: obs.Process{Name: "Pentium P54C-100"},
			Metrics: reg.Snapshot(),
		})
		out.foldProfiles()
		return out, nil
	}

	switch id {
	case "T2":
		for _, p := range profiles {
			_, o := bench.GetpidObserved(plat, p)
			out.Runs = append(out.Runs, benchRun(p.String(), o, "kernel.phase_us.", ""))
		}
	case "F1":
		for _, p := range profiles {
			smp := samplerFor(opts)
			_, o := bench.CtxSampled(plat, p, opts.Procs, bench.CtxRing, smp)
			run := benchRun(p.String(), o, "kernel.phase_us.", "")
			run.Series = seriesOf(smp, o.Total)
			out.Runs = append(out.Runs, run)
		}
	case "T4":
		for _, p := range profiles {
			_, o := bench.BwPipeObserved(plat, p)
			out.Runs = append(out.Runs, benchRun(p.String(), o, "kernel.phase_us.", ""))
		}
	case "T5":
		for _, p := range profiles {
			_, o := bench.BwTCPObserved(p, 0, injFor(cfg, opts, id, p))
			out.Runs = append(out.Runs, benchRun(p.String(), o, "tcp.", "_us"))
		}
	case "T6":
		for _, p := range profiles {
			_, o := bench.MABNFSObserved(p, bench.ServerLinux, bench.DefaultMAB(), cfg.Seed, injFor(cfg, opts, id, p))
			out.Runs = append(out.Runs, benchRun(p.String(), o, "mab.phase_us.", ""))
		}
	case "T7":
		for _, p := range profiles {
			_, o := bench.MABNFSObserved(p, bench.ServerSunOS, bench.DefaultMAB(), cfg.Seed, injFor(cfg, opts, id, p))
			out.Runs = append(out.Runs, benchRun(p.String(), o, "mab.phase_us.", ""))
		}
	case "F12":
		for _, p := range profiles {
			smp := samplerFor(opts)
			_, o := bench.CrtdelSampled(plat, p, opts.FileBytes, cfg.Seed, injFor(cfg, opts, id, p), smp)
			run := benchRun(p.String(), o, "fs.phase_us.", "")
			run.Series = seriesOf(smp, o.Total)
			out.Runs = append(out.Runs, run)
		}
	case "F13":
		for _, p := range profiles {
			_, o := bench.TTCPObserved(p, opts.PacketSize, injFor(cfg, opts, id, p))
			out.Runs = append(out.Runs, benchRun(p.String(), o, "udp.", "_us"))
		}
	case "S1", "S2":
		// Both scale exhibits probe the same server model; each
		// personality gets one run at opts.Clients with per-nfsd-slot
		// span tracks and the exact phase ledger as its rows.
		for _, p := range profiles {
			inj := injFor(cfg, opts, id, p)
			srv := nfsserver.New(nfsserver.Config{
				Profile: p,
				Clients: opts.Clients,
				Nfsd:    opts.Nfsd,
				Seed:    cfg.Seed ^ saltFor("scale", p.Name, opts.Clients),
				Faults:  inj.Net,
			})
			rec := obs.NewRing(srv.Clock(), bench.TraceRingCap)
			srv.SetRecorder(rec)
			smp := samplerFor(opts)
			srv.SetSampler(smp)
			ex := exemplarsFor(cfg, opts, p)
			srv.SetExemplars(ex)
			res := srv.Run()
			exWins := ex.Snapshot()
			// Per-request tracks ride in the same trace as the nfsd
			// slots; appended post-run, so they cost nothing while the
			// model runs (and nothing at all when tracing is off).
			obs.ExemplarTracks(rec, exWins)
			reg := obs.NewRegistry()
			res.FoldMetrics(reg, "scale.")
			inj.FoldMetrics(reg, "fault.")
			led := res.Ledger
			for _, ph := range []struct {
				name string
				v    sim.Duration
			}{
				{"wire", led.Wire}, {"rto", led.RTO},
				{"queue_wait", led.QueueWait}, {"cpu", led.CPU},
				{"disk_wait", led.DiskWait}, {"disk_time", led.DiskTime},
			} {
				reg.Counter("scale.phase_us." + ph.name).Add(ph.v.Microseconds())
			}
			snap := reg.Snapshot()
			series := seriesOf(smp, res.Elapsed)
			if series != nil {
				series.Exemplars = exWins
			}
			out.Runs = append(out.Runs, ObservedRun{
				Label:         p.String(),
				Unit:          "µs",
				Rows:          rows(snap, "scale.phase_us.", ""),
				Total:         led.Sum().Microseconds(),
				Process:       rec.Capture(fmt.Sprintf("%s %s", id, p)),
				Metrics:       snap,
				Series:        series,
				Exemplars:     exWins,
				ExemplarDrops: ex.Dropped(),
				LatencyHist:   &res.Hist,
			})
		}
	default:
		return nil, fmt.Errorf("core: no observability probe for %q (have %v)", id, ObservableIDs())
	}
	out.foldProfiles()
	return out, nil
}

// samplerFor builds one probe run's time-series sampler, or nil when
// sampling is off — the nil threads through every model as inert
// handles, so the disabled path is byte-identical to builds without it.
func samplerFor(opts ObserveOpts) *obs.Sampler {
	if opts.Window <= 0 {
		return nil
	}
	return obs.NewSampler(opts.Window)
}

// exemplarsFor builds one S1/S2 probe run's exemplar reservoir, or nil
// when exemplar tracing is off. The seed forks from the config seed with
// its own salt, so exemplar selection is deterministic and independent
// of the model's RNG streams; the window width follows the sampler's,
// defaulting to 100 ms when sampling is off.
func exemplarsFor(cfg Config, opts ObserveOpts, p *osprofile.Profile) *obs.Exemplars {
	if opts.ExemplarK <= 0 {
		return nil
	}
	w := opts.Window
	if w <= 0 {
		w = 100 * sim.Millisecond
	}
	return obs.NewExemplars(cfg.Seed^saltFor("exemplar", p.Name, opts.Clients), opts.ExemplarK, w)
}

// seriesOf snapshots a run's sampler at its end time; nil in, nil out.
func seriesOf(smp *obs.Sampler, end sim.Duration) *obs.TimeSeries {
	if smp == nil {
		return nil
	}
	ts := smp.Snapshot(sim.Time(end))
	return &ts
}

// injFor builds the fault injectors for one (experiment, personality)
// probe run. The injector RNG forks from the seed with the same salt
// scheme the noise model uses, so a faulted suite is deterministic at
// every worker count and across runs. An inactive plan returns the
// zero Injectors without touching any RNG.
func injFor(cfg Config, opts ObserveOpts, id string, p *osprofile.Profile) fault.Injectors {
	return fault.New(opts.Faults, sim.NewRNG(cfg.Seed).Fork(saltFor(id, p.String(), 0)))
}

// foldProfiles folds each run's span stream. Called once per probe,
// after the runs exist; per-run folding keeps the work inside the
// parallel task.
func (o *Observation) foldProfiles() {
	for i := range o.Runs {
		o.Runs[i].Profile = profile.Fold(o.Runs[i].Process)
	}
}

// FoldMetrics adds the run's statistics — pool shape, job counts, memo
// effectiveness, wall-clock times and worker utilization — to a registry
// under the given prefix. These are the runner's self-observability
// gauges; they carry real wall-clock time and therefore vary run to run,
// which is why determinism checks strip the prefix.
func (st *RunStats) FoldMetrics(reg *obs.Registry, prefix string) {
	reg.Counter(prefix + "workers").Add(float64(st.Workers))
	reg.Counter(prefix + "jobs").Add(float64(st.Jobs))
	reg.Counter(prefix + "inner_jobs").Add(float64(st.InnerJobs))
	reg.Counter(prefix + "memo_hits").Add(float64(st.MemoHits))
	reg.Counter(prefix + "memo_misses").Add(float64(st.MemoMisses))
	if st.Store != nil {
		// Persistent result-memo effectiveness, present only when a store
		// was attached (-memo), so storeless snapshots are unchanged.
		reg.Counter(prefix + "memo_store_hits").Add(float64(st.Store.Hits))
		reg.Counter(prefix + "memo_store_misses").Add(float64(st.Store.Misses))
		reg.Counter(prefix + "memo_store_stale").Add(float64(st.Store.Stale))
	}
	reg.Counter(prefix + "wall_us").Add(float64(st.Wall.Microseconds()))
	d := reg.Distribution(prefix + "experiment_wall_us")
	var busy time.Duration
	for _, e := range st.Experiments {
		d.Observe(float64(e.Wall.Microseconds()))
		busy += e.Wall
	}
	if st.Wall > 0 && st.Workers > 0 {
		util := float64(busy) / (float64(st.Wall) * float64(st.Workers))
		reg.Counter(prefix + "worker_utilization_pct").Add(100 * util)
	}
}

// SuiteObservation is the product of Runner.Observe: per-experiment
// observations, all trace processes in deterministic order, one
// merged metric snapshot, and the merged virtual-time profile.
// Everything except the "runner." self-metrics (real wall-clock,
// inherently nondeterministic) is bit-identical at every worker count;
// strip them with Metrics.ExcludePrefix("runner.") when comparing.
type SuiteObservation struct {
	Observations []*Observation
	Processes    []obs.Process
	Metrics      obs.Snapshot
	// Profile merges every run's folded profile in input order. Its
	// exports (folded, pprof, top) are byte-identical at every worker
	// count: per-run folds happen in the probe tasks, the merge walks
	// runs in input order, and the export order is canonical.
	Profile *profile.Profile
}

// Observe runs the probes for the given experiment IDs on the worker
// pool. Each probe runs with its own recorder and registry; the results
// are merged in input order — task order, never completion order — which
// is what makes the output independent of the worker count.
func (r *Runner) Observe(cfg Config, ids []string, opts ObserveOpts) (*SuiteObservation, error) {
	w := r.workers()
	obsv := make([]*Observation, len(ids))
	errs := make([]error, len(ids))
	timings := make([]ExperimentTiming, len(ids))
	start := time.Now()
	runOne := func(i int) {
		t0 := time.Now()
		obsv[i], errs[i] = Observe(cfg, ids[i], opts)
		timings[i] = ExperimentTiming{ID: ids[i], Wall: time.Since(t0)}
	}
	if w <= 1 {
		for i := range ids {
			runOne(i)
		}
	} else {
		pool := newWorkPool(w)
		var wg sync.WaitGroup
		for i := range ids {
			i := i
			wg.Add(1)
			go func() {
				defer wg.Done()
				pool.acquire()
				defer pool.release()
				runOne(i)
			}()
		}
		wg.Wait()
	}
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("observe %s: %w", ids[i], err)
		}
	}

	suite := &SuiteObservation{Observations: obsv, Profile: profile.New()}
	var parts []obs.Snapshot
	for _, o := range obsv {
		for _, run := range o.Runs {
			parts = append(parts, run.Metrics)
			suite.Processes = append(suite.Processes, run.Process)
			suite.Profile.Merge(run.Profile)
		}
	}
	merged := obs.MergeSnapshots(parts...)

	// Runner self-observability: real wall-clock task timings and worker
	// utilization, kept under "runner." so determinism comparisons can
	// exclude them.
	st := &RunStats{Workers: w, Jobs: len(ids), Wall: time.Since(start), Experiments: timings}
	reg := obs.NewRegistry()
	st.FoldMetrics(reg, "runner.")
	// Ring-bound trace truncation, summed across every captured process,
	// so dropped events are visible outside `trace -format=text`. Under
	// "runner." like the other self-metrics: the value is deterministic,
	// but it describes the capture, not the models.
	dropped := 0
	for _, pr := range suite.Processes {
		dropped += pr.Dropped
	}
	reg.Counter("runner.obs_dropped").Add(float64(dropped))
	// Exemplar reservoir rejections, summed across runs — the
	// capture-fidelity counterpart of obs_dropped for exemplar tracing
	// (deterministic: a pure function of the offered request sets).
	var exDropped int64
	for _, o := range obsv {
		for _, run := range o.Runs {
			exDropped += run.ExemplarDrops
		}
	}
	reg.Counter("runner.exemplars_dropped").Add(float64(exDropped))
	suite.Metrics = obs.MergeSnapshots(merged, reg.Snapshot())
	return suite, nil
}
