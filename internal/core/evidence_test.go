package core

import "testing"

func TestX1PhaseBreakdown(t *testing.T) {
	e, _ := Lookup("X1")
	res := e.Run(smallConfig())
	if len(res.Series) != 3 {
		t.Fatalf("X1 series = %d, want 3", len(res.Series))
	}
	for _, s := range res.Series {
		if len(s.X) != 5 {
			t.Fatalf("%s: %d phases, want 5", s.Label, len(s.X))
		}
	}
	// §8.1: FreeBSD wins the stat phase (index 2), beating even Linux.
	fb := res.FindSeries("FreeBSD 2.0.5R")
	lx := res.FindSeries("Linux 1.2.8")
	if fb.Samples[2].Mean() >= lx.Samples[2].Mean() {
		t.Errorf("FreeBSD stat phase %.3f should beat Linux %.3f",
			fb.Samples[2].Mean(), lx.Samples[2].Mean())
	}
	// Compile (index 4) dominates everywhere — several times the copy
	// phase even on the FFS systems, whose copy phase pays sync metadata.
	for _, s := range res.Series {
		if s.Samples[4].Mean() < 5*s.Samples[1].Mean() {
			t.Errorf("%s: compile %.2f not ≫ copy %.2f", s.Label,
				s.Samples[4].Mean(), s.Samples[1].Mean())
		}
	}
}

func TestX2DiskOps(t *testing.T) {
	e, _ := Lookup("X2")
	res := e.Run(smallConfig())
	get := func(label string) float64 { return res.FindSeries(label).Samples[0].Mean() }
	if get("Linux 1.2.8") != 0 {
		t.Errorf("Linux crtdel disk ops = %v, want exactly 0 (§7.2)", get("Linux 1.2.8"))
	}
	fb, sol := get("FreeBSD 2.0.5R"), get("Solaris 2.4")
	if fb <= sol || sol <= 0 {
		t.Errorf("disk op counts: FreeBSD %v must exceed Solaris %v > 0", fb, sol)
	}
	// Counts are deterministic: zero variance.
	for _, s := range res.Series {
		if s.Samples[0].StdDev() != 0 {
			t.Errorf("%s: operation count has variance", s.Label)
		}
	}
}

func TestA7KneeMoves(t *testing.T) {
	e, _ := Lookup("A7")
	res := e.Run(smallConfig())
	if len(res.Series) != 3 {
		t.Fatalf("A7 series = %d, want 3 pressure levels", len(res.Series))
	}
	// At a 12 MB file: full cache serves it, the most pressured cache
	// (9 MB) cannot.
	at12 := func(si int) float64 {
		s := res.Series[si]
		for i, x := range s.X {
			if x == 12 {
				return s.Samples[i].Mean()
			}
		}
		t.Fatal("no 12 MB point")
		return 0
	}
	idle, pressured := at12(0), at12(2)
	if idle < 4*pressured {
		t.Errorf("knee did not move: idle %.1f vs pressured %.1f at 12 MB", idle, pressured)
	}
}
