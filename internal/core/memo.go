package core

import (
	"bytes"
	"encoding/json"

	"repro/internal/fault"
	"repro/internal/osprofile"
)

// memoSchema versions the persistent result-memo key. Bump it whenever
// the meaning of a stored Result changes — a model fix, a new noise
// stream, a renamed rendering-relevant field — so runs against an old
// store miss and recompute instead of replaying outdated results.
const memoSchema = 1

// memoKeyMaterial is the canonical key material for one experiment
// execution: everything its Result depends on. Profiles embed the
// complete calibrated personality JSON, so a -profiles file with one
// tweaked constant (or a -future run) keys differently from the paper
// set. FaultPlan is part of the key format for forward compatibility;
// the RunAll path never carries one today.
type memoKeyMaterial struct {
	Schema    int             `json:"schema"`
	ID        string          `json:"id"`
	Seed      uint64          `json:"seed"`
	Runs      int             `json:"runs"`
	RefModel  bool            `json:"ref_model,omitempty"`
	Profiles  json.RawMessage `json:"profiles"`
	FaultPlan *fault.Plan     `json:"fault_plan,omitempty"`
}

// memoKey builds the canonical key bytes for one experiment under cfg,
// or nil if the configuration cannot be serialized (which just disables
// memoization for the run — never an error).
func memoKey(cfg Config, id string) []byte {
	var prof bytes.Buffer
	if err := osprofile.WriteJSON(&prof, cfg.Profiles); err != nil {
		return nil
	}
	key, err := json.Marshal(memoKeyMaterial{
		Schema:   memoSchema,
		ID:       id,
		Seed:     cfg.Seed,
		Runs:     cfg.Runs,
		RefModel: cfg.UseRefModel,
		Profiles: prof.Bytes(),
	})
	if err != nil {
		return nil
	}
	return key
}

// runMemoized executes one experiment, serving its Result from the
// persistent store when one is attached and the key matches. Results
// round-trip JSON bit for bit (stats.Sample marshals its raw
// observations; encoding/json reproduces float64s exactly), so a warm
// run renders byte-identically to a cold one.
func runMemoized(cfg Config, e *Experiment) *Result {
	if cfg.Memo == nil {
		return e.Run(cfg)
	}
	key := memoKey(cfg, e.ID)
	if key == nil {
		return e.Run(cfg)
	}
	res := new(Result)
	if cfg.Memo.Get(key, res) {
		return res
	}
	out := e.Run(cfg)
	// Best effort: a failed write (full disk, permissions) costs only the
	// next run's warm start, never this run's result.
	_ = cfg.Memo.Put(key, out)
	return out
}
