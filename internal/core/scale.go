package core

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/nfsserver"
	"repro/internal/osprofile"
	"repro/internal/sim"
	"repro/internal/stats"
)

// scaleClientCounts is the S1/S2 sweep: six decades of client
// population, the ROADMAP's "millions of users" reached on the last
// point.
var scaleClientCounts = []int{10, 100, 1_000, 10_000, 100_000, 1_000_000}

// scaleNfsd is the server's worker-slot count in the registry
// experiments (the conventional nfsd count of the era; the CLI's
// `scale` command makes it a flag).
const scaleNfsd = 8

// scaleKey identifies one server run for the per-suite sweep cache. The
// personality is keyed by name: profiles are registry constants, one
// name per parameter set.
type scaleKey struct {
	profile string
	clients int
	nfsd    int
	seed    uint64
}

// scalePoint runs (or serves from the suite cache) one server model
// point. The model is a pure function of the key, so sharing points
// between S1 and S2 — and between concurrent workers via the
// single-flight table — cannot change any result.
func scalePoint(cfg Config, p *osprofile.Profile, clients, nfsd int) *nfsserver.Result {
	key := scaleKey{profile: p.Name, clients: clients, nfsd: nfsd, seed: cfg.Seed}
	run := func() *nfsserver.Result {
		return nfsserver.Run(nfsserver.Config{
			Profile: p,
			Clients: clients,
			Nfsd:    nfsd,
			Seed:    cfg.Seed ^ saltFor("scale", p.Name, clients),
		})
	}
	if cfg.scale == nil {
		return run()
	}
	return cfg.scale.Do(key, run)
}

// ScaleRun executes one server-model point with the registry's seeding
// scheme — a clean run reproduces exactly the point the S1/S2 exhibits
// plot — optionally injecting a fault plan's network faults (lossy
// clients retransmit and back off; the curves degrade, never crash).
// The CLI `scale` command is built on it. The suite cache is
// deliberately not consulted: a plan changes the result without
// changing the cache key.
func ScaleRun(cfg Config, p *osprofile.Profile, clients, nfsd int, plan *fault.Plan) *nfsserver.Result {
	inj := fault.New(plan, sim.NewRNG(cfg.Seed).Fork(saltFor("scale", p.String(), clients)))
	return nfsserver.Run(nfsserver.Config{
		Profile: p,
		Clients: clients,
		Nfsd:    nfsd,
		Seed:    cfg.Seed ^ saltFor("scale", p.Name, clients),
		Faults:  inj.Net,
	})
}

// scaleQuantiles is the percentile set S2 reports.
var scaleQuantiles = []struct {
	label string
	q     float64
}{
	{"p50", 0.5},
	{"p99", 0.99},
	{"p999", 0.999},
}

func init() {
	register(&Experiment{
		ID:    "S1",
		Title: "NFS Server Throughput vs Client Population",
		Kind:  Figure,
		Paper: "scale-out of §10 (beyond the paper's one-client exhibit)",
		Run: func(cfg Config) *Result {
			res := &Result{
				ID: "S1", Title: "NFS Server Throughput vs Client Population",
				Kind: Figure, YUnit: "ops/s", XLabel: "clients", LogX: true,
				Direction: stats.HigherIsBetter,
				Notes: []string{
					"Open-loop load: each client issues one op/s, so offered load equals the client count; served throughput tracks it until a shared resource saturates.",
					"Synchronous-commit servers (FreeBSD, Solaris) hit the disk wall first — every write pays real I/O — while the Linux 1.2.8 server answers from its cache and rides to the CPU/cache limit before the buffer cache stops covering the population's working set.",
					"Past saturation all personalities converge to the shared disk's service rate: the million-client point measures queueing collapse, not the server.",
				},
			}
			res.Series = make([]Series, len(cfg.Profiles))
			parallelFor(cfg, len(cfg.Profiles), func(pi int) {
				p := cfg.Profiles[pi]
				s := Series{
					Label:   p.String(),
					X:       make([]float64, len(scaleClientCounts)),
					Samples: make([]*stats.Sample, len(scaleClientCounts)),
				}
				for i, clients := range scaleClientCounts {
					r := scalePoint(cfg, p, clients, scaleNfsd)
					s.X[i] = float64(clients)
					s.Samples[i] = noiseSample(cfg, saltFor("S1", p.String(), i),
						noiseFor(p, noiseNFS), r.Throughput())
				}
				res.Series[pi] = s
			})
			return res
		},
	})

	register(&Experiment{
		ID:    "S2",
		Title: "NFS Server Latency Percentiles vs Client Population",
		Kind:  Figure,
		Paper: "scale-out of §10 (beyond the paper's one-client exhibit)",
		Run: func(cfg Config) *Result {
			res := &Result{
				ID: "S2", Title: "NFS Server Latency Percentiles vs Client Population",
				Kind: Figure, YUnit: "ms", XLabel: "clients", LogX: true,
				Direction: stats.LowerIsBetter,
				Notes: []string{
					"Percentiles stream from fixed-boundary log-bucket histograms (O(1) memory per op, exact merge); no sample is ever stored.",
					"The p50/p99 gap opens exactly where the ingress queue starts filling; past the knee the p999 is dominated by retransmit backoff of queue-dropped requests.",
					"The async Linux server's percentiles stay flat for two more decades than the synchronous servers' — the spec-violating §10 cache reply at population scale.",
				},
			}
			res.Series = make([]Series, 0, len(cfg.Profiles)*len(scaleQuantiles))
			type job struct {
				p *osprofile.Profile
				q int
			}
			jobs := make([]job, 0, cap(res.Series))
			for _, p := range cfg.Profiles {
				for qi := range scaleQuantiles {
					jobs = append(jobs, job{p, qi})
				}
			}
			res.Series = res.Series[:len(jobs)]
			parallelFor(cfg, len(jobs), func(ji int) {
				p, qd := jobs[ji].p, scaleQuantiles[jobs[ji].q]
				label := fmt.Sprintf("%s %s", p, qd.label)
				s := Series{
					Label:   label,
					X:       make([]float64, len(scaleClientCounts)),
					Samples: make([]*stats.Sample, len(scaleClientCounts)),
				}
				for i, clients := range scaleClientCounts {
					r := scalePoint(cfg, p, clients, scaleNfsd)
					s.X[i] = float64(clients)
					ms := float64(r.Hist.Quantile(qd.q)) / 1e6
					s.Samples[i] = noiseSample(cfg, saltFor("S2", label, i),
						noiseFor(p, noiseNFS), ms)
				}
				res.Series[ji] = s
			})
			return res
		},
	})
}
