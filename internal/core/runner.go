package core

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bench"
	"repro/internal/cache"
	"repro/internal/memmodel"
	"repro/internal/memo"
	"repro/internal/nfsserver"
)

// workPool is the bounded token pool a Runner shares with the experiments
// it executes. Top-level experiment jobs block for a token; the fan-out
// inside experiments (parallelFor) only borrows tokens that happen to be
// free, so nested parallelism can never deadlock: a worker that finds the
// pool exhausted simply does the work itself.
type workPool struct {
	tokens    chan struct{}
	innerJobs atomic.Int64
}

func newWorkPool(workers int) *workPool {
	p := &workPool{tokens: make(chan struct{}, workers)}
	for i := 0; i < workers; i++ {
		p.tokens <- struct{}{}
	}
	return p
}

func (p *workPool) acquire() { <-p.tokens }

func (p *workPool) tryAcquire() bool {
	select {
	case <-p.tokens:
		return true
	default:
		return false
	}
}

func (p *workPool) release() { p.tokens <- struct{}{} }

// parallelFor executes f(i) for every i in [0, n). When cfg carries a
// worker pool with spare capacity, helper goroutines steal iterations from
// a shared counter while the caller works through them too; otherwise the
// loop runs serially in the caller.
//
// Every iteration must write only to its own per-index output slot and
// derive any randomness from cfg.Seed via saltFor — under that contract
// the schedule cannot affect the results, which is what makes parallel
// output bit-for-bit identical to serial output.
func parallelFor(cfg Config, n int, f func(int)) {
	pool := cfg.pool
	if pool == nil || n <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	pool.innerJobs.Add(int64(n))
	var idx atomic.Int64
	work := func() {
		for {
			i := int(idx.Add(1)) - 1
			if i >= n {
				return
			}
			f(i)
		}
	}
	var wg sync.WaitGroup
	for helpers := 0; helpers < n-1 && pool.tryAcquire(); helpers++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer pool.release()
			work()
		}()
	}
	work()
	wg.Wait()
}

// memSweep produces one §6 cache-hierarchy sweep, fanning the points out
// on the worker pool and sharing identical (machine, routine, distance,
// size) points across exhibits through the suite memo when one is
// attached to cfg.
func memSweep(cfg Config, cacheCfg cache.Config, r memmodel.Routine, dist int, sizes []int) []bench.MemPoint {
	cpuc := bench.PaperPlatform().CPU
	out := make([]bench.MemPoint, len(sizes))
	parallelFor(cfg, len(sizes), func(i int) {
		var mbs float64
		switch {
		case cfg.UseRefModel:
			// Differential certification path: per-access reference model,
			// no memo (the memo key does not carry the implementation, and
			// sharing values would defeat the point of re-simulating).
			mbs = memmodel.RefSweepPoint(cpuc, cacheCfg, r, dist, sizes[i])
		case cfg.memo != nil:
			mbs = cfg.memo.Bandwidth(cpuc, cacheCfg, r, dist, sizes[i])
		default:
			mbs = memmodel.SweepPoint(cpuc, cacheCfg, r, dist, sizes[i])
		}
		out[i] = bench.MemPoint{Size: sizes[i], MBs: mbs}
	})
	return out
}

// Runner executes experiments on a bounded worker pool. Because every
// experiment is a pure function of (Config, experiment), and every noise
// stream is forked per (experiment, series, point) by saltFor, scheduling
// them concurrently produces results bit-for-bit identical to running
// them one by one — the pool changes wall-clock time, never values.
type Runner struct {
	// Workers is the pool size; values <= 0 select runtime.GOMAXPROCS(0).
	Workers int
}

// NewRunner returns a Runner with the given pool size (<= 0 for the
// GOMAXPROCS default).
func NewRunner(workers int) *Runner { return &Runner{Workers: workers} }

func (r *Runner) workers() int {
	if r.Workers > 0 {
		return r.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// ExperimentTiming records how long one experiment took on the pool.
type ExperimentTiming struct {
	// ID is the experiment's exhibit identifier.
	ID string
	// Wall is the experiment's wall-clock execution time.
	Wall time.Duration
}

// RunStats describes one RunAll invocation: how much work ran, how well
// the sweep memo did, and where the time went.
type RunStats struct {
	// Workers is the pool size used.
	Workers int
	// Jobs is the number of top-level experiment executions.
	Jobs int
	// InnerJobs is the number of fan-out tasks (series and sweep points)
	// experiments scheduled through the pool.
	InnerJobs int
	// MemoHits and MemoMisses count cache-hierarchy sweep points served
	// from the suite memo vs. simulated; MemoMisses equals the number of
	// unique points.
	MemoHits, MemoMisses uint64
	// Store reports the persistent result memo's counters when a store
	// was attached to the run's Config; nil otherwise.
	Store *memo.StoreStats
	// Wall is the whole run's wall-clock time.
	Wall time.Duration
	// Experiments holds per-experiment wall times, in input order.
	Experiments []ExperimentTiming
}

// Slowest returns the k slowest experiments of the run, descending.
func (st *RunStats) Slowest(k int) []ExperimentTiming {
	out := make([]ExperimentTiming, len(st.Experiments))
	copy(out, st.Experiments)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Wall > out[j].Wall })
	if k < len(out) {
		out = out[:k]
	}
	return out
}

// RunAll executes every experiment under cfg and returns the results in
// input order, plus the run's statistics. Results are bit-for-bit
// identical to calling e.Run(cfg) serially for each experiment.
func (r *Runner) RunAll(cfg Config, exps []*Experiment) ([]*Result, *RunStats) {
	w := r.workers()
	sweeps := memmodel.NewSweepCache()
	cfg.memo = sweeps
	cfg.scale = memo.NewTable[scaleKey, *nfsserver.Result]()
	st := &RunStats{
		Workers:     w,
		Jobs:        len(exps),
		Experiments: make([]ExperimentTiming, len(exps)),
	}
	results := make([]*Result, len(exps))
	start := time.Now()
	runOne := func(i int) {
		t0 := time.Now()
		results[i] = runMemoized(cfg, exps[i])
		st.Experiments[i] = ExperimentTiming{ID: exps[i].ID, Wall: time.Since(t0)}
	}
	if w <= 1 {
		// Strictly serial: no pool, no goroutines — the reference
		// schedule the parallel one must reproduce.
		for i := range exps {
			runOne(i)
		}
	} else {
		pool := newWorkPool(w)
		cfg.pool = pool
		var wg sync.WaitGroup
		for i := range exps {
			i := i
			wg.Add(1)
			go func() {
				defer wg.Done()
				pool.acquire()
				defer pool.release()
				runOne(i)
			}()
		}
		wg.Wait()
		st.InnerJobs = int(pool.innerJobs.Load())
	}
	st.Wall = time.Since(start)
	ms := sweeps.Stats()
	st.MemoHits, st.MemoMisses = ms.Hits, ms.Misses
	if cfg.Memo != nil {
		ss := cfg.Memo.Stats()
		st.Store = &ss
	}
	return results, st
}
