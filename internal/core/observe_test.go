package core

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/obs"
)

// sumsToTotal checks the acceptance criterion for metrics tables: the
// phase rows sum to the reported total within float tolerance.
func sumsToTotal(t *testing.T, run ObservedRun) {
	t.Helper()
	var sum float64
	for _, r := range run.Rows {
		sum += r.Value
	}
	tol := 1e-9 * math.Max(1, math.Abs(run.Total))
	if math.Abs(sum-run.Total) > tol {
		t.Errorf("%s: rows sum %.9g != total %.9g (%s)", run.Label, sum, run.Total, run.Unit)
	}
}

func TestObserveProbesAttribution(t *testing.T) {
	cfg := DefaultConfig()
	for _, id := range ObservableIDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			o, err := Observe(cfg, id, ObserveOpts{})
			if err != nil {
				t.Fatal(err)
			}
			if o.ID != id || len(o.Runs) == 0 {
				t.Fatalf("observation %q has %d runs", o.ID, len(o.Runs))
			}
			for _, run := range o.Runs {
				if run.Unit == "" || len(run.Rows) == 0 {
					t.Fatalf("%s: empty unit or rows", run.Label)
				}
				if run.Total <= 0 {
					t.Fatalf("%s: non-positive total %g", run.Label, run.Total)
				}
				sumsToTotal(t, run)
			}
		})
	}
}

func TestObserveUnknownID(t *testing.T) {
	if _, err := Observe(DefaultConfig(), "F99", ObserveOpts{}); err == nil {
		t.Fatal("expected error for unknown probe id")
	}
	if _, err := Observe(DefaultConfig(), "", ObserveOpts{}); err == nil {
		t.Fatal("expected error for empty probe id")
	}
}

func TestObserveTitleFromRegistry(t *testing.T) {
	o, err := Observe(DefaultConfig(), "F12", ObserveOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if o.Title == "" || o.Title == "F12" {
		t.Fatalf("expected registry title for F12, got %q", o.Title)
	}
}

// chromeBytes renders a suite's trace processes to Chrome trace-event
// JSON, as the CLI does.
func chromeBytes(t *testing.T, s *SuiteObservation) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := obs.WriteChrome(&buf, s.Processes); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestObserveDeterminismAcrossWorkers is the regression test for the
// suite's central determinism guarantee: span streams and metric
// snapshots are bit-identical between -j 1 and -j 8. Runs under -race in
// `make check` via the race target.
func TestObserveDeterminismAcrossWorkers(t *testing.T) {
	cfg := DefaultConfig()
	ids := ObservableIDs()
	s1, err := NewRunner(1).Observe(cfg, ids, ObserveOpts{})
	if err != nil {
		t.Fatal(err)
	}
	s8, err := NewRunner(8).Observe(cfg, ids, ObserveOpts{})
	if err != nil {
		t.Fatal(err)
	}

	m1 := s1.Metrics.ExcludePrefix("runner.")
	m8 := s8.Metrics.ExcludePrefix("runner.")
	if !m1.Equal(m8) {
		t.Fatalf("metric snapshots differ between -j 1 and -j 8:\n-j1:\n%s\n-j8:\n%s", m1, m8)
	}

	b1 := chromeBytes(t, s1)
	b8 := chromeBytes(t, s8)
	if !bytes.Equal(b1, b8) {
		t.Fatal("chrome trace bytes differ between -j 1 and -j 8")
	}
	if !bytes.HasPrefix(b1, []byte("[")) || len(b1) < 2 {
		t.Fatalf("chrome export does not look like a JSON array: %.40q", b1)
	}
}

// The same guarantee holds with a fault plan injected: every fault
// arrival derives from the per-(experiment, personality) RNG fork, never
// from worker scheduling, so a faulted suite is as bit-deterministic as a
// clean one. Runs under -race in `make check` via the race target.
func TestObserveDeterminismAcrossWorkersFaulted(t *testing.T) {
	cfg := DefaultConfig()
	ids := FaultableIDs()
	opts := ObserveOpts{Faults: &fault.Plan{
		Disk:  fault.DiskFaults{LatencySpikeProb: 0.05, TransientErrorProb: 0.02},
		Net:   fault.NetFaults{UDPLossProb: 0.05, TCPSegLossProb: 0.02, AckDelayUs: 200},
		Cache: fault.CacheFaults{PageStealProb: 0.01},
	}}
	s1, err := NewRunner(1).Observe(cfg, ids, opts)
	if err != nil {
		t.Fatal(err)
	}
	s8, err := NewRunner(8).Observe(cfg, ids, opts)
	if err != nil {
		t.Fatal(err)
	}
	m1 := s1.Metrics.ExcludePrefix("runner.")
	m8 := s8.Metrics.ExcludePrefix("runner.")
	if !m1.Equal(m8) {
		t.Fatalf("faulted metric snapshots differ between -j 1 and -j 8:\n-j1:\n%s\n-j8:\n%s", m1, m8)
	}
	if !bytes.Equal(chromeBytes(t, s1), chromeBytes(t, s8)) {
		t.Fatal("faulted chrome trace bytes differ between -j 1 and -j 8")
	}
	// The injectors actually fired and their counters surfaced.
	if v, ok := m1.Get("fault.net.rpc_retransmits"); !ok || v == 0 {
		t.Errorf("fault.net.rpc_retransmits = %v, %v", v, ok)
	}
}

func TestSuiteObservationShape(t *testing.T) {
	ids := []string{"T2", "F12"}
	s, err := NewRunner(2).Observe(DefaultConfig(), ids, ObserveOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Observations) != len(ids) {
		t.Fatalf("got %d observations, want %d", len(s.Observations), len(ids))
	}
	var wantProcs int
	for _, o := range s.Observations {
		wantProcs += len(o.Runs)
	}
	if len(s.Processes) != wantProcs {
		t.Fatalf("got %d processes, want %d", len(s.Processes), wantProcs)
	}
	// Processes follow input order: T2's runs before F12's.
	if s.Observations[0].ID != "T2" || s.Observations[1].ID != "F12" {
		t.Fatalf("observation order not input order: %s, %s",
			s.Observations[0].ID, s.Observations[1].ID)
	}
	if _, ok := s.Metrics.Get("runner.jobs"); !ok {
		t.Fatal("suite metrics missing runner.jobs self-metric")
	}
	if v, ok := s.Metrics.Get("runner.workers"); !ok || v != 2 {
		t.Fatalf("runner.workers = %v, %v; want 2, true", v, ok)
	}
	// Kernel and fs attribution from the probes must have been merged in.
	for _, name := range []string{"kernel.phase_us.syscall", "fs.phase_us.vfs"} {
		if _, ok := s.Metrics.Get(name); !ok {
			t.Errorf("suite metrics missing %s", name)
		}
	}
}

func TestObserveErrorPropagates(t *testing.T) {
	_, err := NewRunner(4).Observe(DefaultConfig(), []string{"T2", "nope"}, ObserveOpts{})
	if err == nil || !strings.Contains(err.Error(), "nope") {
		t.Fatalf("expected error naming the bad id, got %v", err)
	}
}

func TestRunStatsFoldMetrics(t *testing.T) {
	st := &RunStats{
		Workers:    4,
		Jobs:       3,
		InnerJobs:  7,
		MemoHits:   10,
		MemoMisses: 5,
		Wall:       2 * time.Millisecond,
		Experiments: []ExperimentTiming{
			{ID: "a", Wall: time.Millisecond},
			{ID: "b", Wall: time.Millisecond},
			{ID: "c", Wall: 2 * time.Millisecond},
		},
	}
	reg := obs.NewRegistry()
	st.FoldMetrics(reg, "runner.")
	snap := reg.Snapshot()
	for name, want := range map[string]float64{
		"runner.workers":     4,
		"runner.jobs":        3,
		"runner.inner_jobs":  7,
		"runner.memo_hits":   10,
		"runner.memo_misses": 5,
		"runner.wall_us":     2000,
		// busy 4ms over 4 workers × 2ms wall = 50%.
		"runner.worker_utilization_pct": 50,
	} {
		if v, ok := snap.Get(name); !ok || math.Abs(v-want) > 1e-9 {
			t.Errorf("%s = %v, %v; want %v", name, v, ok, want)
		}
	}
}

// profileBytes renders every profile export of a suite, concatenated.
func profileBytes(t *testing.T, s *SuiteObservation) []byte {
	t.Helper()
	var b bytes.Buffer
	if err := s.Profile.WriteFolded(&b); err != nil {
		t.Fatal(err)
	}
	if err := s.Profile.WriteTop(&b, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Profile.WritePprof(&b); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

func TestSuiteProfileDeterministicAcrossWorkers(t *testing.T) {
	cfg := DefaultConfig()
	ids := ObservableIDs()
	s1, err := NewRunner(1).Observe(cfg, ids, ObserveOpts{})
	if err != nil {
		t.Fatal(err)
	}
	s8, err := NewRunner(8).Observe(cfg, ids, ObserveOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if s1.Profile.TotalNs() == 0 {
		t.Fatal("suite profile is empty")
	}
	if !bytes.Equal(profileBytes(t, s1), profileBytes(t, s8)) {
		t.Fatal("profile exports differ between -j 1 and -j 8")
	}
}

func TestSuiteProfileMergesRunFolds(t *testing.T) {
	s, err := NewRunner(2).Observe(DefaultConfig(), []string{"T2", "F12"}, ObserveOpts{})
	if err != nil {
		t.Fatal(err)
	}
	var want int64
	for _, o := range s.Observations {
		for _, run := range o.Runs {
			if run.Profile == nil {
				t.Fatalf("%s/%s: run profile not folded", o.ID, run.Label)
			}
			want += run.Profile.TotalNs()
		}
	}
	if got := s.Profile.TotalNs(); got != want {
		t.Fatalf("suite profile total %d != sum of run profiles %d", got, want)
	}
}
