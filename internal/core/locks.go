package core

import (
	"fmt"

	"repro/internal/bench"
	"repro/internal/kernel"
	"repro/internal/osprofile"
	"repro/internal/sim"
	"repro/internal/stats"
)

// The L exhibits run the SMP lock-contention microbenchmark (DESIGN.md
// §16) beyond the paper's uniprocessor world, after the synchronization-
// mechanisms survey in PAPERS.md: the same worker loop under each
// personality's spinlock and sleep lock, swept over CPU count (L1) and
// critical-section length (L2).

// lockNCPUs is the L1 CPU-count sweep.
var lockNCPUs = []int{1, 2, 4, 8, 16}

// lockCrits is the L2 critical-section sweep (log-spaced).
var lockCrits = []sim.Duration{
	1 * sim.Microsecond, 2 * sim.Microsecond, 5 * sim.Microsecond,
	10 * sim.Microsecond, 20 * sim.Microsecond, 50 * sim.Microsecond,
	100 * sim.Microsecond, 200 * sim.Microsecond, 500 * sim.Microsecond,
	1000 * sim.Microsecond,
}

const (
	// lockThink is the uncontended compute between acquisitions.
	lockThink = 5 * sim.Microsecond
	// lockCrit is L1's fixed critical-section length.
	lockCrit = 20 * sim.Microsecond
	// lockIters is the per-thread iteration count.
	lockIters = 400
	// lockSweepNCPU is L2's fixed machine size (and the audit's).
	lockSweepNCPU = 8
)

// lockKinds orders the two contention strategies in exhibit series.
var lockKinds = []kernel.LockKind{kernel.SpinLock, kernel.SleepLock}

// LockPoint runs one lock-contention point with the exhibits'
// construction — the audited run is the exhibited run. Exported for the
// CLI `locks` command.
func LockPoint(p *osprofile.Profile, kind kernel.LockKind, ncpu int, crit sim.Duration) bench.LockResult {
	return bench.LockContention(p, bench.LockWorkload{
		Kind: kind, NCPU: ncpu,
		Think: lockThink, Crit: crit, Iters: lockIters,
	})
}

func init() {
	register(&Experiment{
		ID:    "L1",
		Title: "Lock-Contention Throughput vs CPU Count",
		Kind:  Figure,
		Paper: "SMP extension of §5 (synchronization survey, PAPERS.md)",
		Run: func(cfg Config) *Result {
			res := &Result{
				ID: "L1", Title: "Lock-Contention Throughput vs CPU Count",
				Kind: Figure, YUnit: "ops/s", XLabel: "cpus",
				Direction: stats.HigherIsBetter,
				Notes: []string{
					"One worker per CPU iterates think → lock → 20 µs critical section → unlock; the lock serializes, so throughput saturates near 1/critical-section and the interesting signal is how much each personality's acquisition machinery wastes getting there.",
					"Spinlocks waste the losing CPUs' cycles in the backoff ladder (visible in the spin ledger, which the audit checks against elapsed exactly); sleep locks pay block/wakeup plus a dispatch per handoff.",
					"Per-CPU busy + idle + spin sums equal elapsed to the nanosecond on every run — `pentiumbench audit -ids L1` re-verifies.",
				},
			}
			type job struct {
				p    *osprofile.Profile
				kind kernel.LockKind
			}
			jobs := make([]job, 0, len(cfg.Profiles)*len(lockKinds))
			for _, p := range cfg.Profiles {
				for _, k := range lockKinds {
					jobs = append(jobs, job{p, k})
				}
			}
			res.Series = make([]Series, len(jobs))
			parallelFor(cfg, len(jobs), func(ji int) {
				p, kind := jobs[ji].p, jobs[ji].kind
				label := fmt.Sprintf("%s %s", p, kind)
				s := Series{
					Label:   label,
					X:       make([]float64, len(lockNCPUs)),
					Samples: make([]*stats.Sample, len(lockNCPUs)),
				}
				for i, ncpu := range lockNCPUs {
					r := LockPoint(p, kind, ncpu, lockCrit)
					s.X[i] = float64(ncpu)
					s.Samples[i] = noiseSample(cfg, saltFor("L1", label, i),
						noiseFor(p, noiseCtx), r.Throughput())
				}
				res.Series[ji] = s
			})
			return res
		},
	})

	register(&Experiment{
		ID:    "L2",
		Title: "Lock Wait-Time p99 vs Critical-Section Length",
		Kind:  Figure,
		Paper: "SMP extension of §5 (synchronization survey, PAPERS.md)",
		Run: func(cfg Config) *Result {
			res := &Result{
				ID: "L2", Title: "Lock Wait-Time p99 vs Critical-Section Length",
				Kind: Figure, YUnit: "µs", XLabel: "critical section (µs)", LogX: true,
				Direction: stats.LowerIsBetter,
				Notes: []string{
					"Eight CPUs contend for one lock; the y-axis is the 99th-percentile wait of contended acquisitions, streamed from the lock's log-bucket histogram.",
					"The spin-vs-sleep crossover: short sections favour spinning (a sleep handoff costs a block, a wakeup, and a dispatch every time), long sections favour sleeping (the backoff ladder overshoots and unfair poll ordering starves whoever backed off furthest, while the sleep queue's FIFO handoff bounds waits at queue-depth × section).",
					"Each personality crosses at a different length — the ladder cap, wakeup cost, and dispatch cost are per-OS calibrations.",
				},
			}
			type job struct {
				p    *osprofile.Profile
				kind kernel.LockKind
			}
			jobs := make([]job, 0, len(cfg.Profiles)*len(lockKinds))
			for _, p := range cfg.Profiles {
				for _, k := range lockKinds {
					jobs = append(jobs, job{p, k})
				}
			}
			res.Series = make([]Series, len(jobs))
			parallelFor(cfg, len(jobs), func(ji int) {
				p, kind := jobs[ji].p, jobs[ji].kind
				label := fmt.Sprintf("%s %s", p, kind)
				s := Series{
					Label:   label,
					X:       make([]float64, len(lockCrits)),
					Samples: make([]*stats.Sample, len(lockCrits)),
				}
				for i, crit := range lockCrits {
					r := LockPoint(p, kind, lockSweepNCPU, crit)
					s.X[i] = crit.Microseconds()
					us := sim.Duration(r.WaitHist.Quantile(0.99)).Microseconds()
					s.Samples[i] = noiseSample(cfg, saltFor("L2", label, i),
						noiseFor(p, noiseCtx), us)
				}
				res.Series[ji] = s
			})
			return res
		},
	})
}
