package core

import (
	"sync/atomic"
	"testing"

	"repro/internal/bench"
	"repro/internal/cache"
	"repro/internal/memmodel"
)

// assertResultsIdentical compares two result sets bit for bit: every
// series label, every X value, every run value, every mean and std dev.
func assertResultsIdentical(t *testing.T, want, got []*Result) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("result count: %d vs %d", len(want), len(got))
	}
	for ri := range want {
		w, g := want[ri], got[ri]
		if w.ID != g.ID || len(w.Series) != len(g.Series) {
			t.Fatalf("%s: shape mismatch (%s, %d vs %d series)", w.ID, g.ID, len(w.Series), len(g.Series))
		}
		for si := range w.Series {
			ws, gs := &w.Series[si], &g.Series[si]
			if ws.Label != gs.Label {
				t.Fatalf("%s series %d: label %q vs %q", w.ID, si, ws.Label, gs.Label)
			}
			if len(ws.X) != len(gs.X) || len(ws.Samples) != len(gs.Samples) {
				t.Fatalf("%s/%s: point count mismatch", w.ID, ws.Label)
			}
			for i := range ws.X {
				if ws.X[i] != gs.X[i] {
					t.Fatalf("%s/%s X[%d]: %v vs %v", w.ID, ws.Label, i, ws.X[i], gs.X[i])
				}
			}
			for i := range ws.Samples {
				wv, gv := ws.Samples[i].Values(), gs.Samples[i].Values()
				if len(wv) != len(gv) {
					t.Fatalf("%s/%s point %d: %d vs %d runs", w.ID, ws.Label, i, len(wv), len(gv))
				}
				for r := range wv {
					if wv[r] != gv[r] {
						t.Fatalf("%s/%s point %d run %d: %v vs %v",
							w.ID, ws.Label, i, r, wv[r], gv[r])
					}
				}
				if ws.Samples[i].Mean() != gs.Samples[i].Mean() {
					t.Fatalf("%s/%s point %d: mean %v vs %v",
						w.ID, ws.Label, i, ws.Samples[i].Mean(), gs.Samples[i].Mean())
				}
				if ws.Samples[i].StdDev() != gs.Samples[i].StdDev() {
					t.Fatalf("%s/%s point %d: std dev %v vs %v",
						w.ID, ws.Label, i, ws.Samples[i].StdDev(), gs.Samples[i].StdDev())
				}
			}
		}
	}
}

// TestRunnerParallelBitIdentical is the determinism regression test: the
// full registry, run serially (direct e.Run, no pool, no memo) and on an
// 8-worker pool, must agree on every value of every sample. Running this
// under `go test -race` additionally certifies the runner race-free.
func TestRunnerParallelBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full suite twice")
	}
	cfg := smallConfig()
	exps := All()
	serial := make([]*Result, len(exps))
	for i, e := range exps {
		serial[i] = e.Run(cfg)
	}
	parallel, st := NewRunner(8).RunAll(cfg, exps)
	assertResultsIdentical(t, serial, parallel)
	if st.Jobs != len(exps) {
		t.Errorf("stats jobs = %d, want %d", st.Jobs, len(exps))
	}
	if st.Workers != 8 {
		t.Errorf("stats workers = %d, want 8", st.Workers)
	}
	if st.InnerJobs == 0 {
		t.Error("no fan-out tasks recorded; experiments did not use the pool")
	}
	if st.MemoHits == 0 {
		t.Error("memo recorded no hits; shared sweeps are being re-simulated")
	}
}

// TestRunnerSerialMatchesDirect pins the -j 1 path (pool-free, but
// memoized) to the direct e.Run path.
func TestRunnerSerialMatchesDirect(t *testing.T) {
	cfg := smallConfig()
	exps := []*Experiment{mustLookup(t, "T2"), mustLookup(t, "F3"), mustLookup(t, "A1")}
	direct := make([]*Result, len(exps))
	for i, e := range exps {
		direct[i] = e.Run(cfg)
	}
	viaRunner, st := NewRunner(1).RunAll(cfg, exps)
	assertResultsIdentical(t, direct, viaRunner)
	if st.InnerJobs != 0 {
		t.Errorf("serial runner scheduled %d pool tasks", st.InnerJobs)
	}
	// F3's memset sweep and A1's no-write-allocate memset sweep are the
	// same points; the memo must have shared them even at -j 1.
	if st.MemoHits == 0 {
		t.Error("serial runner memo recorded no hits")
	}
}

func mustLookup(t *testing.T, id string) *Experiment {
	t.Helper()
	e, ok := Lookup(id)
	if !ok {
		t.Fatalf("missing experiment %s", id)
	}
	return e
}

func TestRunnerDefaultWorkers(t *testing.T) {
	if w := NewRunner(0).workers(); w < 1 {
		t.Fatalf("default workers = %d", w)
	}
	if w := NewRunner(3).workers(); w != 3 {
		t.Fatalf("explicit workers = %d, want 3", w)
	}
}

func TestParallelForCoversEveryIndex(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		var cfg Config
		if workers > 1 {
			cfg.pool = newWorkPool(workers)
		}
		const n = 100
		var seen [n]atomic.Int32
		parallelFor(cfg, n, func(i int) { seen[i].Add(1) })
		for i := range seen {
			if c := seen[i].Load(); c != 1 {
				t.Fatalf("workers=%d: index %d executed %d times", workers, i, c)
			}
		}
	}
}

func TestParallelForNeverDeadlocksWhenNested(t *testing.T) {
	var cfg Config
	cfg.pool = newWorkPool(2)
	var count atomic.Int32
	parallelFor(cfg, 8, func(int) {
		parallelFor(cfg, 8, func(int) { count.Add(1) })
	})
	if count.Load() != 64 {
		t.Fatalf("nested tasks = %d, want 64", count.Load())
	}
}

func TestRunStatsSlowest(t *testing.T) {
	st := &RunStats{Experiments: []ExperimentTiming{
		{ID: "T2", Wall: 1}, {ID: "F1", Wall: 30}, {ID: "T3", Wall: 20},
	}}
	top := st.Slowest(2)
	if len(top) != 2 || top[0].ID != "F1" || top[1].ID != "T3" {
		t.Fatalf("Slowest(2) = %v", top)
	}
	if got := st.Slowest(10); len(got) != 3 {
		t.Fatalf("Slowest(10) returned %d entries", len(got))
	}
}

// TestMemSweepRefModelBitIdentical certifies the line-granular cache fast
// path end to end: the same sweeps the §6 figures run, re-simulated on the
// per-access reference hierarchy (Config.UseRefModel), must reproduce the
// fast path's bandwidths bit for bit. This is the suite-level face of the
// differential property tests in internal/cache and internal/memmodel.
func TestMemSweepRefModelBitIdentical(t *testing.T) {
	cfg := smallConfig()
	refCfg := cfg
	refCfg.UseRefModel = true
	sizes := []int{512, 4 << 10, 64 << 10, 512 << 10}
	if testing.Short() {
		sizes = sizes[:3]
	}
	for _, r := range []memmodel.Routine{memmodel.CustomRead, memmodel.Memset, memmodel.PrefetchCopy} {
		fast := memSweep(cfg, cache.PentiumConfig(), r, memmodel.DefaultPrefetchDistance, sizes)
		ref := memSweep(refCfg, cache.PentiumConfig(), r, memmodel.DefaultPrefetchDistance, sizes)
		for i := range sizes {
			if fast[i] != ref[i] {
				t.Errorf("%v at %d bytes: fast %v, reference %v", r, sizes[i], fast[i], ref[i])
			}
		}
	}
	// UseRefModel must also win over an attached memo: the point of the
	// flag is to re-simulate, not to read back memoized fast-path values.
	refCfg.memo = memmodel.NewSweepCache()
	memSweep(refCfg, cache.PentiumConfig(), memmodel.Memset, memmodel.DefaultPrefetchDistance, sizes[:1])
	if st := refCfg.memo.Stats(); st.Hits != 0 || st.Misses != 0 {
		t.Errorf("reference sweep touched the memo: %+v", st)
	}
}

// TestMemSweepMemoMatchesDirect checks the memoized sweep against the
// unmemoized one, and the memo's single-flight accounting.
func TestMemSweepMemoMatchesDirect(t *testing.T) {
	cfg := smallConfig()
	sizes := []int{64, 1 << 10, 32 << 10}
	direct := memSweep(cfg, cache.PentiumConfig(), memmodel.Memset,
		memmodel.DefaultPrefetchDistance, sizes)
	cfg.memo = memmodel.NewSweepCache()
	first := memSweep(cfg, cache.PentiumConfig(), memmodel.Memset,
		memmodel.DefaultPrefetchDistance, sizes)
	second := memSweep(cfg, cache.PentiumConfig(), memmodel.Memset,
		memmodel.DefaultPrefetchDistance, sizes)
	for i := range sizes {
		if direct[i] != first[i] || first[i] != second[i] {
			t.Fatalf("point %d: direct %v, first %v, second %v", i, direct[i], first[i], second[i])
		}
	}
	st := cfg.memo.Stats()
	if st.Misses != uint64(len(sizes)) || st.Hits != uint64(len(sizes)) {
		t.Fatalf("memo stats = %+v, want %d misses and %d hits", st, len(sizes), len(sizes))
	}
	// A different distance is a different key, even for a routine that
	// never prefetches — correctness over cleverness.
	cfg.memo.Bandwidth(bench.PaperPlatform().CPU, cache.PentiumConfig(), memmodel.Memset, 4, 64)
	if got := cfg.memo.Stats().Misses; got != uint64(len(sizes))+1 {
		t.Fatalf("distance not part of the key: misses = %d", got)
	}
}
