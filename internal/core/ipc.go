package core

import (
	"fmt"

	"repro/internal/bench"
	"repro/internal/fault"
	"repro/internal/osprofile"
	"repro/internal/sim"
	"repro/internal/stats"
)

// The I1 exhibit compares the three classic IPC transports — pipes, UDP
// sockets, and shared memory — over a message-size sweep, after
// Bell-Thomas' FreeBSD IPC study (PAPERS.md). The transports reuse the
// models already calibrated elsewhere in the repo: the kernel pipe
// (Table 4), the netstack UDP path (Figure 13), and the §6 cache
// hierarchy for shared-memory line traffic.

// ipcMsgSizes is the message-size sweep (log-spaced).
var ipcMsgSizes = []int{64, 256, 1024, 4096, 16384, 65536}

// ipcTransports orders the transports in exhibit series.
var ipcTransports = []string{"pipe", "socket", "shm"}

// IPCPoint runs one IPC point with the exhibits' construction and
// returns the transfer bandwidth in MB/s. A non-nil plan perturbs the
// socket transport (the only one with a network under it); pipes and
// shared memory are immune by construction. Exported for the CLI `ipc`
// command.
func IPCPoint(cfg Config, p *osprofile.Profile, transport string, msg int, plan *fault.Plan) (float64, error) {
	plat := bench.PaperPlatform()
	var d sim.Duration
	switch transport {
	case "pipe":
		d = bench.IPCPipe(plat, p, msg, bench.IPCTotalBytes)
	case "socket":
		inj := fault.New(plan, sim.NewRNG(cfg.Seed).Fork(saltFor("ipc", p.String(), msg)))
		d = bench.IPCSocket(p, msg, bench.IPCTotalBytes, inj.Net)
	case "shm":
		d = bench.IPCShm(plat, p, msg, bench.IPCTotalBytes)
	default:
		return 0, fmt.Errorf("core: unknown IPC transport %q (want pipe, socket, or shm)", transport)
	}
	s := d.Seconds()
	if s <= 0 {
		return 0, nil
	}
	return float64(bench.IPCTotalBytes) / (1 << 20) / s, nil
}

// ipcNoise picks the calibrated noise area per transport: pipes share
// the bw_pipe calibration, sockets the ttcp UDP one, and shared memory
// the memory suite's.
func ipcNoise(p *osprofile.Profile, transport string) float64 {
	switch transport {
	case "pipe":
		return noiseFor(p, noisePipe)
	case "socket":
		return noiseFor(p, noiseUDP)
	}
	return noiseFor(p, noiseMem)
}

func init() {
	register(&Experiment{
		ID:    "I1",
		Title: "IPC Bandwidth vs Message Size (pipe / socket / shm)",
		Kind:  Figure,
		Paper: "IPC extension of §9 (FreeBSD IPC study, PAPERS.md)",
		Run: func(cfg Config) *Result {
			res := &Result{
				ID: "I1", Title: "IPC Bandwidth vs Message Size (pipe / socket / shm)",
				Kind: Figure, YUnit: "MB/s", XLabel: "message bytes", LogX: true,
				Direction: stats.HigherIsBetter,
				Notes: []string{
					"Every transport moves 1 MB between two processes; bandwidth = total / elapsed virtual time.",
					"Pipes amortize their two copies and syscall pair as messages grow until the kernel buffer bounds the burst; UDP sockets pay per-packet protocol and checksum costs and fragment at the personality's maximum datagram; shared memory pays only semaphore handshakes plus the cache-line traffic of handing the message's lines to a cold consumer.",
					"Fault plans reach only the socket series (the transport with a network under it) — `-faults` leaves pipe and shm curves byte-identical.",
				},
			}
			type job struct {
				p  *osprofile.Profile
				tr string
			}
			jobs := make([]job, 0, len(cfg.Profiles)*len(ipcTransports))
			for _, p := range cfg.Profiles {
				for _, tr := range ipcTransports {
					jobs = append(jobs, job{p, tr})
				}
			}
			res.Series = make([]Series, len(jobs))
			parallelFor(cfg, len(jobs), func(ji int) {
				p, tr := jobs[ji].p, jobs[ji].tr
				label := fmt.Sprintf("%s %s", p, tr)
				s := Series{
					Label:   label,
					X:       make([]float64, len(ipcMsgSizes)),
					Samples: make([]*stats.Sample, len(ipcMsgSizes)),
				}
				for i, msg := range ipcMsgSizes {
					mbps, err := IPCPoint(cfg, p, tr, msg, nil)
					if err != nil {
						panic(err) // unreachable: transports are the fixed set above
					}
					s.X[i] = float64(msg)
					s.Samples[i] = noiseSample(cfg, saltFor("I1", label, i),
						ipcNoise(p, tr), mbps)
				}
				res.Series[ji] = s
			})
			return res
		},
	})
}
