package core

import (
	"encoding/json"
	"testing"

	"repro/internal/fault"
	"repro/internal/osprofile"
)

// The exhibited scale probes must audit clean — every queueing-law
// invariant exact — for both experiments, clean and under wire loss.
func TestAuditScaleProbesClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full audit sweep")
	}
	cfg := Config{Seed: 1, Profiles: osprofile.Paper()}
	lossy := &fault.Plan{}
	lossy.Net.UDPLossProb = 0.05
	for _, plan := range []*fault.Plan{nil, lossy} {
		for _, id := range AuditableIDs() {
			a, err := Audit(cfg, id, ObserveOpts{Clients: 1000, Faults: plan})
			if err != nil {
				t.Fatalf("Audit(%s): %v", id, err)
			}
			// The SMP audit reports one row per personality × lock kind;
			// the scale probes one per personality.
			want := len(osprofile.Paper())
			if id == "L1" {
				want = 2 * len(osprofile.Paper())
			}
			if len(a.Reports) != want {
				t.Fatalf("%s: %d reports, want %d", id, len(a.Reports), want)
			}
			for _, rep := range a.Reports {
				if !rep.OK() {
					j, _ := json.MarshalIndent(rep.Violations, "", "  ")
					t.Fatalf("%s %s (faults=%v) failed %d/%d checks:\n%s",
						id, rep.System, plan != nil, rep.Failed, rep.Evaluated, j)
				}
				if rep.Evaluated < 20 {
					t.Fatalf("%s %s: only %d checks evaluated", id, rep.System, rep.Evaluated)
				}
			}
		}
	}
	if _, err := Audit(cfg, "T2", ObserveOpts{}); err == nil {
		t.Fatal("Audit(T2) should fail: not auditable")
	}
}

// Exemplar tracing must not change the probe's result rows or metrics —
// only add exemplars, per-request tracks, and the latency histogram.
func TestObserveExemplarsAdditive(t *testing.T) {
	cfg := Config{Seed: 1, Profiles: osprofile.Paper()[:1]}
	plain, err := Observe(cfg, "S1", ObserveOpts{Clients: 1000})
	if err != nil {
		t.Fatal(err)
	}
	traced, err := Observe(cfg, "S1", ObserveOpts{Clients: 1000, ExemplarK: 3})
	if err != nil {
		t.Fatal(err)
	}
	pr, tr := plain.Runs[0], traced.Runs[0]
	pm, _ := json.Marshal(pr.Metrics)
	tm, _ := json.Marshal(tr.Metrics)
	if string(pm) != string(tm) {
		t.Fatal("exemplar tracing changed the metric snapshot")
	}
	if len(pr.Exemplars) != 0 {
		t.Fatal("exemplars present with ExemplarK=0")
	}
	if len(tr.Exemplars) == 0 {
		t.Fatal("no exemplars with ExemplarK=3")
	}
	for _, w := range tr.Exemplars {
		if len(w.Exemplars) > 3 {
			t.Fatalf("window %d holds %d exemplars, want <= 3", w.Window, len(w.Exemplars))
		}
	}
	// Per-request tracks appear in the traced capture only.
	count := func(p []string) int {
		n := 0
		for _, tr := range p {
			if len(tr) > 4 && tr[:4] == "req " {
				n++
			}
		}
		return n
	}
	if count(pr.Process.Tracks) != 0 {
		t.Fatal("per-request tracks present without exemplar tracing")
	}
	if count(tr.Process.Tracks) == 0 {
		t.Fatal("no per-request tracks with exemplar tracing on")
	}
	if tr.LatencyHist == nil || tr.LatencyHist.N() == 0 {
		t.Fatal("latency histogram missing from scale probe")
	}
}
