// Package core is the experiment harness: it maps every table and figure
// of the paper (and the ablations in DESIGN.md §5) to a runnable
// experiment, executes the twenty-run protocol of §3, and produces
// structured results that package report renders and EXPERIMENTS.md
// records.
package core

import (
	"fmt"
	"slices"
	"strconv"
	"sync"

	"repro/internal/memmodel"
	"repro/internal/memo"
	"repro/internal/nfsserver"
	"repro/internal/osprofile"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Kind distinguishes the paper's two exhibit forms.
type Kind int

const (
	// Table is a single value per operating system (Tables 2-7).
	Table Kind = iota
	// Figure is a curve — one per OS, or a single hardware curve
	// (Figures 1-13).
	Figure
)

// Config controls a run of the suite.
type Config struct {
	// Seed is the master seed; every stochastic element derives from it.
	// The default seed 1 reproduces EXPERIMENTS.md bit for bit.
	Seed uint64
	// Runs is the number of benchmark repetitions (the paper used 20).
	Runs int
	// Profiles are the systems under test, in presentation order.
	Profiles []*osprofile.Profile

	// Memo, when non-nil, persists whole experiment results across suite
	// runs: RunAll serves an experiment from the store when its key — the
	// memo schema version, experiment ID, seed, run count, ref-model flag
	// and the full personality set — matches a stored entry, and stores
	// fresh results for the next run. Serving from the store cannot change
	// output: results round-trip JSON bit for bit.
	Memo *memo.Store

	// UseRefModel routes the §6 cache-hierarchy sweeps through the
	// per-access reference hierarchy (cache.RefHierarchy) instead of the
	// line-granular fast path, bypassing the sweep memo. Results must be
	// bit-identical either way — the fast path's defining invariant — so
	// the flag exists purely to certify that end to end (it is much
	// slower; see TestMemSweepRefModelBitIdentical).
	UseRefModel bool

	// pool is the worker pool of the Runner executing this configuration.
	// Experiments fan their per-(series, sweep-point) model runs out on it
	// via parallelFor; nil (the zero Config, and every direct e.Run call)
	// means serial execution.
	pool *workPool
	// memo caches cache-hierarchy sweep points across the experiments of
	// one suite run; nil disables memoization. Results are identical
	// either way — the model is a pure function of the memo key.
	memo *memmodel.SweepCache
	// scale caches NFS scale-out sweep points (S1/S2 share every
	// (personality, clients) server run) across one suite run; nil runs
	// each point directly. The server model is a pure function of the
	// key, so the cache changes wall-clock time, never values.
	scale *memo.Table[scaleKey, *nfsserver.Result]
}

// DefaultConfig returns the paper's protocol: twenty runs of Linux 1.2.8,
// FreeBSD 2.0.5R and Solaris 2.4, seed 1.
func DefaultConfig() Config {
	return Config{Seed: 1, Runs: 20, Profiles: osprofile.Paper()}
}

// Series is one labelled curve (or, for tables, one labelled value) of a
// result: per X value, the sample of per-run measurements.
type Series struct {
	// Label identifies the curve: usually an OS, sometimes a routine or a
	// variant ("Solaris-LIFO").
	Label string
	// X holds the sweep parameter values (empty for tables).
	X []float64
	// Samples holds one twenty-run sample per X entry (exactly one entry
	// for tables).
	Samples []*stats.Sample
}

// MeanAt returns the sample mean at index i.
func (s *Series) MeanAt(i int) float64 { return s.Samples[i].Mean() }

// Result is one executed experiment.
type Result struct {
	// ID is the exhibit identifier: "T2", "F13", "A5", ...
	ID string
	// Title is the exhibit's name as in the paper.
	Title string
	// Kind says whether this renders as a table or a figure.
	Kind Kind
	// YUnit and XLabel describe the axes ("µs", "MB/s"; "processes",
	// "buffer bytes").
	YUnit, XLabel string
	// LogX indicates the paper plotted the X axis on a log scale.
	LogX bool
	// Direction says whether smaller or larger YUnit values are better.
	Direction stats.Direction
	// Series holds the curves/rows.
	Series []Series
	// Expected holds the paper's reported numbers where the paper gives
	// them (tables and a few figure landmarks); nil otherwise.
	Expected []Expectation
	// Notes carries the qualitative shape claims the paper makes about
	// this exhibit, for EXPERIMENTS.md.
	Notes []string
}

// FindSeries returns the series with the given label, or nil.
func (r *Result) FindSeries(label string) *Series {
	for i := range r.Series {
		if r.Series[i].Label == label {
			return &r.Series[i]
		}
	}
	return nil
}

// ExpectationFor returns the paper's expectation for a label, if any.
func (r *Result) ExpectationFor(label string) (Expectation, bool) {
	for _, e := range r.Expected {
		if e.Label == label {
			return e, true
		}
	}
	return Expectation{}, false
}

// Expectation is one paper-reported value.
type Expectation struct {
	// Label matches a Series label (or landmark description).
	Label string
	// Mean is the paper's reported mean in YUnit.
	Mean float64
	// StdDevPct is the paper's reported standard deviation (% of mean),
	// or 0 if not reported.
	StdDevPct float64
}

// Experiment is a runnable exhibit reproduction.
type Experiment struct {
	// ID is the exhibit identifier ("T2", "F1", "A3"); Title names it.
	ID    string
	Title string
	// Kind mirrors Result.Kind.
	Kind Kind
	// Paper references the paper section/table/figure.
	Paper string
	// Run executes the experiment under cfg.
	Run func(cfg Config) *Result
}

// registry holds all experiments in presentation order.
var registry []*Experiment

func register(e *Experiment) { registry = append(registry, e) }

// All returns every experiment in presentation order: the paper's tables
// and figures in paper order, then the ablations. Ordering goes through
// a precomputed key table — each ID's rank packed above its registration
// index — so a plain integer sort replaces the comparator closure and
// its repeated rank calls, with the index bits keeping equal ranks in
// registration order.
func All() []*Experiment {
	keys := make([]int64, len(registry))
	for i, e := range registry {
		keys[i] = int64(rank(e.ID))<<32 | int64(i)
	}
	slices.Sort(keys)
	out := make([]*Experiment, len(registry))
	for j, k := range keys {
		out[j] = registry[k&(1<<32-1)]
	}
	return out
}

// rankUnknown sorts IDs whose shape rank does not understand after every
// well-formed ID, keeping their relative registration order stable.
const rankUnknown = 1 << 20

// rank orders experiment IDs: T2..T7, then F1..F13, then A1..A7, then the
// supplementary X exhibits, then the S scale-out exhibits, then the L
// lock-contention and I IPC families. A malformed
// ID — empty, a bare letter, or a non-numeric suffix like "T2b" — ranks
// after everything rather than silently parsing as 0 and jumping the
// queue.
func rank(id string) int {
	if len(id) < 2 {
		return rankUnknown
	}
	n, err := strconv.Atoi(id[1:])
	if err != nil || n < 0 {
		return rankUnknown
	}
	switch id[0] {
	case 'T':
		return n
	case 'F':
		return 100 + n
	case 'A':
		return 200 + n
	case 'X':
		return 300 + n
	case 'S':
		return 400 + n
	case 'L':
		return 500 + n
	case 'I':
		return 600 + n
	}
	return rankUnknown
}

// lookupIndex is the lazily built ID → experiment map behind Lookup.
// Registration only happens in package init functions, so the index can
// be built once, on the first Lookup.
var (
	lookupOnce  sync.Once
	lookupIndex map[string]*Experiment
)

// Lookup finds an experiment by ID (case-sensitive, e.g. "T2") in O(1).
func Lookup(id string) (*Experiment, bool) {
	lookupOnce.Do(func() {
		lookupIndex = make(map[string]*Experiment, len(registry))
		for _, e := range registry {
			// First registration wins, matching the linear scan this
			// index replaced; ValidateRegistry reports duplicates.
			if _, dup := lookupIndex[e.ID]; !dup {
				lookupIndex[e.ID] = e
			}
		}
	})
	e, ok := lookupIndex[id]
	return e, ok
}

// IDs returns all experiment IDs in order.
func IDs() []string {
	out := make([]string, len(registry))
	for i, e := range registry {
		out[i] = e.ID
	}
	return out
}

// ValidateRegistry checks registry invariants (unique IDs, runnable
// entries). Exposed for tests.
func ValidateRegistry() error {
	seen := map[string]bool{}
	for _, e := range registry {
		if seen[e.ID] {
			return fmt.Errorf("core: duplicate experiment id %q", e.ID)
		}
		seen[e.ID] = true
		if e.Run == nil {
			return fmt.Errorf("core: experiment %q has no Run", e.ID)
		}
		if e.ID == "" || e.Title == "" || e.Paper == "" {
			return fmt.Errorf("core: experiment %q missing metadata", e.ID)
		}
	}
	return nil
}

// noiseSample replicates a deterministic model mean into a run sample
// with the personality's calibrated relative noise, reproducing the
// paper's twenty-run protocol. The salt isolates each (experiment,
// series, point) stream so adding a series never perturbs another's.
func noiseSample(cfg Config, salt uint64, rel float64, mean float64) *stats.Sample {
	rng := sim.NewRNG(cfg.Seed).Fork(salt)
	s := &stats.Sample{}
	runs := cfg.Runs
	if runs <= 0 {
		runs = 20
	}
	for r := 0; r < runs; r++ {
		s.Add(mean * rng.Noise(rel))
	}
	return s
}

// saltFor derives a stable per-(experiment, series, point) RNG label.
func saltFor(id, label string, idx int) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range id + "\x00" + label {
		h = (h ^ uint64(c)) * 1099511628211
	}
	return h*31 + uint64(idx)
}

// profileNoise picks the calibrated noise level for an experiment area.
type noiseArea int

const (
	noiseSyscall noiseArea = iota
	noiseCtx
	noiseMem
	noiseFS
	noiseMAB
	noisePipe
	noiseUDP
	noiseTCP
	noiseNFS
)

func noiseFor(p *osprofile.Profile, a noiseArea) float64 {
	switch a {
	case noiseSyscall:
		return p.Noise.Syscall
	case noiseCtx:
		return p.Noise.Ctx
	case noiseMem:
		return p.Noise.Mem
	case noiseFS:
		return p.Noise.FS
	case noiseMAB:
		return p.Noise.MAB
	case noisePipe:
		return p.Noise.Pipe
	case noiseUDP:
		return p.Noise.UDP
	case noiseTCP:
		return p.Net.TCPNoise
	case noiseNFS:
		return p.Noise.NFS
	}
	return 0.01
}
