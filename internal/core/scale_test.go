package core

import (
	"bytes"
	"testing"

	"repro/internal/fault"
)

// TestScaleDeterminismTenThousandClients is the scale-out determinism
// regression: at 10^4 clients, the S1/S2 probes — histograms, phase
// ledgers, spans — are bit-identical between -j 1 and -j 8, clean and
// under 5% RPC loss. Runs under -race in `make check` via the race
// target.
func TestScaleDeterminismTenThousandClients(t *testing.T) {
	cfg := DefaultConfig()
	for _, tc := range []struct {
		name string
		opts ObserveOpts
	}{
		{"clean", ObserveOpts{Clients: 10_000}},
		{"lossy", ObserveOpts{Clients: 10_000,
			Faults: &fault.Plan{Net: fault.NetFaults{UDPLossProb: 0.05}}}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s1, err := NewRunner(1).Observe(cfg, []string{"S1", "S2"}, tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			s8, err := NewRunner(8).Observe(cfg, []string{"S1", "S2"}, tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			m1 := s1.Metrics.ExcludePrefix("runner.")
			m8 := s8.Metrics.ExcludePrefix("runner.")
			if !m1.Equal(m8) {
				t.Fatalf("scale metrics differ between -j 1 and -j 8:\n-j1:\n%s\n-j8:\n%s", m1, m8)
			}
			if !bytes.Equal(chromeBytes(t, s1), chromeBytes(t, s8)) {
				t.Fatal("scale trace bytes differ between -j 1 and -j 8")
			}
			if v, ok := m1.Get("scale.completed"); !ok || v == 0 {
				t.Fatalf("scale.completed = %v, %v", v, ok)
			}
			if tc.opts.Faults != nil {
				if v, ok := m1.Get("fault.net.rpc_retransmits"); !ok || v == 0 {
					t.Fatalf("fault.net.rpc_retransmits = %v, %v: lossy probe saw no loss", v, ok)
				}
				if v, ok := m1.Get("scale.retransmits"); !ok || v == 0 {
					t.Fatalf("scale.retransmits = %v, %v", v, ok)
				}
			}
		})
	}
}

// The registry sweeps themselves (which include the 10^4 and 10^6
// points) agree between the direct serial path and the 8-worker pool,
// and the suite cache shares every (personality, clients) server run
// between S1 and S2.
func TestScaleSweepParallelBitIdentical(t *testing.T) {
	cfg := smallConfig()
	exps := []*Experiment{mustLookup(t, "S1"), mustLookup(t, "S2")}
	serial := make([]*Result, len(exps))
	for i, e := range exps {
		serial[i] = e.Run(cfg)
	}
	parallel, _ := NewRunner(8).RunAll(cfg, exps)
	assertResultsIdentical(t, serial, parallel)
}

// Every S2 percentile curve is pointwise no less than the p50 curve of
// the same personality, and the probes' phase rows sum to their totals
// (the ledger identity surfacing through the observation layer).
func TestScaleObservationLedgerRowsSumToTotal(t *testing.T) {
	cfg := DefaultConfig()
	o, err := Observe(cfg, "S1", ObserveOpts{})
	if err != nil {
		t.Fatal(err)
	}
	for _, run := range o.Runs {
		var sum float64
		for _, row := range run.Rows {
			sum += row.Value
		}
		// The underlying ledger is exact in nanoseconds (asserted in
		// package nfsserver); the µs rows only re-associate floats.
		if diff := sum - run.Total; diff > 1e-6*run.Total || diff < -1e-6*run.Total {
			t.Fatalf("%s: phase rows sum to %v, total is %v", run.Label, sum, run.Total)
		}
		if run.Total == 0 {
			t.Fatalf("%s: zero total", run.Label)
		}
	}
}
