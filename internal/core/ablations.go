package core

import (
	"fmt"

	"repro/internal/bench"
	"repro/internal/cache"
	"repro/internal/memmodel"
	"repro/internal/osprofile"
	"repro/internal/stats"
)

// The ablations of DESIGN.md §5: each isolates one design choice the
// paper identifies as decisive and shows the result flipping when it is
// changed.
func init() {
	plat := bench.PaperPlatform()

	register(&Experiment{
		ID:    "A1",
		Title: "Ablation: write-allocate cache",
		Kind:  Figure,
		Paper: "§6 (root cause); DESIGN.md A1",
		Run: func(cfg Config) *Result {
			res := &Result{
				ID: "A1", Title: "Ablation: write-allocate cache", Kind: Figure,
				YUnit: "MB/s", XLabel: "buffer bytes", LogX: true,
				Direction: stats.HigherIsBetter,
				Notes: []string{
					"On a hypothetical write-allocate P54C, memset and memcpy jump to read-class bandwidth in cache — confirming §6's diagnosis.",
				},
			}
			sizes := bench.MemSweepSizes()
			variants := []struct {
				label    string
				allocate bool
				routine  memmodel.Routine
			}{
				{"memset, no write-allocate (real P54C)", false, memmodel.Memset},
				{"memset, write-allocate (hypothetical)", true, memmodel.Memset},
				{"memcpy, no write-allocate (real P54C)", false, memmodel.LibcMemcpy},
				{"memcpy, write-allocate (hypothetical)", true, memmodel.LibcMemcpy},
			}
			res.Series = make([]Series, len(variants))
			parallelFor(cfg, len(variants), func(vi int) {
				variant := variants[vi]
				cacheCfg := cache.PentiumConfig()
				cacheCfg.WriteAllocate = variant.allocate
				// The no-write-allocate variants are Figures 3 and 6's
				// exact sweeps; the memo shares their points.
				points := memSweep(cfg, cacheCfg, variant.routine,
					memmodel.DefaultPrefetchDistance, sizes)
				s := Series{Label: variant.label}
				for i, pt := range points {
					s.X = append(s.X, float64(pt.Size))
					s.Samples = append(s.Samples,
						noiseSample(cfg, saltFor("A1", variant.label, i), 0.01, pt.MBs))
				}
				res.Series[vi] = s
			})
			return res
		},
	})

	register(&Experiment{
		ID:    "A2",
		Title: "Ablation: prefetch distance",
		Kind:  Figure,
		Paper: "§6.2-6.3; DESIGN.md A2",
		Run: func(cfg Config) *Result {
			res := &Result{
				ID: "A2", Title: "Ablation: prefetch distance", Kind: Figure,
				YUnit: "MB/s", XLabel: "buffer bytes", LogX: true,
				Direction: stats.HigherIsBetter,
				Notes: []string{
					"Beyond the caches, deeper prefetch lookahead hides more of the line-fill latency, saturating once the fill is fully hidden.",
				},
			}
			sizes := bench.MemSweepSizes()
			dists := []int{0, 1, 2, 4, 8}
			res.Series = make([]Series, len(dists))
			parallelFor(cfg, len(dists), func(di int) {
				dist := dists[di]
				label := fmt.Sprintf("prefetch distance %d", dist)
				// Distance 1 is Figure 5's exact sweep; the memo shares it.
				points := memSweep(cfg, cache.PentiumConfig(), memmodel.PrefetchWrite, dist, sizes)
				s := Series{Label: label}
				for i, pt := range points {
					s.X = append(s.X, float64(pt.Size))
					s.Samples = append(s.Samples,
						noiseSample(cfg, saltFor("A2", label, i), 0.01, pt.MBs))
				}
				res.Series[di] = s
			})
			return res
		},
	})

	register(&Experiment{
		ID:    "A3",
		Title: "Ablation: scheduler structure (Linux 1.3.40 preview)",
		Kind:  Figure,
		Paper: "§5, §13; DESIGN.md A3",
		Run: func(cfg Config) *Result {
			res := &Result{
				ID: "A3", Title: "Ablation: scheduler structure (Linux 1.3.40 preview)", Kind: Figure,
				YUnit: "µs", XLabel: "active processes", LogX: true,
				Direction: stats.LowerIsBetter,
				Notes: []string{
					"Replacing the O(n) pick with the 1.3.40 scheduler gives ~10 µs switches with almost no growth in process count (§13).",
				},
			}
			for _, p := range []*osprofile.Profile{osprofile.Linux128(), osprofile.Linux1340()} {
				res.Series = append(res.Series, ctxSeries(cfg, p, bench.CtxRing, p.String()))
			}
			return res
		},
	})

	register(&Experiment{
		ID:    "A4",
		Title: "Ablation: metadata update policy",
		Kind:  Figure,
		Paper: "§7.2, §13; DESIGN.md A4",
		Run: func(cfg Config) *Result {
			res := &Result{
				ID: "A4", Title: "Ablation: metadata update policy", Kind: Figure,
				YUnit: "ms", XLabel: "file bytes", LogX: true,
				Direction: stats.LowerIsBetter,
				Notes: []string{
					"ext2 forced synchronous loses its order-of-magnitude advantage; FreeBSD 2.1's ordered-async policy recovers it (§13).",
				},
			}
			linuxSync := osprofile.Linux128()
			linuxSync.Version = "1.2.8 (forced sync metadata)"
			linuxSync.FS.MetaPolicy = osprofile.MetaSync
			linuxSync.FS.SyncWritesPerCreate = 2
			linuxSync.FS.SyncWritesPerUnlink = 2
			linuxSync.FS.SyncWritesPerMkdir = 2
			variants := []*osprofile.Profile{
				osprofile.Linux128(), linuxSync,
				osprofile.FreeBSD205(), osprofile.FreeBSD21(),
			}
			sizes := bench.CrtdelSweepSizes()
			res.Series = make([]Series, len(variants))
			parallelFor(cfg, len(variants), func(vi int) {
				p := variants[vi]
				s := Series{
					Label:   p.String(),
					X:       make([]float64, len(sizes)),
					Samples: make([]*stats.Sample, len(sizes)),
				}
				parallelFor(cfg, len(sizes), func(i int) {
					d := bench.Crtdel(plat, p, sizes[i], cfg.Seed+uint64(i))
					s.X[i] = float64(sizes[i])
					s.Samples[i] = noiseSample(cfg, saltFor("A4", p.String(), i), noiseFor(p, noiseFS), d.Milliseconds())
				})
				res.Series[vi] = s
			})
			return res
		},
	})

	register(&Experiment{
		ID:    "A5",
		Title: "Ablation: Linux TCP window",
		Kind:  Figure,
		Paper: "§9.3; DESIGN.md A5",
		Run: func(cfg Config) *Result {
			res := &Result{
				ID: "A5", Title: "Ablation: Linux TCP window", Kind: Figure,
				YUnit: "Mb/s", XLabel: "window packets", LogX: true,
				Direction: stats.HigherIsBetter,
				Notes: []string{
					"Widening Linux's one-packet window recovers most of the Table 5 gap to FreeBSD: the window, not the data path, was the bottleneck.",
				},
			}
			linux := osprofile.Linux128()
			s := Series{Label: linux.String()}
			for i, w := range []int{1, 2, 4, 8, 16, 32, 64} {
				bw := bench.BwTCP(linux, w)
				s.X = append(s.X, float64(w))
				s.Samples = append(s.Samples,
					noiseSample(cfg, saltFor("A5", "window", i), linux.Net.TCPNoise, bw))
			}
			res.Series = append(res.Series, s)
			// FreeBSD's actual Table 5 value as the reference line.
			fb := osprofile.FreeBSD205()
			ref := Series{Label: fb.String() + " (reference)"}
			for i, w := range []int{1, 2, 4, 8, 16, 32, 64} {
				_ = i
				ref.X = append(ref.X, float64(w))
				ref.Samples = append(ref.Samples,
					noiseSample(cfg, saltFor("A5", "ref", i), fb.Net.TCPNoise, bench.BwTCP(fb, 0)))
			}
			res.Series = append(res.Series, ref)
			return res
		},
	})

	register(&Experiment{
		ID:    "A6",
		Title: "Ablation: NFS server write policy",
		Kind:  Table,
		Paper: "§10; DESIGN.md A6",
		Run: func(cfg Config) *Result {
			res := &Result{
				ID: "A6", Title: "Ablation: NFS server write policy", Kind: Table,
				YUnit: "s", Direction: stats.LowerIsBetter,
				Notes: []string{
					"Swapping only the server's write policy reproduces most of the Table 6 → Table 7 slowdown: the spec's synchronous commit is the dominant cost.",
				},
			}
			kinds := []bench.NFSServerKind{bench.ServerLinux, bench.ServerSunOS}
			res.Series = make([]Series, len(cfg.Profiles)*len(kinds))
			parallelFor(cfg, len(res.Series), func(i int) {
				p := cfg.Profiles[i/len(kinds)]
				kind := kinds[i%len(kinds)]
				name := "async server (Linux)"
				if kind == bench.ServerSunOS {
					name = "sync server (SunOS)"
				}
				mean := bench.MABNFS(p, kind, bench.DefaultMAB(), cfg.Seed).Total.Seconds()
				label := p.String() + " / " + name
				res.Series[i] = Series{
					Label:   label,
					Samples: []*stats.Sample{noiseSample(cfg, saltFor("A6", label, 0), noiseFor(p, noiseNFS), mean)},
				}
			})
			return res
		},
	})
}
