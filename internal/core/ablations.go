package core

import (
	"fmt"

	"repro/internal/bench"
	"repro/internal/cache"
	"repro/internal/memmodel"
	"repro/internal/osprofile"
	"repro/internal/stats"
)

// The ablations of DESIGN.md §5: each isolates one design choice the
// paper identifies as decisive and shows the result flipping when it is
// changed.
func init() {
	plat := bench.PaperPlatform()

	register(&Experiment{
		ID:    "A1",
		Title: "Ablation: write-allocate cache",
		Kind:  Figure,
		Paper: "§6 (root cause); DESIGN.md A1",
		Run: func(cfg Config) *Result {
			res := &Result{
				ID: "A1", Title: "Ablation: write-allocate cache", Kind: Figure,
				YUnit: "MB/s", XLabel: "buffer bytes", LogX: true,
				Direction: stats.HigherIsBetter,
				Notes: []string{
					"On a hypothetical write-allocate P54C, memset and memcpy jump to read-class bandwidth in cache — confirming §6's diagnosis.",
				},
			}
			sizes := bench.MemSweepSizes()
			for _, variant := range []struct {
				label    string
				allocate bool
				routine  memmodel.Routine
			}{
				{"memset, no write-allocate (real P54C)", false, memmodel.Memset},
				{"memset, write-allocate (hypothetical)", true, memmodel.Memset},
				{"memcpy, no write-allocate (real P54C)", false, memmodel.LibcMemcpy},
				{"memcpy, write-allocate (hypothetical)", true, memmodel.LibcMemcpy},
			} {
				cacheCfg := cache.PentiumConfig()
				cacheCfg.WriteAllocate = variant.allocate
				points := bench.MemFigure(plat, cacheCfg, variant.routine, sizes)
				s := Series{Label: variant.label}
				for i, pt := range points {
					s.X = append(s.X, float64(pt.Size))
					s.Samples = append(s.Samples,
						noiseSample(cfg, saltFor("A1", variant.label, i), 0.01, pt.MBs))
				}
				res.Series = append(res.Series, s)
			}
			return res
		},
	})

	register(&Experiment{
		ID:    "A2",
		Title: "Ablation: prefetch distance",
		Kind:  Figure,
		Paper: "§6.2-6.3; DESIGN.md A2",
		Run: func(cfg Config) *Result {
			res := &Result{
				ID: "A2", Title: "Ablation: prefetch distance", Kind: Figure,
				YUnit: "MB/s", XLabel: "buffer bytes", LogX: true,
				Direction: stats.HigherIsBetter,
				Notes: []string{
					"Beyond the caches, deeper prefetch lookahead hides more of the line-fill latency, saturating once the fill is fully hidden.",
				},
			}
			sizes := bench.MemSweepSizes()
			for _, dist := range []int{0, 1, 2, 4, 8} {
				label := fmt.Sprintf("prefetch distance %d", dist)
				points := bench.MemFigureDistance(plat, cache.PentiumConfig(), memmodel.PrefetchWrite, sizes, dist)
				s := Series{Label: label}
				for i, pt := range points {
					s.X = append(s.X, float64(pt.Size))
					s.Samples = append(s.Samples,
						noiseSample(cfg, saltFor("A2", label, i), 0.01, pt.MBs))
				}
				res.Series = append(res.Series, s)
			}
			return res
		},
	})

	register(&Experiment{
		ID:    "A3",
		Title: "Ablation: scheduler structure (Linux 1.3.40 preview)",
		Kind:  Figure,
		Paper: "§5, §13; DESIGN.md A3",
		Run: func(cfg Config) *Result {
			res := &Result{
				ID: "A3", Title: "Ablation: scheduler structure (Linux 1.3.40 preview)", Kind: Figure,
				YUnit: "µs", XLabel: "active processes", LogX: true,
				Direction: stats.LowerIsBetter,
				Notes: []string{
					"Replacing the O(n) pick with the 1.3.40 scheduler gives ~10 µs switches with almost no growth in process count (§13).",
				},
			}
			for _, p := range []*osprofile.Profile{osprofile.Linux128(), osprofile.Linux1340()} {
				res.Series = append(res.Series, ctxSeries(cfg, p, bench.CtxRing, p.String()))
			}
			return res
		},
	})

	register(&Experiment{
		ID:    "A4",
		Title: "Ablation: metadata update policy",
		Kind:  Figure,
		Paper: "§7.2, §13; DESIGN.md A4",
		Run: func(cfg Config) *Result {
			res := &Result{
				ID: "A4", Title: "Ablation: metadata update policy", Kind: Figure,
				YUnit: "ms", XLabel: "file bytes", LogX: true,
				Direction: stats.LowerIsBetter,
				Notes: []string{
					"ext2 forced synchronous loses its order-of-magnitude advantage; FreeBSD 2.1's ordered-async policy recovers it (§13).",
				},
			}
			linuxSync := osprofile.Linux128()
			linuxSync.Version = "1.2.8 (forced sync metadata)"
			linuxSync.FS.MetaPolicy = osprofile.MetaSync
			linuxSync.FS.SyncWritesPerCreate = 2
			linuxSync.FS.SyncWritesPerUnlink = 2
			linuxSync.FS.SyncWritesPerMkdir = 2
			variants := []*osprofile.Profile{
				osprofile.Linux128(), linuxSync,
				osprofile.FreeBSD205(), osprofile.FreeBSD21(),
			}
			for _, p := range variants {
				s := Series{Label: p.String()}
				for i, size := range bench.CrtdelSweepSizes() {
					d := bench.Crtdel(plat, p, size, cfg.Seed+uint64(i))
					s.X = append(s.X, float64(size))
					s.Samples = append(s.Samples,
						noiseSample(cfg, saltFor("A4", p.String(), i), noiseFor(p, noiseFS), d.Milliseconds()))
				}
				res.Series = append(res.Series, s)
			}
			return res
		},
	})

	register(&Experiment{
		ID:    "A5",
		Title: "Ablation: Linux TCP window",
		Kind:  Figure,
		Paper: "§9.3; DESIGN.md A5",
		Run: func(cfg Config) *Result {
			res := &Result{
				ID: "A5", Title: "Ablation: Linux TCP window", Kind: Figure,
				YUnit: "Mb/s", XLabel: "window packets", LogX: true,
				Direction: stats.HigherIsBetter,
				Notes: []string{
					"Widening Linux's one-packet window recovers most of the Table 5 gap to FreeBSD: the window, not the data path, was the bottleneck.",
				},
			}
			linux := osprofile.Linux128()
			s := Series{Label: linux.String()}
			for i, w := range []int{1, 2, 4, 8, 16, 32, 64} {
				bw := bench.BwTCP(linux, w)
				s.X = append(s.X, float64(w))
				s.Samples = append(s.Samples,
					noiseSample(cfg, saltFor("A5", "window", i), linux.Net.TCPNoise, bw))
			}
			res.Series = append(res.Series, s)
			// FreeBSD's actual Table 5 value as the reference line.
			fb := osprofile.FreeBSD205()
			ref := Series{Label: fb.String() + " (reference)"}
			for i, w := range []int{1, 2, 4, 8, 16, 32, 64} {
				_ = i
				ref.X = append(ref.X, float64(w))
				ref.Samples = append(ref.Samples,
					noiseSample(cfg, saltFor("A5", "ref", i), fb.Net.TCPNoise, bench.BwTCP(fb, 0)))
			}
			res.Series = append(res.Series, ref)
			return res
		},
	})

	register(&Experiment{
		ID:    "A6",
		Title: "Ablation: NFS server write policy",
		Kind:  Table,
		Paper: "§10; DESIGN.md A6",
		Run: func(cfg Config) *Result {
			res := &Result{
				ID: "A6", Title: "Ablation: NFS server write policy", Kind: Table,
				YUnit: "s", Direction: stats.LowerIsBetter,
				Notes: []string{
					"Swapping only the server's write policy reproduces most of the Table 6 → Table 7 slowdown: the spec's synchronous commit is the dominant cost.",
				},
			}
			for _, p := range cfg.Profiles {
				for _, kind := range []bench.NFSServerKind{bench.ServerLinux, bench.ServerSunOS} {
					name := "async server (Linux)"
					if kind == bench.ServerSunOS {
						name = "sync server (SunOS)"
					}
					mean := bench.MABNFS(p, kind, bench.DefaultMAB(), cfg.Seed).Total.Seconds()
					label := p.String() + " / " + name
					res.Series = append(res.Series, Series{
						Label:   label,
						Samples: []*stats.Sample{noiseSample(cfg, saltFor("A6", label, 0), noiseFor(p, noiseNFS), mean)},
					})
				}
			}
			return res
		},
	})
}
