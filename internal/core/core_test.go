package core

import (
	"testing"

	"repro/internal/osprofile"
	"repro/internal/stats"
)

// smallConfig keeps suite-level tests quick: 5 runs, default systems.
func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Runs = 5
	return cfg
}

func TestRegistryValid(t *testing.T) {
	if err := ValidateRegistry(); err != nil {
		t.Fatal(err)
	}
}

func TestRegistryCoversEveryExhibit(t *testing.T) {
	// Every table (2-7), every figure (1-13) and every DESIGN.md ablation
	// (A1-A6) must be present.
	want := []string{
		"T2", "T3", "T4", "T5", "T6", "T7",
		"F1", "F2", "F3", "F4", "F5", "F6", "F7", "F8", "F9", "F10", "F11", "F12", "F13",
		"A1", "A2", "A3", "A4", "A5", "A6", "A7",
		"X1", "X2",
		"S1", "S2",
		"L1", "L2", "I1",
	}
	for _, id := range want {
		if _, ok := Lookup(id); !ok {
			t.Errorf("experiment %s missing from registry", id)
		}
	}
	if len(All()) != len(want) {
		t.Errorf("registry has %d experiments, want %d", len(All()), len(want))
	}
}

func TestAllOrdering(t *testing.T) {
	ids := []string{}
	for _, e := range All() {
		ids = append(ids, e.ID)
	}
	if ids[0] != "T2" || ids[5] != "T7" || ids[6] != "F1" || ids[18] != "F13" || ids[19] != "A1" {
		t.Fatalf("presentation order wrong: %v", ids)
	}
}

func TestLookupUnknown(t *testing.T) {
	if _, ok := Lookup("T99"); ok {
		t.Fatal("Lookup(T99) should fail")
	}
}

func TestLookupIndexMatchesRegistry(t *testing.T) {
	// The lazily built map must agree with a linear scan for every
	// registered ID and reject near-misses.
	for _, e := range registry {
		got, ok := Lookup(e.ID)
		if !ok || got != e {
			t.Errorf("Lookup(%q) = %v, %v; want the registered experiment", e.ID, got, ok)
		}
	}
	for _, id := range []string{"", "t2", "T", "T2 ", " F1", "F01x"} {
		if _, ok := Lookup(id); ok {
			t.Errorf("Lookup(%q) should fail", id)
		}
	}
}

func TestRankOrdersWellFormedIDs(t *testing.T) {
	ordered := []string{"T2", "T7", "F1", "F13", "A1", "A7", "X1", "X2"}
	for i := 1; i < len(ordered); i++ {
		if rank(ordered[i-1]) >= rank(ordered[i]) {
			t.Errorf("rank(%s)=%d not before rank(%s)=%d",
				ordered[i-1], rank(ordered[i-1]), ordered[i], rank(ordered[i]))
		}
	}
	// F10 must sort after F9 (numeric, not lexicographic).
	if rank("F9") >= rank("F10") {
		t.Error("F10 should rank after F9")
	}
}

func TestRankRejectsMalformedIDs(t *testing.T) {
	// Malformed IDs used to Sscanf to 0 and silently jump ahead of every
	// real exhibit; now they all rank last.
	for _, id := range []string{"", "T", "Tx", "T2b", "F-1", "Z3", "Q", "T 2"} {
		if got := rank(id); got != rankUnknown {
			t.Errorf("rank(%q) = %d, want rankUnknown (%d)", id, got, rankUnknown)
		}
	}
	if rank("T7") >= rankUnknown || rank("X2") >= rankUnknown {
		t.Error("well-formed IDs must rank before malformed ones")
	}
}

func TestTable2Result(t *testing.T) {
	e, _ := Lookup("T2")
	res := e.Run(smallConfig())
	if res.Kind != Table || len(res.Series) != 3 {
		t.Fatalf("T2 result malformed: kind=%v series=%d", res.Kind, len(res.Series))
	}
	for _, s := range res.Series {
		if s.Samples[0].N() != 5 {
			t.Errorf("%s: %d samples, want 5", s.Label, s.Samples[0].N())
		}
		exp, ok := res.ExpectationFor(s.Label)
		if !ok {
			t.Errorf("%s has no paper expectation", s.Label)
			continue
		}
		got := s.Samples[0].Mean()
		if got < exp.Mean*0.9 || got > exp.Mean*1.1 {
			t.Errorf("%s mean %.2f vs paper %.2f: off by >10%%", s.Label, got, exp.Mean)
		}
	}
}

func TestTableNormalization(t *testing.T) {
	e, _ := Lookup("T4")
	res := e.Run(smallConfig())
	means := make([]float64, len(res.Series))
	for i, s := range res.Series {
		means[i] = s.Samples[0].Mean()
	}
	norm := stats.Normalize(means, res.Direction)
	// Table 4 is bandwidth: Linux is the best (1.00).
	if norm[0] != 1 {
		t.Errorf("Linux should normalise to 1.00 in Table 4, got %.2f", norm[0])
	}
}

func TestFigure1Series(t *testing.T) {
	e, _ := Lookup("F1")
	res := e.Run(smallConfig())
	// Three ring curves plus the Solaris LIFO variant.
	if len(res.Series) != 4 {
		t.Fatalf("F1 should have 4 series, got %d", len(res.Series))
	}
	if res.FindSeries("Solaris-LIFO") == nil {
		t.Fatal("missing Solaris-LIFO series")
	}
	for _, s := range res.Series {
		if len(s.X) != len(s.Samples) || len(s.X) == 0 {
			t.Fatalf("series %s malformed", s.Label)
		}
	}
	// Landmarks at two processes. The tolerance accommodates the sampling
	// error of a 5-run sample with Solaris' 9% per-run noise.
	for label, want := range map[string]float64{
		"Linux 1.2.8": 55, "FreeBSD 2.0.5R": 80, "Solaris 2.4": 220,
	} {
		s := res.FindSeries(label)
		got := s.Samples[0].Mean()
		if got < want*0.85 || got > want*1.15 {
			t.Errorf("%s @2 procs = %.1f, want ~%.0f", label, got, want)
		}
	}
}

func TestMemoryFiguresSingleCurve(t *testing.T) {
	for _, id := range []string{"F2", "F3", "F4", "F5", "F6", "F7", "F8"} {
		e, _ := Lookup(id)
		res := e.Run(smallConfig())
		if len(res.Series) != 1 {
			t.Errorf("%s should be a single hardware curve, got %d series", id, len(res.Series))
		}
		if len(res.Series[0].X) < 20 {
			t.Errorf("%s sweep too sparse: %d points", id, len(res.Series[0].X))
		}
	}
}

func TestDeterministicResults(t *testing.T) {
	e, _ := Lookup("T5")
	cfg := smallConfig()
	a := e.Run(cfg)
	b := e.Run(cfg)
	for i := range a.Series {
		av, bv := a.Series[i].Samples[0].Values(), b.Series[i].Samples[0].Values()
		for j := range av {
			if av[j] != bv[j] {
				t.Fatalf("run not reproducible: %v vs %v", av[j], bv[j])
			}
		}
	}
	// A different seed gives different samples (same means, different
	// noise draws).
	cfg2 := cfg
	cfg2.Seed = 99
	c := e.Run(cfg2)
	if c.Series[0].Samples[0].Values()[0] == a.Series[0].Samples[0].Values()[0] {
		t.Fatal("different seeds should give different noise draws")
	}
}

func TestNoiseMatchesPaperStdDev(t *testing.T) {
	// With 20 runs, the Solaris TCP sample should be visibly noisy
	// (paper: 16.34%) and the Linux getpid sample nearly noiseless
	// (paper: 0.10%).
	cfg := DefaultConfig()
	t5, _ := Lookup("T5")
	res := t5.Run(cfg)
	sol := res.FindSeries("Solaris 2.4")
	if rel := sol.Samples[0].RelStdDev(); rel < 0.06 || rel > 0.30 {
		t.Errorf("Solaris TCP rel std dev = %.3f, want roughly 0.16", rel)
	}
	t2, _ := Lookup("T2")
	res2 := t2.Run(cfg)
	lin := res2.FindSeries("Linux 1.2.8")
	if rel := lin.Samples[0].RelStdDev(); rel > 0.01 {
		t.Errorf("Linux getpid rel std dev = %.4f, want ~0.001", rel)
	}
}

func TestFutureProfilesRunThroughHarness(t *testing.T) {
	cfg := smallConfig()
	cfg.Profiles = append(cfg.Profiles, osprofile.Linux1340())
	e, _ := Lookup("T2")
	res := e.Run(cfg)
	if len(res.Series) != 4 {
		t.Fatalf("expected 4 series with the future profile, got %d", len(res.Series))
	}
}

func TestAblationA1FlipsMemset(t *testing.T) {
	e, _ := Lookup("A1")
	res := e.Run(smallConfig())
	real := res.FindSeries("memset, no write-allocate (real P54C)")
	hypo := res.FindSeries("memset, write-allocate (hypothetical)")
	if real == nil || hypo == nil {
		t.Fatal("A1 series missing")
	}
	// Compare at a small (cached) size: the hypothetical cache must be
	// several times faster.
	if hypo.Samples[2].Mean() < 3*real.Samples[2].Mean() {
		t.Errorf("write-allocate should transform memset: %.1f vs %.1f",
			hypo.Samples[2].Mean(), real.Samples[2].Mean())
	}
}

func TestAblationA5Converges(t *testing.T) {
	e, _ := Lookup("A5")
	res := e.Run(smallConfig())
	linux := res.FindSeries("Linux 1.2.8")
	if linux == nil {
		t.Fatal("A5 missing Linux series")
	}
	first := linux.Samples[0].Mean()
	last := linux.Samples[len(linux.Samples)-1].Mean()
	if last < 1.7*first {
		t.Errorf("window sweep should roughly double Linux TCP: %.1f → %.1f", first, last)
	}
}

func TestAblationA6ServerPolicy(t *testing.T) {
	e, _ := Lookup("A6")
	res := e.Run(smallConfig())
	if len(res.Series) != 6 {
		t.Fatalf("A6 should have 6 rows (3 OS x 2 servers), got %d", len(res.Series))
	}
	// For each OS the sync server must be slower.
	for i := 0; i < 6; i += 2 {
		async := res.Series[i].Samples[0].Mean()
		sync := res.Series[i+1].Samples[0].Mean()
		if sync <= async {
			t.Errorf("%s: sync server (%.1f) not slower than async (%.1f)",
				res.Series[i].Label, sync, async)
		}
	}
}

func TestSaltIsolation(t *testing.T) {
	if saltFor("T2", "Linux", 0) == saltFor("T2", "Linux", 1) {
		t.Error("salts must differ per point")
	}
	if saltFor("T2", "Linux", 0) == saltFor("T3", "Linux", 0) {
		t.Error("salts must differ per experiment")
	}
	if saltFor("T2", "Linux", 0) == saltFor("T2", "FreeBSD", 0) {
		t.Error("salts must differ per series")
	}
}

func TestNoiseForCoversAllAreas(t *testing.T) {
	p := osprofile.Solaris24()
	areas := []noiseArea{noiseSyscall, noiseCtx, noiseMem, noiseFS, noiseMAB, noisePipe, noiseUDP, noiseTCP, noiseNFS}
	for _, a := range areas {
		if noiseFor(p, a) <= 0 {
			t.Errorf("noise area %d has non-positive level", a)
		}
	}
}

func TestIDsAndMeanAt(t *testing.T) {
	ids := IDs()
	if len(ids) != len(All()) {
		t.Fatalf("IDs() returned %d, want %d", len(ids), len(All()))
	}
	e, _ := Lookup("T2")
	res := e.Run(smallConfig())
	s := res.Series[0]
	if s.MeanAt(0) != s.Samples[0].Mean() {
		t.Fatal("MeanAt disagrees with Samples")
	}
}

func TestAllAblationsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every ablation")
	}
	cfg := smallConfig()
	for _, id := range []string{"A1", "A2", "A3", "A4", "A7"} {
		e, ok := Lookup(id)
		if !ok {
			t.Fatalf("missing %s", id)
		}
		res := e.Run(cfg)
		if len(res.Series) == 0 {
			t.Errorf("%s produced no series", id)
		}
		for _, s := range res.Series {
			if len(s.Samples) == 0 {
				t.Errorf("%s/%s has no samples", id, s.Label)
			}
			for i, smp := range s.Samples {
				if smp.Mean() <= 0 {
					t.Errorf("%s/%s point %d non-positive", id, s.Label, i)
				}
			}
		}
	}
}

func TestA3FutureScheduler(t *testing.T) {
	e, _ := Lookup("A3")
	res := e.Run(smallConfig())
	old := res.FindSeries("Linux 1.2.8")
	dev := res.FindSeries("Linux 1.3.40 (development)")
	if old == nil || dev == nil {
		t.Fatal("A3 series missing")
	}
	// §13: ~10 µs switches at two processes with very little growth. Our
	// curve includes the ~18 µs of pipe operations (the F1 convention), so
	// the two-process point sits near 25 µs.
	if m := dev.Samples[0].Mean(); m > 32 {
		t.Errorf("1.3.40 ctx@2 = %.1f µs, want ~25 (10 µs switch + pipe ops)", m)
	}
	last := dev.Samples[len(dev.Samples)-1].Mean()
	if last > 3*dev.Samples[0].Mean() {
		t.Errorf("1.3.40 should barely grow: %.1f @2 vs %.1f at the end", dev.Samples[0].Mean(), last)
	}
	if old.Samples[len(old.Samples)-1].Mean() < 5*last {
		t.Error("the 1.2.8 line should tower over 1.3.40 at high process counts")
	}
}

func TestA4MetadataPolicyAblation(t *testing.T) {
	e, _ := Lookup("A4")
	res := e.Run(smallConfig())
	forced := res.FindSeries("Linux 1.2.8 (forced sync metadata)")
	stock := res.FindSeries("Linux 1.2.8")
	ordered := res.FindSeries("FreeBSD 2.1 (anticipated)")
	fbsd := res.FindSeries("FreeBSD 2.0.5R")
	if forced == nil || stock == nil || ordered == nil || fbsd == nil {
		t.Fatalf("A4 series missing: %v", res.Series)
	}
	// Forcing ext2 synchronous destroys its advantage at small sizes.
	if forced.Samples[1].Mean() < 8*stock.Samples[1].Mean() {
		t.Errorf("forced-sync ext2 %.1f not ≫ stock %.1f",
			forced.Samples[1].Mean(), stock.Samples[1].Mean())
	}
	// FreeBSD 2.1's ordered async recovers the order of magnitude.
	if ordered.Samples[1].Mean() > fbsd.Samples[1].Mean()/8 {
		t.Errorf("ordered-async %.1f should be ~10x below 2.0.5's %.1f",
			ordered.Samples[1].Mean(), fbsd.Samples[1].Mean())
	}
}

func TestA2PrefetchDistanceOrdering(t *testing.T) {
	e, _ := Lookup("A2")
	res := e.Run(smallConfig())
	if len(res.Series) != 5 {
		t.Fatalf("A2 series = %d, want 5 distances", len(res.Series))
	}
	// At a large (out-of-cache) size, deeper distance is never slower.
	last := len(res.Series[0].Samples) - 1
	var prev float64
	for i, s := range res.Series {
		m := s.Samples[last].Mean()
		if i > 0 && m < prev*0.98 {
			t.Errorf("distance series %d slower than %d: %.1f < %.1f", i, i-1, m, prev)
		}
		prev = m
	}
}
