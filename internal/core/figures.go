package core

import (
	"repro/internal/bench"
	"repro/internal/cache"
	"repro/internal/memmodel"
	"repro/internal/osprofile"
	"repro/internal/stats"
)

// ctxProcCounts is Figure 1's process-count sweep.
var ctxProcCounts = []int{2, 3, 4, 6, 8, 12, 16, 20, 24, 32, 40, 48, 64, 96, 128, 192, 256, 512}

func init() {
	plat := bench.PaperPlatform()

	register(&Experiment{
		ID:    "F1",
		Title: "Context Switch vs. Active Processes",
		Kind:  Figure,
		Paper: "Figure 1, §5",
		Run: func(cfg Config) *Result {
			res := &Result{
				ID: "F1", Title: "Context Switch vs. Active Processes", Kind: Figure,
				YUnit: "µs", XLabel: "active processes", LogX: true,
				Direction: stats.LowerIsBetter,
				Expected: []Expectation{
					{Label: "Linux 1.2.8 @2", Mean: 55, StdDevPct: 3},
					{Label: "FreeBSD 2.0.5R @2", Mean: 80, StdDevPct: 4},
					{Label: "Solaris 2.4 @2", Mean: 220, StdDevPct: 9},
				},
				Notes: []string{
					"Linux grows linearly (O(n) task-list scan) but wins below ~20 processes.",
					"FreeBSD is flat at ~80 µs at every process count.",
					"Solaris is slowest everywhere, with a sharp jump past 32 processes.",
					"The Solaris-LIFO chain still jumps at 32 but grows gradually past 64.",
				},
			}
			type ctxSlot struct {
				p     *osprofile.Profile
				order bench.CtxOrder
				label string
			}
			var slots []ctxSlot
			for _, p := range cfg.Profiles {
				slots = append(slots, ctxSlot{p, bench.CtxRing, p.String()})
			}
			// The paper adds the LIFO variant for Solaris only.
			for _, p := range cfg.Profiles {
				if p.Kernel.Scheduler == osprofile.SchedPreemptiveMT {
					slots = append(slots, ctxSlot{p, bench.CtxLIFO, p.Name + "-LIFO"})
				}
			}
			res.Series = make([]Series, len(slots))
			parallelFor(cfg, len(slots), func(i int) {
				res.Series[i] = ctxSeries(cfg, slots[i].p, slots[i].order, slots[i].label)
			})
			return res
		},
	})

	// Figures 2-8: the memory suite. One experiment per figure, all a
	// single hardware curve.
	memFigs := []struct {
		id, title string
		routine   memmodel.Routine
		expected  []Expectation
		notes     []string
	}{
		{"F2", "Custom Read Bandwidth", memmodel.CustomRead,
			[]Expectation{
				{Label: "L1 plateau", Mean: 300},
				{Label: "L2 plateau", Mean: 110},
				{Label: "memory plateau", Mean: 75},
			},
			[]string{"Humps at 8 KB and 256 KB reveal the cache sizes."}},
		{"F3", "Memset Bandwidth", memmodel.Memset,
			[]Expectation{{Label: "peak", Mean: 45}},
			[]string{"Flat and below 50 MB/s at every size: writes never allocate, so every store goes to the bus."}},
		{"F4", "Naive Custom Write Bandwidth", memmodel.NaiveWrite,
			[]Expectation{{Label: "peak", Mean: 45}},
			[]string{"Very similar to memset (paper §6.2)."}},
		{"F5", "Prefetching Custom Write Bandwidth", memmodel.PrefetchWrite,
			[]Expectation{{Label: "peak", Mean: 310}},
			[]string{"Software prefetch recovers write-allocate behaviour: peak 310 MB/s."}},
		{"F6", "Memcpy Bandwidth", memmodel.LibcMemcpy,
			[]Expectation{{Label: "typical", Mean: 40}},
			[]string{"About 40 MB/s: destination stores miss and go to the bus."}},
		{"F7", "Naive Custom Copy Bandwidth", memmodel.NaiveCopy,
			[]Expectation{{Label: "typical", Mean: 40}},
			[]string{"Resembles memcpy (paper §6.3)."}},
		{"F8", "Prefetching Custom Copy Bandwidth", memmodel.PrefetchCopy,
			[]Expectation{{Label: "peak", Mean: 160}},
			[]string{"Over 160 MB/s copied (320 MB/s total), approaching the read peak."}},
	}
	for _, mf := range memFigs {
		mf := mf
		register(&Experiment{
			ID:    mf.id,
			Title: mf.title,
			Kind:  Figure,
			Paper: "Figures 2-8, §6",
			Run: func(cfg Config) *Result {
				res := &Result{
					ID: mf.id, Title: mf.title, Kind: Figure,
					YUnit: "MB/s", XLabel: "buffer bytes", LogX: true,
					Direction: stats.HigherIsBetter,
					Expected:  mf.expected,
					Notes:     mf.notes,
				}
				sizes := bench.MemSweepSizes()
				points := memSweep(cfg, cache.PentiumConfig(), mf.routine,
					memmodel.DefaultPrefetchDistance, sizes)
				s := Series{Label: "Pentium P54C-100"}
				// Memory noise is hardware-level; use the first profile's.
				rel := 0.01
				if len(cfg.Profiles) > 0 {
					rel = noiseFor(cfg.Profiles[0], noiseMem)
				}
				for i, pt := range points {
					s.X = append(s.X, float64(pt.Size))
					s.Samples = append(s.Samples,
						noiseSample(cfg, saltFor(mf.id, "hw", i), rel, pt.MBs))
				}
				res.Series = append(res.Series, s)
				return res
			},
		})
	}

	// Figures 9-11: bonnie.
	bonnieFigs := []struct {
		id, title, unit string
		dir             stats.Direction
		pick            func(bench.BonnieResult) float64
		notes           []string
	}{
		{"F9", "Bonnie Sequential Read", "MB/s", stats.HigherIsBetter,
			func(r bench.BonnieResult) float64 { return r.ReadMBs },
			[]string{
				"All three cache files up to ~20 MB of the 32 MB machine.",
				"FreeBSD reads 5-15% faster in cache; Solaris is best out of cache; Linux worst out of cache.",
			}},
		{"F10", "Bonnie Sequential Write", "MB/s", stats.HigherIsBetter,
			func(r bench.BonnieResult) float64 { return r.WriteMBs },
			[]string{
				"FreeBSD writes small files ~50% faster than Solaris.",
				"Linux maintains less than half the write bandwidth of the others at almost all sizes.",
			}},
		{"F11", "Bonnie Random Seeks", "seeks/s", stats.HigherIsBetter,
			func(r bench.BonnieResult) float64 { return r.SeeksPerSec },
			[]string{
				"Linux and Solaris do ~50% more seeks+I/O per second than FreeBSD in cache.",
				"All three converge to ~14 ms per uncached random seek.",
			}},
	}
	for _, bf := range bonnieFigs {
		bf := bf
		register(&Experiment{
			ID:    bf.id,
			Title: bf.title,
			Kind:  Figure,
			Paper: "Figures 9-11, §7.1",
			Run: func(cfg Config) *Result {
				res := &Result{
					ID: bf.id, Title: bf.title, Kind: Figure,
					YUnit: bf.unit, XLabel: "file MB", LogX: true,
					Direction: bf.dir, Notes: bf.notes,
				}
				sizes := bench.BonnieSweepSizes()
				res.Series = make([]Series, len(cfg.Profiles))
				parallelFor(cfg, len(cfg.Profiles), func(pi int) {
					p := cfg.Profiles[pi]
					s := Series{
						Label:   p.String(),
						X:       make([]float64, len(sizes)),
						Samples: make([]*stats.Sample, len(sizes)),
					}
					parallelFor(cfg, len(sizes), func(i int) {
						r := bench.Bonnie(plat, p, sizes[i], cfg.Seed+uint64(i))
						s.X[i] = float64(sizes[i])
						s.Samples[i] = noiseSample(cfg, saltFor(bf.id, p.String(), i), noiseFor(p, noiseFS), bf.pick(r))
					})
					res.Series[pi] = s
				})
				return res
			},
		})
	}

	register(&Experiment{
		ID:    "F12",
		Title: "File Create/Delete (crtdel)",
		Kind:  Figure,
		Paper: "Figure 12, §7.2",
		Run: func(cfg Config) *Result {
			res := &Result{
				ID: "F12", Title: "File Create/Delete (crtdel)", Kind: Figure,
				YUnit: "ms", XLabel: "file bytes", LogX: true,
				Direction: stats.LowerIsBetter,
				Expected: []Expectation{
					{Label: "Solaris 2.4 @1KB", Mean: 34},
					{Label: "FreeBSD 2.0.5R @1KB", Mean: 66},
				},
				Notes: []string{
					"Linux never touches the disk: ext2 updates metadata asynchronously — an order of magnitude faster.",
					"FreeBSD trails Solaris by a near-constant ~32 ms: more (or farther) synchronous metadata writes.",
				},
			}
			sizes := bench.CrtdelSweepSizes()
			res.Series = make([]Series, len(cfg.Profiles))
			parallelFor(cfg, len(cfg.Profiles), func(pi int) {
				p := cfg.Profiles[pi]
				s := Series{
					Label:   p.String(),
					X:       make([]float64, len(sizes)),
					Samples: make([]*stats.Sample, len(sizes)),
				}
				parallelFor(cfg, len(sizes), func(i int) {
					d := bench.Crtdel(plat, p, sizes[i], cfg.Seed+uint64(i))
					s.X[i] = float64(sizes[i])
					s.Samples[i] = noiseSample(cfg, saltFor("F12", p.String(), i), noiseFor(p, noiseFS), d.Milliseconds())
				})
				res.Series[pi] = s
			})
			return res
		},
	})

	register(&Experiment{
		ID:    "F13",
		Title: "UDP Bandwidth (ttcp)",
		Kind:  Figure,
		Paper: "Figure 13, §9.2",
		Run: func(cfg Config) *Result {
			res := &Result{
				ID: "F13", Title: "UDP Bandwidth (ttcp)", Kind: Figure,
				YUnit: "Mb/s", XLabel: "packet bytes", LogX: true,
				Direction: stats.HigherIsBetter,
				Expected: []Expectation{
					{Label: "FreeBSD 2.0.5R peak", Mean: 48},
					{Label: "Solaris 2.4 peak", Mean: 32},
					{Label: "Linux 1.2.8 peak", Mean: 16},
				},
				Notes: []string{
					"FreeBSD approaches 50 Mb/s (half its pipe bandwidth); Solaris peaks at ~32 (also half of pipes).",
					"Linux, despite the best pipes, is worst at UDP: extra copies and inefficient buffer allocation (14% of its pipe bandwidth).",
				},
			}
			sizes := bench.TTCPSweepSizes()
			res.Series = make([]Series, len(cfg.Profiles))
			parallelFor(cfg, len(cfg.Profiles), func(pi int) {
				p := cfg.Profiles[pi]
				s := Series{
					Label:   p.String(),
					X:       make([]float64, len(sizes)),
					Samples: make([]*stats.Sample, len(sizes)),
				}
				for i, size := range sizes {
					bw := bench.TTCP(p, size)
					s.X[i] = float64(size)
					s.Samples[i] = noiseSample(cfg, saltFor("F13", p.String(), i), noiseFor(p, noiseUDP), bw)
				}
				res.Series[pi] = s
			})
			return res
		},
	})
}

// ctxSeries runs the Figure 1 sweep for one OS and pattern, fanning the
// process-count points out on the worker pool. (The "F1" salt is shared
// with ablation A3, which reuses these curves; keep it.)
func ctxSeries(cfg Config, p *osprofile.Profile, order bench.CtxOrder, label string) Series {
	plat := bench.PaperPlatform()
	s := Series{
		Label:   label,
		X:       make([]float64, len(ctxProcCounts)),
		Samples: make([]*stats.Sample, len(ctxProcCounts)),
	}
	parallelFor(cfg, len(ctxProcCounts), func(i int) {
		n := ctxProcCounts[i]
		d := bench.Ctx(plat, p, n, order)
		s.X[i] = float64(n)
		s.Samples[i] = noiseSample(cfg, saltFor("F1", label, i), noiseFor(p, noiseCtx), d.Microseconds())
	})
	return s
}
