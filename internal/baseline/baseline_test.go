package baseline

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/core"
)

// captureSuite records a small real suite once per test binary.
func captureSuite(t *testing.T) *File {
	t.Helper()
	ids := []string{"T2", "F12"}
	suite, err := core.NewRunner(2).Observe(core.DefaultConfig(), ids, core.ObserveOpts{})
	if err != nil {
		t.Fatal(err)
	}
	return FromSuite(ids, core.DefaultConfig().Seed, suite)
}

func TestRecordRoundTrip(t *testing.T) {
	f := captureSuite(t)
	data, err := f.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasSuffix(data, []byte("\n")) {
		t.Error("baseline file must end in newline")
	}
	back, err := Load(data)
	if err != nil {
		t.Fatal(err)
	}
	res := Compare(f, back, 0)
	if !res.OK() {
		var b strings.Builder
		res.WriteTable(&b)
		t.Fatalf("round-tripped baseline not clean:\n%s", b.String())
	}
	if res.Compared == 0 || res.Compared != f.MetricCount() {
		t.Fatalf("Compared = %d, MetricCount = %d", res.Compared, f.MetricCount())
	}
	// Marshal is byte-stable.
	again, err := back.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, again) {
		t.Fatal("baseline marshal not byte-stable across a round trip")
	}
}

func TestFreshRunMatchesRecorded(t *testing.T) {
	a := captureSuite(t)
	b := captureSuite(t)
	res := Compare(a, b, 0)
	if !res.OK() {
		var tbl strings.Builder
		res.WriteTable(&tbl)
		t.Fatalf("two identical deterministic runs differ:\n%s", tbl.String())
	}
}

func TestIntegerLedgerChangeFailsExactly(t *testing.T) {
	base := captureSuite(t)
	cur := captureSuite(t)
	// Find an integral counter and nudge it by the smallest amount the
	// float can represent — exact matching must still catch it.
	exp := cur.Experiments["T2"]
	for label, run := range exp.Runs {
		for i, c := range run.Metrics.Counters {
			if isIntegral(c.Value) && c.Value > 0 {
				run.Metrics.Counters[i].Value = c.Value + 1
				exp.Runs[label] = run
				res := Compare(base, cur, 0)
				if res.OK() {
					t.Fatal("integer ledger change not caught")
				}
				v := res.Violations[0]
				if v.Kind != "changed" || !strings.Contains(v.Metric, c.Name) {
					t.Fatalf("violation = %+v, want changed %s", v, c.Name)
				}
				return
			}
		}
	}
	t.Skip("no integral counter in T2 capture")
}

func TestFloatDriftTolerance(t *testing.T) {
	base := &File{Schema: Schema, IDs: []string{"X"}, Experiments: map[string]Experiment{
		"X": {Runs: map[string]Run{"sys": {Unit: "µs", Total: 100.5}}},
	}}
	within := &File{Schema: Schema, IDs: []string{"X"}, Experiments: map[string]Experiment{
		"X": {Runs: map[string]Run{"sys": {Unit: "µs", Total: 100.5 * (1 + 1e-12)}}},
	}}
	if res := Compare(base, within, 1e-9); !res.OK() {
		t.Fatalf("drift within tolerance flagged: %+v", res.Violations)
	}
	beyond := &File{Schema: Schema, IDs: []string{"X"}, Experiments: map[string]Experiment{
		"X": {Runs: map[string]Run{"sys": {Unit: "µs", Total: 100.5 * 1.02}}},
	}}
	res := Compare(base, beyond, 1e-9)
	if res.OK() {
		t.Fatal("2% drift not caught")
	}
	if res.Violations[0].Kind != "drift" {
		t.Fatalf("kind = %s, want drift", res.Violations[0].Kind)
	}
	// A loose tolerance admits it.
	if res := Compare(base, beyond, 0.05); !res.OK() {
		t.Fatalf("5%% tolerance should admit 2%% drift: %+v", res.Violations)
	}
}

func TestMissingAndAddedMetrics(t *testing.T) {
	base := captureSuite(t)
	cur := captureSuite(t)
	exp := cur.Experiments["F12"]
	for label, run := range exp.Runs {
		run.Metrics.Counters = run.Metrics.Counters[1:] // drop one metric
		exp.Runs[label] = run
		break
	}
	delete(cur.Experiments, "T2") // drop a whole experiment
	res := Compare(base, cur, 0)
	if res.OK() {
		t.Fatal("missing metrics not caught")
	}
	kinds := map[string]int{}
	for _, v := range res.Violations {
		kinds[v.Kind]++
	}
	if kinds["missing"] == 0 {
		t.Fatalf("no missing violations: %v", kinds)
	}
	// Missing/added rank ahead of everything (Rel = +Inf).
	if !math.IsInf(res.Violations[0].Rel, 1) {
		t.Fatalf("worst violation should rank +Inf: %+v", res.Violations[0])
	}
}

func TestRankedTableWorstFirst(t *testing.T) {
	base := &File{Schema: Schema, IDs: []string{"X"}, Experiments: map[string]Experiment{
		"X": {Runs: map[string]Run{
			"small": {Unit: "µs", Total: 100.5},
			"big":   {Unit: "µs", Total: 200.5},
		}},
	}}
	cur := &File{Schema: Schema, IDs: []string{"X"}, Experiments: map[string]Experiment{
		"X": {Runs: map[string]Run{
			"small": {Unit: "µs", Total: 100.5 * 1.01}, // 1% drift
			"big":   {Unit: "µs", Total: 200.5 * 1.50}, // 50% drift
		}},
	}}
	res := Compare(base, cur, 1e-9)
	if len(res.Violations) != 2 {
		t.Fatalf("violations = %+v", res.Violations)
	}
	if !strings.Contains(res.Violations[0].Metric, "big") {
		t.Fatalf("worst regression should lead: %+v", res.Violations)
	}
	var b strings.Builder
	if err := res.WriteTable(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "rank") || strings.Index(out, "big") > strings.Index(out, "small") {
		t.Fatalf("table not ranked worst-first:\n%s", out)
	}
}

func TestLoadRejectsBadFiles(t *testing.T) {
	for name, data := range map[string]string{
		"garbage":      "not json",
		"wrong schema": `{"schema":99,"ids":["T2"],"experiments":{"T2":{"runs":{}}}}`,
		"empty":        `{"schema":1,"ids":[],"experiments":{}}`,
		"unlisted id":  `{"schema":1,"ids":["T9"],"experiments":{"T2":{"runs":{}}}}`,
	} {
		if _, err := Load([]byte(data)); err == nil {
			t.Errorf("%s: Load accepted %q", name, data)
		}
	}
}

func TestIsIntegral(t *testing.T) {
	for v, want := range map[float64]bool{
		0: true, 3: true, -17: true, 110000: true, 1 << 52: true,
		2.5: false, 7078.5: false, 1e300: false, math.Pi: false,
	} {
		if got := isIntegral(v); got != want {
			t.Errorf("isIntegral(%v) = %v, want %v", v, got, want)
		}
	}
}
