// Package baseline is the metric regression harness: it serializes a
// canonical snapshot of the observability probes' metrics (per-run
// totals plus the full phase-ledger snapshots from obs.Snapshot) to a
// JSON baseline file, and diffs a fresh run against a recorded one —
// exact matching for the deterministic integer ledgers, configurable
// relative tolerance for derived floats. `pentiumbench baseline
// record|check|diff` and the CI gate ride on it; BENCH_baseline.json at
// the repository root is the committed perf trajectory (DESIGN.md §10).
package baseline

import (
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/obs"
)

// Schema is the current baseline file schema version. Bump on
// incompatible layout changes; Load rejects other versions.
const Schema = 1

// Run is the recorded state of one observed model run (one OS
// personality, or the hardware curve) of one experiment probe.
type Run struct {
	// Unit is the unit of Total ("µs" or "cycles").
	Unit string `json:"unit"`
	// Total is the run's total simulated time or cycles.
	Total float64 `json:"total"`
	// ProfileNs is the run's folded-profile weight in virtual
	// nanoseconds — the span-stream coverage, an integer ledger.
	ProfileNs int64 `json:"profile_ns"`
	// Metrics is the run's full metric snapshot (sorted names).
	Metrics obs.Snapshot `json:"metrics"`
}

// Experiment is the recorded state of one experiment probe: its runs,
// keyed by run label.
type Experiment struct {
	Title string         `json:"title"`
	Runs  map[string]Run `json:"runs"`
}

// File is one recorded baseline: the canonical metrics snapshot of a
// deterministic suite run. Everything in it is a pure function of
// (ids, seed) — the "runner." wall-clock self-metrics never appear,
// because per-run snapshots hold model metrics only.
type File struct {
	Schema int `json:"schema"`
	// IDs are the experiment probes recorded, in presentation order.
	IDs []string `json:"ids"`
	// Seed is the master RNG seed the probes ran under; check re-runs
	// with the same seed, making the gate self-contained.
	Seed uint64 `json:"seed"`
	// Experiments holds the recorded runs, keyed by experiment ID.
	Experiments map[string]Experiment `json:"experiments"`
}

// FromSuite captures a suite observation as a baseline.
func FromSuite(ids []string, seed uint64, s *core.SuiteObservation) *File {
	f := &File{Schema: Schema, IDs: append([]string(nil), ids...), Seed: seed,
		Experiments: make(map[string]Experiment, len(s.Observations))}
	for _, o := range s.Observations {
		exp := Experiment{Title: o.Title, Runs: make(map[string]Run, len(o.Runs))}
		for _, run := range o.Runs {
			var profNs int64
			if run.Profile != nil {
				profNs = run.Profile.TotalNs()
			}
			exp.Runs[run.Label] = Run{
				Unit:      run.Unit,
				Total:     run.Total,
				ProfileNs: profNs,
				Metrics:   run.Metrics,
			}
		}
		f.Experiments[o.ID] = exp
	}
	return f
}

// Marshal renders the baseline as indented JSON with sorted keys
// throughout (encoding/json sorts map keys; obs.Snapshot marshals its
// own sorted form), terminated by a newline — a stable, diffable file.
func (f *File) Marshal() ([]byte, error) {
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// Load parses and validates a baseline file.
func Load(data []byte) (*File, error) {
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	if f.Schema != Schema {
		return nil, fmt.Errorf("baseline: schema %d, want %d (re-record the baseline)", f.Schema, Schema)
	}
	if len(f.IDs) == 0 || len(f.Experiments) == 0 {
		return nil, fmt.Errorf("baseline: file records no experiments")
	}
	for _, id := range f.IDs {
		if _, ok := f.Experiments[id]; !ok {
			return nil, fmt.Errorf("baseline: id %q listed but not recorded", id)
		}
	}
	return &f, nil
}

// MetricCount returns the number of recorded comparison points: per
// run, the total and profile weight, every counter, and four points
// (count, sum, min, max) per distribution — matching Result.Compared
// on a structurally identical capture.
func (f *File) MetricCount() int {
	n := 0
	for _, exp := range f.Experiments {
		for _, run := range exp.Runs {
			n += 2 + len(run.Metrics.Counters) + 4*len(run.Metrics.Dists)
		}
	}
	return n
}

// sortedKeys returns m's keys sorted, for deterministic walks.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
