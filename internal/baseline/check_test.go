package baseline

import (
	"math"
	"testing"

	"repro/internal/obs"
)

// snapOf builds a snapshot from name/value pairs (names pre-sorted).
func snapOf(pairs ...interface{}) obs.Snapshot {
	var s obs.Snapshot
	for i := 0; i < len(pairs); i += 2 {
		s.Counters = append(s.Counters, obs.CounterValue{
			Name: pairs[i].(string), Value: pairs[i+1].(float64),
		})
	}
	return s
}

// TestCompareScalarEdgeCases locks the matching rule down at its
// boundaries: zero-recorded values, sign flips, and the non-finite
// inputs that used to poison the relative delta into a NaN that no
// tolerance could catch (NaN > tol is false for every tol).
func TestCompareScalarEdgeCases(t *testing.T) {
	inf := math.Inf(1)
	nan := math.NaN()
	cases := []struct {
		name      string
		base, cur float64
		tol       float64
		wantKind  string // "" = must pass
		wantRel   float64
	}{
		{"equal zero", 0, 0, 1e-9, "", 0},
		{"pos and neg zero", 0, math.Copysign(0, -1), 1e-9, "", 0},
		// A zero recorded value is integral, so any change is exact-match
		// "changed"; the relative delta must be 1, not a division by zero.
		{"zero to epsilon", 0, 1e-12, 1e-9, "changed", 1},
		{"epsilon vanishes", 0.5, 0, 1e-9, "drift", 1},
		// Sign flips are full-magnitude changes however small the values.
		{"sign flip float", 0.25, -0.25, 1e-9, "drift", 2},
		{"sign flip integer", 5, -5, 1e-9, "changed", 2},
		// Identical NaNs reproduce the same (broken) computation — equal.
		{"both NaN", nan, nan, 1e-9, "", 0},
		{"NaN appears", 1.5, nan, 1e-9, "changed", inf},
		{"NaN heals", nan, 1.5, 1e-9, "changed", inf},
		{"NaN vs Inf", nan, inf, 1e-9, "changed", inf},
		{"both +Inf", inf, inf, 1e-9, "", 0},
		{"Inf appears", 2.5, inf, 1e-9, "changed", inf},
		{"Inf heals", inf, 2.5, 1e-9, "changed", inf},
		{"Inf flips sign", inf, math.Inf(-1), 1e-9, "changed", inf},
		// The ordinary rules still hold around them.
		{"drift above tol", 1.5, 1.5 * (1 + 1e-6), 1e-9, "drift", 1e-6},
		{"drift within tol", 1.5, 1.5 * (1 + 1e-12), 1e-9, "", 0},
		{"integer changed", 7, 8, 1e-9, "changed", 0.125},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res := &Result{}
			res.compare("m", tc.base, tc.cur, tc.tol)
			if res.Compared != 1 {
				t.Fatalf("Compared = %d, want 1", res.Compared)
			}
			if tc.wantKind == "" {
				if len(res.Violations) != 0 {
					t.Fatalf("compare(%v, %v) flagged %+v, want pass", tc.base, tc.cur, res.Violations[0])
				}
				return
			}
			if len(res.Violations) != 1 {
				t.Fatalf("compare(%v, %v) passed, want %q violation", tc.base, tc.cur, tc.wantKind)
			}
			v := res.Violations[0]
			if v.Kind != tc.wantKind {
				t.Errorf("Kind = %q, want %q", v.Kind, tc.wantKind)
			}
			if math.IsNaN(v.Rel) {
				t.Fatalf("Rel is NaN; the ranking sort cannot order it")
			}
			if relErr := math.Abs(v.Rel - tc.wantRel); math.IsInf(tc.wantRel, 1) != math.IsInf(v.Rel, 1) ||
				(!math.IsInf(tc.wantRel, 1) && relErr > 1e-9) {
				t.Errorf("Rel = %v, want %v", v.Rel, tc.wantRel)
			}
		})
	}
}

// TestCompareNonFiniteRankFirst checks that a NaN violation outranks any
// finite drift in the regression table.
func TestCompareNonFiniteRankFirst(t *testing.T) {
	base := &File{Experiments: map[string]Experiment{
		"E": {Runs: map[string]Run{
			"sys": {Unit: "µs", Total: 10, Metrics: snapOf(
				"a.big_drift", 1.5,
				"b.poisoned", 2.5,
			)},
		}},
	}}
	cur := &File{Experiments: map[string]Experiment{
		"E": {Runs: map[string]Run{
			"sys": {Unit: "µs", Total: 10, Metrics: snapOf(
				"a.big_drift", 3.0,
				"b.poisoned", math.NaN(),
			)},
		}},
	}}
	res := Compare(base, cur, 1e-9)
	if len(res.Violations) != 2 {
		t.Fatalf("got %d violations, want 2: %+v", len(res.Violations), res.Violations)
	}
	if got := res.Violations[0].Metric; got != "E / sys / b.poisoned" {
		t.Errorf("worst violation is %q, want the NaN poisoning first", got)
	}
}
