package baseline

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"repro/internal/obs"
)

// DefaultTolerance is the relative tolerance applied to non-integer
// (derived float) metrics. The suite is deterministic, so drift beyond
// float re-association noise is a real change; 1e-9 matches the
// tolerance the attribution tests use.
const DefaultTolerance = 1e-9

// Violation is one metric that moved outside its matching rule.
type Violation struct {
	// Metric is the full path: "F12 / Linux 1.2.8 / fs.phase_us.metasync".
	Metric string
	// Kind classifies the failure: "changed" (exact integer ledger
	// mismatch), "drift" (float beyond tolerance), "missing" (recorded
	// but absent now), "added" (present now but not recorded).
	Kind string
	// Base and Cur are the recorded and current values (NaN when the
	// side does not exist).
	Base, Cur float64
	// Rel is the relative magnitude of the change, the ranking key.
	// Missing/added metrics rank as +Inf.
	Rel float64
}

// Result is the outcome of one baseline comparison.
type Result struct {
	// Compared counts the comparison points examined.
	Compared int
	// Violations holds every mismatch, ranked by Rel descending (ties
	// by metric path), so the worst regression leads the table.
	Violations []Violation
}

// OK reports a clean comparison.
func (r *Result) OK() bool { return len(r.Violations) == 0 }

// isIntegral reports whether v is an exactly-representable integer —
// the marker for deterministic integer ledgers (span counts, integer
// phase ledgers, event totals), which must match exactly.
func isIntegral(v float64) bool {
	return v == math.Trunc(v) && math.Abs(v) < 1<<53
}

// isFinite reports whether v is an ordinary number (not NaN, not ±Inf).
func isFinite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// relDelta returns |cur-base| scaled by the larger magnitude. Both
// inputs are finite and unequal when this is called, so the scale is
// nonzero (a 0 vs 0 pair already matched exactly) and the zero-recorded
// case (0 → ε) yields rel = 1 rather than a division by zero.
func relDelta(base, cur float64) float64 {
	scale := math.Max(math.Abs(base), math.Abs(cur))
	if scale == 0 {
		return 0
	}
	return math.Abs(cur-base) / scale
}

// compare applies the matching rule for one scalar: integral baseline
// values must match exactly; floats get the relative tolerance.
func (r *Result) compare(path string, base, cur, tol float64) {
	r.Compared++
	if base == cur || (math.IsNaN(base) && math.IsNaN(cur)) {
		return
	}
	// One side NaN or Inf poisons relDelta into NaN, and NaN > tol is
	// false for every tolerance — without this branch such a change
	// would pass silently. A non-finite value appearing (or healing) is
	// always a hard violation, ranked with the missing/added ones.
	if !isFinite(base) || !isFinite(cur) {
		r.Violations = append(r.Violations, Violation{Metric: path, Kind: "changed", Base: base, Cur: cur, Rel: math.Inf(1)})
		return
	}
	rel := relDelta(base, cur)
	if isIntegral(base) {
		r.Violations = append(r.Violations, Violation{Metric: path, Kind: "changed", Base: base, Cur: cur, Rel: rel})
		return
	}
	if rel > tol {
		r.Violations = append(r.Violations, Violation{Metric: path, Kind: "drift", Base: base, Cur: cur, Rel: rel})
	}
}

func (r *Result) missing(path string, base float64) {
	r.Compared++
	r.Violations = append(r.Violations, Violation{Metric: path, Kind: "missing", Base: base, Cur: math.NaN(), Rel: math.Inf(1)})
}

func (r *Result) added(path string, cur float64) {
	r.Compared++
	r.Violations = append(r.Violations, Violation{Metric: path, Kind: "added", Base: math.NaN(), Cur: cur, Rel: math.Inf(1)})
}

// Compare diffs the current capture against the recorded baseline.
// tol <= 0 selects DefaultTolerance. Every recorded experiment, run and
// metric must still exist with a matching value; metrics that appear
// only in the current capture are violations too (they change the
// perf surface and belong in a re-recorded baseline).
func Compare(base, cur *File, tol float64) *Result {
	if tol <= 0 {
		tol = DefaultTolerance
	}
	res := &Result{}
	for _, id := range sortedKeys(base.Experiments) {
		bexp := base.Experiments[id]
		cexp, ok := cur.Experiments[id]
		if !ok {
			for _, label := range sortedKeys(bexp.Runs) {
				res.missing(id+" / "+label, bexp.Runs[label].Total)
			}
			continue
		}
		for _, label := range sortedKeys(bexp.Runs) {
			brun := bexp.Runs[label]
			crun, ok := cexp.Runs[label]
			path := id + " / " + label
			if !ok {
				res.missing(path, brun.Total)
				continue
			}
			res.compare(path+" / total("+brun.Unit+")", brun.Total, crun.Total, tol)
			res.compare(path+" / profile_ns", float64(brun.ProfileNs), float64(crun.ProfileNs), tol)
			compareSnapshots(res, path, brun.Metrics, crun.Metrics, tol)
		}
		for _, label := range sortedKeys(cexp.Runs) {
			if _, ok := bexp.Runs[label]; !ok {
				res.added(id+" / "+label, cexp.Runs[label].Total)
			}
		}
	}
	for _, id := range sortedKeys(cur.Experiments) {
		if _, ok := base.Experiments[id]; !ok {
			for _, label := range sortedKeys(cur.Experiments[id].Runs) {
				res.added(id+" / "+label, cur.Experiments[id].Runs[label].Total)
			}
		}
	}
	sort.SliceStable(res.Violations, func(i, j int) bool {
		vi, vj := res.Violations[i], res.Violations[j]
		if vi.Rel != vj.Rel {
			// NaN never occurs in Rel; +Inf (missing/added) sorts first.
			return vi.Rel > vj.Rel
		}
		return vi.Metric < vj.Metric
	})
	return res
}

// compareSnapshots diffs two metric snapshots under the run path.
func compareSnapshots(res *Result, path string, base, cur obs.Snapshot, tol float64) {
	curC := make(map[string]float64, len(cur.Counters))
	for _, c := range cur.Counters {
		curC[c.Name] = c.Value
	}
	for _, c := range base.Counters {
		v, ok := curC[c.Name]
		if !ok {
			res.missing(path+" / "+c.Name, c.Value)
			continue
		}
		delete(curC, c.Name)
		res.compare(path+" / "+c.Name, c.Value, v, tol)
	}
	for _, name := range sortedKeys(curC) {
		res.added(path+" / "+name, curC[name])
	}

	curD := make(map[string]obs.DistValue, len(cur.Dists))
	for _, d := range cur.Dists {
		curD[d.Name] = d
	}
	for _, d := range base.Dists {
		cd, ok := curD[d.Name]
		if !ok {
			res.missing(path+" / "+d.Name, float64(d.Count))
			continue
		}
		delete(curD, d.Name)
		// Four comparison points per distribution: count is an integer
		// ledger, the moments follow the scalar rule.
		res.compare(path+" / "+d.Name+".count", float64(d.Count), float64(cd.Count), tol)
		res.compare(path+" / "+d.Name+".sum", d.Sum, cd.Sum, tol)
		res.compare(path+" / "+d.Name+".min", d.Min, cd.Min, tol)
		res.compare(path+" / "+d.Name+".max", d.Max, cd.Max, tol)
	}
	for _, name := range sortedKeys(curD) {
		res.added(path+" / "+name, float64(curD[name].Count))
	}
}

// WriteTable renders the ranked regression table, worst first:
//
//	rank  kind     baseline        current         rel       metric
func (r *Result) WriteTable(w io.Writer) error {
	if r.OK() {
		return nil
	}
	if _, err := fmt.Fprintf(w, "%4s  %-7s %16s %16s %10s  %s\n",
		"rank", "kind", "baseline", "current", "rel", "metric"); err != nil {
		return err
	}
	for i, v := range r.Violations {
		rel := "-"
		if !math.IsInf(v.Rel, 1) {
			rel = fmt.Sprintf("%.3g", v.Rel)
		}
		if _, err := fmt.Fprintf(w, "%4d  %-7s %16s %16s %10s  %s\n",
			i+1, v.Kind, fmtVal(v.Base), fmtVal(v.Cur), rel, v.Metric); err != nil {
			return err
		}
	}
	return nil
}

// fmtVal renders a value column, blank for the missing side.
func fmtVal(v float64) string {
	if math.IsNaN(v) {
		return "-"
	}
	s := fmt.Sprintf("%.6g", v)
	if strings.Contains(s, "e") {
		return fmt.Sprintf("%g", v)
	}
	return s
}
