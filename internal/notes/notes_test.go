package notes

import "testing"

func TestVerdictStrings(t *testing.T) {
	for v, want := range map[Verdict]string{Good: "good", Mixed: "mixed", Poor: "poor", Verdict(9): "?"} {
		if got := v.String(); got != want {
			t.Errorf("Verdict(%d) = %q, want %q", int(v), got, want)
		}
	}
}

func TestItemsComplete(t *testing.T) {
	for _, items := range [][]Item{Installation(), Porting()} {
		if len(items) == 0 {
			t.Fatal("empty section")
		}
		for _, it := range items {
			if it.Aspect == "" || it.Detail == "" {
				t.Errorf("item incomplete: %+v", it)
			}
		}
	}
}

func TestPaperEaseOrdering(t *testing.T) {
	// §11: "Linux being the easiest and Solaris being the most
	// difficult" — count of good verdicts must reflect that, in both
	// sections combined.
	score := [3]int{}
	for _, items := range [][]Item{Installation(), Porting()} {
		for _, it := range items {
			for i, v := range it.PerOS {
				if v == Good {
					score[i] += 2
				}
				if v == Mixed {
					score[i]++
				}
			}
		}
	}
	if !(score[0] > score[1] && score[1] > score[2]) {
		t.Errorf("ease order (Linux > FreeBSD > Solaris) violated: %v", score)
	}
}

func TestConclusionCoversAllSystems(t *testing.T) {
	c := Conclusion()
	for _, k := range append(Systems[:], "overall") {
		if c[k] == "" {
			t.Errorf("missing conclusion for %s", k)
		}
	}
}
