// Package notes encodes §11 of the paper ("Other Comments"): the
// qualitative installation, porting and support observations that the
// authors argue matter as much as performance when choosing a system.
// They are data, not measurements, but a faithful reproduction carries
// them — they are half of the paper's conclusion.
package notes

// Verdict grades an aspect per system.
type Verdict int

// Verdicts, from best to worst.
const (
	Good Verdict = iota
	Mixed
	Poor
)

// String renders the verdict.
func (v Verdict) String() string {
	switch v {
	case Good:
		return "good"
	case Mixed:
		return "mixed"
	case Poor:
		return "poor"
	}
	return "?"
}

// Item is one §11 observation.
type Item struct {
	// Aspect names what was evaluated.
	Aspect string
	// PerOS grades Linux, FreeBSD and Solaris in that order.
	PerOS [3]Verdict
	// Detail quotes or summarises the paper.
	Detail string
}

// Systems are the column headings for Item.PerOS.
var Systems = [3]string{"Linux 1.2.8", "FreeBSD 2.0.5R", "Solaris 2.4"}

// Installation returns the §11 installation experiences ("Linux being the
// easiest and Solaris being the most difficult").
func Installation() []Item {
	return []Item{
		{
			Aspect: "Installation across the Internet",
			PerOS:  [3]Verdict{Good, Good, Poor},
			Detail: "Linux and FreeBSD install over the network; Solaris ships on CD-ROM only.",
		},
		{
			Aspect: "WWW installation documentation",
			PerOS:  [3]Verdict{Good, Good, Poor},
			Detail: "Linux and FreeBSD document installation on the web.",
		},
		{
			Aspect: "Panasonic/Creative Labs CD-ROM support",
			PerOS:  [3]Verdict{Good, Poor, Poor},
			Detail: "FreeBSD and Solaris did not support the (very common) drive.",
		},
		{
			Aspect: "Installer stability",
			PerOS:  [3]Verdict{Good, Poor, Poor},
			Detail: "FreeBSD and Solaris crashed during installation on a driver incompatibility.",
		},
		{
			Aspect: "Respects existing boot loader and partitions",
			PerOS:  [3]Verdict{Good, Good, Poor},
			Detail: "Solaris obliterated the existing boot loader and disk partitions.",
		},
		{
			Aspect: "System administration documentation",
			PerOS:  [3]Verdict{Good, Good, Poor},
			Detail: "Solaris' was inaccessible or missing.",
		},
	}
}

// Porting returns the §11 benchmark-porting experiences ("Linux again
// being the easiest system and Solaris the most difficult").
func Porting() []Item {
	return []Item{
		{
			Aspect: "BSD and System V compatibility",
			PerOS:  [3]Verdict{Good, Mixed, Mixed},
			Detail: "Linux offers both personalities; the others favour their own lineage.",
		},
		{
			Aspect: "Free software preinstalled (gcc, emacs, tcsh)",
			PerOS:  [3]Verdict{Good, Good, Poor},
			Detail: "Solaris ships no compiler; only an old, buggy gcc was available online.",
		},
		{
			Aspect: "Internet repository of pre-compiled binaries",
			PerOS:  [3]Verdict{Good, Good, Poor},
			Detail: "No Solaris x86 binary repository existed; the user community was too small.",
		},
		{
			Aspect: "NFS interoperability quirks",
			PerOS:  [3]Verdict{Poor, Mixed, Good},
			Detail: "The Linux 1.2.8 server demands privileged client ports, which FreeBSD clients do not bind by default (the paper's 'most irritating problem').",
		},
	}
}

// Conclusion returns the paper's §12 per-system summary sentences.
func Conclusion() map[string]string {
	return map[string]string{
		"Linux 1.2.8": "Best at system calls, context switching (few processes), pipes and small-file metadata; " +
			"poor networking overall and miserable NFS against non-Linux servers.",
		"FreeBSD 2.0.5R": "Best networking and NFS; strong on large files and MAB; weak on small files and metadata.",
		"Solaris 2.4": "Slowest system calls, context switches and pipes; reads large files efficiently; " +
			"does poorly on local MAB. Its features (multiprocessing) may still justify it.",
		"overall": "No one system dominates: overall performance is not a sufficient argument for choosing " +
			"one of these systems over the others.",
	}
}
