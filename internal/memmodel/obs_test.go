package memmodel

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/cpu"
)

// Observing a bandwidth point must not change its value: the attribution
// path is bit-identical to the fast path.
func TestObservedBandwidthMatchesBandwidth(t *testing.T) {
	c := cpu.PentiumP54C100()
	for _, r := range []Routine{CustomRead, Memset, PrefetchWrite, NaiveCopy, PrefetchCopy} {
		for _, size := range []int{4 << 10, 64 << 10, 1 << 20} {
			plain := NewModel(c, cache.PentiumConfig()).Bandwidth(r, size)
			obs := NewModel(c, cache.PentiumConfig()).ObservedBandwidth(r, size)
			if plain != obs.MBs {
				t.Errorf("%v/%d: observed %v != plain %v", r, size, obs.MBs, plain)
			}
			total := obs.Breakdown.Total()
			diff := total - obs.SimCycles
			if diff < 0 {
				diff = -diff
			}
			if obs.SimCycles <= 0 || diff > 1e-9*obs.SimCycles {
				t.Errorf("%v/%d: breakdown total %v vs sim cycles %v", r, size, total, obs.SimCycles)
			}
			if obs.Stats.BytesRead+obs.Stats.BytesWrit == 0 {
				t.Errorf("%v/%d: stats empty", r, size)
			}
		}
	}
}

// A memory-bound prefetching point must both hide latency (Overlap) and
// attribute cycles to memory fills.
func TestObservedBandwidthPrefetchOverlap(t *testing.T) {
	m := NewModel(cpu.PentiumP54C100(), cache.PentiumConfig())
	p := m.ObservedBandwidth(PrefetchCopy, 1<<20)
	if p.Overlap <= 0 {
		t.Fatalf("prefetch copy hid no latency: %+v", p)
	}
	if p.Breakdown.Mem == 0 || p.Breakdown.Overhead == 0 {
		t.Fatalf("expected memory and overhead attribution: %+v", p.Breakdown)
	}
}
