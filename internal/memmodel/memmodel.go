// Package memmodel implements the memory benchmarks of the paper's §6: the
// libc memset()/memcpy() models and the authors' custom read, write and
// copy routines, with and without software prefetching.
//
// Every routine is written exactly the way the paper describes the
// originals: a main loop that handles 16 bytes per iteration, followed by a
// tail loop that handles the remaining 0–15 bytes one byte per iteration
// (the source of the §6.4 bandwidth dips). The routines run against the
// cache.Hierarchy model, so the plateaus at the 8 KB and 256 KB cache sizes,
// the flat sub-50 MB/s write curves (no write-allocate), and the prefetching
// speedups all emerge from the simulated hierarchy rather than being baked
// into tables.
package memmodel

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/cpu"
	"repro/internal/sim"
)

// ChunkSize is the number of bytes handled per main-loop iteration.
const ChunkSize = 16

const wordsPerChunk = ChunkSize / cache.WordSize

// Routine identifies one of the §6 memory routines.
type Routine int

// The routines of Figures 2–8, in figure order.
const (
	CustomRead    Routine = iota // Figure 2
	Memset                       // Figure 3
	NaiveWrite                   // Figure 4
	PrefetchWrite                // Figure 5
	LibcMemcpy                   // Figure 6
	NaiveCopy                    // Figure 7
	PrefetchCopy                 // Figure 8
)

// String returns the routine's name as used in the paper's figures.
func (r Routine) String() string {
	switch r {
	case CustomRead:
		return "custom read"
	case Memset:
		return "memset"
	case NaiveWrite:
		return "naive custom write"
	case PrefetchWrite:
		return "prefetching custom write"
	case LibcMemcpy:
		return "memcpy"
	case NaiveCopy:
		return "naive custom copy"
	case PrefetchCopy:
		return "prefetching custom copy"
	}
	return fmt.Sprintf("Routine(%d)", int(r))
}

// IsCopy reports whether the routine moves data between two buffers, in
// which case its bandwidth counts bytes copied (the paper reports copy
// bandwidth this way, noting total traffic is double).
func (r Routine) IsCopy() bool {
	return r == LibcMemcpy || r == NaiveCopy || r == PrefetchCopy
}

// Model runs memory routines over a cache hierarchy. The zero value is not
// usable; construct with NewModel (fast line-granular hierarchy) or
// NewRefModel (per-access reference hierarchy; same results, slower).
type Model struct {
	cpu  cpu.CPU
	hier cache.Sim
	// fast is hier's concrete type when the model runs on the optimized
	// hierarchy, nil on the reference. The per-line hot paths call through
	// it to avoid interface dispatch; every such call site falls back to
	// hier so the reference model follows the identical code path.
	fast *cache.Hierarchy

	// ChunkLoop is the loop overhead in cycles charged per 16-byte
	// main-loop iteration of the custom routines.
	ChunkLoop float64
	// LibcChunkLoop is the (slightly lower, unrolled) loop overhead per 16
	// bytes of the libc routines.
	LibcChunkLoop float64
	// TailLoop is the per-byte loop overhead of the tail loop.
	TailLoop float64
	// PrefetchDistance is how many lines ahead the prefetching routines
	// touch. The paper's routines prefetched as the write took place;
	// distance 1 models that. The A2 ablation sweeps this.
	PrefetchDistance int
	// overlapSavings accumulates the fill latency hidden by prefetching
	// ahead of use. Each line of lead hides up to the processing time of
	// one line.
	overlapSavings float64

	// line and prefetchIssue cache hierarchy configuration the passes
	// consult per line: reading them through the Sim interface would copy
	// the whole Config struct on every call, which profiles as the single
	// hottest item in the prefetch sweeps.
	line          int
	prefetchIssue float64

	srcBase, dstBase uint64
}

// DefaultPrefetchDistance is the lookahead of the paper's prefetching
// routines, which touched the next line as the write took place.
const DefaultPrefetchDistance = 1

// NewModel builds a memory model over a fresh hierarchy with the given
// configuration. The passes issue run-length accesses, which the fast
// hierarchy resolves with one tag lookup per cache line.
func NewModel(c cpu.CPU, cfg cache.Config) *Model {
	return newModelOn(c, cache.MustNew(cfg))
}

// NewRefModel builds the model over the per-access reference hierarchy
// (cache.RefHierarchy). Every result is bit-identical to NewModel's —
// the fast path's defining invariant — just slower to simulate; core's
// differential suite test and the property tests here rely on it.
func NewRefModel(c cpu.CPU, cfg cache.Config) *Model {
	return newModelOn(c, cache.MustRef(cfg))
}

func newModelOn(c cpu.CPU, sim cache.Sim) *Model {
	cfg := sim.Config()
	m := &Model{
		cpu:              c,
		hier:             sim,
		ChunkLoop:        1.33,
		LibcChunkLoop:    1.0,
		TailLoop:         0.7,
		PrefetchDistance: DefaultPrefetchDistance,
		line:             cfg.LineSize,
		prefetchIssue:    cfg.Timing.PrefetchIssue,
		srcBase:          1 << 20,
	}
	m.fast, _ = sim.(*cache.Hierarchy)
	return m
}

// The pass loops issue their cache operations through these thin dispatch
// helpers: on the optimized hierarchy they call the concrete type (the
// per-line-group calls of the prefetching passes are hot enough for
// interface dispatch to show in profiles), otherwise they fall through to
// the Sim interface. Both branches run the same simulation code.

func (m *Model) readRun(addr uint64, words, cw int, loop float64) {
	if m.fast != nil {
		m.fast.ReadRun(addr, words, cw, loop)
		return
	}
	m.hier.ReadRun(addr, words, cw, loop)
}

func (m *Model) writeRun(addr uint64, words, cw int, loop float64) {
	if m.fast != nil {
		m.fast.WriteRun(addr, words, cw, loop)
		return
	}
	m.hier.WriteRun(addr, words, cw, loop)
}

func (m *Model) copyRun(src, dst uint64, words, cw int, loop float64) {
	if m.fast != nil {
		m.fast.CopyRun(src, dst, words, cw, loop)
		return
	}
	m.hier.CopyRun(src, dst, words, cw, loop)
}

func (m *Model) prefetch(addr uint64) float64 {
	if m.fast != nil {
		return m.fast.Prefetch(addr)
	}
	return m.hier.Prefetch(addr)
}

// Hierarchy exposes the underlying cache model (for statistics).
func (m *Model) Hierarchy() cache.Sim { return m.hier }

// layout positions the source and destination buffers the way the original
// benchmark's allocator did: adjacent, line-aligned allocations.
func (m *Model) layout(size int) {
	rounded := (uint64(size) + 63) &^ 31
	m.dstBase = m.srcBase + rounded + 32
}

// readPass performs one pass of the custom read routine over size bytes.
// The whole main loop is one run-length access: ReadRun replays the
// per-chunk loop overhead and per-word costs in the original order while
// resolving only one tag lookup per cache line.
func (m *Model) readPass(base uint64, size int) {
	chunks := size / ChunkSize
	m.readRun(base, chunks*wordsPerChunk, wordsPerChunk, m.ChunkLoop)
	m.tailRead(base, size)
}

// writePass performs one pass of a write routine (memset or custom). The
// non-prefetching variants issue the main loop as a single run; the
// prefetching variants break the run at each line boundary, where the
// original loop interposes a prefetch touch.
func (m *Model) writePass(base uint64, size int, loop float64, prefetch bool) {
	chunks := size / ChunkSize
	if !prefetch {
		m.writeRun(base, chunks*wordsPerChunk, wordsPerChunk, loop)
		m.tailWrite(base, size)
		return
	}
	lineMask := uint64(m.line) - 1 // line sizes are powers of two
	m.preamble(base, size)
	for i := 0; i < chunks; {
		addr := base + uint64(i*ChunkSize)
		if addr&lineMask == 0 {
			m.prefetchAhead(addr, size, base)
		}
		// Run until the next prefetch point (the next line-aligned chunk).
		g := 1
		for i+g < chunks && (base+uint64((i+g)*ChunkSize))&lineMask != 0 {
			g++
		}
		m.writeRun(addr, g*wordsPerChunk, wordsPerChunk, loop)
		i += g
	}
	m.tailWrite(base, size)
}

// preamble touches the first PrefetchDistance lines of the buffer so the
// steady-state loop's lookahead never leaves the head of the buffer
// permanently uncached (real prefetching routines do the same before
// entering their main loop).
func (m *Model) preamble(base uint64, size int) {
	line := m.line
	for d := 0; d < m.PrefetchDistance && d*line < size; d++ {
		m.prefetch(base + uint64(d*line))
	}
}

// copyPass performs one pass of a copy routine. The interleaved
// read/write main loop is issued through CopyRun — one call for the
// whole loop in the non-prefetching variants, one call per line-group in
// the prefetching ones, which interpose a touch at each line boundary.
func (m *Model) copyPass(size int, loop float64, prefetch bool) {
	chunks := size / ChunkSize
	lineMask := uint64(m.line) - 1 // line sizes are powers of two
	if !prefetch {
		m.copyRun(m.srcBase, m.dstBase, chunks*wordsPerChunk, wordsPerChunk, loop)
	} else {
		m.preamble(m.dstBase, size)
		m.preamble(m.srcBase, size)
		for i := 0; i < chunks; {
			src := m.srcBase + uint64(i*ChunkSize)
			dst := m.dstBase + uint64(i*ChunkSize)
			if dst&lineMask == 0 {
				// The prefetching copy touches the destination line so the
				// stores hit; the source line is loaded by the reads anyway,
				// but touching it early hides its fill too.
				m.prefetchAhead(dst, size, m.dstBase)
				m.prefetchAhead(src, size, m.srcBase)
			}
			// Run until the next prefetch point (the next line-aligned chunk).
			g := 1
			for i+g < chunks && (m.dstBase+uint64((i+g)*ChunkSize))&lineMask != 0 {
				g++
			}
			m.copyRun(src, dst, g*wordsPerChunk, wordsPerChunk, loop)
			i += g
		}
	}
	// Tail: byte-at-a-time copy.
	tail := size % ChunkSize
	if tail > 0 {
		off := uint64(size - tail)
		m.hier.ReadRunBytes(m.srcBase+off, tail)
		m.chargeLoop(float64(tail) * m.TailLoop)
		m.hier.WriteRunBytes(m.dstBase+off, tail)
	}
}

// prefetchAhead issues a touch PrefetchDistance lines ahead of addr (capped
// at the end of the buffer) and credits the overlap the lead allows. It
// also touches the current line if the distance is zero.
func (m *Model) prefetchAhead(addr uint64, size int, base uint64) {
	line := uint64(m.line)
	target := addr + uint64(m.PrefetchDistance)*line
	if target >= base+uint64(size) {
		target = addr
	}
	fillCost := m.prefetch(target) - m.prefetchIssue
	if m.PrefetchDistance > 0 && fillCost > 0 {
		// Each line of lead overlaps the fill with the processing of one
		// line (two chunks of loop + word work).
		perLine := 2 * (m.ChunkLoop + float64(wordsPerChunk))
		hidden := float64(m.PrefetchDistance) * perLine
		if hidden > fillCost {
			hidden = fillCost
		}
		m.overlapSavings += hidden
	}
}

func (m *Model) tailRead(base uint64, size int) {
	tail := size % ChunkSize
	if tail > 0 {
		m.chargeLoop(float64(tail) * m.TailLoop)
		m.hier.ReadRunBytes(base+uint64(size-tail), tail)
	}
}

func (m *Model) tailWrite(base uint64, size int) {
	tail := size % ChunkSize
	if tail > 0 {
		m.chargeLoop(float64(tail) * m.TailLoop)
		m.hier.WriteRunBytes(base+uint64(size-tail), tail)
	}
}

func (m *Model) chargeLoop(cycles float64) {
	// Loop overhead dual-issues with the memory operations to a degree
	// already reflected in the calibrated constants; charge directly.
	m.hier.AddCycles(cycles)
}

// pass runs one full pass of the routine and returns its cycle cost.
func (m *Model) pass(r Routine, size int) float64 {
	start := m.hier.Cycles() - m.overlapSavings
	switch r {
	case CustomRead:
		m.readPass(m.srcBase, size)
	case Memset:
		m.writePass(m.srcBase, size, m.LibcChunkLoop, false)
	case NaiveWrite:
		m.writePass(m.srcBase, size, m.ChunkLoop, false)
	case PrefetchWrite:
		m.writePass(m.srcBase, size, m.ChunkLoop, true)
	case LibcMemcpy:
		m.copyPass(size, m.LibcChunkLoop, false)
	case NaiveCopy:
		m.copyPass(size, m.ChunkLoop, false)
	case PrefetchCopy:
		m.copyPass(size, m.ChunkLoop, true)
	default:
		panic(fmt.Sprintf("memmodel: unknown routine %d", int(r)))
	}
	return m.hier.Cycles() - m.overlapSavings - start
}

// TotalTraffic is the amount of data each benchmark point transfers, per
// §6: "the same buffers are used over and over again until eight megabytes
// of data have been transferred."
const TotalTraffic = 8 << 20

// Bandwidth runs routine r over a buffer of the given size until
// TotalTraffic bytes have been transferred, and returns the achieved
// bandwidth in megabytes per second (counting copied bytes once, as the
// paper does). The hierarchy starts cold.
//
// Rather than simulating every pass, Bandwidth simulates passes until two
// consecutive passes cost the same (the hierarchy has reached steady state)
// and extrapolates the remainder; the result is identical because the model
// is deterministic.
func (m *Model) Bandwidth(r Routine, size int) float64 {
	if size <= 0 {
		panic("memmodel: buffer size must be positive")
	}
	m.layout(size)
	m.hier.Flush()
	m.hier.ResetCycles()
	m.overlapSavings = 0

	passes := TotalTraffic / size
	if passes < 1 {
		passes = 1
	}

	var total, prev, prev2 float64
	measured := 0
	const maxMeasured = 8
	for p := 0; p < passes; p++ {
		steady := measured >= 3 && samePassCost(prev, prev2)
		if measured >= maxMeasured || steady {
			// Steady state: extrapolate the remaining passes at the last
			// measured pass cost.
			total += float64(passes-p) * prev
			break
		}
		c := m.pass(r, size)
		total += c
		prev2 = prev
		prev = c
		measured++
	}

	seconds := m.cpu.Cycles(total).Seconds()
	bytes := float64(passes * size)
	return bytes / seconds / 1e6
}

// samePassCost reports whether the last two measured pass costs agree
// closely enough that the hierarchy has reached steady state.
func samePassCost(prev, prev2 float64) bool {
	if prev <= 0 || prev2 <= 0 {
		return false
	}
	diff := prev - prev2
	if diff < 0 {
		diff = -diff
	}
	return diff/prev < 1e-9
}

// Duration returns the virtual time r takes to process size bytes once,
// with a cold hierarchy. Used by kernel models that charge for bulk data
// movement (pipe transfers, packet copies).
func (m *Model) Duration(r Routine, size int) sim.Duration {
	m.layout(size)
	m.hier.Flush()
	m.hier.ResetCycles()
	m.overlapSavings = 0
	c := m.pass(r, size)
	return m.cpu.Cycles(c)
}
