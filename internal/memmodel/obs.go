package memmodel

import "repro/internal/cache"

// ObservedPoint couples one Bandwidth measurement with its cycle
// attribution: which service level the simulated cycles went to, how
// much fill latency prefetching hid, and the hierarchy's traffic
// counters. It is the data behind the `pentiumbench metrics` tables for
// the §6 memory figures.
type ObservedPoint struct {
	// MBs is the achieved bandwidth in MB/s, exactly as Bandwidth
	// returns it: the attribution path is bit-identical in cycles to the
	// fast path (the §8.1 invariant), so observing a point never changes
	// its value.
	MBs float64
	// Breakdown attributes the simulated cycles of the measured passes.
	// Its Total equals SimCycles within float re-association tolerance.
	Breakdown cache.CycleBreakdown
	// Overlap is the fill latency (cycles) hidden by software
	// prefetching across the measured passes; the effective cost the
	// bandwidth derives from subtracts it, so attribution tables show it
	// as a negative row.
	Overlap float64
	// SimCycles is the raw cycle ledger over the measured passes (before
	// steady-state extrapolation).
	SimCycles float64
	// Stats is the hierarchy's traffic over the measured passes.
	Stats cache.Stats
}

// ObservedBandwidth is Bandwidth with cycle attribution attached for the
// duration of the measurement. Traffic counters are reset first so the
// returned Stats cover exactly this point.
func (m *Model) ObservedBandwidth(r Routine, size int) ObservedPoint {
	var b cache.CycleBreakdown
	m.hier.AttachBreakdown(&b)
	defer m.hier.AttachBreakdown(nil)
	m.hier.ResetStats()
	mbs := m.Bandwidth(r, size)
	return ObservedPoint{
		MBs:       mbs,
		Breakdown: b,
		Overlap:   m.overlapSavings,
		SimCycles: m.hier.Cycles(),
		Stats:     m.hier.Stats(),
	}
}
