package memmodel

import (
	"sync"
	"sync/atomic"

	"repro/internal/cache"
	"repro/internal/cpu"
)

// SweepPoint computes the steady-state bandwidth of one (routine, prefetch
// distance, buffer size) sweep point on a fresh hierarchy. It is the unit
// of work the §6 figures repeat across their sweeps, factored out so the
// direct path and the memoized path run exactly the same code.
func SweepPoint(c cpu.CPU, cfg cache.Config, r Routine, dist, size int) float64 {
	m := NewModel(c, cfg)
	m.PrefetchDistance = dist
	return m.Bandwidth(r, size)
}

// RefSweepPoint computes the same sweep point on the per-access reference
// hierarchy (cache.RefHierarchy). It must return a value bit-identical to
// SweepPoint's — that invariant is what certifies the fast path, and
// core's UseRefModel plumbing exercises it across whole suite sweeps.
func RefSweepPoint(c cpu.CPU, cfg cache.Config, r Routine, dist, size int) float64 {
	m := NewRefModel(c, cfg)
	m.PrefetchDistance = dist
	return m.Bandwidth(r, size)
}

// SweepKey identifies one sweep point by the full machine description and
// routine parameters that determine its (deterministic) bandwidth. Both
// cpu.CPU and cache.Config are flat comparable structs, so the key doubles
// as its own machine-description hash: two points collide exactly when
// every calibrated constant, geometry parameter and routine parameter
// agrees, in which case their simulations are identical.
type SweepKey struct {
	CPU      cpu.CPU
	Cache    cache.Config
	Routine  Routine
	Distance int
	Size     int
}

// sweepEntry is one memoized point. The Once gives single-flight
// semantics: concurrent requests for the same key simulate it exactly
// once and everyone else waits for the value.
type sweepEntry struct {
	once sync.Once
	mbs  float64
}

// SweepCache memoizes cache-hierarchy sweep points across a suite run.
// Several exhibits re-simulate identical points — Figure 3's memset curve
// is also ablation A1's "no write-allocate" baseline, Figure 6's memcpy
// likewise, and Figure 5 is ablation A2's distance-1 series — and the
// model is a pure function of the key, so sharing the value cannot change
// any result. A SweepCache is safe for concurrent use.
type SweepCache struct {
	mu      sync.Mutex
	entries map[SweepKey]*sweepEntry
	hits    atomic.Uint64
	misses  atomic.Uint64
}

// NewSweepCache returns an empty memo table.
func NewSweepCache() *SweepCache {
	return &SweepCache{entries: make(map[SweepKey]*sweepEntry)}
}

// Bandwidth returns the bandwidth of the given sweep point, simulating it
// on first request and serving the memoized value afterwards.
func (c *SweepCache) Bandwidth(cpuc cpu.CPU, cfg cache.Config, r Routine, dist, size int) float64 {
	key := SweepKey{CPU: cpuc, Cache: cfg, Routine: r, Distance: dist, Size: size}
	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok {
		e = &sweepEntry{}
		c.entries[key] = e
	}
	c.mu.Unlock()
	computed := false
	e.once.Do(func() {
		e.mbs = SweepPoint(cpuc, cfg, r, dist, size)
		computed = true
	})
	if computed {
		c.misses.Add(1)
	} else {
		c.hits.Add(1)
	}
	return e.mbs
}

// SweepCacheStats reports memo effectiveness for RunStats.
type SweepCacheStats struct {
	// Hits counts requests served without simulating.
	Hits uint64
	// Misses counts points simulated (equals the number of unique keys).
	Misses uint64
}

// Stats returns a snapshot of the hit/miss counters.
func (c *SweepCache) Stats() SweepCacheStats {
	return SweepCacheStats{Hits: c.hits.Load(), Misses: c.misses.Load()}
}
