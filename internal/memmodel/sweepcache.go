package memmodel

import (
	"repro/internal/cache"
	"repro/internal/cpu"
	"repro/internal/memo"
)

// SweepPoint computes the steady-state bandwidth of one (routine, prefetch
// distance, buffer size) sweep point on a fresh hierarchy. It is the unit
// of work the §6 figures repeat across their sweeps, factored out so the
// direct path and the memoized path run exactly the same code.
func SweepPoint(c cpu.CPU, cfg cache.Config, r Routine, dist, size int) float64 {
	h := cache.MustAcquire(cfg)
	defer h.Release()
	m := newModelOn(c, h)
	m.PrefetchDistance = dist
	return m.Bandwidth(r, size)
}

// RefSweepPoint computes the same sweep point on the per-access reference
// hierarchy (cache.RefHierarchy). It must return a value bit-identical to
// SweepPoint's — that invariant is what certifies the fast path, and
// core's UseRefModel plumbing exercises it across whole suite sweeps.
func RefSweepPoint(c cpu.CPU, cfg cache.Config, r Routine, dist, size int) float64 {
	m := NewRefModel(c, cfg)
	m.PrefetchDistance = dist
	return m.Bandwidth(r, size)
}

// SweepKey identifies one sweep point by the full machine description and
// routine parameters that determine its (deterministic) bandwidth. Both
// cpu.CPU and cache.Config are flat comparable structs, so the key doubles
// as its own machine-description hash: two points collide exactly when
// every calibrated constant, geometry parameter and routine parameter
// agrees, in which case their simulations are identical.
type SweepKey struct {
	CPU      cpu.CPU
	Cache    cache.Config
	Routine  Routine
	Distance int
	Size     int
}

// SweepCache memoizes cache-hierarchy sweep points across a suite run.
// Several exhibits re-simulate identical points — Figure 3's memset curve
// is also ablation A1's "no write-allocate" baseline, Figure 6's memcpy
// likewise, and Figure 5 is ablation A2's distance-1 series — and the
// model is a pure function of the key, so sharing the value cannot change
// any result. It is a thin wrapper over the generic single-flight
// memo.Table, keeping the domain-typed API. A SweepCache is safe for
// concurrent use.
type SweepCache struct {
	table *memo.Table[SweepKey, float64]
}

// NewSweepCache returns an empty memo table.
func NewSweepCache() *SweepCache {
	return &SweepCache{table: memo.NewTable[SweepKey, float64]()}
}

// Bandwidth returns the bandwidth of the given sweep point, simulating it
// on first request and serving the memoized value afterwards.
func (c *SweepCache) Bandwidth(cpuc cpu.CPU, cfg cache.Config, r Routine, dist, size int) float64 {
	key := SweepKey{CPU: cpuc, Cache: cfg, Routine: r, Distance: dist, Size: size}
	return c.table.Do(key, func() float64 {
		return SweepPoint(cpuc, cfg, r, dist, size)
	})
}

// SweepCacheStats reports memo effectiveness for RunStats.
type SweepCacheStats struct {
	// Hits counts requests served without simulating.
	Hits uint64
	// Misses counts points simulated (equals the number of unique keys).
	Misses uint64
}

// Stats returns a snapshot of the hit/miss counters.
func (c *SweepCache) Stats() SweepCacheStats {
	s := c.table.Stats()
	return SweepCacheStats{Hits: s.Hits, Misses: s.Misses}
}
