package memmodel

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/cpu"
)

// These tests pin the "X resembles Y" relations the paper states between
// whole figures, point by point across the sweep.

func sweep() []int {
	return []int{256, 1 << 10, 4 << 10, 8 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20}
}

func curve(r Routine) []float64 {
	out := make([]float64, 0, len(sweep()))
	for _, s := range sweep() {
		m := NewModel(cpu.PentiumP54C100(), cache.PentiumConfig())
		out = append(out, m.Bandwidth(r, s))
	}
	return out
}

func TestFigure4ResemblesFigure3(t *testing.T) {
	// §6.2: the naive custom write results "are very similar to the
	// system memset() results" at every size.
	memset, naive := curve(Memset), curve(NaiveWrite)
	for i, s := range sweep() {
		if naive[i] < memset[i]*0.85 || naive[i] > memset[i]*1.15 {
			t.Errorf("at %d bytes: naive %.1f vs memset %.1f", s, naive[i], memset[i])
		}
	}
}

func TestFigure7ResemblesFigure6(t *testing.T) {
	// §6.3: the naive custom copy resembles memcpy at every size.
	memcpy, naive := curve(LibcMemcpy), curve(NaiveCopy)
	for i, s := range sweep() {
		if naive[i] < memcpy[i]*0.85 || naive[i] > memcpy[i]*1.15 {
			t.Errorf("at %d bytes: naive %.1f vs memcpy %.1f", s, naive[i], memcpy[i])
		}
	}
}

func TestPrefetchNeverLosesInCache(t *testing.T) {
	// Within the L1 working set the prefetching variants must dominate
	// their naive counterparts by a wide margin.
	for _, pair := range [][2]Routine{{NaiveWrite, PrefetchWrite}, {NaiveCopy, PrefetchCopy}} {
		for _, size := range []int{1 << 10, 2 << 10} {
			m1 := NewModel(cpu.PentiumP54C100(), cache.PentiumConfig())
			m2 := NewModel(cpu.PentiumP54C100(), cache.PentiumConfig())
			naive := m1.Bandwidth(pair[0], size)
			pref := m2.Bandwidth(pair[1], size)
			if pref < 3*naive {
				t.Errorf("%v at %d: %.1f not ≫ naive %.1f", pair[1], size, pref, naive)
			}
		}
	}
}

func TestReadKneesAtCacheSizes(t *testing.T) {
	// The knees must sit at the cache capacities: bandwidth just inside
	// each level is much higher than just outside.
	in8k := NewModel(cpu.PentiumP54C100(), cache.PentiumConfig()).Bandwidth(CustomRead, 8<<10)
	out8k := NewModel(cpu.PentiumP54C100(), cache.PentiumConfig()).Bandwidth(CustomRead, 12<<10)
	if in8k < 2*out8k {
		t.Errorf("no L1 knee: %.1f inside vs %.1f outside", in8k, out8k)
	}
	in256k := NewModel(cpu.PentiumP54C100(), cache.PentiumConfig()).Bandwidth(CustomRead, 255<<10)
	out256k := NewModel(cpu.PentiumP54C100(), cache.PentiumConfig()).Bandwidth(CustomRead, 384<<10)
	if in256k < 1.2*out256k {
		t.Errorf("no L2 knee: %.1f inside vs %.1f outside", in256k, out256k)
	}
}

func TestHierarchyStatsExposed(t *testing.T) {
	m := NewModel(cpu.PentiumP54C100(), cache.PentiumConfig())
	m.Bandwidth(Memset, 64<<10)
	st := m.Hierarchy().Stats()
	if st.MemWordWrites == 0 {
		t.Fatal("memset should report bus writes")
	}
	if st.PrefetchesIssued != 0 {
		t.Fatal("memset issues no prefetches")
	}
	m2 := NewModel(cpu.PentiumP54C100(), cache.PentiumConfig())
	m2.Bandwidth(PrefetchWrite, 64<<10)
	if m2.Hierarchy().Stats().PrefetchesIssued == 0 {
		t.Fatal("prefetch write issued no prefetches")
	}
}

func TestUnknownRoutinePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown routine did not panic")
		}
	}()
	m := NewModel(cpu.PentiumP54C100(), cache.PentiumConfig())
	m.Bandwidth(Routine(42), 1024)
}
