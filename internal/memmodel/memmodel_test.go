package memmodel

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/cpu"
)

func model() *Model { return NewModel(cpu.PentiumP54C100(), cache.PentiumConfig()) }

// within reports whether v lies in [lo, hi].
func within(v, lo, hi float64) bool { return v >= lo && v <= hi }

func TestReadPlateaus(t *testing.T) {
	// Paper Figure 2: ~300 MB/s from L1, ~110 MB/s from L2, ~75 MB/s from
	// memory, with knees at 8 KB and 256 KB.
	cases := []struct {
		size   int
		lo, hi float64
	}{
		{2 << 10, 280, 330},
		{8 << 10, 280, 330},
		{32 << 10, 100, 120},
		{128 << 10, 100, 120},
		{1 << 20, 70, 80},
		{8 << 20, 70, 80},
	}
	for _, c := range cases {
		bw := model().Bandwidth(CustomRead, c.size)
		if !within(bw, c.lo, c.hi) {
			t.Errorf("read %d KB: %.1f MB/s, want [%v, %v]", c.size/1024, bw, c.lo, c.hi)
		}
	}
}

func TestMemsetIsFlatAndSlow(t *testing.T) {
	// Paper Figure 3: memset "did not reach even 50 megabytes/second" at
	// any size, because writes never allocate.
	var prev float64
	for _, size := range []int{1 << 10, 8 << 10, 64 << 10, 1 << 20, 8 << 20} {
		bw := model().Bandwidth(Memset, size)
		if bw >= 50 {
			t.Errorf("memset %d KB: %.1f MB/s, want < 50", size/1024, bw)
		}
		if prev != 0 && !within(bw, prev*0.9, prev*1.1) {
			t.Errorf("memset curve not flat: %.1f then %.1f", prev, bw)
		}
		prev = bw
	}
}

func TestNaiveWriteMatchesMemset(t *testing.T) {
	// Paper §6.2: the naive custom write results "are very similar to the
	// system memset() results".
	for _, size := range []int{4 << 10, 512 << 10} {
		ms := model().Bandwidth(Memset, size)
		nw := model().Bandwidth(NaiveWrite, size)
		if !within(nw, ms*0.85, ms*1.15) {
			t.Errorf("size %d: naive write %.1f vs memset %.1f, want within 15%%", size, nw, ms)
		}
	}
}

func TestPrefetchWritePeak(t *testing.T) {
	// Paper §6.2: "The peak write bandwidth improved to 310 MB/s."
	bw := model().Bandwidth(PrefetchWrite, 4<<10)
	if !within(bw, 280, 340) {
		t.Errorf("prefetch write peak = %.1f MB/s, want ~310", bw)
	}
	// And it must beat the naive write by roughly the paper's huge factor.
	naive := model().Bandwidth(NaiveWrite, 4<<10)
	if bw < 5*naive {
		t.Errorf("prefetch write %.1f not dramatically faster than naive %.1f", bw, naive)
	}
}

func TestMemcpyAbout40(t *testing.T) {
	// Paper §6: "the same routines copy data at about 40 megabytes/second"
	// without prefetching.
	bw := model().Bandwidth(LibcMemcpy, 4<<10)
	if !within(bw, 33, 48) {
		t.Errorf("memcpy = %.1f MB/s, want ~40", bw)
	}
	nc := model().Bandwidth(NaiveCopy, 4<<10)
	if !within(nc, bw*0.9, bw*1.1) {
		t.Errorf("naive copy %.1f should resemble memcpy %.1f", nc, bw)
	}
}

func TestPrefetchCopyPeak(t *testing.T) {
	// Paper §6.3: "a peak of over 160 megabytes/second in copy bandwidth".
	bw := model().Bandwidth(PrefetchCopy, 4<<10)
	if !within(bw, 150, 185) {
		t.Errorf("prefetch copy peak = %.1f MB/s, want ~160-170", bw)
	}
}

func TestPrefetchCopyApproachesReadBandwidth(t *testing.T) {
	// Paper §6.3: 160 MB/s copy = 320 MB/s total, "which approaches the
	// peak set by the custom read routine" (~300).
	copyBW := model().Bandwidth(PrefetchCopy, 4<<10)
	readBW := model().Bandwidth(CustomRead, 4<<10)
	total := 2 * copyBW
	if !within(total, readBW*0.9, readBW*1.25) {
		t.Errorf("prefetch copy total %.1f should approach read peak %.1f", total, readBW)
	}
}

func TestTailLoopDip(t *testing.T) {
	// Paper §6.4: when 15 bytes fall into the byte-at-a-time tail loop,
	// bandwidth dips for small buffers.
	aligned := model().Bandwidth(CustomRead, 512)
	ragged := model().Bandwidth(CustomRead, 512+15)
	if ragged >= aligned*0.9 {
		t.Errorf("15-byte tail: %.1f vs aligned %.1f; want a visible dip", ragged, aligned)
	}
	// The dip fades for large buffers, where the tail is amortised.
	alignedBig := model().Bandwidth(CustomRead, 1<<20)
	raggedBig := model().Bandwidth(CustomRead, 1<<20+15)
	if raggedBig < alignedBig*0.98 {
		t.Errorf("tail dip did not amortise at 1 MB: %.1f vs %.1f", raggedBig, alignedBig)
	}
}

func TestWriteAllocateAblation(t *testing.T) {
	// DESIGN.md A1: with a write-allocate cache, memset jumps to
	// read-class bandwidth for cached sizes.
	cfg := cache.PentiumConfig()
	cfg.WriteAllocate = true
	m := NewModel(cpu.PentiumP54C100(), cfg)
	bw := m.Bandwidth(Memset, 4<<10)
	if bw < 200 {
		t.Errorf("write-allocate memset = %.1f MB/s, want read-class (>200)", bw)
	}
}

func TestCopyBandwidthCountsBytesOnce(t *testing.T) {
	// A copy of N bytes reports N bytes moved (paper convention), so a
	// copy can never beat a read of the same working set by more than 2x.
	copyBW := model().Bandwidth(PrefetchCopy, 2<<10)
	readBW := model().Bandwidth(CustomRead, 2<<10)
	if copyBW > readBW {
		t.Errorf("copy %.1f MB/s exceeds read %.1f MB/s; accounting wrong", copyBW, readBW)
	}
}

func TestBandwidthDeterminism(t *testing.T) {
	a := model().Bandwidth(PrefetchCopy, 48<<10)
	b := model().Bandwidth(PrefetchCopy, 48<<10)
	if a != b {
		t.Fatalf("bandwidth not deterministic: %v vs %v", a, b)
	}
}

func TestBandwidthPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Bandwidth(0) did not panic")
		}
	}()
	model().Bandwidth(CustomRead, 0)
}

func TestDurationPositiveAndScales(t *testing.T) {
	m := model()
	d1 := m.Duration(LibcMemcpy, 4<<10)
	d2 := m.Duration(LibcMemcpy, 64<<10)
	if d1 <= 0 || d2 <= 0 {
		t.Fatalf("durations must be positive: %v, %v", d1, d2)
	}
	if d2 < 8*d1 {
		t.Errorf("64 KB copy (%v) should cost ≳16x the 4 KB copy (%v)", d2, d1)
	}
}

func TestRoutineStrings(t *testing.T) {
	for r := CustomRead; r <= PrefetchCopy; r++ {
		if r.String() == "" {
			t.Errorf("routine %d has empty name", int(r))
		}
	}
	if Routine(99).String() != "Routine(99)" {
		t.Errorf("unknown routine String() = %q", Routine(99).String())
	}
	if !LibcMemcpy.IsCopy() || CustomRead.IsCopy() {
		t.Error("IsCopy misclassifies routines")
	}
}

func TestPrefetchDistanceAblation(t *testing.T) {
	// DESIGN.md A2: beyond the caches, more lookahead hides more fill
	// latency, up to the point where the fill is fully hidden.
	var prev float64
	for _, d := range []int{0, 1, 2, 4} {
		m := model()
		m.PrefetchDistance = d
		bw := m.Bandwidth(PrefetchWrite, 2<<20)
		if d > 0 && bw < prev {
			t.Errorf("distance %d bandwidth %.1f dropped below distance-smaller %.1f", d, bw, prev)
		}
		prev = bw
	}
}
