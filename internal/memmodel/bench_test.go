package memmodel

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/cpu"
)

// BenchmarkMemmodelPass times one cold pass of each §6 routine over a
// 1 MB buffer, on the fast line-granular hierarchy and on the per-access
// reference — the per-point cost the memory sweeps pay at large sizes.
// EXPERIMENTS.md's "Harness performance" appendix records measured
// before/after numbers.
func BenchmarkMemmodelPass(b *testing.B) {
	const size = 1 << 20
	impls := []struct {
		name string
		mk   func() *Model
	}{
		{"fast", func() *Model { return NewModel(cpu.PentiumP54C100(), cache.PentiumConfig()) }},
		{"ref", func() *Model { return NewRefModel(cpu.PentiumP54C100(), cache.PentiumConfig()) }},
	}
	for _, impl := range impls {
		for r := CustomRead; r <= PrefetchCopy; r++ {
			b.Run(impl.name+"/"+r.String(), func(b *testing.B) {
				m := impl.mk()
				b.SetBytes(size)
				for i := 0; i < b.N; i++ {
					m.Duration(r, size)
				}
			})
		}
	}
}
