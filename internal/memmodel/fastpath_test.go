package memmodel

import (
	"fmt"
	"testing"

	"repro/internal/cache"
	"repro/internal/cpu"
)

// Model-level differential: every routine, driven through the run-length
// fast path and through the per-access reference hierarchy, must produce
// bit-identical bandwidths and traffic stats. The sizes mix L1-resident,
// L2-resident and memory-bound working sets plus ragged tails (§6.4), and
// both write-allocate policies run.
func TestModelFastVsRefAllRoutines(t *testing.T) {
	sizes := []int{527, 4 << 10, 33 << 10, (512 << 10) + 15}
	if testing.Short() {
		sizes = []int{527, 4 << 10}
	}
	for _, wa := range []bool{false, true} {
		cfg := cache.PentiumConfig()
		cfg.WriteAllocate = wa
		for r := CustomRead; r <= PrefetchCopy; r++ {
			for _, size := range sizes {
				t.Run(fmt.Sprintf("%v/writeAlloc=%v/size%d", r, wa, size), func(t *testing.T) {
					fast := NewModel(cpu.PentiumP54C100(), cfg)
					ref := NewRefModel(cpu.PentiumP54C100(), cfg)
					fb, rb := fast.Bandwidth(r, size), ref.Bandwidth(r, size)
					if fb != rb {
						t.Errorf("bandwidth fast=%v ref=%v (Δ %v)", fb, rb, fb-rb)
					}
					if fs, rs := fast.Hierarchy().Stats(), ref.Hierarchy().Stats(); fs != rs {
						t.Errorf("stats diverge\nfast: %+v\nref:  %+v", fs, rs)
					}
				})
			}
		}
	}
}

// RefSweepPoint is the exported certification hook; it must agree with
// SweepPoint bit for bit.
func TestRefSweepPointMatchesSweepPoint(t *testing.T) {
	c := cpu.PentiumP54C100()
	cfg := cache.PentiumConfig()
	for _, dist := range []int{0, 1, 4} {
		for _, size := range []int{512, 8 << 10, 64 << 10} {
			fast := SweepPoint(c, cfg, PrefetchWrite, dist, size)
			ref := RefSweepPoint(c, cfg, PrefetchWrite, dist, size)
			if fast != ref {
				t.Errorf("dist %d size %d: SweepPoint=%v RefSweepPoint=%v", dist, size, fast, ref)
			}
		}
	}
}

// --- Bandwidth steady-state extrapolation (samePassCost edge cases) ---

func TestSamePassCost(t *testing.T) {
	cases := []struct {
		prev, prev2 float64
		want        bool
	}{
		{0, 100, false},                // zero cost never counts as converged
		{100, 0, false},                //
		{-5, -5, false},                // negative costs are not steady state
		{100, 100, true},               // exact agreement
		{100, 100.000001, false},       // 1e-8 relative: too far apart
		{100, 100 * (1 + 1e-10), true}, // inside the 1e-9 band
		{100, 100 * (1 - 1e-10), true}, // band is symmetric
		{1e-300, 1e-300, true},         // tiny but positive and equal
	}
	for _, c := range cases {
		if got := samePassCost(c.prev, c.prev2); got != c.want {
			t.Errorf("samePassCost(%v, %v) = %v, want %v", c.prev, c.prev2, got, c.want)
		}
	}
}

// fullBandwidth replicates Bandwidth with every pass simulated — no
// steady-state extrapolation, no maxMeasured cap — as an oracle.
func fullBandwidth(m *Model, r Routine, size int) float64 {
	m.layout(size)
	m.hier.Flush()
	m.hier.ResetCycles()
	m.overlapSavings = 0
	passes := TotalTraffic / size
	if passes < 1 {
		passes = 1
	}
	var total float64
	for p := 0; p < passes; p++ {
		total += m.pass(r, size)
	}
	seconds := m.cpu.Cycles(total).Seconds()
	return float64(passes*size) / seconds / 1e6
}

// The extrapolated bandwidth must match the full simulation: once two
// consecutive passes cost the same the model is in steady state, so
// charging the remaining passes at that cost loses only float rounding
// (repeated addition vs one multiply, plus samePassCost's 1e-9 relative
// band, amplified across up to 8192 extrapolated passes — hence the 1e-6
// tolerance; observed divergence is ~2e-8).
func TestBandwidthExtrapolationMatchesFullSimulation(t *testing.T) {
	sizes := []int{1 << 10, 4 << 10, 12 << 10, 48 << 10}
	routines := []Routine{CustomRead, Memset, PrefetchCopy}
	if testing.Short() {
		sizes = sizes[:2]
		routines = routines[:2]
	}
	for _, r := range routines {
		for _, size := range sizes {
			got := model().Bandwidth(r, size)
			want := fullBandwidth(model(), r, size)
			rel := (got - want) / want
			if rel < 0 {
				rel = -rel
			}
			if rel > 1e-6 {
				t.Errorf("%v at %d bytes: extrapolated %v vs full %v (rel %v)", r, size, got, want, rel)
			}
		}
	}
}

// A buffer at least as large as TotalTraffic is a single cold pass: the
// extrapolation never engages and Bandwidth must equal the oracle exactly.
func TestBandwidthSinglePassIsExact(t *testing.T) {
	for _, size := range []int{TotalTraffic, 2 * TotalTraffic} {
		got := model().Bandwidth(CustomRead, size)
		want := fullBandwidth(model(), CustomRead, size)
		if got != want {
			t.Errorf("size %d: Bandwidth %v != single-pass oracle %v", size, got, want)
		}
	}
}

// Convergence before maxMeasured: a small resident buffer reaches steady
// state on pass 2, so the measured-pass loop must stop early — the whole
// point of the extrapolation. Observe it through the cycle ledger: the
// hierarchy's counter only advances for simulated passes.
func TestBandwidthStopsMeasuringAtSteadyState(t *testing.T) {
	m := model()
	size := 1 << 10 // L1-resident: passes = 8192, steady after pass 2
	m.Bandwidth(CustomRead, size)
	perPass := float64(size/ChunkSize) * (m.ChunkLoop + float64(wordsPerChunk)) // lower bound on one pass
	maxPlausible := 10 * perPass * 8                                            // « 8192 passes' worth
	if c := m.hier.Cycles(); c > maxPlausible {
		t.Errorf("hierarchy simulated %v cycles; steady-state cutoff did not engage (limit %v)", c, maxPlausible)
	}
}
