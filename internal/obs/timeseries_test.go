package obs

import (
	"encoding/json"
	"testing"

	"repro/internal/sim"
)

func TestSamplerCounterWindowsSumToTotal(t *testing.T) {
	s := NewSampler(10 * sim.Microsecond)
	c := s.Counter("ops")
	times := []sim.Time{0, 5_000, 10_000, 19_999, 20_000, 95_000}
	for i, at := range times {
		c.Add(at, int64(i+1))
	}
	ts := s.Snapshot(100_000)
	if ts.Windows != 11 {
		t.Fatalf("windows = %d, want 11", ts.Windows)
	}
	got, ok := ts.CounterTotal("ops")
	if !ok || got != 21 {
		t.Fatalf("CounterTotal = %d,%v want 21,true", got, ok)
	}
	if c.Total() != 21 {
		t.Fatalf("Total = %d, want 21", c.Total())
	}
	want := []int64{1 + 2, 3 + 4, 5, 0, 0, 0, 0, 0, 0, 6, 0}
	for w, v := range want {
		if ts.Counters[0].Values[w] != v {
			t.Fatalf("window %d = %d, want %d", w, ts.Counters[0].Values[w], v)
		}
	}
}

func TestSamplerGaugeCarryForward(t *testing.T) {
	s := NewSampler(10)
	g := s.Gauge("depth")
	g.Set(5, 7)  // window 0
	g.Set(8, 3)  // window 0: last 3, max 7
	g.Set(35, 9) // window 3
	ts := s.Snapshot(59) // 6 windows
	gs := ts.Gauges[0]
	wantLast := []int64{3, 3, 3, 9, 9, 9}
	wantMax := []int64{7, 3, 3, 9, 9, 9}
	for w := range wantLast {
		if gs.Last[w] != wantLast[w] || gs.Max[w] != wantMax[w] {
			t.Fatalf("window %d: last=%d max=%d, want %d/%d",
				w, gs.Last[w], gs.Max[w], wantLast[w], wantMax[w])
		}
	}
}

func TestSamplerGaugeMaxIncludesCarryIn(t *testing.T) {
	s := NewSampler(10)
	g := s.Gauge("depth")
	g.Set(1, 50) // window 0
	g.Set(15, 2) // window 1 sampled below the carried-in 50
	ts := s.Snapshot(19)
	gs := ts.Gauges[0]
	if gs.Max[1] != 50 {
		t.Fatalf("window 1 max = %d, want carried-in 50", gs.Max[1])
	}
	if gs.Last[1] != 2 {
		t.Fatalf("window 1 last = %d, want 2", gs.Last[1])
	}
}

func TestSamplerHistWindowedQuantiles(t *testing.T) {
	s := NewSampler(1000)
	h := s.Hist("lat")
	// Window 0: values 1..100 (all below 32 exact or bucketed).
	for v := int64(1); v <= 100; v++ {
		h.Observe(sim.Time(v), v)
	}
	// Window 2: constant 7.
	for i := 0; i < 10; i++ {
		h.Observe(2500, 7)
	}
	ts := s.Snapshot(2999)
	hs := ts.Hists[0]
	if len(hs.Windows) != 2 {
		t.Fatalf("flushed windows = %d, want 2", len(hs.Windows))
	}
	w0, w2 := hs.Windows[0], hs.Windows[1]
	if w0.Window != 0 || w2.Window != 2 {
		t.Fatalf("window indices = %d,%d want 0,2", w0.Window, w2.Window)
	}
	if w0.N != 100 || w0.Sum != 5050 || w0.Max != 100 {
		t.Fatalf("w0 = %+v", w0)
	}
	if w2.N != 10 || w2.Sum != 70 || w2.P50 != 7 || w2.P99 != 7 {
		t.Fatalf("w2 = %+v", w2)
	}
	// Conservation across windows.
	var n uint64
	var sum int64
	for _, w := range hs.Windows {
		n += w.N
		sum += w.Sum
	}
	if n != 110 || sum != 5120 {
		t.Fatalf("window totals n=%d sum=%d, want 110/5120", n, sum)
	}
}

func TestSamplerHistNonMonotoneFoldsIntoOpenWindow(t *testing.T) {
	s := NewSampler(10)
	h := s.Hist("lat")
	h.Observe(25, 1) // window 2
	h.Observe(5, 2)  // stray earlier time: folds into window 2
	ts := s.Snapshot(29)
	hs := ts.Hists[0]
	if len(hs.Windows) != 1 || hs.Windows[0].Window != 2 || hs.Windows[0].N != 2 {
		t.Fatalf("windows = %+v, want one window 2 with n=2", hs.Windows)
	}
}

func TestSamplerSnapshotDeterministicJSON(t *testing.T) {
	build := func() TimeSeries {
		s := NewSampler(100)
		s.Counter("b").Add(50, 1)
		s.Counter("a").Add(150, 2)
		s.Gauge("g").Set(10, 5)
		s.Hist("h").Observe(20, 30)
		return s.Snapshot(199)
	}
	j1, err := json.Marshal(build())
	if err != nil {
		t.Fatal(err)
	}
	j2, _ := json.Marshal(build())
	if string(j1) != string(j2) {
		t.Fatalf("snapshot JSON not deterministic:\n%s\n%s", j1, j2)
	}
	if ts := build(); ts.Counters[0].Name != "a" || ts.Counters[1].Name != "b" {
		t.Fatal("counter series not name-sorted")
	}
}

func TestSamplerFlatten(t *testing.T) {
	s := NewSampler(10)
	s.Counter("c").Add(5, 3)
	s.Gauge("g").Set(5, 2)
	s.Hist("h").Observe(15, 40)
	ts := s.Snapshot(19)
	flat := ts.Flatten()
	names := make([]string, len(flat))
	for i, f := range flat {
		names[i] = f.Name
		if len(f.Values) != ts.Windows {
			t.Fatalf("series %s length %d, want %d", f.Name, len(f.Values), ts.Windows)
		}
	}
	want := []string{"c", "g", "g.max", "h.count", "h.max", "h.p50", "h.p99", "h.sum"}
	if len(names) != len(want) {
		t.Fatalf("flat series %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("flat series %v, want %v", names, want)
		}
	}
}

// TestSamplerDisabledZeroAllocs pins the disabled path to zero
// allocations, like the recorder's and registry's: a nil sampler hands
// out nil handles whose methods no-op.
func TestSamplerDisabledZeroAllocs(t *testing.T) {
	var s *Sampler
	c := s.Counter("x")
	g := s.Gauge("y")
	h := s.Hist("z")
	allocs := testing.AllocsPerRun(100, func() {
		c.Add(123, 4)
		c.Inc(456)
		g.Set(789, 1)
		h.Observe(1000, 2)
		_ = s.Width()
		_ = c.Total()
	})
	if allocs != 0 {
		t.Fatalf("disabled sampler path allocates %v per op, want 0", allocs)
	}
	if ts := s.Snapshot(100); ts.Windows != 0 || len(ts.Counters) != 0 {
		t.Fatalf("nil sampler snapshot = %+v, want zero", ts)
	}
}
