package obs

import (
	"encoding/json"
	"testing"

	"repro/internal/sim"
	"repro/internal/stats"
)

// mkEx builds a completed exemplar whose phase sum equals its lifetime
// by construction.
func mkEx(id uint64, issue, wire, queue, cpu int64) Exemplar {
	end := issue + wire + queue + cpu
	return Exemplar{
		ID: id, Client: int32(id % 7), Class: "read", Sends: 1, Tier: -1,
		IssueNs: issue, EnqNs: issue + wire, StartNs: issue + wire + queue,
		EndNs: end, WireNs: wire, QueueNs: queue, CPUNs: cpu,
	}
}

func TestExemplarsDisabledZeroAllocs(t *testing.T) {
	var x *Exemplars
	e := mkEx(1, 0, 10, 20, 30)
	allocs := testing.AllocsPerRun(1000, func() {
		x.Offer(e)
	})
	if allocs != 0 {
		t.Fatalf("disabled Offer allocates %v/op, want 0", allocs)
	}
	if x.Offered() != 0 || x.Dropped() != 0 || x.Snapshot() != nil || x.Width() != 0 {
		t.Fatal("nil reservoir must report zero state")
	}
}

func TestExemplarsPerWindowBoundAndDeterminism(t *testing.T) {
	const k, width = 4, 1000
	build := func() *Exemplars {
		x := NewExemplars(42, k, width)
		// 3 windows × 50 offers each, latencies spread over two octaves.
		for w := int64(0); w < 3; w++ {
			for i := int64(0); i < 50; i++ {
				id := uint64(w*50 + i + 1)
				x.Offer(mkEx(id, w*width+i, 100+i*37, 5, 10))
			}
		}
		return x
	}
	a, b := build(), build()
	aj, _ := json.Marshal(a.Snapshot())
	bj, _ := json.Marshal(b.Snapshot())
	if string(aj) != string(bj) {
		t.Fatal("same seed + same offers must select identical exemplars")
	}
	if a.Offered() != 150 {
		t.Fatalf("offered = %d, want 150", a.Offered())
	}
	var kept int64
	seen := map[int]bool{}
	for _, w := range a.Snapshot() {
		if seen[w.Window] {
			t.Fatalf("duplicate window %d in snapshot", w.Window)
		}
		seen[w.Window] = true
		if len(w.Exemplars) > k {
			t.Fatalf("window %d keeps %d exemplars, want <= %d", w.Window, len(w.Exemplars), k)
		}
		kept += int64(len(w.Exemplars))
		for i, e := range w.Exemplars {
			if e.PhaseSum() != e.LatencyNs {
				t.Fatalf("exemplar %d: phase sum %d != latency %d", e.ID, e.PhaseSum(), e.LatencyNs)
			}
			if e.Bucket != stats.BucketIndex(e.LatencyNs) {
				t.Fatalf("exemplar %d: bucket %d, want %d", e.ID, e.Bucket, stats.BucketIndex(e.LatencyNs))
			}
			if e.Window != w.Window {
				t.Fatalf("exemplar %d filed under window %d, tagged %d", e.ID, w.Window, e.Window)
			}
			if i > 0 && w.Exemplars[i-1].LatencyNs < e.LatencyNs {
				t.Fatal("exemplars not sorted slowest first")
			}
		}
	}
	if a.Dropped() != a.Offered()-kept {
		t.Fatalf("dropped = %d, want offered-kept = %d", a.Dropped(), a.Offered()-kept)
	}

	// A different seed must (for this population) select a different set.
	c := NewExemplars(43, k, width)
	for w := int64(0); w < 3; w++ {
		for i := int64(0); i < 50; i++ {
			id := uint64(w*50 + i + 1)
			c.Offer(mkEx(id, w*width+i, 100+i*37, 5, 10))
		}
	}
	cj, _ := json.Marshal(c.Snapshot())
	if string(cj) == string(aj) {
		t.Fatal("different seeds selected identical exemplar sets")
	}
}

func TestExemplarsOrderIndependent(t *testing.T) {
	// Selection must be a pure function of the offered set within a
	// window, not of offer order.
	offers := make([]Exemplar, 0, 40)
	for i := int64(0); i < 40; i++ {
		offers = append(offers, mkEx(uint64(i+1), i, 50+i*91%400, 3, 7))
	}
	fwd := NewExemplars(7, 3, 1<<20)
	rev := NewExemplars(7, 3, 1<<20)
	for _, e := range offers {
		fwd.Offer(e)
	}
	for i := len(offers) - 1; i >= 0; i-- {
		rev.Offer(offers[i])
	}
	fj, _ := json.Marshal(fwd.Snapshot())
	rj, _ := json.Marshal(rev.Snapshot())
	if string(fj) != string(rj) {
		t.Fatal("offer order changed the selected exemplar set")
	}
}

func TestExemplarsTailBias(t *testing.T) {
	// With K=8 from 9 fast (1µs) and 1 slow (10ms) request per window,
	// the slow request must essentially always be retained: its weight is
	// 10^4 times any competitor's.
	x := NewExemplars(99, 8, sim.Millisecond*100)
	var slowIDs []uint64
	for w := int64(0); w < 20; w++ {
		base := w * 100 * int64(sim.Millisecond)
		for i := int64(0); i < 9; i++ {
			x.Offer(mkEx(uint64(w*10+i+1), base+i, 500, 200, 300))
		}
		slow := uint64(w*10 + 10)
		slowIDs = append(slowIDs, slow)
		x.Offer(mkEx(slow, base+50, int64(sim.Millisecond)*9, int64(sim.Millisecond), 0))
	}
	snap := x.Snapshot()
	if len(snap) == 0 {
		t.Fatal("no windows retained")
	}
	hits := 0
	for i, w := range snap {
		for _, e := range w.Exemplars {
			if e.ID == slowIDs[i] {
				hits++
			}
		}
	}
	if hits < 18 {
		t.Fatalf("slow request retained in %d/20 windows, want >= 18 (tail bias)", hits)
	}
}

func TestExemplarTracksRendersSpans(t *testing.T) {
	rec := NewRing(sim.NewWheel().Clock(), 1<<10)
	wins := []ExemplarWindow{{Window: 0, Exemplars: []Exemplar{
		mkEx(5, 100, 10, 20, 30),
		{ID: 9, Class: "write", Shed: true, Sends: 8, Tier: 5,
			IssueNs: 0, EnqNs: -1, StartNs: -1, EndNs: 400,
			WireNs: 300, RTONs: 100, LatencyNs: 400},
	}}}
	ExemplarTracks(rec, wins)
	p := rec.Capture("test")
	var names []string
	for _, tr := range p.Tracks {
		names = append(names, tr)
	}
	found := map[string]bool{}
	for _, n := range names {
		found[n] = true
	}
	if !found["req 5"] || !found["req 9"] {
		t.Fatalf("per-request tracks missing: %v", names)
	}
	var spans, instants int
	for _, e := range p.Events {
		switch e.Kind {
		case EvBegin:
			spans++
		case EvInstant:
			instants++
		}
	}
	if spans < 4 {
		t.Fatalf("%d spans rendered, want >= 4 (net/queue/cpu/reply)", spans)
	}
	if instants != 1 {
		t.Fatalf("%d instants, want 1 shed marker", instants)
	}
	// Nil recorder is inert.
	ExemplarTracks(nil, wins)
}
