package obs

import (
	"encoding/json"
	"fmt"
	"sort"
)

// The JSON form of a Snapshot is the persistence format of the baseline
// harness (BENCH_baseline.json) and a convenient interchange format on
// its own. It is an object of two name-keyed objects:
//
//	{"counters":{"fs.phase_us.vfs":7078.5,...},
//	 "dists":{"disk.seek_us":{"count":3,"sum":11,"min":1,"max":8},...}}
//
// Keys are emitted in sorted order (the snapshot's own invariant), and
// float64 values round-trip exactly: encoding/json renders the shortest
// representation that re-parses to the same bits, so
// Marshal → Unmarshal → Marshal is byte-stable and Equal-preserving.

// jsonDist is the wire form of one distribution.
type jsonDist struct {
	Count uint64  `json:"count"`
	Sum   float64 `json:"sum"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
}

// MarshalJSON renders the snapshot with sorted keys. A zero snapshot
// marshals as {"counters":{},"dists":{}}.
func (s Snapshot) MarshalJSON() ([]byte, error) {
	buf := []byte(`{"counters":{`)
	for i, c := range s.Counters {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = appendQuoteJSON(buf, c.Name)
		buf = append(buf, ':')
		v, err := json.Marshal(c.Value)
		if err != nil {
			return nil, fmt.Errorf("obs: counter %s: %w", c.Name, err)
		}
		buf = append(buf, v...)
	}
	buf = append(buf, `},"dists":{`...)
	for i, d := range s.Dists {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = appendQuoteJSON(buf, d.Name)
		buf = append(buf, ':')
		v, err := json.Marshal(jsonDist{Count: d.Count, Sum: d.Sum, Min: d.Min, Max: d.Max})
		if err != nil {
			return nil, fmt.Errorf("obs: dist %s: %w", d.Name, err)
		}
		buf = append(buf, v...)
	}
	return append(buf, `}}`...), nil
}

// UnmarshalJSON parses the MarshalJSON form back into a sorted snapshot.
func (s *Snapshot) UnmarshalJSON(data []byte) error {
	var wire struct {
		Counters map[string]float64  `json:"counters"`
		Dists    map[string]jsonDist `json:"dists"`
	}
	if err := json.Unmarshal(data, &wire); err != nil {
		return err
	}
	out := Snapshot{}
	for name, v := range wire.Counters {
		out.Counters = append(out.Counters, CounterValue{Name: name, Value: v})
	}
	for name, d := range wire.Dists {
		out.Dists = append(out.Dists, DistValue{Name: name, Count: d.Count, Sum: d.Sum, Min: d.Min, Max: d.Max})
	}
	sort.Slice(out.Counters, func(i, j int) bool { return out.Counters[i].Name < out.Counters[j].Name })
	sort.Slice(out.Dists, func(i, j int) bool { return out.Dists[i].Name < out.Dists[j].Name })
	*s = out
	return nil
}
