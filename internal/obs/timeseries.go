package obs

// Virtual-time time-series sampling (DESIGN.md §14). The registry's
// counters and the models' ledgers are end-of-run aggregates; the Sampler
// keeps the *time dimension*: fixed-width virtual-time windows holding
// per-window counter deltas, gauge samples, and windowed latency
// histograms, so queue buildup, retry storms, overload onset and warm-up
// transients are visible instead of averaged away.
//
// The design follows the recorder/registry conventions of this package:
//
//   - Zero cost when off. The disabled state is a nil *Sampler handing out
//     nil series handles; every method is a nil-receiver no-op performing
//     no allocation, so instrumented hot paths cost one predictable
//     branch. TestSamplerDisabledZeroAllocs holds this.
//
//   - Determinism. Every sample is stamped with virtual time supplied by
//     the caller (models pass their sim.Clock's now), never the wall
//     clock, and each single-threaded model run owns its own Sampler;
//     the harness merges per-run series in input order. Snapshot output
//     is sorted by series name, so the bytes of a rendered time series
//     are a pure function of the model's inputs at any worker count.
//
//   - Conservation. A counter series charges each delta to the window the
//     charging event falls in, so the per-window deltas of a series sum
//     exactly to the model's end-of-run total — the windowed form of the
//     repository's ledger-equals-elapsed bar.

import (
	"sort"

	"repro/internal/sim"
	"repro/internal/stats"
)

// Sampler collects fixed-width virtual-time window series for one
// single-threaded model run. A nil *Sampler is the disabled state: it
// hands out nil handles and every method no-ops. Sampler is not safe for
// concurrent use; parallel harness code gives each run its own.
type Sampler struct {
	width    int64
	counters []*SeriesCounter
	gauges   []*SeriesGauge
	hists    []*SeriesHist
}

// NewSampler returns a sampler with the given window width. It panics on
// a non-positive width — a programming error, not a runtime condition.
func NewSampler(width sim.Duration) *Sampler {
	if width <= 0 {
		panic("obs: sampler window width must be positive")
	}
	return &Sampler{width: int64(width)}
}

// Width returns the window width (0 on nil).
func (s *Sampler) Width() sim.Duration {
	if s == nil {
		return 0
	}
	return sim.Duration(s.width)
}

// windowOf maps a virtual time to its window index; negative times (a
// clockless model passing 0-d) clamp to the first window.
func windowOf(t sim.Time, width int64) int {
	if t <= 0 {
		return 0
	}
	return int(int64(t) / width)
}

// Counter registers (or finds) a windowed counter series: per-window
// deltas that sum exactly to the series total.
func (s *Sampler) Counter(name string) *SeriesCounter {
	if s == nil {
		return nil
	}
	for _, c := range s.counters {
		if c.name == name {
			return c
		}
	}
	c := &SeriesCounter{name: name, width: s.width}
	s.counters = append(s.counters, c)
	return c
}

// Gauge registers (or finds) a windowed gauge series: the last and the
// maximum sampled value per window, carried forward through unsampled
// windows at snapshot time (a gauge holds its value).
func (s *Sampler) Gauge(name string) *SeriesGauge {
	if s == nil {
		return nil
	}
	for _, g := range s.gauges {
		if g.name == name {
			return g
		}
	}
	g := &SeriesGauge{name: name, width: s.width}
	s.gauges = append(s.gauges, g)
	return g
}

// Hist registers (or finds) a windowed histogram series: observations
// stream through one reusable stats.Histogram per window, flushed to a
// compact per-window summary (count, sum, max, p50, p99) when virtual
// time crosses into the next window.
func (s *Sampler) Hist(name string) *SeriesHist {
	if s == nil {
		return nil
	}
	for _, h := range s.hists {
		if h.name == name {
			return h
		}
	}
	h := &SeriesHist{name: name, width: s.width, curWin: -1}
	s.hists = append(s.hists, h)
	return h
}

// SeriesCounter is one windowed counter. A nil handle ignores updates.
type SeriesCounter struct {
	name  string
	width int64
	vals  []int64
	total int64
}

// Add charges v to the window holding t.
func (c *SeriesCounter) Add(t sim.Time, v int64) {
	if c == nil {
		return
	}
	w := windowOf(t, c.width)
	for len(c.vals) <= w {
		c.vals = append(c.vals, 0)
	}
	c.vals[w] += v
	c.total += v
}

// Inc charges one to the window holding t.
func (c *SeriesCounter) Inc(t sim.Time) { c.Add(t, 1) }

// Total returns the sum of every window's delta (0 on nil).
func (c *SeriesCounter) Total() int64 {
	if c == nil {
		return 0
	}
	return c.total
}

// SeriesGauge is one windowed gauge. A nil handle ignores updates.
type SeriesGauge struct {
	name  string
	width int64
	last  []int64
	max   []int64
	seen  []bool
}

// Set records the gauge's value at time t.
func (g *SeriesGauge) Set(t sim.Time, v int64) {
	if g == nil {
		return
	}
	w := windowOf(t, g.width)
	for len(g.last) <= w {
		g.last = append(g.last, 0)
		g.max = append(g.max, 0)
		g.seen = append(g.seen, false)
	}
	if !g.seen[w] || v > g.max[w] {
		g.max[w] = v
	}
	g.last[w] = v
	g.seen[w] = true
}

// SeriesHist is one windowed histogram. A nil handle ignores updates.
// Virtual time is expected to be non-decreasing across Observe calls
// (models run on one event engine, so completion times are); a stray
// earlier time is folded into the current window rather than lost, so
// the count and sum conservation laws hold regardless.
type SeriesHist struct {
	name   string
	width  int64
	cur    stats.Histogram
	curWin int
	wins   []HistWindow
}

// HistWindow is one flushed histogram window: the window index and the
// summary of the observations that fell in it. P50 and P99 are
// bucket-upper-boundary nearest-rank quantiles (stats.Histogram.Quantile);
// Sum and Max are exact.
type HistWindow struct {
	Window int    `json:"window"`
	N      uint64 `json:"n"`
	Sum    int64  `json:"sum"`
	Max    int64  `json:"max"`
	P50    int64  `json:"p50"`
	P99    int64  `json:"p99"`
}

// Observe records one observation at time t.
func (h *SeriesHist) Observe(t sim.Time, v int64) {
	if h == nil {
		return
	}
	w := windowOf(t, h.width)
	if w < h.curWin {
		w = h.curWin // non-monotone stray: fold into the open window
	}
	if w != h.curWin {
		h.flush()
		h.curWin = w
	}
	h.cur.Observe(v)
}

// flush summarizes the open window (if it holds observations) and resets
// the scratch histogram for the next one.
func (h *SeriesHist) flush() {
	if h.cur.N() == 0 {
		return
	}
	h.wins = append(h.wins, HistWindow{
		Window: h.curWin,
		N:      h.cur.N(),
		Sum:    h.cur.Sum(),
		Max:    h.cur.Max(),
		P50:    h.cur.Quantile(0.5),
		P99:    h.cur.Quantile(0.99),
	})
	h.cur = stats.Histogram{}
}

// CounterSeries is one counter's snapshot: dense per-window deltas.
type CounterSeries struct {
	Name   string  `json:"name"`
	Values []int64 `json:"values"`
}

// GaugeSeries is one gauge's snapshot: the last and maximum sampled value
// per window, carried forward through unsampled windows (a window the
// model never sampled in reports the value the gauge held entering it).
type GaugeSeries struct {
	Name string  `json:"name"`
	Last []int64 `json:"last"`
	Max  []int64 `json:"max"`
}

// HistSeries is one histogram's snapshot: sparse flushed windows, in
// ascending window order.
type HistSeries struct {
	Name    string       `json:"name"`
	Windows []HistWindow `json:"windows"`
}

// TimeSeries is a sampler's snapshot: every series, name-sorted within
// its kind, over a common window count. It marshals to deterministic
// JSON (no maps, sorted slices).
type TimeSeries struct {
	// WidthNs is the window width in virtual nanoseconds.
	WidthNs int64 `json:"width_ns"`
	// Windows is the common dense length: enough windows to cover the
	// snapshot end time and every recorded sample.
	Windows  int             `json:"windows"`
	Counters []CounterSeries `json:"counters,omitempty"`
	Gauges   []GaugeSeries   `json:"gauges,omitempty"`
	Hists    []HistSeries    `json:"hists,omitempty"`
	// Exemplars carries the per-window sampled request lifecycles when
	// exemplar tracing is enabled (see exemplar.go); the harness attaches
	// an Exemplars reservoir's Snapshot after the run.
	Exemplars []ExemplarWindow `json:"exemplars,omitempty"`
}

// Snapshot captures the sampler's series as of end (the run's final
// virtual time): counters densified to a common window count, gauges
// carried forward, open histogram windows flushed. A nil sampler yields
// the zero TimeSeries. Snapshot may be called once per run; histogram
// scratch state is consumed by the flush.
func (s *Sampler) Snapshot(end sim.Time) TimeSeries {
	if s == nil {
		return TimeSeries{}
	}
	n := windowOf(end, s.width) + 1
	for _, c := range s.counters {
		if len(c.vals) > n {
			n = len(c.vals)
		}
	}
	for _, g := range s.gauges {
		if len(g.last) > n {
			n = len(g.last)
		}
	}
	for _, h := range s.hists {
		h.flush()
		if len(h.wins) > 0 {
			if last := h.wins[len(h.wins)-1].Window + 1; last > n {
				n = last
			}
		}
	}
	ts := TimeSeries{WidthNs: s.width, Windows: n}
	for _, c := range s.counters {
		vals := make([]int64, n)
		copy(vals, c.vals)
		ts.Counters = append(ts.Counters, CounterSeries{Name: c.name, Values: vals})
	}
	for _, g := range s.gauges {
		last := make([]int64, n)
		max := make([]int64, n)
		var carry int64
		for w := 0; w < n; w++ {
			if w < len(g.seen) && g.seen[w] {
				last[w] = g.last[w]
				max[w] = g.max[w]
				if carry > max[w] {
					// The gauge entered the window above its sampled max
					// and must have passed through that value.
					max[w] = carry
				}
				carry = g.last[w]
				continue
			}
			last[w] = carry
			max[w] = carry
		}
		ts.Gauges = append(ts.Gauges, GaugeSeries{Name: g.name, Last: last, Max: max})
	}
	for _, h := range s.hists {
		wins := append([]HistWindow(nil), h.wins...)
		ts.Hists = append(ts.Hists, HistSeries{Name: h.name, Windows: wins})
	}
	sort.Slice(ts.Counters, func(i, j int) bool { return ts.Counters[i].Name < ts.Counters[j].Name })
	sort.Slice(ts.Gauges, func(i, j int) bool { return ts.Gauges[i].Name < ts.Gauges[j].Name })
	sort.Slice(ts.Hists, func(i, j int) bool { return ts.Hists[i].Name < ts.Hists[j].Name })
	return ts
}

// CounterTotal returns the window sum of the named counter series and
// whether the series exists — the reconciliation hook: the total must
// equal the model's end-of-run ledger counter.
func (ts *TimeSeries) CounterTotal(name string) (int64, bool) {
	for _, c := range ts.Counters {
		if c.Name == name {
			var sum int64
			for _, v := range c.Values {
				sum += v
			}
			return sum, true
		}
	}
	return 0, false
}

// FlatSeries is one renderable series: a name and one int64 value per
// window, dense. Flatten lowers every series kind to this shape so CSV
// and SVG rendering share one walk.
type FlatSeries struct {
	Name   string
	Values []int64
}

// Flatten lowers the snapshot to dense flat series, name-sorted:
// counters keep their name and per-window deltas; a gauge g becomes
// "g" (last) and "g.max"; a histogram h becomes "h.count", "h.sum",
// "h.p50", "h.p99" and "h.max" (empty windows report zero).
func (ts *TimeSeries) Flatten() []FlatSeries {
	var out []FlatSeries
	for _, c := range ts.Counters {
		out = append(out, FlatSeries{Name: c.Name, Values: c.Values})
	}
	for _, g := range ts.Gauges {
		out = append(out, FlatSeries{Name: g.Name, Values: g.Last})
		out = append(out, FlatSeries{Name: g.Name + ".max", Values: g.Max})
	}
	for _, h := range ts.Hists {
		count := make([]int64, ts.Windows)
		sum := make([]int64, ts.Windows)
		p50 := make([]int64, ts.Windows)
		p99 := make([]int64, ts.Windows)
		max := make([]int64, ts.Windows)
		for _, w := range h.Windows {
			if w.Window < 0 || w.Window >= ts.Windows {
				continue
			}
			count[w.Window] = int64(w.N)
			sum[w.Window] = w.Sum
			p50[w.Window] = w.P50
			p99[w.Window] = w.P99
			max[w.Window] = w.Max
		}
		out = append(out, FlatSeries{Name: h.Name + ".count", Values: count})
		out = append(out, FlatSeries{Name: h.Name + ".sum", Values: sum})
		out = append(out, FlatSeries{Name: h.Name + ".p50", Values: p50})
		out = append(out, FlatSeries{Name: h.Name + ".p99", Values: p99})
		out = append(out, FlatSeries{Name: h.Name + ".max", Values: max})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
