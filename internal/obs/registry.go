package obs

import (
	"fmt"
	"sort"
	"strings"
)

// Counter is one monotonically growing named metric. A nil *Counter (from
// a nil Registry, or an unattached subsystem) ignores every update with no
// allocation, so models keep counter handles unconditionally.
type Counter struct {
	name string
	v    float64
}

// Name returns the counter's registered name.
func (c *Counter) Name() string {
	if c == nil {
		return ""
	}
	return c.name
}

// Add grows the counter by v.
func (c *Counter) Add(v float64) {
	if c == nil {
		return
	}
	c.v += v
}

// Inc grows the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current value (0 on nil).
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Distribution summarises a stream of observations: count, sum, min and
// max. Like Counter, a nil *Distribution ignores updates.
type Distribution struct {
	name     string
	count    uint64
	sum      float64
	min, max float64
}

// Name returns the distribution's registered name.
func (d *Distribution) Name() string {
	if d == nil {
		return ""
	}
	return d.name
}

// Observe records one value.
func (d *Distribution) Observe(v float64) {
	if d == nil {
		return
	}
	if d.count == 0 || v < d.min {
		d.min = v
	}
	if d.count == 0 || v > d.max {
		d.max = v
	}
	d.count++
	d.sum += v
}

// Count returns the number of observations.
func (d *Distribution) Count() uint64 {
	if d == nil {
		return 0
	}
	return d.count
}

// Mean returns the mean of the observations (0 when empty).
func (d *Distribution) Mean() float64 {
	if d == nil || d.count == 0 {
		return 0
	}
	return d.sum / float64(d.count)
}

// Registry holds the named counters and distributions of one model run.
// Names are conventionally "subsystem.metric" ("cache.l1_misses",
// "tcp.window_stalls"). A nil *Registry hands out nil handles, keeping the
// disabled path allocation-free. Registry is not safe for concurrent use;
// parallel harness code keeps one per task and merges snapshots.
type Registry struct {
	counters map[string]*Counter
	dists    map[string]*Distribution
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		dists:    make(map[string]*Distribution),
	}
}

// Counter registers (or finds) a counter by name.
func (g *Registry) Counter(name string) *Counter {
	if g == nil {
		return nil
	}
	if c, ok := g.counters[name]; ok {
		return c
	}
	c := &Counter{name: name}
	g.counters[name] = c
	return c
}

// Distribution registers (or finds) a distribution by name.
func (g *Registry) Distribution(name string) *Distribution {
	if g == nil {
		return nil
	}
	if d, ok := g.dists[name]; ok {
		return d
	}
	d := &Distribution{name: name}
	g.dists[name] = d
	return d
}

// CounterValue is one counter in a snapshot.
type CounterValue struct {
	Name  string
	Value float64
}

// DistValue is one distribution in a snapshot.
type DistValue struct {
	Name     string
	Count    uint64
	Sum      float64
	Min, Max float64
}

// Snapshot is an immutable, name-sorted copy of a registry's state —
// the unit of comparison for the determinism tests and of diffing for
// per-experiment metric deltas.
type Snapshot struct {
	Counters []CounterValue
	Dists    []DistValue
}

// Snapshot captures the registry, sorted by name. A nil registry yields
// an empty snapshot.
func (g *Registry) Snapshot() Snapshot {
	var s Snapshot
	if g == nil {
		return s
	}
	for name, c := range g.counters {
		s.Counters = append(s.Counters, CounterValue{Name: name, Value: c.v})
	}
	for name, d := range g.dists {
		s.Dists = append(s.Dists, DistValue{Name: name, Count: d.count, Sum: d.sum, Min: d.min, Max: d.max})
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Dists, func(i, j int) bool { return s.Dists[i].Name < s.Dists[j].Name })
	return s
}

// Get returns the value of a named counter and whether it exists.
func (s Snapshot) Get(name string) (float64, bool) {
	i := sort.Search(len(s.Counters), func(i int) bool { return s.Counters[i].Name >= name })
	if i < len(s.Counters) && s.Counters[i].Name == name {
		return s.Counters[i].Value, true
	}
	return 0, false
}

// Diff returns this snapshot with prev's counter values subtracted and
// distributions kept as-is, for reporting what one phase of work added.
// Counters present only in prev appear with their negated value.
func (s Snapshot) Diff(prev Snapshot) Snapshot {
	vals := make(map[string]float64, len(s.Counters))
	for _, c := range s.Counters {
		vals[c.Name] = c.Value
	}
	for _, c := range prev.Counters {
		vals[c.Name] -= c.Value
	}
	out := Snapshot{Dists: append([]DistValue(nil), s.Dists...)}
	for name, v := range vals {
		out.Counters = append(out.Counters, CounterValue{Name: name, Value: v})
	}
	sort.Slice(out.Counters, func(i, j int) bool { return out.Counters[i].Name < out.Counters[j].Name })
	return out
}

// ExcludePrefix returns the snapshot without metrics whose name starts
// with the prefix. The determinism tests use it to drop the harness's
// wall-clock self-observability ("runner.") before comparing.
func (s Snapshot) ExcludePrefix(prefix string) Snapshot {
	var out Snapshot
	for _, c := range s.Counters {
		if !strings.HasPrefix(c.Name, prefix) {
			out.Counters = append(out.Counters, c)
		}
	}
	for _, d := range s.Dists {
		if !strings.HasPrefix(d.Name, prefix) {
			out.Dists = append(out.Dists, d)
		}
	}
	return out
}

// Equal reports whether two snapshots are bit-identical (names, counts
// and float values).
func (s Snapshot) Equal(o Snapshot) bool {
	if len(s.Counters) != len(o.Counters) || len(s.Dists) != len(o.Dists) {
		return false
	}
	for i, c := range s.Counters {
		if c != o.Counters[i] {
			return false
		}
	}
	for i, d := range s.Dists {
		if d != o.Dists[i] {
			return false
		}
	}
	return true
}

// String renders the snapshot one metric per line, for debugging and
// golden output.
func (s Snapshot) String() string {
	var b strings.Builder
	for _, c := range s.Counters {
		fmt.Fprintf(&b, "%s %v\n", c.Name, c.Value)
	}
	for _, d := range s.Dists {
		fmt.Fprintf(&b, "%s count=%d sum=%v min=%v max=%v\n", d.Name, d.Count, d.Sum, d.Min, d.Max)
	}
	return b.String()
}

// MergeSnapshots combines per-task snapshots in the given (deterministic)
// order: counter values add, distributions combine. Because parts arrive
// in task order — never completion order — the float accumulation order
// is schedule-independent, which keeps merged snapshots bit-identical at
// every worker count.
func MergeSnapshots(parts ...Snapshot) Snapshot {
	counters := make(map[string]float64)
	var corder []string
	dists := make(map[string]DistValue)
	var dorder []string
	for _, p := range parts {
		for _, c := range p.Counters {
			if _, ok := counters[c.Name]; !ok {
				corder = append(corder, c.Name)
			}
			counters[c.Name] += c.Value
		}
		for _, d := range p.Dists {
			prev, ok := dists[d.Name]
			if !ok {
				dorder = append(dorder, d.Name)
				dists[d.Name] = d
				continue
			}
			if d.Count > 0 {
				if prev.Count == 0 || d.Min < prev.Min {
					prev.Min = d.Min
				}
				if prev.Count == 0 || d.Max > prev.Max {
					prev.Max = d.Max
				}
				prev.Count += d.Count
				prev.Sum += d.Sum
				dists[d.Name] = prev
			}
		}
	}
	var out Snapshot
	sort.Strings(corder)
	for _, name := range corder {
		out.Counters = append(out.Counters, CounterValue{Name: name, Value: counters[name]})
	}
	sort.Strings(dorder)
	for _, name := range dorder {
		out.Dists = append(out.Dists, dists[name])
	}
	return out
}
