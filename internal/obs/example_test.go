package obs_test

import (
	"fmt"
	"os"

	"repro/internal/obs"
	"repro/internal/sim"
)

// ExampleRecorder shows span creation on named tracks. Events are stamped
// with virtual time from the model's clock, never the wall clock.
func ExampleRecorder() {
	var clock sim.Clock
	rec := obs.NewRecorder(&clock)
	kernel := rec.Track("kernel")

	rec.Begin(kernel, "syscall")
	clock.Advance(9 * sim.Microsecond)
	rec.End(kernel, "syscall", 9)

	for _, e := range rec.Events() {
		fmt.Printf("%v %s %s\n", e.When, e.Kind, e.Name)
	}
	// Output:
	// T+0s begin syscall
	// T+9µs end syscall
}

// ExampleRegistry shows counter registration. A nil *Registry hands out
// nil handles whose methods no-op without allocating, so models keep their
// counter handles unconditionally and pay one branch when observability
// is off.
func ExampleRegistry() {
	reg := obs.NewRegistry()
	misses := reg.Counter("cache.l1_misses")
	misses.Add(40)
	misses.Inc()

	var off *obs.Registry // disabled: nil registry
	offMisses := off.Counter("cache.l1_misses")
	offMisses.Inc() // no-op, no allocation

	fmt.Println(misses.Value(), offMisses.Value())
	// Output:
	// 41 0
}

// ExampleSnapshot_Diff shows measuring what one phase of work added by
// diffing snapshots taken before and after.
func ExampleSnapshot_Diff() {
	reg := obs.NewRegistry()
	seeks := reg.Counter("disk.seeks")
	seeks.Add(100)

	before := reg.Snapshot()
	seeks.Add(17) // ... the phase under measurement runs ...
	delta := reg.Snapshot().Diff(before)

	v, _ := delta.Get("disk.seeks")
	fmt.Println(v)
	// Output:
	// 17
}

// ExampleWriteChrome shows exporting a trace as Chrome trace-event JSON,
// loadable at https://ui.perfetto.dev.
func ExampleWriteChrome() {
	var clock sim.Clock
	rec := obs.NewRecorder(&clock)
	cpu := rec.Track("cpu")
	rec.Begin(cpu, "dispatch")
	clock.Advance(14 * sim.Microsecond)
	rec.End(cpu, "dispatch", 14)

	_ = obs.WriteChrome(os.Stdout, []obs.Process{rec.Capture("Linux 1.2.13")})
	// Output:
	// [
	// {"ph":"M","pid":1,"name":"process_name","args":{"name":"Linux 1.2.13"}},
	// {"ph":"M","pid":1,"tid":1,"name":"thread_name","args":{"name":"main"}},
	// {"ph":"M","pid":1,"tid":1,"name":"thread_sort_index","args":{"sort_index":0}},
	// {"ph":"M","pid":1,"tid":2,"name":"thread_name","args":{"name":"cpu"}},
	// {"ph":"M","pid":1,"tid":2,"name":"thread_sort_index","args":{"sort_index":1}},
	// {"ph":"B","pid":1,"tid":2,"ts":0,"name":"dispatch"},
	// {"ph":"E","pid":1,"tid":2,"ts":14,"name":"dispatch","args":{"cost":14}}
	// ]
}
