package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"unicode/utf8"

	"repro/internal/sim"
)

// WriteChrome emits the processes as Chrome trace-event JSON (the
// "JSON Array Format" understood by Perfetto and chrome://tracing).
// Each Process becomes one trace process (pid = index+1) and each track
// one thread (tid = TrackID+1), named via metadata events. Timestamps
// are virtual microseconds. The output is hand-rolled and fully
// deterministic: same processes in, same bytes out, independent of map
// iteration or worker count.
//
// Traces routinely carry millions of events, so the writer streams:
// each line is appended into one reused buffer with strconv appends (no
// per-event Sprintf, no whole-trace string) and flushed through a
// bufio.Writer.
func WriteChrome(w io.Writer, procs []Process) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.WriteString("[\n"); err != nil {
		return err
	}
	line := make([]byte, 0, 256)
	first := true
	// Each emit* helper below appends one JSON object to line; flush
	// writes it out with the array separator.
	flush := func() error {
		if !first {
			if _, err := bw.WriteString(",\n"); err != nil {
				return err
			}
		}
		first = false
		_, err := bw.Write(line)
		line = line[:0]
		return err
	}
	appendStr := func(s string) { line = appendQuoteJSON(line, s) }
	appendInt := func(v int64) { line = strconv.AppendInt(line, v, 10) }
	for pi, p := range procs {
		pid := int64(pi + 1)
		line = append(line, `{"ph":"M","pid":`...)
		appendInt(pid)
		line = append(line, `,"name":"process_name","args":{"name":`...)
		appendStr(p.Name)
		line = append(line, `}}`...)
		if err := flush(); err != nil {
			return err
		}
		for ti, track := range p.Tracks {
			line = append(line, `{"ph":"M","pid":`...)
			appendInt(pid)
			line = append(line, `,"tid":`...)
			appendInt(int64(ti + 1))
			line = append(line, `,"name":"thread_name","args":{"name":`...)
			appendStr(track)
			line = append(line, `}}`...)
			if err := flush(); err != nil {
				return err
			}
			// sort_index pins track order to registration order.
			line = append(line, `{"ph":"M","pid":`...)
			appendInt(pid)
			line = append(line, `,"tid":`...)
			appendInt(int64(ti + 1))
			line = append(line, `,"name":"thread_sort_index","args":{"sort_index":`...)
			appendInt(int64(ti))
			line = append(line, `}}`...)
			if err := flush(); err != nil {
				return err
			}
		}
		for _, e := range p.Events {
			tid := int64(e.Track) + 1
			switch e.Kind {
			case EvBegin:
				line = append(line, `{"ph":"B","pid":`...)
			case EvEnd:
				line = append(line, `{"ph":"E","pid":`...)
			case EvInstant:
				line = append(line, `{"ph":"i","pid":`...)
			default:
				continue
			}
			appendInt(pid)
			line = append(line, `,"tid":`...)
			appendInt(tid)
			line = append(line, `,"ts":`...)
			line = appendMicros(line, e.When)
			line = append(line, `,"name":`...)
			appendStr(e.Name)
			switch e.Kind {
			case EvEnd:
				if e.Cost != 0 {
					line = append(line, `,"args":{"cost":`...)
					line = strconv.AppendFloat(line, e.Cost, 'g', -1, 64)
					line = append(line, `}`...)
				}
			case EvInstant:
				line = append(line, `,"s":"t"`...)
				if e.PID != 0 || e.Detail != "" {
					line = append(line, `,"args":{`...)
					if e.PID != 0 {
						line = append(line, `"pid":`...)
						appendInt(int64(e.PID))
						if e.Detail != "" {
							line = append(line, ',')
						}
					}
					if e.Detail != "" {
						line = append(line, `"detail":`...)
						appendStr(e.Detail)
					}
					line = append(line, `}`...)
				}
			}
			line = append(line, `}`...)
			if err := flush(); err != nil {
				return err
			}
		}
	}
	if _, err := bw.WriteString("\n]\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// appendMicros appends a virtual time (integer nanoseconds) as
// trace-event microseconds, keeping sub-microsecond precision without
// float rounding.
func appendMicros(b []byte, t sim.Time) []byte {
	ns := int64(t)
	if ns < 0 {
		b = append(b, '-')
		ns = -ns
	}
	us, rem := ns/1000, ns%1000
	b = strconv.AppendInt(b, us, 10)
	if rem != 0 {
		b = append(b, '.')
		digits := [3]byte{byte('0' + rem/100), byte('0' + rem/10%10), byte('0' + rem%10)}
		n := 3
		for n > 1 && digits[n-1] == '0' {
			n--
		}
		b = append(b, digits[:n]...)
	}
	return b
}

// appendQuoteJSON appends s as a JSON string literal.
func appendQuoteJSON(b []byte, s string) []byte {
	b = append(b, '"')
	for _, r := range s {
		switch r {
		case '"':
			b = append(b, `\"`...)
		case '\\':
			b = append(b, `\\`...)
		case '\n':
			b = append(b, `\n`...)
		case '\t':
			b = append(b, `\t`...)
		case '\r':
			b = append(b, `\r`...)
		default:
			if r < 0x20 {
				b = append(b, fmt.Sprintf(`\u%04x`, r)...)
			} else {
				b = utf8.AppendRune(b, r)
			}
		}
	}
	return append(b, '"')
}
