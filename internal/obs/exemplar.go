package obs

// Exemplar request tracing (DESIGN.md §15). Histograms and windowed
// series say *how many* requests were slow; exemplars say *which ones*
// and *why*: a small, deterministic per-window reservoir of fully
// decomposed request lifecycles, biased toward the latency tail, that a
// model offers every finished request to.
//
// Selection is weighted reservoir sampling (Efraimidis–Spirakis A-Res):
// each offered request gets the key ln(u)/w, where w = latency+1 and u
// is derived purely from (reservoir seed, request ID) by a splitmix64
// hash — no RNG state, no dependence on offer order beyond the window a
// request completes in. The K largest keys per window win, so the
// expected sample is proportional to latency (tail-biased) while every
// request keeps a nonzero chance — and reruns of the same model with the
// same seed select byte-identical exemplar sets at any worker count.
//
// The disabled state is a nil *Exemplars: Offer is a nil-receiver no-op
// with zero allocations (the Exemplar argument is a value, so offering
// costs nothing when off). TestExemplarsDisabledZeroAllocs holds this.

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/sim"
	"repro/internal/stats"
)

// Exemplar is the recorded lifecycle of one sampled request, every
// duration in exact virtual nanoseconds. For a completed request the
// phase sum Wire+RTO+Queue+CPU+DiskWait+Disk equals EndNs−IssueNs (the
// recorded latency) exactly; for a shed request the same identity holds
// with the service phases zero — the per-request form of the model's
// ledger-equals-elapsed conservation law.
type Exemplar struct {
	// ID is the request's arrival ordinal (1-based) — stable across
	// reruns of the same seed.
	ID     uint64 `json:"id"`
	Client int32  `json:"client"`
	Class  string `json:"class"`
	// Shed marks a request the client abandoned (too many sends or a
	// full retry ring) rather than completed.
	Shed bool `json:"shed,omitempty"`
	// Sends counts wire sends; Tier is the deepest backoff tier entered
	// (-1 when the first send succeeded).
	Sends int `json:"sends"`
	Tier  int `json:"tier"`
	// Lifecycle timestamps: client issue, ingress-queue entry (-1 if the
	// request never entered the queue), service start (-1 if never
	// served), and client-perceived end (reply received, or abandonment).
	IssueNs int64 `json:"issue_ns"`
	EnqNs   int64 `json:"enq_ns"`
	StartNs int64 `json:"start_ns"`
	EndNs   int64 `json:"end_ns"`
	// Exact phase decomposition.
	WireNs     int64 `json:"wire_ns"`
	RTONs      int64 `json:"rto_ns"`
	QueueNs    int64 `json:"queue_ns"`
	CPUNs      int64 `json:"cpu_ns"`
	DiskWaitNs int64 `json:"disk_wait_ns"`
	DiskNs     int64 `json:"disk_ns"`
	// LatencyNs is EndNs−IssueNs; Bucket is the stats.Histogram bucket
	// index LatencyNs lands in (the attachment point to the latency
	// histogram); Window is the virtual-time window EndNs falls in.
	LatencyNs int64 `json:"latency_ns"`
	Bucket    int   `json:"bucket"`
	Window    int   `json:"window"`
}

// PhaseSum returns the sum of the exemplar's phase durations; it equals
// LatencyNs exactly for every exemplar a correct model offers.
func (e *Exemplar) PhaseSum() int64 {
	return e.WireNs + e.RTONs + e.QueueNs + e.CPUNs + e.DiskWaitNs + e.DiskNs
}

// ExemplarWindow is one window's retained exemplars, slowest first.
type ExemplarWindow struct {
	Window    int        `json:"window"`
	Exemplars []Exemplar `json:"exemplars"`
}

// Exemplars is a seeded per-window reservoir retaining at most K
// exemplars per virtual-time window. A nil *Exemplars is the disabled
// state; Offer then no-ops without allocating. Not safe for concurrent
// use; each single-threaded model run owns its own.
type Exemplars struct {
	seed    uint64
	k       int
	width   int64
	wins    []exWindow
	offered int64
	dropped int64
}

type exWindow struct {
	window int
	keys   []float64
	exs    []Exemplar
}

// NewExemplars returns a reservoir keeping up to k exemplars per window
// of the given width, selected deterministically from the seed. It
// panics on non-positive k or width — programming errors.
func NewExemplars(seed uint64, k int, width sim.Duration) *Exemplars {
	if k <= 0 {
		panic("obs: exemplar reservoir k must be positive")
	}
	if width <= 0 {
		panic("obs: exemplar window width must be positive")
	}
	return &Exemplars{seed: seed, k: k, width: int64(width)}
}

// Width returns the reservoir's window width (0 on nil).
func (x *Exemplars) Width() sim.Duration {
	if x == nil {
		return 0
	}
	return sim.Duration(x.width)
}

// splitmix64 is the standard splitmix64 finalizer: a high-quality
// stateless mix of one 64-bit value.
func splitmix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// aresKey computes the A-Res selection key ln(u)/w for one request:
// u in (0,1) from the hash of (seed, id), w = latency+1. Keys are
// negative; larger (closer to zero) wins, and heavier weights shrink
// |ln(u)|/w — the tail bias.
func (x *Exemplars) aresKey(id uint64, latency int64) float64 {
	h := splitmix64(x.seed ^ id)
	// 53 high bits → u in (0,1): add 1 before scaling so u is never 0.
	u := (float64(h>>11) + 1) / (1 << 53)
	w := float64(latency + 1)
	if w < 1 {
		w = 1
	}
	return math.Log(u) / w
}

// Offer presents one finished request to the reservoir. The exemplar's
// Window, Bucket, and LatencyNs are derived here from its timestamps, so
// callers fill only the lifecycle fields. Nil receivers no-op.
func (x *Exemplars) Offer(e Exemplar) {
	if x == nil {
		return
	}
	x.offered++
	e.LatencyNs = e.EndNs - e.IssueNs
	e.Bucket = stats.BucketIndex(e.LatencyNs)
	e.Window = windowOf(sim.Time(e.EndNs), x.width)
	key := x.aresKey(e.ID, e.LatencyNs)

	w := x.window(e.Window)
	if len(w.exs) < x.k {
		w.keys = append(w.keys, key)
		w.exs = append(w.exs, e)
		return
	}
	// Evict the current minimum key if the newcomer beats it; ties break
	// toward the smaller request ID so selection is a pure function of
	// the offered set.
	min := 0
	for i := 1; i < len(w.keys); i++ {
		if w.keys[i] < w.keys[min] ||
			(w.keys[i] == w.keys[min] && w.exs[i].ID > w.exs[min].ID) {
			min = i
		}
	}
	if key > w.keys[min] || (key == w.keys[min] && e.ID < w.exs[min].ID) {
		w.keys[min] = key
		w.exs[min] = e
	}
	x.dropped++
}

// window finds or appends the bucket for one window index. Completion
// times are nearly monotone, so the scan from the tail is O(1) in
// practice.
func (x *Exemplars) window(n int) *exWindow {
	for i := len(x.wins) - 1; i >= 0; i-- {
		if x.wins[i].window == n {
			return &x.wins[i]
		}
	}
	x.wins = append(x.wins, exWindow{window: n})
	return &x.wins[len(x.wins)-1]
}

// Offered returns how many requests were presented (0 on nil).
func (x *Exemplars) Offered() int64 {
	if x == nil {
		return 0
	}
	return x.offered
}

// Dropped returns how many offers the K-per-window bound rejected or
// evicted (0 on nil) — the reservoir's capture-fidelity number.
func (x *Exemplars) Dropped() int64 {
	if x == nil {
		return 0
	}
	return x.dropped
}

// Snapshot returns the retained exemplars: windows ascending, exemplars
// within a window slowest first (ties by ID). A nil reservoir yields
// nil. The snapshot is a pure function of the offered set, so its
// rendered bytes are worker-count independent.
func (x *Exemplars) Snapshot() []ExemplarWindow {
	if x == nil || len(x.wins) == 0 {
		return nil
	}
	out := make([]ExemplarWindow, 0, len(x.wins))
	for i := range x.wins {
		w := &x.wins[i]
		exs := append([]Exemplar(nil), w.exs...)
		sort.Slice(exs, func(a, b int) bool {
			if exs[a].LatencyNs != exs[b].LatencyNs {
				return exs[a].LatencyNs > exs[b].LatencyNs
			}
			return exs[a].ID < exs[b].ID
		})
		out = append(out, ExemplarWindow{Window: w.window, Exemplars: exs})
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Window < out[b].Window })
	return out
}

// ExemplarTracks renders exemplars as per-request tracks on a recorder:
// each sampled request gets a track "req <id>" carrying its phase spans
// in lifecycle order (net = request wire + backoff, queue, cpu,
// disk.wait, disk, reply), each span's cost the phase duration in
// microseconds. Shed requests get one "net" span to the abandonment
// point plus a "shed" instant. Call after the model run, before
// Capture.
func ExemplarTracks(rec *Recorder, wins []ExemplarWindow) {
	if rec == nil {
		return
	}
	span := func(tr TrackID, name string, from, to int64) {
		if to < from {
			to = from
		}
		rec.BeginAt(sim.Time(from), tr, name)
		rec.EndAt(sim.Time(to), tr, name, float64(to-from)/float64(sim.Microsecond))
	}
	for _, w := range wins {
		for _, e := range w.Exemplars {
			tr := rec.Track(fmt.Sprintf("req %d", e.ID))
			if e.Shed {
				span(tr, "net", e.IssueNs, e.EndNs)
				rec.InstantAt(sim.Time(e.EndNs), tr, "shed", 0,
					fmt.Sprintf("class=%s sends=%d tier=%d", e.Class, e.Sends, e.Tier))
				continue
			}
			span(tr, "net", e.IssueNs, e.EnqNs)
			span(tr, "queue", e.EnqNs, e.StartNs)
			t := e.StartNs + e.CPUNs
			span(tr, "cpu", e.StartNs, t)
			if e.DiskWaitNs > 0 {
				span(tr, "disk.wait", t, t+e.DiskWaitNs)
			}
			t += e.DiskWaitNs
			if e.DiskNs > 0 {
				span(tr, "disk", t, t+e.DiskNs)
			}
			t += e.DiskNs
			span(tr, "reply", t, e.EndNs)
		}
	}
}
