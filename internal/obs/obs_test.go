package obs

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestRecorderSpansAndTracks(t *testing.T) {
	var clock sim.Clock
	rec := NewRecorder(&clock)
	if !rec.Enabled() {
		t.Fatal("live recorder should report Enabled")
	}
	kern := rec.Track("kernel")
	if got := rec.Track("kernel"); got != kern {
		t.Fatalf("Track not idempotent: %d vs %d", got, kern)
	}
	rec.Begin(kern, "syscall")
	clock.Advance(5 * sim.Microsecond)
	rec.Instant(kern, "dispatch", 3, "to pid 3")
	clock.Advance(5 * sim.Microsecond)
	rec.End(kern, "syscall", 10)

	ev := rec.Events()
	if len(ev) != 3 {
		t.Fatalf("got %d events, want 3", len(ev))
	}
	if ev[0].Kind != EvBegin || ev[0].When != 0 {
		t.Errorf("event 0 = %+v, want begin at T+0", ev[0])
	}
	if ev[1].Kind != EvInstant || ev[1].PID != 3 || ev[1].When != sim.Time(5*sim.Microsecond) {
		t.Errorf("event 1 = %+v, want instant pid=3 at 5us", ev[1])
	}
	if ev[2].Kind != EvEnd || ev[2].Cost != 10 {
		t.Errorf("event 2 = %+v, want end cost=10", ev[2])
	}
	tracks := rec.Tracks()
	if len(tracks) != 2 || tracks[0] != "main" || tracks[1] != "kernel" {
		t.Errorf("tracks = %v", tracks)
	}
}

func TestNilRecorderNoOps(t *testing.T) {
	var rec *Recorder
	if rec.Enabled() {
		t.Fatal("nil recorder must report disabled")
	}
	tr := rec.Track("anything")
	rec.Begin(tr, "x")
	rec.End(tr, "x", 1)
	rec.Instant(tr, "y", 1, "d")
	rec.Instantf(tr, "z", 1, "n=%d", 4)
	rec.Reset()
	if rec.Len() != 0 || rec.Events() != nil || rec.Tracks() != nil {
		t.Fatal("nil recorder must stay empty")
	}
}

func TestRingDropsOldest(t *testing.T) {
	var clock sim.Clock
	rec := NewRing(&clock, 3)
	for i := 0; i < 5; i++ {
		clock.Advance(sim.Microsecond)
		rec.Instantf(0, "ev", i, "n=%d", i)
	}
	ev := rec.Events()
	if len(ev) != 3 {
		t.Fatalf("ring kept %d events, want 3", len(ev))
	}
	// events 0 and 1 were the oldest and must be gone; 2,3,4 survive in order
	for i, want := range []int{2, 3, 4} {
		if ev[i].PID != want {
			t.Errorf("ring slot %d has pid %d, want %d", i, ev[i].PID, want)
		}
	}
	if ev[0].When >= ev[1].When || ev[1].When >= ev[2].When {
		t.Errorf("ring events out of time order: %v", ev)
	}
	if rec.Dropped() != 2 {
		t.Errorf("Dropped = %d, want 2", rec.Dropped())
	}
	if p := rec.Capture("p"); p.Dropped != 2 {
		t.Errorf("Capture Dropped = %d, want 2", p.Dropped)
	}
}

func TestDroppedZeroWhenComplete(t *testing.T) {
	rec := NewRing(nil, 8)
	for i := 0; i < 8; i++ {
		rec.InstantAt(sim.Time(i), 0, "ev", 0, "")
	}
	if rec.Dropped() != 0 {
		t.Fatalf("Dropped = %d before the ring wraps, want 0", rec.Dropped())
	}
	var unbounded *Recorder
	if unbounded.Dropped() != 0 {
		t.Fatal("nil recorder must report 0 dropped")
	}
	full := NewRecorder(nil)
	for i := 0; i < 100; i++ {
		full.InstantAt(sim.Time(i), 0, "ev", 0, "")
	}
	if full.Dropped() != 0 {
		t.Fatal("unbounded recorder must never drop")
	}
}

func TestDroppedResets(t *testing.T) {
	rec := NewRing(nil, 2)
	for i := 0; i < 5; i++ {
		rec.InstantAt(sim.Time(i), 0, "ev", 0, "")
	}
	if rec.Dropped() != 3 {
		t.Fatalf("Dropped = %d, want 3", rec.Dropped())
	}
	rec.Reset()
	if rec.Dropped() != 0 {
		t.Fatalf("Dropped after Reset = %d, want 0", rec.Dropped())
	}
}

func TestRingLimitPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewRing(clock, 0) should panic")
		}
	}()
	NewRing(nil, 0)
}

func TestRecorderReset(t *testing.T) {
	rec := NewRing(nil, 2)
	rec.InstantAt(1, 0, "a", 0, "")
	rec.InstantAt(2, 0, "b", 0, "")
	rec.InstantAt(3, 0, "c", 0, "")
	rec.Reset()
	if rec.Len() != 0 {
		t.Fatalf("Len after Reset = %d", rec.Len())
	}
	rec.InstantAt(4, 0, "d", 0, "")
	ev := rec.Events()
	if len(ev) != 1 || ev[0].Name != "d" {
		t.Fatalf("events after reset = %v", ev)
	}
}

func TestRegistryCountersAndDists(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("cache.l1_misses")
	if reg.Counter("cache.l1_misses") != c {
		t.Fatal("Counter not idempotent")
	}
	c.Inc()
	c.Add(2)
	if c.Value() != 3 {
		t.Fatalf("counter = %v, want 3", c.Value())
	}
	d := reg.Distribution("disk.seek_us")
	d.Observe(4)
	d.Observe(10)
	d.Observe(1)
	if d.Count() != 3 || d.Mean() != 5 {
		t.Fatalf("dist count=%d mean=%v", d.Count(), d.Mean())
	}
	snap := reg.Snapshot()
	if v, ok := snap.Get("cache.l1_misses"); !ok || v != 3 {
		t.Fatalf("Get = %v %v", v, ok)
	}
	if _, ok := snap.Get("missing"); ok {
		t.Fatal("Get(missing) should report absent")
	}
	if len(snap.Dists) != 1 || snap.Dists[0].Min != 1 || snap.Dists[0].Max != 10 {
		t.Fatalf("dists = %+v", snap.Dists)
	}
}

func TestNilRegistryHandles(t *testing.T) {
	var reg *Registry
	c := reg.Counter("x")
	c.Inc()
	c.Add(5)
	if c.Value() != 0 || c.Name() != "" {
		t.Fatal("nil counter must stay zero")
	}
	d := reg.Distribution("y")
	d.Observe(1)
	if d.Count() != 0 || d.Mean() != 0 {
		t.Fatal("nil distribution must stay empty")
	}
	if snap := reg.Snapshot(); len(snap.Counters) != 0 || len(snap.Dists) != 0 {
		t.Fatal("nil registry snapshot must be empty")
	}
}

func TestSnapshotSortedAndEqual(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("z.last").Add(1)
	reg.Counter("a.first").Add(2)
	reg.Counter("m.mid").Add(3)
	snap := reg.Snapshot()
	names := []string{snap.Counters[0].Name, snap.Counters[1].Name, snap.Counters[2].Name}
	if names[0] != "a.first" || names[1] != "m.mid" || names[2] != "z.last" {
		t.Fatalf("snapshot not sorted: %v", names)
	}
	if !snap.Equal(reg.Snapshot()) {
		t.Fatal("identical snapshots must be Equal")
	}
	reg.Counter("a.first").Inc()
	if snap.Equal(reg.Snapshot()) {
		t.Fatal("changed registry must not Equal old snapshot")
	}
}

func TestSnapshotDiff(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("ops").Add(10)
	before := reg.Snapshot()
	reg.Counter("ops").Add(7)
	reg.Counter("new").Add(2)
	delta := reg.Snapshot().Diff(before)
	if v, _ := delta.Get("ops"); v != 7 {
		t.Errorf("diff ops = %v, want 7", v)
	}
	if v, _ := delta.Get("new"); v != 2 {
		t.Errorf("diff new = %v, want 2", v)
	}
}

func TestSnapshotExcludePrefix(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("runner.wall_ms").Add(123)
	reg.Counter("cache.l1_hits").Add(9)
	reg.Distribution("runner.task_ms").Observe(5)
	reg.Distribution("disk.seeks").Observe(1)
	snap := reg.Snapshot().ExcludePrefix("runner.")
	if len(snap.Counters) != 1 || snap.Counters[0].Name != "cache.l1_hits" {
		t.Fatalf("counters = %+v", snap.Counters)
	}
	if len(snap.Dists) != 1 || snap.Dists[0].Name != "disk.seeks" {
		t.Fatalf("dists = %+v", snap.Dists)
	}
}

func TestMergeSnapshots(t *testing.T) {
	a := NewRegistry()
	a.Counter("hits").Add(3)
	a.Distribution("lat").Observe(2)
	a.Distribution("lat").Observe(8)
	b := NewRegistry()
	b.Counter("hits").Add(4)
	b.Counter("misses").Add(1)
	b.Distribution("lat").Observe(1)
	merged := MergeSnapshots(a.Snapshot(), b.Snapshot())
	if v, _ := merged.Get("hits"); v != 7 {
		t.Errorf("merged hits = %v, want 7", v)
	}
	if v, _ := merged.Get("misses"); v != 1 {
		t.Errorf("merged misses = %v, want 1", v)
	}
	if len(merged.Dists) != 1 {
		t.Fatalf("merged dists = %+v", merged.Dists)
	}
	d := merged.Dists[0]
	if d.Count != 3 || d.Sum != 11 || d.Min != 1 || d.Max != 8 {
		t.Errorf("merged lat = %+v", d)
	}
	// merge must be independent of grouping but ordered parts give same bytes
	again := MergeSnapshots(a.Snapshot(), b.Snapshot())
	if !merged.Equal(again) {
		t.Fatal("merge not deterministic")
	}
}

func TestWriteChromeValidJSON(t *testing.T) {
	var clock sim.Clock
	rec := NewRecorder(&clock)
	tr := rec.Track("cpu")
	rec.Begin(tr, `quote"and\slash`)
	clock.Advance(1500) // 1.5us: exercises fractional timestamps
	rec.Instant(tr, "tick", 7, "detail\nline")
	clock.Advance(500)
	rec.End(tr, `quote"and\slash`, 2.5)

	var buf strings.Builder
	if err := WriteChrome(&buf, []Process{rec.Capture("Linux")}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	var events []map[string]any
	if err := json.Unmarshal([]byte(out), &events); err != nil {
		t.Fatalf("chrome output is not valid JSON: %v\n%s", err, out)
	}
	// 1 process_name + 2 per track (name + sort) * 2 tracks + 3 events
	if len(events) != 1+4+3 {
		t.Fatalf("got %d JSON events, want 8:\n%s", len(events), out)
	}
	var phases []string
	for _, e := range events {
		phases = append(phases, e["ph"].(string))
	}
	want := []string{"M", "M", "M", "M", "M", "B", "i", "E"}
	for i, p := range want {
		if phases[i] != p {
			t.Fatalf("phases = %v, want %v", phases, want)
		}
	}
	if !strings.Contains(out, `"ts":1.5`) {
		t.Errorf("fractional microsecond timestamp missing:\n%s", out)
	}
	if !strings.Contains(out, `"cost":2.5`) {
		t.Errorf("span cost missing:\n%s", out)
	}
}

func TestWriteChromeDeterministic(t *testing.T) {
	build := func() string {
		var clock sim.Clock
		rec := NewRecorder(&clock)
		a, b := rec.Track("a"), rec.Track("b")
		for i := 0; i < 10; i++ {
			clock.Advance(sim.Duration(100 * (i + 1)))
			rec.Begin(a, "op")
			rec.Instant(b, "note", i, "")
			clock.Advance(50)
			rec.End(a, "op", float64(i))
		}
		var buf strings.Builder
		if err := WriteChrome(&buf, []Process{rec.Capture("p")}); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	if build() != build() {
		t.Fatal("chrome export not byte-identical across identical runs")
	}
}

// TestDisabledPathZeroAllocs holds the package's core promise: with a nil
// recorder and nil metric handles, instrumented hot paths allocate nothing.
func TestDisabledPathZeroAllocs(t *testing.T) {
	var rec *Recorder
	var reg *Registry
	c := reg.Counter("hot.counter")
	d := reg.Distribution("hot.dist")
	tr := rec.Track("hot")
	allocs := testing.AllocsPerRun(1000, func() {
		rec.Begin(tr, "span")
		rec.Instant(tr, "point", 1, "")
		rec.End(tr, "span", 1)
		c.Inc()
		c.Add(2)
		d.Observe(3)
		if rec.Enabled() {
			rec.Instantf(tr, "fmt", 1, "n=%d", 4)
		}
	})
	if allocs != 0 {
		t.Fatalf("disabled path allocates %v per op, want 0", allocs)
	}
}

// TestEnabledPathSteadyStateAllocBudget pins the enabled-path budget: a
// ring recorder at capacity overwrites in place, and live metric handles
// mutate fields, so a span + instant + counter + distribution update
// allocates nothing once the ring is warm. Constant-string names are part
// of the contract — formatting stays behind Enabled().
func TestEnabledPathSteadyStateAllocBudget(t *testing.T) {
	var clock sim.Clock
	rec := NewRing(&clock, 1024)
	tr := rec.Track("hot")
	reg := NewRegistry()
	c := reg.Counter("hot.counter")
	d := reg.Distribution("hot.dist")
	// Fill the ring past its bound so steady state is overwrite-at-head,
	// not append-with-growth.
	for i := 0; i < 2048; i++ {
		rec.Begin(tr, "span")
		rec.End(tr, "span", 1)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		clock.Advance(1)
		rec.Begin(tr, "span")
		rec.Instant(tr, "point", 1, "")
		rec.End(tr, "span", 1)
		c.Inc()
		c.Add(2)
		d.Observe(3)
	})
	if allocs != 0 {
		t.Fatalf("enabled steady-state path allocates %v per op, want 0", allocs)
	}
}

// BenchmarkDisabledHotPath is the CI guard for the same property, with
// b.ReportAllocs so regressions are visible in benchmark output too.
func BenchmarkDisabledHotPath(b *testing.B) {
	var rec *Recorder
	var reg *Registry
	c := reg.Counter("hot.counter")
	tr := rec.Track("hot")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rec.Begin(tr, "span")
		rec.End(tr, "span", 1)
		c.Inc()
	}
}

// BenchmarkEnabledSpan measures the live-path cost for reference.
func BenchmarkEnabledSpan(b *testing.B) {
	var clock sim.Clock
	rec := NewRing(&clock, 4096)
	tr := rec.Track("hot")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rec.Begin(tr, "span")
		rec.End(tr, "span", 1)
	}
}
