// Package obs is the deterministic observability substrate shared by every
// model in this repository: hierarchical spans stamped with virtual sim
// time, named counters and distributions, and exporters (a Chrome
// trace-event JSON file loadable in Perfetto, and the per-phase
// cycle-attribution tables behind `pentiumbench metrics`).
//
// Two properties govern the design (DESIGN.md §9):
//
//   - Zero cost when off. The disabled state is a nil *Recorder (and a nil
//     *Counter / *Distribution handle); every method is a nil-receiver
//     no-op that performs no allocation, so instrumented hot paths cost
//     one predictable branch. TestDisabledPathZeroAllocs holds this with
//     testing.AllocsPerRun.
//
//   - Determinism. Events are stamped with virtual time from the model's
//     sim.Clock (or an explicit time for clockless models), never the wall
//     clock, and parallel harness runs keep one Recorder and one Registry
//     per task, merged in deterministic task order afterwards — so traces
//     and metric snapshots are bit-identical at every worker count. The
//     only exception is the harness's own self-observability (runner task
//     timings, worker utilization), which measures real wall time and is
//     kept under the "runner." name prefix, excluded from determinism
//     comparisons by ExcludePrefix.
package obs

import (
	"fmt"

	"repro/internal/sim"
)

// TrackID identifies one timeline within a Recorder: a simulated process,
// or a subsystem ("kernel", "fs", "disk", "tcp"). Track 0 always exists
// and is the recorder's default timeline.
type TrackID int32

// EventKind distinguishes span boundaries from point events.
type EventKind uint8

const (
	// EvBegin opens a span on a track. Spans nest per track: a Begin
	// inside an open span is a child in the Chrome trace view.
	EvBegin EventKind = iota
	// EvEnd closes the most recently opened span on the track.
	EvEnd
	// EvInstant is a point event.
	EvInstant
)

// String names the kind for debugging.
func (k EventKind) String() string {
	switch k {
	case EvBegin:
		return "begin"
	case EvEnd:
		return "end"
	case EvInstant:
		return "instant"
	}
	return fmt.Sprintf("EventKind(%d)", int(k))
}

// Event is one recorded trace event.
type Event struct {
	// When is the virtual time of the event.
	When sim.Time
	// Track is the timeline the event belongs to.
	Track TrackID
	// Kind says whether this begins a span, ends one, or is an instant.
	Kind EventKind
	// Name is the span or event name (a constant string on hot paths).
	Name string
	// PID is the simulated process involved, when any (0 otherwise).
	PID int
	// Cost carries an attributed cost for the event (virtual nanoseconds
	// or cycles, by the emitter's convention); 0 when unused.
	Cost float64
	// Detail is a human-readable annotation, formatted only while
	// recording is enabled.
	Detail string
}

// Recorder collects events for one single-threaded model run. A nil
// *Recorder is the disabled state: every method no-ops without
// allocating. Recorder is not safe for concurrent use — parallel harness
// code gives each task its own Recorder and merges afterwards.
type Recorder struct {
	clock  *sim.Clock
	tracks []string
	events []Event
	// limit > 0 bounds the buffer as a ring over the most recent events
	// (head marks the oldest); 0 keeps everything.
	limit int
	head  int
	// dropped counts events overwritten by the ring bound, so consumers
	// can tell a truncated capture from a complete one.
	dropped int
}

// NewRecorder returns an unbounded recorder stamping events from clock.
// A nil clock is allowed when every event supplies an explicit time via
// the ...At variants.
func NewRecorder(clock *sim.Clock) *Recorder {
	return &Recorder{clock: clock, tracks: []string{"main"}}
}

// NewRing returns a recorder that keeps only the most recent limit
// events, dropping the oldest first — the kernel's bounded text trace
// rides on this.
func NewRing(clock *sim.Clock, limit int) *Recorder {
	if limit <= 0 {
		panic("obs: ring limit must be positive")
	}
	r := NewRecorder(clock)
	r.limit = limit
	r.events = make([]Event, 0, limit)
	return r
}

// Enabled reports whether the recorder is live. It is the idiomatic guard
// for instrumentation whose argument preparation itself costs something
// (formatting, boxing): `if rec.Enabled() { rec.Instantf(...) }`.
func (r *Recorder) Enabled() bool { return r != nil }

// Track registers (or finds) a named timeline and returns its ID. On a
// nil recorder it returns 0, which every emitting method ignores.
func (r *Recorder) Track(name string) TrackID {
	if r == nil {
		return 0
	}
	for i, t := range r.tracks {
		if t == name {
			return TrackID(i)
		}
	}
	r.tracks = append(r.tracks, name)
	return TrackID(len(r.tracks) - 1)
}

// Tracks returns the registered track names in registration order.
func (r *Recorder) Tracks() []string {
	if r == nil {
		return nil
	}
	out := make([]string, len(r.tracks))
	copy(out, r.tracks)
	return out
}

// now returns the clock time, or 0 without a clock.
func (r *Recorder) now() sim.Time {
	if r.clock == nil {
		return 0
	}
	return r.clock.Now()
}

// record appends one event, honouring the ring bound.
func (r *Recorder) record(e Event) {
	if r.limit > 0 && len(r.events) == r.limit {
		r.dropped++
		r.events[r.head] = e
		r.head++
		if r.head == r.limit {
			r.head = 0
		}
		return
	}
	r.events = append(r.events, e)
}

// Begin opens a span on the track at the current virtual time.
func (r *Recorder) Begin(track TrackID, name string) {
	if r == nil {
		return
	}
	r.record(Event{When: r.now(), Track: track, Kind: EvBegin, Name: name})
}

// BeginAt opens a span at an explicit virtual time (for models that
// compute elapsed time without advancing a clock, like netstack).
func (r *Recorder) BeginAt(t sim.Time, track TrackID, name string) {
	if r == nil {
		return
	}
	r.record(Event{When: t, Track: track, Kind: EvBegin, Name: name})
}

// End closes the most recent open span on the track, attributing cost to
// it (0 for none).
func (r *Recorder) End(track TrackID, name string, cost float64) {
	if r == nil {
		return
	}
	r.record(Event{When: r.now(), Track: track, Kind: EvEnd, Name: name, Cost: cost})
}

// EndAt closes a span at an explicit virtual time.
func (r *Recorder) EndAt(t sim.Time, track TrackID, name string, cost float64) {
	if r == nil {
		return
	}
	r.record(Event{When: t, Track: track, Kind: EvEnd, Name: name, Cost: cost})
}

// Instant records a point event at the current virtual time.
func (r *Recorder) Instant(track TrackID, name string, pid int, detail string) {
	if r == nil {
		return
	}
	r.record(Event{When: r.now(), Track: track, Kind: EvInstant, Name: name, PID: pid, Detail: detail})
}

// InstantAt records a point event at an explicit virtual time.
func (r *Recorder) InstantAt(t sim.Time, track TrackID, name string, pid int, detail string) {
	if r == nil {
		return
	}
	r.record(Event{When: t, Track: track, Kind: EvInstant, Name: name, PID: pid, Detail: detail})
}

// Instantf records a point event with a formatted detail. The formatting
// allocates, so hot paths must guard the call with Enabled().
func (r *Recorder) Instantf(track TrackID, name string, pid int, format string, args ...any) {
	if r == nil {
		return
	}
	detail := format
	if len(args) > 0 {
		detail = fmt.Sprintf(format, args...)
	}
	r.record(Event{When: r.now(), Track: track, Kind: EvInstant, Name: name, PID: pid, Detail: detail})
}

// Dropped returns the number of events overwritten by the ring bound
// since the recorder was created (or last Reset). A nonzero count means
// the captured stream is the tail of a longer run — profiles and trace
// summaries built from it are truncated, not complete.
func (r *Recorder) Dropped() int {
	if r == nil {
		return 0
	}
	return r.dropped
}

// Len returns the number of buffered events.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	return len(r.events)
}

// Events returns the buffered events in record order (oldest first; for a
// ring recorder the oldest surviving event leads).
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	out := make([]Event, 0, len(r.events))
	out = append(out, r.events[r.head:]...)
	out = append(out, r.events[:r.head]...)
	return out
}

// Reset drops all buffered events, keeping tracks registered.
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	r.events = r.events[:0]
	r.head = 0
	r.dropped = 0
}

// Process couples one model run's trace with a display name, for export:
// each Process becomes one Chrome trace process (one group of tracks).
type Process struct {
	// Name labels the process in the trace viewer (an OS personality,
	// usually).
	Name string
	// Tracks are the track names, indexed by TrackID.
	Tracks []string
	// Events is the event stream in record order.
	Events []Event
	// Dropped is the number of older events the recorder's ring bound
	// overwrote before the capture: nonzero means Events is a tail.
	Dropped int
}

// Capture snapshots a recorder into an exportable Process.
func (r *Recorder) Capture(name string) Process {
	return Process{Name: name, Tracks: r.Tracks(), Events: r.Events(), Dropped: r.Dropped()}
}
