package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"
)

func TestSnapshotJSONRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("z.last").Add(2.5)
	reg.Counter("a.first").Add(3)
	reg.Counter("m.tiny").Add(1.0 / 3.0) // non-terminating binary fraction
	reg.Counter("m.big").Add(123456789012345)
	reg.Distribution("lat.us").Observe(0.125)
	reg.Distribution("lat.us").Observe(8)
	snap := reg.Snapshot()

	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal: %v\n%s", err, data)
	}
	if !snap.Equal(back) {
		t.Fatalf("round trip not bit-identical:\nin:  %s\nout: %s", snap, back)
	}
	// Marshal → Unmarshal → Marshal is byte-stable.
	again, err := json.Marshal(back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, again) {
		t.Fatalf("re-marshal changed bytes:\n%s\n%s", data, again)
	}
}

func TestSnapshotJSONSortedKeys(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("zz").Add(1)
	reg.Counter("aa").Add(2)
	reg.Counter("mm").Add(3)
	data, err := json.Marshal(reg.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	if !(bytes.Index(data, []byte(`"aa"`)) < bytes.Index(data, []byte(`"mm"`)) &&
		bytes.Index(data, []byte(`"mm"`)) < bytes.Index(data, []byte(`"zz"`))) {
		t.Fatalf("counter keys not sorted: %s", s)
	}
}

func TestSnapshotJSONEmpty(t *testing.T) {
	var snap Snapshot
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != `{"counters":{},"dists":{}}` {
		t.Fatalf("empty snapshot = %s", data)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Counters) != 0 || len(back.Dists) != 0 {
		t.Fatalf("empty round trip = %+v", back)
	}
}

func TestSnapshotJSONExtremeFloats(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("eps").Add(math.Nextafter(1, 2)) // 1 + 2^-52
	reg.Counter("sub").Add(5e-324)               // smallest denormal
	snap := reg.Snapshot()
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !snap.Equal(back) {
		t.Fatalf("extreme floats did not round-trip:\n%s\n%s", snap, back)
	}
}

func TestSnapshotJSONBadInput(t *testing.T) {
	var s Snapshot
	if err := json.Unmarshal([]byte(`{"counters":[1,2]}`), &s); err == nil {
		t.Fatal("expected error for malformed counters")
	}
}
