package validate

import (
	"fmt"
	"reflect"

	"repro/internal/core"
	"repro/internal/osprofile"
	"repro/internal/sim"
)

// Sensitivity analysis: the calibrated cost constants in the OS
// personalities are fitted values, so a reproduction claim is only
// trustworthy if it survives reasonable perturbation of them. Perturb
// multiplies every calibrated duration and efficiency by an independent
// uniform factor in [1-eps, 1+eps], leaving structural choices — the
// scheduler kind, metadata policy, table sizes, window sizes, transfer
// sizes, cache capacities — untouched: those come from the paper's text,
// not from fitting.

// Perturb returns a copy of p with every calibrated constant scaled by an
// independent uniform factor in [1-eps, 1+eps] drawn from rng.
func Perturb(p *osprofile.Profile, rng *sim.RNG, eps float64) *osprofile.Profile {
	out := *p // shallow copy; all fields are values
	perturbStruct(reflect.ValueOf(&out).Elem(), rng, eps)
	return &out
}

var durationType = reflect.TypeOf(sim.Duration(0))

func perturbStruct(v reflect.Value, rng *sim.RNG, eps float64) {
	for i := 0; i < v.NumField(); i++ {
		f := v.Field(i)
		switch {
		case f.Kind() == reflect.Struct:
			perturbStruct(f, rng, eps)
		case f.Type() == durationType:
			if d := f.Int(); d > 0 {
				f.SetInt(int64(float64(d) * factor(rng, eps)))
			}
		case f.Kind() == reflect.Float64:
			// Efficiencies and noise levels; keep efficiencies within (0, 1].
			val := f.Float()
			if val > 0 {
				scaled := val * factor(rng, eps)
				if val <= 1 && scaled > 1 {
					scaled = 1
				}
				f.SetFloat(scaled)
			}
		}
		// Ints, bools and strings are structural: never perturbed.
	}
}

func factor(rng *sim.RNG, eps float64) float64 {
	return 1 - eps + 2*eps*rng.Float64()
}

// ClaimRobustness is one claim's survival rate across perturbed trials.
type ClaimRobustness struct {
	Claim  Claim
	Passes int
	Trials int
	// FirstFailure records the first trial error, if any, for diagnosis.
	FirstFailure error
}

// Robust reports whether the claim passed every trial.
func (c ClaimRobustness) Robust() bool { return c.Passes == c.Trials }

// Sensitivity evaluates every claim across trials perturbed replicas of
// the study, each with all calibrated constants jittered by ±eps. The
// returned slice is in Claims() order.
func Sensitivity(base core.Config, eps float64, trials int) []ClaimRobustness {
	claims := Claims()
	out := make([]ClaimRobustness, len(claims))
	for i := range out {
		out[i].Claim = claims[i]
		out[i].Trials = trials
	}
	for trial := 0; trial < trials; trial++ {
		cfg := base
		cfg.Seed = base.Seed + uint64(trial)
		rng := sim.NewRNG(cfg.Seed).Fork(0x5e45)
		perturbed := make([]*osprofile.Profile, len(base.Profiles))
		for j, p := range base.Profiles {
			perturbed[j] = Perturb(p, rng, eps)
		}
		cfg.Profiles = perturbed
		for i, o := range RunAll(cfg) {
			if o.Passed() {
				out[i].Passes++
			} else if out[i].FirstFailure == nil {
				out[i].FirstFailure = fmt.Errorf("trial %d: %w", trial, o.Err)
			}
		}
	}
	return out
}
