package validate

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/stats"
)

func TestAllClaimsPassOnDefaultConfig(t *testing.T) {
	if testing.Short() {
		t.Skip("full claim sweep is a few seconds")
	}
	cfg := core.DefaultConfig()
	for _, o := range RunAll(cfg) {
		if !o.Passed() {
			t.Errorf("%s (%s) failed: %v\n  claim: %s",
				o.Claim.ID, o.Claim.Exhibit, o.Err, o.Claim.Statement)
		}
	}
}

func TestClaimsWellFormed(t *testing.T) {
	seen := map[string]bool{}
	for _, c := range Claims() {
		if c.ID == "" || c.Statement == "" || c.Check == nil {
			t.Errorf("claim %+v incomplete", c.ID)
		}
		if seen[c.ID] {
			t.Errorf("duplicate claim id %s", c.ID)
		}
		seen[c.ID] = true
		if _, ok := core.Lookup(c.Exhibit); !ok {
			t.Errorf("claim %s references unknown exhibit %s", c.ID, c.Exhibit)
		}
		if !strings.Contains(c.Statement, "§") {
			t.Errorf("claim %s does not cite a paper section: %q", c.ID, c.Statement)
		}
	}
	if len(seen) < 25 {
		t.Errorf("only %d claims encoded; the paper makes more testable statements", len(seen))
	}
}

func TestClaimsCoverEveryPaperExhibit(t *testing.T) {
	covered := map[string]bool{}
	for _, c := range Claims() {
		covered[c.Exhibit] = true
	}
	// Every table and the load-bearing figures must have at least one
	// claim. (F4, F6, F7 are explicitly "similar to" exhibits whose
	// claims live on F3/F6's partners.)
	for _, id := range []string{"T2", "T3", "T4", "T5", "T6", "T7",
		"F1", "F2", "F3", "F5", "F8", "F9", "F10", "F11", "F12", "F13"} {
		if !covered[id] {
			t.Errorf("no claim covers exhibit %s", id)
		}
	}
}

func TestClaimDetectsViolation(t *testing.T) {
	// Feed C01 a doctored result where Solaris is fastest; it must fail.
	bad := &core.Result{
		ID: "T2", Kind: core.Table,
		Series: []core.Series{
			{Label: "Linux 1.2.8", Samples: []*stats.Sample{sampleOf(3.0)}},
			{Label: "FreeBSD 2.0.5R", Samples: []*stats.Sample{sampleOf(2.6)}},
			{Label: "Solaris 2.4", Samples: []*stats.Sample{sampleOf(1.0)}},
		},
	}
	c := Claims()[0]
	if c.Check(bad) == nil {
		t.Fatal("C01 accepted an inverted ordering")
	}
}

func TestClaimReportsMissingSeries(t *testing.T) {
	empty := &core.Result{ID: "T2", Kind: core.Table}
	for _, c := range Claims()[:1] {
		if c.Check(empty) == nil {
			t.Errorf("%s accepted an empty result", c.ID)
		}
	}
}

func sampleOf(v float64) *stats.Sample {
	s := &stats.Sample{}
	s.Add(v)
	return s
}

func TestOutcomePassed(t *testing.T) {
	o := Outcome{}
	if !o.Passed() {
		t.Fatal("nil error should pass")
	}
}
