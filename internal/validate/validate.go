// Package validate encodes the paper's qualitative claims — who wins, by
// roughly what factor, where knees and crossovers fall — as executable
// predicates over experiment results. These are the reproduction's actual
// targets (absolute numbers are calibration; shapes are science).
//
// The claims drive three consumers: the test suite, the `pentiumbench
// check` command, and the sensitivity analysis, which re-evaluates every
// claim under perturbed calibration constants to show the conclusions do
// not hinge on the fitted values.
package validate

import (
	"fmt"
	"math"

	"repro/internal/core"
)

// Claim is one testable statement from the paper.
type Claim struct {
	// ID is a stable identifier ("C01").
	ID string
	// Exhibit is the experiment the claim is checked against.
	Exhibit string
	// Statement quotes or paraphrases the paper.
	Statement string
	// Check returns nil when the result satisfies the claim.
	Check func(r *core.Result) error
}

// Outcome is a claim evaluation.
type Outcome struct {
	Claim Claim
	// Err is nil on pass.
	Err error
}

// Passed reports whether the claim held.
func (o Outcome) Passed() bool { return o.Err == nil }

// seriesMean returns the mean of the series' sample at index idx.
func seriesMean(r *core.Result, label string, idx int) (float64, error) {
	s := r.FindSeries(label)
	if s == nil {
		return 0, fmt.Errorf("series %q missing", label)
	}
	if idx < 0 || idx >= len(s.Samples) {
		return 0, fmt.Errorf("series %q has no point %d", label, idx)
	}
	return s.Samples[idx].Mean(), nil
}

// meanAtX returns the series mean at the sweep value x.
func meanAtX(r *core.Result, label string, x float64) (float64, error) {
	s := r.FindSeries(label)
	if s == nil {
		return 0, fmt.Errorf("series %q missing", label)
	}
	for i, xv := range s.X {
		if xv == x {
			return s.Samples[i].Mean(), nil
		}
	}
	return 0, fmt.Errorf("series %q has no x=%v", label, x)
}

// nearestAtX returns the series mean at the sweep point closest to x.
func nearestAtX(r *core.Result, label string, x float64) (float64, error) {
	s := r.FindSeries(label)
	if s == nil {
		return 0, fmt.Errorf("series %q missing", label)
	}
	best, bestDist := 0.0, math.Inf(1)
	for i, xv := range s.X {
		d := math.Abs(math.Log(xv) - math.Log(x))
		if d < bestDist {
			bestDist = d
			best = s.Samples[i].Mean()
		}
	}
	return best, nil
}

const (
	linux   = "Linux 1.2.8"
	freebsd = "FreeBSD 2.0.5R"
	solaris = "Solaris 2.4"
)

// ordered checks means are strictly increasing across the labels.
func ordered(r *core.Result, idx int, labels ...string) error {
	prev := math.Inf(-1)
	prevLabel := ""
	for _, l := range labels {
		m, err := seriesMean(r, l, idx)
		if err != nil {
			return err
		}
		if m <= prev {
			return fmt.Errorf("%s (%.2f) not above %s (%.2f)", l, m, prevLabel, prev)
		}
		prev, prevLabel = m, l
	}
	return nil
}

// ratioBetween checks a/b lies within [lo, hi].
func ratioBetween(a, b, lo, hi float64, what string) error {
	if b == 0 {
		return fmt.Errorf("%s: zero denominator", what)
	}
	r := a / b
	if r < lo || r > hi {
		return fmt.Errorf("%s: ratio %.2f outside [%.2f, %.2f]", what, r, lo, hi)
	}
	return nil
}

// Claims returns every encoded claim, in paper order.
func Claims() []Claim {
	return []Claim{
		{
			ID: "C01", Exhibit: "T2",
			Statement: "§4: Linux has the fastest basic system call, followed by FreeBSD and then Solaris.",
			Check: func(r *core.Result) error {
				return ordered(r, 0, linux, freebsd, solaris)
			},
		},
		{
			ID: "C02", Exhibit: "F1",
			Statement: "§5: Linux has the best context switch time with fewer than 20 processes.",
			Check: func(r *core.Result) error {
				for _, x := range []float64{2, 8, 16} {
					l, err := meanAtX(r, linux, x)
					if err != nil {
						return err
					}
					f, err := meanAtX(r, freebsd, x)
					if err != nil {
						return err
					}
					if l >= f {
						return fmt.Errorf("at %v procs Linux %.1f ≥ FreeBSD %.1f", x, l, f)
					}
				}
				return nil
			},
		},
		{
			ID: "C03", Exhibit: "F1",
			Statement: "§5: FreeBSD is faster with more processes (crossover near 20).",
			Check: func(r *core.Result) error {
				l, err := meanAtX(r, linux, 40)
				if err != nil {
					return err
				}
				f, err := meanAtX(r, freebsd, 40)
				if err != nil {
					return err
				}
				if l <= f {
					return fmt.Errorf("at 40 procs Linux %.1f ≤ FreeBSD %.1f", l, f)
				}
				return nil
			},
		},
		{
			ID: "C04", Exhibit: "F1",
			Statement: "§5: Linux context switching time increases linearly with the number of active processes.",
			Check: func(r *core.Result) error {
				a, err := meanAtX(r, linux, 64)
				if err != nil {
					return err
				}
				b, err := meanAtX(r, linux, 128)
				if err != nil {
					return err
				}
				c, err := meanAtX(r, linux, 256)
				if err != nil {
					return err
				}
				d1 := (b - a) / 64
				d2 := (c - b) / 128
				return ratioBetween(d2, d1, 0.7, 1.3, "per-task slope stability")
			},
		},
		{
			ID: "C05", Exhibit: "F1",
			Statement: "§5: FreeBSD context switches at almost the same speed no matter how many processes.",
			Check: func(r *core.Result) error {
				lo, hi := math.Inf(1), math.Inf(-1)
				s := r.FindSeries(freebsd)
				if s == nil {
					return fmt.Errorf("missing FreeBSD series")
				}
				for i := range s.X {
					m := s.Samples[i].Mean()
					lo, hi = math.Min(lo, m), math.Max(hi, m)
				}
				return ratioBetween(hi, lo, 1, 1.2, "FreeBSD flatness")
			},
		},
		{
			ID: "C06", Exhibit: "F1",
			Statement: "§5: Solaris context switches more slowly in all cases (within the figure's range; Linux's O(n) line must cross it eventually, around 250 processes in our model).",
			Check: func(r *core.Result) error {
				s := r.FindSeries(solaris)
				if s == nil {
					return fmt.Errorf("missing Solaris series")
				}
				for i, x := range s.X {
					if x > 128 {
						break // beyond the paper's plotted range
					}
					sm := s.Samples[i].Mean()
					for _, other := range []string{linux, freebsd} {
						om, err := meanAtX(r, other, x)
						if err != nil {
							return err
						}
						if sm <= om {
							return fmt.Errorf("at %v procs Solaris %.1f ≤ %s %.1f", x, sm, other, om)
						}
					}
				}
				return nil
			},
		},
		{
			ID: "C07", Exhibit: "F1",
			Statement: "§5: Solaris shows a large increase in context switch time at about 32 processes.",
			Check: func(r *core.Result) error {
				at32, err := meanAtX(r, solaris, 32)
				if err != nil {
					return err
				}
				at48, err := meanAtX(r, solaris, 48)
				if err != nil {
					return err
				}
				if at48 < at32*1.3 {
					return fmt.Errorf("no jump: %.1f @32 vs %.1f @48", at32, at48)
				}
				return nil
			},
		},
		{
			ID: "C08", Exhibit: "F1",
			Statement: "§5: the LIFO chain rises at 32 too, but grows gradually for more than 64 processes.",
			Check: func(r *core.Result) error {
				lifo := r.FindSeries("Solaris-LIFO")
				if lifo == nil {
					return fmt.Errorf("missing Solaris-LIFO series")
				}
				ring40, err := meanAtX(r, solaris, 40)
				if err != nil {
					return err
				}
				lifo40, err := meanAtX(r, "Solaris-LIFO", 40)
				if err != nil {
					return err
				}
				if lifo40 >= ring40 {
					return fmt.Errorf("LIFO @40 (%.1f) not below ring (%.1f)", lifo40, ring40)
				}
				lifo96, err := meanAtX(r, "Solaris-LIFO", 96)
				if err != nil {
					return err
				}
				lifo192, err := meanAtX(r, "Solaris-LIFO", 192)
				if err != nil {
					return err
				}
				if lifo192 < lifo96 {
					return fmt.Errorf("LIFO should keep growing: %.1f @96 vs %.1f @192", lifo96, lifo192)
				}
				return nil
			},
		},
		{
			ID: "C09", Exhibit: "F2",
			Statement: "§6.1: read bandwidth plateaus near 300 (L1), 110 (L2) and 75 MB/s (memory).",
			Check: func(r *core.Result) error {
				hw := "Pentium P54C-100"
				for _, p := range []struct {
					x, want float64
				}{{4 << 10, 300}, {64 << 10, 110}, {2 << 20, 75}} {
					got, err := nearestAtX(r, hw, p.x)
					if err != nil {
						return err
					}
					if err := ratioBetween(got, p.want, 0.85, 1.15, fmt.Sprintf("plateau @%v", p.x)); err != nil {
						return err
					}
				}
				return nil
			},
		},
		{
			ID: "C10", Exhibit: "F3",
			Statement: "§6.2: memset write bandwidth does not reach even 50 MB/s at any size.",
			Check: func(r *core.Result) error {
				s := r.FindSeries("Pentium P54C-100")
				if s == nil {
					return fmt.Errorf("missing hardware series")
				}
				for i, x := range s.X {
					if m := s.Samples[i].Mean(); m >= 50 {
						return fmt.Errorf("memset %.1f MB/s at %v bytes", m, x)
					}
				}
				return nil
			},
		},
		{
			ID: "C11", Exhibit: "F5",
			Statement: "§6.2: software prefetch improves peak write bandwidth to ~310 MB/s.",
			Check: func(r *core.Result) error {
				got, err := nearestAtX(r, "Pentium P54C-100", 4<<10)
				if err != nil {
					return err
				}
				return ratioBetween(got, 310, 0.85, 1.15, "prefetch write peak")
			},
		},
		{
			ID: "C12", Exhibit: "F8",
			Statement: "§6.3: the prefetching copy achieves over 160 MB/s, approaching the read peak in total bandwidth.",
			Check: func(r *core.Result) error {
				got, err := nearestAtX(r, "Pentium P54C-100", 2<<10)
				if err != nil {
					return err
				}
				if got < 150 {
					return fmt.Errorf("prefetch copy peak %.1f < 150", got)
				}
				return nil
			},
		},
		{
			ID: "C13", Exhibit: "F9",
			Statement: "§7.1: all three systems cache files up to ~20 MB of the 32 MB machine.",
			Check: func(r *core.Result) error {
				for _, os := range []string{linux, freebsd, solaris} {
					cached, err := meanAtX(r, os, 16)
					if err != nil {
						return err
					}
					uncached, err := meanAtX(r, os, 32)
					if err != nil {
						return err
					}
					if cached < 3*uncached {
						return fmt.Errorf("%s: no cache knee (%.1f @16MB vs %.1f @32MB)", os, cached, uncached)
					}
				}
				return nil
			},
		},
		{
			ID: "C14", Exhibit: "F9",
			Statement: "§7.1: for cached files FreeBSD reads 5-15% faster than both Linux and Solaris.",
			Check: func(r *core.Result) error {
				f, err := meanAtX(r, freebsd, 4)
				if err != nil {
					return err
				}
				for _, os := range []string{linux, solaris} {
					o, err := meanAtX(r, os, 4)
					if err != nil {
						return err
					}
					if err := ratioBetween(f, o, 1.02, 1.30, "FreeBSD cached-read advantage over "+os); err != nil {
						return err
					}
				}
				return nil
			},
		},
		{
			ID: "C15", Exhibit: "F9",
			Statement: "§7.1: outside the cache Solaris has the best read bandwidth and Linux the worst.",
			Check: func(r *core.Result) error {
				return ordered(r, len(r.Series[0].Samples)-1, linux, freebsd, solaris)
			},
		},
		{
			ID: "C16", Exhibit: "F10",
			Statement: "§7.1: FreeBSD writes files under 8 MB ~50% faster than Solaris.",
			Check: func(r *core.Result) error {
				f, err := meanAtX(r, freebsd, 4)
				if err != nil {
					return err
				}
				s, err := meanAtX(r, solaris, 4)
				if err != nil {
					return err
				}
				return ratioBetween(f, s, 1.2, 1.8, "FreeBSD/Solaris small write")
			},
		},
		{
			ID: "C17", Exhibit: "F10",
			Statement: "§7.1: Linux maintains less than half the write bandwidth of FreeBSD or Solaris at almost all sizes.",
			Check: func(r *core.Result) error {
				for _, x := range []float64{2, 8, 48} {
					l, err := meanAtX(r, linux, x)
					if err != nil {
						return err
					}
					f, err := meanAtX(r, freebsd, x)
					if err != nil {
						return err
					}
					if l > 0.6*f {
						return fmt.Errorf("at %v MB Linux %.2f > 0.6x FreeBSD %.2f", x, l, f)
					}
				}
				return nil
			},
		},
		{
			ID: "C18", Exhibit: "F11",
			Statement: "§7.1: Linux and Solaris perform ~50% more seeks/s than FreeBSD for cached files.",
			Check: func(r *core.Result) error {
				f, err := meanAtX(r, freebsd, 4)
				if err != nil {
					return err
				}
				for _, os := range []string{linux, solaris} {
					o, err := meanAtX(r, os, 4)
					if err != nil {
						return err
					}
					if err := ratioBetween(o, f, 1.2, 2.0, os+" cached seeks over FreeBSD"); err != nil {
						return err
					}
				}
				return nil
			},
		},
		{
			ID: "C19", Exhibit: "F11",
			Statement: "§7.1: all three converge for uncached random seeks (~14 ms to blocks on disk).",
			Check: func(r *core.Result) error {
				last := len(r.Series[0].Samples) - 1
				var vals []float64
				for _, os := range []string{linux, freebsd, solaris} {
					m, err := seriesMean(r, os, last)
					if err != nil {
						return err
					}
					vals = append(vals, m)
				}
				lo, hi := math.Min(vals[0], math.Min(vals[1], vals[2])), math.Max(vals[0], math.Max(vals[1], vals[2]))
				return ratioBetween(hi, lo, 1, 1.3, "uncached seek convergence")
			},
		},
		{
			ID: "C20", Exhibit: "F12",
			Statement: "§7: on small-file metadata workloads Linux is an order of magnitude faster than the other systems.",
			Check: func(r *core.Result) error {
				l, err := meanAtX(r, linux, 1024)
				if err != nil {
					return err
				}
				for _, os := range []string{freebsd, solaris} {
					o, err := meanAtX(r, os, 1024)
					if err != nil {
						return err
					}
					if o < 8*l {
						return fmt.Errorf("%s (%.1f ms) not ~10x Linux (%.1f ms)", os, o, l)
					}
				}
				return nil
			},
		},
		{
			ID: "C21", Exhibit: "F12",
			Statement: "§7.2: the FreeBSD-Solaris crtdel difference stays almost constant at ~32 ms from 1 KB to 1 MB.",
			Check: func(r *core.Result) error {
				gapAt := func(x float64) (float64, error) {
					f, err := meanAtX(r, freebsd, x)
					if err != nil {
						return 0, err
					}
					s, err := meanAtX(r, solaris, x)
					if err != nil {
						return 0, err
					}
					return f - s, nil
				}
				small, err := gapAt(1024)
				if err != nil {
					return err
				}
				big, err := gapAt(1 << 20)
				if err != nil {
					return err
				}
				if small < 22 || small > 45 {
					return fmt.Errorf("small-file gap %.1f ms not ~32", small)
				}
				if math.Abs(big-small) > 15 {
					return fmt.Errorf("gap drifts: %.1f ms at 1KB vs %.1f ms at 1MB", small, big)
				}
				return nil
			},
		},
		{
			ID: "C22", Exhibit: "T3",
			Statement: "§8.1: MAB order is Linux, FreeBSD, Solaris — and the spread is much narrower than the microbenchmarks'.",
			Check: func(r *core.Result) error {
				if err := ordered(r, 0, linux, freebsd, solaris); err != nil {
					return err
				}
				l, _ := seriesMean(r, linux, 0)
				s, _ := seriesMean(r, solaris, 0)
				return ratioBetween(s, l, 1, 1.5, "MAB spread")
			},
		},
		{
			ID: "C23", Exhibit: "T4",
			Statement: "§9.1: pipe bandwidth order is Linux, FreeBSD, Solaris.",
			Check: func(r *core.Result) error {
				return ordered(r, 0, solaris, freebsd, linux)
			},
		},
		{
			ID: "C24", Exhibit: "F13",
			Statement: "§9.2: UDP peaks near 48 (FreeBSD), 32 (Solaris), 16 Mb/s (Linux) — Linux worst despite the best pipes.",
			Check: func(r *core.Result) error {
				last := len(r.Series[0].Samples) - 1
				f, _ := seriesMean(r, freebsd, last)
				s, _ := seriesMean(r, solaris, last)
				l, _ := seriesMean(r, linux, last)
				if !(f > s && s > l) {
					return fmt.Errorf("peak order wrong: F %.1f, S %.1f, L %.1f", f, s, l)
				}
				if err := ratioBetween(f, 48, 0.8, 1.2, "FreeBSD UDP peak"); err != nil {
					return err
				}
				return ratioBetween(l, 16, 0.8, 1.2, "Linux UDP peak")
			},
		},
		{
			ID: "C25", Exhibit: "T5",
			Statement: "§9.3: TCP — FreeBSD leads, Solaris close behind, Linux at ~38% of FreeBSD (one-packet window).",
			Check: func(r *core.Result) error {
				f, _ := seriesMean(r, freebsd, 0)
				s, _ := seriesMean(r, solaris, 0)
				l, _ := seriesMean(r, linux, 0)
				if !(f > s && s > l) {
					return fmt.Errorf("order wrong: %.1f %.1f %.1f", f, s, l)
				}
				return ratioBetween(l, f, 0.28, 0.48, "Linux/FreeBSD TCP")
			},
		},
		{
			ID: "C26", Exhibit: "T6",
			Statement: "§10: with a Linux server, the FreeBSD client is the top performer; Linux and Solaris effectively tie.",
			Check: func(r *core.Result) error {
				f, _ := seriesMean(r, freebsd, 0)
				l, _ := seriesMean(r, linux, 0)
				s, _ := seriesMean(r, solaris, 0)
				if !(f < l && f < s) {
					return fmt.Errorf("FreeBSD (%.1f) not fastest: L %.1f, S %.1f", f, l, s)
				}
				return ratioBetween(l, s, 0.92, 1.08, "Linux/Solaris tie")
			},
		},
		{
			ID: "C27", Exhibit: "T7",
			Statement: "§10: with a SunOS server the order is FreeBSD, Solaris, Linux — Linux 'performs miserably'.",
			Check: func(r *core.Result) error {
				if err := ordered(r, 0, freebsd, solaris, linux); err != nil {
					return err
				}
				f, _ := seriesMean(r, freebsd, 0)
				l, _ := seriesMean(r, linux, 0)
				return ratioBetween(l, f, 1.4, 2.2, "Linux collapse vs FreeBSD")
			},
		},
		{
			ID: "C28", Exhibit: "F2",
			Statement: "§6.4: buffer sizes that leave bytes to the one-byte tail loop dip below their aligned neighbours at the low end.",
			Check: func(r *core.Result) error {
				s := r.FindSeries("Pentium P54C-100")
				if s == nil {
					return fmt.Errorf("missing hardware series")
				}
				// Find a ragged size (2^k-1) and its aligned neighbour.
				dips := 0
				for i, x := range s.X {
					size := int(x)
					if size > 4096 || size < 100 || (size+1)&size != 0 {
						continue // want small 2^k-1 sizes
					}
					aligned, err := meanAtX(r, s.Label, float64(size+1))
					if err != nil {
						continue
					}
					if s.Samples[i].Mean() < aligned*0.92 {
						dips++
					}
				}
				if dips == 0 {
					return fmt.Errorf("no tail-loop dips found at ragged sizes")
				}
				return nil
			},
		},
		{
			ID: "C29", Exhibit: "T4",
			Statement: "§9.1: Linux and FreeBSD pipes could theoretically keep up with a 100 Mb/s Ethernet; Solaris could not.",
			Check: func(r *core.Result) error {
				l, _ := seriesMean(r, linux, 0)
				f, _ := seriesMean(r, freebsd, 0)
				s, _ := seriesMean(r, solaris, 0)
				if l < 100 {
					return fmt.Errorf("Linux pipes %.1f Mb/s below 100", l)
				}
				// "Could theoretically keep up" is generous even in the
				// paper (98.03 Mb/s); the claim asserts FreeBSD is in the
				// 100 Mb/s class, not strictly above the line.
				if f < 80 {
					return fmt.Errorf("FreeBSD pipes %.1f Mb/s out of the 100 Mb/s class", f)
				}
				if s >= 100 {
					return fmt.Errorf("Solaris pipes %.1f Mb/s should be below 100", s)
				}
				return nil
			},
		},
		{
			ID: "C30", Exhibit: "F13",
			Statement: "§9.2: FreeBSD's and Solaris' UDP runs at ~50% of their pipe bandwidth; Linux's at only ~14% of its own.",
			Check: func(r *core.Result) error {
				// Paper Table 4 pipe bandwidths as the reference.
				pipe := map[string]float64{linux: 119.36, freebsd: 98.03, solaris: 65.38}
				last := len(r.Series[0].Samples) - 1
				for _, os := range []string{freebsd, solaris} {
					m, err := seriesMean(r, os, last)
					if err != nil {
						return err
					}
					if err := ratioBetween(m, pipe[os], 0.40, 0.60, os+" UDP/pipe"); err != nil {
						return err
					}
				}
				m, err := seriesMean(r, linux, last)
				if err != nil {
					return err
				}
				return ratioBetween(m, pipe[linux], 0.09, 0.20, "Linux UDP/pipe")
			},
		},
	}
}

// RunAll evaluates every claim under cfg, running each exhibit once.
func RunAll(cfg core.Config) []Outcome {
	cache := map[string]*core.Result{}
	resultFor := func(id string) (*core.Result, error) {
		if r, ok := cache[id]; ok {
			return r, nil
		}
		e, ok := core.Lookup(id)
		if !ok {
			return nil, fmt.Errorf("no experiment %q", id)
		}
		r := e.Run(cfg)
		cache[id] = r
		return r, nil
	}
	var out []Outcome
	for _, c := range Claims() {
		r, err := resultFor(c.Exhibit)
		if err != nil {
			out = append(out, Outcome{Claim: c, Err: err})
			continue
		}
		out = append(out, Outcome{Claim: c, Err: c.Check(r)})
	}
	return out
}
