package validate

import (
	"testing"

	"repro/internal/core"
	"repro/internal/osprofile"
	"repro/internal/sim"
)

func TestPerturbScalesDurations(t *testing.T) {
	base := osprofile.Solaris24()
	rng := sim.NewRNG(1)
	p := Perturb(base, rng, 0.2)
	if p.Kernel.Syscall == base.Kernel.Syscall {
		t.Error("syscall cost unperturbed")
	}
	ratio := float64(p.Kernel.Syscall) / float64(base.Kernel.Syscall)
	if ratio < 0.8 || ratio > 1.2 {
		t.Errorf("perturbation ratio %.3f outside ±20%%", ratio)
	}
	// Nested structs are reached.
	if p.FS.WritePerKB == base.FS.WritePerKB && p.Net.TCPCopyPerKB == base.Net.TCPCopyPerKB {
		t.Error("nested cost fields unperturbed")
	}
}

func TestPerturbPreservesStructure(t *testing.T) {
	base := osprofile.Linux128()
	p := Perturb(base, sim.NewRNG(2), 0.2)
	if p.Kernel.Scheduler != base.Kernel.Scheduler {
		t.Error("scheduler kind must not change")
	}
	if p.Net.TCPWindowPackets != base.Net.TCPWindowPackets {
		t.Error("TCP window is structural (the paper states it)")
	}
	if p.FS.MetaPolicy != base.FS.MetaPolicy {
		t.Error("metadata policy is structural")
	}
	if p.FS.SyncWritesPerCreate != base.FS.SyncWritesPerCreate {
		t.Error("sync write counts are structural")
	}
	if p.Kernel.PipeCapacity != base.Kernel.PipeCapacity {
		t.Error("pipe capacity is structural")
	}
	if p.Name != base.Name || p.Version != base.Version {
		t.Error("identity must not change")
	}
}

func TestPerturbEfficiencyBounds(t *testing.T) {
	base := osprofile.Solaris24() // SeqReadEff 0.90: scaling up must clamp at 1
	for seed := uint64(0); seed < 50; seed++ {
		p := Perturb(base, sim.NewRNG(seed), 0.2)
		if p.FS.SeqReadEff <= 0 || p.FS.SeqReadEff > 1 {
			t.Fatalf("seed %d: SeqReadEff = %v out of (0,1]", seed, p.FS.SeqReadEff)
		}
	}
}

func TestPerturbDoesNotMutateBase(t *testing.T) {
	base := osprofile.FreeBSD205()
	want := base.Kernel.Syscall
	Perturb(base, sim.NewRNG(3), 0.5)
	if base.Kernel.Syscall != want {
		t.Fatal("Perturb mutated its input")
	}
}

func TestPerturbDeterministic(t *testing.T) {
	a := Perturb(osprofile.Linux128(), sim.NewRNG(7), 0.2)
	b := Perturb(osprofile.Linux128(), sim.NewRNG(7), 0.2)
	if a.Kernel.Syscall != b.Kernel.Syscall || a.FS.WritePerKB != b.FS.WritePerKB {
		t.Fatal("Perturb not deterministic")
	}
}

func TestSensitivitySmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("sensitivity trial takes a few seconds")
	}
	cfg := core.DefaultConfig()
	cfg.Runs = 5
	rob := Sensitivity(cfg, 0.05, 1)
	if len(rob) != len(Claims()) {
		t.Fatalf("robustness rows %d != claims %d", len(rob), len(Claims()))
	}
	pass := 0
	for _, r := range rob {
		if r.Trials != 1 {
			t.Fatalf("trials = %d, want 1", r.Trials)
		}
		if r.Robust() {
			pass++
		} else {
			t.Logf("claim %s fragile at ±5%%: %v", r.Claim.ID, r.FirstFailure)
		}
	}
	// At ±5% essentially everything must survive.
	if pass < len(rob)-2 {
		t.Errorf("only %d/%d claims survive a ±5%% perturbation", pass, len(rob))
	}
}
