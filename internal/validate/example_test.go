package validate_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/validate"
)

// Example evaluates one of the paper's claims against a fresh run of its
// exhibit.
func Example() {
	claims := validate.Claims()
	c := claims[0] // C01: the Table 2 syscall ordering
	exp, _ := core.Lookup(c.Exhibit)
	cfg := core.DefaultConfig()
	cfg.Runs = 5
	err := c.Check(exp.Run(cfg))
	fmt.Printf("%s holds: %v\n", c.ID, err == nil)
	// Output:
	// C01 holds: true
}
