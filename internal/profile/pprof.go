package profile

import (
	"io"
	"strings"
)

// WritePprof emits the profile as uncompressed pprof protobuf
// (github.com/google/pprof/proto/profile.proto), the format
// `go tool pprof` reads directly — pprof sniffs for gzip and falls back
// to raw protobuf, and skipping compression keeps the bytes a pure
// function of the samples. The encoder is hand-rolled varint/wire
// emission over the canonical sample order: no protobuf dependency, no
// maps at emission time, deterministic output.
//
// Layout: every unique frame name becomes one Function and one
// Location (ids are 1-based, assigned in first-use order along the
// canonical sample order); every folded stack becomes one Sample with
// two values — span count and self virtual nanoseconds — and pprof's
// leaf-first location order (the fold stores stacks root-first, so
// emission reverses). The period and default sample type advertise
// virtual time so `go tool pprof -top` ranks by it out of the box.
func (p *Profile) WritePprof(w io.Writer) error {
	e := &pprofEncoder{strIdx: map[string]int64{"": 0}, strs: []string{""}}

	// Sample types: [spans count, virtualtime nanoseconds].
	countType := e.valueType("spans", "count")
	timeType := e.valueType("virtualtime", "nanoseconds")

	locIdx := map[string]uint64{}
	var locs, funcs []byte
	var samples []byte
	for _, s := range p.sorted() {
		// Resolve each frame to a location id, creating on first use.
		ids := make([]uint64, len(s.Stack))
		for i, frame := range s.Stack {
			id, ok := locIdx[frame]
			if !ok {
				id = uint64(len(locIdx) + 1)
				locIdx[frame] = id
				// Function: id, name, system_name, filename.
				var fn []byte
				fn = appendUvarintField(fn, 1, id)
				fn = appendUvarintField(fn, 2, uint64(e.str(frame)))
				fn = appendUvarintField(fn, 3, uint64(e.str(frame)))
				fn = appendUvarintField(fn, 4, uint64(e.str("(virtual)")))
				funcs = appendBytesField(funcs, 5, fn)
				// Location: id, one Line pointing at the function.
				var line []byte
				line = appendUvarintField(line, 1, id)
				var loc []byte
				loc = appendUvarintField(loc, 1, id)
				loc = appendBytesField(loc, 4, line)
				locs = appendBytesField(locs, 4, loc)
			}
			ids[i] = id
		}
		// Sample: packed leaf-first location ids, packed values.
		var locPacked []byte
		for i := len(ids) - 1; i >= 0; i-- {
			locPacked = appendUvarint(locPacked, ids[i])
		}
		var valPacked []byte
		valPacked = appendUvarint(valPacked, uint64(s.Count))
		valPacked = appendUvarint(valPacked, uint64(s.SelfNs))
		var sample []byte
		sample = appendBytesField(sample, 1, locPacked)
		sample = appendBytesField(sample, 2, valPacked)
		samples = appendBytesField(samples, 2, sample)
	}

	var out []byte
	out = appendBytesField(out, 1, countType)
	out = appendBytesField(out, 1, timeType)
	out = append(out, samples...)
	out = append(out, locs...)
	out = append(out, funcs...)
	for _, s := range e.strs {
		out = appendBytesField(out, 6, []byte(s))
	}
	// duration_nanos: the profile-wide virtual weight.
	out = appendUvarintField(out, 10, uint64(p.TotalNs()))
	// period_type + period: one virtual nanosecond per unit, and the
	// default sample type is the time column.
	out = appendBytesField(out, 11, e.valueType("virtualtime", "nanoseconds"))
	out = appendUvarintField(out, 12, 1)
	out = appendUvarintField(out, 14, uint64(e.str("virtualtime")))

	_, err := w.Write(out)
	return err
}

// pprofEncoder interns strings into the profile string table.
type pprofEncoder struct {
	strIdx map[string]int64
	strs   []string
}

// str interns s and returns its string-table index.
func (e *pprofEncoder) str(s string) int64 {
	if i, ok := e.strIdx[s]; ok {
		return i
	}
	i := int64(len(e.strs))
	e.strIdx[s] = i
	e.strs = append(e.strs, s)
	return i
}

// valueType encodes a ValueType message {type, unit} as string indices.
func (e *pprofEncoder) valueType(typ, unit string) []byte {
	var b []byte
	b = appendUvarintField(b, 1, uint64(e.str(typ)))
	b = appendUvarintField(b, 2, uint64(e.str(unit)))
	return b
}

// appendUvarint appends v in protobuf base-128 varint encoding.
func appendUvarint(b []byte, v uint64) []byte {
	for v >= 0x80 {
		b = append(b, byte(v)|0x80)
		v >>= 7
	}
	return append(b, byte(v))
}

// appendUvarintField appends a varint-typed field (wire type 0).
// Skips zero values, matching proto3 default omission.
func appendUvarintField(b []byte, field int, v uint64) []byte {
	if v == 0 {
		return b
	}
	b = appendUvarint(b, uint64(field)<<3|0)
	return appendUvarint(b, v)
}

// appendBytesField appends a length-delimited field (wire type 2).
// Zero-length payloads are still emitted: the empty string at string
// table index 0 is mandatory in the pprof format.
func appendBytesField(b []byte, field int, payload []byte) []byte {
	b = appendUvarint(b, uint64(field)<<3|2)
	b = appendUvarint(b, uint64(len(payload)))
	return append(b, payload...)
}

// FoldedString is a convenience for tests and debugging: the folded
// output as one string.
func (p *Profile) FoldedString() string {
	var b strings.Builder
	_ = p.WriteFolded(&b)
	return b.String()
}
