package profile

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WriteFolded emits the profile in Brendan Gregg's folded-stack format,
// one line per unique stack:
//
//	Linux 1.2.8;kernel;syscall;copy 10600
//
// Frames are joined root-first with ';' and the weight is the stack's
// self time in integer virtual nanoseconds, so the output feeds
// flamegraph.pl / inferno / speedscope unchanged. Lines are sorted by
// stack, making the bytes independent of fold and merge order.
func (p *Profile) WriteFolded(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, s := range p.sorted() {
		if _, err := bw.WriteString(strings.Join(s.Stack, stackSep)); err != nil {
			return err
		}
		if err := bw.WriteByte(' '); err != nil {
			return err
		}
		if _, err := bw.WriteString(strconv.FormatInt(s.SelfNs, 10)); err != nil {
			return err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// frameRow is one row of a flat/cumulative table.
type frameRow struct {
	name      string
	flat, cum int64
	count     int64
}

// WriteTop renders per-track flat/cumulative attribution tables, the
// `pentiumbench profile -format=top` view. For every (process, track)
// timeline — ordered by process then track — it prints the frames
// ranked by flat (self) time, with cumulative time and percentages of
// the track total. topN > 0 truncates each table to its heaviest N
// rows (a truncation note keeps the cut visible); 0 keeps every row.
func (p *Profile) WriteTop(w io.Writer, topN int) error {
	bw := bufio.NewWriter(w)
	samples := p.sorted()
	first := true
	for _, tt := range p.TrackTotals() {
		// Flat: self weight per frame name where it is the leaf.
		// Cum: sample weight per frame name appearing anywhere in the
		// stack below the track (counted once per sample).
		rows := map[string]*frameRow{}
		for _, s := range samples {
			if len(s.Stack) < 3 || s.Stack[0] != tt.Process || s.Stack[1] != tt.Track {
				continue
			}
			frames := s.Stack[2:]
			leaf := frames[len(frames)-1]
			seen := map[string]bool{}
			for _, f := range frames {
				if seen[f] {
					continue
				}
				seen[f] = true
				r := rows[f]
				if r == nil {
					r = &frameRow{name: f}
					rows[f] = r
				}
				r.cum += s.SelfNs
				// Descendant self time folds into cum via the other
				// samples sharing this prefix frame.
			}
			r := rows[leaf]
			r.flat += s.SelfNs
			r.count += s.Count
		}
		// Cum as computed above only counts each sample's self weight
		// for every frame on its stack — which is exactly inclusive
		// time, since descendants' samples repeat the ancestor frames.
		ordered := make([]*frameRow, 0, len(rows))
		for _, r := range rows {
			ordered = append(ordered, r)
		}
		sort.Slice(ordered, func(i, j int) bool {
			if ordered[i].flat != ordered[j].flat {
				return ordered[i].flat > ordered[j].flat
			}
			if ordered[i].cum != ordered[j].cum {
				return ordered[i].cum > ordered[j].cum
			}
			return ordered[i].name < ordered[j].name
		})
		if !first {
			fmt.Fprintln(bw)
		}
		first = false
		trunc := ""
		if tt.Truncated > 0 {
			trunc = fmt.Sprintf("  [truncated: %d spans folded incompletely]", tt.Truncated)
		}
		fmt.Fprintf(bw, "%s — %s: %s over %d spans%s\n",
			tt.Process, tt.Track, fmtNs(tt.TotalNs), tt.Spans, trunc)
		fmt.Fprintf(bw, "  %12s %7s %12s %7s %8s  %s\n",
			"flat", "flat%", "cum", "cum%", "spans", "frame")
		shown := ordered
		if topN > 0 && len(shown) > topN {
			shown = shown[:topN]
		}
		for _, r := range shown {
			fmt.Fprintf(bw, "  %12s %6.2f%% %12s %6.2f%% %8d  %s\n",
				fmtNs(r.flat), pct(r.flat, tt.TotalNs),
				fmtNs(r.cum), pct(r.cum, tt.TotalNs), r.count, r.name)
		}
		if len(shown) < len(ordered) {
			var restFlat int64
			for _, r := range ordered[len(shown):] {
				restFlat += r.flat
			}
			fmt.Fprintf(bw, "  %12s %6.2f%% %12s %7s %8s  (%d more frames)\n",
				fmtNs(restFlat), pct(restFlat, tt.TotalNs), "", "", "",
				len(ordered)-len(shown))
		}
	}
	if p.truncated > 0 || p.dropped > 0 {
		fmt.Fprintf(bw, "\ntruncated capture: %d events ring-dropped, %d spans folded incompletely\n",
			p.dropped, p.truncated)
	}
	return bw.Flush()
}

// pct returns 100*a/b, 0 when b is 0.
func pct(a, b int64) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}

// fmtNs renders integer virtual nanoseconds with a readable unit while
// staying deterministic (fixed two-decimal scaling, no rounding modes
// beyond fmt's).
func fmtNs(ns int64) string {
	switch {
	case ns >= 1_000_000_000:
		return fmt.Sprintf("%.2fs", float64(ns)/1e9)
	case ns >= 1_000_000:
		return fmt.Sprintf("%.2fms", float64(ns)/1e6)
	case ns >= 1_000:
		return fmt.Sprintf("%.2fµs", float64(ns)/1e3)
	}
	return fmt.Sprintf("%dns", ns)
}
