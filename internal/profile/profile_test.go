package profile

import (
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/osprofile"
	"repro/internal/sim"
)

// buildProcess records a small two-track nest:
//
//	kernel: [outer 0..100ns [inner 20..50ns] ] [solo 200..250ns]
//	fs:     [op 0..30ns]
func buildProcess(name string) obs.Process {
	var clock sim.Clock
	rec := obs.NewRecorder(&clock)
	kern := rec.Track("kernel")
	fsT := rec.Track("fs")
	rec.BeginAt(0, kern, "outer")
	rec.BeginAt(0, fsT, "op")
	rec.BeginAt(20, kern, "inner")
	rec.EndAt(30, fsT, "op", 0)
	rec.EndAt(50, kern, "inner", 0)
	rec.EndAt(100, kern, "outer", 0)
	rec.BeginAt(200, kern, "solo")
	rec.EndAt(250, kern, "solo", 0)
	return rec.Capture(name)
}

func TestFoldNestedSpans(t *testing.T) {
	p := Fold(buildProcess("Linux 1.2.8"))
	want := map[string]int64{
		"Linux 1.2.8;fs;op":              30,
		"Linux 1.2.8;kernel;outer":       70, // 100 - 30 inner
		"Linux 1.2.8;kernel;outer;inner": 30,
		"Linux 1.2.8;kernel;solo":        50,
		"Linux 1.2.8;main":               0, // never appears: track "main" has no spans
	}
	delete(want, "Linux 1.2.8;main")
	got := map[string]int64{}
	for _, s := range p.Samples() {
		got[strings.Join(s.Stack, ";")] = s.SelfNs
	}
	if len(got) != len(want) {
		t.Fatalf("samples = %v, want %v", got, want)
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("%s = %d, want %d", k, got[k], v)
		}
	}
	if p.Truncated() != 0 || p.DroppedEvents() != 0 {
		t.Errorf("clean stream reported truncated=%d dropped=%d", p.Truncated(), p.DroppedEvents())
	}
}

func TestFoldTrackTotalsExact(t *testing.T) {
	p := Fold(buildProcess("X"))
	totals := p.TrackTotals()
	wantTotals := map[string]int64{"fs": 30, "kernel": 150} // 100 + 50 root spans
	if len(totals) != len(wantTotals) {
		t.Fatalf("totals = %+v", totals)
	}
	for _, tt := range totals {
		if tt.Process != "X" {
			t.Errorf("total process = %q", tt.Process)
		}
		if wantTotals[tt.Track] != tt.TotalNs {
			t.Errorf("track %s total = %d, want %d", tt.Track, tt.TotalNs, wantTotals[tt.Track])
		}
	}
	// The acceptance identity: per-track folded self weights sum exactly
	// to the track total.
	perTrack := map[string]int64{}
	for _, s := range p.Samples() {
		perTrack[s.Stack[1]] += s.SelfNs
	}
	for track, want := range wantTotals {
		if perTrack[track] != want {
			t.Errorf("track %s folded sum = %d, want %d", track, perTrack[track], want)
		}
	}
	if p.TotalNs() != 180 {
		t.Errorf("TotalNs = %d, want 180", p.TotalNs())
	}
}

func TestFoldOrphanEnd(t *testing.T) {
	// An End whose Begin was ring-dropped must not fold, only count.
	proc := obs.Process{
		Name:   "P",
		Tracks: []string{"main"},
		Events: []obs.Event{
			{When: 10, Kind: obs.EvEnd, Name: "lost"},
			{When: 10, Kind: obs.EvBegin, Name: "kept"},
			{When: 30, Kind: obs.EvEnd, Name: "kept"},
		},
		Dropped: 7,
	}
	p := Fold(proc)
	if p.Truncated() != 1 {
		t.Errorf("Truncated = %d, want 1", p.Truncated())
	}
	if p.DroppedEvents() != 7 {
		t.Errorf("DroppedEvents = %d, want 7", p.DroppedEvents())
	}
	samples := p.Samples()
	if len(samples) != 1 || samples[0].SelfNs != 20 {
		t.Fatalf("samples = %+v", samples)
	}
}

func TestFoldUnclosedSpanClosesAtStreamEnd(t *testing.T) {
	proc := obs.Process{
		Name:   "P",
		Tracks: []string{"main"},
		Events: []obs.Event{
			{When: 0, Kind: obs.EvBegin, Name: "open"},
			{When: 40, Kind: obs.EvInstant, Name: "tick"},
		},
	}
	p := Fold(proc)
	if p.Truncated() != 1 {
		t.Errorf("Truncated = %d, want 1", p.Truncated())
	}
	samples := p.Samples()
	if len(samples) != 1 || samples[0].SelfNs != 40 {
		t.Fatalf("unclosed span should close at last event time: %+v", samples)
	}
	totals := p.TrackTotals()
	if len(totals) != 1 || totals[0].TotalNs != 40 {
		t.Fatalf("totals = %+v", totals)
	}
}

func TestMergeOrderIndependent(t *testing.T) {
	a := buildProcess("A")
	b := buildProcess("B")
	p1 := Fold(a, b)
	p2 := Fold(b, a)
	if p1.FoldedString() != p2.FoldedString() {
		t.Fatal("fold order changed folded bytes")
	}
	m := New()
	m.Merge(Fold(a))
	m.Merge(Fold(b))
	if m.FoldedString() != p1.FoldedString() {
		t.Fatal("merge of per-process folds differs from joint fold")
	}
	if m.TotalNs() != 2*Fold(a).TotalNs() {
		t.Fatal("merge did not add weights")
	}
}

func TestFoldedFormat(t *testing.T) {
	out := Fold(buildProcess("Linux 1.2.8")).FoldedString()
	lines := strings.Split(strings.TrimSuffix(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("folded output:\n%s", out)
	}
	// Sorted lexicographically, "frame frame weight" shape.
	for i := 1; i < len(lines); i++ {
		if lines[i-1] >= lines[i] {
			t.Errorf("folded lines not sorted: %q >= %q", lines[i-1], lines[i])
		}
	}
	if lines[0] != "Linux 1.2.8;fs;op 30" {
		t.Errorf("first folded line = %q", lines[0])
	}
}

func TestWriteTopTables(t *testing.T) {
	var b strings.Builder
	if err := Fold(buildProcess("Linux 1.2.8")).WriteTop(&b, 0); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"Linux 1.2.8 — fs: 30ns over 1 spans",
		"Linux 1.2.8 — kernel: 150ns over 3 spans",
		"flat", "cum", "frame", "outer", "inner", "solo",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("top output missing %q:\n%s", want, out)
		}
	}
	// outer: flat 70, cum 100 (includes inner); ranked above inner/solo.
	kernelSection := out[strings.Index(out, "kernel"):]
	if strings.Index(kernelSection, "outer") > strings.Index(kernelSection, "inner") {
		t.Errorf("outer (flat 70) should rank above inner (flat 30):\n%s", out)
	}
}

func TestWriteTopTruncatesRows(t *testing.T) {
	var b strings.Builder
	if err := Fold(buildProcess("X")).WriteTop(&b, 1); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "more frames") {
		t.Fatalf("-top 1 should note the cut:\n%s", out)
	}
}

func TestWriteTopReportsTruncation(t *testing.T) {
	proc := obs.Process{
		Name:    "P",
		Tracks:  []string{"main"},
		Events:  []obs.Event{{When: 5, Kind: obs.EvEnd, Name: "lost"}},
		Dropped: 123,
	}
	var b strings.Builder
	if err := Fold(proc).WriteTop(&b, 0); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "123 events ring-dropped") {
		t.Fatalf("truncation not surfaced:\n%s", b.String())
	}
}

// TestFoldRealObservedRun holds the acceptance identity on a real model
// capture: folding the Figure 1 context-switch probe's span stream
// yields per-track weights summing exactly to the stream's root-span
// coverage, computed independently here.
func TestFoldRealObservedRun(t *testing.T) {
	for _, prof := range osprofile.Paper() {
		_, o := bench.CtxObserved(bench.PaperPlatform(), prof, 8, bench.CtxRing)
		p := Fold(o.Process)

		// Independent per-track root-span coverage from the raw events.
		type st struct {
			depth int
			start int64
			total int64
			last  int64
		}
		states := map[obs.TrackID]*st{}
		orphanDepth := map[obs.TrackID]int{}
		for _, e := range o.Process.Events {
			s := states[e.Track]
			if s == nil {
				s = &st{}
				states[e.Track] = s
			}
			s.last = int64(e.When)
			switch e.Kind {
			case obs.EvBegin:
				if s.depth == 0 {
					s.start = int64(e.When)
				}
				s.depth++
			case obs.EvEnd:
				if s.depth == 0 {
					orphanDepth[e.Track]++
					continue
				}
				s.depth--
				if s.depth == 0 {
					s.total += int64(e.When) - s.start
				}
			}
		}
		for _, s := range states {
			if s.depth > 0 { // force-closed at stream end, like the fold
				s.total += s.last - s.start
			}
		}

		perTrack := map[string]int64{}
		for _, s := range p.Samples() {
			perTrack[s.Stack[1]] += s.SelfNs
		}
		for _, tt := range p.TrackTotals() {
			if perTrack[tt.Track] != tt.TotalNs {
				t.Errorf("%s/%s: folded sum %d != track total %d",
					prof, tt.Track, perTrack[tt.Track], tt.TotalNs)
			}
		}
		for id, s := range states {
			name := o.Process.Tracks[id]
			if s.total == 0 {
				continue
			}
			if perTrack[name] != s.total {
				t.Errorf("%s/%s: folded sum %d != independent coverage %d",
					prof, name, perTrack[name], s.total)
			}
		}
		if int64(o.Process.Dropped) != p.DroppedEvents() {
			t.Errorf("%s: dropped mismatch", prof)
		}
	}
}

// TestFoldDeterministicBytes pins all three export formats as pure
// functions of the capture.
func TestFoldDeterministicBytes(t *testing.T) {
	render := func() (string, string, string) {
		_, o := bench.CrtdelObserved(bench.PaperPlatform(), osprofile.Paper()[1], 64<<10, 1, fault.Injectors{})
		p := Fold(o.Process)
		var folded, top, pb strings.Builder
		if err := p.WriteFolded(&folded); err != nil {
			t.Fatal(err)
		}
		if err := p.WriteTop(&top, 5); err != nil {
			t.Fatal(err)
		}
		if err := p.WritePprof(&pb); err != nil {
			t.Fatal(err)
		}
		return folded.String(), top.String(), pb.String()
	}
	f1, t1, p1 := render()
	f2, t2, p2 := render()
	if f1 != f2 || t1 != t2 || p1 != p2 {
		t.Fatal("profile exports are not byte-identical across identical runs")
	}
	if len(f1) == 0 || len(t1) == 0 || len(p1) == 0 {
		t.Fatal("profile exports are empty")
	}
}

// TestFoldDroppedRootSpanReportsTruncatedCoverage is the audit locked in
// by a hand-built stream: the ring dropped a root span's Begin, so its
// surviving children fold as partial coverage and the track total must
// say so — truncated, never inflated.
func TestFoldDroppedRootSpanReportsTruncatedCoverage(t *testing.T) {
	// Original timeline: root[0..100] { a[10..40], b[60..90] }. The ring
	// dropped Begin(root) at t=0 and the whole of a; what survives is
	// b's pair and root's orphan End.
	proc := obs.Process{
		Name:   "P",
		Tracks: []string{"kernel"},
		Events: []obs.Event{
			{When: 60, Kind: obs.EvBegin, Name: "b"},
			{When: 90, Kind: obs.EvEnd, Name: "b"},
			{When: 100, Kind: obs.EvEnd, Name: "root"},
		},
		Dropped: 3,
	}
	p := Fold(proc)
	totals := p.TrackTotals()
	if len(totals) != 1 {
		t.Fatalf("totals = %+v", totals)
	}
	tt := totals[0]
	// Only b's 30ns is attributable; attributing root's 100ns from its
	// orphan End would inflate the total with time the stream cannot
	// place.
	if tt.TotalNs != 30 {
		t.Errorf("TotalNs = %d, want 30 (partial coverage, not inflated)", tt.TotalNs)
	}
	if tt.Truncated != 1 {
		t.Errorf("TrackTotal.Truncated = %d, want 1", tt.Truncated)
	}
	if p.Truncated() != 1 {
		t.Errorf("Truncated = %d, want 1", p.Truncated())
	}
}

// TestFoldMismatchedEndDoesNotStealOpenSpan hardens closeTop: an End
// naming a span that is not on top of the stack (its Begin was dropped
// mid-nest) must not close — and mis-attribute — the open span.
func TestFoldMismatchedEndDoesNotStealOpenSpan(t *testing.T) {
	proc := obs.Process{
		Name:   "P",
		Tracks: []string{"kernel"},
		Events: []obs.Event{
			{When: 0, Kind: obs.EvBegin, Name: "outer"},
			{When: 20, Kind: obs.EvEnd, Name: "dropped-child"},
			{When: 50, Kind: obs.EvEnd, Name: "outer"},
		},
	}
	p := Fold(proc)
	samples := p.Samples()
	if len(samples) != 1 || samples[0].Stack[len(samples[0].Stack)-1] != "outer" || samples[0].SelfNs != 50 {
		t.Fatalf("outer must survive the mismatched End and fold [0..50]: %+v", samples)
	}
	totals := p.TrackTotals()
	if len(totals) != 1 || totals[0].TotalNs != 50 || totals[0].Truncated != 1 {
		t.Fatalf("totals = %+v, want TotalNs 50 with Truncated 1", totals)
	}
}

// TestMergePropagatesTrackTruncation checks per-track truncation counts
// survive a merge.
func TestMergePropagatesTrackTruncation(t *testing.T) {
	orphan := obs.Process{
		Name:   "P",
		Tracks: []string{"kernel"},
		Events: []obs.Event{{When: 10, Kind: obs.EvEnd, Name: "lost"}},
	}
	a, b := Fold(orphan), Fold(orphan)
	m := New()
	m.Merge(a)
	m.Merge(b)
	totals := m.TrackTotals()
	if len(totals) != 1 || totals[0].Truncated != 2 {
		t.Fatalf("merged totals = %+v, want one track with Truncated 2", totals)
	}
	if m.Truncated() != 2 {
		t.Errorf("merged Truncated = %d, want 2", m.Truncated())
	}
}
