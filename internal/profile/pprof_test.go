package profile

import (
	"bytes"
	"fmt"
	"testing"
)

// miniProfile is the subset of the pprof format the decoder below
// understands — enough to verify the encoder emits well-formed,
// semantically correct protobuf without depending on pprof itself.
type miniProfile struct {
	sampleTypes [][2]int64 // (type, unit) string indices
	samples     []miniSample
	locations   map[uint64]uint64 // location id -> function id
	functions   map[uint64]int64  // function id -> name string index
	strings     []string
	duration    int64
	defaultType int64
}

type miniSample struct {
	locs   []uint64
	values []int64
}

// readUvarint decodes one base-128 varint.
func readUvarint(b []byte, at int) (uint64, int, error) {
	var v uint64
	for shift := uint(0); ; shift += 7 {
		if at >= len(b) {
			return 0, 0, fmt.Errorf("truncated varint at %d", at)
		}
		c := b[at]
		at++
		v |= uint64(c&0x7f) << shift
		if c < 0x80 {
			return v, at, nil
		}
	}
}

// fields iterates the (field, wire, payload) triples of a message.
func fields(b []byte, f func(field int, varint uint64, payload []byte) error) error {
	at := 0
	for at < len(b) {
		key, next, err := readUvarint(b, at)
		if err != nil {
			return err
		}
		at = next
		field, wire := int(key>>3), int(key&7)
		switch wire {
		case 0:
			v, next, err := readUvarint(b, at)
			if err != nil {
				return err
			}
			at = next
			if err := f(field, v, nil); err != nil {
				return err
			}
		case 2:
			n, next, err := readUvarint(b, at)
			if err != nil {
				return err
			}
			at = next
			if at+int(n) > len(b) {
				return fmt.Errorf("field %d overruns buffer", field)
			}
			if err := f(field, 0, b[at:at+int(n)]); err != nil {
				return err
			}
			at += int(n)
		default:
			return fmt.Errorf("unexpected wire type %d for field %d", wire, field)
		}
	}
	return nil
}

// packedUvarints decodes a packed repeated varint payload.
func packedUvarints(b []byte) ([]uint64, error) {
	var out []uint64
	at := 0
	for at < len(b) {
		v, next, err := readUvarint(b, at)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
		at = next
	}
	return out, nil
}

func decodeMini(t *testing.T, b []byte) *miniProfile {
	t.Helper()
	p := &miniProfile{locations: map[uint64]uint64{}, functions: map[uint64]int64{}}
	err := fields(b, func(field int, varint uint64, payload []byte) error {
		switch field {
		case 1: // ValueType
			var vt [2]int64
			if err := fields(payload, func(f int, v uint64, _ []byte) error {
				if f == 1 {
					vt[0] = int64(v)
				}
				if f == 2 {
					vt[1] = int64(v)
				}
				return nil
			}); err != nil {
				return err
			}
			p.sampleTypes = append(p.sampleTypes, vt)
		case 2: // Sample
			var s miniSample
			if err := fields(payload, func(f int, _ uint64, pl []byte) error {
				vals, err := packedUvarints(pl)
				if err != nil {
					return err
				}
				if f == 1 {
					s.locs = vals
				}
				if f == 2 {
					for _, v := range vals {
						s.values = append(s.values, int64(v))
					}
				}
				return nil
			}); err != nil {
				return err
			}
			p.samples = append(p.samples, s)
		case 4: // Location
			var id, fn uint64
			if err := fields(payload, func(f int, v uint64, pl []byte) error {
				if f == 1 {
					id = v
				}
				if f == 4 { // Line
					return fields(pl, func(lf int, lv uint64, _ []byte) error {
						if lf == 1 {
							fn = lv
						}
						return nil
					})
				}
				return nil
			}); err != nil {
				return err
			}
			p.locations[id] = fn
		case 5: // Function
			var id uint64
			var name int64
			if err := fields(payload, func(f int, v uint64, _ []byte) error {
				if f == 1 {
					id = v
				}
				if f == 2 {
					name = int64(v)
				}
				return nil
			}); err != nil {
				return err
			}
			p.functions[id] = name
		case 6: // string_table
			p.strings = append(p.strings, string(payload))
		case 10:
			p.duration = int64(varint)
		case 14:
			p.defaultType = int64(varint)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("pprof decode: %v", err)
	}
	return p
}

func TestWritePprofWellFormed(t *testing.T) {
	prof := Fold(buildProcess("Linux 1.2.8"))
	var buf bytes.Buffer
	if err := prof.WritePprof(&buf); err != nil {
		t.Fatal(err)
	}
	mp := decodeMini(t, buf.Bytes())

	if len(mp.strings) == 0 || mp.strings[0] != "" {
		t.Fatal("string table must start with the empty string")
	}
	str := func(i int64) string {
		if i < 0 || int(i) >= len(mp.strings) {
			t.Fatalf("string index %d out of range", i)
		}
		return mp.strings[i]
	}
	if len(mp.sampleTypes) != 2 {
		t.Fatalf("sample types = %v", mp.sampleTypes)
	}
	if str(mp.sampleTypes[0][0]) != "spans" || str(mp.sampleTypes[0][1]) != "count" {
		t.Errorf("sample type 0 = %s/%s", str(mp.sampleTypes[0][0]), str(mp.sampleTypes[0][1]))
	}
	if str(mp.sampleTypes[1][0]) != "virtualtime" || str(mp.sampleTypes[1][1]) != "nanoseconds" {
		t.Errorf("sample type 1 = %s/%s", str(mp.sampleTypes[1][0]), str(mp.sampleTypes[1][1]))
	}
	if str(mp.defaultType) != "virtualtime" {
		t.Errorf("default sample type = %s", str(mp.defaultType))
	}

	// One sample per folded stack, values summing to the fold's totals.
	samples := prof.Samples()
	if len(mp.samples) != len(samples) {
		t.Fatalf("%d pprof samples, want %d", len(mp.samples), len(samples))
	}
	var wantNs, gotNs, wantCount, gotCount int64
	for _, s := range samples {
		wantNs += s.SelfNs
		wantCount += s.Count
	}
	for _, s := range mp.samples {
		if len(s.values) != 2 {
			t.Fatalf("sample values = %v, want 2 entries", s.values)
		}
		gotCount += s.values[0]
		gotNs += s.values[1]
	}
	if gotNs != wantNs || gotCount != wantCount {
		t.Fatalf("pprof totals ns=%d count=%d, want ns=%d count=%d", gotNs, gotCount, wantNs, wantCount)
	}
	if mp.duration != prof.TotalNs() {
		t.Errorf("duration_nanos = %d, want %d", mp.duration, prof.TotalNs())
	}

	// Every location resolves to a named function, and stacks are
	// leaf-first: the deepest stack's first location is its leaf frame.
	for id, fn := range mp.locations {
		name, ok := mp.functions[fn]
		if !ok {
			t.Fatalf("location %d references unknown function %d", id, fn)
		}
		if str(name) == "" {
			t.Fatalf("function %d has empty name", fn)
		}
	}
	// Find the pprof sample matching the inner stack and check order.
	wantLeafFirst := []string{"inner", "outer", "kernel", "Linux 1.2.8"}
	found := false
	for _, s := range mp.samples {
		if len(s.locs) != len(wantLeafFirst) {
			continue
		}
		match := true
		for i, id := range s.locs {
			if str(mp.functions[mp.locations[id]]) != wantLeafFirst[i] {
				match = false
				break
			}
		}
		if match {
			found = true
		}
	}
	if !found {
		t.Fatalf("no leaf-first sample %v found", wantLeafFirst)
	}
}

func TestWritePprofEmptyProfile(t *testing.T) {
	var buf bytes.Buffer
	if err := New().WritePprof(&buf); err != nil {
		t.Fatal(err)
	}
	mp := decodeMini(t, buf.Bytes())
	if len(mp.samples) != 0 || len(mp.strings) == 0 {
		t.Fatalf("empty profile decoded to %+v", mp)
	}
}
