// Package profile turns the observability layer's span streams into
// profiles: it folds the hierarchical Begin/End events of obs.Process
// captures into weighted call stacks on the virtual timeline, computes
// flat/cumulative attribution tables per track, and exports the result
// as Brendan Gregg folded-stack text (for flamegraph tooling) and as
// pprof-compatible protobuf (so `go tool pprof` inspects simulated
// kernels the way it inspects real ones).
//
// It is an exact profiler, not a sampling one: every span contributes
// its full virtual duration, weights are integer virtual nanoseconds,
// and per-track weights sum exactly to the track's span-covered time.
// Folding is deterministic — the canonical sample order is the sorted
// stack key, so the same processes produce the same bytes regardless of
// fold or merge order (DESIGN.md §10).
package profile

import (
	"sort"
	"strings"

	"repro/internal/obs"
)

// stackSep joins frames into sample keys and folded-stack lines. Frame
// names in this repository are short identifiers ("syscall", "copy");
// none contain ';'.
const stackSep = ";"

// Sample is one folded call stack and its accumulated weight.
type Sample struct {
	// Stack is the frame path, root first: process, track, then the
	// span nesting ("Linux 1.2.8", "kernel", "syscall", "copy").
	Stack []string
	// Count is the number of span instances folded into this stack.
	Count int64
	// SelfNs is the accumulated self weight — virtual nanoseconds spent
	// in the leaf frame itself, excluding child spans.
	SelfNs int64
}

// TrackTotal is the span-covered time of one (process, track) timeline.
type TrackTotal struct {
	// Process and Track name the timeline.
	Process, Track string
	// TotalNs is the sum of root-span durations on the track — by
	// construction, exactly the sum of the SelfNs of every sample under
	// this track.
	TotalNs int64
	// Spans is the number of spans folded on the track.
	Spans int64
	// Truncated counts this track's folding anomalies: End events whose
	// Begin fell off the ring, mismatched Ends, and spans force-closed
	// at stream end. Nonzero means TotalNs undercounts the track's real
	// span coverage — partial data, never inflated data.
	Truncated int64
}

// Profile is a set of folded samples. The zero value is empty and
// usable; Fold and Merge accumulate into it.
type Profile struct {
	samples map[string]*Sample
	totals  map[string]*TrackTotal
	// truncated counts folding anomalies from ring-truncated streams:
	// End events whose Begin was dropped, plus spans never closed.
	truncated int64
	// dropped accumulates the Dropped counts of folded processes.
	dropped int64
}

// New returns an empty profile.
func New() *Profile {
	return &Profile{
		samples: make(map[string]*Sample),
		totals:  make(map[string]*TrackTotal),
	}
}

// openSpan is one frame on a track's fold stack.
type openSpan struct {
	name    string
	start   int64
	childNs int64 // time covered by already-closed children
}

// Fold folds the span stream of one captured process into the profile.
// Per track it replays the Begin/End nesting: closing a span attributes
// its self time (duration minus child spans) to the full stack path.
// Instants carry no duration and are ignored.
//
// Ring-truncated streams fold deterministically: an End with no open
// span (its Begin was dropped) is counted as truncated and skipped, and
// spans still open at stream end are closed at the stream's last event
// time and counted as truncated.
func (p *Profile) Fold(proc obs.Process) {
	p.dropped += int64(proc.Dropped)
	type trackState struct {
		open []openSpan
		last int64
	}
	states := make(map[obs.TrackID]*trackState)
	trackName := func(id obs.TrackID) string {
		if int(id) >= 0 && int(id) < len(proc.Tracks) {
			return proc.Tracks[id]
		}
		return "?"
	}
	// close pops the top span of a track at time t and attributes it.
	closeTop := func(id obs.TrackID, st *trackState, t int64) {
		top := st.open[len(st.open)-1]
		st.open = st.open[:len(st.open)-1]
		dur := t - top.start
		if dur < 0 {
			dur = 0
		}
		self := dur - top.childNs
		if self < 0 {
			self = 0
		}
		stack := make([]string, 0, len(st.open)+3)
		stack = append(stack, proc.Name, trackName(id))
		for _, o := range st.open {
			stack = append(stack, o.name)
		}
		stack = append(stack, top.name)
		p.add(stack, 1, self)
		tt := p.total(proc.Name, trackName(id))
		tt.Spans++
		if len(st.open) > 0 {
			st.open[len(st.open)-1].childNs += dur
		} else {
			tt.TotalNs += dur
		}
	}
	for _, e := range proc.Events {
		st := states[e.Track]
		if st == nil {
			st = &trackState{}
			states[e.Track] = st
		}
		t := int64(e.When)
		if t > st.last {
			st.last = t
		}
		switch e.Kind {
		case obs.EvBegin:
			st.open = append(st.open, openSpan{name: e.Name, start: t})
		case obs.EvEnd:
			if len(st.open) == 0 {
				// Begin lost to the ring: nothing to attribute. The track
				// total still materializes, carrying the truncation mark,
				// so a track whose every Begin was dropped reports
				// truncated coverage instead of silently vanishing.
				p.markTruncated(proc.Name, trackName(e.Track))
				continue
			}
			if e.Name != "" && st.open[len(st.open)-1].name != e.Name {
				// An End that does not match the open span (its Begin was
				// dropped, or the stream is malformed): attributing the
				// open span's time to it would inflate the wrong frame.
				// Count it and keep the stack as is.
				p.markTruncated(proc.Name, trackName(e.Track))
				continue
			}
			closeTop(e.Track, st, t)
		}
	}
	// Close spans left open at stream end (ring truncation or a capture
	// taken mid-run) at the track's last event time, outermost last.
	ids := make([]obs.TrackID, 0, len(states))
	for id := range states {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		st := states[id]
		for len(st.open) > 0 {
			p.markTruncated(proc.Name, trackName(id))
			closeTop(id, st, st.last)
		}
	}
}

// markTruncated records one folding anomaly, both profile-wide and on
// the owning track's total.
func (p *Profile) markTruncated(process, track string) {
	p.truncated++
	p.total(process, track).Truncated++
}

// add accumulates one stack observation.
func (p *Profile) add(stack []string, count, selfNs int64) {
	if p.samples == nil {
		p.samples = make(map[string]*Sample)
	}
	key := strings.Join(stack, stackSep)
	s := p.samples[key]
	if s == nil {
		s = &Sample{Stack: append([]string(nil), stack...)}
		p.samples[key] = s
	}
	s.Count += count
	s.SelfNs += selfNs
}

// total finds or creates the running total of one (process, track).
func (p *Profile) total(process, track string) *TrackTotal {
	if p.totals == nil {
		p.totals = make(map[string]*TrackTotal)
	}
	key := process + stackSep + track
	tt := p.totals[key]
	if tt == nil {
		tt = &TrackTotal{Process: process, Track: track}
		p.totals[key] = tt
	}
	return tt
}

// Merge folds another profile's samples into this one. Because the
// canonical sample order is the sorted stack key, merge order cannot
// affect any exported bytes.
func (p *Profile) Merge(o *Profile) {
	if o == nil {
		return
	}
	for _, s := range o.sorted() {
		p.add(s.Stack, s.Count, s.SelfNs)
	}
	for _, tt := range o.TrackTotals() {
		dst := p.total(tt.Process, tt.Track)
		dst.TotalNs += tt.TotalNs
		dst.Spans += tt.Spans
		dst.Truncated += tt.Truncated
	}
	p.truncated += o.truncated
	p.dropped += o.dropped
}

// Fold is the one-shot convenience: a new profile over the given
// processes, folded in order.
func Fold(procs ...obs.Process) *Profile {
	p := New()
	for _, proc := range procs {
		p.Fold(proc)
	}
	return p
}

// sorted returns the samples in canonical (lexicographic stack) order.
func (p *Profile) sorted() []*Sample {
	out := make([]*Sample, 0, len(p.samples))
	for _, s := range p.samples {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		return strings.Join(out[i].Stack, stackSep) < strings.Join(out[j].Stack, stackSep)
	})
	return out
}

// Samples returns the folded samples in canonical order.
func (p *Profile) Samples() []Sample {
	out := make([]Sample, 0, len(p.samples))
	for _, s := range p.sorted() {
		out = append(out, *s)
	}
	return out
}

// TrackTotals returns the per-track totals sorted by process then track.
func (p *Profile) TrackTotals() []TrackTotal {
	out := make([]TrackTotal, 0, len(p.totals))
	for _, tt := range p.totals {
		out = append(out, *tt)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Process != out[j].Process {
			return out[i].Process < out[j].Process
		}
		return out[i].Track < out[j].Track
	})
	return out
}

// TotalNs returns the profile-wide weight: the sum of every sample's
// self time, which equals the sum of every track total.
func (p *Profile) TotalNs() int64 {
	var sum int64
	for _, s := range p.samples {
		sum += s.SelfNs
	}
	return sum
}

// Truncated reports folding anomalies: orphan End events plus spans
// force-closed at stream end. Zero means every span folded cleanly.
func (p *Profile) Truncated() int64 { return p.truncated }

// DroppedEvents reports the total ring-dropped event count of the folded
// processes. Nonzero means the profile covers the tail of each run, not
// the whole run.
func (p *Profile) DroppedEvents() int64 { return p.dropped }
