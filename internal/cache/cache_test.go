package cache

import (
	"testing"
	"testing/quick"
)

func pentium() *Hierarchy { return MustNew(PentiumConfig()) }

func TestReadAllocates(t *testing.T) {
	h := pentium()
	if lvl := h.Contains(0x1000); lvl != 0 {
		t.Fatalf("cold cache Contains = %d, want 0", lvl)
	}
	h.ReadWords(0x1000, 1)
	if lvl := h.Contains(0x1000); lvl != 1 {
		t.Fatalf("after read Contains = %d, want 1 (allocated in L1)", lvl)
	}
	s := h.Stats()
	if s.L1Misses != 1 || s.L2Misses != 1 || s.LinesFilledFromMem != 1 {
		t.Fatalf("miss accounting wrong: %+v", s)
	}
}

func TestReadHitIsCheap(t *testing.T) {
	h := pentium()
	h.ReadWords(0x1000, 1)
	h.ResetCycles()
	h.ReadWords(0x1000, 1)
	if got, want := h.Cycles(), PentiumTiming().WordHit; got != want {
		t.Fatalf("hit cost = %v, want %v", got, want)
	}
}

func TestWriteMissDoesNotAllocate(t *testing.T) {
	h := pentium()
	h.WriteWords(0x2000, 8)
	if lvl := h.Contains(0x2000); lvl != 0 {
		t.Fatalf("no-write-allocate cache allocated on write miss (level %d)", lvl)
	}
	s := h.Stats()
	if s.MemWordWrites != 8 {
		t.Fatalf("MemWordWrites = %d, want 8", s.MemWordWrites)
	}
}

func TestWriteAllocateModeAllocates(t *testing.T) {
	cfg := PentiumConfig()
	cfg.WriteAllocate = true
	h := MustNew(cfg)
	h.WriteWords(0x2000, 1)
	if lvl := h.Contains(0x2000); lvl != 1 {
		t.Fatalf("write-allocate cache did not allocate on write miss (level %d)", lvl)
	}
	// Subsequent writes to the same line must be hits.
	h.ResetCycles()
	h.WriteWords(0x2004, 1)
	if got, want := h.Cycles(), PentiumTiming().WordWriteHit; got != want {
		t.Fatalf("second write cost = %v, want hit cost %v", got, want)
	}
}

func TestWriteHitAfterRead(t *testing.T) {
	h := pentium()
	h.ReadWords(0x3000, 1) // allocate the line
	h.ResetCycles()
	h.WriteWords(0x3000, 1)
	if got, want := h.Cycles(), PentiumTiming().WordWriteHit; got != want {
		t.Fatalf("write-after-read cost = %v, want hit cost %v", got, want)
	}
}

func TestL1EvictionFallsToL2(t *testing.T) {
	h := pentium()
	cfg := h.Config()
	// Read enough distinct lines to overflow L1 but not L2.
	lines := 2 * cfg.L1Size / cfg.LineSize
	for i := 0; i < lines; i++ {
		h.ReadWords(uint64(i*cfg.LineSize), 1)
	}
	// The first line left L1 but must still be in L2 (inclusion).
	if lvl := h.Contains(0); lvl != 2 {
		t.Fatalf("evicted line Contains = %d, want 2", lvl)
	}
}

func TestDirtyEvictionWritesBack(t *testing.T) {
	h := pentium()
	cfg := h.Config()
	// Dirty a line, then stream reads over many lines mapping to every set
	// so it is evicted from both levels.
	h.ReadWords(0, 1)
	h.WriteWords(0, 1)
	lines := 4 * cfg.L2Size / cfg.LineSize
	for i := 1; i <= lines; i++ {
		h.ReadWords(uint64(i*cfg.LineSize), 1)
	}
	s := h.Stats()
	if s.L1WriteBacks == 0 {
		t.Error("dirty L1 line evicted with no L1 write-back")
	}
	if s.L2WriteBacks == 0 {
		t.Error("dirty L2 line evicted with no L2 write-back")
	}
	if h.Contains(0) != 0 {
		t.Error("line survived a full-cache streaming eviction")
	}
}

func TestPrefetchFillsLine(t *testing.T) {
	h := pentium()
	h.Prefetch(0x4000)
	if lvl := h.Contains(0x4000); lvl != 1 {
		t.Fatalf("prefetch did not allocate (level %d)", lvl)
	}
	s := h.Stats()
	if s.PrefetchesIssued != 1 || s.PrefetchesUseful != 1 {
		t.Fatalf("prefetch stats wrong: %+v", s)
	}
	// A second prefetch of the same line is issued but not useful.
	h.Prefetch(0x4000)
	s = h.Stats()
	if s.PrefetchesIssued != 2 || s.PrefetchesUseful != 1 {
		t.Fatalf("redundant prefetch stats wrong: %+v", s)
	}
}

func TestFlush(t *testing.T) {
	h := pentium()
	h.ReadWords(0x5000, 4)
	h.Flush()
	if h.Contains(0x5000) != 0 {
		t.Fatal("Flush left lines resident")
	}
}

func TestLRUWithinSet(t *testing.T) {
	cfg := PentiumConfig()
	h := MustNew(cfg)
	// Three lines mapping to the same L1 set (stride = L1 size / assoc).
	stride := uint64(cfg.L1Size / cfg.L1Assoc)
	a, b, c := uint64(0), stride, 2*stride
	h.ReadWords(a, 1)
	h.ReadWords(b, 1)
	h.ReadWords(a, 1) // a is now more recently used than b
	h.ReadWords(c, 1) // must evict b
	if h.Contains(a) != 1 {
		t.Error("LRU evicted the recently used line a")
	}
	if h.Contains(b) == 1 {
		t.Error("LRU kept the least recently used line b in L1")
	}
	if h.Contains(c) != 1 {
		t.Error("newly read line c not resident in L1")
	}
}

func TestBytesAccounting(t *testing.T) {
	h := pentium()
	h.ReadWords(0, 4)
	h.WriteWords(64, 2)
	h.ReadBytes(128, 3)
	h.WriteBytes(256, 5)
	s := h.Stats()
	if s.BytesRead != 16+3 {
		t.Errorf("BytesRead = %d, want 19", s.BytesRead)
	}
	if s.BytesWrit != 8+5 {
		t.Errorf("BytesWrit = %d, want 13", s.BytesWrit)
	}
}

func TestByteWriteMissGoesToMemory(t *testing.T) {
	h := pentium()
	h.WriteBytes(0x6000, 1)
	if h.Contains(0x6000) != 0 {
		t.Fatal("byte write allocated a line under no-write-allocate")
	}
	if s := h.Stats(); s.MemByteWrites != 1 || s.MemWordWrites != 0 {
		t.Fatalf("byte write miss miscounted: %+v", s)
	}
}

// Word and byte write misses must land in their own bus-transaction
// counters: a tail loop's byte stores are not word stores.
func TestMemWriteCountersDistinguishWordsFromBytes(t *testing.T) {
	h := pentium()
	h.WriteWords(0x6000, 3) // 3 word transactions
	h.WriteBytes(0x7000, 5) // 5 byte transactions
	s := h.Stats()
	if s.MemWordWrites != 3 {
		t.Errorf("MemWordWrites = %d, want 3", s.MemWordWrites)
	}
	if s.MemByteWrites != 5 {
		t.Errorf("MemByteWrites = %d, want 5", s.MemByteWrites)
	}
	// The run-length entry points must count identically.
	h2 := pentium()
	h2.WriteRun(0x6000, 3, 0, 0)
	h2.WriteRunBytes(0x7000, 5)
	if s2 := h2.Stats(); s2.MemWordWrites != 3 || s2.MemByteWrites != 5 {
		t.Errorf("run-length counters: %+v, want MemWordWrites=3 MemByteWrites=5", s2)
	}
}

func TestWriteHitInL2Only(t *testing.T) {
	h := pentium()
	cfg := h.Config()
	// Put a line in both levels, then evict it from L1 only.
	h.ReadWords(0, 1)
	lines := 2 * cfg.L1Size / cfg.LineSize
	for i := 1; i <= lines; i++ {
		h.ReadWords(uint64(i*cfg.LineSize), 1)
	}
	if h.Contains(0) != 2 {
		t.Skip("layout did not leave line 0 in L2 only; adjust test")
	}
	h.ResetCycles()
	h.WriteWords(0, 1)
	if got, want := h.Cycles(), PentiumTiming().L2WordAccess; got != want {
		t.Fatalf("L2 write-hit cost = %v, want %v", got, want)
	}
	// The write must not promote the line to L1.
	if h.Contains(0) != 2 {
		t.Fatal("write promoted line to L1 under no-write-allocate")
	}
}

func TestAddCyclesNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AddCycles(-1) did not panic")
		}
	}()
	pentium().AddCycles(-1)
}

func TestNewRejectsBadGeometry(t *testing.T) {
	cases := []Config{
		{LineSize: 32, L1Size: 8 << 10, L1Assoc: 2, L2Size: 4 << 10, L2Assoc: 2}, // L1 >= L2
		{LineSize: 32, L1Size: 0, L1Assoc: 2, L2Size: 256 << 10, L2Assoc: 2},
		{LineSize: 32, L1Size: 8<<10 + 32, L1Assoc: 2, L2Size: 256 << 10, L2Assoc: 2},
	}
	for i, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: New(%+v) did not return an error", i, cfg)
		}
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: MustNew(%+v) did not panic", i, cfg)
				}
			}()
			MustNew(cfg)
		}()
	}
}

func TestCyclesMonotonic(t *testing.T) {
	h := pentium()
	prev := h.Cycles()
	ops := []func(){
		func() { h.ReadWords(0, 8) },
		func() { h.WriteWords(4096, 8) },
		func() { h.ReadBytes(8192, 7) },
		func() { h.WriteBytes(12288, 7) },
		func() { h.Prefetch(16384) },
	}
	for i, op := range ops {
		op()
		if h.Cycles() <= prev {
			t.Fatalf("op %d did not consume cycles", i)
		}
		prev = h.Cycles()
	}
}

// Property: after reading any address, the line is resident in L1, and
// inclusion holds (anything in L1 is also in L2).
func TestInclusionProperty(t *testing.T) {
	f := func(addrs []uint32) bool {
		h := pentium()
		for _, a := range addrs {
			addr := uint64(a) % (64 << 20)
			h.ReadWords(addr, 1)
			if h.Contains(addr) != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: hits + misses at L1 equals the number of word/byte accesses
// that consult L1 (reads and prefetches and write lookups).
func TestHitMissAccountingProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		h := pentium()
		var consults uint64
		for _, o := range ops {
			addr := uint64(o) * 8
			switch o % 3 {
			case 0:
				h.ReadWords(addr, 1)
			case 1:
				h.WriteWords(addr, 1)
			case 2:
				h.Prefetch(addr)
			}
			consults++
		}
		s := h.Stats()
		return s.L1Hits+s.L1Misses == consults
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
