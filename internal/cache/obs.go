package cache

import "repro/internal/obs"

// CycleBreakdown attributes a hierarchy's cycle ledger to where the
// cycles were spent: L1 service, L2 service (fills from L2 and stores
// absorbed by L2), memory transactions, dirty write-backs, and loop/ALU
// overhead. When a breakdown is attached (AttachBreakdown), every cycle
// charged is also added to exactly one bucket, so Total() equals the
// hierarchy's Cycles() at all times — the structural identity behind the
// `pentiumbench metrics` attribution tables.
type CycleBreakdown struct {
	// L1 is cycles serviced at L1: word/byte hit costs, including the
	// base cost of accesses that go on to miss.
	L1 float64
	// L2 is cycles serviced at L2: line fills from L2 and
	// no-write-allocate stores absorbed by an L2-resident line.
	L2 float64
	// Mem is cycles spent on main-memory transactions: fills from memory
	// and non-allocated write transactions.
	Mem float64
	// WriteBack is cycles spent pushing dirty lines down the hierarchy.
	WriteBack float64
	// Overhead is loop and ALU overhead (AddCycles, chunk-loop charges)
	// plus prefetch issue slots.
	Overhead float64
}

// Total sums the buckets.
func (b CycleBreakdown) Total() float64 {
	return b.L1 + b.L2 + b.Mem + b.WriteBack + b.Overhead
}

// Sub returns the bucket-wise difference b - o.
func (b CycleBreakdown) Sub(o CycleBreakdown) CycleBreakdown {
	return CycleBreakdown{
		L1:        b.L1 - o.L1,
		L2:        b.L2 - o.L2,
		Mem:       b.Mem - o.Mem,
		WriteBack: b.WriteBack - o.WriteBack,
		Overhead:  b.Overhead - o.Overhead,
	}
}

// AttachBreakdown starts attributing every charged cycle into b (nil
// detaches). While attached, the run-length entry points take the
// per-access decomposition instead of the batched fast path: the
// decomposition is bit-identical in cycles and Stats (the §8.1
// invariant), and per-access charges are where exact bucket attribution
// is defined. Detached (the default), attribution costs the fast paths
// nothing.
func (h *Hierarchy) AttachBreakdown(b *CycleBreakdown) { h.attr = b }

// AttachBreakdown attributes the reference hierarchy's cycles into b.
func (r *RefHierarchy) AttachBreakdown(b *CycleBreakdown) { r.h.attr = b }

// FoldStats adds the traffic counters to a registry under the given name
// prefix ("cache." conventionally).
func (s Stats) FoldStats(reg *obs.Registry, prefix string) {
	if reg == nil {
		return
	}
	add := func(name string, v uint64) {
		reg.Counter(prefix + name).Add(float64(v))
	}
	add("l1_hits", s.L1Hits)
	add("l1_misses", s.L1Misses)
	add("l2_hits", s.L2Hits)
	add("l2_misses", s.L2Misses)
	add("mem_word_writes", s.MemWordWrites)
	add("mem_byte_writes", s.MemByteWrites)
	add("l1_writebacks", s.L1WriteBacks)
	add("l2_writebacks", s.L2WriteBacks)
	add("prefetches_issued", s.PrefetchesIssued)
	add("prefetches_useful", s.PrefetchesUseful)
	add("lines_filled_from_l2", s.LinesFilledFromL2)
	add("lines_filled_from_mem", s.LinesFilledFromMem)
	add("bytes_read", s.BytesRead)
	add("bytes_written", s.BytesWrit)
}
