package cache

import "testing"

// Micro-benchmarks for the line-granular fast path. "fast" drives the
// run-length entry points on Hierarchy (one tag lookup per line); "ref"
// drives the same access sequence through RefHierarchy's per-access
// decomposition — the pre-fast-path cost. EXPERIMENTS.md's "Harness
// performance" appendix records measured before/after numbers.

func benchImpls() []struct {
	name string
	mk   func(Config) Sim
} {
	return []struct {
		name string
		mk   func(Config) Sim
	}{
		{"fast", func(cfg Config) Sim { return MustNew(cfg) }},
		{"ref", func(cfg Config) Sim { return MustRef(cfg) }},
	}
}

// BenchmarkHierarchySequentialRead streams word reads over an L2-resident
// buffer (the dominant access pattern of the §6 sweeps).
func BenchmarkHierarchySequentialRead(b *testing.B) {
	const size = 64 << 10
	for _, impl := range benchImpls() {
		b.Run(impl.name, func(b *testing.B) {
			s := impl.mk(PentiumConfig())
			s.ReadRun(0, size/WordSize, 4, 1.33) // warm the hierarchy
			b.SetBytes(size)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.ReadRun(0, size/WordSize, 4, 1.33)
			}
		})
	}
}

// BenchmarkHierarchySequentialWrite streams word writes; under the P54C's
// no-write-allocate policy every store consults both tag arrays on the
// per-access path, which is exactly what the fast path collapses.
func BenchmarkHierarchySequentialWrite(b *testing.B) {
	const size = 64 << 10
	for _, impl := range benchImpls() {
		b.Run(impl.name, func(b *testing.B) {
			s := impl.mk(PentiumConfig())
			s.WriteRun(0, size/WordSize, 4, 1.0)
			b.SetBytes(size)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.WriteRun(0, size/WordSize, 4, 1.0)
			}
		})
	}
}
