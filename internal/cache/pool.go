package cache

import "sync"

// pools holds one free list of hierarchies per configuration. Config is a
// flat comparable struct, so it doubles as the pool key: two hierarchies
// are interchangeable exactly when every geometry parameter and timing
// constant agrees.
var pools sync.Map // Config -> *sync.Pool

// Acquire returns a hierarchy for cfg, reusing a Released one when the
// per-config pool has one and building a fresh one otherwise. A reused
// hierarchy is observably identical to a fresh one: Release resets the
// cycle ledger and traffic counters and invalidates every line (via the
// O(1) generation bump), and the remaining carried state — the LRU tick
// and the generation base — never influences results, since victim
// choice compares recency only among live ways and both values only grow.
//
// The suite's sweeps build a hierarchy per point; without reuse that is
// hundreds of ~200 KB allocations whose collection dominates GC time.
func Acquire(cfg Config) (*Hierarchy, error) {
	p, ok := pools.Load(cfg)
	if !ok {
		p, _ = pools.LoadOrStore(cfg, new(sync.Pool))
	}
	if h, ok := p.(*sync.Pool).Get().(*Hierarchy); ok {
		return h, nil
	}
	return New(cfg)
}

// MustAcquire is Acquire for compiled-in machine descriptions, mirroring
// MustNew.
func MustAcquire(cfg Config) *Hierarchy {
	h, err := Acquire(cfg)
	if err != nil {
		panic(err)
	}
	return h
}

// Release resets h to its post-New observable state and returns it to
// the pool for a future Acquire with the same configuration. The caller
// must not use h afterwards.
func (h *Hierarchy) Release() {
	h.reset()
	p, _ := pools.LoadOrStore(h.cfg, new(sync.Pool))
	p.(*sync.Pool).Put(h)
}

// reset restores every observable of the hierarchy to its post-New
// state: no resident lines, zero cycles, zero traffic, no breakdown.
func (h *Hierarchy) reset() {
	h.l1.flush()
	h.l2.flush()
	h.cycles = 0
	h.stats = Stats{}
	h.attr = nil
}
