package cache

// Sim is the access interface shared by the optimized Hierarchy and the
// per-access RefHierarchy. Code that drives a cache model (package
// memmodel, the differential tests) programs against Sim so either
// implementation can be swapped in; both must produce bit-identical
// cycle ledgers, Stats and Contains answers for the same access
// sequence (DESIGN.md §8.1).
type Sim interface {
	// Config returns the hierarchy's configuration.
	Config() Config
	// Cycles returns the cycles consumed since the last ResetCycles.
	Cycles() float64
	// ResetCycles zeroes the cycle counter.
	ResetCycles()
	// AddCycles charges extra cycles (loop and ALU overhead).
	AddCycles(c float64)
	// Stats returns a copy of the traffic counters.
	Stats() Stats
	// ResetStats zeroes the traffic counters.
	ResetStats()
	// Flush invalidates every line in both levels.
	Flush()
	// ReadWords simulates n consecutive 4-byte loads starting at addr.
	ReadWords(addr uint64, n int)
	// WriteWords simulates n consecutive 4-byte stores starting at addr.
	WriteWords(addr uint64, n int)
	// ReadBytes simulates n consecutive 1-byte loads starting at addr.
	ReadBytes(addr uint64, n int)
	// WriteBytes simulates n consecutive 1-byte stores starting at addr.
	WriteBytes(addr uint64, n int)
	// ReadRun simulates words consecutive 4-byte loads starting at addr,
	// charging chunkLoop cycles before every chunkWords loads.
	ReadRun(addr uint64, words, chunkWords int, chunkLoop float64)
	// WriteRun simulates words consecutive 4-byte stores starting at addr,
	// charging chunkLoop cycles before every chunkWords stores.
	WriteRun(addr uint64, words, chunkWords int, chunkLoop float64)
	// CopyRun simulates an interleaved copy loop: per chunk, the loop
	// charge, then chunkWords loads from src, then chunkWords stores to dst.
	CopyRun(src, dst uint64, words, chunkWords int, chunkLoop float64)
	// ReadRunBytes simulates n consecutive 1-byte loads starting at addr.
	ReadRunBytes(addr uint64, n int)
	// WriteRunBytes simulates n consecutive 1-byte stores starting at addr.
	WriteRunBytes(addr uint64, n int)
	// Prefetch simulates a software-prefetch touch of addr's line and
	// returns the cycles it charged.
	Prefetch(addr uint64) float64
	// Contains reports the level holding addr's line (1, 2, or 0).
	Contains(addr uint64) int
	// AttachBreakdown starts attributing every charged cycle into b (nil
	// detaches); the breakdown's Total tracks Cycles exactly.
	AttachBreakdown(b *CycleBreakdown)
}

// Compile-time check that both implementations satisfy the interface.
var (
	_ Sim = (*Hierarchy)(nil)
	_ Sim = (*RefHierarchy)(nil)
)

// RefHierarchy is the reference cache model: it implements the run-length
// entry points by decomposing them into the per-access loops (ReadWords,
// WriteWords, ...), which are the original, trusted implementation. The
// fast paths in Hierarchy must match it bit for bit — cycles, Stats and
// residency — on every access sequence; TestDifferentialFastVsRef replays
// randomized traces through both to enforce that. RefHierarchy is the
// source of truth: when the two disagree, the fast path is wrong.
//
// RefHierarchy wraps rather than embeds Hierarchy so that a run-length
// method added to Hierarchy without a matching per-access decomposition
// here fails to compile instead of silently inheriting the fast path.
type RefHierarchy struct {
	h *Hierarchy
}

// NewRef builds a reference hierarchy from cfg, with New's validation.
func NewRef(cfg Config) (*RefHierarchy, error) {
	h, err := New(cfg)
	if err != nil {
		return nil, err
	}
	return &RefHierarchy{h: h}, nil
}

// MustRef is NewRef for compiled-in machine descriptions.
func MustRef(cfg Config) *RefHierarchy {
	r, err := NewRef(cfg)
	if err != nil {
		panic(err)
	}
	return r
}

// Config returns the hierarchy's configuration.
func (r *RefHierarchy) Config() Config { return r.h.Config() }

// Cycles returns the cycles consumed since the last ResetCycles.
func (r *RefHierarchy) Cycles() float64 { return r.h.Cycles() }

// ResetCycles zeroes the cycle counter (statistics are kept).
func (r *RefHierarchy) ResetCycles() { r.h.ResetCycles() }

// AddCycles charges extra cycles against the ledger.
func (r *RefHierarchy) AddCycles(c float64) { r.h.AddCycles(c) }

// Stats returns a copy of the traffic counters.
func (r *RefHierarchy) Stats() Stats { return r.h.Stats() }

// ResetStats zeroes the traffic counters.
func (r *RefHierarchy) ResetStats() { r.h.ResetStats() }

// Flush invalidates every line in both levels.
func (r *RefHierarchy) Flush() { r.h.Flush() }

// ReadWords simulates n consecutive 4-byte loads starting at addr.
func (r *RefHierarchy) ReadWords(addr uint64, n int) { r.h.ReadWords(addr, n) }

// WriteWords simulates n consecutive 4-byte stores starting at addr.
func (r *RefHierarchy) WriteWords(addr uint64, n int) { r.h.WriteWords(addr, n) }

// ReadBytes simulates n consecutive 1-byte loads starting at addr.
func (r *RefHierarchy) ReadBytes(addr uint64, n int) { r.h.ReadBytes(addr, n) }

// WriteBytes simulates n consecutive 1-byte stores starting at addr.
func (r *RefHierarchy) WriteBytes(addr uint64, n int) { r.h.WriteBytes(addr, n) }

// Prefetch simulates a software-prefetch touch of addr's line and
// returns the cycles it charged.
func (r *RefHierarchy) Prefetch(addr uint64) float64 { return r.h.Prefetch(addr) }

// Contains reports the level holding addr's line (1, 2, or 0).
func (r *RefHierarchy) Contains(addr uint64) int { return r.h.Contains(addr) }

// runChunks replays the chunked loop structure of a run through a
// per-access body (shared with Hierarchy's attribution path, see
// cache.go).
func (r *RefHierarchy) runChunks(n, chunk int, loop float64, body func(off, n int)) {
	r.h.runChunks(n, chunk, loop, body)
}

// ReadRun decomposes the run into per-access ReadWords calls.
func (r *RefHierarchy) ReadRun(addr uint64, words, chunkWords int, chunkLoop float64) {
	checkRun(chunkWords, chunkLoop)
	r.runChunks(words, chunkWords, chunkLoop, func(off, n int) {
		r.h.ReadWords(addr+uint64(off)*WordSize, n)
	})
}

// WriteRun decomposes the run into per-access WriteWords calls.
func (r *RefHierarchy) WriteRun(addr uint64, words, chunkWords int, chunkLoop float64) {
	checkRun(chunkWords, chunkLoop)
	r.runChunks(words, chunkWords, chunkLoop, func(off, n int) {
		r.h.WriteWords(addr+uint64(off)*WordSize, n)
	})
}

// CopyRun decomposes the interleaved copy loop into per-access
// ReadWords and WriteWords calls, chunk by chunk.
func (r *RefHierarchy) CopyRun(src, dst uint64, words, chunkWords int, chunkLoop float64) {
	checkRun(chunkWords, chunkLoop)
	r.runChunks(words, chunkWords, chunkLoop, func(off, n int) {
		r.h.ReadWords(src+uint64(off)*WordSize, n)
		r.h.WriteWords(dst+uint64(off)*WordSize, n)
	})
}

// ReadRunBytes decomposes the run into a per-access ReadBytes call.
func (r *RefHierarchy) ReadRunBytes(addr uint64, n int) { r.h.ReadBytes(addr, n) }

// WriteRunBytes decomposes the run into a per-access WriteBytes call.
func (r *RefHierarchy) WriteRunBytes(addr uint64, n int) { r.h.WriteBytes(addr, n) }
