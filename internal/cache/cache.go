// Package cache simulates the Pentium P54C's two-level cache hierarchy.
//
// The paper's central memory-system finding (§6) is that the P54C has no
// write-allocate cache: a write that misses does not bring the line into the
// cache, so it travels to the next level of the hierarchy as an individual
// bus transaction. Reads, by contrast, allocate lines normally. This package
// implements exactly that mechanism with set-associative, write-back,
// LRU-replacement L1 and L2 caches in an inclusive hierarchy, and charges a
// calibrated cycle cost for every access. The memory-routine models in
// package memmodel run on top of it, and the paper's Figures 2 through 8 —
// the 8 KB and 256 KB plateaus, the flat sub-50 MB/s memset curve, and the
// dramatic effect of software prefetching — all emerge from this model.
package cache

import "fmt"

// WordSize is the access granularity of the memory routines, in bytes.
const WordSize = 4

// Timing holds the cycle costs charged for each kind of access. The defaults
// in PentiumTiming are calibrated so the sweep plateaus land where the paper
// measured them (≈300 MB/s from L1, ≈110 MB/s from L2, ≈75 MB/s from memory
// for reads; ≈45 MB/s for non-allocated writes).
type Timing struct {
	// WordHit is the cost of a 4-byte load that hits in L1.
	WordHit float64
	// WordWriteHit is the cost of a 4-byte store that hits in L1. Stores
	// pair slightly better than loads in the P54C's U/V pipes.
	WordWriteHit float64
	// ByteOp is the cost of a 1-byte load or store that hits in L1. The
	// benchmarks' tail loops process leftover bytes one at a time, and this
	// (deliberately inefficient) cost reproduces the §6.4 dips.
	ByteOp float64
	// L2WordAccess is the cost of a word store serviced by L2 when the line
	// is present in L2 but not in L1 (writes do not promote to L1).
	L2WordAccess float64
	// L1FillFromL2 is the cost to fill a line into L1 from L2.
	L1FillFromL2 float64
	// FillFromMem is the additional cost when the fill must come from main
	// memory rather than L2.
	FillFromMem float64
	// MemWordWrite is the cost of a 4-byte write that misses both caches
	// and becomes an individual bus transaction (no write-allocate).
	MemWordWrite float64
	// MemByteWrite is the cost of a 1-byte write that misses both caches.
	MemByteWrite float64
	// L1WriteBack is the cost of writing a dirty L1 line back into L2.
	L1WriteBack float64
	// L2WriteBack is the cost of bursting a dirty L2 line to memory.
	L2WriteBack float64
	// PrefetchIssue is the cost of issuing one software-prefetch touch
	// (a load whose value is discarded) when the line already resides in L1.
	PrefetchIssue float64
}

// PentiumTiming returns the calibrated timing for the paper's 100 MHz P54C.
func PentiumTiming() Timing {
	return Timing{
		WordHit:       1.0,
		WordWriteHit:  0.85,
		ByteOp:        2.5,
		L2WordAccess:  2.0,
		L1FillFromL2:  18.4,
		FillFromMem:   13.6,
		MemWordWrite:  8.5,
		MemByteWrite:  8.5,
		L1WriteBack:   4.0,
		L2WriteBack:   16.0,
		PrefetchIssue: 0.8,
	}
}

// Config describes a two-level hierarchy.
type Config struct {
	// LineSize is the cache line size in bytes (32 on the P54C).
	LineSize int
	// L1Size and L1Assoc describe the L1 data cache (8 KB, 2-way).
	L1Size, L1Assoc int
	// L2Size and L2Assoc describe the L2 cache (256 KB on the paper's
	// board; modelled 2-way to avoid pathological conflict artefacts that
	// the real benchmarks' allocator layout avoided).
	L2Size, L2Assoc int
	// WriteAllocate selects the write-miss policy. False on the P54C; the
	// write-allocate ablation (DESIGN.md A1) sets it true.
	WriteAllocate bool
	// Timing is the cycle-cost table.
	Timing Timing
}

// PentiumConfig returns the paper platform's hierarchy: 8 KB 2-way L1,
// 256 KB L2, 32-byte lines, no write-allocate.
func PentiumConfig() Config {
	return Config{
		LineSize:      32,
		L1Size:        8 << 10,
		L1Assoc:       2,
		L2Size:        256 << 10,
		L2Assoc:       2,
		WriteAllocate: false,
		Timing:        PentiumTiming(),
	}
}

// Stats counts the traffic observed at each level. Word and byte stores
// that miss both caches are tracked separately (MemWordWrites vs
// MemByteWrites) so tail-loop bus traffic is distinguishable from the
// main-loop word traffic.
type Stats struct {
	L1Hits, L1Misses     uint64
	L2Hits, L2Misses     uint64
	MemWordWrites        uint64 // non-allocated 4-byte writes to memory
	MemByteWrites        uint64 // non-allocated 1-byte writes to memory
	L1WriteBacks         uint64 // dirty L1 lines pushed to L2
	L2WriteBacks         uint64 // dirty L2 lines pushed to memory
	PrefetchesIssued     uint64
	PrefetchesUseful     uint64 // prefetches that actually filled a line
	LinesFilledFromL2    uint64
	LinesFilledFromMem   uint64
	BytesRead, BytesWrit uint64
}

// line is one cache way. key holds the level's current generation base
// plus the line address plus one; any smaller value (zero, or a key
// stamped under an earlier generation) marks the way invalid, so a scan
// tests presence, tag and generation with one comparison.
//
// use packs the LRU timestamp (shifted left one) with the dirty flag in
// the low bit, keeping a way at 16 bytes — the victim scans stream these
// arrays through the host's own caches, so size is speed. Timestamps are
// unique within a level, so comparing packed values orders ways exactly
// as comparing raw timestamps would, dirty bits notwithstanding.
type line struct {
	key uint64
	use uint64 // tick<<1 | dirty
}

// markDirty sets the dirty flag without disturbing the LRU stamp.
func (l *line) markDirty() { l.use |= 1 }

// isDirty reads the dirty flag.
func (l *line) isDirty() bool { return l.use&1 != 0 }

// level is one set-associative, write-back cache array. The ways are
// stored in one flat backing array — set s occupies
// lines[s*assoc : (s+1)*assoc] — so a lookup costs a single bounds-checked
// slice and construction a single allocation (the sweeps build a fresh
// hierarchy per point, so construction cost is hot too). Two-way sets (the
// paper's machine, both levels) additionally take unrolled scan paths,
// selected by twoWay; the general loops remain for every other geometry.
type level struct {
	lines    []line
	assoc    int
	twoWay   bool
	setShift uint
	setMask  uint64
	lineSize int
	tick     uint64
	// genBase is the current generation shifted into the bits above any
	// 32-bit line address. Stored keys are genBase + lineAddr + 1, so
	// bumping genBase by 1<<32 invalidates every line in O(1) — no key
	// from an earlier generation can equal a current-generation key, and
	// the victim scans treat key <= genBase as a free way. Because the
	// added bits sit entirely above setMask, set indexing is unchanged.
	genBase uint64
}

func newLevel(size, assoc, lineSize int) (*level, error) {
	if size <= 0 || assoc <= 0 || lineSize <= 0 {
		return nil, fmt.Errorf("cache: sizes and associativity must be positive (size %d, assoc %d, line %d)",
			size, assoc, lineSize)
	}
	if size%(assoc*lineSize) != 0 {
		return nil, fmt.Errorf("cache: size %d not divisible by assoc*line (%d*%d)", size, assoc, lineSize)
	}
	nsets := size / (assoc * lineSize)
	if nsets&(nsets-1) != 0 {
		return nil, fmt.Errorf("cache: set count %d must be a power of two", nsets)
	}
	shift := uint(0)
	for l := lineSize; l > 1; l >>= 1 {
		shift++
	}
	return &level{
		lines:    make([]line, nsets*assoc),
		assoc:    assoc,
		twoWay:   assoc == 2,
		setShift: shift,
		setMask:  uint64(nsets - 1),
		lineSize: lineSize,
	}, nil
}

func (lv *level) lineAddr(addr uint64) uint64 { return addr >> lv.setShift }

// set returns the ways of the set holding line address la.
func (lv *level) set(la uint64) []line {
	s := int(la&lv.setMask) * lv.assoc
	return lv.lines[s : s+lv.assoc]
}

// touch replays the LRU bump a per-access hit on l would perform.
func (lv *level) touch(l *line) {
	lv.tick++
	l.use = lv.tick<<1 | l.use&1
}

// lookup finds the line containing addr. It returns the way or nil.
func (lv *level) lookup(addr uint64) *line {
	key := lv.genBase + lv.lineAddr(addr) + 1
	if lv.twoWay {
		i := int((key-1)&lv.setMask) * 2
		// One bounds check covers both ways: the two-element reslice makes
		// s[0] and s[1] statically in range.
		s := lv.lines[i : i+2]
		w := &s[0]
		if w.key != key {
			w = &s[1]
			if w.key != key {
				return nil
			}
		}
		lv.tick++
		w.use = lv.tick<<1 | w.use&1
		return w
	}
	set := lv.set(key - 1)
	for i := range set {
		if set[i].key == key {
			lv.tick++
			set[i].use = lv.tick<<1 | set[i].use&1
			return &set[i]
		}
	}
	return nil
}

// insert places the line containing addr into the cache, returning the
// new line and the victim line's (tag, dirty) if a valid line was evicted.
func (lv *level) insert(addr uint64) (l *line, victimTag uint64, victimDirty, evicted bool) {
	la := lv.lineAddr(addr)
	if la >= 1<<32 {
		panic("cache: line address exceeds 32 bits")
	}
	gb := lv.genBase
	var victim *line
	if lv.twoWay {
		// Unrolled victim choice, same policy as the loop below: the first
		// free way wins, otherwise the least recently used (ties to way 0).
		i := int(la&lv.setMask) * 2
		s := lv.lines[i : i+2]
		victim = &s[0]
		if victim.key > gb {
			if w1 := &s[1]; w1.key <= gb || w1.use < victim.use {
				victim = w1
			}
		}
	} else {
		set := lv.set(la)
		victim = &set[0]
		for i := range set {
			if set[i].key <= gb {
				victim = &set[i]
				break
			}
			if set[i].use < victim.use {
				victim = &set[i]
			}
		}
	}
	// victim.key-gb-1 underflows for an invalid way; evicted=false guards it.
	victimTag, victimDirty, evicted = victim.key-gb-1, victim.isDirty(), victim.key > gb
	lv.tick++
	*victim = line{key: gb + la + 1, use: lv.tick << 1}
	return victim, victimTag, victimDirty, evicted
}

// lookupOrInsert resolves addr's line in one set scan: on a hit it bumps
// the LRU state and returns it, exactly as lookup; on a miss it inserts,
// exactly as insert. Scanning once instead of lookup-then-insert is what
// fill wants — the victim choice is identical because the first free way
// wins and, failing that, the least recent use among the ways scanned
// before it, just as insert's early-exit scan selects.
func (lv *level) lookupOrInsert(addr uint64) (l *line, hit bool, victimTag uint64, victimDirty, evicted bool) {
	gb := lv.genBase
	la := lv.lineAddr(addr)
	if la >= 1<<32 {
		panic("cache: line address exceeds 32 bits")
	}
	key := gb + la + 1
	var victim *line
	if lv.twoWay {
		i := int((key-1)&lv.setMask) * 2
		s := lv.lines[i : i+2]
		w0, w1 := &s[0], &s[1]
		if w0.key == key {
			lv.tick++
			w0.use = lv.tick<<1 | w0.use&1
			return w0, true, 0, false, false
		}
		if w1.key == key {
			lv.tick++
			w1.use = lv.tick<<1 | w1.use&1
			return w1, true, 0, false, false
		}
		victim = w0
		if w0.key > gb && (w1.key <= gb || w1.use < w0.use) {
			victim = w1
		}
	} else {
		set := lv.set(key - 1)
		victim = &set[0]
		free := false
		for i := range set {
			if set[i].key == key {
				lv.tick++
				set[i].use = lv.tick<<1 | set[i].use&1
				return &set[i], true, 0, false, false
			}
			if !free {
				if set[i].key <= gb {
					victim = &set[i]
					free = true
				} else if set[i].use < victim.use {
					victim = &set[i]
				}
			}
		}
	}
	victimTag, victimDirty, evicted = victim.key-gb-1, victim.isDirty(), victim.key > gb
	lv.tick++
	*victim = line{key: key, use: lv.tick << 1}
	return victim, false, victimTag, victimDirty, evicted
}

// invalidate drops the line containing the given line address, reporting
// whether it was present and dirty.
func (lv *level) invalidate(lineAddr uint64) (wasDirty, wasPresent bool) {
	key := lv.genBase + lineAddr + 1
	if lv.twoWay {
		i := int(lineAddr&lv.setMask) * 2
		s := lv.lines[i : i+2]
		w := &s[0]
		if w.key != key {
			w = &s[1]
			if w.key != key {
				return false, false
			}
		}
		wasDirty = w.isDirty()
		*w = line{}
		return wasDirty, true
	}
	set := lv.set(lineAddr)
	for i := range set {
		if set[i].key == key {
			wasDirty = set[i].isDirty()
			set[i] = line{}
			return wasDirty, true
		}
	}
	return false, false
}

// flush invalidates every line in O(1) by advancing the generation: all
// stored keys fall at or below the new genBase, which every scan treats
// as a free way, indistinguishable from a zeroed array. Line addresses
// fit in 32 bits (insert enforces it), so generations never collide.
func (lv *level) flush() {
	lv.genBase += 1 << 32
}

// Hierarchy is the full two-level cache model. It accumulates a cycle count
// as accesses are simulated; callers read and reset the counter.
//
// Hierarchy is not safe for concurrent use.
type Hierarchy struct {
	cfg    Config
	l1, l2 *level
	cycles float64
	stats  Stats
	// attr, when non-nil, receives a per-bucket copy of every cycle
	// charged (see AttachBreakdown in obs.go). The run-length fast paths
	// divert to the per-access decomposition while it is attached.
	attr *CycleBreakdown
}

// New builds a hierarchy from cfg. Invalid geometry — non-positive
// sizes, a non-power-of-two set count, L1 at least as large as L2 — is
// a returned error, so a malformed machine description from a flag or a
// config file surfaces as a message, not a panic.
func New(cfg Config) (*Hierarchy, error) {
	if cfg.L1Size >= cfg.L2Size {
		return nil, fmt.Errorf("cache: L1 (%d) must be smaller than L2 (%d)", cfg.L1Size, cfg.L2Size)
	}
	l1, err := newLevel(cfg.L1Size, cfg.L1Assoc, cfg.LineSize)
	if err != nil {
		return nil, fmt.Errorf("L1: %w", err)
	}
	l2, err := newLevel(cfg.L2Size, cfg.L2Assoc, cfg.LineSize)
	if err != nil {
		return nil, fmt.Errorf("L2: %w", err)
	}
	return &Hierarchy{cfg: cfg, l1: l1, l2: l2}, nil
}

// MustNew is New for the compiled-in machine descriptions, whose
// validity is a compile-time fact.
func MustNew(cfg Config) *Hierarchy {
	h, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return h
}

// Config returns the hierarchy's configuration.
func (h *Hierarchy) Config() Config { return h.cfg }

// Cycles returns the cycles consumed since the last ResetCycles.
func (h *Hierarchy) Cycles() float64 { return h.cycles }

// ResetCycles zeroes the cycle counter (statistics are kept). An attached
// breakdown is zeroed with it, preserving the Total() == Cycles()
// identity.
func (h *Hierarchy) ResetCycles() {
	h.cycles = 0
	if h.attr != nil {
		*h.attr = CycleBreakdown{}
	}
}

// AddCycles charges extra cycles against the hierarchy's ledger. Callers
// use it for loop and ALU overhead that accompanies the memory accesses.
func (h *Hierarchy) AddCycles(c float64) {
	if c < 0 {
		panic("cache: negative cycle charge")
	}
	h.cycles += c
	if h.attr != nil {
		h.attr.Overhead += c
	}
}

// Stats returns a copy of the traffic counters.
func (h *Hierarchy) Stats() Stats { return h.stats }

// ResetStats zeroes the traffic counters.
func (h *Hierarchy) ResetStats() { h.stats = Stats{} }

// Flush invalidates every line in both levels without writing anything back,
// modelling a cold start.
func (h *Hierarchy) Flush() {
	h.l1.flush()
	h.l2.flush()
}

// fill brings the line containing addr into L1 (and L2, maintaining
// inclusion), charging fill and write-back costs, and returns the L1 line
// it placed, saving callers a re-scan. It assumes the line is not already
// in L1.
func (h *Hierarchy) fill(addr uint64) *line {
	t := &h.cfg.Timing
	if _, hit, vt, vd, ev := h.l2.lookupOrInsert(addr); hit {
		h.stats.L2Hits++
		h.cycles += t.L1FillFromL2
		h.stats.LinesFilledFromL2++
		if h.attr != nil {
			h.attr.L2 += t.L1FillFromL2
		}
	} else {
		// Allocated in L2 (inclusive hierarchy).
		h.stats.L2Misses++
		h.cycles += t.L1FillFromL2 + t.FillFromMem
		h.stats.LinesFilledFromMem++
		if h.attr != nil {
			h.attr.L2 += t.L1FillFromL2
			h.attr.Mem += t.FillFromMem
		}
		if ev {
			// Maintain inclusion: the victim must leave L1 too.
			l1dirty, present := h.l1.invalidate(vt)
			if present && l1dirty {
				vd = true
			}
			if vd {
				h.cycles += t.L2WriteBack
				h.stats.L2WriteBacks++
				if h.attr != nil {
					h.attr.WriteBack += t.L2WriteBack
				}
			}
		}
	}
	l, vt, vd, ev := h.l1.insert(addr)
	if ev && vd {
		// Dirty L1 victim goes down to L2; mark the L2 copy dirty.
		h.cycles += t.L1WriteBack
		h.stats.L1WriteBacks++
		if h.attr != nil {
			h.attr.WriteBack += t.L1WriteBack
		}
		if l2line := h.l2.lookup(vt << h.l2.setShift); l2line != nil {
			l2line.markDirty()
		} else {
			// Inclusion was broken by an L2 eviction between the L1 fill
			// and now; burst the line to memory.
			h.cycles += t.L2WriteBack
			h.stats.L2WriteBacks++
			if h.attr != nil {
				h.attr.WriteBack += t.L2WriteBack
			}
		}
	}
	return l
}

// ReadWords simulates n consecutive 4-byte loads starting at addr.
func (h *Hierarchy) ReadWords(addr uint64, n int) {
	t := &h.cfg.Timing
	h.stats.BytesRead += uint64(n) * WordSize
	for i := 0; i < n; i++ {
		a := addr + uint64(i)*WordSize
		h.cycles += t.WordHit
		if h.attr != nil {
			h.attr.L1 += t.WordHit
		}
		if h.l1.lookup(a) != nil {
			h.stats.L1Hits++
			continue
		}
		h.stats.L1Misses++
		h.fill(a)
	}
}

// WriteWords simulates n consecutive 4-byte stores starting at addr.
func (h *Hierarchy) WriteWords(addr uint64, n int) {
	t := &h.cfg.Timing
	h.stats.BytesWrit += uint64(n) * WordSize
	for i := 0; i < n; i++ {
		a := addr + uint64(i)*WordSize
		if l := h.l1.lookup(a); l != nil {
			h.stats.L1Hits++
			h.cycles += t.WordWriteHit
			if h.attr != nil {
				h.attr.L1 += t.WordWriteHit
			}
			l.markDirty()
			continue
		}
		h.stats.L1Misses++
		if h.cfg.WriteAllocate {
			// Write-allocate: fill the line, then the store hits.
			h.fill(a)
			h.cycles += t.WordWriteHit
			if h.attr != nil {
				h.attr.L1 += t.WordWriteHit
			}
			if l := h.l1.lookup(a); l != nil {
				l.markDirty()
			}
			continue
		}
		// No write-allocate: the store bypasses L1. It may still hit L2.
		if l2 := h.l2.lookup(a); l2 != nil {
			h.stats.L2Hits++
			h.cycles += t.L2WordAccess
			if h.attr != nil {
				h.attr.L2 += t.L2WordAccess
			}
			l2.markDirty()
			continue
		}
		h.stats.L2Misses++
		h.cycles += t.MemWordWrite
		h.stats.MemWordWrites++
		if h.attr != nil {
			h.attr.Mem += t.MemWordWrite
		}
	}
}

// ReadBytes simulates n consecutive 1-byte loads starting at addr (the
// benchmarks' tail loop).
func (h *Hierarchy) ReadBytes(addr uint64, n int) {
	t := &h.cfg.Timing
	h.stats.BytesRead += uint64(n)
	for i := 0; i < n; i++ {
		a := addr + uint64(i)
		h.cycles += t.ByteOp
		if h.attr != nil {
			h.attr.L1 += t.ByteOp
		}
		if h.l1.lookup(a) != nil {
			h.stats.L1Hits++
			continue
		}
		h.stats.L1Misses++
		h.fill(a)
	}
}

// WriteBytes simulates n consecutive 1-byte stores starting at addr.
func (h *Hierarchy) WriteBytes(addr uint64, n int) {
	t := &h.cfg.Timing
	h.stats.BytesWrit += uint64(n)
	for i := 0; i < n; i++ {
		a := addr + uint64(i)
		if l := h.l1.lookup(a); l != nil {
			h.stats.L1Hits++
			h.cycles += t.ByteOp
			if h.attr != nil {
				h.attr.L1 += t.ByteOp
			}
			l.markDirty()
			continue
		}
		h.stats.L1Misses++
		if h.cfg.WriteAllocate {
			h.fill(a)
			h.cycles += t.ByteOp
			if h.attr != nil {
				h.attr.L1 += t.ByteOp
			}
			if l := h.l1.lookup(a); l != nil {
				l.markDirty()
			}
			continue
		}
		if l2 := h.l2.lookup(a); l2 != nil {
			h.stats.L2Hits++
			h.cycles += t.L2WordAccess
			if h.attr != nil {
				h.attr.L2 += t.L2WordAccess
			}
			l2.markDirty()
			continue
		}
		h.stats.L2Misses++
		h.cycles += t.MemByteWrite
		h.stats.MemByteWrites++
		if h.attr != nil {
			h.attr.Mem += t.MemByteWrite
		}
	}
}

// lineRun returns how many of the n accesses starting at addr with the
// given stride begin inside the cache line containing addr. The model
// classifies an access by its start address, so this is the length of the
// prefix that resolves against a single tag.
func (h *Hierarchy) lineRun(addr uint64, n, stride int) int {
	lineEnd := (addr | uint64(h.cfg.LineSize-1)) + 1
	k := int((lineEnd - addr + uint64(stride) - 1) / uint64(stride))
	if k > n {
		k = n
	}
	return k
}

// checkRun validates the chunked-loop parameters shared by the run-length
// entry points.
func checkRun(chunkWords int, chunkLoop float64) {
	if chunkWords > 0 && chunkLoop < 0 {
		panic("cache: negative chunk-loop charge")
	}
}

// runChunks replays the chunked loop structure of a run through a
// per-access body: chunkLoop cycles charged before every chunkWords
// accesses, exactly as the run-length entry points interleave them. It
// is the single decomposition implementation shared by RefHierarchy and
// by Hierarchy when a cycle breakdown is attached, so both take the same
// trusted path.
func (h *Hierarchy) runChunks(n, chunk int, loop float64, body func(off, n int)) {
	if n <= 0 {
		return
	}
	if chunk <= 0 {
		body(0, n)
		return
	}
	for i := 0; i < n; i += chunk {
		c := chunk
		if c > n-i {
			c = n - i
		}
		h.AddCycles(loop)
		body(i, c)
	}
}

// ReadRun simulates words consecutive 4-byte loads starting at addr,
// charging chunkLoop cycles of loop overhead before every chunkWords loads
// (chunkWords <= 0 charges no loop overhead). It is the run-length fast
// path for ReadWords: one tag lookup and LRU update resolves each cache
// line, and the per-word hit costs for the rest of the line are charged in
// the same accumulation order as the per-access loop, so cycles and Stats
// are bit-identical to issuing the equivalent per-word sequence
// (RefHierarchy is that per-access decomposition; the differential test
// holds the two together).
func (h *Hierarchy) ReadRun(addr uint64, words, chunkWords int, chunkLoop float64) {
	checkRun(chunkWords, chunkLoop)
	if words <= 0 {
		return
	}
	if h.attr != nil {
		// Attribution attached: take the per-access decomposition, where
		// every charge lands in exactly one bucket. Bit-identical to the
		// fast path by the §8.1 invariant.
		h.runChunks(words, chunkWords, chunkLoop, func(off, n int) {
			h.ReadWords(addr+uint64(off)*WordSize, n)
		})
		return
	}
	t := &h.cfg.Timing
	h.stats.BytesRead += uint64(words) * WordSize
	// The running ledger lives in a local for the duration of the run: the
	// serial += chain is the hot path, and keeping it in h.cycles would
	// reload and store the accumulator every word (the compiler cannot
	// prove h.cycles and the timing constants don't alias). Only where the
	// value is kept changes — the addition order is exactly per-access —
	// and it is synced back around every fill, which charges h.cycles
	// itself.
	cycles, wordHit := h.cycles, t.WordHit
	// untilLoop counts down the words remaining before the next per-chunk
	// loop charge; a countdown avoids an integer division per word.
	untilLoop := 0
	for i := 0; i < words; {
		a := addr + uint64(i)*WordSize
		k := h.lineRun(a, words-i, WordSize)
		// One lookup classifies the whole line: after the first load (which
		// fills on a miss) the line is resident, so the remaining k-1 loads
		// are L1 hits whose costs are replayed without consulting the tags.
		if chunkWords > 0 {
			if untilLoop == 0 {
				cycles += chunkLoop
				untilLoop = chunkWords
			}
			untilLoop--
		}
		cycles += wordHit
		if h.l1.lookup(a) != nil {
			h.stats.L1Hits++
		} else {
			h.stats.L1Misses++
			h.cycles = cycles
			h.fill(a)
			cycles = h.cycles
		}
		for j := 1; j < k; j++ {
			if chunkWords > 0 {
				if untilLoop == 0 {
					cycles += chunkLoop
					untilLoop = chunkWords
				}
				untilLoop--
			}
			cycles += wordHit
		}
		h.stats.L1Hits += uint64(k - 1)
		i += k
	}
	h.cycles = cycles
}

// runClass says how every access after the first in a line-length run
// resolves: as L1 hits, as L2 hits (no-write-allocate stores to an
// L2-resident line), or as individual memory transactions.
type runClass int

const (
	runL1 runClass = iota
	runL2
	runMem
)

// WriteRun simulates words consecutive 4-byte stores starting at addr with
// the same chunked loop structure as ReadRun. One tag lookup per line
// classifies the stores — L1 hit, write-allocate fill, L2 hit, or memory
// transaction — and the per-word costs of the remainder follow in the
// per-access accumulation order.
func (h *Hierarchy) WriteRun(addr uint64, words, chunkWords int, chunkLoop float64) {
	checkRun(chunkWords, chunkLoop)
	if words <= 0 {
		return
	}
	if h.attr != nil {
		h.runChunks(words, chunkWords, chunkLoop, func(off, n int) {
			h.WriteWords(addr+uint64(off)*WordSize, n)
		})
		return
	}
	t := &h.cfg.Timing
	h.stats.BytesWrit += uint64(words) * WordSize
	// As in ReadRun, the ledger lives in a local and is synced around fill.
	cycles := h.cycles
	untilLoop := 0
	for i := 0; i < words; {
		a := addr + uint64(i)*WordSize
		k := h.lineRun(a, words-i, WordSize)
		if chunkWords > 0 {
			if untilLoop == 0 {
				cycles += chunkLoop
				untilLoop = chunkWords
			}
			untilLoop--
		}
		// First store of the line: full per-access path.
		var class runClass
		if l := h.l1.lookup(a); l != nil {
			h.stats.L1Hits++
			cycles += t.WordWriteHit
			l.markDirty()
			class = runL1
		} else {
			h.stats.L1Misses++
			switch {
			case h.cfg.WriteAllocate:
				h.cycles = cycles
				l := h.fill(a)
				cycles = h.cycles
				cycles += t.WordWriteHit
				// Dirty the filled line with its LRU bump, as the
				// per-access path's re-lookup does, without the scan.
				h.l1.touch(l)
				l.markDirty()
				class = runL1 // the fill leaves the line in L1
			default:
				if l2 := h.l2.lookup(a); l2 != nil {
					h.stats.L2Hits++
					cycles += t.L2WordAccess
					l2.markDirty()
					class = runL2
				} else {
					h.stats.L2Misses++
					cycles += t.MemWordWrite
					h.stats.MemWordWrites++
					class = runMem
				}
			}
		}
		// The remaining k-1 stores resolve identically: no-write-allocate
		// misses never change cache state, and hits only re-touch the line.
		var cost float64
		switch class {
		case runL1:
			cost = t.WordWriteHit
			h.stats.L1Hits += uint64(k - 1)
		case runL2:
			cost = t.L2WordAccess
			h.stats.L1Misses += uint64(k - 1)
			h.stats.L2Hits += uint64(k - 1)
		case runMem:
			cost = t.MemWordWrite
			h.stats.L1Misses += uint64(k - 1)
			h.stats.L2Misses += uint64(k - 1)
			h.stats.MemWordWrites += uint64(k - 1)
		}
		for j := 1; j < k; j++ {
			if chunkWords > 0 {
				if untilLoop == 0 {
					cycles += chunkLoop
					untilLoop = chunkWords
				}
				untilLoop--
			}
			cycles += cost
		}
		i += k
	}
	h.cycles = cycles
}

// CopyRun simulates the interleaved main loop of a copy routine: for each
// chunk of chunkWords words it charges chunkLoop cycles of loop overhead,
// then the chunk's loads from src, then the chunk's stores to dst — the
// exact accumulation order of the per-access loops (chunkWords <= 0 makes
// the whole run a single chunk with no loop charge).
//
// Unlike the single-stream runs, collapsing same-line accesses to the
// first one is NOT enough here: the two streams' LRU touches interleave,
// so dropping the later touches can invert the relative last-touch order
// of the source and destination lines and silently change a future
// victim choice. CopyRun therefore keeps a pointer to each stream's
// current line and replays every collapsed access's LRU bump directly on
// it — the set scan is what the fast path saves, not the tick. Any fill
// can evict the other stream's cached line (directly, or via an
// inclusion invalidation), so it drops that stream's pointer and forces
// a real lookup on its next access.
func (h *Hierarchy) CopyRun(src, dst uint64, words, chunkWords int, chunkLoop float64) {
	checkRun(chunkWords, chunkLoop)
	if words <= 0 {
		return
	}
	if h.attr != nil {
		h.runChunks(words, chunkWords, chunkLoop, func(off, n int) {
			h.ReadWords(src+uint64(off)*WordSize, n)
			h.WriteWords(dst+uint64(off)*WordSize, n)
		})
		return
	}
	t := &h.cfg.Timing
	h.stats.BytesRead += uint64(words) * WordSize
	h.stats.BytesWrit += uint64(words) * WordSize
	cw := chunkWords
	if cw <= 0 {
		cw = words
	}
	lineMask := ^uint64(h.cfg.LineSize - 1)
	// As in ReadRun, the ledger lives in a local and is synced around fill.
	cycles, wordHit := h.cycles, t.WordHit
	var (
		readLine, writeLine uint64
		readPtr             *line // current src line, resident in L1
		writePtr            *line // current dst line in L1 (runL1) or L2 (runL2)
		writeValid          bool
		writeClass          runClass
		writeCost           float64
	)
	for i := 0; i < words; i += cw {
		n := cw
		if words-i < n {
			n = words - i
		}
		if chunkWords > 0 {
			cycles += chunkLoop
		}
		for j := 0; j < n; {
			a := src + uint64(i+j)*WordSize
			la := a & lineMask
			if readPtr != nil && la == readLine {
				// The rest of this chunk's loads on the cached line: serial
				// per-word cycle charges (float addition order is the
				// invariant), batched stats and a batched LRU replay — k
				// consecutive touches of one line with no other cache event
				// between them collapse to tick += k exactly.
				k := h.lineRun(a, n-j, WordSize)
				for w := 0; w < k; w++ {
					cycles += wordHit
				}
				h.stats.L1Hits += uint64(k)
				h.l1.tick += uint64(k)
				readPtr.use = h.l1.tick<<1 | readPtr.use&1
				j += k
				continue
			}
			cycles += wordHit
			if l := h.l1.lookup(a); l != nil {
				h.stats.L1Hits++
				readPtr = l
			} else {
				h.stats.L1Misses++
				h.cycles = cycles
				readPtr = h.fill(a)
				cycles = h.cycles
				writeValid = false // the fill may have evicted the write line
			}
			readLine = la
			j++
		}
		for j := 0; j < n; {
			a := dst + uint64(i+j)*WordSize
			la := a & lineMask
			if writeValid && la == writeLine {
				k := h.lineRun(a, n-j, WordSize)
				for w := 0; w < k; w++ {
					cycles += writeCost
				}
				switch writeClass {
				case runL1:
					h.stats.L1Hits += uint64(k)
					h.l1.tick += uint64(k)
					writePtr.use = h.l1.tick<<1 | writePtr.use&1
				case runL2:
					h.stats.L1Misses += uint64(k)
					h.stats.L2Hits += uint64(k)
					h.l2.tick += uint64(k)
					writePtr.use = h.l2.tick<<1 | writePtr.use&1
				case runMem:
					h.stats.L1Misses += uint64(k)
					h.stats.L2Misses += uint64(k)
					h.stats.MemWordWrites += uint64(k)
				}
				j += k
				continue
			}
			// First store of a line: the full per-access path, as in WriteRun.
			if l := h.l1.lookup(a); l != nil {
				h.stats.L1Hits++
				cycles += t.WordWriteHit
				l.markDirty()
				writeClass, writeCost, writePtr = runL1, t.WordWriteHit, l
			} else {
				h.stats.L1Misses++
				switch {
				case h.cfg.WriteAllocate:
					h.cycles = cycles
					l := h.fill(a)
					cycles = h.cycles
					cycles += t.WordWriteHit
					// The per-access path re-looks the line up to mark it
					// dirty; the fill's pointer plus the lookup's LRU bump
					// replays that without the scan.
					h.l1.touch(l)
					l.markDirty()
					writePtr = l
					readPtr = nil // the fill may have evicted the read line
					writeClass, writeCost = runL1, t.WordWriteHit
				default:
					if l2 := h.l2.lookup(a); l2 != nil {
						h.stats.L2Hits++
						cycles += t.L2WordAccess
						l2.markDirty()
						writeClass, writeCost, writePtr = runL2, t.L2WordAccess, l2
					} else {
						h.stats.L2Misses++
						cycles += t.MemWordWrite
						h.stats.MemWordWrites++
						writeClass, writeCost, writePtr = runMem, t.MemWordWrite, nil
					}
				}
			}
			writeLine, writeValid = la, writeClass != runL1 || writePtr != nil
			j++
		}
	}
	h.cycles = cycles
}

// ReadRunBytes is the run-length fast path for ReadBytes: one tag lookup
// per line, per-byte costs for the rest.
func (h *Hierarchy) ReadRunBytes(addr uint64, n int) {
	if n <= 0 {
		return
	}
	if h.attr != nil {
		h.ReadBytes(addr, n)
		return
	}
	t := &h.cfg.Timing
	h.stats.BytesRead += uint64(n)
	for i := 0; i < n; {
		a := addr + uint64(i)
		k := h.lineRun(a, n-i, 1)
		h.cycles += t.ByteOp
		if h.l1.lookup(a) != nil {
			h.stats.L1Hits++
		} else {
			h.stats.L1Misses++
			h.fill(a)
		}
		for j := 1; j < k; j++ {
			h.cycles += t.ByteOp
		}
		h.stats.L1Hits += uint64(k - 1)
		i += k
	}
}

// WriteRunBytes is the run-length fast path for WriteBytes: one tag lookup
// per line classifies the stores, per-byte costs follow.
func (h *Hierarchy) WriteRunBytes(addr uint64, n int) {
	if n <= 0 {
		return
	}
	if h.attr != nil {
		h.WriteBytes(addr, n)
		return
	}
	t := &h.cfg.Timing
	h.stats.BytesWrit += uint64(n)
	for i := 0; i < n; {
		a := addr + uint64(i)
		k := h.lineRun(a, n-i, 1)
		var class runClass
		if l := h.l1.lookup(a); l != nil {
			h.stats.L1Hits++
			h.cycles += t.ByteOp
			l.markDirty()
			class = runL1
		} else {
			h.stats.L1Misses++
			switch {
			case h.cfg.WriteAllocate:
				h.fill(a)
				h.cycles += t.ByteOp
				if l := h.l1.lookup(a); l != nil {
					l.markDirty()
				}
				class = runL1
			default:
				if l2 := h.l2.lookup(a); l2 != nil {
					h.stats.L2Hits++
					h.cycles += t.L2WordAccess
					l2.markDirty()
					class = runL2
				} else {
					h.stats.L2Misses++
					h.cycles += t.MemByteWrite
					h.stats.MemByteWrites++
					class = runMem
				}
			}
		}
		var cost float64
		switch class {
		case runL1:
			cost = t.ByteOp
			h.stats.L1Hits += uint64(k - 1)
		case runL2:
			cost = t.L2WordAccess
			h.stats.L1Misses += uint64(k - 1)
			h.stats.L2Hits += uint64(k - 1)
		case runMem:
			cost = t.MemByteWrite
			h.stats.L1Misses += uint64(k - 1)
			h.stats.L2Misses += uint64(k - 1)
			h.stats.MemByteWrites += uint64(k - 1)
		}
		for j := 1; j < k; j++ {
			h.cycles += cost
		}
		i += k
	}
}

// Prefetch simulates a software prefetch: a load that touches one byte of
// the line containing addr purely to force allocation. On the P54C this is
// an ordinary load instruction whose result is discarded. It returns the
// cycles it charged, so callers modeling fill overlap need not bracket the
// call with two Cycles reads.
func (h *Hierarchy) Prefetch(addr uint64) float64 {
	start := h.cycles
	h.stats.PrefetchesIssued++
	h.cycles += h.cfg.Timing.PrefetchIssue
	if h.attr != nil {
		h.attr.Overhead += h.cfg.Timing.PrefetchIssue
	}
	if h.l1.lookup(addr) != nil {
		h.stats.L1Hits++
		return h.cycles - start
	}
	h.stats.L1Misses++
	h.stats.PrefetchesUseful++
	h.fill(addr)
	return h.cycles - start
}

// Contains reports at which level the line holding addr currently resides:
// 1, 2, or 0 when it is only in memory. Exposed for tests and diagnostics.
func (h *Hierarchy) Contains(addr uint64) int {
	// Peek without disturbing LRU: scan directly.
	if h.peek(h.l1, addr) {
		return 1
	}
	if h.peek(h.l2, addr) {
		return 2
	}
	return 0
}

func (h *Hierarchy) peek(lv *level, addr uint64) bool {
	key := lv.genBase + lv.lineAddr(addr) + 1
	set := lv.set(key - 1)
	for i := range set {
		if set[i].key == key {
			return true
		}
	}
	return false
}
