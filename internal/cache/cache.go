// Package cache simulates the Pentium P54C's two-level cache hierarchy.
//
// The paper's central memory-system finding (§6) is that the P54C has no
// write-allocate cache: a write that misses does not bring the line into the
// cache, so it travels to the next level of the hierarchy as an individual
// bus transaction. Reads, by contrast, allocate lines normally. This package
// implements exactly that mechanism with set-associative, write-back,
// LRU-replacement L1 and L2 caches in an inclusive hierarchy, and charges a
// calibrated cycle cost for every access. The memory-routine models in
// package memmodel run on top of it, and the paper's Figures 2 through 8 —
// the 8 KB and 256 KB plateaus, the flat sub-50 MB/s memset curve, and the
// dramatic effect of software prefetching — all emerge from this model.
package cache

import "fmt"

// WordSize is the access granularity of the memory routines, in bytes.
const WordSize = 4

// Timing holds the cycle costs charged for each kind of access. The defaults
// in PentiumTiming are calibrated so the sweep plateaus land where the paper
// measured them (≈300 MB/s from L1, ≈110 MB/s from L2, ≈75 MB/s from memory
// for reads; ≈45 MB/s for non-allocated writes).
type Timing struct {
	// WordHit is the cost of a 4-byte load that hits in L1.
	WordHit float64
	// WordWriteHit is the cost of a 4-byte store that hits in L1. Stores
	// pair slightly better than loads in the P54C's U/V pipes.
	WordWriteHit float64
	// ByteOp is the cost of a 1-byte load or store that hits in L1. The
	// benchmarks' tail loops process leftover bytes one at a time, and this
	// (deliberately inefficient) cost reproduces the §6.4 dips.
	ByteOp float64
	// L2WordAccess is the cost of a word store serviced by L2 when the line
	// is present in L2 but not in L1 (writes do not promote to L1).
	L2WordAccess float64
	// L1FillFromL2 is the cost to fill a line into L1 from L2.
	L1FillFromL2 float64
	// FillFromMem is the additional cost when the fill must come from main
	// memory rather than L2.
	FillFromMem float64
	// MemWordWrite is the cost of a 4-byte write that misses both caches
	// and becomes an individual bus transaction (no write-allocate).
	MemWordWrite float64
	// MemByteWrite is the cost of a 1-byte write that misses both caches.
	MemByteWrite float64
	// L1WriteBack is the cost of writing a dirty L1 line back into L2.
	L1WriteBack float64
	// L2WriteBack is the cost of bursting a dirty L2 line to memory.
	L2WriteBack float64
	// PrefetchIssue is the cost of issuing one software-prefetch touch
	// (a load whose value is discarded) when the line already resides in L1.
	PrefetchIssue float64
}

// PentiumTiming returns the calibrated timing for the paper's 100 MHz P54C.
func PentiumTiming() Timing {
	return Timing{
		WordHit:       1.0,
		WordWriteHit:  0.85,
		ByteOp:        2.5,
		L2WordAccess:  2.0,
		L1FillFromL2:  18.4,
		FillFromMem:   13.6,
		MemWordWrite:  8.5,
		MemByteWrite:  8.5,
		L1WriteBack:   4.0,
		L2WriteBack:   16.0,
		PrefetchIssue: 0.8,
	}
}

// Config describes a two-level hierarchy.
type Config struct {
	// LineSize is the cache line size in bytes (32 on the P54C).
	LineSize int
	// L1Size and L1Assoc describe the L1 data cache (8 KB, 2-way).
	L1Size, L1Assoc int
	// L2Size and L2Assoc describe the L2 cache (256 KB on the paper's
	// board; modelled 2-way to avoid pathological conflict artefacts that
	// the real benchmarks' allocator layout avoided).
	L2Size, L2Assoc int
	// WriteAllocate selects the write-miss policy. False on the P54C; the
	// write-allocate ablation (DESIGN.md A1) sets it true.
	WriteAllocate bool
	// Timing is the cycle-cost table.
	Timing Timing
}

// PentiumConfig returns the paper platform's hierarchy: 8 KB 2-way L1,
// 256 KB L2, 32-byte lines, no write-allocate.
func PentiumConfig() Config {
	return Config{
		LineSize:      32,
		L1Size:        8 << 10,
		L1Assoc:       2,
		L2Size:        256 << 10,
		L2Assoc:       2,
		WriteAllocate: false,
		Timing:        PentiumTiming(),
	}
}

// Stats counts the traffic observed at each level.
type Stats struct {
	L1Hits, L1Misses     uint64
	L2Hits, L2Misses     uint64
	MemWordWrites        uint64 // non-allocated word/byte writes to memory
	L1WriteBacks         uint64 // dirty L1 lines pushed to L2
	L2WriteBacks         uint64 // dirty L2 lines pushed to memory
	PrefetchesIssued     uint64
	PrefetchesUseful     uint64 // prefetches that actually filled a line
	LinesFilledFromL2    uint64
	LinesFilledFromMem   uint64
	BytesRead, BytesWrit uint64
}

type line struct {
	tag   uint64
	valid bool
	dirty bool
	use   uint64 // LRU timestamp
}

// level is one set-associative, write-back cache array.
type level struct {
	sets     [][]line
	setShift uint
	setMask  uint64
	lineSize int
	tick     uint64
}

func newLevel(size, assoc, lineSize int) *level {
	if size <= 0 || assoc <= 0 || lineSize <= 0 {
		panic("cache: sizes and associativity must be positive")
	}
	if size%(assoc*lineSize) != 0 {
		panic(fmt.Sprintf("cache: size %d not divisible by assoc*line (%d*%d)", size, assoc, lineSize))
	}
	nsets := size / (assoc * lineSize)
	if nsets&(nsets-1) != 0 {
		panic(fmt.Sprintf("cache: set count %d must be a power of two", nsets))
	}
	shift := uint(0)
	for l := lineSize; l > 1; l >>= 1 {
		shift++
	}
	lv := &level{
		sets:     make([][]line, nsets),
		setShift: shift,
		setMask:  uint64(nsets - 1),
		lineSize: lineSize,
	}
	for i := range lv.sets {
		lv.sets[i] = make([]line, assoc)
	}
	return lv
}

func (lv *level) lineAddr(addr uint64) uint64 { return addr >> lv.setShift }

// lookup finds the line containing addr. It returns the way or nil.
func (lv *level) lookup(addr uint64) *line {
	la := lv.lineAddr(addr)
	set := lv.sets[la&lv.setMask]
	for i := range set {
		if set[i].valid && set[i].tag == la {
			lv.tick++
			set[i].use = lv.tick
			return &set[i]
		}
	}
	return nil
}

// insert places the line containing addr into the cache, returning the
// victim line's (tag, dirty) if a valid line was evicted.
func (lv *level) insert(addr uint64) (victimTag uint64, victimDirty, evicted bool) {
	la := lv.lineAddr(addr)
	set := lv.sets[la&lv.setMask]
	victim := &set[0]
	for i := range set {
		if !set[i].valid {
			victim = &set[i]
			break
		}
		if set[i].use < victim.use {
			victim = &set[i]
		}
	}
	victimTag, victimDirty, evicted = victim.tag, victim.dirty, victim.valid
	lv.tick++
	*victim = line{tag: la, valid: true, use: lv.tick}
	return victimTag, victimDirty, evicted
}

// invalidate drops the line containing the given line address, reporting
// whether it was present and dirty.
func (lv *level) invalidate(lineAddr uint64) (wasDirty, wasPresent bool) {
	set := lv.sets[lineAddr&lv.setMask]
	for i := range set {
		if set[i].valid && set[i].tag == lineAddr {
			wasDirty = set[i].dirty
			set[i] = line{}
			return wasDirty, true
		}
	}
	return false, false
}

func (lv *level) flush() {
	for i := range lv.sets {
		for j := range lv.sets[i] {
			lv.sets[i][j] = line{}
		}
	}
}

// Hierarchy is the full two-level cache model. It accumulates a cycle count
// as accesses are simulated; callers read and reset the counter.
//
// Hierarchy is not safe for concurrent use.
type Hierarchy struct {
	cfg    Config
	l1, l2 *level
	cycles float64
	stats  Stats
}

// New builds a hierarchy from cfg. It panics on invalid geometry, since a
// malformed machine description is a programming error.
func New(cfg Config) *Hierarchy {
	if cfg.L1Size >= cfg.L2Size {
		panic("cache: L1 must be smaller than L2")
	}
	return &Hierarchy{
		cfg: cfg,
		l1:  newLevel(cfg.L1Size, cfg.L1Assoc, cfg.LineSize),
		l2:  newLevel(cfg.L2Size, cfg.L2Assoc, cfg.LineSize),
	}
}

// Config returns the hierarchy's configuration.
func (h *Hierarchy) Config() Config { return h.cfg }

// Cycles returns the cycles consumed since the last ResetCycles.
func (h *Hierarchy) Cycles() float64 { return h.cycles }

// ResetCycles zeroes the cycle counter (statistics are kept).
func (h *Hierarchy) ResetCycles() { h.cycles = 0 }

// AddCycles charges extra cycles against the hierarchy's ledger. Callers
// use it for loop and ALU overhead that accompanies the memory accesses.
func (h *Hierarchy) AddCycles(c float64) {
	if c < 0 {
		panic("cache: negative cycle charge")
	}
	h.cycles += c
}

// Stats returns a copy of the traffic counters.
func (h *Hierarchy) Stats() Stats { return h.stats }

// ResetStats zeroes the traffic counters.
func (h *Hierarchy) ResetStats() { h.stats = Stats{} }

// Flush invalidates every line in both levels without writing anything back,
// modelling a cold start.
func (h *Hierarchy) Flush() {
	h.l1.flush()
	h.l2.flush()
}

// fill brings the line containing addr into L1 (and L2, maintaining
// inclusion), charging fill and write-back costs. It assumes the line is not
// already in L1.
func (h *Hierarchy) fill(addr uint64) {
	t := &h.cfg.Timing
	if h.l2.lookup(addr) != nil {
		h.stats.L2Hits++
		h.cycles += t.L1FillFromL2
		h.stats.LinesFilledFromL2++
	} else {
		h.stats.L2Misses++
		h.cycles += t.L1FillFromL2 + t.FillFromMem
		h.stats.LinesFilledFromMem++
		// Allocate in L2 (inclusive hierarchy).
		vt, vd, ev := h.l2.insert(addr)
		if ev {
			// Maintain inclusion: the victim must leave L1 too.
			l1dirty, present := h.l1.invalidate(vt)
			if present && l1dirty {
				vd = true
			}
			if vd {
				h.cycles += t.L2WriteBack
				h.stats.L2WriteBacks++
			}
		}
	}
	vt, vd, ev := h.l1.insert(addr)
	if ev && vd {
		// Dirty L1 victim goes down to L2; mark the L2 copy dirty.
		h.cycles += t.L1WriteBack
		h.stats.L1WriteBacks++
		if l2line := h.l2.lookup(vt << h.l2.setShift); l2line != nil {
			l2line.dirty = true
		} else {
			// Inclusion was broken by an L2 eviction between the L1 fill
			// and now; burst the line to memory.
			h.cycles += t.L2WriteBack
			h.stats.L2WriteBacks++
		}
	}
}

// ReadWords simulates n consecutive 4-byte loads starting at addr.
func (h *Hierarchy) ReadWords(addr uint64, n int) {
	t := &h.cfg.Timing
	h.stats.BytesRead += uint64(n) * WordSize
	for i := 0; i < n; i++ {
		a := addr + uint64(i)*WordSize
		h.cycles += t.WordHit
		if h.l1.lookup(a) != nil {
			h.stats.L1Hits++
			continue
		}
		h.stats.L1Misses++
		h.fill(a)
	}
}

// WriteWords simulates n consecutive 4-byte stores starting at addr.
func (h *Hierarchy) WriteWords(addr uint64, n int) {
	t := &h.cfg.Timing
	h.stats.BytesWrit += uint64(n) * WordSize
	for i := 0; i < n; i++ {
		a := addr + uint64(i)*WordSize
		if l := h.l1.lookup(a); l != nil {
			h.stats.L1Hits++
			h.cycles += t.WordWriteHit
			l.dirty = true
			continue
		}
		h.stats.L1Misses++
		if h.cfg.WriteAllocate {
			// Write-allocate: fill the line, then the store hits.
			h.fill(a)
			h.cycles += t.WordWriteHit
			if l := h.l1.lookup(a); l != nil {
				l.dirty = true
			}
			continue
		}
		// No write-allocate: the store bypasses L1. It may still hit L2.
		if l2 := h.l2.lookup(a); l2 != nil {
			h.stats.L2Hits++
			h.cycles += t.L2WordAccess
			l2.dirty = true
			continue
		}
		h.stats.L2Misses++
		h.cycles += t.MemWordWrite
		h.stats.MemWordWrites++
	}
}

// ReadBytes simulates n consecutive 1-byte loads starting at addr (the
// benchmarks' tail loop).
func (h *Hierarchy) ReadBytes(addr uint64, n int) {
	t := &h.cfg.Timing
	h.stats.BytesRead += uint64(n)
	for i := 0; i < n; i++ {
		a := addr + uint64(i)
		h.cycles += t.ByteOp
		if h.l1.lookup(a) != nil {
			h.stats.L1Hits++
			continue
		}
		h.stats.L1Misses++
		h.fill(a)
	}
}

// WriteBytes simulates n consecutive 1-byte stores starting at addr.
func (h *Hierarchy) WriteBytes(addr uint64, n int) {
	t := &h.cfg.Timing
	h.stats.BytesWrit += uint64(n)
	for i := 0; i < n; i++ {
		a := addr + uint64(i)
		if l := h.l1.lookup(a); l != nil {
			h.stats.L1Hits++
			h.cycles += t.ByteOp
			l.dirty = true
			continue
		}
		h.stats.L1Misses++
		if h.cfg.WriteAllocate {
			h.fill(a)
			h.cycles += t.ByteOp
			if l := h.l1.lookup(a); l != nil {
				l.dirty = true
			}
			continue
		}
		if l2 := h.l2.lookup(a); l2 != nil {
			h.stats.L2Hits++
			h.cycles += t.L2WordAccess
			l2.dirty = true
			continue
		}
		h.stats.L2Misses++
		h.cycles += t.MemByteWrite
		h.stats.MemWordWrites++
	}
}

// Prefetch simulates a software prefetch: a load that touches one byte of
// the line containing addr purely to force allocation. On the P54C this is
// an ordinary load instruction whose result is discarded.
func (h *Hierarchy) Prefetch(addr uint64) {
	h.stats.PrefetchesIssued++
	h.cycles += h.cfg.Timing.PrefetchIssue
	if h.l1.lookup(addr) != nil {
		h.stats.L1Hits++
		return
	}
	h.stats.L1Misses++
	h.stats.PrefetchesUseful++
	h.fill(addr)
}

// Contains reports at which level the line holding addr currently resides:
// 1, 2, or 0 when it is only in memory. Exposed for tests and diagnostics.
func (h *Hierarchy) Contains(addr uint64) int {
	// Peek without disturbing LRU: scan directly.
	if h.peek(h.l1, addr) {
		return 1
	}
	if h.peek(h.l2, addr) {
		return 2
	}
	return 0
}

func (h *Hierarchy) peek(lv *level, addr uint64) bool {
	la := lv.lineAddr(addr)
	set := lv.sets[la&lv.setMask]
	for i := range set {
		if set[i].valid && set[i].tag == la {
			return true
		}
	}
	return false
}
