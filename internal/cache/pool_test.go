package cache

import (
	"math"
	"testing"
)

// poolDrive runs a fixed mixed workload that crosses both levels,
// forces dirty evictions, inclusion invalidations and a flush, and
// returns the resulting ledger and counters.
func poolDrive(h *Hierarchy) (float64, Stats) {
	h.ReadRun(0, 4096, 8, 1.33)
	h.WriteRun(1<<15, 4096, 8, 1.33)
	h.CopyRun(0, 1<<18, 2048, 4, 0.7)
	h.Flush()
	h.ReadRunBytes(12345, 300)
	h.WriteRunBytes(54321, 300)
	h.Prefetch(1 << 19)
	h.ReadWords(1<<19, 64)
	return h.Cycles(), h.Stats()
}

// TestResetRestoresFreshBehavior is the pooling contract: a hierarchy
// that has been driven hard and then reset must replay a workload with a
// bit-identical cycle ledger and identical traffic counters to a fresh
// one — reuse can never change a result.
func TestResetRestoresFreshBehavior(t *testing.T) {
	cfg := PentiumConfig()
	wantCycles, wantStats := poolDrive(MustNew(cfg))

	h := MustNew(cfg)
	poolDrive(h) // dirty every structure
	h.reset()
	gotCycles, gotStats := poolDrive(h)

	if math.Float64bits(gotCycles) != math.Float64bits(wantCycles) {
		t.Errorf("reused cycles = %v, fresh = %v", gotCycles, wantCycles)
	}
	if gotStats != wantStats {
		t.Errorf("reused stats = %+v, fresh = %+v", gotStats, wantStats)
	}
}

// TestAcquireReleaseRoundTrip exercises the public pool path: a released
// hierarchy serves a later Acquire of the same config with fresh-run
// results, and Acquire for a different config never returns it.
func TestAcquireReleaseRoundTrip(t *testing.T) {
	cfg := PentiumConfig()
	wantCycles, wantStats := poolDrive(MustNew(cfg))

	first := MustAcquire(cfg)
	poolDrive(first)
	first.Release()

	second := MustAcquire(cfg)
	gotCycles, gotStats := poolDrive(second)
	if math.Float64bits(gotCycles) != math.Float64bits(wantCycles) {
		t.Errorf("pooled cycles = %v, fresh = %v", gotCycles, wantCycles)
	}
	if gotStats != wantStats {
		t.Errorf("pooled stats = %+v, fresh = %+v", gotStats, wantStats)
	}

	other := cfg
	other.L2Size *= 2
	h := MustAcquire(other)
	if h.Config() != other {
		t.Fatalf("Acquire(other) config = %+v, want %+v", h.Config(), other)
	}
}

// TestFlushIsGenerationBump pins the O(1) flush semantics: after Flush,
// every previously resident line reads as absent and a re-walk re-fills
// from memory exactly as on a cold hierarchy.
func TestFlushIsGenerationBump(t *testing.T) {
	h := MustNew(PentiumConfig())
	h.ReadWords(0, 16)
	if h.Contains(0) != 1 {
		t.Fatal("line not resident before flush")
	}
	h.Flush()
	if h.Contains(0) != 0 {
		t.Fatal("line still visible after flush")
	}
	before := h.Stats()
	h.ReadWords(0, 1)
	after := h.Stats()
	if after.LinesFilledFromMem != before.LinesFilledFromMem+1 {
		t.Fatalf("post-flush read did not fill from memory: %+v -> %+v", before, after)
	}
}
