package cache

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/obs"
)

// The differential property test: the line-granular fast path (Hierarchy's
// run-length entry points) must be indistinguishable from the per-access
// reference model (RefHierarchy) — identical float64 cycle ledgers,
// identical Stats, identical residency — on randomized mixed traces over
// varied geometries and both write-allocate policies. The reference is the
// source of truth (DESIGN.md §8.1); any divergence is a fast-path bug.

// diffGeometries returns the cache geometries the trace replay sweeps:
// the paper's machine plus small, skewed and direct-mapped shapes that
// stress set conflicts, line-boundary handling and inclusion victims.
func diffGeometries() []Config {
	tiny := Timing{
		WordHit: 1, WordWriteHit: 0.85, ByteOp: 2.5, L2WordAccess: 2,
		L1FillFromL2: 18.4, FillFromMem: 13.6, MemWordWrite: 8.5,
		MemByteWrite: 8.5, L1WriteBack: 4, L2WriteBack: 16, PrefetchIssue: 0.8,
	}
	return []Config{
		PentiumConfig(),
		{LineSize: 16, L1Size: 1 << 10, L1Assoc: 1, L2Size: 8 << 10, L2Assoc: 2, Timing: tiny},
		{LineSize: 32, L1Size: 2 << 10, L1Assoc: 4, L2Size: 16 << 10, L2Assoc: 1, Timing: tiny},
		{LineSize: 64, L1Size: 4 << 10, L1Assoc: 2, L2Size: 64 << 10, L2Assoc: 4, Timing: tiny},
	}
}

// replayRandomTrace drives fast and ref with an identical random op
// sequence and compares ledger, stats and residency after every op.
func replayRandomTrace(t *testing.T, cfg Config, seed int64, ops int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	fast := MustNew(cfg)
	ref := MustRef(cfg)
	// Keep the footprint a few multiples of L2 so hits, misses and
	// evictions all occur; odd base for unaligned runs.
	region := uint64(4 * cfg.L2Size)
	loops := []float64{0, 0.7, 1.0, 1.33}
	chunks := []int{0, 1, 3, 4, 8}
	for op := 0; op < ops; op++ {
		addr := rng.Uint64() % region
		n := rng.Intn(4*cfg.LineSize/WordSize) + 1
		cw := chunks[rng.Intn(len(chunks))]
		cl := loops[rng.Intn(len(loops))]
		kind := rng.Intn(11)
		flush := kind == 9 && rng.Intn(16) == 0
		// Second address for copy runs: usually disjoint, sometimes
		// overlapping or set-conflicting with the first.
		addr2 := rng.Uint64() % region
		if rng.Intn(4) == 0 {
			addr2 = addr + uint64(rng.Intn(2*cfg.LineSize))
		}
		apply := func(s Sim) {
			switch kind {
			case 0, 1:
				s.ReadRun(addr, n, cw, cl)
			case 2, 3:
				s.WriteRun(addr, n, cw, cl)
			case 4:
				s.ReadRunBytes(addr, n)
			case 5:
				s.WriteRunBytes(addr, n)
			case 6:
				s.ReadWords(addr, n)
			case 7:
				s.WriteWords(addr, n)
			case 8:
				s.Prefetch(addr)
			case 9:
				if flush {
					s.Flush()
				} else {
					s.AddCycles(cl)
				}
			case 10:
				s.CopyRun(addr, addr2, n, cw, cl)
			}
		}
		// The rng must feed both replays identically: decide the op once,
		// apply it twice.
		apply(fast)
		apply(ref)
		if fc, rc := fast.Cycles(), ref.Cycles(); fc != rc {
			t.Fatalf("op %d (kind %d, addr %#x, n %d, chunk %d, loop %v): cycles fast=%v ref=%v",
				op, kind, addr, n, cw, cl, fc, rc)
		}
		if fs, rs := fast.Stats(), ref.Stats(); fs != rs {
			t.Fatalf("op %d (kind %d, addr %#x, n %d): stats diverge\nfast: %+v\nref:  %+v",
				op, kind, addr, n, fs, rs)
		}
	}
	// Residency must agree line by line across the whole touched region.
	for a := uint64(0); a < region; a += uint64(cfg.LineSize) {
		if fl, rl := fast.Contains(a), ref.Contains(a); fl != rl {
			t.Fatalf("Contains(%#x): fast=%d ref=%d", a, fl, rl)
		}
	}
}

func TestDifferentialFastVsRef(t *testing.T) {
	for gi, cfg := range diffGeometries() {
		for _, wa := range []bool{false, true} {
			cfg := cfg
			cfg.WriteAllocate = wa
			for seed := int64(1); seed <= 3; seed++ {
				name := fmt.Sprintf("geom%d/writeAlloc=%v/seed%d", gi, wa, seed)
				t.Run(name, func(t *testing.T) {
					ops := 4000
					if testing.Short() {
						ops = 800
					}
					replayRandomTrace(t, cfg, seed*7919+int64(gi), ops)
				})
			}
		}
	}
}

// The run-length entry points must also agree with the per-access loops on
// directed edge cases: zero-length runs, runs starting mid-line, runs
// ending exactly on a line boundary, and partial trailing chunks.
func TestRunEntryPointEdgeCases(t *testing.T) {
	cfg := PentiumConfig()
	cases := []struct {
		name string
		run  func(s Sim)
	}{
		{"empty read run", func(s Sim) { s.ReadRun(0x1000, 0, 4, 1.33) }},
		{"empty write run", func(s Sim) { s.WriteRun(0x1000, 0, 4, 1.33) }},
		{"empty byte runs", func(s Sim) { s.ReadRunBytes(0x40, 0); s.WriteRunBytes(0x40, 0) }},
		{"mid-line start", func(s Sim) { s.ReadRun(0x101c, 16, 4, 1.33) }},
		{"unaligned word addresses", func(s Sim) { s.ReadRun(0x1003, 16, 4, 1.0); s.WriteRun(0x2005, 16, 4, 1.0) }},
		{"line-boundary end", func(s Sim) { s.WriteRun(0x1000, 8, 4, 0.7) }},
		{"partial trailing chunk", func(s Sim) { s.ReadRun(0x1000, 10, 4, 1.33) }},
		{"chunk larger than line", func(s Sim) { s.WriteRun(0x3000, 64, 32, 2.0) }},
		{"byte tail across lines", func(s Sim) { s.ReadRunBytes(0x101e, 15); s.WriteRunBytes(0x201e, 15) }},
		{"empty copy run", func(s Sim) { s.CopyRun(0x1000, 0x5000, 0, 4, 1.0) }},
		{"disjoint copy run", func(s Sim) { s.CopyRun(0x1000, 0x5000, 32, 4, 1.0) }},
		{"copy run, same line src and dst", func(s Sim) { s.CopyRun(0x1000, 0x1010, 8, 4, 1.0) }},
		{"copy run, set-conflicting streams", func(s Sim) { s.CopyRun(0x1000, 0x1000+8<<10, 32, 4, 1.0) }},
		{"copy run, unaligned partial chunk", func(s Sim) { s.CopyRun(0x1006, 0x5002, 10, 4, 0.7) }},
		{"copy run, single chunk no loop", func(s Sim) { s.CopyRun(0x1000, 0x5000, 16, 0, 0) }},
	}
	for _, wa := range []bool{false, true} {
		cfg.WriteAllocate = wa
		for _, c := range cases {
			t.Run(fmt.Sprintf("%s/writeAlloc=%v", c.name, wa), func(t *testing.T) {
				fast, ref := MustNew(cfg), MustRef(cfg)
				// Pre-warm part of the footprint so hits and misses mix.
				for _, s := range []Sim{fast, ref} {
					s.ReadWords(0x1000, 8)
					c.run(s)
				}
				if fast.Cycles() != ref.Cycles() {
					t.Errorf("cycles fast=%v ref=%v", fast.Cycles(), ref.Cycles())
				}
				if fast.Stats() != ref.Stats() {
					t.Errorf("stats diverge\nfast: %+v\nref:  %+v", fast.Stats(), ref.Stats())
				}
			})
		}
	}
}

// A negative chunk-loop charge is a programming error on both paths.
func TestRunNegativeLoopPanics(t *testing.T) {
	for name, s := range map[string]Sim{"fast": MustNew(PentiumConfig()), "ref": MustRef(PentiumConfig())} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("ReadRun with negative loop charge did not panic")
				}
			}()
			s.ReadRun(0, 8, 4, -1)
		})
	}
}

// replayBreakdownTrace drives three replicas of the same random trace:
// the detached fast path (the production configuration), the fast path
// with an attached CycleBreakdown (which diverts runs to the per-access
// decomposition), and the reference with an attached breakdown. It holds
// three properties at every op: attaching attribution never changes the
// cycle ledger or Stats; both attributed replicas produce identical
// breakdowns; and each breakdown's Total equals its ledger exactly.
func replayBreakdownTrace(t *testing.T, cfg Config, seed int64, ops int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	plain := MustNew(cfg)
	fast, ref := MustNew(cfg), MustRef(cfg)
	var fb, rb CycleBreakdown
	fast.AttachBreakdown(&fb)
	ref.AttachBreakdown(&rb)
	region := uint64(4 * cfg.L2Size)
	loops := []float64{0, 0.7, 1.33}
	chunks := []int{0, 3, 4}
	for op := 0; op < ops; op++ {
		addr := rng.Uint64() % region
		addr2 := rng.Uint64() % region
		n := rng.Intn(4*cfg.LineSize/WordSize) + 1
		cw := chunks[rng.Intn(len(chunks))]
		cl := loops[rng.Intn(len(loops))]
		kind := rng.Intn(9)
		apply := func(s Sim) {
			switch kind {
			case 0:
				s.ReadRun(addr, n, cw, cl)
			case 1:
				s.WriteRun(addr, n, cw, cl)
			case 2:
				s.CopyRun(addr, addr2, n, cw, cl)
			case 3:
				s.ReadRunBytes(addr, n)
			case 4:
				s.WriteRunBytes(addr, n)
			case 5:
				s.ReadWords(addr, n)
			case 6:
				s.WriteWords(addr, n)
			case 7:
				s.Prefetch(addr)
			case 8:
				s.AddCycles(cl)
			}
		}
		apply(plain)
		apply(fast)
		apply(ref)
		if plain.Cycles() != fast.Cycles() {
			t.Fatalf("op %d (kind %d): attaching a breakdown changed the ledger: %v vs %v",
				op, kind, plain.Cycles(), fast.Cycles())
		}
		if plain.Stats() != fast.Stats() {
			t.Fatalf("op %d (kind %d): attaching a breakdown changed Stats", op, kind)
		}
		if fb != rb {
			t.Fatalf("op %d (kind %d): breakdowns diverge\nfast: %+v\nref:  %+v", op, kind, fb, rb)
		}
		// The buckets sum the same charges as the ledger but grouped by
		// kind, so the totals agree to float re-association, not bit-exactly.
		if total, cyc := fb.Total(), fast.Cycles(); !closeEnough(total, cyc) {
			t.Fatalf("op %d (kind %d): breakdown total %v != cycles %v (breakdown %+v)",
				op, kind, total, cyc, fb)
		}
	}
}

// closeEnough compares two cycle totals up to float re-association error.
func closeEnough(a, b float64) bool {
	diff := a - b
	if diff < 0 {
		diff = -diff
	}
	scale := a
	if scale < 0 {
		scale = -scale
	}
	if scale < 1 {
		scale = 1
	}
	return diff <= 1e-9*scale
}

func TestBreakdownAttribution(t *testing.T) {
	for gi, cfg := range diffGeometries() {
		for _, wa := range []bool{false, true} {
			cfg := cfg
			cfg.WriteAllocate = wa
			t.Run(fmt.Sprintf("geom%d/writeAlloc=%v", gi, wa), func(t *testing.T) {
				ops := 2000
				if testing.Short() {
					ops = 400
				}
				replayBreakdownTrace(t, cfg, int64(gi)*104729+7, ops)
			})
		}
	}
}

// The differential guarantee extends to the obs metric fold: identical
// Stats must fold to identical (and Equal) registry snapshots.
func TestDifferentialMetricSnapshots(t *testing.T) {
	cfg := PentiumConfig()
	fast, ref := MustNew(cfg), MustRef(cfg)
	for _, s := range []Sim{fast, ref} {
		s.ReadRun(0x1000, 4096, 4, 1.33)
		s.WriteRun(0x9000, 4096, 4, 1.0)
		s.CopyRun(0x1000, 0x40000, 2048, 4, 1.33)
		s.ReadRunBytes(0x5001, 100)
		s.Prefetch(0x80000)
	}
	fr, rr := obs.NewRegistry(), obs.NewRegistry()
	fast.Stats().FoldStats(fr, "cache.")
	ref.Stats().FoldStats(rr, "cache.")
	fs, rs := fr.Snapshot(), rr.Snapshot()
	if !fs.Equal(rs) {
		t.Fatalf("metric snapshots diverge\nfast:\n%srref:\n%s", fs, rs)
	}
	if v, ok := fs.Get("cache.l1_misses"); !ok || v == 0 {
		t.Fatalf("expected nonzero cache.l1_misses, got %v %v", v, ok)
	}
}

func TestBreakdownResetAndDetach(t *testing.T) {
	h := MustNew(PentiumConfig())
	var b CycleBreakdown
	h.AttachBreakdown(&b)
	h.ReadWords(0x1000, 64)
	if b.Total() != h.Cycles() {
		t.Fatalf("total %v != cycles %v", b.Total(), h.Cycles())
	}
	if b.L1 == 0 || b.L2 == 0 || b.Mem == 0 {
		t.Fatalf("cold-read breakdown should touch L1, L2 and memory: %+v", b)
	}
	h.ResetCycles()
	if b.Total() != 0 || h.Cycles() != 0 {
		t.Fatalf("ResetCycles must zero the attached breakdown: %+v", b)
	}
	h.AttachBreakdown(nil)
	h.ReadWords(0x2000, 64)
	if b.Total() != 0 {
		t.Fatalf("detached breakdown must not accumulate: %+v", b)
	}
	if d := b.Sub(CycleBreakdown{L1: 1}); d.L1 != -1 {
		t.Fatalf("Sub: %+v", d)
	}
}
