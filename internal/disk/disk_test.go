package disk

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func hp() *Disk { return MustNew(HP3725(), sim.NewRNG(1)) }

func TestRandomAccessNear14ms(t *testing.T) {
	// §7.1: "All three systems converge to 14ms for random seeks to blocks
	// on disk." The expected random access on our modelled HP 3725 must
	// land near that.
	d := hp()
	avg := d.AvgRandomAccess(8192)
	if avg < 12*sim.Millisecond || avg > 17*sim.Millisecond {
		t.Fatalf("AvgRandomAccess(8KB) = %v, want ~14ms", avg)
	}
}

func TestMeasuredRandomAccessMatchesEstimate(t *testing.T) {
	d := hp()
	rng := sim.NewRNG(99)
	const n = 2000
	var total sim.Duration
	for i := 0; i < n; i++ {
		blk := rng.Int63n(d.Blocks())
		total += d.Access(blk, 8192, i%2 == 0)
	}
	mean := total / n
	est := d.AvgRandomAccess(8192)
	// Random seeks average somewhat less than the one-third-stroke spec
	// figure; accept a broad band around the estimate.
	if mean < est/2 || mean > est*3/2 {
		t.Fatalf("measured random access %v, estimate %v", mean, est)
	}
}

func TestSequentialStreamsFaster(t *testing.T) {
	d := hp()
	// First access pays seek+rotation; the rest stream.
	var total sim.Duration
	const blocks = 256
	for i := int64(0); i < blocks; i++ {
		total += d.Access(1000+i, 8192, false)
	}
	bw := float64(blocks*8192) / total.Seconds() / 1e6
	geomBW := d.Geometry().TransferMBs
	if bw < geomBW*0.5 || bw > geomBW {
		t.Fatalf("sequential bandwidth %.2f MB/s, want near media rate %.2f", bw, geomBW)
	}
	if hits := d.Stats().SequentialHits; hits != blocks-1 {
		t.Fatalf("SequentialHits = %d, want %d", hits, blocks-1)
	}
}

func TestNearbySeeksCheaperThanFarSeeks(t *testing.T) {
	d := hp()
	d.Access(0, 8192, false)
	near := d.seekTime(0, 2)
	far := d.seekTime(0, d.Geometry().Cylinders-1)
	if near >= far {
		t.Fatalf("seek(2 cyl)=%v not cheaper than full stroke %v", near, far)
	}
	if near < d.Geometry().TrackToTrack {
		t.Fatalf("short seek %v below track-to-track %v", near, d.Geometry().TrackToTrack)
	}
}

func TestSeekTimeZeroSameCylinder(t *testing.T) {
	d := hp()
	if d.seekTime(100, 100) != 0 {
		t.Fatal("same-cylinder seek should be free")
	}
}

func TestAvgSeekCalibration(t *testing.T) {
	d := hp()
	third := d.Geometry().Cylinders / 3
	got := d.seekTime(0, third)
	want := d.Geometry().AvgSeek
	diff := got - want
	if diff < 0 {
		diff = -diff
	}
	if diff > want/20 {
		t.Fatalf("one-third-stroke seek = %v, want ~%v", got, want)
	}
}

func TestStatsAccounting(t *testing.T) {
	d := hp()
	d.Access(0, 8192, false)
	d.Access(5000, 16384, true)
	s := d.Stats()
	if s.Reads != 1 || s.Writes != 1 || s.BytesRead != 8192 || s.BytesWritten != 16384 {
		t.Fatalf("stats wrong: %+v", s)
	}
	if s.TotalOperations != 2 {
		t.Fatalf("TotalOperations = %d, want 2", s.TotalOperations)
	}
	d.ResetStats()
	if d.Stats().TotalOperations != 0 {
		t.Fatal("ResetStats did not clear")
	}
}

func TestAccessPanicsOutOfRange(t *testing.T) {
	d := hp()
	for _, blk := range []int64{-1, d.Blocks()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Access(%d) did not panic", blk)
				}
			}()
			d.Access(blk, 8192, false)
		}()
	}
}

func TestAccessPanicsOnZeroBytes(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Access with 0 bytes did not panic")
		}
	}()
	hp().Access(0, 0, false)
}

func TestNewRejectsBadGeometry(t *testing.T) {
	if _, err := New(Geometry{CapacityMB: 100, TransferMBs: 1, RPM: 5400}, sim.NewRNG(0)); err == nil {
		t.Fatal("New with zero cylinders did not return an error")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew with zero cylinders did not panic")
		}
	}()
	MustNew(Geometry{CapacityMB: 100, TransferMBs: 1, RPM: 5400}, sim.NewRNG(0))
}

func TestBothPaperDisksConstruct(t *testing.T) {
	for _, g := range []Geometry{QuantumEmpire2100(), HP3725()} {
		d := MustNew(g, sim.NewRNG(0))
		if d.Blocks() <= 0 {
			t.Errorf("%s has no blocks", g.Name)
		}
		if d.Geometry().Name == "" {
			t.Errorf("disk has no name")
		}
	}
}

func TestDeterminism(t *testing.T) {
	a, b := MustNew(HP3725(), sim.NewRNG(5)), MustNew(HP3725(), sim.NewRNG(5))
	rngA, rngB := sim.NewRNG(7), sim.NewRNG(7)
	for i := 0; i < 500; i++ {
		ta := a.Access(rngA.Int63n(a.Blocks()), 8192, i%3 == 0)
		tb := b.Access(rngB.Int63n(b.Blocks()), 8192, i%3 == 0)
		if ta != tb {
			t.Fatalf("access %d diverged: %v vs %v", i, ta, tb)
		}
	}
}

// Property: every access takes positive time bounded by full stroke + one
// rotation + transfer + overhead.
func TestAccessBoundsProperty(t *testing.T) {
	d := hp()
	g := d.Geometry()
	upper := g.AvgSeek*3 + d.rotation() +
		sim.Duration(float64(BlockSize)/(g.TransferMBs*1e6)*float64(sim.Second)) +
		g.ControllerOverhead
	f := func(raw uint32) bool {
		blk := int64(raw) % d.Blocks()
		dt := d.Access(blk, BlockSize, raw%2 == 0)
		return dt > 0 && dt <= upper
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
