package disk

import (
	"testing"

	"repro/internal/obs"
	"repro/internal/sim"
)

// Seeks counts arm movements: random accesses seek, a streaming
// continuation does not.
func TestSeekCounter(t *testing.T) {
	d := MustNew(HP3725(), sim.NewRNG(1))
	d.Access(1000, BlockSize, false)
	d.Access(200000, BlockSize, false)
	if got := d.Stats().Seeks; got != 2 {
		t.Fatalf("Seeks = %d after two random accesses, want 2", got)
	}
	// Continue the second access sequentially: no new seek.
	d.Access(200001, BlockSize, false)
	st := d.Stats()
	if st.Seeks != 2 {
		t.Fatalf("sequential continuation counted a seek: %d", st.Seeks)
	}
	if st.SequentialHits != 1 {
		t.Fatalf("SequentialHits = %d, want 1", st.SequentialHits)
	}
}

// FoldMetrics lands every counter under the prefix, with times in
// microseconds.
func TestDiskFoldMetrics(t *testing.T) {
	d := MustNew(QuantumEmpire2100(), sim.NewRNG(2))
	d.Access(10, BlockSize, true)
	d.Access(90000, BlockSize, false)
	d.StreamTransferTime(BlockSize)

	reg := obs.NewRegistry()
	d.Stats().FoldMetrics(reg, "disk.")
	snap := reg.Snapshot()
	st := d.Stats()
	checks := map[string]float64{
		"disk.reads":            float64(st.Reads),
		"disk.writes":           float64(st.Writes),
		"disk.seeks":            float64(st.Seeks),
		"disk.total_operations": float64(st.TotalOperations),
		"disk.seek_us":          st.SeekTime.Microseconds(),
		"disk.rotation_us":      st.RotationTime.Microseconds(),
		"disk.transfer_us":      st.TransferTime.Microseconds(),
	}
	for name, want := range checks {
		if got, ok := snap.Get(name); !ok || got != want {
			t.Errorf("%s = %v (ok=%v), want %v", name, got, ok, want)
		}
	}
	if v, _ := snap.Get("disk.seeks"); v != 2 {
		t.Errorf("disk.seeks = %v, want 2", v)
	}
}
