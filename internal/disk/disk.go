// Package disk models the mechanics of the paper platform's SCSI disks: a
// Quantum Empire 2100S holding the operating systems and an HP 3725 used as
// the dedicated benchmarking disk (§2.2, §7).
//
// The model charges seek time (a track-to-track constant plus a square-root
// term in the seek distance, the standard first-order model of arm motion),
// rotational latency (drawn uniformly from one revolution, or zero when the
// access continues the previous transfer), media transfer time, and a fixed
// controller overhead per operation. The paper's measured figure that all
// three systems converge to about 14 ms per random seek-and-I/O (§7.1) is
// an emergent property of these parameters.
package disk

import (
	"fmt"
	"math"

	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/sim"
)

// BlockSize is the unit of disk transfer used by the file systems, in
// bytes. Both 1995 file systems did disk I/O in multiples of this.
const BlockSize = 8192

// Geometry describes a disk drive.
type Geometry struct {
	// Name is the drive's marketing name.
	Name string
	// CapacityMB is the usable capacity in megabytes.
	CapacityMB int
	// Cylinders is the cylinder count, used to scale seek distances.
	Cylinders int
	// RPM is the spindle speed.
	RPM float64
	// TrackToTrack is the minimum seek (adjacent cylinder).
	TrackToTrack sim.Duration
	// AvgSeek is the manufacturer average seek (one-third stroke).
	AvgSeek sim.Duration
	// TransferMBs is the sustained media transfer rate in MB/s.
	TransferMBs float64
	// ControllerOverhead is the fixed per-command cost (SCSI command
	// processing; the paper's NCR 53c810 had no on-board cache).
	ControllerOverhead sim.Duration
}

// QuantumEmpire2100 returns the geometry of the first disk (OS partitions).
func QuantumEmpire2100() Geometry {
	return Geometry{
		Name:               "Quantum Empire 2100S",
		CapacityMB:         2100,
		Cylinders:          3658,
		RPM:                5400,
		TrackToTrack:       1 * sim.Millisecond,
		AvgSeek:            9 * sim.Millisecond,
		TransferMBs:        4.8,
		ControllerOverhead: 500 * sim.Microsecond,
	}
}

// HP3725 returns the geometry of the second disk, on which all file system
// benchmarks run (§2.2: "All benchmarks that manipulate files refer to
// files on this second disk").
func HP3725() Geometry {
	return Geometry{
		Name:               "HP 3725",
		CapacityMB:         2000,
		Cylinders:          2902,
		RPM:                5400,
		TrackToTrack:       1 * sim.Millisecond,
		AvgSeek:            8500 * sim.Microsecond,
		TransferMBs:        4.5,
		ControllerOverhead: 500 * sim.Microsecond,
	}
}

// Stats counts the traffic a disk has served.
type Stats struct {
	Reads, Writes   uint64
	BytesRead       uint64
	BytesWritten    uint64
	SeekTime        sim.Duration
	RotationTime    sim.Duration
	TransferTime    sim.Duration
	Seeks           uint64 // operations that moved the arm (non-sequential)
	SequentialHits  uint64 // operations that continued the previous access
	TotalOperations uint64
}

// Disk is one simulated drive. It tracks head position so consecutive
// accesses to nearby blocks seek less, which is what makes synchronous
// metadata updates to clustered inode/directory blocks cheaper than random
// I/O — and what makes a file system that scatters its metadata (the
// paper's FreeBSD observation, §7.2) measurably slower.
//
// Disk is not safe for concurrent use.
type Disk struct {
	geom      Geometry
	rng       *sim.RNG
	inj       *fault.DiskInjector
	headCyl   int
	nextBlock int64 // block following the last access, for sequential detection
	stats     Stats

	blocksPerCyl int64
	totalBlocks  int64

	// Time-series handles, nil unless Sample attached them. The disk has
	// no clock of its own — the attached clock timestamps the windows.
	clk      *sim.Clock
	tsOps    *obs.SeriesCounter
	tsBusy   *obs.SeriesCounter
	tsFault  *obs.SeriesCounter
	tsFaultN *obs.SeriesCounter
}

// New builds a disk with the given geometry. The RNG supplies rotational
// phases; passing a fork of the experiment RNG keeps runs reproducible.
// Invalid geometry (a -profiles typo, a bad custom platform) is a
// returned error, never a panic.
func New(geom Geometry, rng *sim.RNG) (*Disk, error) {
	if geom.Cylinders <= 0 || geom.CapacityMB <= 0 || geom.TransferMBs <= 0 || geom.RPM <= 0 {
		return nil, fmt.Errorf("disk: invalid geometry %+v", geom)
	}
	total := int64(geom.CapacityMB) << 20 / BlockSize
	bpc := total / int64(geom.Cylinders)
	if bpc == 0 {
		bpc = 1
	}
	return &Disk{
		geom:         geom,
		rng:          rng,
		blocksPerCyl: bpc,
		totalBlocks:  total,
		nextBlock:    -1,
	}, nil
}

// MustNew is New for the built-in geometries, whose validity is a
// compile-time fact.
func MustNew(geom Geometry, rng *sim.RNG) *Disk {
	d, err := New(geom, rng)
	if err != nil {
		panic(err)
	}
	return d
}

// SetFaults attaches a fault injector (nil detaches). A nil injector adds
// zero time without touching any RNG, so unfaulted runs are byte-identical
// to builds without the fault layer.
func (d *Disk) SetFaults(inj *fault.DiskInjector) { d.inj = inj }

// Sample attaches a virtual-time time-series sampler, timestamping each
// observation off the given clock (the caller's wheel clock — the disk
// keeps no time of its own). Per window it records operation count
// (disk.ops), total mechanical time (disk.busy_ns — busy over window
// width is utilization), and injected fault time and event count
// (disk.fault_extra_ns, fault.disk_events). Nil detaches; the unsampled
// path pays one nil check per access.
func (d *Disk) Sample(clk *sim.Clock, smp *obs.Sampler) {
	if clk == nil || smp == nil {
		d.clk, d.tsOps, d.tsBusy, d.tsFault, d.tsFaultN = nil, nil, nil, nil, nil
		return
	}
	d.clk = clk
	d.tsOps = smp.Counter("disk.ops")
	d.tsBusy = smp.Counter("disk.busy_ns")
	d.tsFault = smp.Counter("disk.fault_extra_ns")
	d.tsFaultN = smp.Counter("fault.disk_events")
}

// Geometry returns the drive's description.
func (d *Disk) Geometry() Geometry { return d.geom }

// Stats returns a copy of the traffic counters.
func (d *Disk) Stats() Stats { return d.stats }

// ResetStats zeroes the counters.
func (d *Disk) ResetStats() { d.stats = Stats{} }

// Blocks returns the number of addressable blocks.
func (d *Disk) Blocks() int64 { return d.totalBlocks }

// rotation is the duration of one revolution.
func (d *Disk) rotation() sim.Duration {
	return sim.Duration(60.0 / d.geom.RPM * float64(sim.Second))
}

// seekTime models arm motion: a constant settle plus a square-root term
// calibrated so a one-third-stroke seek costs AvgSeek.
func (d *Disk) seekTime(fromCyl, toCyl int) sim.Duration {
	if fromCyl == toCyl {
		return 0
	}
	dist := float64(toCyl - fromCyl)
	if dist < 0 {
		dist = -dist
	}
	third := float64(d.geom.Cylinders) / 3
	coeff := float64(d.geom.AvgSeek-d.geom.TrackToTrack) / math.Sqrt(third)
	return d.geom.TrackToTrack + sim.Duration(coeff*math.Sqrt(dist))
}

// Access performs a synchronous transfer of nbytes starting at the given
// block and returns the time it takes. Sequential continuation of the
// previous access skips both seek and rotational delay (the drive streams
// off the platter).
func (d *Disk) Access(block int64, nbytes int, write bool) sim.Duration {
	if block < 0 || block >= d.totalBlocks {
		panic(fmt.Sprintf("disk %s: block %d out of range [0,%d)", d.geom.Name, block, d.totalBlocks))
	}
	if nbytes <= 0 {
		panic("disk: transfer size must be positive")
	}
	d.stats.TotalOperations++
	if write {
		d.stats.Writes++
		d.stats.BytesWritten += uint64(nbytes)
	} else {
		d.stats.Reads++
		d.stats.BytesRead += uint64(nbytes)
	}

	var t sim.Duration
	cyl := int(block / d.blocksPerCyl)
	if block == d.nextBlock {
		// Streaming continuation: no seek, no rotational delay.
		d.stats.SequentialHits++
	} else {
		seek := d.seekTime(d.headCyl, cyl)
		rot := sim.Duration(d.rng.Int63n(int64(d.rotation())))
		d.stats.Seeks++
		d.stats.SeekTime += seek
		d.stats.RotationTime += rot
		t += seek + rot
	}
	xfer := sim.Duration(float64(nbytes) / (d.geom.TransferMBs * 1e6) * float64(sim.Second))
	d.stats.TransferTime += xfer
	t += xfer + d.geom.ControllerOverhead
	// Injected faults (latency spikes, slow-sector remaps, transient
	// retries) ride the same return path, so the caller's phase ledger
	// charges them exactly where the mechanical time already goes.
	extra := d.inj.AccessExtra(d.rotation(), d.geom.AvgSeek, d.geom.ControllerOverhead)
	t += extra
	if d.tsOps != nil {
		now := d.clk.Now()
		d.tsOps.Inc(now)
		d.tsBusy.Add(now, int64(t))
		if extra > 0 {
			d.tsFault.Add(now, int64(extra))
			d.tsFaultN.Inc(now)
		}
	}

	d.headCyl = cyl
	d.nextBlock = block + int64((nbytes+BlockSize-1)/BlockSize)
	return t
}

// StreamTransferTime returns the media-rate cost of moving nbytes without
// head motion. The file systems use it for write-behind: the update
// daemon and clustering machinery turn dirty-block flushes into large
// sequential runs that overlap with foreground work, so an evicted block
// costs bandwidth but not a seek.
func (d *Disk) StreamTransferTime(nbytes int) sim.Duration {
	if nbytes <= 0 {
		panic("disk: stream transfer of non-positive size")
	}
	d.stats.Writes++
	d.stats.BytesWritten += uint64(nbytes)
	d.stats.TotalOperations++
	xfer := sim.Duration(float64(nbytes) / (d.geom.TransferMBs * 1e6) * float64(sim.Second))
	d.stats.TransferTime += xfer
	if d.tsOps != nil {
		now := d.clk.Now()
		d.tsOps.Inc(now)
		d.tsBusy.Add(now, int64(xfer))
	}
	return xfer
}

// AvgRandomAccess estimates the expected cost of a random single-block
// access: average seek, half a rotation, one block transfer, and the
// controller overhead. The paper measured ~14 ms for this on its disks.
func (d *Disk) AvgRandomAccess(nbytes int) sim.Duration {
	return d.geom.AvgSeek + d.rotation()/2 +
		sim.Duration(float64(nbytes)/(d.geom.TransferMBs*1e6)*float64(sim.Second)) +
		d.geom.ControllerOverhead
}
