package disk

import "repro/internal/obs"

// FoldMetrics adds the traffic counters into a registry under the given
// prefix (e.g. "disk."). Times are folded in microseconds so the metric
// tables and Chrome traces share one unit.
func (s Stats) FoldMetrics(reg *obs.Registry, prefix string) {
	reg.Counter(prefix + "reads").Add(float64(s.Reads))
	reg.Counter(prefix + "writes").Add(float64(s.Writes))
	reg.Counter(prefix + "bytes_read").Add(float64(s.BytesRead))
	reg.Counter(prefix + "bytes_written").Add(float64(s.BytesWritten))
	reg.Counter(prefix + "seeks").Add(float64(s.Seeks))
	reg.Counter(prefix + "sequential_hits").Add(float64(s.SequentialHits))
	reg.Counter(prefix + "total_operations").Add(float64(s.TotalOperations))
	reg.Counter(prefix + "seek_us").Add(s.SeekTime.Microseconds())
	reg.Counter(prefix + "rotation_us").Add(s.RotationTime.Microseconds())
	reg.Counter(prefix + "transfer_us").Add(s.TransferTime.Microseconds())
}
