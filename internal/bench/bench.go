// Package bench implements the paper's benchmark programs against the
// simulated machine: getpid (Table 2), the ctx context-switch ring and
// LIFO chain (Figure 1), the §6 memory suite (Figures 2-8), bonnie
// (Figures 9-11), crtdel (Figure 12), the Modified Andrew Benchmark
// (Table 3), lmbench's bw_pipe (Table 4) and bw_tcp (Table 5), ttcp UDP
// (Figure 13), and MAB over NFS (Tables 6-7).
//
// Every function here is deterministic: it returns the model's mean value
// for a single run. The experiment runner in package core performs the
// twenty-run protocol (§3) and injects the calibrated per-OS run-to-run
// noise, which is where the paper's Std Dev columns come from.
package bench

import (
	"repro/internal/cpu"
	"repro/internal/disk"
	"repro/internal/kernel"
	"repro/internal/osprofile"
	"repro/internal/sim"
)

// Platform bundles the hardware the paper benchmarked: the Pentium CPU and
// the benchmark disk (the HP 3725; the OS disk is not exercised by the
// timed benchmarks).
type Platform struct {
	CPU  cpu.CPU
	Disk func(rng *sim.RNG) *disk.Disk
}

// PaperPlatform returns tnt.stanford.edu as modelled.
func PaperPlatform() Platform {
	return Platform{
		CPU:  cpu.PentiumP54C100(),
		Disk: func(rng *sim.RNG) *disk.Disk { return disk.MustNew(disk.HP3725(), rng) },
	}
}

// GetpidIterations is the loop count of the system-call benchmark
// (Table 2: "100,000 iterations each").
const GetpidIterations = 100_000

// Getpid measures the mean time of one getpid() call over the benchmark's
// loop, per §4.
func Getpid(plat Platform, p *osprofile.Profile) sim.Duration {
	return getpidOn(kernel.MustMachine(plat.CPU, p, sim.NewRNG(0)))
}

// getpidOn runs the getpid loop on a prepared machine (possibly observed).
func getpidOn(m *kernel.Machine) sim.Duration {
	start := m.Now()
	var dispatch sim.Duration
	m.Spawn("getpid-loop", func(pr *kernel.Proc) {
		dispatch = m.Now().Sub(start) // initial dispatch is not part of the loop
		for i := 0; i < GetpidIterations; i++ {
			pr.Getpid()
		}
	})
	m.Run()
	total := m.Now().Sub(start) - dispatch
	return total / GetpidIterations
}

// CtxSwitches is the per-run switch count of the ctx benchmark
// (Figure 1: "50,000 context switches each"). Runs with many processes
// use proportionally fewer laps; the mean is unaffected.
const CtxSwitches = 50_000

// CtxOrder selects the token-passing pattern of the ctx benchmark.
type CtxOrder int

const (
	// CtxRing passes the token around a ring of processes (the default).
	CtxRing CtxOrder = iota
	// CtxLIFO passes it back and forth through a chain (the Solaris-LIFO
	// variant of Figure 1).
	CtxLIFO
)

// Ctx measures the mean time per context switch (including the pipe
// operations, as the paper's numbers do) for the given number of
// processes.
func Ctx(plat Platform, p *osprofile.Profile, nproc int, order CtxOrder) sim.Duration {
	if nproc < 2 {
		panic("bench: ctx needs at least two processes")
	}
	return ctxOn(kernel.MustMachine(plat.CPU, p, sim.NewRNG(0)), nproc, order)
}

// ctxOn runs the ctx benchmark on a prepared machine (possibly observed).
func ctxOn(m *kernel.Machine, nproc int, order CtxOrder) sim.Duration {
	// Scale work down for big rings so every configuration does a few
	// thousand hops; the per-switch mean is what matters.
	hops := CtxSwitches
	if nproc > 16 {
		hops = CtxSwitches / nproc * 4
	}
	if hops < 4*nproc {
		hops = 4 * nproc
	}
	switch order {
	case CtxRing:
		return ctxRing(m, nproc, hops)
	case CtxLIFO:
		return ctxLIFO(m, nproc, hops)
	}
	panic("bench: unknown ctx order")
}

// ctxRing builds the ring: process i reads from pipe i and writes to pipe
// (i+1) mod n. The token makes hops/n laps.
func ctxRing(m *kernel.Machine, nproc, hops int) sim.Duration {
	pipes := make([]*kernel.Pipe, nproc)
	for i := range pipes {
		pipes[i] = m.NewPipe()
	}
	laps := hops / nproc
	if laps < 1 {
		laps = 1
	}
	var start sim.Time
	started := false
	for i := 0; i < nproc; i++ {
		i := i
		m.Spawn("ring", func(pr *kernel.Proc) {
			for lap := 0; lap < laps; lap++ {
				if i == 0 && lap == 0 {
					// Timing starts when the token is first injected,
					// after all processes have been dispatched once.
					start = m.Now()
					started = true
				} else {
					pr.ReadFull(pipes[i], 1)
				}
				pr.Write(pipes[(i+1)%nproc], 1)
			}
			if i == 0 {
				pr.ReadFull(pipes[0], 1) // absorb the final token
			}
		})
	}
	m.Run()
	if !started {
		panic("bench: ring never started")
	}
	total := m.Now().Sub(start)
	return total / sim.Duration(laps*nproc)
}

// ctxLIFO builds the chain: the token travels 0→1→…→n-1 and back. One
// round trip is 2(n-1) hops.
func ctxLIFO(m *kernel.Machine, nproc, hops int) sim.Duration {
	// up[i] carries the token from i to i+1; down[i] from i+1 to i.
	up := make([]*kernel.Pipe, nproc-1)
	down := make([]*kernel.Pipe, nproc-1)
	for i := range up {
		up[i] = m.NewPipe()
		down[i] = m.NewPipe()
	}
	trips := hops / (2 * (nproc - 1))
	if trips < 1 {
		trips = 1
	}
	var start sim.Time
	for i := 0; i < nproc; i++ {
		i := i
		m.Spawn("chain", func(pr *kernel.Proc) {
			for trip := 0; trip < trips; trip++ {
				switch {
				case i == 0:
					if trip == 0 {
						start = m.Now()
					} else {
						pr.ReadFull(down[0], 1)
					}
					pr.Write(up[0], 1)
				case i == nproc-1:
					pr.ReadFull(up[i-1], 1)
					pr.Write(down[i-1], 1)
				default:
					pr.ReadFull(up[i-1], 1)
					pr.Write(up[i], 1)
					pr.ReadFull(down[i], 1)
					pr.Write(down[i-1], 1)
				}
			}
			if i == 0 {
				pr.ReadFull(down[0], 1)
			}
		})
	}
	m.Run()
	total := m.Now().Sub(start)
	return total / sim.Duration(trips*2*(nproc-1))
}
