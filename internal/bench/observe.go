package bench

// This file holds the observed benchmark variants: each runs the
// identical workload as its plain counterpart — same machine, same seed,
// same charges, so the returned measurement is bit-identical — but with
// an obs.Recorder attached to the model and the model's counters folded
// into a metric snapshot afterwards. These feed `pentiumbench trace` and
// `pentiumbench metrics`.

import (
	"repro/internal/fault"
	"repro/internal/kernel"
	"repro/internal/netstack"
	"repro/internal/obs"
	"repro/internal/osprofile"
	"repro/internal/sim"
)

// TraceRingCap bounds every observed run's trace to the most recent
// events, the way Chrome's own tracing rings do. The benchmarks loop one
// operation tens of thousands of times, so an unbounded capture is
// hundreds of megabytes of identical iterations; the ring keeps the
// steady-state tail, which is the part worth looking at, and keeps
// exported traces Perfetto-sized. Dropping is deterministic (oldest
// first), so capped traces stay bit-identical across worker counts.
const TraceRingCap = 1 << 14

// Observation is the observability product of one observed benchmark run:
// the captured trace, the model's metric snapshot, and the run's total
// simulated time.
type Observation struct {
	// Process is the captured trace, named after the OS personality.
	Process obs.Process
	// Metrics is the model's counters and phase ledgers after the run.
	Metrics obs.Snapshot
	// Total is the run's total simulated time (the phase ledgers in
	// Metrics sum to it exactly for clocked models).
	Total sim.Duration
}

// captureMachine snapshots an observed kernel machine run.
func captureMachine(m *kernel.Machine, rec *obs.Recorder, p *osprofile.Profile) Observation {
	reg := obs.NewRegistry()
	m.FoldMetrics(reg, "kernel.")
	return Observation{
		Process: rec.Capture(p.String()),
		Metrics: reg.Snapshot(),
		Total:   m.Now().Sub(0),
	}
}

// GetpidObserved is Getpid with tracing and metrics.
func GetpidObserved(plat Platform, p *osprofile.Profile) (sim.Duration, Observation) {
	m := kernel.MustMachine(plat.CPU, p, sim.NewRNG(0))
	rec := obs.NewRing(m.Clock(), TraceRingCap)
	m.Observe(rec)
	d := getpidOn(m)
	return d, captureMachine(m, rec, p)
}

// CtxObserved is Ctx with tracing and metrics: the Figure 1 decomposition
// of a context switch into syscall-entry, copy, wakeup and dispatch
// spans.
func CtxObserved(plat Platform, p *osprofile.Profile, nproc int, order CtxOrder) (sim.Duration, Observation) {
	return CtxSampled(plat, p, nproc, order, nil)
}

// CtxSampled is CtxObserved with a virtual-time time-series sampler
// attached to the machine (kernel.switches per window, kernel.runnable
// gauge). A nil sampler makes it exactly CtxObserved.
func CtxSampled(plat Platform, p *osprofile.Profile, nproc int, order CtxOrder, smp *obs.Sampler) (sim.Duration, Observation) {
	if nproc < 2 {
		panic("bench: ctx needs at least two processes")
	}
	m := kernel.MustMachine(plat.CPU, p, sim.NewRNG(0))
	rec := obs.NewRing(m.Clock(), TraceRingCap)
	m.Observe(rec)
	m.SetSampler(smp)
	d := ctxOn(m, nproc, order)
	return d, captureMachine(m, rec, p)
}

// BwPipeObserved is BwPipe with tracing and metrics.
func BwPipeObserved(plat Platform, p *osprofile.Profile) (float64, Observation) {
	m := kernel.MustMachine(plat.CPU, p, sim.NewRNG(0))
	rec := obs.NewRing(m.Clock(), TraceRingCap)
	m.Observe(rec)
	elapsed := bwPipeOn(m)
	return netstack.BandwidthMbps(BwPipeTotal, elapsed), captureMachine(m, rec, p)
}

// CrtdelObserved is Crtdel with tracing and metrics: the Figure 12
// decomposition of a create/delete cycle into VFS, copy, allocation,
// metadata-sync, disk-read and write-back spans. A fault injector's
// disk and cache faults ride the same charge paths, so the phase ledger
// stays exact under injection; zero-value injectors add nothing and the
// run is byte-identical to the unfaulted one.
func CrtdelObserved(plat Platform, p *osprofile.Profile, fileBytes int64, seed uint64, inj fault.Injectors) (sim.Duration, Observation) {
	return CrtdelSampled(plat, p, fileBytes, seed, inj, nil)
}

// CrtdelSampled is CrtdelObserved with a virtual-time time-series
// sampler attached to the benchmark disk (disk.ops, disk.busy_ns and
// injected fault time per window). A nil sampler makes it exactly
// CrtdelObserved.
func CrtdelSampled(plat Platform, p *osprofile.Profile, fileBytes int64, seed uint64, inj fault.Injectors, smp *obs.Sampler) (sim.Duration, Observation) {
	clock, fsys := crtdelSetup(plat, p, seed)
	fsys.SetFaults(inj)
	fsys.Disk().Sample(clock, smp)
	rec := obs.NewRing(clock, TraceRingCap)
	fsys.Observe(rec)
	d := crtdelOn(clock, fsys, fileBytes)
	reg := obs.NewRegistry()
	fsys.FoldMetrics(reg, "fs.")
	fsys.Disk().Stats().FoldMetrics(reg, "disk.")
	inj.FoldMetrics(reg, "fault.")
	return d, Observation{
		Process: rec.Capture(p.String()),
		Metrics: reg.Snapshot(),
		Total:   clock.Now().Sub(0),
	}
}

// BwTCPObserved is BwTCP with tracing and metrics: the sliding-window
// walk decomposed into segment, ack and scheduler-switch time (plus
// fault time when an injector drops segments or delays acks — the
// four-term identity still sums to the elapsed transfer exactly).
func BwTCPObserved(p *osprofile.Profile, windowOverride int, inj fault.Injectors) (float64, Observation) {
	c := netstack.MustTCP(p)
	c.WindowOverride = windowOverride
	c.Faults = inj.Net
	rec := obs.NewRing(nil, TraceRingCap)
	elapsed, st := c.TransferObserved(BwTCPTotal, rec)
	reg := obs.NewRegistry()
	st.FoldMetrics(reg, "tcp.")
	inj.FoldMetrics(reg, "fault.")
	return netstack.BandwidthMbps(BwTCPTotal, elapsed), Observation{
		Process: rec.Capture(p.String()),
		Metrics: reg.Snapshot(),
		Total:   elapsed,
	}
}

// TTCPObserved is TTCP with metrics: the transfer's time decomposed into
// per-packet processing, data copies, syscall entry, and (under
// injection) duplicate-delivery fault time. The components are
// accumulated per datagram exactly as Transfer charges them, so they
// sum to the transfer time to the nanosecond. Oversized packet sizes
// clamp to the personality's maximum datagram, as in TTCP.
func TTCPObserved(p *osprofile.Profile, packetSize int, inj fault.Injectors) (float64, Observation) {
	u := netstack.MustUDP(p)
	u.Faults = inj.Net
	if packetSize > u.MaxDatagram() {
		packetSize = u.MaxDatagram()
	}
	st := u.TransferStats(TTCPTotal, packetSize)
	total := st.Total()
	reg := obs.NewRegistry()
	reg.Counter("udp.packets").Add(float64(st.Packets))
	reg.Counter("udp.perpacket_us").Add(st.PerPacket.Microseconds())
	reg.Counter("udp.copy_us").Add(st.Copy.Microseconds())
	reg.Counter("udp.syscall_us").Add(st.Syscall.Microseconds())
	if st.FaultTime > 0 {
		reg.Counter("udp.fault_us").Add(st.FaultTime.Microseconds())
	}
	inj.FoldMetrics(reg, "fault.")
	rec := obs.NewRing(nil, TraceRingCap)
	return netstack.BandwidthMbps(TTCPTotal, total), Observation{
		Process: rec.Capture(p.String()),
		Metrics: reg.Snapshot(),
		Total:   total,
	}
}
