package bench

// The acceptance sweep for the SMP lock personalities: at eight CPUs
// each OS shows a spin-vs-sleep crossover in mean acquisition wait —
// spinning wins while critical sections are short, sleeping wins once
// they dwarf a block/wakeup round trip — and the crossover point is a
// personality property, distinct for each system's lock cost table.

import (
	"testing"

	"repro/internal/kernel"
	"repro/internal/osprofile"
	"repro/internal/sim"
)

// crossoverCrits is the critical-section sweep of exhibit L2.
var crossoverCrits = []sim.Duration{
	1 * sim.Microsecond, 2 * sim.Microsecond, 5 * sim.Microsecond,
	10 * sim.Microsecond, 20 * sim.Microsecond, 50 * sim.Microsecond,
	100 * sim.Microsecond, 200 * sim.Microsecond, 500 * sim.Microsecond,
	1000 * sim.Microsecond,
}

// meanWait runs one point and returns the mean contended wait in ns.
func meanWait(p *osprofile.Profile, kind kernel.LockKind, crit sim.Duration) float64 {
	r := LockContention(p, LockWorkload{
		Kind:  kind,
		NCPU:  8,
		Think: 5 * sim.Microsecond,
		Crit:  crit,
		Iters: 200,
	})
	return r.WaitHist.Mean()
}

// persistentCrossover returns the smallest crit at which sleeping's mean
// wait beats spinning's and keeps beating it for every larger crit in
// the sweep; 0 when none exists. "Persistent" guards against a single
// aliased point counting as the regime change.
func persistentCrossover(p *osprofile.Profile) sim.Duration {
	n := len(crossoverCrits)
	sleepWins := make([]bool, n)
	for i, crit := range crossoverCrits {
		sleepWins[i] = meanWait(p, kernel.SleepLock, crit) < meanWait(p, kernel.SpinLock, crit)
	}
	for i := n - 1; i >= 0; i-- {
		if !sleepWins[i] {
			if i == n-1 {
				return 0
			}
			return crossoverCrits[i+1]
		}
	}
	return crossoverCrits[0]
}

func TestSpinSleepCrossoverPerPersonality(t *testing.T) {
	// Pinned from the cost tables: Solaris' cheap turnstile block makes
	// sleeping pay off earliest; FreeBSD's expensive tsleep latest.
	want := map[string]sim.Duration{
		"Solaris 2.4":    50 * sim.Microsecond,
		"Linux 1.2.8":    100 * sim.Microsecond,
		"FreeBSD 2.0.5R": 200 * sim.Microsecond,
	}
	seen := map[sim.Duration]string{}
	for _, p := range osprofile.Paper() {
		// The regime endpoints: spinning must win short sections,
		// sleeping must win very long ones, for every personality.
		if s, sp := meanWait(p, kernel.SleepLock, crossoverCrits[0]), meanWait(p, kernel.SpinLock, crossoverCrits[0]); s <= sp {
			t.Errorf("%s: sleeping beat spinning at 1µs critical sections (%.0f vs %.0f ns)", p, s, sp)
		}
		last := crossoverCrits[len(crossoverCrits)-1]
		if s, sp := meanWait(p, kernel.SleepLock, last), meanWait(p, kernel.SpinLock, last); s >= sp {
			t.Errorf("%s: spinning beat sleeping at 1ms critical sections (%.0f vs %.0f ns)", p, sp, s)
		}
		cross := persistentCrossover(p)
		if cross == 0 {
			t.Errorf("%s: no persistent spin→sleep crossover in the sweep", p)
			continue
		}
		if w, ok := want[p.String()]; ok && cross != w {
			t.Errorf("%s: crossover at %v, pinned %v", p, cross, w)
		}
		if prev, dup := seen[cross]; dup {
			t.Errorf("%s and %s share the crossover %v — personalities must be distinguishable", p, prev, cross)
		}
		seen[cross] = p.String()
	}
}

// TestLockThroughputScalesWithCPUs sanity-checks the L1 axis: adding
// CPUs adds aggregate critical-section throughput while sections are
// short relative to think time (the workload is not lock-saturated at
// two CPUs).
func TestLockThroughputScalesWithCPUs(t *testing.T) {
	p := osprofile.Linux128()
	one := LockContention(p, LockWorkload{Kind: kernel.SpinLock, NCPU: 1, Think: 50 * sim.Microsecond, Crit: 2 * sim.Microsecond, Iters: 200})
	two := LockContention(p, LockWorkload{Kind: kernel.SpinLock, NCPU: 2, Think: 50 * sim.Microsecond, Crit: 2 * sim.Microsecond, Iters: 200})
	if two.Throughput() <= one.Throughput() {
		t.Fatalf("two CPUs (%.0f ops/s) no faster than one (%.0f ops/s) on an unsaturated lock",
			two.Throughput(), one.Throughput())
	}
}
