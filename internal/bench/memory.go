package bench

import (
	"repro/internal/cache"
	"repro/internal/memmodel"
)

// MemPoint is one point of a §6 memory figure.
type MemPoint struct {
	// Size is the buffer size in bytes.
	Size int
	// MBs is the achieved bandwidth in megabytes per second.
	MBs float64
}

// MemSweepSizes returns the buffer sizes the memory benchmarks sweep:
// four points per octave from 64 bytes to 8 MB, plus ragged sizes (2^k-1)
// at the low end that land 15 bytes in the tail loop and reproduce the
// §6.4 dips.
func MemSweepSizes() []int {
	var sizes []int
	for base := 64; base <= 4<<20; base *= 2 {
		for _, num := range []int{4, 5, 6, 7} {
			s := base / 4 * num
			sizes = append(sizes, s)
		}
	}
	sizes = append(sizes, 8<<20)
	for k := 7; k <= 12; k++ {
		sizes = append(sizes, 1<<k-1)
	}
	// Keep ascending order for plotting.
	insertionSort(sizes)
	return sizes
}

func insertionSort(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// MemFigure runs one §6 routine across the sweep on a fresh Pentium
// hierarchy and returns the bandwidth curve. The cfg parameter lets the
// A1 (write-allocate) ablation substitute a hypothetical cache.
func MemFigure(plat Platform, cfg cache.Config, r memmodel.Routine, sizes []int) []MemPoint {
	return MemFigureDistance(plat, cfg, r, sizes, memmodel.DefaultPrefetchDistance)
}

// MemFigureDistance is MemFigure with an explicit prefetch distance, for
// the A2 ablation.
func MemFigureDistance(plat Platform, cfg cache.Config, r memmodel.Routine, sizes []int, dist int) []MemPoint {
	out := make([]MemPoint, 0, len(sizes))
	for _, s := range sizes {
		out = append(out, MemPoint{Size: s, MBs: memmodel.SweepPoint(plat.CPU, cfg, r, dist, s)})
	}
	return out
}
