package bench

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/osprofile"
)

// TestObservedVariantsBitIdentical is the observability layer's central
// promise at the benchmark level: attaching a recorder never changes a
// measurement. Every observed variant must return exactly the plain
// variant's value.
func TestObservedVariantsBitIdentical(t *testing.T) {
	plat := PaperPlatform()
	for _, p := range osprofile.Paper() {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			if d, _ := GetpidObserved(plat, p); d != Getpid(plat, p) {
				t.Error("GetpidObserved diverges from Getpid")
			}
			if d, _ := CtxObserved(plat, p, 8, CtxRing); d != Ctx(plat, p, 8, CtxRing) {
				t.Error("CtxObserved diverges from Ctx")
			}
			if v, _ := BwPipeObserved(plat, p); v != BwPipe(plat, p) {
				t.Error("BwPipeObserved diverges from BwPipe")
			}
			if d, _ := CrtdelObserved(plat, p, 64<<10, 1, fault.Injectors{}); d != Crtdel(plat, p, 64<<10, 1) {
				t.Error("CrtdelObserved diverges from Crtdel")
			}
			if v, _ := BwTCPObserved(p, 0, fault.Injectors{}); v != BwTCP(p, 0) {
				t.Error("BwTCPObserved diverges from BwTCP")
			}
			if v, _ := TTCPObserved(p, 1024, fault.Injectors{}); v != TTCP(p, 1024) {
				t.Error("TTCPObserved diverges from TTCP")
			}
		})
	}
}

// TestObservationsCarryData sanity-checks the observability products:
// non-empty metric snapshots, positive totals, and (for clocked models)
// captured span streams.
func TestObservationsCarryData(t *testing.T) {
	plat := PaperPlatform()
	p := osprofile.FreeBSD205()
	_, o := CrtdelObserved(plat, p, 64<<10, 1, fault.Injectors{})
	if o.Total <= 0 {
		t.Fatal("crtdel observation has no total")
	}
	if len(o.Metrics.Counters) == 0 {
		t.Fatal("crtdel observation has no metrics")
	}
	if len(o.Process.Events) == 0 {
		t.Fatal("crtdel observation captured no spans")
	}
	if len(o.Process.Events) > TraceRingCap {
		t.Fatalf("trace exceeds ring cap: %d > %d", len(o.Process.Events), TraceRingCap)
	}
}

// The Disabled/Observed benchmark pairs measure the observability hooks'
// cost on real benchmark runs: Disabled is the plain path (hooks
// present, recorder nil — the acceptance bar is a ≤2% delta against the
// pre-instrumentation baseline), Observed the full tracing path.
// CI prints both so the overhead stays visible.

func BenchmarkCrtdelDisabled(b *testing.B) {
	plat := PaperPlatform()
	p := osprofile.FreeBSD205()
	for i := 0; i < b.N; i++ {
		Crtdel(plat, p, 64<<10, 1)
	}
}

func BenchmarkCrtdelObserved(b *testing.B) {
	plat := PaperPlatform()
	p := osprofile.FreeBSD205()
	for i := 0; i < b.N; i++ {
		CrtdelObserved(plat, p, 64<<10, 1, fault.Injectors{})
	}
}

func BenchmarkCtxDisabled(b *testing.B) {
	plat := PaperPlatform()
	p := osprofile.Linux128()
	for i := 0; i < b.N; i++ {
		Ctx(plat, p, 8, CtxRing)
	}
}

func BenchmarkCtxObserved(b *testing.B) {
	plat := PaperPlatform()
	p := osprofile.Linux128()
	for i := 0; i < b.N; i++ {
		CtxObserved(plat, p, 8, CtxRing)
	}
}
