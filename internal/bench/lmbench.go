package bench

import (
	"repro/internal/fs"
	"repro/internal/kernel"
	"repro/internal/osprofile"
	"repro/internal/sim"
)

// This file implements the lmbench-style latency probes the paper draws
// on beyond its headline exhibits (McVoy's lmbench supplied bw_pipe,
// bw_tcp and ideas behind ctx; §5 additionally reports a self-pipe
// round-trip measurement for Solaris). They are not paper exhibits, but a
// user evaluating the modelled systems wants them, and they
// cross-validate the calibration: SelfPipe must reproduce §5's 80 µs on
// Solaris by construction.

// SelfPipe measures the time to send a byte from a process through a pipe
// back to the same process: one write(2) plus one read(2) with no context
// switch, §5's isolation of pipe overhead from scheduling.
func SelfPipe(plat Platform, p *osprofile.Profile) sim.Duration {
	m := kernel.MustMachine(plat.CPU, p, sim.NewRNG(0))
	pipe := m.NewPipe()
	const iters = 1000
	var start, end sim.Time
	m.Spawn("selfpipe", func(pr *kernel.Proc) {
		start = m.Now()
		for i := 0; i < iters; i++ {
			pr.Write(pipe, 1)
			pr.ReadFull(pipe, 1)
		}
		end = m.Now()
	})
	m.Run()
	return end.Sub(start) / iters
}

// LatProc measures process creation: the time for fork+exit (when exec is
// false) or fork+exec+exit (when true), lmbench's lat_proc.
func LatProc(plat Platform, p *osprofile.Profile, exec bool) sim.Duration {
	m := kernel.MustMachine(plat.CPU, p, sim.NewRNG(0))
	const iters = 100
	var start, end sim.Time
	m.Spawn("lat_proc", func(pr *kernel.Proc) {
		start = m.Now()
		for i := 0; i < iters; i++ {
			pr.ChargeFork()
			if exec {
				pr.ChargeExec()
			}
		}
		end = m.Now()
	})
	m.Run()
	return end.Sub(start) / iters
}

// LatFSCreate measures 0-byte file creation+deletion, lmbench's lat_fs
// at its smallest size — the purest view of the metadata policies.
func LatFSCreate(plat Platform, p *osprofile.Profile, seed uint64) sim.Duration {
	clock := &sim.Clock{}
	fsys := fs.MustNew(clock, plat.Disk(sim.NewRNG(seed)), p)
	const iters = 50
	start := clock.Now()
	for i := 0; i < iters; i++ {
		f, err := fsys.Create("/lat_fs.tmp")
		if err != nil {
			panic(err)
		}
		f.Close()
		if err := fsys.Unlink("/lat_fs.tmp"); err != nil {
			panic(err)
		}
	}
	return clock.Now().Sub(start) / iters
}

// LatPipe measures pipe latency: the time to pass a byte between two
// processes and back (one full round trip), lmbench's lat_pipe. Unlike
// Ctx it uses exactly two processes and reports the round trip rather
// than the per-switch time.
func LatPipe(plat Platform, p *osprofile.Profile) sim.Duration {
	m := kernel.MustMachine(plat.CPU, p, sim.NewRNG(0))
	ping, pong := m.NewPipe(), m.NewPipe()
	const iters = 1000
	var start, end sim.Time
	m.Spawn("lat_pipe-parent", func(pr *kernel.Proc) {
		start = m.Now()
		for i := 0; i < iters; i++ {
			pr.Write(ping, 1)
			pr.ReadFull(pong, 1)
		}
		end = m.Now()
	})
	m.Spawn("lat_pipe-child", func(pr *kernel.Proc) {
		for i := 0; i < iters; i++ {
			pr.ReadFull(ping, 1)
			pr.Write(pong, 1)
		}
	})
	m.Run()
	return end.Sub(start) / iters
}

// LatencyReport bundles the probe results for one system.
type LatencyReport struct {
	OS         string
	Syscall    sim.Duration
	SelfPipe   sim.Duration
	PipeRT     sim.Duration
	Fork       sim.Duration
	ForkExec   sim.Duration
	FSCreate   sim.Duration
	CtxTwoProc sim.Duration
}

// Latencies runs every probe for one system.
func Latencies(plat Platform, p *osprofile.Profile, seed uint64) LatencyReport {
	return LatencyReport{
		OS:         p.String(),
		Syscall:    Getpid(plat, p),
		SelfPipe:   SelfPipe(plat, p),
		PipeRT:     LatPipe(plat, p),
		Fork:       LatProc(plat, p, false),
		ForkExec:   LatProc(plat, p, true),
		FSCreate:   LatFSCreate(plat, p, seed),
		CtxTwoProc: Ctx(plat, p, 2, CtxRing),
	}
}
