package bench

import (
	"repro/internal/disk"
	"repro/internal/fault"
	"repro/internal/netstack"
	"repro/internal/nfs"
	"repro/internal/obs"
	"repro/internal/osprofile"
	"repro/internal/sim"
)

// SunServerDisk returns the geometry modelled for the SunOS 4.1.4 file
// server's drive: an older, slower SCSI disk than the Pentium's (the
// paper does not describe the server hardware; a first-generation Sun
// 1 GB drive is representative).
func SunServerDisk() disk.Geometry {
	return disk.Geometry{
		Name:               "Sun 1.05GB (NFS server)",
		CapacityMB:         1050,
		Cylinders:          2500,
		RPM:                4400,
		TrackToTrack:       1500 * sim.Microsecond,
		AvgSeek:            12 * sim.Millisecond,
		TransferMBs:        2.5,
		ControllerOverhead: 500 * sim.Microsecond,
	}
}

// NFSServerKind selects the file server of §10.
type NFSServerKind int

const (
	// ServerLinux is the Linux 1.2.8 server (Table 6), which answers
	// from its cache.
	ServerLinux NFSServerKind = iota
	// ServerSunOS is the SunOS 4.1.4 server (Table 7), which commits
	// synchronously per the NFS spec.
	ServerSunOS
)

// NewNFSServer builds the chosen server machine. Both server kinds are
// compiled-in personalities on compiled-in geometries, so construction
// cannot fail.
func NewNFSServer(kind NFSServerKind, seed uint64) *nfs.Server {
	var (
		s   *nfs.Server
		err error
	)
	switch kind {
	case ServerLinux:
		s, err = nfs.NewServer(osprofile.Linux128(), disk.QuantumEmpire2100(), seed)
	case ServerSunOS:
		s, err = nfs.NewServer(osprofile.SunOS414(), SunServerDisk(), seed)
	default:
		panic("bench: unknown NFS server kind")
	}
	if err != nil {
		panic(err)
	}
	return s
}

// MABNFS runs the Modified Andrew Benchmark with the given OS as the NFS
// client against the chosen server (Tables 6 and 7). FreeBSD clients
// mount with the reserved-port option when the server is Linux, working
// around the §11 quirk exactly as the authors had to.
func MABNFS(p *osprofile.Profile, kind NFSServerKind, cfg MABConfig, seed uint64) MABResult {
	clock := &sim.Clock{}
	server := NewNFSServer(kind, seed)
	opts := nfs.MountOptions{}
	if server.OS().NFS.RequiresPrivPort && !p.NFS.SendsPrivPort {
		opts.ResvPort = true
	}
	mount, err := nfs.NewMount(clock, p, server, netstack.Ethernet10(), opts)
	if err != nil {
		panic(err)
	}
	return MABOn(clock, mount, p, cfg)
}

// mabPhaseKeys are metric-name slugs for MABResult.Phase, index-aligned
// with PhaseNames.
var mabPhaseKeys = [5]string{"mkdir", "copy", "stat", "read", "compile"}

// MABNFSObserved is MABNFS with metrics and fault injection: the network
// injector rides the mount's RPC path (hard-mount retry under loss), and
// the disk/cache injectors ride the server's local file system. The
// snapshot carries the per-phase times, the client's RPC counters
// (including retransmits when faults fired), the server's file system
// and disk counters, and the injector counters. Zero-value injectors
// leave the run byte-identical to MABNFS.
func MABNFSObserved(p *osprofile.Profile, kind NFSServerKind, cfg MABConfig, seed uint64, inj fault.Injectors) (MABResult, Observation) {
	clock := &sim.Clock{}
	server := NewNFSServer(kind, seed)
	server.SetFaults(inj)
	opts := nfs.MountOptions{}
	if server.OS().NFS.RequiresPrivPort && !p.NFS.SendsPrivPort {
		opts.ResvPort = true
	}
	mount, err := nfs.NewMount(clock, p, server, netstack.Ethernet10(), opts)
	if err != nil {
		panic(err)
	}
	mount.SetFaults(inj.Net)
	res := MABOn(clock, mount, p, cfg)
	reg := obs.NewRegistry()
	for i, key := range mabPhaseKeys {
		reg.Counter("mab.phase_us." + key).Add(res.Phase[i].Microseconds())
	}
	mount.Stats().FoldMetrics(reg, "nfs.")
	server.FS().FoldMetrics(reg, "srv.fs.")
	server.FS().Disk().Stats().FoldMetrics(reg, "srv.disk.")
	inj.FoldMetrics(reg, "fault.")
	rec := obs.NewRing(nil, TraceRingCap)
	return res, Observation{
		Process: rec.Capture(p.String()),
		Metrics: reg.Snapshot(),
		Total:   res.Total,
	}
}
