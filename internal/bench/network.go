package bench

import (
	"repro/internal/kernel"
	"repro/internal/netstack"
	"repro/internal/osprofile"
	"repro/internal/sim"
)

// BwPipeTotal and BwPipeChunk are lmbench bw_pipe's parameters (§9.1):
// "transfers 50 megabytes in 64-kilobyte chunks".
const (
	BwPipeTotal = 50 << 20
	BwPipeChunk = 64 << 10
)

// BwPipe measures pipe bandwidth in megabits per second (Table 4) by
// running the two-process transfer on the simulated kernel.
func BwPipe(plat Platform, p *osprofile.Profile) float64 {
	m := kernel.MustMachine(plat.CPU, p, sim.NewRNG(0))
	return netstack.BandwidthMbps(BwPipeTotal, bwPipeOn(m))
}

// bwPipeOn runs the bw_pipe transfer on a prepared machine (possibly
// observed) and returns the elapsed transfer time.
func bwPipeOn(m *kernel.Machine) sim.Duration {
	pipe := m.NewPipe()
	var start sim.Time
	m.Spawn("bw_pipe-writer", func(pr *kernel.Proc) {
		start = m.Now()
		for sent := 0; sent < BwPipeTotal; sent += BwPipeChunk {
			pr.Write(pipe, BwPipeChunk)
		}
	})
	m.Spawn("bw_pipe-reader", func(pr *kernel.Proc) {
		pr.ReadFull(pipe, BwPipeTotal)
	})
	m.Run()
	return m.Now().Sub(start)
}

// TTCPTotal is the UDP benchmark's per-iteration transfer (§9.2:
// "transferring 4 megabytes every iteration").
const TTCPTotal = 4 << 20

// TTCP measures UDP bandwidth in megabits per second at one packet size
// (Figure 13). Packet sizes beyond the personality's maximum datagram
// are clamped to it, the way a real ttcp would fall back after EMSGSIZE.
func TTCP(p *osprofile.Profile, packetSize int) float64 {
	u := netstack.MustUDP(p)
	if packetSize > u.MaxDatagram() {
		packetSize = u.MaxDatagram()
	}
	return netstack.BandwidthMbps(TTCPTotal, u.Transfer(TTCPTotal, packetSize))
}

// TTCPSweepSizes returns Figure 13's packet-size sweep.
func TTCPSweepSizes() []int {
	return []int{64, 128, 256, 512, 1024, 2048, 4096, 8192}
}

// BwTCPTotal is lmbench bw_tcp's transfer size (§9.3: "transfers 3
// megabytes from one process to another ... using a 48K buffer").
const BwTCPTotal = 3 << 20

// BwTCP measures TCP bandwidth in megabits per second (Table 5). A
// window override of 0 uses the personality's window; anything else is
// the A5 ablation.
func BwTCP(p *osprofile.Profile, windowOverride int) float64 {
	c := netstack.MustTCP(p)
	c.WindowOverride = windowOverride
	return netstack.BandwidthMbps(BwTCPTotal, c.Transfer(BwTCPTotal))
}
