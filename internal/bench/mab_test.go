package bench

import (
	"testing"

	"repro/internal/osprofile"
)

func TestMABPhasesSumToTotal(t *testing.T) {
	for _, p := range osprofile.Paper() {
		r := MAB(plat, p, DefaultMAB(), 7)
		var sum int64
		for _, d := range r.Phase {
			if d <= 0 {
				t.Errorf("%s: non-positive phase: %v", p, r.Phase)
			}
			sum += int64(d)
		}
		if sum != int64(r.Total) {
			t.Errorf("%s: phases sum %d != total %d", p, sum, int64(r.Total))
		}
	}
}

func TestMABCompileDominates(t *testing.T) {
	// §12: despite microbenchmark differences, MAB totals are close —
	// because the compile phase dominates every system.
	for _, p := range osprofile.Paper() {
		r := MAB(plat, p, DefaultMAB(), 7)
		if r.Phase[4] < r.Total*7/10 {
			t.Errorf("%s: compile phase %v is under 70%% of total %v", p, r.Phase[4], r.Total)
		}
	}
}

func TestMABCopyPhaseShowsMetadataPolicy(t *testing.T) {
	// Phase 2 (copy) creates every file, so the FFS systems pay sync
	// metadata there and Linux does not.
	l := MAB(plat, osprofile.Linux128(), DefaultMAB(), 7)
	f := MAB(plat, osprofile.FreeBSD205(), DefaultMAB(), 7)
	if f.Phase[1] < 2*l.Phase[1] {
		t.Errorf("FreeBSD copy phase %v should dwarf Linux's %v", f.Phase[1], l.Phase[1])
	}
}

func TestMABConfigScaling(t *testing.T) {
	// Doubling the compile count adds roughly one compile-phase worth of
	// time; the other phases stay put.
	cfg := DefaultMAB()
	base := MAB(plat, osprofile.Linux128(), cfg, 7)
	cfg.CompileFiles *= 2
	double := MAB(plat, osprofile.Linux128(), cfg, 7)
	ratio := float64(double.Phase[4]) / float64(base.Phase[4])
	if ratio < 1.8 || ratio > 2.2 {
		t.Errorf("doubling compiles scaled phase 5 by %.2f, want ~2", ratio)
	}
	if double.Phase[1] != base.Phase[1] {
		t.Error("copy phase should not depend on compile count")
	}
}

func TestMABOverNFSSlowerThanLocal(t *testing.T) {
	for _, p := range osprofile.Paper() {
		local := MAB(plat, p, DefaultMAB(), 7).Total
		remote := MABNFS(p, ServerSunOS, DefaultMAB(), 7).Total
		if remote <= local {
			t.Errorf("%s: NFS MAB (%v) should be slower than local (%v)", p, remote, local)
		}
	}
}

func TestPhaseNames(t *testing.T) {
	if len(PhaseNames) != 5 || PhaseNames[4] != "compile" {
		t.Fatalf("PhaseNames = %v", PhaseNames)
	}
}

func TestNFSServerKindPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown server kind did not panic")
		}
	}()
	NewNFSServer(NFSServerKind(9), 1)
}
