package bench

import (
	"fmt"

	"repro/internal/fs"
	"repro/internal/osprofile"
	"repro/internal/sim"
)

// MABConfig describes the Modified Andrew Benchmark workload (§8): a
// source tree, and a compile phase driven by the bundled gcc/binutils.
// The compile work itself is identical on every system (the same compiler
// building the same sources for the same target), so its CPU cost is a
// workload constant; everything else exercises the operating system.
type MABConfig struct {
	// Dirs is the number of directories the tree spreads over.
	Dirs int
	// Files is the number of source files.
	Files int
	// FileKB is the average source file size.
	FileKB int64
	// CompileFiles is how many files the compile phase builds.
	CompileFiles int
	// CompileCPU is the pure-CPU compile time per file (gcc -O on a
	// P54C-100 takes on the order of a second per moderate C file).
	CompileCPU sim.Duration
	// HeaderKB is the header text read per compilation beyond the source.
	HeaderKB int64
	// ObjKB is the object file written per compilation.
	ObjKB int64
	// ProcsPerCompile counts the processes each compilation spawns:
	// driver, cpp, cc1, as.
	ProcsPerCompile int
	// StatPasses is how many times the stat phase walks the tree.
	StatPasses int
}

// DefaultMAB returns the workload sized like the benchmark the paper ran
// (the Andrew tree dimensions with the substituted gcc).
func DefaultMAB() MABConfig {
	return MABConfig{
		Dirs:            12,
		Files:           250,
		FileKB:          12,
		CompileFiles:    45,
		CompileCPU:      880 * sim.Millisecond,
		HeaderKB:        52,
		ObjKB:           14,
		ProcsPerCompile: 4,
		StatPasses:      2,
	}
}

// MABResult reports per-phase and total times.
type MABResult struct {
	// Phase holds the five phase durations: mkdir, copy, stat, read,
	// compile.
	Phase [5]sim.Duration
	// Total is the sum.
	Total sim.Duration
}

// PhaseNames are the five MAB phases in order.
var PhaseNames = [5]string{"directory creation", "file copy", "directory stats", "file read", "compile"}

// MAB runs the benchmark on a local file system (Table 3).
func MAB(plat Platform, p *osprofile.Profile, cfg MABConfig, seed uint64) MABResult {
	clock := &sim.Clock{}
	rng := sim.NewRNG(seed)
	fsys := fs.MustNew(clock, plat.Disk(rng.Fork(1)), p)
	return MABOn(clock, fsys.AsVFS(), p, cfg)
}

// MABOn runs the benchmark against any VFS — the local file system or an
// NFS mount (Tables 6 and 7). The clock must be the one the VFS charges;
// process-creation and compile CPU are charged to it directly, since they
// are local regardless of where the files live.
func MABOn(clock *sim.Clock, v fs.VFS, p *osprofile.Profile, cfg MABConfig) MABResult {
	w := mabRun{clock: clock, v: v, p: p, cfg: cfg}
	return w.run()
}

type mabRun struct {
	clock *sim.Clock
	v     fs.VFS
	p     *osprofile.Profile
	cfg   MABConfig
}

func (w *mabRun) srcPath(i int) string {
	return fmt.Sprintf("/mab/src/d%d/f%d.c", i%w.cfg.Dirs, i)
}
func (w *mabRun) dstPath(i int) string {
	return fmt.Sprintf("/mab/dst/d%d/f%d.c", i%w.cfg.Dirs, i)
}
func (w *mabRun) objPath(i int) string {
	return fmt.Sprintf("/mab/dst/d%d/f%d.o", i%w.cfg.Dirs, i)
}

func (w *mabRun) mustMkdir(path string)     { must(w.v.Mkdir(path)) }
func (w *mabRun) mustUnlinkIgnore(s string) { _ = w.v.Unlink(s) }

func must(err error) {
	if err != nil {
		panic(err)
	}
}

// setup creates the source tree. It is not part of any timed phase (the
// tree exists before the real benchmark starts) but it does run through
// the same file system, warming it realistically.
func (w *mabRun) setup() {
	w.mustMkdir("/mab")
	w.mustMkdir("/mab/src")
	for d := 0; d < w.cfg.Dirs; d++ {
		w.mustMkdir(fmt.Sprintf("/mab/src/d%d", d))
	}
	for i := 0; i < w.cfg.Files; i++ {
		f, err := w.v.Create(w.srcPath(i))
		must(err)
		f.Write(w.cfg.FileKB << 10)
		f.Close()
	}
}

func (w *mabRun) run() MABResult {
	w.setup()
	var res MABResult

	// Phase 1: directory creation.
	res.Phase[0] = w.timed(func() {
		w.mustMkdir("/mab/dst")
		for d := 0; d < w.cfg.Dirs; d++ {
			w.mustMkdir(fmt.Sprintf("/mab/dst/d%d", d))
		}
	})

	// Phase 2: copy every file.
	res.Phase[1] = w.timed(func() {
		for i := 0; i < w.cfg.Files; i++ {
			src, err := w.v.Open(w.srcPath(i))
			must(err)
			dst, err := w.v.Create(w.dstPath(i))
			must(err)
			for {
				got := src.Read(8 << 10)
				if got == 0 {
					break
				}
				dst.Write(got)
			}
			src.Close()
			dst.Close()
		}
	})

	// Phase 3: recursive stats (du / ls -lR).
	res.Phase[2] = w.timed(func() {
		for pass := 0; pass < w.cfg.StatPasses; pass++ {
			_, err := w.v.Stat("/mab/dst")
			must(err)
			for d := 0; d < w.cfg.Dirs; d++ {
				dir := fmt.Sprintf("/mab/dst/d%d", d)
				_, err := w.v.Stat(dir)
				must(err)
				names, err := w.v.List(dir)
				must(err)
				for _, name := range names {
					_, err := w.v.Stat(dir + "/" + name)
					must(err)
				}
			}
		}
	})

	// Phase 4: read every file (grep through the tree).
	res.Phase[3] = w.timed(func() {
		for i := 0; i < w.cfg.Files; i++ {
			f, err := w.v.Open(w.dstPath(i))
			must(err)
			for f.Read(8<<10) > 0 {
			}
			f.Close()
		}
	})

	// Phase 5: compile. Each compilation forks and execs the driver,
	// preprocessor, compiler proper and assembler; reads the source and
	// headers; burns the (system-independent) compile CPU; and writes the
	// object file.
	k := &w.p.Kernel
	res.Phase[4] = w.timed(func() {
		for i := 0; i < w.cfg.CompileFiles; i++ {
			for pr := 0; pr < w.cfg.ProcsPerCompile; pr++ {
				w.clock.Advance(k.Fork + k.Exec)
			}
			src, err := w.v.Open(w.dstPath(i % w.cfg.Files))
			must(err)
			for src.Read(8<<10) > 0 {
			}
			src.Close()
			// Headers are read in page-sized chunks through the cache.
			hdr, err := w.v.Open(w.srcPath(i % w.cfg.Files))
			must(err)
			for read := int64(0); read < w.cfg.HeaderKB<<10; read += 8 << 10 {
				hdr.SeekTo(0)
				if hdr.Read(8<<10) == 0 {
					break
				}
			}
			hdr.Close()
			w.clock.Advance(w.cfg.CompileCPU)
			obj, err := w.v.Create(w.objPath(i % w.cfg.Files))
			must(err)
			obj.Write(w.cfg.ObjKB << 10)
			obj.Close()
		}
	})

	for _, d := range res.Phase {
		res.Total += d
	}
	return res
}

func (w *mabRun) timed(fn func()) sim.Duration {
	start := w.clock.Now()
	fn()
	return w.clock.Now().Sub(start)
}
