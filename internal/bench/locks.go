package bench

import (
	"repro/internal/kernel"
	"repro/internal/osprofile"
	"repro/internal/sim"
	"repro/internal/stats"
)

// The lock-contention microbenchmark (exhibits L1/L2): nthreads threads
// on ncpu CPUs, each iterating think → acquire → critical section →
// release. Sweeping CPU count shows how each personality's lock
// acquisition scales; sweeping the critical-section length shows the
// spin-vs-sleep crossover — spinning wins while sections are shorter
// than a block/wakeup round trip and loses once backoff overshoot and
// poll unfairness dominate.

// LockWorkload parameterizes one lock-contention run.
type LockWorkload struct {
	// Kind selects spinning or sleeping.
	Kind kernel.LockKind
	// NCPU and NThreads size the machine (NThreads defaults to NCPU).
	NCPU, NThreads int
	// Think is the uncontended compute between acquisitions; Crit the
	// critical-section length.
	Think, Crit sim.Duration
	// Iters is the per-thread iteration count.
	Iters int
}

// LockResult carries one run's outcome.
type LockResult struct {
	// Elapsed is the machine's total virtual run time.
	Elapsed sim.Duration
	// Ops is the total number of completed critical sections.
	Ops uint64
	// WaitHist observed the wait time of every contended acquisition.
	WaitHist *stats.Histogram
	// Machine and Lock expose the full state for audits and exhibits.
	Machine *kernel.SMPMachine
	Lock    *kernel.Lock
}

// Throughput returns completed critical sections per second.
func (r LockResult) Throughput() float64 {
	s := r.Elapsed.Seconds()
	if s <= 0 {
		return 0
	}
	return float64(r.Ops) / s
}

// LockContention runs the workload on a fresh SMP machine.
func LockContention(p *osprofile.Profile, w LockWorkload) LockResult {
	if w.NThreads == 0 {
		w.NThreads = w.NCPU
	}
	m := kernel.MustSMPMachine(p, w.NCPU)
	l := m.NewLock(w.Kind)
	for i := 0; i < w.NThreads; i++ {
		// A small prime-stride stagger on each thread's think time keeps
		// identical workers from phase-locking: with every arrival
		// synchronous, spin wait times alias against the backoff ladder
		// and the sweep curves turn erratic. Real workloads never align
		// this perfectly; 137 ns per thread is the deterministic stand-in.
		ops := []kernel.Op{
			{Kind: kernel.OpThink, D: w.Think + sim.Duration(i)*137},
			{Kind: kernel.OpLock, L: l},
			{Kind: kernel.OpThink, D: w.Crit},
			{Kind: kernel.OpUnlock, L: l},
		}
		m.SpawnThread("worker", ops, w.Iters)
	}
	elapsed := m.Run()
	return LockResult{
		Elapsed:  elapsed,
		Ops:      uint64(w.NThreads) * uint64(w.Iters),
		WaitHist: &l.WaitHist,
		Machine:  m,
		Lock:     l,
	}
}
