package bench

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/osprofile"
	"repro/internal/sim"
)

// The issue's acceptance probe: MAB over NFS on a lossy-UDP plan must run
// to completion — the hard-mount retry/timeout/backoff path absorbs every
// lost RPC — and the retransmit work must be visible in the metrics, not
// silently swallowed.
func TestMABNFSCompletesOverLossyUDP(t *testing.T) {
	plan := &fault.Plan{Net: fault.NetFaults{
		UDPLossProb:   0.05,
		RTOMs:         100,
		BackoffFactor: 2,
		MaxBackoffMs:  3000,
	}}
	if err := plan.Validate(); err != nil {
		t.Fatal(err)
	}
	run := func() (MABResult, Observation) {
		inj := fault.New(plan, sim.NewRNG(7))
		return MABNFSObserved(osprofile.Solaris24(), ServerLinux, DefaultMAB(), 7, inj)
	}
	clean, cleanObs := MABNFSObserved(osprofile.Solaris24(), ServerLinux, DefaultMAB(), 7, fault.Injectors{})
	res, o := run()

	if res.Total <= 0 {
		t.Fatal("faulted MAB did not complete")
	}
	if res.Total <= clean.Total {
		t.Errorf("lossy run (%v) not slower than clean run (%v)", res.Total, clean.Total)
	}
	retrans, ok := o.Metrics.Get("nfs.retransmits")
	if !ok || retrans == 0 {
		t.Fatalf("nfs.retransmits = %v, %v: retries invisible in metrics", retrans, ok)
	}
	if v, ok := o.Metrics.Get("fault.net.rpc_retransmits"); !ok || v != retrans {
		t.Errorf("fault.net.rpc_retransmits = %v (%v), want %v", v, ok, retrans)
	}
	if v, ok := o.Metrics.Get("fault.net.rto_wait_us"); !ok || v == 0 {
		t.Errorf("fault.net.rto_wait_us = %v (%v): timeout waits unattributed", v, ok)
	}
	// A clean run's snapshot carries no fault keys at all — the committed
	// baseline stays byte-for-byte valid.
	for _, c := range cleanObs.Metrics.Counters {
		if len(c.Name) >= 6 && c.Name[:6] == "fault." {
			t.Errorf("clean run leaked fault metric %s", c.Name)
		}
	}
	// Same plan, same seed: the lossy run replays bit-identically.
	res2, o2 := run()
	if res2 != res {
		t.Error("faulted MAB result not deterministic")
	}
	if v, _ := o2.Metrics.Get("nfs.retransmits"); v != retrans {
		t.Errorf("retransmit count drifted across replays: %v vs %v", v, retrans)
	}
}
