package bench

import (
	"repro/internal/fs"
	"repro/internal/osprofile"
	"repro/internal/sim"
)

// CrtdelIterations is how many create/delete cycles one run averages
// over.
const CrtdelIterations = 50

// Crtdel measures the mean time of one crtdel iteration at the given file
// size, per §7.2: open (create) a file, write the data, close it; open it
// again, read the data, delete it — a compiler's temporary-file pattern.
func Crtdel(plat Platform, p *osprofile.Profile, fileBytes int64, seed uint64) sim.Duration {
	clock, fsys := crtdelSetup(plat, p, seed)
	return crtdelOn(clock, fsys, fileBytes)
}

// crtdelSetup builds the benchmark's fresh file system and its clock.
func crtdelSetup(plat Platform, p *osprofile.Profile, seed uint64) (*sim.Clock, *fs.FileSystem) {
	clock := &sim.Clock{}
	rng := sim.NewRNG(seed)
	return clock, fs.MustNew(clock, plat.Disk(rng.Fork(1)), p)
}

// crtdelOn runs the create/delete loop on a prepared file system
// (possibly observed).
func crtdelOn(clock *sim.Clock, fsys *fs.FileSystem, fileBytes int64) sim.Duration {
	if fileBytes < 0 {
		panic("bench: negative crtdel file size")
	}
	start := clock.Now()
	for i := 0; i < CrtdelIterations; i++ {
		f, err := fsys.Create("/crtdel.tmp")
		if err != nil {
			panic(err)
		}
		if fileBytes > 0 {
			f.Write(fileBytes)
		}
		f.Close()
		g, err := fsys.Open("/crtdel.tmp")
		if err != nil {
			panic(err)
		}
		if fileBytes > 0 {
			g.Read(fileBytes)
		}
		g.Close()
		if err := fsys.Unlink("/crtdel.tmp"); err != nil {
			panic(err)
		}
	}
	return clock.Now().Sub(start) / CrtdelIterations
}

// CrtdelSweepSizes returns Figure 12's file sizes: zero bytes through one
// megabyte.
func CrtdelSweepSizes() []int64 {
	return []int64{0, 1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20}
}
