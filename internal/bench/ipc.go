package bench

import (
	"repro/internal/cache"
	"repro/internal/fault"
	"repro/internal/kernel"
	"repro/internal/netstack"
	"repro/internal/osprofile"
	"repro/internal/sim"
)

// The IPC bandwidth family (exhibit I1), after Bell-Thomas' FreeBSD IPC
// study: move IPCTotalBytes between two processes over three transports
// — a pipe (kernel buffer + two copies), a UDP socket (the netstack
// per-packet path), and shared memory (no kernel data path at all, just
// semaphore handshakes and the cache-line bouncing the §6 cache model
// prices) — swept over message size. Pipes win small messages on cheap
// syscalls, sockets pay per-packet protocol costs, and shared memory
// flattens out at the memory system's own bandwidth.

// IPCTotalBytes is the per-run transfer volume (1 MB, as lmbench's
// bw_pipe moves per measurement).
const IPCTotalBytes = 1 << 20

// IPCPipe returns the elapsed virtual time to move total bytes through a
// pipe in msg-byte messages (writer and reader are separate processes on
// a fresh uniprocessor machine).
func IPCPipe(plat Platform, p *osprofile.Profile, msg, total int) sim.Duration {
	if msg <= 0 || total < msg {
		panic("bench: IPC needs a positive message size no larger than the total")
	}
	m := kernel.MustMachine(plat.CPU, p, sim.NewRNG(0))
	pipe := m.NewPipe()
	count := total / msg
	m.Spawn("ipc-writer", func(pr *kernel.Proc) {
		for i := 0; i < count; i++ {
			pr.Write(pipe, msg)
		}
	})
	m.Spawn("ipc-reader", func(pr *kernel.Proc) {
		for i := 0; i < count; i++ {
			pr.ReadFull(pipe, msg)
		}
	})
	m.Run()
	return m.Now().Sub(0)
}

// IPCSocket returns the elapsed virtual time to move total bytes over a
// UDP socket in msg-byte datagrams (clamped to the personality's maximum
// datagram). A non-nil injector perturbs the packet stream, so this is
// the one IPC transport the fault plans reach.
func IPCSocket(p *osprofile.Profile, msg, total int, inj *fault.NetInjector) sim.Duration {
	if msg <= 0 || total < msg {
		panic("bench: IPC needs a positive message size no larger than the total")
	}
	u := netstack.MustUDP(p)
	u.Faults = inj
	if max := u.MaxDatagram(); msg > max {
		msg = max
	}
	return u.Transfer(total, msg)
}

// IPCShm returns the elapsed virtual time to move total bytes through a
// shared-memory segment in msg-byte messages. Each message costs the two
// semaphore system calls that sequence the exchange (writer V, reader P)
// plus the memory traffic of producing the message in a cold segment and
// consuming it on the other CPU — modelled by writing and reading the
// bytes through the Pentium cache hierarchy with a full flush between
// sides, since the consumer's caches hold none of the producer's lines.
func IPCShm(plat Platform, p *osprofile.Profile, msg, total int) sim.Duration {
	if msg <= 0 || total < msg {
		panic("bench: IPC needs a positive message size no larger than the total")
	}
	h := cache.MustNew(cache.PentiumConfig())
	count := total / msg
	// One message's cache traffic is identical for every iteration (the
	// flushes reset the hierarchy), so price one round and multiply.
	h.WriteRunBytes(0, msg)
	h.Flush()
	h.ReadRunBytes(0, msg)
	h.Flush()
	perMsg := plat.CPU.Cycles(h.Cycles()) + 2*p.Kernel.Syscall
	return sim.Duration(int64(perMsg) * int64(count))
}
