package bench

import (
	"testing"

	"repro/internal/osprofile"
	"repro/internal/sim"
)

func TestSelfPipeSolarisEightyMicroseconds(t *testing.T) {
	// §5: "We measured the overhead of sending a byte from a process,
	// through a pipe, and back to the same process. This took 80
	// microseconds." This is a calibration cross-check, not a fit: the
	// value emerges from the syscall model.
	got := SelfPipe(plat, osprofile.Solaris24()).Microseconds()
	if got < 76 || got > 84 {
		t.Errorf("Solaris self-pipe = %.1f µs, want ~80 (§5)", got)
	}
}

func TestSelfPipeOrdering(t *testing.T) {
	l := SelfPipe(plat, osprofile.Linux128())
	f := SelfPipe(plat, osprofile.FreeBSD205())
	s := SelfPipe(plat, osprofile.Solaris24())
	if !(l < f && f < s) {
		t.Errorf("self-pipe ordering wrong: %v %v %v", l, f, s)
	}
	// No context switch is involved, so the self-pipe must be far below
	// the two-process round trip everywhere.
	if l >= LatPipe(plat, osprofile.Linux128()) {
		t.Error("self-pipe should be cheaper than a two-process round trip")
	}
}

func TestLatPipeRoundTrip(t *testing.T) {
	// A round trip is two hops; LatPipe should be roughly twice the ctx
	// per-switch time at two processes.
	for _, p := range osprofile.Paper() {
		rt := LatPipe(plat, p).Microseconds()
		hop := Ctx(plat, p, 2, CtxRing).Microseconds()
		if rt < 1.6*hop || rt > 2.4*hop {
			t.Errorf("%s: pipe RT %.1f µs vs ctx hop %.1f µs; want ~2x", p, rt, hop)
		}
	}
}

func TestLatProc(t *testing.T) {
	for _, p := range osprofile.Paper() {
		fork := LatProc(plat, p, false)
		forkExec := LatProc(plat, p, true)
		if fork <= 0 || forkExec <= fork {
			t.Errorf("%s: fork %v, fork+exec %v", p, fork, forkExec)
		}
	}
	// Solaris process creation is the most expensive (drives its MAB
	// compile-phase deficit).
	if LatProc(plat, osprofile.Solaris24(), true) <= LatProc(plat, osprofile.FreeBSD205(), true) {
		t.Error("Solaris fork+exec should be the slowest")
	}
}

func TestLatFSCreateMirrorsMetadataPolicy(t *testing.T) {
	l := LatFSCreate(plat, osprofile.Linux128(), 7)
	f := LatFSCreate(plat, osprofile.FreeBSD205(), 7)
	if l > 2*sim.Millisecond {
		t.Errorf("ext2 0-byte create/delete = %v, want well under a disk op", l)
	}
	if f < 10*l {
		t.Errorf("FFS create/delete %v should dwarf ext2's %v", f, l)
	}
}

func TestLatenciesReportComplete(t *testing.T) {
	r := Latencies(plat, osprofile.FreeBSD205(), 7)
	if r.OS != "FreeBSD 2.0.5R" {
		t.Errorf("OS = %q", r.OS)
	}
	for name, d := range map[string]sim.Duration{
		"Syscall": r.Syscall, "SelfPipe": r.SelfPipe, "PipeRT": r.PipeRT,
		"Fork": r.Fork, "ForkExec": r.ForkExec, "FSCreate": r.FSCreate,
		"CtxTwoProc": r.CtxTwoProc,
	} {
		if d <= 0 {
			t.Errorf("%s not measured", name)
		}
	}
}
