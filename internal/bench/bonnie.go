package bench

import (
	"repro/internal/fs"
	"repro/internal/osprofile"
	"repro/internal/sim"
)

// BonnieResult holds one bonnie invocation's three measurements
// (Figures 9, 10, 11).
type BonnieResult struct {
	// FileMB is the file size benchmarked.
	FileMB int
	// WriteMBs is sequential write bandwidth in MB/s.
	WriteMBs float64
	// ReadMBs is sequential read bandwidth in MB/s.
	ReadMBs float64
	// SeeksPerSec is random seek-read-write operations per second.
	SeeksPerSec float64
}

// bonnieSeeks is the number of random seeks bonnie performs. (Tim Bray's
// bonnie does 4000 over the file, in chunks.)
const bonnieSeeks = 1200

// bonnieChunk is bonnie's I/O unit: 8 KB blocks.
const bonnieChunk = int64(8 << 10)

// Bonnie runs the bonnie workload at one file size, per §7.1: create and
// sequentially write the file, read it back sequentially, then seek to
// random blocks, read the 8 KB block and write it out. A fresh file
// system is used per invocation, as the paper did per benchmark.
func Bonnie(plat Platform, p *osprofile.Profile, fileMB int, seed uint64) BonnieResult {
	return BonnieWithCache(plat, p, fileMB, seed, 0)
}

// BonnieWithCache is Bonnie with an explicit buffer-cache budget in bytes
// (0 uses the personality's default). The A7 ablation computes budgets
// from a vm.Pool under varying memory pressure.
func BonnieWithCache(plat Platform, p *osprofile.Profile, fileMB int, seed uint64, cacheBudget int64) BonnieResult {
	if fileMB <= 0 {
		panic("bench: bonnie file size must be positive")
	}
	clock := &sim.Clock{}
	rng := sim.NewRNG(seed)
	d := plat.Disk(rng.Fork(1))
	fsys := fs.MustNew(clock, d, p)
	if cacheBudget > 0 {
		fsys.SetCacheBudget(cacheBudget)
	}
	size := int64(fileMB) << 20

	res := BonnieResult{FileMB: fileMB}

	// Phase 1: sequential write.
	start := clock.Now()
	f, err := fsys.Create("/bonnie.scratch")
	if err != nil {
		panic(err)
	}
	for off := int64(0); off < size; off += bonnieChunk {
		f.Write(bonnieChunk)
	}
	f.Close()
	elapsed := clock.Now().Sub(start)
	res.WriteMBs = float64(size) / elapsed.Seconds() / 1e6

	// Phase 2: sequential read.
	g, err := fsys.Open("/bonnie.scratch")
	if err != nil {
		panic(err)
	}
	start = clock.Now()
	for off := int64(0); off < size; off += bonnieChunk {
		g.Read(bonnieChunk)
	}
	elapsed = clock.Now().Sub(start)
	res.ReadMBs = float64(size) / elapsed.Seconds() / 1e6

	// Phase 3: random seeks; each reads the block and writes it out.
	seekRNG := rng.Fork(2)
	blocks := size / bonnieChunk
	start = clock.Now()
	for i := 0; i < bonnieSeeks; i++ {
		blk := seekRNG.Int63n(blocks)
		off := blk * bonnieChunk
		g.ReadAt(off, bonnieChunk)
		g.WriteAt(off, bonnieChunk)
	}
	elapsed = clock.Now().Sub(start)
	g.Close()
	res.SeeksPerSec = float64(bonnieSeeks) / elapsed.Seconds()
	return res
}

// BonnieSweepSizes returns the paper's file-size sweep: "from two to 100
// megabytes" on a log scale.
func BonnieSweepSizes() []int {
	return []int{2, 4, 8, 12, 16, 20, 24, 32, 48, 64, 100}
}
