package bench

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/memmodel"
	"repro/internal/osprofile"
	"repro/internal/sim"
)

var plat = PaperPlatform()

func µs(d sim.Duration) float64 { return d.Microseconds() }

func TestGetpidTable2(t *testing.T) {
	// Table 2: Linux 2.31, FreeBSD 2.62, Solaris 3.52 µs.
	cases := []struct {
		p    *osprofile.Profile
		want float64
	}{
		{osprofile.Linux128(), 2.31},
		{osprofile.FreeBSD205(), 2.62},
		{osprofile.Solaris24(), 3.52},
	}
	for _, c := range cases {
		got := µs(Getpid(plat, c.p))
		if got < c.want*0.98 || got > c.want*1.02 {
			t.Errorf("%s getpid = %.3f µs, want ~%.2f", c.p, got, c.want)
		}
	}
}

func TestCtxTwoProcesses(t *testing.T) {
	// §5: at two processes Linux ~55 µs, FreeBSD ~80 µs, Solaris ~220 µs.
	cases := []struct {
		p    *osprofile.Profile
		want float64
	}{
		{osprofile.Linux128(), 55},
		{osprofile.FreeBSD205(), 80},
		{osprofile.Solaris24(), 220},
	}
	for _, c := range cases {
		got := µs(Ctx(plat, c.p, 2, CtxRing))
		if got < c.want*0.93 || got > c.want*1.07 {
			t.Errorf("%s ctx@2 = %.1f µs, want ~%.0f", c.p, got, c.want)
		}
	}
}

func TestCtxLinuxLinearCrossover(t *testing.T) {
	// Figure 1: Linux is fastest below ~20 processes, grows linearly, and
	// crosses FreeBSD's flat line around 20.
	linux, fbsd := osprofile.Linux128(), osprofile.FreeBSD205()
	l8 := µs(Ctx(plat, linux, 8, CtxRing))
	f8 := µs(Ctx(plat, fbsd, 8, CtxRing))
	if l8 >= f8 {
		t.Errorf("at 8 procs Linux (%.1f) should beat FreeBSD (%.1f)", l8, f8)
	}
	l40 := µs(Ctx(plat, linux, 40, CtxRing))
	f40 := µs(Ctx(plat, fbsd, 40, CtxRing))
	if l40 <= f40 {
		t.Errorf("at 40 procs FreeBSD (%.1f) should beat Linux (%.1f)", f40, l40)
	}
	// Linearity: equal increments per added process.
	l100 := µs(Ctx(plat, linux, 100, CtxRing))
	l200 := µs(Ctx(plat, linux, 200, CtxRing))
	perTask := (l200 - l100) / 100
	if perTask < 1.0 || perTask > 1.8 {
		t.Errorf("Linux per-task slope = %.2f µs, want ~1.4", perTask)
	}
}

func TestCtxFreeBSDFlat(t *testing.T) {
	f2 := µs(Ctx(plat, osprofile.FreeBSD205(), 2, CtxRing))
	f256 := µs(Ctx(plat, osprofile.FreeBSD205(), 256, CtxRing))
	if f256 > f2*1.05 || f256 < f2*0.90 {
		t.Errorf("FreeBSD ctx should be flat: %.1f @2 vs %.1f @256", f2, f256)
	}
}

func TestCtxSolarisJumpAt32(t *testing.T) {
	sol := osprofile.Solaris24()
	s32 := µs(Ctx(plat, sol, 32, CtxRing))
	s40 := µs(Ctx(plat, sol, 40, CtxRing))
	if s40 < s32+80 {
		t.Errorf("Solaris ring should jump past 32 procs: %.1f @32 vs %.1f @40", s32, s40)
	}
	// LIFO rises more gradually between 32 and 64 than the ring does.
	ring40 := s40
	lifo40 := µs(Ctx(plat, sol, 40, CtxLIFO))
	if lifo40 >= ring40 {
		t.Errorf("LIFO @40 (%.1f) should be below ring @40 (%.1f)", lifo40, ring40)
	}
	lifo128 := µs(Ctx(plat, sol, 128, CtxLIFO))
	if lifo128 <= lifo40 {
		t.Errorf("LIFO should keep growing past 64: %.1f @40, %.1f @128", lifo40, lifo128)
	}
}

func TestCtxPanicsBelowTwo(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Ctx with 1 process did not panic")
		}
	}()
	Ctx(plat, osprofile.Linux128(), 1, CtxRing)
}

func TestBwPipeTable4(t *testing.T) {
	// Table 4: Linux 119.36, FreeBSD 98.03, Solaris 65.38 Mb/s.
	cases := []struct {
		p    *osprofile.Profile
		want float64
	}{
		{osprofile.Linux128(), 119.36},
		{osprofile.FreeBSD205(), 98.03},
		{osprofile.Solaris24(), 65.38},
	}
	for _, c := range cases {
		got := BwPipe(plat, c.p)
		if got < c.want*0.95 || got > c.want*1.05 {
			t.Errorf("%s bw_pipe = %.2f Mb/s, want ~%.2f", c.p, got, c.want)
		}
	}
}

func TestCrtdelFigure12(t *testing.T) {
	linux := Crtdel(plat, osprofile.Linux128(), 1024, 7)
	fbsd := Crtdel(plat, osprofile.FreeBSD205(), 1024, 7)
	sol := Crtdel(plat, osprofile.Solaris24(), 1024, 7)
	// Order of magnitude: Linux in single-digit ms, others in tens.
	if linux > 8*sim.Millisecond {
		t.Errorf("Linux crtdel = %v, want a few ms (no disk access)", linux)
	}
	if s := sol.Milliseconds(); s < 30 || s > 40 {
		t.Errorf("Solaris crtdel = %.1f ms, want ~34", s)
	}
	if f := fbsd.Milliseconds(); f < 58 || f > 76 {
		t.Errorf("FreeBSD crtdel = %.1f ms, want ~66", f)
	}
	// The FreeBSD-Solaris gap is ~32 ms and stays roughly constant with
	// file size (§7.2).
	gapSmall := fbsd.Milliseconds() - sol.Milliseconds()
	fbsdBig := Crtdel(plat, osprofile.FreeBSD205(), 1<<20, 7)
	solBig := Crtdel(plat, osprofile.Solaris24(), 1<<20, 7)
	gapBig := fbsdBig.Milliseconds() - solBig.Milliseconds()
	if gapSmall < 25 || gapSmall > 40 {
		t.Errorf("small-file gap = %.1f ms, want ~32", gapSmall)
	}
	if gapBig < gapSmall-12 || gapBig > gapSmall+12 {
		t.Errorf("gap should stay near constant: %.1f ms at 1KB, %.1f ms at 1MB", gapSmall, gapBig)
	}
}

func TestMABTable3(t *testing.T) {
	cases := []struct {
		p    *osprofile.Profile
		want float64
	}{
		{osprofile.Linux128(), 43.12},
		{osprofile.FreeBSD205(), 47.45},
		{osprofile.Solaris24(), 54.31},
	}
	var totals []float64
	for _, c := range cases {
		got := MAB(plat, c.p, DefaultMAB(), 7).Total.Seconds()
		totals = append(totals, got)
		if got < c.want*0.92 || got > c.want*1.08 {
			t.Errorf("%s MAB = %.2f s, want ~%.2f", c.p, got, c.want)
		}
	}
	if !(totals[0] < totals[1] && totals[1] < totals[2]) {
		t.Errorf("MAB order must be Linux < FreeBSD < Solaris: %v", totals)
	}
}

func TestMABStatPhaseFreeBSDWins(t *testing.T) {
	// §8.1: in the directory-stat phase FreeBSD "exceeds even Linux's
	// performance" thanks to its attribute cache.
	l := MAB(plat, osprofile.Linux128(), DefaultMAB(), 7)
	f := MAB(plat, osprofile.FreeBSD205(), DefaultMAB(), 7)
	if f.Phase[2] >= l.Phase[2] {
		t.Errorf("FreeBSD stat phase (%v) should beat Linux (%v)", f.Phase[2], l.Phase[2])
	}
}

func TestMABSpreadNarrowerThanMicrobenchmarks(t *testing.T) {
	// §12: "the systems' overall performance on the MAB workload is much
	// closer" than the microbenchmarks. crtdel spread is ~25x; MAB must
	// be under 1.5x.
	l := MAB(plat, osprofile.Linux128(), DefaultMAB(), 7).Total.Seconds()
	s := MAB(plat, osprofile.Solaris24(), DefaultMAB(), 7).Total.Seconds()
	if s/l > 1.5 {
		t.Errorf("MAB spread Solaris/Linux = %.2f, want < 1.5", s/l)
	}
}

func TestMABNFSTable6(t *testing.T) {
	// Table 6 (Linux server): FreeBSD 53.24 < Linux 57.73 ≈ Solaris 58.38.
	f := MABNFS(osprofile.FreeBSD205(), ServerLinux, DefaultMAB(), 7).Total.Seconds()
	l := MABNFS(osprofile.Linux128(), ServerLinux, DefaultMAB(), 7).Total.Seconds()
	s := MABNFS(osprofile.Solaris24(), ServerLinux, DefaultMAB(), 7).Total.Seconds()
	if !(f < l && f < s) {
		t.Errorf("FreeBSD must lead Table 6: F %.1f, L %.1f, S %.1f", f, l, s)
	}
	// Linux and Solaris effectively tie (paper gap is ~1%).
	if diff := l/s - 1; diff > 0.06 || diff < -0.06 {
		t.Errorf("Linux (%.1f) and Solaris (%.1f) should be within ~6%%", l, s)
	}
	for name, got := range map[string][2]float64{
		"FreeBSD": {f, 53.24}, "Linux": {l, 57.73}, "Solaris": {s, 58.38},
	} {
		if got[0] < got[1]*0.92 || got[0] > got[1]*1.08 {
			t.Errorf("%s Table 6 = %.2f, want ~%.2f", name, got[0], got[1])
		}
	}
}

func TestMABNFSTable7(t *testing.T) {
	// Table 7 (SunOS server): FreeBSD 67.60 < Solaris 87.94 < Linux 115.06.
	f := MABNFS(osprofile.FreeBSD205(), ServerSunOS, DefaultMAB(), 7).Total.Seconds()
	s := MABNFS(osprofile.Solaris24(), ServerSunOS, DefaultMAB(), 7).Total.Seconds()
	l := MABNFS(osprofile.Linux128(), ServerSunOS, DefaultMAB(), 7).Total.Seconds()
	if !(f < s && s < l) {
		t.Errorf("Table 7 order must be FreeBSD < Solaris < Linux: %.1f %.1f %.1f", f, s, l)
	}
	for name, got := range map[string][2]float64{
		"FreeBSD": {f, 67.60}, "Solaris": {s, 87.94}, "Linux": {l, 115.06},
	} {
		if got[0] < got[1]*0.90 || got[0] > got[1]*1.10 {
			t.Errorf("%s Table 7 = %.2f, want ~%.2f", name, got[0], got[1])
		}
	}
	// Linux "performs miserably" against foreign servers: ~2x its Linux
	// -server time.
	l6 := MABNFS(osprofile.Linux128(), ServerLinux, DefaultMAB(), 7).Total.Seconds()
	if l < 1.7*l6 {
		t.Errorf("Linux vs SunOS server (%.1f) should be ~2x its Linux-server time (%.1f)", l, l6)
	}
}

func TestBonnieFigure9Read(t *testing.T) {
	// In-cache (4 MB): FreeBSD 5-15% faster than both.
	l := Bonnie(plat, osprofile.Linux128(), 4, 7)
	f := Bonnie(plat, osprofile.FreeBSD205(), 4, 7)
	s := Bonnie(plat, osprofile.Solaris24(), 4, 7)
	if f.ReadMBs <= l.ReadMBs || f.ReadMBs <= s.ReadMBs {
		t.Errorf("FreeBSD must read fastest in cache: L %.1f F %.1f S %.1f",
			l.ReadMBs, f.ReadMBs, s.ReadMBs)
	}
	if adv := f.ReadMBs / l.ReadMBs; adv < 1.03 || adv > 1.25 {
		t.Errorf("FreeBSD in-cache read advantage = %.2f, want 1.05-1.15ish", adv)
	}
	// Out of cache (100 MB): Solaris best, Linux worst.
	lo := Bonnie(plat, osprofile.Linux128(), 100, 7)
	fo := Bonnie(plat, osprofile.FreeBSD205(), 100, 7)
	so := Bonnie(plat, osprofile.Solaris24(), 100, 7)
	if !(so.ReadMBs > fo.ReadMBs && fo.ReadMBs > lo.ReadMBs) {
		t.Errorf("out-of-cache read order must be Solaris > FreeBSD > Linux: %.2f %.2f %.2f",
			so.ReadMBs, fo.ReadMBs, lo.ReadMBs)
	}
}

func TestBonnieFigure10Write(t *testing.T) {
	l := Bonnie(plat, osprofile.Linux128(), 4, 7)
	f := Bonnie(plat, osprofile.FreeBSD205(), 4, 7)
	s := Bonnie(plat, osprofile.Solaris24(), 4, 7)
	// §7.1: FreeBSD writes small files ~50% faster than Solaris.
	if r := f.WriteMBs / s.WriteMBs; r < 1.25 || r > 1.75 {
		t.Errorf("FreeBSD/Solaris small-file write ratio = %.2f, want ~1.5", r)
	}
	// Linux under half of both.
	if l.WriteMBs > 0.55*s.WriteMBs || l.WriteMBs > 0.55*f.WriteMBs {
		t.Errorf("Linux write bw %.2f must be < half of FreeBSD %.2f and Solaris %.2f",
			l.WriteMBs, f.WriteMBs, s.WriteMBs)
	}
	// And still under half at a large size.
	lBig := Bonnie(plat, osprofile.Linux128(), 48, 7)
	fBig := Bonnie(plat, osprofile.FreeBSD205(), 48, 7)
	if lBig.WriteMBs > 0.6*fBig.WriteMBs {
		t.Errorf("Linux 48 MB write bw %.2f not well below FreeBSD %.2f", lBig.WriteMBs, fBig.WriteMBs)
	}
}

func TestBonnieFigure11Seeks(t *testing.T) {
	l := Bonnie(plat, osprofile.Linux128(), 4, 7)
	f := Bonnie(plat, osprofile.FreeBSD205(), 4, 7)
	s := Bonnie(plat, osprofile.Solaris24(), 4, 7)
	// §7.1: Linux and Solaris ~50% more seeks/s than FreeBSD in cache.
	if r := l.SeeksPerSec / f.SeeksPerSec; r < 1.3 || r > 1.9 {
		t.Errorf("Linux/FreeBSD in-cache seek ratio = %.2f, want ~1.5", r)
	}
	if r := s.SeeksPerSec / f.SeeksPerSec; r < 1.2 || r > 1.8 {
		t.Errorf("Solaris/FreeBSD in-cache seek ratio = %.2f, want ~1.5", r)
	}
	// All three converge out of cache: ~14 ms per seek → ≥ ~70/s, and
	// within 20% of each other.
	lo := Bonnie(plat, osprofile.Linux128(), 100, 7)
	fo := Bonnie(plat, osprofile.FreeBSD205(), 100, 7)
	so := Bonnie(plat, osprofile.Solaris24(), 100, 7)
	for _, r := range []BonnieResult{lo, fo, so} {
		if r.SeeksPerSec < 60 || r.SeeksPerSec > 130 {
			t.Errorf("out-of-cache seeks = %.1f/s, want near 1/14ms with partial cache hits", r.SeeksPerSec)
		}
	}
	if so.SeeksPerSec > lo.SeeksPerSec*1.25 || lo.SeeksPerSec > so.SeeksPerSec*1.25 {
		t.Errorf("out-of-cache seek rates should converge: %.1f vs %.1f", lo.SeeksPerSec, so.SeeksPerSec)
	}
}

func TestBonnieCacheKneeAt20MB(t *testing.T) {
	// Figures 9-11: files up to ~20 MB are cached; beyond that read
	// bandwidth collapses to disk speed.
	f16 := Bonnie(plat, osprofile.FreeBSD205(), 16, 7)
	f32 := Bonnie(plat, osprofile.FreeBSD205(), 32, 7)
	if f16.ReadMBs < 10 {
		t.Errorf("16 MB file should read at cache speed, got %.1f MB/s", f16.ReadMBs)
	}
	if f32.ReadMBs > 5 {
		t.Errorf("32 MB file should read at disk speed, got %.1f MB/s", f32.ReadMBs)
	}
}

func TestTTCPFigure13AndBwTCPTable5(t *testing.T) {
	// Peaks at 8 KB packets: FreeBSD ~48, Solaris ~32, Linux ~16 Mb/s.
	f := TTCP(osprofile.FreeBSD205(), 8192)
	s := TTCP(osprofile.Solaris24(), 8192)
	l := TTCP(osprofile.Linux128(), 8192)
	if !(f > s && s > l) {
		t.Errorf("UDP peak order wrong: %.1f %.1f %.1f", f, s, l)
	}
	// Table 5 via the wrapper.
	if bw := BwTCP(osprofile.Linux128(), 0); bw < 22 || bw > 28 {
		t.Errorf("Linux bw_tcp = %.2f, want ~25", bw)
	}
	// A5 wrapper: window override raises Linux.
	if BwTCP(osprofile.Linux128(), 16) <= BwTCP(osprofile.Linux128(), 0) {
		t.Error("window override must raise Linux TCP bandwidth")
	}
}

func TestMemFigureWrappers(t *testing.T) {
	sizes := []int{1 << 10, 64 << 10, 1 << 20}
	pts := MemFigure(plat, cache.PentiumConfig(), memmodel.CustomRead, sizes)
	if len(pts) != 3 {
		t.Fatalf("MemFigure returned %d points", len(pts))
	}
	if !(pts[0].MBs > pts[1].MBs && pts[1].MBs > pts[2].MBs) {
		t.Errorf("read bandwidth must fall across cache levels: %+v", pts)
	}
	d0 := MemFigureDistance(plat, cache.PentiumConfig(), memmodel.PrefetchWrite, []int{2 << 20}, 0)
	d4 := MemFigureDistance(plat, cache.PentiumConfig(), memmodel.PrefetchWrite, []int{2 << 20}, 4)
	if d4[0].MBs <= d0[0].MBs {
		t.Errorf("deeper prefetch should help out of cache: %.1f vs %.1f", d4[0].MBs, d0[0].MBs)
	}
}

func TestMemSweepSizesShape(t *testing.T) {
	sizes := MemSweepSizes()
	if sizes[0] > 64 || sizes[len(sizes)-1] != 8<<20 {
		t.Fatalf("sweep must span 64B..8MB, got %d..%d", sizes[0], sizes[len(sizes)-1])
	}
	ragged := 0
	for i := 1; i < len(sizes); i++ {
		if sizes[i] < sizes[i-1] {
			t.Fatal("sweep not ascending")
		}
		if sizes[i]%16 != 0 {
			ragged++
		}
	}
	if ragged == 0 {
		t.Fatal("sweep needs ragged sizes to exhibit the §6.4 tail dips")
	}
}

func TestFuturesImproveBenchmarks(t *testing.T) {
	// §13: Linux 1.3.40 context switches in ~10 µs with little slowdown.
	d2 := µs(Ctx(plat, osprofile.Linux1340(), 2, CtxRing))
	base := µs(Ctx(plat, osprofile.Linux128(), 2, CtxRing))
	if d2 >= base/2 {
		t.Errorf("Linux 1.3.40 ctx@2 = %.1f µs, should be far below 1.2.8's %.1f", d2, base)
	}
	d64 := µs(Ctx(plat, osprofile.Linux1340(), 64, CtxRing))
	if d64 > d2*1.3 {
		t.Errorf("Linux 1.3.40 should have very little slowdown: %.1f @2 vs %.1f @64", d2, d64)
	}
	// FreeBSD 2.1's ordered-async metadata fixes small files.
	f21 := Crtdel(plat, osprofile.FreeBSD21(), 1024, 7)
	f205 := Crtdel(plat, osprofile.FreeBSD205(), 1024, 7)
	if f21 > f205/5 {
		t.Errorf("FreeBSD 2.1 crtdel = %v, should be far below 2.0.5's %v", f21, f205)
	}
	// Solaris 2.5 context switches faster.
	s25 := µs(Ctx(plat, osprofile.Solaris25(), 2, CtxRing))
	s24 := µs(Ctx(plat, osprofile.Solaris24(), 2, CtxRing))
	if s25 >= s24 {
		t.Errorf("Solaris 2.5 ctx (%.1f) should beat 2.4 (%.1f)", s25, s24)
	}
}

func TestBenchmarksDeterministic(t *testing.T) {
	if a, b := BwPipe(plat, osprofile.Solaris24()), BwPipe(plat, osprofile.Solaris24()); a != b {
		t.Error("BwPipe not deterministic")
	}
	a := MAB(plat, osprofile.FreeBSD205(), DefaultMAB(), 9).Total
	b := MAB(plat, osprofile.FreeBSD205(), DefaultMAB(), 9).Total
	if a != b {
		t.Error("MAB not deterministic")
	}
	if x, y := Crtdel(plat, osprofile.Linux128(), 4096, 3), Crtdel(plat, osprofile.Linux128(), 4096, 3); x != y {
		t.Error("Crtdel not deterministic")
	}
}
