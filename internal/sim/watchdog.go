package sim

import (
	"fmt"
	"strings"
)

// DeadlockError is the structured form of the kernel's deadlock panic: a
// machine stopped with processes still blocked and nothing runnable. The
// kernel raises it through panic so simulated-process goroutines unwind,
// and the CLI recovers it at the dispatch boundary and renders the
// diagnostic instead of a Go stack trace.
type DeadlockError struct {
	// Now is the virtual time the machine stopped at.
	Now Time
	// Blocked lists the stuck processes as "pid (name)" strings.
	Blocked []string
	// Dump is a human-readable diagnostic built from the machine's obs
	// span buffer (the most recent spans per track), empty when the run
	// was not observed.
	Dump string
}

// Error summarises the deadlock in one line.
func (e *DeadlockError) Error() string {
	return fmt.Sprintf("kernel: deadlock at t=%v: %d process(es) blocked with empty run queue: %s",
		Duration(e.Now).Std(), len(e.Blocked), strings.Join(e.Blocked, ", "))
}
