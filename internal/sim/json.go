package sim

import (
	"encoding/json"
	"fmt"
	"time"
)

// Duration marshals as a human-readable string ("2.31µs") so that
// serialized OS personalities are readable and editable; it accepts
// either that form or a raw nanosecond count when unmarshalling.

// MarshalJSON implements json.Marshaler.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(d.Std().String())
}

// UnmarshalJSON implements json.Unmarshaler.
func (d *Duration) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		parsed, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("sim: bad duration %q: %v", s, err)
		}
		*d = DurationOf(parsed)
		return nil
	}
	var n int64
	if err := json.Unmarshal(b, &n); err != nil {
		return fmt.Errorf("sim: duration must be a string like \"80µs\" or nanoseconds: %s", b)
	}
	*d = Duration(n)
	return nil
}
