package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestClockStartsAtZero(t *testing.T) {
	var c Clock
	if got := c.Now(); got != 0 {
		t.Fatalf("zero clock Now() = %v, want 0", got)
	}
}

func TestClockAdvance(t *testing.T) {
	var c Clock
	c.Advance(5 * Microsecond)
	c.Advance(3 * Nanosecond)
	if got, want := c.Now(), Time(5003); got != want {
		t.Fatalf("Now() = %v, want %v", got, want)
	}
}

func TestClockAdvanceNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Advance(-1) did not panic")
		}
	}()
	var c Clock
	c.Advance(-1)
}

func TestClockAdvanceToBackwardsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AdvanceTo into the past did not panic")
		}
	}()
	var c Clock
	c.Advance(10)
	c.AdvanceTo(5)
}

func TestClockReset(t *testing.T) {
	var c Clock
	c.Advance(Second)
	c.Reset()
	if c.Now() != 0 {
		t.Fatalf("after Reset Now() = %v, want 0", c.Now())
	}
}

func TestDurationConversions(t *testing.T) {
	d := 1500 * Microsecond
	if got := d.Milliseconds(); got != 1.5 {
		t.Errorf("Milliseconds() = %v, want 1.5", got)
	}
	if got := d.Microseconds(); got != 1500 {
		t.Errorf("Microseconds() = %v, want 1500", got)
	}
	if got := d.Seconds(); got != 0.0015 {
		t.Errorf("Seconds() = %v, want 0.0015", got)
	}
	if got := d.Std(); got != 1500*time.Microsecond {
		t.Errorf("Std() = %v, want 1.5ms", got)
	}
	if got := DurationOf(2 * time.Second); got != 2*Second {
		t.Errorf("DurationOf(2s) = %v, want %v", got, 2*Second)
	}
}

func TestTimeAddSub(t *testing.T) {
	t0 := Time(100)
	t1 := t0.Add(50)
	if t1 != 150 {
		t.Fatalf("Add = %v, want 150", t1)
	}
	if d := t1.Sub(t0); d != 50 {
		t.Fatalf("Sub = %v, want 50", d)
	}
}

func TestEngineFiresInTimeOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(30, func() { order = append(order, 3) })
	e.Schedule(10, func() { order = append(order, 1) })
	e.Schedule(20, func() { order = append(order, 2) })
	if n := e.Run(); n != 3 {
		t.Fatalf("Run fired %d events, want 3", n)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("fire order = %v, want [1 2 3]", order)
	}
	if e.Now() != 30 {
		t.Fatalf("Now() = %v, want 30", e.Now())
	}
}

func TestEngineSameTimeFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events fired out of schedule order: %v", order)
		}
	}
}

func TestEngineEventSchedulesEvent(t *testing.T) {
	e := NewEngine()
	var fired []Time
	e.Schedule(10, func() {
		fired = append(fired, e.Now())
		e.Schedule(5, func() { fired = append(fired, e.Now()) })
	})
	e.Run()
	if len(fired) != 2 || fired[0] != 10 || fired[1] != 15 {
		t.Fatalf("fired = %v, want [10 15]", fired)
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.Schedule(10, func() { fired = true })
	e.Cancel(ev)
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if !ev.Cancelled() {
		t.Fatal("Cancelled() = false after Cancel")
	}
	// Double-cancel and nil-cancel are no-ops.
	e.Cancel(ev)
	e.Cancel(nil)
}

func TestEngineCancelMiddleOfHeap(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(10, func() { order = append(order, 1) })
	ev := e.Schedule(20, func() { order = append(order, 2) })
	e.Schedule(30, func() { order = append(order, 3) })
	e.Cancel(ev)
	e.Run()
	if len(order) != 2 || order[0] != 1 || order[1] != 3 {
		t.Fatalf("order = %v, want [1 3]", order)
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	var fired []Time
	for _, d := range []Duration{5, 15, 25} {
		e.Schedule(d, func() { fired = append(fired, e.Now()) })
	}
	n := e.RunUntil(20)
	if n != 2 {
		t.Fatalf("RunUntil fired %d, want 2", n)
	}
	if e.Now() != 20 {
		t.Fatalf("Now() = %v, want 20", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending() = %d, want 1", e.Pending())
	}
	// RunUntil past the drain point advances the clock to the deadline.
	e.RunUntil(100)
	if e.Now() != 100 || e.Pending() != 0 {
		t.Fatalf("Now()=%v Pending()=%d, want 100, 0", e.Now(), e.Pending())
	}
}

func TestEngineScheduleNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Schedule(-1) did not panic")
		}
	}()
	NewEngine().Schedule(-1, func() {})
}

func TestEngineScheduleAtPastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(10, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("ScheduleAt in the past did not panic")
		}
	}()
	e.ScheduleAt(5, func() {})
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed streams diverged")
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical values", same)
	}
}

func TestRNGForkIndependence(t *testing.T) {
	r := NewRNG(7)
	a := r.Fork(1)
	b := r.Fork(2)
	if a.Uint64() == b.Uint64() {
		t.Fatal("forks with different labels produced the same first value")
	}
	// Fork is a pure function of (state, label): forking again with the same
	// label from an untouched parent yields the same stream.
	a1 := NewRNG(7).Fork(1)
	a2 := NewRNG(7).Fork(1)
	for i := 0; i < 100; i++ {
		if a1.Uint64() != a2.Uint64() {
			t.Fatal("Fork is not deterministic")
		}
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestRNGIntnRange(t *testing.T) {
	r := NewRNG(4)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("Intn(10) covered %d values of 10 in 1000 draws", len(seen))
	}
}

func TestRNGIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(0).Intn(0)
}

func TestRNGNormFloat64Moments(t *testing.T) {
	r := NewRNG(5)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if mean < -0.02 || mean > 0.02 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if variance < 0.95 || variance > 1.05 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestRNGNoisePositive(t *testing.T) {
	r := NewRNG(6)
	for i := 0; i < 10000; i++ {
		if f := r.Noise(0.5); f <= 0 {
			t.Fatalf("Noise returned non-positive factor %v", f)
		}
	}
}

func TestRNGNoiseSpread(t *testing.T) {
	r := NewRNG(8)
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Noise(0.01)
	}
	mean := sum / n
	if mean < 0.995 || mean > 1.005 {
		t.Errorf("Noise(0.01) mean = %v, want ~1", mean)
	}
}

// Property: for any batch of non-negative delays, the engine fires exactly
// len(delays) events, in non-decreasing time order, ending with the clock at
// the maximum delay.
func TestEngineOrderProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		e := NewEngine()
		var fired []Time
		var max Duration
		for _, r := range raw {
			d := Duration(r)
			if d > max {
				max = d
			}
			e.Schedule(d, func() { fired = append(fired, e.Now()) })
		}
		if n := e.Run(); n != len(raw) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		if len(raw) > 0 && e.Now() != Time(max) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Intn(n) is always within range for positive n.
func TestRNGIntnProperty(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		m := int(n%100) + 1
		r := NewRNG(seed)
		for i := 0; i < 50; i++ {
			v := r.Intn(m)
			if v < 0 || v >= m {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
