package sim

import "math"

// RNG is a small, fast, deterministic random number generator
// (splitmix64). Every stochastic element of the simulation draws from an
// RNG seeded from the experiment seed, so results are reproducible
// bit-for-bit across runs and platforms.
//
// We implement our own generator rather than using math/rand so that the
// stream is stable across Go releases: math/rand's default source and
// shuffling internals have changed between versions, and EXPERIMENTS.md
// commits exact numbers.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. Distinct seeds give
// independent-looking streams; seed 0 is valid.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed + 0x9e3779b97f4a7c15}
}

// Fork returns a new generator whose stream is a deterministic function of
// this generator's current state and the given label. Forking lets each
// benchmark run own an independent stream without consuming numbers from
// its parent in an order-dependent way.
func (r *RNG) Fork(label uint64) *RNG {
	// Mix the label in through one splitmix round so that Fork(1) and
	// Fork(2) diverge immediately.
	z := r.state ^ (label * 0xbf58476d1ce4e5b9)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	return NewRNG(z)
}

// Uint64 returns the next value in the stream.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sim: Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a normally distributed value with mean 0 and standard
// deviation 1, using the Box-Muller transform.
func (r *RNG) NormFloat64() float64 {
	// Avoid log(0) by excluding 0 from u1.
	u1 := 1 - r.Float64()
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Noise returns a multiplicative noise factor 1+N(0, rel), clamped to stay
// positive. It is the standard way models perturb a mean to give the
// twenty-run std-dev columns the paper reports.
func (r *RNG) Noise(rel float64) float64 {
	f := 1 + rel*r.NormFloat64()
	if f < 0.05 {
		f = 0.05
	}
	return f
}
