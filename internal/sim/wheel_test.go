package sim

import (
	"fmt"
	"math/rand"
	"testing"
)

// engines lists the two Queue implementations behind the seam; every
// behavioral test below runs against both.
var engines = []struct {
	name string
	mk   func() Queue
}{
	{"heap", func() Queue { return NewEngine() }},
	{"wheel", func() Queue { return NewWheel() }},
}

func TestQueueFiresInTimeOrder(t *testing.T) {
	for _, eng := range engines {
		t.Run(eng.name, func(t *testing.T) {
			q := eng.mk()
			var order []int
			q.Schedule(30, func() { order = append(order, 3) })
			q.Schedule(10, func() { order = append(order, 1) })
			q.Schedule(20, func() { order = append(order, 2) })
			if n := q.Run(); n != 3 {
				t.Fatalf("Run fired %d events, want 3", n)
			}
			if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
				t.Fatalf("fire order = %v, want [1 2 3]", order)
			}
			if q.Now() != 30 {
				t.Fatalf("Now() = %v, want 30", q.Now())
			}
		})
	}
}

func TestQueueSameTickFIFO(t *testing.T) {
	for _, eng := range engines {
		t.Run(eng.name, func(t *testing.T) {
			q := eng.mk()
			var order []int
			for i := 0; i < 100; i++ {
				i := i
				q.Schedule(5, func() { order = append(order, i) })
			}
			q.Run()
			for i, v := range order {
				if v != i {
					t.Fatalf("same-tick events fired out of schedule order: %v", order)
				}
			}
		})
	}
}

func TestQueueCancelAndReschedule(t *testing.T) {
	for _, eng := range engines {
		t.Run(eng.name, func(t *testing.T) {
			q := eng.mk()
			var order []int
			q.Schedule(10, func() { order = append(order, 1) })
			ev := q.Schedule(20, func() { order = append(order, 2) })
			q.Schedule(30, func() { order = append(order, 3) })
			q.Cancel(ev)
			if !ev.Cancelled() {
				t.Fatal("Cancelled() = false after Cancel")
			}
			q.Cancel(nil) // no-op
			if got := q.Run(); got != 2 {
				t.Fatalf("Run fired %d, want 2", got)
			}
			if len(order) != 2 || order[0] != 1 || order[1] != 3 {
				t.Fatalf("order = %v, want [1 3]", order)
			}
		})
	}
}

func TestQueueEventSchedulesEvent(t *testing.T) {
	for _, eng := range engines {
		t.Run(eng.name, func(t *testing.T) {
			q := eng.mk()
			var fired []Time
			q.Schedule(10, func() {
				fired = append(fired, q.Now())
				q.Schedule(5, func() { fired = append(fired, q.Now()) })
				q.Schedule(0, func() { fired = append(fired, q.Now()) })
			})
			q.Run()
			if len(fired) != 3 || fired[0] != 10 || fired[1] != 10 || fired[2] != 15 {
				t.Fatalf("fired = %v, want [10 10 15]", fired)
			}
		})
	}
}

func TestQueueRunUntil(t *testing.T) {
	for _, eng := range engines {
		t.Run(eng.name, func(t *testing.T) {
			q := eng.mk()
			var fired []Time
			for _, d := range []Duration{5, 15, 25} {
				q.Schedule(d, func() { fired = append(fired, q.Now()) })
			}
			if n := q.RunUntil(20); n != 2 {
				t.Fatalf("RunUntil fired %d, want 2", n)
			}
			if q.Now() != 20 {
				t.Fatalf("Now() = %v, want 20", q.Now())
			}
			if q.Pending() != 1 {
				t.Fatalf("Pending() = %d, want 1", q.Pending())
			}
			// Scheduling between a stopped-short RunUntil and the next
			// pending event must still fire in time order.
			q.Schedule(2, func() { fired = append(fired, q.Now()) })
			q.RunUntil(100)
			want := []Time{5, 15, 22, 25}
			if len(fired) != 4 {
				t.Fatalf("fired = %v, want %v", fired, want)
			}
			for i := range want {
				if fired[i] != want[i] {
					t.Fatalf("fired = %v, want %v", fired, want)
				}
			}
			if q.Now() != 100 || q.Pending() != 0 {
				t.Fatalf("Now()=%v Pending()=%d, want 100, 0", q.Now(), q.Pending())
			}
		})
	}
}

func TestQueueSchedulePanics(t *testing.T) {
	for _, eng := range engines {
		t.Run(eng.name, func(t *testing.T) {
			mustPanic(t, "negative delay", func() { eng.mk().Schedule(-1, func() {}) })
			q := eng.mk()
			q.Schedule(10, func() {})
			q.Run()
			mustPanic(t, "past ScheduleAt", func() { q.ScheduleAt(5, func() {}) })
		})
	}
}

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s did not panic", what)
		}
	}()
	fn()
}

// TestWheelOverflow exercises events beyond the wheel horizon, including
// ties straddling the horizon boundary.
func TestWheelOverflow(t *testing.T) {
	w := NewWheel()
	var fired []Time
	note := func() { fired = append(fired, w.Now()) }
	far := Duration(wheelHorizon) * 3
	w.Schedule(far, note)
	w.Schedule(far, note)            // same-tick tie in overflow
	w.Schedule(Duration(wheelHorizon), note)
	w.Schedule(5, note)
	w.Schedule(Duration(wheelHorizon-1), note)
	if n := w.Run(); n != 5 {
		t.Fatalf("Run fired %d, want 5", n)
	}
	want := []Time{5, Time(wheelHorizon - 1), Time(wheelHorizon), Time(far), Time(far)}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired = %v, want %v", fired, want)
		}
	}
}

// TestWheelOverflowFIFOAcrossMigration pins the subtle ordering case: an
// event scheduled long in advance (into overflow) and an event scheduled
// later for the same tick (directly into the wheel) must still fire in
// schedule order.
func TestWheelOverflowFIFOAcrossMigration(t *testing.T) {
	w := NewWheel()
	var order []int
	target := Time(wheelHorizon + 1000)
	w.ScheduleAt(target, func() { order = append(order, 1) }) // overflow
	// Advance near the target so the same tick is now inside the horizon.
	w.Schedule(Duration(2000), func() {
		w.ScheduleAt(target, func() { order = append(order, 2) }) // wheel direct
	})
	w.Run()
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("order = %v, want [1 2]", order)
	}
}

// TestWheelClockSync covers models that advance the shared clock directly
// between schedules.
func TestWheelClockSync(t *testing.T) {
	w := NewWheel()
	var fired []Time
	w.Schedule(100*Microsecond, func() { fired = append(fired, w.Now()) })
	w.Clock().Advance(10 * Microsecond)
	w.Schedule(5*Microsecond, func() { fired = append(fired, w.Now()) })
	w.Run()
	if len(fired) != 2 || fired[0] != Time(15*Microsecond) || fired[1] != Time(100*Microsecond) {
		t.Fatalf("fired = %v, want [15µs 100µs]", fired)
	}
}

// firedRec is one observed firing for the differential log.
type firedRec struct {
	id   int
	when Time
}

// diffDriver runs an identical randomized workload against one engine.
// Both drivers consume their own identically-seeded RNG; as long as the
// engines agree the decision streams stay aligned, and any divergence
// shows up as differing logs.
type diffDriver struct {
	q    Queue
	rng  *rand.Rand
	log  []firedRec
	live []*Event
	ids  []int
	next int
}

func newDiffDriver(q Queue, seed int64) *diffDriver {
	return &diffDriver{q: q, rng: rand.New(rand.NewSource(seed))}
}

// delay draws from mixed scales so every wheel level, the run queue, and
// the overflow heap are exercised, with boundary values overrepresented.
func (d *diffDriver) delay() Duration {
	switch d.rng.Intn(12) {
	case 0:
		return 0
	case 1:
		return Duration(d.rng.Int63n(4)) // same-tick clusters
	case 2:
		return Duration(d.rng.Int63n(64))
	case 3:
		return 63
	case 4:
		return 64
	case 5:
		return Duration(64 + d.rng.Int63n(4096-64))
	case 6:
		return 4096
	case 7:
		return Duration(4096 + d.rng.Int63n(1<<18))
	case 8:
		return Duration(d.rng.Int63n(1 << 24))
	case 9:
		return Duration(wheelHorizon - 1 - d.rng.Int63n(1<<20))
	case 10:
		return Duration(wheelHorizon + d.rng.Int63n(1<<20))
	default:
		return Duration(d.rng.Int63n(1 << 30))
	}
}

func (d *diffDriver) dropLive(id int) {
	for i, lid := range d.ids {
		if lid == id {
			d.ids = append(d.ids[:i], d.ids[i+1:]...)
			d.live = append(d.live[:i], d.live[i+1:]...)
			return
		}
	}
}

func (d *diffDriver) schedule(depth int) {
	id := d.next
	d.next++
	delay := d.delay()
	nested := depth < 3 && d.rng.Intn(4) == 0
	cancelOther := d.rng.Intn(8) == 0
	ev := d.q.Schedule(delay, func() {
		d.log = append(d.log, firedRec{id: id, when: d.q.Now()})
		d.dropLive(id)
		if nested {
			d.schedule(depth + 1)
		}
		if cancelOther {
			d.cancelRandom()
		}
	})
	d.live = append(d.live, ev)
	d.ids = append(d.ids, id)
}

func (d *diffDriver) cancelRandom() {
	if len(d.live) == 0 {
		return
	}
	i := d.rng.Intn(len(d.live))
	ev, id := d.live[i], d.ids[i]
	d.q.Cancel(ev)
	d.dropLive(id)
	d.log = append(d.log, firedRec{id: -id, when: d.q.Now()})
}

func (d *diffDriver) run(ops int) {
	for i := 0; i < ops; i++ {
		switch d.rng.Intn(10) {
		case 0, 1, 2, 3, 4:
			d.schedule(0)
		case 5:
			d.cancelRandom()
		case 6, 7:
			d.q.Step()
		case 8:
			d.q.RunUntil(d.q.Now().Add(d.delay()))
		default:
			for j := 0; j < 3; j++ {
				d.q.Step()
			}
		}
	}
	d.q.Run()
}

// TestEngineDifferential certifies the wheel against the reference heap
// engine: identical randomized schedule/cancel/step/run-until workloads
// must produce identical (event, time) firing sequences, identical final
// clocks, and drain completely.
func TestEngineDifferential(t *testing.T) {
	seeds := 40
	ops := 400
	if testing.Short() {
		seeds = 8
	}
	for seed := int64(1); seed <= int64(seeds); seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			ref := newDiffDriver(NewEngine(), seed)
			fast := newDiffDriver(NewWheel(), seed)
			ref.run(ops)
			fast.run(ops)
			if len(ref.log) != len(fast.log) {
				t.Fatalf("log lengths differ: heap %d, wheel %d", len(ref.log), len(fast.log))
			}
			for i := range ref.log {
				if ref.log[i] != fast.log[i] {
					t.Fatalf("log[%d]: heap %+v, wheel %+v", i, ref.log[i], fast.log[i])
				}
			}
			if ref.q.Now() != fast.q.Now() {
				t.Fatalf("final clocks differ: heap %v, wheel %v", ref.q.Now(), fast.q.Now())
			}
			if ref.q.Pending() != 0 || fast.q.Pending() != 0 {
				t.Fatalf("undrained events: heap %d, wheel %d", ref.q.Pending(), fast.q.Pending())
			}
		})
	}
}

// TestWheelSteadyStateZeroAlloc holds the allocation budget for the
// wheel's hot path: once the slab free list is warm, a schedule/fire
// cycle allocates nothing.
func TestWheelSteadyStateZeroAlloc(t *testing.T) {
	w := NewWheel()
	fn := func() {}
	// Warm the free list and the wheel's internal state.
	for i := 0; i < 4*wheelSlabSize; i++ {
		w.Schedule(Duration(i%977), fn)
	}
	w.Run()
	if got := testing.AllocsPerRun(200, func() {
		w.Schedule(13, fn)
		w.Schedule(13, fn)
		w.Schedule(4099, fn)
		w.Run()
	}); got != 0 {
		t.Fatalf("steady-state schedule/fire cycle allocates %v objects, want 0", got)
	}
}

// lcg is a tiny deterministic generator for benchmark schedules (no
// rand.Rand allocation or locking in the timed loop).
type lcg uint64

func (l *lcg) next() uint64 {
	*l = *l*6364136223846793005 + 1442695040888963407
	return uint64(*l)
}

func benchmarkChurn(b *testing.B, mk func() Queue) {
	q := mk()
	fn := func() {}
	r := lcg(1)
	b.ReportAllocs()
	b.ResetTimer()
	const batch = 512
	for i := 0; i < b.N; i++ {
		for j := 0; j < batch; j++ {
			q.Schedule(Duration(r.next()%(1<<20)), fn)
		}
		q.Run()
	}
}

func BenchmarkHeapChurn(b *testing.B)  { benchmarkChurn(b, func() Queue { return NewEngine() }) }
func BenchmarkWheelChurn(b *testing.B) { benchmarkChurn(b, func() Queue { return NewWheel() }) }

func benchmarkSameTickBurst(b *testing.B, mk func() Queue) {
	q := mk()
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	const burst = 1024
	for i := 0; i < b.N; i++ {
		for j := 0; j < burst; j++ {
			q.Schedule(100, fn)
		}
		q.Run()
	}
}

func BenchmarkHeapSameTickBurst(b *testing.B) {
	benchmarkSameTickBurst(b, func() Queue { return NewEngine() })
}
func BenchmarkWheelSameTickBurst(b *testing.B) {
	benchmarkSameTickBurst(b, func() Queue { return NewWheel() })
}

func benchmarkScheduleCancel(b *testing.B, mk func() Queue) {
	q := mk()
	fn := func() {}
	r := lcg(7)
	var evs [512]*Event
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range evs {
			evs[j] = q.Schedule(Duration(r.next()%(1<<16)), fn)
		}
		for j := range evs {
			q.Cancel(evs[j])
		}
		// Keep the clock moving so the queues never grow unbounded.
		q.RunUntil(q.Now() + 1)
	}
}

func BenchmarkHeapScheduleCancel(b *testing.B) {
	benchmarkScheduleCancel(b, func() Queue { return NewEngine() })
}
func BenchmarkWheelScheduleCancel(b *testing.B) {
	benchmarkScheduleCancel(b, func() Queue { return NewWheel() })
}
