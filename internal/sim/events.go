package sim

import (
	"container/heap"
	"fmt"
)

// Event is a callback scheduled to run at a point in virtual time.
type Event struct {
	// When is the virtual time at which the event fires.
	When Time
	// Fire is the event's action. It runs with the engine clock set to When.
	Fire func()

	seq   uint64 // tie-break: events at the same time fire in schedule order
	index int    // heap index while in an eventHeap

	// where locates the event inside its engine (heap queue, wheel slot,
	// run queue, overflow heap, or nowhere once fired/cancelled).
	where loc
	// next/prev link the event into a wheel slot or run-queue list; next
	// doubles as the free-list link when recycled.
	next, prev *Event
	// level/slot record the wheel position for O(1) Cancel.
	level, slot uint8
}

// loc is an event's current container.
type loc uint8

const (
	locNone     loc = iota // fired, cancelled, or never scheduled
	locHeap                // reference Engine's binary heap
	locSlot                // a wheel slot list
	locRunq                // the wheel's same-tick run queue
	locOverflow            // the wheel's beyond-horizon heap
)

// Cancelled reports whether the event has been removed from its queue
// (either by firing or by Cancel).
func (e *Event) Cancelled() bool { return e.where == locNone }

// eventHeap orders events by (When, seq).
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].When != h[j].When {
		return h[i].When < h[j].When
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	e.where = locNone
	*h = old[:n-1]
	return e
}

// Engine is a discrete-event simulation engine: a clock plus a queue of
// pending events. Components schedule callbacks at future virtual times and
// the engine fires them in time order, advancing the clock as it goes.
//
// The zero value is ready to use.
type Engine struct {
	clock Clock
	queue eventHeap
	seq   uint64
}

// NewEngine returns a new engine with its clock at T+0.
func NewEngine() *Engine { return &Engine{} }

// Now returns the engine's current virtual time.
func (e *Engine) Now() Time { return e.clock.Now() }

// Clock exposes the engine's clock for components that advance time directly
// (single-process models that never need interleaving).
func (e *Engine) Clock() *Clock { return &e.clock }

// Schedule enqueues fn to run after delay d. It returns the event so the
// caller may cancel it. A negative delay panics.
func (e *Engine) Schedule(d Duration, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative event delay %v", d))
	}
	return e.ScheduleAt(e.clock.Now().Add(d), fn)
}

// ScheduleAt enqueues fn to run at time t. Scheduling in the past panics.
func (e *Engine) ScheduleAt(t Time, fn func()) *Event {
	if t < e.clock.Now() {
		panic(fmt.Sprintf("sim: scheduling event in the past: at %v, asked for %v", e.clock.Now(), t))
	}
	ev := &Event{When: t, Fire: fn, seq: e.seq, where: locHeap}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// Cancel removes a pending event from the queue. Cancelling an event that
// has already fired or been cancelled is a no-op.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.where != locHeap {
		return
	}
	heap.Remove(&e.queue, ev.index)
}

// Pending returns the number of events waiting in the queue.
func (e *Engine) Pending() int { return len(e.queue) }

// Step fires the earliest pending event, advancing the clock to its time.
// It reports whether an event was fired.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(*Event)
	e.clock.AdvanceTo(ev.When)
	ev.Fire()
	return true
}

// Run fires events until the queue is empty and returns the number fired.
func (e *Engine) Run() int {
	n := 0
	for e.Step() {
		n++
	}
	return n
}

// RunUntil fires events with When <= deadline, advancing the clock to at
// most deadline, and returns the number fired. If the queue drains first,
// the clock is still advanced to the deadline.
func (e *Engine) RunUntil(deadline Time) int {
	n := 0
	for len(e.queue) > 0 && e.queue[0].When <= deadline {
		e.Step()
		n++
	}
	if e.clock.Now() < deadline {
		e.clock.AdvanceTo(deadline)
	}
	return n
}
