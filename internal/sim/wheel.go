package sim

import (
	"container/heap"
	"fmt"
	"math/bits"
)

// Queue is the scheduling seam shared by the two event engines: the
// hierarchical timer Wheel (the production engine) and the binary-heap
// Engine (the reference implementation, kept compiled-in for differential
// testing, mirroring the cache.Sim fast/reference split).
//
// Both engines guarantee the same contract: events fire in (When, schedule
// order) — strictly increasing time, FIFO within a tick — and the clock
// advances exactly to each fired event's When.
type Queue interface {
	Now() Time
	Clock() *Clock
	Schedule(d Duration, fn func()) *Event
	ScheduleAt(t Time, fn func()) *Event
	Cancel(ev *Event)
	Pending() int
	Step() bool
	Run() int
	RunUntil(deadline Time) int
}

var (
	_ Queue = (*Engine)(nil)
	_ Queue = (*Wheel)(nil)
)

// Timer-wheel geometry: wheelLevels levels of 64 slots each, one tick per
// virtual nanosecond. Level k spans deltas in [64^k, 64^(k+1)); events
// beyond the horizon (64^wheelLevels ticks ≈ 68.7 virtual seconds) wait in
// an overflow heap and migrate into the wheel as the cursor approaches.
const (
	wheelBits   = 6
	wheelSlots  = 1 << wheelBits // 64
	wheelMask   = wheelSlots - 1
	wheelLevels = 6
	// wheelHorizon is the largest delta (exclusive) the wheel proper can
	// hold: 64^wheelLevels ticks.
	wheelHorizon = int64(1) << (wheelBits * wheelLevels)
)

// evList is an intrusive doubly-linked FIFO of events, used for wheel
// slots and the same-tick run queue. Intrusive links make Cancel O(1)
// without any per-node allocation.
type evList struct {
	head, tail *Event
}

func (l *evList) pushBack(e *Event) {
	e.next = nil
	e.prev = l.tail
	if l.tail == nil {
		l.head = e
	} else {
		l.tail.next = e
	}
	l.tail = e
}

// pushSorted inserts e keeping the list ascending by seq. Fresh
// schedules carry the largest seq yet issued and append in O(1); only
// events cascading down from a higher wheel level (which are always
// older than direct residents) walk backwards past younger entries, so
// every slot list stays in global schedule order and same-tick FIFO is
// preserved end to end.
func (l *evList) pushSorted(e *Event) {
	at := l.tail
	for at != nil && at.seq > e.seq {
		at = at.prev
	}
	l.insertAfter(at, e)
}

// pushSortedWhen inserts e keeping the list ascending by (When, seq) —
// the run-queue order. In the steady state every run-queue event shares
// the cursor tick and fresh arrivals carry the largest seq, so this
// appends in O(1); the walk only triggers for events scheduled earlier
// than a cursor that ran ahead of the clock (RunUntil stopping short of
// the next event).
func (l *evList) pushSortedWhen(e *Event) {
	at := l.tail
	for at != nil && (at.When > e.When || (at.When == e.When && at.seq > e.seq)) {
		at = at.prev
	}
	l.insertAfter(at, e)
}

// insertAfter splices e in after at (at == nil means the front).
func (l *evList) insertAfter(at, e *Event) {
	if at == nil {
		e.prev = nil
		e.next = l.head
		if l.head == nil {
			l.tail = e
		} else {
			l.head.prev = e
		}
		l.head = e
		return
	}
	e.prev = at
	e.next = at.next
	if at.next == nil {
		l.tail = e
	} else {
		at.next.prev = e
	}
	at.next = e
}

func (l *evList) remove(e *Event) {
	if e.prev == nil {
		l.head = e.next
	} else {
		e.prev.next = e.next
	}
	if e.next == nil {
		l.tail = e.prev
	} else {
		e.next.prev = e.prev
	}
	e.next, e.prev = nil, nil
}

// take empties the list and returns its head; the caller walks the chain
// via next pointers.
func (l *evList) take() *Event {
	h := l.head
	l.head, l.tail = nil, nil
	return h
}

// Wheel is the production discrete-event engine: a hierarchical timer
// wheel with a same-tick FIFO run queue and slab-recycled events. It is a
// drop-in replacement for the reference Engine with identical firing
// semantics (certified by the seeded differential tests in wheel_test.go)
// but O(1) schedule/cancel and no steady-state allocation.
//
// Event handles returned by Schedule are recycled after the event fires
// or is cancelled; callers must not retain a handle past that point
// (Cancel of a dead handle is a no-op until the slot is reused). The
// reference Engine never recycles and has no such restriction.
//
// The zero value is ready to use.
type Wheel struct {
	clock Clock
	seq   uint64
	// cur is the cursor tick: the virtual time the wheel's slot geometry
	// is anchored to. Between steps cur equals the clock; during the
	// next-event search it advances ahead of the clock, never past the
	// earliest pending event.
	cur     int64
	pending int

	occupied [wheelLevels]uint64
	slots    [wheelLevels][wheelSlots]evList

	// runq holds events due exactly at the cursor tick, in schedule
	// order; same-timestamp events are dispatched from it back to back
	// without re-searching the wheel.
	runq evList

	// overflow holds events beyond the wheel horizon, ordered by
	// (When, seq).
	overflow eventHeap

	// free is the recycled-event list; slabs are allocated in chunks so
	// steady-state scheduling does one allocation per wheelSlabSize
	// events at most.
	free *Event
}

// wheelSlabSize is the number of events allocated per slab.
const wheelSlabSize = 128

// NewWheel returns a new timer-wheel engine with its clock at T+0.
func NewWheel() *Wheel { return &Wheel{} }

// Now returns the engine's current virtual time.
func (w *Wheel) Now() Time { return w.clock.Now() }

// Clock exposes the engine's clock for components that advance time
// directly.
func (w *Wheel) Clock() *Clock { return &w.clock }

// Pending returns the number of events waiting to fire.
func (w *Wheel) Pending() int { return w.pending }

// alloc returns a recycled or freshly slab-allocated event.
func (w *Wheel) alloc() *Event {
	if w.free == nil {
		slab := make([]Event, wheelSlabSize)
		for i := range slab {
			slab[i].next = w.free
			w.free = &slab[i]
		}
	}
	e := w.free
	w.free = e.next
	e.next = nil
	return e
}

// recycle returns a dead event to the free list.
func (w *Wheel) recycle(e *Event) {
	e.Fire = nil
	e.prev = nil
	e.where = locNone
	e.next = w.free
	w.free = e
}

// Schedule enqueues fn to run after delay d. It returns the event so the
// caller may cancel it. A negative delay panics.
func (w *Wheel) Schedule(d Duration, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative event delay %v", d))
	}
	return w.ScheduleAt(w.clock.Now().Add(d), fn)
}

// ScheduleAt enqueues fn to run at time t. Scheduling in the past panics.
func (w *Wheel) ScheduleAt(t Time, fn func()) *Event {
	if t < w.clock.Now() {
		panic(fmt.Sprintf("sim: scheduling event in the past: at %v, asked for %v", w.clock.Now(), t))
	}
	w.syncClock()
	// Migrate due overflow events first so that same-slot FIFO order
	// stays global schedule order: anything already scheduled for a slot
	// must land in it before this (younger) event does.
	w.drainOverflow()
	e := w.alloc()
	e.When = t
	e.Fire = fn
	e.seq = w.seq
	w.seq++
	w.insert(e)
	w.pending++
	return e
}

// insert places e into the run queue, a wheel slot, or the overflow heap
// according to its delta from the cursor.
func (w *Wheel) insert(e *Event) {
	delta := int64(e.When) - w.cur
	if delta <= 0 {
		// Due at the cursor tick — or before it, when the cursor ran
		// ahead of the clock (RunUntil stopping short of the next
		// event); the sorted insert keeps the run queue in global
		// (When, seq) order either way.
		e.where = locRunq
		w.runq.pushSortedWhen(e)
		return
	}
	if delta >= wheelHorizon {
		e.where = locOverflow
		heap.Push(&w.overflow, e)
		return
	}
	// Level k holds deltas in [64^k, 64^(k+1)): k indexes the top set
	// 6-bit group of the delta.
	lvl := uint8((63 - bits.LeadingZeros64(uint64(delta))) / wheelBits)
	slot := uint8((int64(e.When) >> (wheelBits * lvl)) & wheelMask)
	e.where = locSlot
	e.level = lvl
	e.slot = slot
	w.slots[lvl][slot].pushSorted(e)
	w.occupied[lvl] |= 1 << slot
}

// Cancel removes a pending event. Cancelling an event that has already
// fired or been cancelled is a no-op (but see the handle-lifetime note on
// Wheel: dead handles are recycled).
func (w *Wheel) Cancel(e *Event) {
	if e == nil || e.where == locNone {
		return
	}
	switch e.where {
	case locSlot:
		l := &w.slots[e.level][e.slot]
		l.remove(e)
		if l.head == nil {
			w.occupied[e.level] &^= 1 << e.slot
		}
	case locRunq:
		w.runq.remove(e)
	case locOverflow:
		heap.Remove(&w.overflow, e.index)
	}
	e.where = locNone
	w.pending--
	w.recycle(e)
}

// syncClock catches the cursor up when the clock was advanced directly
// (through Clock()) between steps.
func (w *Wheel) syncClock() {
	if now := int64(w.clock.Now()); now > w.cur {
		w.advanceCursorTo(now)
	}
}

// drainOverflow migrates overflow events that have come within the
// horizon into the wheel, in (When, seq) order.
func (w *Wheel) drainOverflow() {
	for len(w.overflow) > 0 && int64(w.overflow[0].When)-w.cur < wheelHorizon {
		e := heap.Pop(&w.overflow).(*Event)
		w.insert(e)
	}
}

// advanceCursorTo moves the cursor to tick t and cascades the slots the
// cursor now points at, re-homing their events to lower levels (or the
// run queue, for events due exactly at t). Cascading runs from the
// highest level down so that same-tick events enter the run queue in
// schedule order: an event scheduled later always sits at an equal or
// lower level than an earlier one with the same When, because the
// cursor only ever moves toward the deadline.
func (w *Wheel) advanceCursorTo(t int64) {
	w.cur = t
	for lvl := wheelLevels - 1; lvl >= 1; lvl-- {
		slot := (t >> (wheelBits * uint(lvl))) & wheelMask
		if w.occupied[lvl]&(1<<uint(slot)) == 0 {
			continue
		}
		w.occupied[lvl] &^= 1 << uint(slot)
		for e := w.slots[lvl][slot].take(); e != nil; {
			next := e.next
			e.next, e.prev = nil, nil
			w.insert(e)
			e = next
		}
	}
	// Level-0 events due exactly at t move to the run queue.
	slot := t & wheelMask
	if w.occupied[0]&(1<<uint(slot)) != 0 {
		l := &w.slots[0][slot]
		if l.head != nil && l.head.When == Time(t) {
			// A level-0 slot only ever holds a single When (see
			// bestCandidate), so the whole list moves.
			w.occupied[0] &^= 1 << uint(slot)
			for e := l.take(); e != nil; {
				next := e.next
				e.next, e.prev = nil, nil
				e.where = locRunq
				w.runq.pushSortedWhen(e)
				e = next
			}
		}
	}
}

// bestCandidate returns the earliest tick at which a wheel event may be
// due: the minimum slot-base tick over all occupied slots. It never
// exceeds the earliest pending event's When (every event's When is at or
// after its slot base).
//
// Slot positions relative to the cursor decode as follows. With
// ck = cursor slot at level k: a slot s > ck belongs to the current
// level-k epoch; s <= ck belongs to the next (for k = 0 the cursor slot
// itself is always empty — tick-cur events live in the run queue — and
// for k >= 1 an event in the cursor slot can only be a next-epoch event,
// because current-epoch cursor-slot events are cascaded away whenever the
// cursor moves).
func (w *Wheel) bestCandidate() int64 {
	best := int64(-1)
	for lvl := 0; lvl < wheelLevels; lvl++ {
		occ := w.occupied[lvl]
		if occ == 0 {
			continue
		}
		shift := wheelBits * uint(lvl)
		ck := uint((w.cur >> shift) & wheelMask)
		epoch := w.cur >> (shift + wheelBits)
		var s uint
		if hi := occ >> ck >> 1; hi != 0 {
			s = ck + 1 + uint(bits.TrailingZeros64(hi))
		} else {
			s = uint(bits.TrailingZeros64(occ))
			epoch++
		}
		base := ((epoch << wheelBits) | int64(s)) << shift
		if best < 0 || base < best {
			best = base
		}
	}
	return best
}

// wheelOccupied reports whether any wheel slot holds events.
func (w *Wheel) wheelOccupied() bool {
	for lvl := 0; lvl < wheelLevels; lvl++ {
		if w.occupied[lvl] != 0 {
			return true
		}
	}
	return false
}

// findNext advances the cursor until the next due event heads the run
// queue and returns it without popping, or returns nil when no events
// are pending. The cursor never overshoots a pending event, so the loop
// refines toward the true minimum: each iteration either surfaces run
// queue work or strictly advances the cursor to the smallest possible
// slot base.
func (w *Wheel) findNext() *Event {
	w.syncClock()
	for {
		w.drainOverflow()
		if w.runq.head != nil {
			return w.runq.head
		}
		if !w.wheelOccupied() {
			if len(w.overflow) == 0 {
				return nil
			}
			// Everything pending is past the horizon: jump straight to
			// the earliest overflow event; the drain at the top of the
			// loop then lands it in the run queue.
			w.advanceCursorTo(int64(w.overflow[0].When))
			continue
		}
		w.advanceCursorTo(w.bestCandidate())
	}
}

// Step fires the earliest pending event, advancing the clock to its
// time. It reports whether an event was fired.
func (w *Wheel) Step() bool {
	e := w.findNext()
	if e == nil {
		return false
	}
	w.runq.remove(e)
	e.where = locNone
	w.pending--
	w.clock.AdvanceTo(e.When)
	fn := e.Fire
	fn()
	// Recycle after the callback so a callback never observes its own
	// event's slot being reused mid-fire.
	w.recycle(e)
	return true
}

// Run fires events until none remain and returns the number fired.
func (w *Wheel) Run() int {
	n := 0
	for w.Step() {
		n++
	}
	return n
}

// RunUntil fires events with When <= deadline, advancing the clock to at
// most deadline, and returns the number fired. If the queue drains
// first, the clock is still advanced to the deadline.
func (w *Wheel) RunUntil(deadline Time) int {
	n := 0
	for {
		e := w.findNext()
		if e == nil || e.When > deadline {
			break
		}
		w.Step()
		n++
	}
	if w.clock.Now() < deadline {
		w.clock.AdvanceTo(deadline)
		// The cursor catches up lazily via syncClock on the next call;
		// it may already be ahead of the deadline and must never move
		// backwards.
	}
	return n
}
