// Package sim provides the discrete-event simulation substrate used by every
// model in this repository: a virtual time type, a monotonic virtual clock,
// an event queue, and a deterministic random number generator.
//
// All models in this repository run entirely in virtual time. Nothing ever
// consults the wall clock, so a simulation's outcome is a pure function of
// its inputs and its RNG seed.
package sim

import (
	"fmt"
	"time"
)

// Time is a point in virtual time, measured in nanoseconds from the start of
// the simulation. It is deliberately distinct from time.Time: simulated time
// has no epoch, no time zone, and never advances on its own.
type Time int64

// Duration is a span of virtual time in nanoseconds. It converts freely to
// and from time.Duration (which has the same representation) at API
// boundaries, but models use sim.Duration so that accidental mixing with
// wall-clock durations is visible in signatures.
type Duration int64

// Common durations.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Add returns the time t+d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Std converts a virtual duration to a standard library duration for
// formatting and interoperability.
func (d Duration) Std() time.Duration { return time.Duration(d) }

// Seconds returns the duration as a floating-point number of seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Microseconds returns the duration as a floating-point number of
// microseconds. Most of the paper's tables are reported in microseconds.
func (d Duration) Microseconds() float64 { return float64(d) / float64(Microsecond) }

// Milliseconds returns the duration as a floating-point number of
// milliseconds.
func (d Duration) Milliseconds() float64 { return float64(d) / float64(Millisecond) }

// String formats the duration like time.Duration.
func (d Duration) String() string { return d.Std().String() }

// String formats the time as a duration since simulation start.
func (t Time) String() string { return fmt.Sprintf("T+%s", time.Duration(t)) }

// DurationOf converts a standard library duration to a virtual duration.
func DurationOf(d time.Duration) Duration { return Duration(d) }

// Clock is a monotonic virtual clock. The zero value is a clock at T+0.
//
// Clock is not safe for concurrent use; the simulation frameworks in this
// repository are single-threaded by design (determinism is a requirement,
// see DESIGN.md §7).
type Clock struct {
	now Time
}

// Now returns the current virtual time.
func (c *Clock) Now() Time { return c.now }

// Advance moves the clock forward by d. Advancing by a negative duration
// panics: virtual time is monotonic, and a negative advance is always a
// model bug.
func (c *Clock) Advance(d Duration) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative clock advance %v", d))
	}
	c.now += Time(d)
}

// AdvanceTo moves the clock forward to t. Moving backwards panics.
func (c *Clock) AdvanceTo(t Time) {
	if t < c.now {
		panic(fmt.Sprintf("sim: clock moving backwards: at %v, asked for %v", c.now, t))
	}
	c.now = t
}

// Reset returns the clock to T+0.
func (c *Clock) Reset() { c.now = 0 }
