package cli

import (
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/sim"
)

// N clients hitting the same cold endpoint concurrently must observe
// exactly one computation (the memo table's single-flight) and identical
// SHA-256 ETags. Run under -race this also exercises the handler's
// concurrency safety.
func TestServeConcurrentColdRequestsSingleFlight(t *testing.T) {
	cfg := core.DefaultConfig()
	opts := cmdOpts{
		baseline: "base.json",
		window:   sim.Duration(100 * time.Millisecond),
		clients:  500,
	}
	h := newServeHandler(cfg, core.NewRunner(1), opts,
		func(path string) ([]byte, error) { return nil, http.ErrMissingFile })
	srv := httptest.NewServer(h)
	defer srv.Close()

	const n = 8
	var wg sync.WaitGroup
	etags := make([]string, n)
	codes := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Get(srv.URL + "/api/exemplars/S1")
			if err != nil {
				return
			}
			resp.Body.Close()
			codes[i] = resp.StatusCode
			etags[i] = resp.Header.Get("ETag")
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if codes[i] != http.StatusOK {
			t.Fatalf("client %d: status %d", i, codes[i])
		}
		if etags[i] == "" || etags[i] != etags[0] {
			t.Fatalf("client %d: etag %q differs from %q", i, etags[i], etags[0])
		}
	}
	if got := h.computes.Load(); got != 1 {
		t.Fatalf("cold endpoint computed %d times under %d concurrent clients, want 1", got, n)
	}
}
