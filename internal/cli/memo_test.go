package cli

import (
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// memoArgs is the fixed command both halves of the cold/warm comparisons
// run: a cross-section of exhibit kinds (table, mem-model figure,
// ablation) at a reduced run count.
var memoArgs = []string{"-runs", "3", "run", "T2", "F3", "A1", "-stats"}

// TestMemoColdWarmByteIdentical is the persistent-memo contract end to
// end: a cold run fills the store, a warm run is served from it with
// every experiment a hit, and the two renders — plus a storeless run —
// are byte-identical.
func TestMemoColdWarmByteIdentical(t *testing.T) {
	dir := t.TempDir()
	plain, plainOut, _, _ := testApp()
	if code := plain.Execute(memoArgs); code != 0 {
		t.Fatalf("plain exit = %d", code)
	}
	cold, coldOut, coldErr, _ := testApp()
	if code := cold.Execute(append([]string{"-memo", dir}, memoArgs...)); code != 0 {
		t.Fatalf("cold exit = %d: %s", code, coldErr.String())
	}
	warm, warmOut, warmErr, _ := testApp()
	if code := warm.Execute(append([]string{"-memo", dir}, memoArgs...)); code != 0 {
		t.Fatalf("warm exit = %d: %s", code, warmErr.String())
	}
	if coldOut.String() != plainOut.String() {
		t.Fatal("attaching -memo changed the cold run's stdout")
	}
	if warmOut.String() != coldOut.String() {
		t.Fatal("warm (memoized) stdout differs from cold stdout")
	}
	if !strings.Contains(coldErr.String(), "memo store: 0 hits, 3 misses") {
		t.Errorf("cold stats missing store misses:\n%s", coldErr.String())
	}
	if !strings.Contains(warmErr.String(), "memo store: 3 hits, 0 misses") {
		t.Errorf("warm stats missing store hits:\n%s", warmErr.String())
	}
}

// TestMemoKeyedBySeed: a different seed must miss a store warmed under
// the default seed — the key carries every result-determining input.
func TestMemoKeyedBySeed(t *testing.T) {
	dir := t.TempDir()
	warmup, _, _, _ := testApp()
	if code := warmup.Execute(append([]string{"-memo", dir}, memoArgs...)); code != 0 {
		t.Fatalf("warmup exit = %d", code)
	}
	other, _, otherErr, _ := testApp()
	if code := other.Execute(append([]string{"-memo", dir, "-seed", "2"}, memoArgs...)); code != 0 {
		t.Fatalf("seed-2 exit = %d", code)
	}
	if !strings.Contains(otherErr.String(), "memo store: 0 hits, 3 misses") {
		t.Errorf("seed change did not miss the store:\n%s", otherErr.String())
	}
}

// TestMemoCorruptEntryRecomputes: flipping one stored entry to garbage
// must degrade to a recompute (reported stale) with byte-identical
// output, never an error.
func TestMemoCorruptEntryRecomputes(t *testing.T) {
	dir := t.TempDir()
	cold, coldOut, _, _ := testApp()
	if code := cold.Execute(append([]string{"-memo", dir}, memoArgs...)); code != 0 {
		t.Fatalf("cold exit = %d", code)
	}
	var victim string
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err == nil && !d.IsDir() && victim == "" {
			victim = path
		}
		return err
	})
	if err != nil || victim == "" {
		t.Fatalf("no store entry found (err %v)", err)
	}
	if err := os.WriteFile(victim, []byte("garbage{"), 0o644); err != nil {
		t.Fatal(err)
	}
	warm, warmOut, warmErr, _ := testApp()
	if code := warm.Execute(append([]string{"-memo", dir}, memoArgs...)); code != 0 {
		t.Fatalf("warm exit = %d: %s", code, warmErr.String())
	}
	if warmOut.String() != coldOut.String() {
		t.Fatal("corrupt entry changed the output")
	}
	if !strings.Contains(warmErr.String(), "memo store: 2 hits, 1 misses (1 stale), 1 entries written") {
		t.Errorf("stats did not report the stale recompute:\n%s", warmErr.String())
	}
}

// TestMemoRejectedForNonRunnerCommands mirrors the -faults/-plan guards:
// -memo only applies to the runner family.
func TestMemoRejectedForNonRunnerCommands(t *testing.T) {
	a, _, errb, _ := testApp()
	if code := a.Execute([]string{"-memo", t.TempDir(), "check"}); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "-memo does not apply") {
		t.Errorf("missing guard message:\n%s", errb.String())
	}
}
