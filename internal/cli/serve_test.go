package cli

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/sim"
)

// serveFixture builds the HTTP handler under test: small client
// population so the S probes stay cheap, in-memory baseline file.
func serveFixture(t *testing.T, files map[string][]byte) *httptest.Server {
	t.Helper()
	cfg := core.DefaultConfig()
	opts := cmdOpts{
		baseline: "base.json",
		window:   sim.Duration(100 * time.Millisecond),
		clients:  2000,
	}
	readFile := func(path string) ([]byte, error) {
		if b, ok := files[path]; ok {
			return b, nil
		}
		return nil, fmt.Errorf("no file %s", path)
	}
	srv := httptest.NewServer(newServeHandler(cfg, core.NewRunner(1), opts, readFile))
	t.Cleanup(srv.Close)
	return srv
}

func get(t *testing.T, url string, hdr map[string]string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

func TestServeExperimentsEndpoint(t *testing.T) {
	srv := serveFixture(t, nil)
	resp, body := get(t, srv.URL+"/api/experiments", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var list []struct {
		ID      string `json:"id"`
		Title   string `json:"title"`
		Sampled bool   `json:"sampled"`
	}
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatalf("experiments is not JSON: %v", err)
	}
	found := false
	for _, e := range list {
		if e.ID == "S1" {
			found = true
			if !e.Sampled {
				t.Error("S1 should be sampled")
			}
			if e.Title == "" {
				t.Error("S1 title missing")
			}
		}
	}
	if !found {
		t.Fatalf("S1 missing from experiments: %s", body)
	}
}

func TestServeMetricsPrometheusWithETag(t *testing.T) {
	srv := serveFixture(t, nil)
	resp, body := get(t, srv.URL+"/api/metrics/F1", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	text := string(body)
	if !strings.Contains(text, "pentiumbench_") || !strings.Contains(text, `experiment="F1"`) {
		t.Fatalf("not Prometheus exposition:\n%.300s", text)
	}
	if strings.Contains(text, "pentiumbench_runner_") {
		t.Error("runner self-metrics must be excluded (nondeterministic ETag)")
	}
	// Every sample line must scan as name{labels} value, and every name
	// must stay within the Prometheus metric-name grammar. HELP/TYPE
	// comment lines are part of the exposition format and skipped.
	for _, line := range strings.Split(strings.TrimSpace(text), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		brace := strings.Index(line, "{")
		if brace < 1 || !strings.Contains(line, `"} `) {
			t.Fatalf("malformed exposition line %q", line)
		}
		for _, r := range line[:brace] {
			ok := r == '_' || r == ':' || (r >= 'a' && r <= 'z') ||
				(r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9')
			if !ok {
				t.Fatalf("metric name %q has illegal rune %q", line[:brace], r)
			}
		}
	}
	etag := resp.Header.Get("ETag")
	if !strings.HasPrefix(etag, `"sha256-`) {
		t.Fatalf("ETag = %q, want sha256 content hash", etag)
	}

	// A matching If-None-Match must turn into an empty 304.
	resp2, body2 := get(t, srv.URL+"/api/metrics/F1", map[string]string{"If-None-Match": etag})
	if resp2.StatusCode != http.StatusNotModified {
		t.Fatalf("revalidation status = %d, want 304", resp2.StatusCode)
	}
	if len(body2) != 0 {
		t.Fatalf("304 carried a body: %q", body2)
	}

	// A stale tag must get the full response again, same hash.
	resp3, _ := get(t, srv.URL+"/api/metrics/F1", map[string]string{"If-None-Match": `"sha256-stale"`})
	if resp3.StatusCode != http.StatusOK || resp3.Header.Get("ETag") != etag {
		t.Fatalf("stale revalidation: status %d etag %q", resp3.StatusCode, resp3.Header.Get("ETag"))
	}
}

// The scale probes expose their full latency histogram as a real
// Prometheus histogram family: HELP/TYPE header, cumulative le buckets
// on the stats.Histogram boundaries, +Inf, _sum and _count.
func TestServeMetricsHistogramExposition(t *testing.T) {
	srv := serveFixture(t, nil)
	resp, body := get(t, srv.URL+"/api/metrics/S1", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	text := string(body)
	for _, want := range []string{
		"# HELP pentiumbench_nfs_latency_ns ",
		"# TYPE pentiumbench_nfs_latency_ns histogram",
		`pentiumbench_nfs_latency_ns_bucket{experiment="S1"`,
		`le="+Inf"`,
		"pentiumbench_nfs_latency_ns_sum{",
		"pentiumbench_nfs_latency_ns_count{",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%.400s", want, text)
		}
	}
	// Buckets must be cumulative per series: non-decreasing counts, and
	// the +Inf bucket equal to the family count.
	last := map[string]int64{}
	inf := map[string]int64{}
	count := map[string]int64{}
	for _, line := range strings.Split(strings.TrimSpace(text), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		name, rest, _ := strings.Cut(line, "{")
		labels, valText, ok := strings.Cut(rest, "} ")
		if !ok {
			t.Fatalf("malformed line %q", line)
		}
		var v int64
		fmt.Sscanf(valText, "%d", &v)
		sys := labels[:strings.LastIndex(labels, ",le=")+1]
		switch {
		case name == "pentiumbench_nfs_latency_ns_bucket" && strings.Contains(labels, `le="+Inf"`):
			inf[sys] = v
		case name == "pentiumbench_nfs_latency_ns_bucket":
			if v < last[sys] {
				t.Fatalf("bucket counts not cumulative at %q", line)
			}
			last[sys] = v
		case name == "pentiumbench_nfs_latency_ns_count":
			count[labels] = v
		}
	}
	if len(inf) == 0 || len(count) == 0 {
		t.Fatal("no histogram series parsed")
	}
	for sys, n := range inf {
		if fin := last[sys]; fin > n {
			t.Fatalf("finite buckets (%d) exceed +Inf (%d) for %q", fin, n, sys)
		}
	}
}

func TestServeTimeseriesEndpoint(t *testing.T) {
	srv := serveFixture(t, nil)
	resp, body := get(t, srv.URL+"/api/timeseries/F1", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	var runs []struct {
		Experiment string `json:"experiment"`
		System     string `json:"system"`
		Series     struct {
			WidthNs int64 `json:"width_ns"`
			Windows int   `json:"windows"`
		} `json:"series"`
	}
	if err := json.Unmarshal(body, &runs); err != nil {
		t.Fatalf("timeseries is not JSON: %v", err)
	}
	if len(runs) == 0 {
		t.Fatal("no sampled runs")
	}
	for _, r := range runs {
		if r.Experiment != "F1" || r.Series.Windows <= 0 || r.Series.WidthNs <= 0 {
			t.Fatalf("bad run %+v", r)
		}
	}

	// An observable-but-unsampled id is a 404, not an empty series.
	resp2, _ := get(t, srv.URL+"/api/timeseries/T2", nil)
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("unsampled id status = %d, want 404", resp2.StatusCode)
	}
}

func TestServeTraceAndProfileEndpoints(t *testing.T) {
	srv := serveFixture(t, nil)
	resp, body := get(t, srv.URL+"/api/trace/F12", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace status = %d", resp.StatusCode)
	}
	var events []map[string]any
	if err := json.Unmarshal(body, &events); err != nil || len(events) == 0 {
		t.Fatalf("trace is not a chrome event array (%d events): %v", len(events), err)
	}

	resp, body = get(t, srv.URL+"/api/profile/F12", nil)
	if resp.StatusCode != http.StatusOK || len(body) == 0 {
		t.Fatalf("folded profile: status %d, %d bytes", resp.StatusCode, len(body))
	}
	if !strings.Contains(string(body), ";") {
		t.Fatalf("folded stacks missing frame separators:\n%.200s", body)
	}

	resp, body = get(t, srv.URL+"/api/profile/F12?format=pprof", nil)
	if resp.StatusCode != http.StatusOK || len(body) == 0 {
		t.Fatalf("pprof profile: status %d, %d bytes", resp.StatusCode, len(body))
	}

	resp, _ = get(t, srv.URL+"/api/profile/F12?format=yaml", nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad format status = %d, want 400", resp.StatusCode)
	}
}

// The exemplar endpoint returns every sampled request's lifecycle with
// phases that sum exactly to its recorded latency.
func TestServeExemplarsEndpoint(t *testing.T) {
	srv := serveFixture(t, nil)
	resp, body := get(t, srv.URL+"/api/exemplars/S1", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	var runs []struct {
		Experiment string `json:"experiment"`
		System     string `json:"system"`
		ExemplarK  int    `json:"exemplar_k"`
		Windows    []struct {
			Window    int `json:"window"`
			Exemplars []struct {
				ID        uint64 `json:"id"`
				Shed      bool   `json:"shed"`
				WireNs    int64  `json:"wire_ns"`
				RTONs     int64  `json:"rto_ns"`
				QueueNs   int64  `json:"queue_ns"`
				CPUNs     int64  `json:"cpu_ns"`
				DiskWait  int64  `json:"disk_wait_ns"`
				DiskNs    int64  `json:"disk_ns"`
				LatencyNs int64  `json:"latency_ns"`
			} `json:"exemplars"`
		} `json:"windows"`
	}
	if err := json.Unmarshal(body, &runs); err != nil {
		t.Fatalf("exemplars is not JSON: %v", err)
	}
	if len(runs) == 0 {
		t.Fatal("no exemplar runs")
	}
	seen := 0
	for _, r := range runs {
		if r.Experiment != "S1" || r.ExemplarK != 4 {
			t.Fatalf("bad run header %+v", r)
		}
		for _, w := range r.Windows {
			if len(w.Exemplars) == 0 || len(w.Exemplars) > r.ExemplarK {
				t.Fatalf("window %d holds %d exemplars, want 1..%d", w.Window, len(w.Exemplars), r.ExemplarK)
			}
			for _, e := range w.Exemplars {
				seen++
				sum := e.WireNs + e.RTONs + e.QueueNs + e.CPUNs + e.DiskWait + e.DiskNs
				if sum != e.LatencyNs {
					t.Fatalf("req %d phases sum to %d, latency %d", e.ID, sum, e.LatencyNs)
				}
			}
		}
	}
	if seen == 0 {
		t.Fatal("no exemplars in any window")
	}

	// Probes without exemplar instrumentation are a 404.
	resp2, _ := get(t, srv.URL+"/api/exemplars/F1", nil)
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("uninstrumented id status = %d, want 404", resp2.StatusCode)
	}
}

// The audit endpoint returns a clean machine-readable verdict for the
// exhibited scale probes.
func TestServeAuditEndpoint(t *testing.T) {
	srv := serveFixture(t, nil)
	resp, body := get(t, srv.URL+"/api/audit/S1", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	var verdict struct {
		ID      string `json:"id"`
		OK      bool   `json:"ok"`
		Reports []struct {
			System    string `json:"system"`
			Evaluated int    `json:"evaluated"`
			Failed    int    `json:"failed"`
		} `json:"reports"`
	}
	if err := json.Unmarshal(body, &verdict); err != nil {
		t.Fatalf("audit is not JSON: %v", err)
	}
	if verdict.ID != "S1" || !verdict.OK || len(verdict.Reports) == 0 {
		t.Fatalf("bad verdict: %s", body)
	}
	for _, rep := range verdict.Reports {
		if rep.Failed != 0 || rep.Evaluated < 20 {
			t.Fatalf("report %s: failed=%d evaluated=%d", rep.System, rep.Failed, rep.Evaluated)
		}
	}

	resp2, _ := get(t, srv.URL+"/api/audit/F1", nil)
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("unauditable id status = %d, want 404", resp2.StatusCode)
	}
}

func TestServeBaselineDiff(t *testing.T) {
	// Record a baseline from the same deterministic engine the server
	// will re-run: the diff must come back clean.
	cfg := core.DefaultConfig()
	suite, err := core.NewRunner(1).Observe(cfg, []string{"F1"}, core.ObserveOpts{})
	if err != nil {
		t.Fatal(err)
	}
	data, err := baseline.FromSuite([]string{"F1"}, cfg.Seed, suite).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	srv := serveFixture(t, map[string][]byte{"base.json": data})
	resp, body := get(t, srv.URL+"/api/baseline/diff", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	var diff struct {
		OK         bool   `json:"ok"`
		Compared   int    `json:"compared"`
		Seed       uint64 `json:"seed"`
		Violations []baseline.Violation
	}
	if err := json.Unmarshal(body, &diff); err != nil {
		t.Fatalf("diff is not JSON: %v", err)
	}
	if !diff.OK || diff.Compared == 0 {
		t.Fatalf("self-diff should be clean: %+v", diff)
	}
}

func TestServeBaselineDiffMissingFile(t *testing.T) {
	srv := serveFixture(t, nil)
	resp, body := get(t, srv.URL+"/api/baseline/diff", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want 404: %s", resp.StatusCode, body)
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
		t.Fatalf("error body malformed: %s", body)
	}
}

func TestServeUnknownExperiment(t *testing.T) {
	srv := serveFixture(t, nil)
	for _, path := range []string{"/api/metrics/F99", "/api/metrics/", "/api/trace/F1/extra"} {
		resp, body := get(t, srv.URL+path, nil)
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s status = %d, want 404: %s", path, resp.StatusCode, body)
		}
	}
}

func TestServeMethodNotAllowed(t *testing.T) {
	srv := serveFixture(t, nil)
	resp, err := http.Post(srv.URL+"/api/experiments", "text/plain", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST status = %d, want 405", resp.StatusCode)
	}
}

func TestServeCommandBadAddr(t *testing.T) {
	a, _, errb, _ := testApp()
	if code := a.Execute([]string{"-addr", "256.256.256.256:0", "serve"}); code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	if errb.Len() == 0 {
		t.Fatal("listen error not reported")
	}
}
