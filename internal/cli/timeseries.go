package cli

import (
	"encoding/json"
	"fmt"
	"slices"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/report"
)

// timeseries runs the sampled observability probes and emits their
// virtual-time series: -format=csv (default) a long-format table,
// -format=json the full snapshots (windowed histogram quantiles
// included), -format=svg one small-multiple timeline figure per
// experiment into -out. The output is deterministic: virtual-time
// windows, per-run samplers, input-order merging — byte-identical at
// any -j.
func (a *App) timeseries(cfg core.Config, runner *core.Runner, ids []string,
	opts core.ObserveOpts, format, outDir string) int {
	sampled := core.SampledIDs()
	if len(ids) == 0 {
		fmt.Fprintf(a.Stderr, "pentiumbench: timeseries needs experiment ids or 'all' (sampled: %v)\n", sampled)
		return 2
	}
	if len(ids) == 1 && ids[0] == "all" {
		ids = sampled
	}
	for _, id := range ids {
		if !slices.Contains(sampled, id) {
			fmt.Fprintf(a.Stderr, "pentiumbench: %q has no time-series instrumentation (sampled: %v)\n", id, sampled)
			return 2
		}
	}
	if opts.Window <= 0 {
		fmt.Fprintln(a.Stderr, "pentiumbench: -window must be a positive duration")
		return 2
	}
	suite, err := runner.Observe(cfg, ids, opts)
	if err != nil {
		fmt.Fprintln(a.Stderr, "pentiumbench:", err)
		return 2
	}
	switch format {
	case "csv", "":
		a.timeseriesCSV(suite)
	case "json":
		return a.timeseriesJSON(suite)
	case "svg":
		return a.timeseriesSVG(suite, outDir)
	default:
		fmt.Fprintf(a.Stderr, "pentiumbench: unknown timeseries format %q (want csv, json or svg)\n", format)
		return 2
	}
	return 0
}

// timeseriesCSV emits the long format: one row per (experiment, system,
// series, window), t_ns the window's virtual start time.
func (a *App) timeseriesCSV(suite *core.SuiteObservation) {
	fmt.Fprintln(a.Stdout, "experiment,system,series,t_ns,value")
	for _, o := range suite.Observations {
		for _, run := range o.Runs {
			if run.Series == nil {
				continue
			}
			for _, s := range run.Series.Flatten() {
				for w, v := range s.Values {
					fmt.Fprintf(a.Stdout, "%s,%s,%s,%d,%d\n",
						o.ID, run.Label, s.Name, int64(w)*run.Series.WidthNs, v)
				}
			}
		}
	}
}

// timeseriesJSON emits one object per sampled run, with the full
// snapshot (counters, gauges, windowed histogram summaries).
func (a *App) timeseriesJSON(suite *core.SuiteObservation) int {
	type runSeries struct {
		Experiment string          `json:"experiment"`
		System     string          `json:"system"`
		Series     *obs.TimeSeries `json:"series"`
	}
	out := []runSeries{}
	for _, o := range suite.Observations {
		for _, run := range o.Runs {
			if run.Series == nil {
				continue
			}
			out = append(out, runSeries{o.ID, run.Label, run.Series})
		}
	}
	enc := json.NewEncoder(a.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(a.Stderr, "pentiumbench:", err)
		return 1
	}
	return 0
}

// timeseriesSVG writes one timeline figure per experiment into dir.
func (a *App) timeseriesSVG(suite *core.SuiteObservation, dir string) int {
	if err := a.MkdirAll(dir, 0o755); err != nil {
		fmt.Fprintln(a.Stderr, "pentiumbench:", err)
		return 1
	}
	for _, o := range suite.Observations {
		var runs []report.TimelineRun
		for _, run := range o.Runs {
			if run.Series == nil {
				continue
			}
			flat := run.Series.Flatten()
			runs = append(runs, report.TimelineRun{
				Label:    run.Label,
				WidthNs:  run.Series.WidthNs,
				Series:   flat,
				Overload: overloadWindows(flat),
			})
		}
		path := fmt.Sprintf("%s/timeline-%s.svg", dir, o.ID)
		f, err := a.CreateFile(path)
		if err != nil {
			fmt.Fprintln(a.Stderr, "pentiumbench:", err)
			return 1
		}
		report.Timeline(f, o.ID, o.Title, runs)
		f.Close()
		fmt.Fprintln(a.Stdout, "wrote", path)
	}
	return 0
}

// overloadWindows marks the windows where the NFS server was saturated:
// queue drops (the queue was at capacity when a request landed) or
// sheds. Runs without those series — the kernel probes — mark nothing.
func overloadWindows(flat []obs.FlatSeries) []bool {
	var out []bool
	for _, s := range flat {
		if s.Name != "nfs.queue_drops" && s.Name != "nfs.shed" {
			continue
		}
		if len(s.Values) > len(out) {
			grown := make([]bool, len(s.Values))
			copy(grown, out)
			out = grown
		}
		for i, v := range s.Values {
			if v > 0 {
				out[i] = true
			}
		}
	}
	return out
}
