package cli

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestAuditCommandText(t *testing.T) {
	a, out, _, _ := testApp()
	if code := a.Execute([]string{"-clients", "500", "audit", "S1"}); code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	s := out.String()
	for _, want := range []string{"queueing-law audit", "verdict", "ok", "all invariants hold"} {
		if !strings.Contains(s, want) {
			t.Fatalf("audit output missing %q:\n%s", want, s)
		}
	}
	if strings.Contains(s, "FAIL") {
		t.Fatalf("clean run reported a failure:\n%s", s)
	}
}

func TestAuditCommandJSON(t *testing.T) {
	a, out, _, _ := testApp()
	if code := a.Execute([]string{"-clients", "500", "-format", "json", "audit", "S2"}); code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	var obsv []struct {
		ID      string
		Reports []struct {
			System    string `json:"system"`
			Evaluated int    `json:"evaluated"`
			Failed    int    `json:"failed"`
		}
	}
	if err := json.Unmarshal(out.Bytes(), &obsv); err != nil {
		t.Fatalf("audit json: %v", err)
	}
	if len(obsv) != 1 || obsv[0].ID != "S2" || len(obsv[0].Reports) == 0 {
		t.Fatalf("unexpected audit json shape: %+v", obsv)
	}
	for _, rep := range obsv[0].Reports {
		if rep.Failed != 0 || rep.Evaluated < 20 {
			t.Fatalf("report %s: failed=%d evaluated=%d", rep.System, rep.Failed, rep.Evaluated)
		}
	}
}

func TestAuditCommandRejectsBadInput(t *testing.T) {
	a, _, errb, _ := testApp()
	if code := a.Execute([]string{"audit"}); code != 2 {
		t.Fatalf("bare audit exit = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "auditable") {
		t.Fatal("missing-ids error should list the auditable set")
	}
	a, _, errb, _ = testApp()
	if code := a.Execute([]string{"audit", "T2"}); code != 2 {
		t.Fatalf("audit T2 exit = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "not auditable") {
		t.Fatal("unknown-id error not reported")
	}
	a, _, errb, _ = testApp()
	if code := a.Execute([]string{"-format", "yaml", "audit", "S1"}); code != 2 {
		t.Fatalf("bad format exit = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "unknown audit format") {
		t.Fatal("bad-format error not reported")
	}
	a, _, errb, _ = testApp()
	if code := a.Execute([]string{"-exemplars", "-1", "audit", "S1"}); code != 2 {
		t.Fatalf("negative -exemplars exit = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "-exemplars") {
		t.Fatal("negative -exemplars not rejected by range check")
	}
}
