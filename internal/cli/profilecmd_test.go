package cli

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

func TestProfileTopFormat(t *testing.T) {
	a, out, errb, _ := testApp()
	if code := a.Execute([]string{"profile", "F12"}); code != 0 {
		t.Fatalf("exit = %d: %s", code, errb.String())
	}
	s := out.String()
	for _, want := range []string{"flat", "cum", "spans", "frame", "Linux 1.2.8", "100.00%"} {
		if !strings.Contains(s, want) {
			t.Errorf("top output missing %q:\n%s", want, s)
		}
	}
}

func TestProfileFoldedFormat(t *testing.T) {
	a, out, errb, _ := testApp()
	if code := a.Execute([]string{"profile", "T2", "-format", "folded"}); code != 0 {
		t.Fatalf("exit = %d: %s", code, errb.String())
	}
	lines := strings.Split(strings.TrimRight(out.String(), "\n"), "\n")
	if len(lines) == 0 {
		t.Fatal("folded output empty")
	}
	prev := ""
	for _, l := range lines {
		// frame names may contain spaces; the weight follows the LAST space
		cut := strings.LastIndex(l, " ")
		if cut < 0 {
			t.Fatalf("bad folded line %q", l)
		}
		stack, weight := l[:cut], l[cut+1:]
		if !strings.Contains(stack, ";") {
			t.Fatalf("folded line %q has no stack separator", l)
		}
		if _, err := strconv.ParseInt(weight, 10, 64); err != nil {
			t.Fatalf("folded line %q: weight %q not an integer", l, weight)
		}
		if stack <= prev {
			t.Fatalf("folded stacks not sorted: %q after %q", stack, prev)
		}
		prev = stack
	}
}

func TestProfilePprofToFile(t *testing.T) {
	a, out, errb, files := testApp()
	if code := a.Execute([]string{"profile", "T2", "-format", "pprof", "-o", "prof.pb"}); code != 0 {
		t.Fatalf("exit = %d: %s", code, errb.String())
	}
	f, ok := files["prof.pb"]
	if !ok || f.Len() == 0 {
		t.Fatal("pprof output file missing or empty")
	}
	if !strings.Contains(out.String(), "wrote prof.pb") {
		t.Fatalf("no confirmation on stdout: %s", out.String())
	}
	if !bytes.Contains(f.Bytes(), []byte("virtualtime")) {
		t.Fatal("pprof file missing the virtualtime sample type string")
	}
}

func TestProfileIdenticalAcrossWorkers(t *testing.T) {
	for _, format := range []string{"top", "folded", "pprof"} {
		serial, sOut, _, _ := testApp()
		if code := serial.Execute([]string{"-j", "1", "profile", "T2", "F12", "F13", "-format", format}); code != 0 {
			t.Fatalf("%s: serial profile failed", format)
		}
		par, pOut, _, _ := testApp()
		if code := par.Execute([]string{"-j", "8", "profile", "T2", "F12", "F13", "-format", format}); code != 0 {
			t.Fatalf("%s: parallel profile failed", format)
		}
		if !bytes.Equal(sOut.Bytes(), pOut.Bytes()) {
			t.Fatalf("%s: -j 8 profile differs from -j 1", format)
		}
	}
}

func TestProfileTopFlagTruncates(t *testing.T) {
	a, out, _, _ := testApp()
	if code := a.Execute([]string{"profile", "F12", "-top", "1"}); code != 0 {
		t.Fatal("profile -top failed")
	}
	if !strings.Contains(out.String(), "more frames)") {
		t.Fatalf("-top 1 should leave a truncation note:\n%s", out.String())
	}
}

func TestProfileBadFormat(t *testing.T) {
	a, _, errb, _ := testApp()
	if code := a.Execute([]string{"profile", "T2", "-format", "svg"}); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "svg") {
		t.Fatalf("error should name the format: %s", errb.String())
	}
}

func TestProfileNeedsIDs(t *testing.T) {
	a, _, errb, _ := testApp()
	if code := a.Execute([]string{"profile"}); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "observable") {
		t.Fatalf("error should list observable ids: %s", errb.String())
	}
}

func TestBaselineRecordThenCheckPasses(t *testing.T) {
	a, out, errb, files := testApp()
	if code := a.Execute([]string{"baseline", "record", "T2", "F12", "-baseline", "b.json"}); code != 0 {
		t.Fatalf("record exit = %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "wrote b.json") {
		t.Fatalf("record gave no confirmation: %s", out.String())
	}
	if _, ok := files["b.json"]; !ok {
		t.Fatal("baseline file not written")
	}

	// check re-reads the file through the same in-memory filesystem.
	b := &App{Stdout: &bytes.Buffer{}, Stderr: &bytes.Buffer{},
		ReadFile: a.ReadFile, CreateFile: a.CreateFile, MkdirAll: a.MkdirAll}
	if code := b.Execute([]string{"baseline", "check", "-baseline", "b.json"}); code != 0 {
		t.Fatalf("clean check exit = %d: %s\n%s", code,
			b.Stdout.(*bytes.Buffer).String(), b.Stderr.(*bytes.Buffer).String())
	}
	if !strings.Contains(b.Stdout.(*bytes.Buffer).String(), "match") {
		t.Fatalf("clean check should report the match: %s", b.Stdout.(*bytes.Buffer).String())
	}
}

func TestBaselineCheckCatchesInjectedRegression(t *testing.T) {
	a, _, errb, files := testApp()
	if code := a.Execute([]string{"baseline", "record", "F12", "-baseline", "b.json"}); code != 0 {
		t.Fatalf("record exit = %d: %s", code, errb.String())
	}
	// Tamper with an integer ledger in the recorded file: a one-count
	// change must fail the gate.
	tampered := strings.Replace(files["b.json"].String(),
		`"disk.writes": 400`, `"disk.writes": 401`, 1)
	if tampered == files["b.json"].String() {
		t.Fatalf("fixture drift: disk.writes ledger not found in baseline:\n%s",
			files["b.json"].String())
	}
	files["b.json"] = bytes.NewBufferString(tampered)

	var out, errb2 bytes.Buffer
	b := &App{Stdout: &out, Stderr: &errb2,
		ReadFile: a.ReadFile, CreateFile: a.CreateFile, MkdirAll: a.MkdirAll}
	if code := b.Execute([]string{"baseline", "check", "-baseline", "b.json"}); code != 1 {
		t.Fatalf("tampered check exit = %d, want 1: %s", code, out.String())
	}
	s := out.String()
	for _, want := range []string{"rank", "changed", "disk.writes", "401", "400"} {
		if !strings.Contains(s, want) {
			t.Errorf("regression table missing %q:\n%s", want, s)
		}
	}
	if !strings.Contains(errb2.String(), "baseline check failed") {
		t.Fatalf("failure not reported on stderr: %s", errb2.String())
	}
}

func TestBaselineCheckUsesRecordedSeed(t *testing.T) {
	a, _, errb, files := testApp()
	if code := a.Execute([]string{"-seed", "7", "baseline", "record", "T2", "-baseline", "b.json"}); code != 0 {
		t.Fatalf("record exit = %d: %s", code, errb.String())
	}
	if !strings.Contains(files["b.json"].String(), `"seed": 7`) {
		t.Fatal("recorded seed not serialized")
	}
	// A check run with a different -seed must still pass: the gate runs
	// with the file's seed, making it self-contained.
	var out, errb2 bytes.Buffer
	b := &App{Stdout: &out, Stderr: &errb2,
		ReadFile: a.ReadFile, CreateFile: a.CreateFile, MkdirAll: a.MkdirAll}
	if code := b.Execute([]string{"-seed", "99", "baseline", "check", "-baseline", "b.json"}); code != 0 {
		t.Fatalf("check exit = %d: %s\n%s", code, out.String(), errb2.String())
	}
}

func TestBaselineDiff(t *testing.T) {
	a, _, errb, files := testApp()
	if code := a.Execute([]string{"baseline", "record", "T2", "-baseline", "a.json"}); code != 0 {
		t.Fatalf("record exit = %d: %s", code, errb.String())
	}
	files["same.json"] = bytes.NewBuffer(append([]byte(nil), files["a.json"].Bytes()...))

	var out bytes.Buffer
	b := &App{Stdout: &out, Stderr: &bytes.Buffer{},
		ReadFile: a.ReadFile, CreateFile: a.CreateFile, MkdirAll: a.MkdirAll}
	if code := b.Execute([]string{"baseline", "diff", "a.json", "same.json"}); code != 0 {
		t.Fatalf("identical diff exit = %d: %s", code, out.String())
	}
	if !strings.Contains(out.String(), "agree") {
		t.Fatalf("diff of identical files should agree: %s", out.String())
	}

	files["other.json"] = bytes.NewBufferString(strings.Replace(files["a.json"].String(),
		`"kernel.processes": `, `"kernel.procs.renamed": `, 1))
	var out2 bytes.Buffer
	c := &App{Stdout: &out2, Stderr: &bytes.Buffer{},
		ReadFile: a.ReadFile, CreateFile: a.CreateFile, MkdirAll: a.MkdirAll}
	code := c.Execute([]string{"baseline", "diff", "a.json", "other.json"})
	if code != 1 {
		t.Fatalf("differing diff exit = %d, want 1: %s", code, out2.String())
	}
	if !strings.Contains(out2.String(), "missing") || !strings.Contains(out2.String(), "added") {
		t.Fatalf("diff should show missing and added metrics:\n%s", out2.String())
	}
}

func TestBaselineBadVerb(t *testing.T) {
	a, _, errb, _ := testApp()
	if code := a.Execute([]string{"baseline"}); code != 2 {
		t.Fatalf("bare baseline exit = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "record") {
		t.Fatalf("error should name the verbs: %s", errb.String())
	}
	b, _, errb2, _ := testApp()
	if code := b.Execute([]string{"baseline", "erase"}); code != 2 {
		t.Fatalf("unknown verb exit = %d, want 2", code)
	}
	if !strings.Contains(errb2.String(), "erase") {
		t.Fatalf("error should echo the verb: %s", errb2.String())
	}
}

func TestBaselineCheckMissingFile(t *testing.T) {
	a, _, errb, _ := testApp()
	if code := a.Execute([]string{"baseline", "check", "-baseline", "nope.json"}); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "nope.json") {
		t.Fatalf("error should name the file: %s", errb.String())
	}
}
