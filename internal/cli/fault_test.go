package cli

import (
	"bytes"
	"strings"
	"testing"
)

// planJSON is a small but active plan used across the CLI fault tests.
const planJSON = `{
  "name": "test-lossy",
  "disk": {"latency_spike_prob": 0.05, "transient_error_prob": 0.02},
  "net":  {"udp_loss_prob": 0.05, "tcp_seg_loss_prob": 0.02},
  "cache": {"page_steal_prob": 0.01}
}`

func faultApp() (*App, *bytes.Buffer, *bytes.Buffer) {
	a, out, errb, files := testApp()
	files["plan.json"] = bytes.NewBufferString(planJSON)
	return a, out, errb
}

func TestFaultsCommandRunsPlan(t *testing.T) {
	a, out, errb := faultApp()
	if code := a.Execute([]string{"faults", "T7", "-plan", "plan.json"}); code != 0 {
		t.Fatalf("exit = %d: %s", code, errb.String())
	}
	text := out.String()
	for _, want := range []string{
		`under plan "test-lossy"`, "clean", "faulted", "delta",
		"injected (summed across systems):", "fault.net.rpc_retransmits",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("faults output missing %q:\n%s", want, text)
		}
	}
}

func TestFaultsAllExpandsToFaultableIDs(t *testing.T) {
	a, out, errb := faultApp()
	if code := a.Execute([]string{"faults", "all", "-plan", "plan.json"}); code != 0 {
		t.Fatalf("exit = %d: %s", code, errb.String())
	}
	for _, id := range []string{"T5", "T6", "T7", "F12", "F13"} {
		if !strings.Contains(out.String(), id+" — ") {
			t.Errorf("faults all skipped %s", id)
		}
	}
}

// Satellite 5's regression: the faulted report is byte-identical at any
// worker count — every fault arrival derives from the per-(experiment,
// personality) RNG fork, never from scheduling.
func TestFaultsOutputIdenticalAcrossWorkers(t *testing.T) {
	serial, sOut, sErr := faultApp()
	if code := serial.Execute([]string{"-j", "1", "faults", "all", "-plan", "plan.json"}); code != 0 {
		t.Fatalf("serial exit = %d: %s", code, sErr.String())
	}
	par, pOut, pErr := faultApp()
	if code := par.Execute([]string{"-j", "8", "faults", "all", "-plan", "plan.json"}); code != 0 {
		t.Fatalf("parallel exit = %d: %s", code, pErr.String())
	}
	if !bytes.Equal(sOut.Bytes(), pOut.Bytes()) {
		t.Fatal("-j 8 faults report differs from -j 1")
	}
}

// Golden error paths: every bad invocation exits nonzero with a one-line
// diagnostic — never a stack trace.
func TestFaultsErrorPaths(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"no plan", []string{"faults", "T7"}, "faults needs -plan"},
		{"no ids", []string{"faults", "-plan", "plan.json"}, "faultable:"},
		{"unknown id", []string{"faults", "T99", "-plan", "plan.json"}, "T99"},
		{"unreadable plan", []string{"faults", "T7", "-plan", "nope.json"}, "nope.json"},
		{"inert plan", []string{"faults", "T7", "-plan", "inert.json"}, "inert"},
		{"typo in plan field", []string{"faults", "T7", "-plan", "typo.json"}, "bad plan"},
		{"out-of-range probability", []string{"faults", "T7", "-plan", "hot.json"}, "udp_loss_prob"},
		{"plan on run", []string{"run", "T2", "-plan", "plan.json"}, "-plan only applies to the faults command"},
		{"faults flag on run", []string{"run", "T2", "-faults", "plan.json"}, "-faults does not apply"},
		{"unreadable faults flag", []string{"metrics", "T7", "-faults", "nope.json"}, "nope.json"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a, _, errb, files := testApp()
			files["plan.json"] = bytes.NewBufferString(planJSON)
			files["inert.json"] = bytes.NewBufferString(`{"name": "inert"}`)
			files["typo.json"] = bytes.NewBufferString(`{"net": {"udp_loss_probe": 0.1}}`)
			files["hot.json"] = bytes.NewBufferString(`{"net": {"udp_loss_prob": 1.0}}`)
			code := a.Execute(tc.args)
			if code == 0 {
				t.Fatalf("exit = 0, want nonzero")
			}
			msg := errb.String()
			if !strings.Contains(msg, tc.want) {
				t.Fatalf("stderr %q does not contain %q", msg, tc.want)
			}
			if strings.Contains(msg, "goroutine") || strings.Contains(msg, "panic:") {
				t.Fatalf("stack trace leaked:\n%s", msg)
			}
		})
	}
}

// Satellite 3: legal-but-meaningless numeric flag values get one-line
// usage errors, and malformed syntax is caught by the flag package —
// no input may reach a panic.
func TestNumericFlagRangeErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"runs zero", []string{"-runs", "0", "run", "T2"}, "-runs must be positive"},
		{"runs negative", []string{"-runs", "-3", "run", "T2"}, "-runs must be positive"},
		{"j negative", []string{"-j", "-1", "run", "T2"}, "-j must be >= 0"},
		{"procs negative", []string{"-procs", "-4", "trace"}, "-procs must be >= 0"},
		{"trials zero", []string{"-trials", "0", "sensitivity"}, "-trials must be positive"},
		{"top negative", []string{"-top", "-1", "profile", "F12"}, "-top must be >= 0"},
		{"clients negative", []string{"-clients", "-5", "scale"}, "-clients must be >= 0"},
		{"nfsd negative", []string{"-nfsd", "-2", "scale"}, "-nfsd must be >= 0"},
		{"eps nan", []string{"-eps", "NaN", "sensitivity"}, "-eps must be a finite non-negative number"},
		{"tol negative", []string{"-tol", "-0.5", "baseline", "check"}, "-tol must be a finite non-negative number"},
		{"tol inf", []string{"-tol", "Inf", "baseline", "check"}, "-tol must be a finite non-negative number"},
		{"j malformed", []string{"-j", "many", "run", "T2"}, "invalid value"},
		{"tol malformed", []string{"-tol", "x", "baseline", "check"}, "invalid value"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a, _, errb, _ := testApp()
			if code := a.Execute(tc.args); code != 2 {
				t.Fatalf("exit = %d, want 2 (stderr: %s)", code, errb.String())
			}
			if !strings.Contains(errb.String(), tc.want) {
				t.Fatalf("stderr %q does not contain %q", errb.String(), tc.want)
			}
		})
	}
}

// Observability probes accept -faults and report the injected counters in
// their metric tables, staying byte-identical across worker counts.
func TestMetricsWithFaultsShowsInjectedCounters(t *testing.T) {
	a, out, errb, files := testApp()
	files["plan.json"] = bytes.NewBufferString(planJSON)
	if code := a.Execute([]string{"metrics", "T7", "-faults", "plan.json"}); code != 0 {
		t.Fatalf("exit = %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "fault.net.") {
		t.Fatalf("faulted metrics missing fault counters:\n%s", out.String())
	}
	// Without -faults the same probe carries no fault keys.
	b, bOut, _, _ := testApp()
	if code := b.Execute([]string{"metrics", "T7"}); code != 0 {
		t.Fatal("clean metrics failed")
	}
	if strings.Contains(bOut.String(), "fault.") {
		t.Fatal("clean metrics leaked fault counters")
	}
}
