package cli

import (
	"strings"
	"testing"
)

// TestScaleCommand is the CLI face of the scale-out tentpole: the sweep
// table carries every personality, the percentile columns and the
// decade populations up to -clients.
func TestScaleCommand(t *testing.T) {
	a, out, errb, _ := testApp()
	if code := a.Execute([]string{"-clients", "1000", "scale"}); code != 0 {
		t.Fatalf("exit = %d: %s", code, errb.String())
	}
	text := out.String()
	for _, want := range []string{
		"NFS server scale-out: 8 nfsd slots",
		"clients", "ops/s", "p50 ms", "p99 ms", "p999 ms", "retrans", "shed",
		"Linux 1.2.8:", "FreeBSD 2.0.5R:", "Solaris 2.4:",
		"\n         10 ", "\n        100 ", "\n       1000 ",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("scale output missing %q:\n%s", want, text)
		}
	}
	if errb.Len() != 0 {
		t.Fatalf("unexpected stderr: %s", errb.String())
	}
}

// The scale report is a pure function of the seed: two invocations are
// byte-identical, and a different seed changes the bytes.
func TestScaleOutputDeterministic(t *testing.T) {
	run := func(args ...string) string {
		a, out, errb, _ := testApp()
		if code := a.Execute(args); code != 0 {
			t.Fatalf("exit = %d: %s", code, errb.String())
		}
		return out.String()
	}
	first := run("-clients", "1000", "scale")
	second := run("-clients", "1000", "scale")
	if first != second {
		t.Fatal("twin scale runs differ")
	}
	if reseeded := run("-clients", "1000", "-seed", "2", "scale"); reseeded == first {
		t.Fatal("seed change did not change the scale report")
	}
}

// -nfsd reshapes the server: more worker slots must change the header
// and (at a saturated point) the served throughput.
func TestScaleNfsdFlag(t *testing.T) {
	a, out, errb, _ := testApp()
	if code := a.Execute([]string{"-clients", "1000", "-nfsd", "16", "scale"}); code != 0 {
		t.Fatalf("exit = %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "16 nfsd slots") {
		t.Fatalf("-nfsd not reflected:\n%s", out.String())
	}
}

// Satellite 6: a lossy plan degrades the curves — the report names the
// plan, differs from the clean run, and shows nonzero retransmits —
// instead of crashing anything.
func TestScaleWithFaultPlan(t *testing.T) {
	clean, cleanOut, _, _ := testApp()
	if code := clean.Execute([]string{"-clients", "100", "scale"}); code != 0 {
		t.Fatal("clean scale failed")
	}
	lossy, lossyOut, errb := faultApp()
	if code := lossy.Execute([]string{"-clients", "100", "scale", "-faults", "plan.json"}); code != 0 {
		t.Fatalf("lossy exit = %d: %s", code, errb.String())
	}
	text := lossyOut.String()
	if !strings.Contains(text, `fault plan "test-lossy" injected`) {
		t.Fatalf("plan name missing:\n%s", text)
	}
	if text == cleanOut.String() {
		t.Fatal("fault plan did not change the scale report")
	}
	// Every personality's rows must show retransmits under 5% loss:
	// the retrans column sits between the util%% and drops columns.
	for _, line := range strings.Split(text, "\n") {
		if strings.Contains(line, "%") && strings.Contains(line, " 0        0       0") {
			t.Fatalf("lossy row with zero retransmits: %q", line)
		}
	}
}

// The scale exhibits ride the persistent memo like every other
// experiment: a cold `run S1 S2` fills the store, the warm re-run is
// served from it, and all three renders are byte-identical.
func TestMemoColdWarmScaleExhibits(t *testing.T) {
	dir := t.TempDir()
	args := []string{"-runs", "3", "run", "S1", "S2", "-stats"}
	plain, plainOut, _, _ := testApp()
	if code := plain.Execute(args); code != 0 {
		t.Fatalf("plain exit = %d", code)
	}
	cold, coldOut, coldErr, _ := testApp()
	if code := cold.Execute(append([]string{"-memo", dir}, args...)); code != 0 {
		t.Fatalf("cold exit = %d: %s", code, coldErr.String())
	}
	warm, warmOut, warmErr, _ := testApp()
	if code := warm.Execute(append([]string{"-memo", dir}, args...)); code != 0 {
		t.Fatalf("warm exit = %d: %s", code, warmErr.String())
	}
	if coldOut.String() != plainOut.String() {
		t.Fatal("attaching -memo changed the cold scale run's stdout")
	}
	if warmOut.String() != coldOut.String() {
		t.Fatal("warm (memoized) scale stdout differs from cold stdout")
	}
	if !strings.Contains(coldErr.String(), "memo store: 0 hits, 2 misses") {
		t.Errorf("cold stats missing store misses:\n%s", coldErr.String())
	}
	if !strings.Contains(warmErr.String(), "memo store: 2 hits, 0 misses") {
		t.Errorf("warm stats missing store hits:\n%s", warmErr.String())
	}
}
