// Package cli implements the pentiumbench command: parsing, dispatch and
// rendering live here (with injected output streams) so the whole
// command-line surface is unit-testable; cmd/pentiumbench is a thin shim.
package cli

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/fault"
	"repro/internal/fs"
	"repro/internal/kernel"
	"repro/internal/memo"
	"repro/internal/notes"
	"repro/internal/obs"
	"repro/internal/osprofile"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/validate"
	"repro/internal/workload"
)

// App is one command invocation's environment.
type App struct {
	// Stdout and Stderr receive the command's output.
	Stdout, Stderr io.Writer
	// ReadFile loads a file (replay traces); defaults to os.ReadFile.
	ReadFile func(string) ([]byte, error)
	// CreateFile opens a file for writing (svg output, pprof profiles);
	// defaults to os.Create.
	CreateFile func(string) (io.WriteCloser, error)
	// MkdirAll creates directories; defaults to os.MkdirAll.
	MkdirAll func(string, os.FileMode) error
}

// NewApp returns an App bound to the real environment.
func NewApp(stdout, stderr io.Writer) *App {
	return &App{
		Stdout:   stdout,
		Stderr:   stderr,
		ReadFile: os.ReadFile,
		CreateFile: func(path string) (io.WriteCloser, error) {
			return os.Create(path)
		},
		MkdirAll: os.MkdirAll,
	}
}

// Execute runs the command line and returns the process exit code.
func (a *App) Execute(args []string) int {
	fl := flag.NewFlagSet("pentiumbench", flag.ContinueOnError)
	fl.SetOutput(a.Stderr)
	seed := fl.Uint64("seed", 1, "master RNG seed")
	runs := fl.Int("runs", 20, "benchmark repetitions (paper: 20)")
	future := fl.Bool("future", false, "include the §13 future-work systems")
	outDir := fl.String("out", "figures", "svg: output directory")
	eps := fl.Float64("eps", 0.15, "sensitivity: relative perturbation of calibrated constants")
	trials := fl.Int("trials", 5, "sensitivity: perturbed replicas")
	profilesFile := fl.String("profiles", "", "JSON file with extra OS personalities to benchmark")
	workers := fl.Int("j", 0, "parallel runner workers (0 = GOMAXPROCS, 1 = serial)")
	procs := fl.Int("procs", 0, "trace/metrics/profile: process count — ring size for the bare timeline (default 3), F1 probe processes (default 8)")
	format := fl.String("format", "", "trace <ids>: 'chrome' (default; Perfetto-loadable JSON) or 'text'. profile <ids>: 'top' (default), 'folded' or 'pprof'")
	topN := fl.Int("top", 0, "trace -format=text / profile -format=top: keep only the N heaviest rows per table (0 = all)")
	outFile := fl.String("o", "", "profile: write output to this file instead of stdout")
	baseFile := fl.String("baseline", "BENCH_baseline.json", "baseline record/check: the baseline file path")
	tol := fl.Float64("tol", 0, "baseline check/diff: relative tolerance for non-integer metrics (0 = default 1e-9); integer ledgers always match exactly")
	clients := fl.Int("clients", 0, "scale: sweep client populations in decades up to this count (default 1000000); trace/metrics/profile: the S1/S2 probes' population (default 1000)")
	nfsd := fl.Int("nfsd", 0, "scale and the S1/S2 probes: server worker-slot (nfsd) count (default 8)")
	planFile := fl.String("plan", "", "faults: the fault plan JSON file to inject (see examples/lossy-nfs.json)")
	faultsFile := fl.String("faults", "", "scale/trace/metrics/profile: inject this fault plan JSON into the probes")
	showStats := fl.Bool("stats", false, "print runner statistics to stderr after run/csv/svg/experiments")
	memoDir := fl.String("memo", "", "persistent result-memo directory for run/csv/svg/experiments/html/serve (a cold run fills it; an unchanged re-run is served from it)")
	window := fl.Duration("window", 100*time.Millisecond, "timeseries/serve/audit: virtual-time sampler window width")
	exemplars := fl.Int("exemplars", 0, "trace/timeseries/serve/audit: exemplar reservoir size K per latency window on the S1/S2 probes (0 = off; audit defaults to 4)")
	addr := fl.String("addr", "127.0.0.1:8080", "serve: listen address (use :0 for a random port)")
	cpuProfile := fl.String("cpuprofile", "", "write a pprof CPU profile of the whole command to this file")
	memProfile := fl.String("memprofile", "", "write a pprof heap profile (post-GC, at exit) to this file")
	fl.Usage = func() { a.usage(fl) }

	// The flag package stops at the first positional argument; re-parsing
	// the remainder after collecting each positional lets flags appear on
	// either side of the command ("run all -j 8 -stats" and
	// "-j 8 run all" both work).
	var rest []string
	for remaining := args; ; {
		if err := fl.Parse(remaining); err != nil {
			return 2
		}
		remaining = fl.Args()
		if len(remaining) == 0 {
			break
		}
		rest = append(rest, remaining[0])
		remaining = remaining[1:]
	}

	if msg := flagRangeError(*runs, *workers, *procs, *trials, *topN, *clients, *nfsd, *exemplars, *eps, *tol); msg != "" {
		fmt.Fprintln(a.Stderr, "pentiumbench:", msg)
		return 2
	}

	cfg := core.DefaultConfig()
	cfg.Seed = *seed
	cfg.Runs = *runs
	if *future {
		cfg.Profiles = append(cfg.Profiles,
			osprofile.Linux1340(), osprofile.FreeBSD21(), osprofile.Solaris25())
	}
	if *profilesFile != "" {
		data, err := a.ReadFile(*profilesFile)
		if err != nil {
			fmt.Fprintln(a.Stderr, "pentiumbench:", err)
			return 2
		}
		extra, err := osprofile.LoadJSON(bytes.NewReader(data))
		if err != nil {
			fmt.Fprintln(a.Stderr, "pentiumbench:", err)
			return 2
		}
		cfg.Profiles = append(cfg.Profiles, extra...)
	}

	if len(rest) == 0 {
		a.usage(fl)
		return 2
	}
	plan, code := a.loadPlan(*planFile)
	if code != 0 {
		return code
	}
	faultPlan, code := a.loadPlan(*faultsFile)
	if code != 0 {
		return code
	}
	if *memoDir != "" {
		store, err := memo.OpenStore(*memoDir)
		if err != nil {
			fmt.Fprintln(a.Stderr, "pentiumbench:", err)
			return 2
		}
		cfg.Memo = store
	}
	runner := core.NewRunner(*workers)
	opts := cmdOpts{
		showStats: *showStats, outDir: *outDir, eps: *eps, trials: *trials,
		procs: *procs, format: *format, top: *topN, out: *outFile,
		baseline: *baseFile, tol: *tol, plan: plan, faults: faultPlan,
		clients: *clients, nfsd: *nfsd, exemplars: *exemplars,
		window: sim.Duration(*window), addr: *addr,
	}
	return a.profiled(*cpuProfile, *memProfile, func() int {
		return a.recovered(func() int {
			return a.dispatch(fl, cfg, runner, opts, rest)
		})
	})
}

// flagRangeError bounds-checks the numeric flags. The flag package
// already rejects malformed syntax ("-j x"); these catch values that
// parse but mean nothing ("-j -3", "-tol NaN") before any model runs.
func flagRangeError(runs, workers, procs, trials, top, clients, nfsd, exemplars int, eps, tol float64) string {
	badFloat := func(v float64) bool { return math.IsNaN(v) || math.IsInf(v, 0) || v < 0 }
	switch {
	case runs <= 0:
		return fmt.Sprintf("-runs must be positive (got %d)", runs)
	case workers < 0:
		return fmt.Sprintf("-j must be >= 0, 0 meaning GOMAXPROCS (got %d)", workers)
	case procs < 0:
		return fmt.Sprintf("-procs must be >= 0 (got %d)", procs)
	case trials <= 0:
		return fmt.Sprintf("-trials must be positive (got %d)", trials)
	case top < 0:
		return fmt.Sprintf("-top must be >= 0 (got %d)", top)
	case clients < 0:
		return fmt.Sprintf("-clients must be >= 0, 0 meaning the command default (got %d)", clients)
	case nfsd < 0:
		return fmt.Sprintf("-nfsd must be >= 0, 0 meaning the default 8 (got %d)", nfsd)
	case exemplars < 0:
		return fmt.Sprintf("-exemplars must be >= 0, 0 meaning off (got %d)", exemplars)
	case badFloat(eps):
		return fmt.Sprintf("-eps must be a finite non-negative number (got %v)", eps)
	case badFloat(tol):
		return fmt.Sprintf("-tol must be a finite non-negative number (got %v)", tol)
	}
	return ""
}

// loadPlan reads and validates a fault plan file; an empty path means no
// plan. The int is the exit code when the plan is non-nil-but-unloadable.
func (a *App) loadPlan(path string) (*fault.Plan, int) {
	if path == "" {
		return nil, 0
	}
	data, err := a.ReadFile(path)
	if err != nil {
		fmt.Fprintln(a.Stderr, "pentiumbench:", err)
		return nil, 2
	}
	p, err := fault.Load(data)
	if err != nil {
		fmt.Fprintln(a.Stderr, "pentiumbench:", err)
		return nil, 2
	}
	return p, 0
}

// recovered is the last-resort panic boundary: no command line may
// produce a Go stack trace. A kernel deadlock arrives as
// *sim.DeadlockError and renders with its diagnostic dump; anything
// else reports as an internal error. Both exit 1.
func (a *App) recovered(cmd func() int) (code int) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		if d, ok := r.(*sim.DeadlockError); ok {
			a.renderDeadlock(d)
			code = 1
			return
		}
		fmt.Fprintf(a.Stderr, "pentiumbench: internal error: %v\n", r)
		code = 1
	}()
	return cmd()
}

// renderDeadlock prints a deadlock diagnostic: the one-line summary,
// then the span-buffer dump indented beneath it.
func (a *App) renderDeadlock(d *sim.DeadlockError) {
	fmt.Fprintln(a.Stderr, "pentiumbench:", d.Error())
	if d.Dump != "" {
		for _, line := range strings.Split(strings.TrimRight(d.Dump, "\n"), "\n") {
			fmt.Fprintln(a.Stderr, " ", line)
		}
	}
}

// cmdOpts bundles the per-subcommand flag values for dispatch.
type cmdOpts struct {
	showStats bool
	outDir    string
	eps       float64
	trials    int
	procs     int
	format    string
	top       int
	out       string
	baseline  string
	tol       float64
	// plan is the -plan fault plan (faults command only); faults is the
	// -faults plan injected into scale/trace/metrics/profile probes.
	plan   *fault.Plan
	faults *fault.Plan
	// clients and nfsd shape the NFS server model: the scale sweep's
	// maximum population and the S1/S2 probes' population, and the
	// server worker-slot count (0 selects the defaults).
	clients int
	nfsd    int
	// exemplars is the per-window exemplar reservoir size K for the
	// S1/S2 probes (0 = tracing off; audit defaults it to 4).
	exemplars int
	// window is the timeseries/serve/audit sampler window width; addr
	// the serve listen address.
	window sim.Duration
	addr   string
}

// dispatch routes a parsed command line to its subcommand.
func (a *App) dispatch(fl *flag.FlagSet, cfg core.Config, runner *core.Runner,
	o cmdOpts, rest []string) int {
	showStats, outDir, eps, trials := o.showStats, o.outDir, o.eps, o.trials
	procs, format := o.procs, o.format
	if o.faults != nil {
		switch rest[0] {
		case "scale", "trace", "metrics", "profile", "timeseries", "audit", "ipc":
		default:
			fmt.Fprintf(a.Stderr, "pentiumbench: -faults does not apply to %q (only scale, trace, metrics, profile, timeseries, audit and ipc take it; see the faults command)\n", rest[0])
			return 2
		}
	}
	if cfg.Memo != nil {
		switch rest[0] {
		case "run", "csv", "svg", "experiments", "html", "serve":
		default:
			fmt.Fprintf(a.Stderr, "pentiumbench: -memo does not apply to %q (only run, csv, svg, experiments, html and serve take it)\n", rest[0])
			return 2
		}
	}
	if o.plan != nil && rest[0] != "faults" {
		fmt.Fprintln(a.Stderr, "pentiumbench: -plan only applies to the faults command (use -faults with scale/trace/metrics/profile)")
		return 2
	}
	switch rest[0] {
	case "list":
		a.list()
		return 0
	case "run":
		return a.run(cfg, runner, showStats, rest[1:], false)
	case "csv":
		return a.run(cfg, runner, showStats, rest[1:], true)
	case "svg":
		return a.svg(cfg, runner, showStats, rest[1:], outDir)
	case "experiments":
		a.experiments(cfg, runner, showStats)
		return 0
	case "html":
		a.html(cfg, runner, showStats)
		return 0
	case "check":
		return a.check(cfg)
	case "sensitivity":
		a.sensitivity(cfg, eps, trials)
		return 0
	case "replay":
		return a.replay(cfg, rest[1:])
	case "latency":
		a.latency(cfg)
		return 0
	case "scale":
		return a.scale(cfg, o.clients, o.nfsd, o.faults)
	case "locks":
		return a.locks(cfg)
	case "ipc":
		return a.ipc(cfg, o.faults)
	case "trace":
		return a.trace(cfg, runner, rest[1:], a.probeOpts(o), format, o.top)
	case "metrics":
		return a.metrics(cfg, runner, rest[1:], a.probeOpts(o))
	case "timeseries":
		opts := a.probeOpts(o)
		opts.Window = o.window
		return a.timeseries(cfg, runner, rest[1:], opts, format, outDir)
	case "serve":
		return a.serve(cfg, runner, o)
	case "audit":
		opts := a.probeOpts(o)
		opts.Window = o.window
		return a.audit(cfg, rest[1:], opts, format)
	case "profile":
		return a.profileCmd(cfg, runner, rest[1:], a.probeOpts(o), format, o.top, o.out)
	case "faults":
		return a.faults(cfg, runner, rest[1:],
			core.ObserveOpts{Procs: procs, Clients: o.clients, Nfsd: o.nfsd}, o.plan)
	case "baseline":
		return a.baseline(cfg, runner, rest[1:], core.ObserveOpts{Procs: procs},
			o.baseline, o.tol)
	case "notes":
		a.notes()
		return 0
	case "platform":
		a.platform()
		return 0
	case "profiles":
		return a.profiles()
	default:
		fmt.Fprintf(a.Stderr, "pentiumbench: unknown command %q\n\n", rest[0])
		a.usage(fl)
		return 2
	}
}

// probeOpts assembles the ObserveOpts for trace/metrics/profile from
// the shared flag values (the faults command builds its own clean and
// faulted pairs).
func (a *App) probeOpts(o cmdOpts) core.ObserveOpts {
	return core.ObserveOpts{Procs: o.procs, Clients: o.clients, Nfsd: o.nfsd,
		Faults: o.faults, ExemplarK: o.exemplars}
}

// profiled runs cmd, optionally bracketed by pprof capture. The CPU
// profile covers the whole subcommand (parsing is negligible); the heap
// profile is written after a forced GC so it reflects memory still live
// at exit rather than transient garbage. Both files come from
// a.CreateFile, so tests can intercept them.
func (a *App) profiled(cpuPath, memPath string, cmd func() int) int {
	if cpuPath != "" {
		f, err := a.CreateFile(cpuPath)
		if err != nil {
			fmt.Fprintln(a.Stderr, "pentiumbench:", err)
			return 2
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			fmt.Fprintln(a.Stderr, "pentiumbench:", err)
			return 2
		}
		defer func() { // stopped below; defer covers early panics in cmd
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	code := cmd()
	if cpuPath != "" {
		pprof.StopCPUProfile() // idempotent with the deferred stop
	}
	if memPath != "" {
		f, err := a.CreateFile(memPath)
		if err != nil {
			fmt.Fprintln(a.Stderr, "pentiumbench:", err)
			return 2
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			f.Close()
			fmt.Fprintln(a.Stderr, "pentiumbench:", err)
			return 2
		}
		f.Close()
	}
	return code
}

func (a *App) usage(fl *flag.FlagSet) {
	fmt.Fprintln(a.Stderr, `usage: pentiumbench [flags] <command> [args] [flags]

run, csv, svg, experiments and html execute on a parallel deterministic
runner: -j picks the worker count (results are bit-identical at any -j),
-stats reports jobs, memo hits and wall time on stderr. -memo <dir>
persists results content-addressed on disk: a cold run fills the store,
an unchanged re-run (same seed, runs, personalities and code schema) is
served from it near-instantly, byte-identical to the cold output.

Any command can be profiled: -cpuprofile and -memprofile write pprof
files for inspection with 'go tool pprof'.

commands:
  list            show all experiments (tables, figures, ablations)
  run <ids|all>   run experiments and render results
  csv <ids|all>   run experiments and emit CSV
  svg <ids|all>   run experiments and write SVG figures (-out dir)
  experiments     run everything and emit the EXPERIMENTS.md body
  html            run everything and emit a self-contained HTML report
  check           evaluate every paper claim against the simulation
  sensitivity     re-check claims under perturbed calibration (-eps, -trials)
  replay <trace>  time a workload trace (builtin name or file) on every system
  latency         lmbench-style latency probes for every system
  scale           sweep the NFS server model's client population in
                  decades (10 up to -clients, default 1000000) and print
                  each personality's served throughput, streaming
                  latency percentiles (p50/p99/p999) and overload
                  counters; -nfsd sets the worker-slot count, -faults
                  injects a fault plan into every point
  locks           sweep the SMP lock-contention model (exhibits L1/L2)
                  over CPU counts per personality and lock kind:
                  throughput, wait percentiles, spin/idle shares and
                  context switches, all from exact per-CPU ledgers
  ipc             sweep the IPC transport family (exhibit I1) over
                  message sizes per personality: pipe vs UDP socket vs
                  shared memory bandwidth; -faults perturbs the socket
                  transport (the only one with a network under it)
  trace [ids|all] bare: annotated kernel timeline of one token-ring lap per
                  system (-procs sets the ring size). With experiment ids:
                  run the observability probes and export their span
                  streams — -format=chrome (default) writes Chrome
                  trace-event JSON to stdout for Perfetto or
                  chrome://tracing, -format=text a per-run summary with
                  tracks ranked by cumulative virtual time (-top limits it)
  metrics <ids|all>  per-phase cycle-attribution tables for the probes:
                  where each run's modelled time went (phases sum to the
                  total); -procs sets the F1 process count
  timeseries <ids|all>  sample the instrumented probes (F1, F12, S1, S2)
                  into fixed-width virtual-time windows (-window, default
                  100ms): queue depths, busy fractions, drops and
                  windowed p50/p99 over time. -format=csv (default) emits
                  the long format, -format=json full snapshots,
                  -format=svg small-multiple timelines into -out;
                  -faults injects a fault plan, and output is
                  byte-identical at any -j
  audit <ids|all> re-run the NFS scale probes (S1, S2) with independent
                  double-entry accounting attached and evaluate every
                  queueing-law invariant: Little's law, the utilization
                  law, flow balance, histogram-vs-ledger reconciliation,
                  per-window conservation and per-exemplar phase sums.
                  -format=text (default) prints a verdict table with
                  violations ranked worst-first, -format=json the full
                  machine-readable reports; -faults audits a faulted
                  run, -exemplars overrides the reservoir size (default
                  4); nonzero exit on any violation
  serve           long-running HTTP observability server (-addr, default
                  127.0.0.1:8080): /api/experiments, /api/metrics/<id>
                  (Prometheus text with latency le-bucket histograms),
                  /api/timeseries/<id>, /api/trace/<id> (Chrome JSON),
                  /api/profile/<id> (?format=folded|pprof),
                  /api/exemplars/<id> (tail-biased request lifecycles),
                  /api/audit/<id> (queueing-law verdicts),
                  /api/baseline/diff. Responses carry SHA-256
                  content-hash ETags (If-None-Match → 304) and are
                  memoised; -memo persists results across restarts
  profile <ids|all>  fold the probes' span streams into a virtual-time
                  profile (exact, deterministic — no sampling):
                  -format=top (default) prints flat/cum tables per track,
                  -format=folded emits flamegraph.pl/inferno folded
                  stacks, -format=pprof a 'go tool pprof'-compatible
                  profile; -o writes to a file, -top truncates tables
  faults <ids|all> -plan <file>   run the observability probes clean and
                  under a deterministic fault plan (JSON; see
                  examples/lossy-nfs.json) and report the slowdown per
                  system plus the injected-fault counters. 'all' selects
                  the faultable probes. The same plan can be injected
                  into scale/trace/metrics/profile with -faults <file>
  baseline record [ids|all]   record the probes' canonical metric
                  snapshot to -baseline (default BENCH_baseline.json)
  baseline check  re-run with the baseline's recorded seed and ids and
                  diff: exact match for integer ledgers, -tol relative
                  tolerance for floats; nonzero exit + ranked regression
                  table on any violation
  baseline diff <a.json> <b.json>   diff two recorded baseline files
  profiles        dump the built-in OS personalities as JSON (a template
                  for -profiles)
  notes           the paper's §11 installation/porting observations
  platform        describe the modelled hardware and systems

flags:`)
	fl.PrintDefaults()
}

func (a *App) list() {
	fmt.Fprintln(a.Stdout, "Experiments (paper exhibits first, then ablations):")
	for _, e := range core.All() {
		kind := "figure"
		if e.Kind == core.Table {
			kind = "table "
		}
		fmt.Fprintf(a.Stdout, "  %-4s %s  %-55s (%s)\n", e.ID, kind, e.Title, e.Paper)
	}
}

// resolve maps ids (or "all") to experiments, reporting unknowns.
func (a *App) resolve(ids []string) ([]*core.Experiment, bool) {
	if len(ids) == 1 && ids[0] == "all" {
		return core.All(), true
	}
	var exps []*core.Experiment
	for _, id := range ids {
		e, ok := core.Lookup(id)
		if !ok {
			fmt.Fprintf(a.Stderr, "pentiumbench: unknown experiment %q (try 'list')\n", id)
			return nil, false
		}
		exps = append(exps, e)
	}
	return exps, true
}

func (a *App) run(cfg core.Config, runner *core.Runner, showStats bool, ids []string, csv bool) int {
	if len(ids) == 0 {
		fmt.Fprintln(a.Stderr, "pentiumbench: run/csv needs experiment ids or 'all'")
		return 2
	}
	exps, ok := a.resolve(ids)
	if !ok {
		return 2
	}
	results, st := runner.RunAll(cfg, exps)
	for i, res := range results {
		if csv {
			report.CSV(a.Stdout, res)
			continue
		}
		if i > 0 {
			fmt.Fprintln(a.Stdout)
		}
		report.Render(a.Stdout, res)
	}
	a.maybeStats(showStats, st)
	return 0
}

// maybeStats prints runner statistics to stderr, keeping stdout a pure
// report: run output stays byte-identical with or without -stats.
func (a *App) maybeStats(show bool, st *core.RunStats) {
	if !show {
		return
	}
	fmt.Fprintf(a.Stderr, "runner: %d experiments + %d fan-out tasks on %d workers in %v\n",
		st.Jobs, st.InnerJobs, st.Workers, st.Wall.Round(time.Millisecond))
	fmt.Fprintf(a.Stderr, "sweep memo: %d hits, %d simulated points\n",
		st.MemoHits, st.MemoMisses)
	if st.Store != nil {
		fmt.Fprintf(a.Stderr, "memo store: %d hits, %d misses (%d stale), %d entries written\n",
			st.Store.Hits, st.Store.Misses, st.Store.Stale, st.Store.Puts)
	}
	slowest := st.Slowest(5)
	if len(slowest) == 0 {
		return
	}
	fmt.Fprint(a.Stderr, "slowest:")
	for _, e := range slowest {
		fmt.Fprintf(a.Stderr, " %s %v", e.ID, e.Wall.Round(time.Millisecond))
	}
	fmt.Fprintln(a.Stderr)
}

func (a *App) svg(cfg core.Config, runner *core.Runner, showStats bool, ids []string, dir string) int {
	if len(ids) == 0 {
		fmt.Fprintln(a.Stderr, "pentiumbench: svg needs experiment ids or 'all'")
		return 2
	}
	exps, ok := a.resolve(ids)
	if !ok {
		return 2
	}
	if err := a.MkdirAll(dir, 0o755); err != nil {
		fmt.Fprintln(a.Stderr, "pentiumbench:", err)
		return 1
	}
	results, st := runner.RunAll(cfg, exps)
	for i, e := range exps {
		path := fmt.Sprintf("%s/%s.svg", dir, e.ID)
		f, err := a.CreateFile(path)
		if err != nil {
			fmt.Fprintln(a.Stderr, "pentiumbench:", err)
			return 1
		}
		report.SVG(f, results[i])
		f.Close()
		fmt.Fprintln(a.Stdout, "wrote", path)
	}
	a.maybeStats(showStats, st)
	return 0
}

func (a *App) experiments(cfg core.Config, runner *core.Runner, showStats bool) {
	results, st := runner.RunAll(cfg, core.All())
	report.Markdown(a.Stdout, results)
	report.MarkdownClaims(a.Stdout, claimLines(cfg))
	a.maybeStats(showStats, st)
}

// claimLines evaluates the paper claims for the experiments report.
func claimLines(cfg core.Config) []report.ClaimLine {
	var lines []report.ClaimLine
	for _, o := range validate.RunAll(cfg) {
		l := report.ClaimLine{
			ID:        o.Claim.ID,
			Exhibit:   o.Claim.Exhibit,
			Statement: o.Claim.Statement,
			Passed:    o.Passed(),
		}
		if o.Err != nil {
			l.Err = o.Err.Error()
		}
		lines = append(lines, l)
	}
	return lines
}

func (a *App) html(cfg core.Config, runner *core.Runner, showStats bool) {
	results, st := runner.RunAll(cfg, core.All())
	report.HTML(a.Stdout, results)
	a.maybeStats(showStats, st)
}

func (a *App) check(cfg core.Config) int {
	outcomes := validate.RunAll(cfg)
	failed := 0
	fmt.Fprintf(a.Stdout, "Checking %d paper claims against the simulation:\n\n", len(outcomes))
	for _, o := range outcomes {
		status := "PASS"
		if !o.Passed() {
			status = "FAIL"
			failed++
		}
		fmt.Fprintf(a.Stdout, "  [%s] %-4s (%s) %s\n", status, o.Claim.ID, o.Claim.Exhibit, o.Claim.Statement)
		if o.Err != nil {
			fmt.Fprintf(a.Stdout, "         %v\n", o.Err)
		}
	}
	fmt.Fprintf(a.Stdout, "\n%d/%d claims hold.\n", len(outcomes)-failed, len(outcomes))
	if failed > 0 {
		return 1
	}
	return 0
}

func (a *App) sensitivity(cfg core.Config, eps float64, trials int) {
	fmt.Fprintf(a.Stdout, "Re-checking every claim across %d replicas with all calibrated\n", trials)
	fmt.Fprintf(a.Stdout, "constants independently perturbed by ±%.0f%%. Structural choices (the\n", 100*eps)
	fmt.Fprintln(a.Stdout, "scheduler kinds, metadata policies, TCP windows, transfer sizes) come")
	fmt.Fprintln(a.Stdout, "from the paper's text and stay fixed.")
	fmt.Fprintln(a.Stdout)
	rob := validate.Sensitivity(cfg, eps, trials)
	fragile := 0
	for _, r := range rob {
		mark := "robust "
		if !r.Robust() {
			mark = fmt.Sprintf("%d/%d   ", r.Passes, r.Trials)
			fragile++
		}
		fmt.Fprintf(a.Stdout, "  [%s] %-4s %s\n", mark, r.Claim.ID, r.Claim.Statement)
		if r.FirstFailure != nil {
			fmt.Fprintf(a.Stdout, "            e.g. %v\n", r.FirstFailure)
		}
	}
	fmt.Fprintf(a.Stdout, "\n%d/%d claims survive every perturbed replica.\n", len(rob)-fragile, len(rob))
}

func (a *App) replay(cfg core.Config, args []string) int {
	if len(args) != 1 {
		fmt.Fprintf(a.Stderr, "pentiumbench: replay needs a trace (builtin: %v, or a file path)\n",
			workload.BuiltinNames())
		return 2
	}
	tr, err := workload.Builtin(args[0])
	if err != nil {
		text, ferr := a.ReadFile(args[0])
		if ferr != nil {
			fmt.Fprintf(a.Stderr, "pentiumbench: %v; and no such file: %v\n", err, ferr)
			return 2
		}
		tr, err = workload.Parse(args[0], string(text))
		if err != nil {
			fmt.Fprintln(a.Stderr, "pentiumbench:", err)
			return 2
		}
	}
	fmt.Fprintf(a.Stdout, "Replaying trace %q on the modelled systems:\n\n", tr.Name)
	for _, p := range cfg.Profiles {
		clock := &sim.Clock{}
		d, err := disk.New(disk.HP3725(), sim.NewRNG(cfg.Seed))
		if err != nil {
			fmt.Fprintln(a.Stderr, "pentiumbench:", err)
			return 1
		}
		fsys, err := fs.New(clock, d, p)
		if err != nil {
			fmt.Fprintln(a.Stderr, "pentiumbench:", err)
			return 1
		}
		st := workload.Replay(fsys.AsVFS(), tr)
		fmt.Fprintf(a.Stdout, "  %-24s %10.3f s   (%d ops, %s written, %s read, %d errors)\n",
			p.String(), clock.Now().Sub(0).Seconds(),
			st.Ops, mb(st.BytesWritten), mb(st.BytesRead), st.Errors)
	}
	return 0
}

func (a *App) latency(cfg core.Config) {
	plat := bench.PaperPlatform()
	fmt.Fprintln(a.Stdout, "lmbench-style latency probes (µs except where noted):")
	fmt.Fprintln(a.Stdout)
	fmt.Fprintf(a.Stdout, "  %-24s %9s %9s %9s %9s %10s %12s %9s\n",
		"system", "syscall", "selfpipe", "pipe RT", "ctx@2", "fork (ms)", "f+exec (ms)", "crt0 (ms)")
	for _, p := range cfg.Profiles {
		r := bench.Latencies(plat, p, cfg.Seed)
		fmt.Fprintf(a.Stdout, "  %-24s %9.2f %9.1f %9.1f %9.1f %10.2f %12.2f %9.2f\n",
			r.OS,
			r.Syscall.Microseconds(), r.SelfPipe.Microseconds(),
			r.PipeRT.Microseconds(), r.CtxTwoProc.Microseconds(),
			r.Fork.Milliseconds(), r.ForkExec.Milliseconds(),
			r.FSCreate.Milliseconds())
	}
	fmt.Fprintln(a.Stdout)
	fmt.Fprintln(a.Stdout, "Cross-check: §5 reports the Solaris self-pipe round trip at 80 µs.")
}

// trace without a selector prints the annotated kernel timeline of one
// token-ring lap per system — §5's cost decomposition, visible event by
// event. With experiment ids it runs the observability probes and
// exports their span streams: -format=chrome (the default) emits Chrome
// trace-event JSON on stdout (load it in Perfetto or chrome://tracing),
// -format=text a per-run summary with the tracks ranked by cumulative
// virtual time (-top limits the ranking).
func (a *App) trace(cfg core.Config, runner *core.Runner, ids []string,
	opts core.ObserveOpts, format string, top int) int {
	if len(ids) == 0 {
		return a.traceTimeline(cfg, opts.Procs)
	}
	suite, code := a.observeSuite(cfg, runner, ids, opts)
	if suite == nil {
		return code
	}
	switch format {
	case "chrome", "":
		if err := obs.WriteChrome(a.Stdout, suite.Processes); err != nil {
			fmt.Fprintln(a.Stderr, "pentiumbench:", err)
			return 1
		}
	case "text":
		a.traceText(suite, top)
	default:
		fmt.Fprintf(a.Stderr, "pentiumbench: unknown trace format %q (want chrome or text)\n", format)
		return 2
	}
	return 0
}

// traceText renders the per-run trace summaries: one line per run, then
// its tracks ranked by cumulative virtual time from the run's folded
// profile. top > 0 keeps only the heaviest tracks; ring-buffer drops are
// surfaced so a truncated capture is never mistaken for a complete one.
func (a *App) traceText(suite *core.SuiteObservation, top int) {
	for oi, o := range suite.Observations {
		if oi > 0 {
			fmt.Fprintln(a.Stdout)
		}
		fmt.Fprintf(a.Stdout, "%s — %s:\n", o.ID, o.Title)
		for _, run := range o.Runs {
			spans := 0
			for _, e := range run.Process.Events {
				if e.Kind == obs.EvBegin {
					spans++
				}
			}
			fmt.Fprintf(a.Stdout, "  %-24s %d tracks, %d events (%d spans), total %.2f %s",
				run.Label, len(run.Process.Tracks), len(run.Process.Events),
				spans, run.Total, run.Unit)
			if run.Process.Dropped > 0 {
				fmt.Fprintf(a.Stdout, "  [%d events ring-dropped]", run.Process.Dropped)
			}
			fmt.Fprintln(a.Stdout)
			if run.Profile == nil {
				continue
			}
			tracks := run.Profile.TrackTotals()
			sort.SliceStable(tracks, func(i, j int) bool {
				if tracks[i].TotalNs != tracks[j].TotalNs {
					return tracks[i].TotalNs > tracks[j].TotalNs
				}
				return tracks[i].Track < tracks[j].Track
			})
			shown := tracks
			if top > 0 && len(shown) > top {
				shown = shown[:top]
			}
			for _, tt := range shown {
				fmt.Fprintf(a.Stdout, "    %-22s %12d ns over %d spans",
					tt.Track, tt.TotalNs, tt.Spans)
				if tt.Truncated > 0 {
					fmt.Fprintf(a.Stdout, "  [truncated: %d incomplete]", tt.Truncated)
				}
				fmt.Fprintln(a.Stdout)
			}
			if len(shown) < len(tracks) {
				fmt.Fprintf(a.Stdout, "    (%d more tracks)\n", len(tracks)-len(shown))
			}
		}
	}
}

// traceTimeline is the bare `trace` command: one annotated token-ring
// lap per system, ring size set by -procs (default 3).
func (a *App) traceTimeline(cfg core.Config, procs int) int {
	if procs == 0 {
		procs = 3
	}
	if procs < 2 {
		fmt.Fprintln(a.Stderr, "pentiumbench: trace needs -procs >= 2")
		return 2
	}
	plat := bench.PaperPlatform()
	for _, p := range cfg.Profiles {
		fmt.Fprintf(a.Stdout, "%s — one %d-process token-ring lap:\n", p, procs)
		m, err := kernel.NewMachine(plat.CPU, p, sim.NewRNG(cfg.Seed))
		if err != nil {
			fmt.Fprintln(a.Stderr, "pentiumbench:", err)
			return 1
		}
		m.EnableTrace(64 * procs)
		pipes := make([]*kernel.Pipe, procs)
		for i := range pipes {
			pipes[i] = m.NewPipe()
		}
		for i := 0; i < procs; i++ {
			i := i
			m.Spawn(fmt.Sprintf("ring%d", i), func(pr *kernel.Proc) {
				if i != 0 {
					pr.ReadFull(pipes[i], 1)
				}
				pr.Write(pipes[(i+1)%procs], 1)
				if i == 0 {
					pr.ReadFull(pipes[0], 1)
				}
			})
		}
		if err := m.RunChecked(); err != nil {
			var d *sim.DeadlockError
			if errors.As(err, &d) {
				a.renderDeadlock(d)
			} else {
				fmt.Fprintln(a.Stderr, "pentiumbench:", err)
			}
			return 1
		}
		for _, e := range m.TraceEvents() {
			fmt.Fprintf(a.Stdout, "  %s\n", e)
		}
		fmt.Fprintf(a.Stdout, "  total %v across %d switches\n\n",
			m.Now().Sub(0).Std(), m.Switches())
	}
	return 0
}

// observeSuite resolves the id list ("all" → every probe) and runs the
// observability probes on the pool. A nil suite means the int is the
// exit code.
func (a *App) observeSuite(cfg core.Config, runner *core.Runner, ids []string,
	opts core.ObserveOpts) (*core.SuiteObservation, int) {
	if len(ids) == 1 && ids[0] == "all" {
		ids = core.ObservableIDs()
	}
	suite, err := runner.Observe(cfg, ids, opts)
	if err != nil {
		fmt.Fprintln(a.Stderr, "pentiumbench:", err)
		return nil, 2
	}
	return suite, 0
}

// metrics prints per-phase cycle-attribution tables for the given
// experiments: where the modelled time of each run went, one column per
// phase. The columns sum to the total, by construction of the phase
// ledgers.
func (a *App) metrics(cfg core.Config, runner *core.Runner, ids []string, opts core.ObserveOpts) int {
	if len(ids) == 0 {
		fmt.Fprintf(a.Stderr, "pentiumbench: metrics needs experiment ids or 'all' (observable: %v)\n",
			core.ObservableIDs())
		return 2
	}
	suite, code := a.observeSuite(cfg, runner, ids, opts)
	if suite == nil {
		return code
	}
	for oi, o := range suite.Observations {
		if oi > 0 {
			fmt.Fprintln(a.Stdout)
		}
		if len(o.Runs) == 0 {
			continue
		}
		fmt.Fprintf(a.Stdout, "%s — %s: per-phase attribution (%s)\n", o.ID, o.Title, o.Runs[0].Unit)
		head := o.Runs[0].Rows
		fmt.Fprintf(a.Stdout, "  %-24s", "system")
		for _, r := range head {
			fmt.Fprintf(a.Stdout, " %11s", r.Name)
		}
		fmt.Fprintf(a.Stdout, " %13s\n", "total")
		for _, run := range o.Runs {
			// Look rows up by name so every run prints in header order.
			vals := make(map[string]float64, len(run.Rows))
			for _, r := range run.Rows {
				vals[r.Name] = r.Value
			}
			fmt.Fprintf(a.Stdout, "  %-24s", run.Label)
			for _, h := range head {
				fmt.Fprintf(a.Stdout, " %11.2f", vals[h.Name])
			}
			fmt.Fprintf(a.Stdout, " %13.2f\n", run.Total)
		}
		if counters := faultCounters(o); len(counters) > 0 {
			fmt.Fprintln(a.Stdout, "  injected faults (summed across systems):")
			for _, c := range counters {
				fmt.Fprintf(a.Stdout, "    %-32s %14.0f\n", c.Name, c.Value)
			}
		}
	}
	// Capture-fidelity footer: a non-zero trace-drop count means the
	// span recorder's ring wrapped and the tables above were built from
	// an incomplete trace; the exemplar line reports reservoir evictions
	// (expected whenever more than K requests land in a window).
	var obsDropped, exDropped float64
	var haveObs, haveEx bool
	for _, c := range suite.Metrics.Counters {
		switch c.Name {
		case "runner.obs_dropped":
			obsDropped, haveObs = c.Value, true
		case "runner.exemplars_dropped":
			exDropped, haveEx = c.Value, true
		}
	}
	if haveObs {
		fmt.Fprintf(a.Stdout, "\nrecorder: %.0f trace events dropped", obsDropped)
		if obsDropped == 0 {
			fmt.Fprint(a.Stdout, " (capture complete)")
		}
		fmt.Fprintln(a.Stdout)
	}
	if haveEx {
		fmt.Fprintf(a.Stdout, "exemplars: %.0f candidates evicted from the reservoirs", exDropped)
		if exDropped == 0 {
			fmt.Fprint(a.Stdout, " (every candidate kept)")
		}
		fmt.Fprintln(a.Stdout)
	}
	return 0
}

func mb(n int64) string {
	if n >= 1<<20 {
		return fmt.Sprintf("%.1f MB", float64(n)/(1<<20))
	}
	return fmt.Sprintf("%.0f KB", float64(n)/(1<<10))
}

func (a *App) notes() {
	fmt.Fprintln(a.Stdout, "The paper's §11 qualitative findings (data, not measurements):")
	fmt.Fprintln(a.Stdout)
	sections := []struct {
		title string
		items []notes.Item
	}{
		{"Installation experiences", notes.Installation()},
		{"Porting experiences", notes.Porting()},
	}
	for _, sec := range sections {
		fmt.Fprintln(a.Stdout, sec.title+":")
		fmt.Fprintf(a.Stdout, "  %-48s %-8s %-8s %-8s\n", "", "Linux", "FreeBSD", "Solaris")
		for _, it := range sec.items {
			fmt.Fprintf(a.Stdout, "  %-48s %-8s %-8s %-8s\n", it.Aspect,
				it.PerOS[0], it.PerOS[1], it.PerOS[2])
			fmt.Fprintf(a.Stdout, "      %s\n", it.Detail)
		}
		fmt.Fprintln(a.Stdout)
	}
	fmt.Fprintln(a.Stdout, "Conclusions (§12):")
	c := notes.Conclusion()
	for _, k := range []string{"Linux 1.2.8", "FreeBSD 2.0.5R", "Solaris 2.4", "overall"} {
		fmt.Fprintf(a.Stdout, "  %-16s %s\n", k+":", c[k])
	}
}

// profiles dumps every built-in personality as JSON, serving as both
// calibration documentation and a template for -profiles files.
func (a *App) profiles() int {
	if err := osprofile.WriteJSON(a.Stdout, osprofile.All()); err != nil {
		fmt.Fprintln(a.Stderr, "pentiumbench:", err)
		return 1
	}
	return 0
}

func (a *App) platform() {
	plat := bench.PaperPlatform()
	fmt.Fprintln(a.Stdout, "Modelled platform: tnt.stanford.edu (paper §2.2)")
	fmt.Fprintf(a.Stdout, "  CPU:    %s\n", plat.CPU)
	fmt.Fprintln(a.Stdout, "  RAM:    32 MB")
	for _, g := range []disk.Geometry{disk.QuantumEmpire2100(), disk.HP3725()} {
		fmt.Fprintf(a.Stdout, "  Disk:   %-22s %5d MB  %.0f rpm  avg seek %v  %.1f MB/s\n",
			g.Name, g.CapacityMB, g.RPM, g.AvgSeek, g.TransferMBs)
	}
	fmt.Fprintln(a.Stdout, "  NIC:    3Com Etherlink III 3c509 (10 Mb/s)")
	fmt.Fprintln(a.Stdout)
	fmt.Fprintln(a.Stdout, "Disk partitioning (Table 1):")
	fmt.Fprintln(a.Stdout, "  DOS/Windows 6.2/3.1   250 MB")
	fmt.Fprintln(a.Stdout, "  Solaris     2.4       700 MB")
	fmt.Fprintln(a.Stdout, "  FreeBSD     2.0.5R    400 MB")
	fmt.Fprintln(a.Stdout, "  Linux       1.2.8     600 MB")
	fmt.Fprintln(a.Stdout)
	fmt.Fprintln(a.Stdout, "Systems under test:")
	for _, p := range osprofile.All() {
		fmt.Fprintf(a.Stdout, "  %-24s %-50s fs=%s sched=%v\n",
			p.String(), p.Lineage, p.FS.Type, p.Kernel.Scheduler)
	}
}
