package cli

// The locks and ipc commands: terminal front-ends for the SMP
// lock-contention model and the IPC transport family (DESIGN.md §16),
// printing the deterministic sweep tables behind the L1/L2 and I1
// exhibits without the twenty-run noise protocol.

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/kernel"
	"repro/internal/osprofile"
	"repro/internal/sim"
)

// locksNCPUs is the CPU sweep the locks command prints.
var locksNCPUs = []int{1, 2, 4, 8, 16}

// locksProfiles falls back to the paper personalities when -profiles is
// not given, matching the exhibit default.
func locksProfiles(cfg core.Config) []*osprofile.Profile {
	if len(cfg.Profiles) > 0 {
		return cfg.Profiles
	}
	return osprofile.Paper()
}

// locks prints the lock-contention sweep: per personality and lock kind,
// throughput and wait percentiles over the CPU count, with the spin and
// idle shares of the machine's time so the cost of each strategy is
// visible, not just its bottom line.
func (a *App) locks(cfg core.Config) int {
	crit := 20 * sim.Microsecond
	fmt.Fprintf(a.Stdout, "Lock contention: one worker per CPU, think 5µs, critical section %v\n", crit)
	fmt.Fprintf(a.Stdout, "(model behind exhibits L1/L2; wait percentiles over contended acquisitions)\n\n")
	for _, p := range locksProfiles(cfg) {
		for _, kind := range []kernel.LockKind{kernel.SpinLock, kernel.SleepLock} {
			fmt.Fprintf(a.Stdout, "%s — %s lock\n", p, kind)
			fmt.Fprintf(a.Stdout, "  %5s  %12s  %10s  %10s  %8s  %8s  %9s\n",
				"cpus", "ops/s", "p50 wait", "p99 wait", "spin%", "idle%", "switches")
			for _, ncpu := range locksNCPUs {
				r := core.LockPoint(p, kind, ncpu, crit)
				m := r.Machine
				var spin, idle, total sim.Duration
				for c := 0; c < m.NCPU(); c++ {
					b, i, s := m.Ledger(c)
					spin += s
					idle += i
					total += b + i + s
				}
				pct := func(d sim.Duration) float64 {
					if total == 0 {
						return 0
					}
					return 100 * float64(d) / float64(total)
				}
				p50 := sim.Duration(r.WaitHist.Quantile(0.5))
				p99 := sim.Duration(r.WaitHist.Quantile(0.99))
				fmt.Fprintf(a.Stdout, "  %5d  %12.1f  %10v  %10v  %7.1f%%  %7.1f%%  %9d\n",
					ncpu, r.Throughput(), p50, p99, pct(spin), pct(idle), m.Switches())
			}
			fmt.Fprintln(a.Stdout)
		}
	}
	return 0
}

// ipc prints the IPC bandwidth sweep: per personality and transport,
// MB/s over the message sizes the I1 exhibit plots. A -faults plan
// reaches the socket transport only.
func (a *App) ipc(cfg core.Config, plan *fault.Plan) int {
	sizes := []int{64, 256, 1024, 4096, 16384, 65536}
	transports := []string{"pipe", "socket", "shm"}
	fmt.Fprintf(a.Stdout, "IPC bandwidth (MB/s), 1 MB transfers (model behind exhibit I1)\n")
	if plan != nil {
		fmt.Fprintf(a.Stdout, "fault plan applies to the socket transport only\n")
	}
	fmt.Fprintln(a.Stdout)
	for _, p := range locksProfiles(cfg) {
		fmt.Fprintf(a.Stdout, "%s\n", p)
		fmt.Fprintf(a.Stdout, "  %-8s", "bytes")
		for _, tr := range transports {
			fmt.Fprintf(a.Stdout, "  %8s", tr)
		}
		fmt.Fprintln(a.Stdout)
		for _, msg := range sizes {
			fmt.Fprintf(a.Stdout, "  %-8d", msg)
			for _, tr := range transports {
				mbps, err := core.IPCPoint(cfg, p, tr, msg, plan)
				if err != nil {
					fmt.Fprintln(a.Stderr, "pentiumbench:", err)
					return 1
				}
				fmt.Fprintf(a.Stdout, "  %8.2f", mbps)
			}
			fmt.Fprintln(a.Stdout)
		}
		fmt.Fprintln(a.Stdout)
	}
	return 0
}
