package cli

import (
	"fmt"
	"io"

	"repro/internal/baseline"
	"repro/internal/core"
)

// profileCmd implements `pentiumbench profile <ids|all>`: run the
// observability probes, fold their span streams into the merged exact
// virtual-time profile (already folded by the runner, per run, in the
// parallel tasks) and export it. The export bytes are identical at every
// -j: per-run folds merge in input order and the sample order is
// canonical, so the worker count can never leak into the output.
func (a *App) profileCmd(cfg core.Config, runner *core.Runner, ids []string,
	opts core.ObserveOpts, format string, top int, outPath string) int {
	if len(ids) == 0 {
		fmt.Fprintf(a.Stderr, "pentiumbench: profile needs experiment ids or 'all' (observable: %v)\n",
			core.ObservableIDs())
		return 2
	}
	suite, code := a.observeSuite(cfg, runner, ids, opts)
	if suite == nil {
		return code
	}
	var w io.Writer = a.Stdout
	if outPath != "" {
		f, err := a.CreateFile(outPath)
		if err != nil {
			fmt.Fprintln(a.Stderr, "pentiumbench:", err)
			return 1
		}
		defer f.Close()
		w = f
	}
	var err error
	switch format {
	case "top", "":
		err = suite.Profile.WriteTop(w, top)
	case "folded":
		err = suite.Profile.WriteFolded(w)
	case "pprof":
		err = suite.Profile.WritePprof(w)
	default:
		fmt.Fprintf(a.Stderr, "pentiumbench: unknown profile format %q (want top, folded or pprof)\n", format)
		return 2
	}
	if err != nil {
		fmt.Fprintln(a.Stderr, "pentiumbench:", err)
		return 1
	}
	if outPath != "" {
		fmt.Fprintln(a.Stdout, "wrote", outPath)
	}
	return 0
}

// baseline implements `pentiumbench baseline record|check|diff`, the
// metric regression harness (DESIGN.md §10).
func (a *App) baseline(cfg core.Config, runner *core.Runner, args []string,
	opts core.ObserveOpts, path string, tol float64) int {
	if len(args) == 0 {
		fmt.Fprintln(a.Stderr, "pentiumbench: baseline needs a verb: record [ids|all], check, or diff <a.json> <b.json>")
		return 2
	}
	switch args[0] {
	case "record":
		return a.baselineRecord(cfg, runner, args[1:], opts, path)
	case "check":
		return a.baselineCheck(cfg, runner, opts, path, tol)
	case "diff":
		return a.baselineDiff(args[1:], tol)
	default:
		fmt.Fprintf(a.Stderr, "pentiumbench: unknown baseline verb %q (want record, check or diff)\n", args[0])
		return 2
	}
}

// baselineRecord captures the canonical metrics snapshot of the given
// probes (default: every observable experiment) and writes the baseline
// file. The capture is a pure function of (ids, seed), so a re-record
// without model changes is byte-identical.
func (a *App) baselineRecord(cfg core.Config, runner *core.Runner, ids []string,
	opts core.ObserveOpts, path string) int {
	if len(ids) == 0 || (len(ids) == 1 && ids[0] == "all") {
		ids = core.ObservableIDs()
	}
	suite, code := a.observeSuite(cfg, runner, ids, opts)
	if suite == nil {
		return code
	}
	f := baseline.FromSuite(ids, cfg.Seed, suite)
	data, err := f.Marshal()
	if err != nil {
		fmt.Fprintln(a.Stderr, "pentiumbench:", err)
		return 1
	}
	out, err := a.CreateFile(path)
	if err != nil {
		fmt.Fprintln(a.Stderr, "pentiumbench:", err)
		return 1
	}
	if _, err := out.Write(data); err != nil {
		out.Close()
		fmt.Fprintln(a.Stderr, "pentiumbench:", err)
		return 1
	}
	if err := out.Close(); err != nil {
		fmt.Fprintln(a.Stderr, "pentiumbench:", err)
		return 1
	}
	fmt.Fprintf(a.Stdout, "wrote %s: %d experiments, %d metric points (seed %d)\n",
		path, len(f.Experiments), f.MetricCount(), f.Seed)
	return 0
}

// baselineCheck loads the baseline, re-runs the recorded probes with the
// recorded seed — the gate is self-contained; command-line -seed does not
// leak in — and diffs the fresh capture against the file. Exit 0 on a
// clean pass; exit 1 with the ranked regression table on any violation.
func (a *App) baselineCheck(cfg core.Config, runner *core.Runner,
	opts core.ObserveOpts, path string, tol float64) int {
	data, err := a.ReadFile(path)
	if err != nil {
		fmt.Fprintln(a.Stderr, "pentiumbench:", err)
		return 2
	}
	base, err := baseline.Load(data)
	if err != nil {
		fmt.Fprintln(a.Stderr, "pentiumbench:", err)
		return 2
	}
	cfg.Seed = base.Seed
	suite, code := a.observeSuite(cfg, runner, base.IDs, opts)
	if suite == nil {
		return code
	}
	cur := baseline.FromSuite(base.IDs, cfg.Seed, suite)
	res := baseline.Compare(base, cur, tol)
	if res.OK() {
		fmt.Fprintf(a.Stdout, "baseline check: %d metric points match %s (seed %d)\n",
			res.Compared, path, base.Seed)
		return 0
	}
	fmt.Fprintf(a.Stdout, "baseline check: %d of %d metric points regressed against %s\n\n",
		len(res.Violations), res.Compared, path)
	res.WriteTable(a.Stdout)
	fmt.Fprintf(a.Stderr, "pentiumbench: baseline check failed (%d violations); intended? re-record with 'baseline record'\n",
		len(res.Violations))
	return 1
}

// baselineDiff compares two recorded baseline files without running
// anything. Exit 0 when they agree, 1 (with the ranked table) when not —
// diff(1) semantics.
func (a *App) baselineDiff(args []string, tol float64) int {
	if len(args) != 2 {
		fmt.Fprintln(a.Stderr, "pentiumbench: baseline diff needs two baseline files")
		return 2
	}
	files := make([]*baseline.File, 2)
	for i, path := range args {
		data, err := a.ReadFile(path)
		if err != nil {
			fmt.Fprintln(a.Stderr, "pentiumbench:", err)
			return 2
		}
		if files[i], err = baseline.Load(data); err != nil {
			fmt.Fprintln(a.Stderr, "pentiumbench:", err)
			return 2
		}
	}
	res := baseline.Compare(files[0], files[1], tol)
	if res.OK() {
		fmt.Fprintf(a.Stdout, "baselines agree: %d metric points compared\n", res.Compared)
		return 0
	}
	fmt.Fprintf(a.Stdout, "baselines differ in %d of %d metric points\n\n",
		len(res.Violations), res.Compared)
	res.WriteTable(a.Stdout)
	return 1
}
