package cli

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/fault"
)

// scale implements `pentiumbench scale`: sweep the NFS server model's
// client population — decades from 10 up to -clients — and print each
// personality's served throughput, streaming latency percentiles and
// overload counters (retransmitted, queue-dropped and shed requests).
// -faults injects a fault plan into every point: lossy clients
// retransmit and back off, so the curves degrade instead of the run
// crashing. Every point derives from the master seed, so the whole
// report is byte-identical run to run.
func (a *App) scale(cfg core.Config, clients, nfsd int, plan *fault.Plan) int {
	if clients <= 0 {
		clients = 1_000_000
	}
	if nfsd <= 0 {
		nfsd = 8
	}
	fmt.Fprintf(a.Stdout, "NFS server scale-out: %d nfsd slots, open-loop 1 op/s per client\n", nfsd)
	if plan != nil {
		name := plan.Name
		if name == "" {
			name = "unnamed"
		}
		fmt.Fprintf(a.Stdout, "fault plan %q injected into every point\n", name)
	}
	for _, p := range cfg.Profiles {
		fmt.Fprintf(a.Stdout, "\n%s:\n", p)
		fmt.Fprintf(a.Stdout, "  %9s %9s %10s %10s %10s %6s %9s %8s %7s\n",
			"clients", "ops/s", "p50 ms", "p99 ms", "p999 ms", "util", "retrans", "drops", "shed")
		for _, n := range scaleCounts(clients) {
			r := core.ScaleRun(cfg, p, n, nfsd, plan)
			fmt.Fprintf(a.Stdout, "  %9d %9.2f %10.2f %10.2f %10.2f %5.1f%% %9d %8d %7d\n",
				n, r.Throughput(),
				r.Quantile(0.5).Milliseconds(),
				r.Quantile(0.99).Milliseconds(),
				r.Quantile(0.999).Milliseconds(),
				100*r.Utilization(),
				r.Retransmits, r.QueueDrops, r.Shed)
		}
	}
	return 0
}

// scaleCounts is the decade sweep 10 … max, with max itself appended
// when it is not already a decade point.
func scaleCounts(max int) []int {
	var out []int
	for n := 10; n <= max; n *= 10 {
		out = append(out, n)
	}
	if len(out) == 0 || out[len(out)-1] != max {
		out = append(out, max)
	}
	return out
}
