package cli

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"slices"
	"strings"
	"sync/atomic"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/memo"
	"repro/internal/obs"
)

// serveSchema versions the persistent serve-response cache: bump it when
// a response format changes so a -memo directory from an older build
// degrades to recomputes (the store's key echo rejects the old entries).
// /2: exemplar and audit endpoints, histogram exposition in /api/metrics.
const serveSchema = "pentiumbench-serve/2"

// serveEntry is one cached endpoint response: the body, its content
// type, and the SHA-256 content hash that doubles as the ETag. It is
// the unit the memo table (in-process single-flight) and the memo store
// (persistent, -memo) both hold.
type serveEntry struct {
	Body []byte `json:"body"`
	Type string `json:"type"`
	ETag string `json:"etag"`
	// Code is the HTTP status; error responses cache in-process (they
	// are deterministic) but are never persisted.
	Code int `json:"code"`
}

// serveHandler is the pentiumbench observability server: every endpoint
// is a deterministic function of the configuration, so responses are
// computed once (single-flight), content-hashed, and replayed from cache
// with a working If-None-Match → 304 path.
type serveHandler struct {
	cfg      core.Config
	runner   *core.Runner
	opts     cmdOpts
	readFile func(string) ([]byte, error)
	table    *memo.Table[string, serveEntry]
	mux      *http.ServeMux
	// computes counts cache-miss computations; tests assert the
	// single-flight property (N concurrent cold requests, one compute).
	computes atomic.Int64
}

// newServeHandler builds the HTTP handler; the CLI wraps it in a
// listener, tests in httptest. readFile loads the -baseline file for
// /api/baseline/diff (injected so tests control the filesystem).
func newServeHandler(cfg core.Config, runner *core.Runner, opts cmdOpts,
	readFile func(string) ([]byte, error)) *serveHandler {
	h := &serveHandler{
		cfg:      cfg,
		runner:   runner,
		opts:     opts,
		readFile: readFile,
		table:    memo.NewTable[string, serveEntry](),
		mux:      http.NewServeMux(),
	}
	h.mux.HandleFunc("/api/experiments", h.handle(func(r *http.Request) serveEntry {
		return h.experiments()
	}))
	h.mux.HandleFunc("/api/metrics/", h.handleID("/api/metrics/", h.metrics))
	h.mux.HandleFunc("/api/timeseries/", h.handleID("/api/timeseries/", h.timeseries))
	h.mux.HandleFunc("/api/trace/", h.handleID("/api/trace/", h.trace))
	h.mux.HandleFunc("/api/profile/", h.handleID("/api/profile/", h.profile))
	h.mux.HandleFunc("/api/exemplars/", h.handleID("/api/exemplars/", h.exemplars))
	h.mux.HandleFunc("/api/audit/", h.handleID("/api/audit/", h.audit))
	h.mux.HandleFunc("/api/baseline/diff", h.handle(func(r *http.Request) serveEntry {
		return h.baselineDiff()
	}))
	return h
}

func (h *serveHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.mux.ServeHTTP(w, r)
}

// handle wraps an endpoint computation with the cache, the ETag, and the
// 304 path. The cache key is the full path plus the format selector, so
// distinct responses never share an entry.
func (h *serveHandler) handle(compute func(*http.Request) serveEntry) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		key := r.URL.Path
		if f := r.URL.Query().Get("format"); f != "" {
			key += "?format=" + f
		}
		e := h.table.Do(key, func() serveEntry {
			h.computes.Add(1)
			return h.stored(key, func() serveEntry { return compute(r) })
		})
		if e.Code == http.StatusOK {
			w.Header().Set("ETag", e.ETag)
			if inm := r.Header.Get("If-None-Match"); inm != "" && etagMatch(inm, e.ETag) {
				w.WriteHeader(http.StatusNotModified)
				return
			}
		}
		w.Header().Set("Content-Type", e.Type)
		w.WriteHeader(e.Code)
		if r.Method != http.MethodHead {
			w.Write(e.Body)
		}
	}
}

// stored is the persistent layer: with -memo attached, successful
// responses are content-addressed on disk under a key carrying the
// serve schema, the seed and the endpoint, so a restarted server is
// warm from its first request.
func (h *serveHandler) stored(key string, compute func() serveEntry) serveEntry {
	if h.cfg.Memo == nil {
		return compute()
	}
	mat, err := json.Marshal(map[string]any{
		"schema": serveSchema, "seed": h.cfg.Seed, "runs": h.cfg.Runs,
		"window": int64(h.opts.window), "clients": h.opts.clients,
		"nfsd": h.opts.nfsd, "procs": h.opts.procs,
		"exemplars": h.opts.exemplars, "endpoint": key,
	})
	if err != nil {
		return compute()
	}
	var e serveEntry
	if h.cfg.Memo.Get(mat, &e) && e.Code == http.StatusOK {
		return e
	}
	e = compute()
	if e.Code == http.StatusOK {
		h.cfg.Memo.Put(mat, e)
	}
	return e
}

// etagMatch reports whether the If-None-Match header value matches the
// entity tag ("*" or a comma-separated candidate list).
func etagMatch(header, etag string) bool {
	if strings.TrimSpace(header) == "*" {
		return true
	}
	for _, c := range strings.Split(header, ",") {
		if strings.TrimSpace(c) == etag {
			return true
		}
	}
	return false
}

// entry finalizes a successful response: the ETag is the SHA-256 of the
// body, strong and content-addressed, so any byte change rolls it.
func entry(body []byte, contentType string) serveEntry {
	sum := sha256.Sum256(body)
	return serveEntry{
		Body: body,
		Type: contentType,
		ETag: `"sha256-` + hex.EncodeToString(sum[:]) + `"`,
		Code: http.StatusOK,
	}
}

// fail builds an uncached-on-disk JSON error response.
func fail(code int, format string, args ...any) serveEntry {
	body, _ := json.Marshal(map[string]string{"error": fmt.Sprintf(format, args...)})
	return serveEntry{Body: append(body, '\n'), Type: "application/json", Code: code}
}

// handleID adapts an id-parameterized endpoint: the id is the path
// remainder after the prefix, validated against the observable set.
func (h *serveHandler) handleID(prefix string, fn func(id string, r *http.Request) serveEntry) http.HandlerFunc {
	return h.handle(func(r *http.Request) serveEntry {
		id := strings.TrimPrefix(r.URL.Path, prefix)
		if id == "" || strings.Contains(id, "/") {
			return fail(http.StatusNotFound, "missing experiment id (observable: %v)", core.ObservableIDs())
		}
		if !slices.Contains(core.ObservableIDs(), id) {
			return fail(http.StatusNotFound, "unknown experiment %q (observable: %v)", id, core.ObservableIDs())
		}
		return fn(id, r)
	})
}

// observe runs one probe with the serve options; window attaches the
// time-series sampler, exemplarK the per-window exemplar reservoirs.
func (h *serveHandler) observe(id string, window bool, exemplarK int) (*core.SuiteObservation, error) {
	opts := core.ObserveOpts{Procs: h.opts.procs, Clients: h.opts.clients,
		Nfsd: h.opts.nfsd, ExemplarK: exemplarK}
	if window {
		opts.Window = h.opts.window
	}
	return h.runner.Observe(h.cfg, []string{id}, opts)
}

// exemplarK is the reservoir size the exemplar and audit endpoints use:
// the -exemplars flag when given, else 4 (the audit default) — these
// endpoints exist to show exemplars, so zero would be useless.
func (h *serveHandler) exemplarK() int {
	if h.opts.exemplars > 0 {
		return h.opts.exemplars
	}
	return 4
}

// experiments lists the observability surface: every observable probe,
// with its title and whether it is sampled/faultable.
func (h *serveHandler) experiments() serveEntry {
	type exp struct {
		ID        string `json:"id"`
		Title     string `json:"title"`
		Sampled   bool   `json:"sampled"`
		Faultable bool   `json:"faultable"`
	}
	var out []exp
	for _, id := range core.ObservableIDs() {
		title := id
		if e, ok := core.Lookup(id); ok {
			title = e.Title
		}
		out = append(out, exp{
			ID: id, Title: title,
			Sampled:   slices.Contains(core.SampledIDs(), id),
			Faultable: slices.Contains(core.FaultableIDs(), id),
		})
	}
	body, _ := json.MarshalIndent(out, "", "  ")
	return entry(append(body, '\n'), "application/json")
}

// metrics renders one probe's merged metric snapshot in the Prometheus
// text exposition format, runner self-metrics excluded (they carry wall
// clock and would roll the content hash on every compute).
func (h *serveHandler) metrics(id string, _ *http.Request) serveEntry {
	suite, err := h.observe(id, false, h.opts.exemplars)
	if err != nil {
		return fail(http.StatusInternalServerError, "observe %s: %v", id, err)
	}
	var b bytes.Buffer
	for _, o := range suite.Observations {
		for _, run := range o.Runs {
			snap := run.Metrics.ExcludePrefix("runner.")
			for _, c := range snap.Counters {
				fmt.Fprintf(&b, "%s{experiment=%q,system=%q} %v\n",
					promName(c.Name), o.ID, run.Label, c.Value)
			}
			for _, d := range snap.Dists {
				n := promName(d.Name)
				fmt.Fprintf(&b, "%s_count{experiment=%q,system=%q} %d\n", n, o.ID, run.Label, d.Count)
				fmt.Fprintf(&b, "%s_sum{experiment=%q,system=%q} %v\n", n, o.ID, run.Label, d.Sum)
			}
		}
	}
	promLatencyHist(&b, suite)
	return entry(b.Bytes(), "text/plain; version=0.0.4; charset=utf-8")
}

// promLatencyHist appends the NFS scale probes' full latency histogram
// as a real Prometheus histogram family: cumulative le buckets on the
// stats.Histogram boundaries, a +Inf bucket, _sum and _count, with the
// HELP/TYPE header once before the first sample.
func promLatencyHist(b *bytes.Buffer, suite *core.SuiteObservation) {
	const family = "pentiumbench_nfs_latency_ns"
	wroteHead := false
	for _, o := range suite.Observations {
		for _, run := range o.Runs {
			hist := run.LatencyHist
			if hist == nil || hist.N() == 0 {
				continue
			}
			if !wroteHead {
				fmt.Fprintf(b, "# HELP %s NFS request latency in virtual nanoseconds.\n", family)
				fmt.Fprintf(b, "# TYPE %s histogram\n", family)
				wroteHead = true
			}
			cum := uint64(0)
			for _, bk := range hist.Buckets() {
				cum += bk.Count
				fmt.Fprintf(b, "%s_bucket{experiment=%q,system=%q,le=\"%d\"} %d\n",
					family, o.ID, run.Label, bk.Upper, cum)
			}
			fmt.Fprintf(b, "%s_bucket{experiment=%q,system=%q,le=\"+Inf\"} %d\n",
				family, o.ID, run.Label, hist.N())
			fmt.Fprintf(b, "%s_sum{experiment=%q,system=%q} %d\n", family, o.ID, run.Label, hist.Sum())
			fmt.Fprintf(b, "%s_count{experiment=%q,system=%q} %d\n", family, o.ID, run.Label, hist.N())
		}
	}
}

// promName maps a dotted metric name onto the Prometheus grammar
// ([a-zA-Z_:][a-zA-Z0-9_:]*), prefixed to namespace the exposition.
func promName(name string) string {
	var sb strings.Builder
	sb.WriteString("pentiumbench_")
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			sb.WriteRune(r)
		default:
			sb.WriteByte('_')
		}
	}
	return sb.String()
}

// timeseries serves one sampled probe's virtual-time series as JSON —
// the same snapshots the timeseries CLI command emits.
func (h *serveHandler) timeseries(id string, _ *http.Request) serveEntry {
	if !slices.Contains(core.SampledIDs(), id) {
		return fail(http.StatusNotFound, "%q has no time-series instrumentation (sampled: %v)", id, core.SampledIDs())
	}
	suite, err := h.observe(id, true, h.opts.exemplars)
	if err != nil {
		return fail(http.StatusInternalServerError, "observe %s: %v", id, err)
	}
	type runSeries struct {
		Experiment string          `json:"experiment"`
		System     string          `json:"system"`
		Series     *obs.TimeSeries `json:"series"`
	}
	out := []runSeries{}
	for _, o := range suite.Observations {
		for _, run := range o.Runs {
			if run.Series != nil {
				out = append(out, runSeries{o.ID, run.Label, run.Series})
			}
		}
	}
	body, _ := json.MarshalIndent(out, "", "  ")
	return entry(append(body, '\n'), "application/json")
}

// trace serves one probe's span streams as Chrome trace-event JSON
// (load in Perfetto or chrome://tracing).
func (h *serveHandler) trace(id string, _ *http.Request) serveEntry {
	suite, err := h.observe(id, false, h.opts.exemplars)
	if err != nil {
		return fail(http.StatusInternalServerError, "observe %s: %v", id, err)
	}
	var b bytes.Buffer
	if err := obs.WriteChrome(&b, suite.Processes); err != nil {
		return fail(http.StatusInternalServerError, "trace %s: %v", id, err)
	}
	return entry(b.Bytes(), "application/json")
}

// profile serves one probe's exact virtual-time profile: folded stacks
// by default, ?format=pprof the go-tool-pprof protobuf.
func (h *serveHandler) profile(id string, r *http.Request) serveEntry {
	format := r.URL.Query().Get("format")
	switch format {
	case "", "folded", "pprof":
	default:
		return fail(http.StatusBadRequest, "unknown profile format %q (want folded or pprof)", format)
	}
	suite, err := h.observe(id, false, h.opts.exemplars)
	if err != nil {
		return fail(http.StatusInternalServerError, "observe %s: %v", id, err)
	}
	var b bytes.Buffer
	if format == "pprof" {
		if err := suite.Profile.WritePprof(&b); err != nil {
			return fail(http.StatusInternalServerError, "profile %s: %v", id, err)
		}
		return entry(b.Bytes(), "application/octet-stream")
	}
	if err := suite.Profile.WriteFolded(&b); err != nil {
		return fail(http.StatusInternalServerError, "profile %s: %v", id, err)
	}
	return entry(b.Bytes(), "text/plain; charset=utf-8")
}

// exemplars serves one scale probe's tail-biased request lifecycles:
// per latency window, the K exemplar requests with every phase of their
// lifetime (wire, RTO, queue, CPU, disk wait, disk) — the raw material
// behind the audit's per-request checks.
func (h *serveHandler) exemplars(id string, _ *http.Request) serveEntry {
	if !slices.Contains(core.AuditableIDs(), id) {
		return fail(http.StatusNotFound, "%q has no exemplar instrumentation (instrumented: %v)",
			id, core.AuditableIDs())
	}
	suite, err := h.observe(id, true, h.exemplarK())
	if err != nil {
		return fail(http.StatusInternalServerError, "observe %s: %v", id, err)
	}
	type runExemplars struct {
		Experiment string               `json:"experiment"`
		System     string               `json:"system"`
		ExemplarK  int                  `json:"exemplar_k"`
		WindowNs   int64                `json:"window_ns"`
		Dropped    int64                `json:"dropped"`
		Windows    []obs.ExemplarWindow `json:"windows"`
	}
	out := []runExemplars{}
	for _, o := range suite.Observations {
		for _, run := range o.Runs {
			if run.LatencyHist == nil {
				continue
			}
			out = append(out, runExemplars{
				Experiment: o.ID, System: run.Label,
				ExemplarK: h.exemplarK(), WindowNs: int64(h.opts.window),
				Dropped: run.ExemplarDrops, Windows: run.Exemplars,
			})
		}
	}
	body, _ := json.MarshalIndent(out, "", "  ")
	return entry(append(body, '\n'), "application/json")
}

// audit serves one scale probe's queueing-law verdict: the same reports
// the audit CLI command produces, violations ranked worst-first.
func (h *serveHandler) audit(id string, _ *http.Request) serveEntry {
	if !slices.Contains(core.AuditableIDs(), id) {
		return fail(http.StatusNotFound, "no audit for %q (auditable: %v)", id, core.AuditableIDs())
	}
	ao, err := core.Audit(h.cfg, id, core.ObserveOpts{
		Procs: h.opts.procs, Clients: h.opts.clients, Nfsd: h.opts.nfsd,
		Window: h.opts.window, ExemplarK: h.exemplarK(),
	})
	if err != nil {
		return fail(http.StatusInternalServerError, "audit %s: %v", id, err)
	}
	body, _ := json.MarshalIndent(map[string]any{
		"id": ao.ID, "title": ao.Title, "ok": ao.OK(), "reports": ao.Reports,
	}, "", "  ")
	return entry(append(body, '\n'), "application/json")
}

// baselineDiff re-runs the committed baseline's probes with its recorded
// seed and returns the comparison as JSON — the baseline-check gate as
// a live endpoint.
func (h *serveHandler) baselineDiff() serveEntry {
	data, err := h.readFile(h.opts.baseline)
	if err != nil {
		return fail(http.StatusNotFound, "baseline: %v", err)
	}
	base, err := baseline.Load(data)
	if err != nil {
		return fail(http.StatusInternalServerError, "baseline: %v", err)
	}
	cfg := h.cfg
	cfg.Seed = base.Seed
	suite, err := h.runner.Observe(cfg, base.IDs, core.ObserveOpts{})
	if err != nil {
		return fail(http.StatusInternalServerError, "observe: %v", err)
	}
	cur := baseline.FromSuite(base.IDs, cfg.Seed, suite)
	res := baseline.Compare(base, cur, h.opts.tol)
	body, _ := json.MarshalIndent(map[string]any{
		"baseline":   h.opts.baseline,
		"seed":       base.Seed,
		"compared":   res.Compared,
		"ok":         res.OK(),
		"violations": res.Violations,
	}, "", "  ")
	return entry(append(body, '\n'), "application/json")
}

// serve runs the observability server until the listener fails (or the
// process is interrupted). The bound address is printed first, so
// scripts using -addr 127.0.0.1:0 can parse the chosen port.
func (a *App) serve(cfg core.Config, runner *core.Runner, o cmdOpts) int {
	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		fmt.Fprintln(a.Stderr, "pentiumbench:", err)
		return 1
	}
	fmt.Fprintf(a.Stdout, "serving on http://%s\n", ln.Addr())
	srv := &http.Server{Handler: newServeHandler(cfg, runner, o, a.ReadFile)}
	if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
		fmt.Fprintln(a.Stderr, "pentiumbench:", err)
		return 1
	}
	return 0
}
