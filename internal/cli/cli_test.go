package cli

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"testing"
)

// testApp returns an app with captured output and an in-memory
// filesystem for SVG writes.
func testApp() (*App, *bytes.Buffer, *bytes.Buffer, map[string]*bytes.Buffer) {
	var out, errb bytes.Buffer
	files := map[string]*bytes.Buffer{}
	a := &App{
		Stdout: &out,
		Stderr: &errb,
		ReadFile: func(path string) ([]byte, error) {
			if b, ok := files[path]; ok {
				return b.Bytes(), nil
			}
			return nil, fmt.Errorf("no file %s", path)
		},
		CreateFile: func(path string) (io.WriteCloser, error) {
			b := &bytes.Buffer{}
			files[path] = b
			return nopCloser{b}, nil
		},
		MkdirAll: func(string, os.FileMode) error { return nil },
	}
	return a, &out, &errb, files
}

type nopCloser struct{ io.Writer }

func (nopCloser) Close() error { return nil }

func TestNoArgsShowsUsage(t *testing.T) {
	a, _, errb, _ := testApp()
	if code := a.Execute(nil); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "usage:") {
		t.Fatal("usage not shown")
	}
}

func TestUnknownCommand(t *testing.T) {
	a, _, errb, _ := testApp()
	if code := a.Execute([]string{"bogus"}); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "unknown command") {
		t.Fatal("error not reported")
	}
}

func TestList(t *testing.T) {
	a, out, _, _ := testApp()
	if code := a.Execute([]string{"list"}); code != 0 {
		t.Fatalf("exit = %d", code)
	}
	for _, want := range []string{"T2", "F13", "A6", "table", "figure"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("list output missing %q", want)
		}
	}
}

func TestRunSingleExperiment(t *testing.T) {
	a, out, _, _ := testApp()
	if code := a.Execute([]string{"-runs", "3", "run", "T2"}); code != 0 {
		t.Fatalf("exit = %d", code)
	}
	if !strings.Contains(out.String(), "System Call") || !strings.Contains(out.String(), "Norm.") {
		t.Fatalf("run output malformed:\n%s", out.String())
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	a, _, errb, _ := testApp()
	if code := a.Execute([]string{"run", "T99"}); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "unknown experiment") {
		t.Fatal("error not reported")
	}
}

func TestRunWithoutIDs(t *testing.T) {
	a, _, _, _ := testApp()
	if code := a.Execute([]string{"run"}); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}

func TestCSV(t *testing.T) {
	a, out, _, _ := testApp()
	if code := a.Execute([]string{"-runs", "3", "csv", "T4"}); code != 0 {
		t.Fatalf("exit = %d", code)
	}
	if !strings.HasPrefix(out.String(), "experiment,series,") {
		t.Fatalf("csv header missing:\n%.100s", out.String())
	}
}

func TestSVGWritesFiles(t *testing.T) {
	a, out, _, files := testApp()
	if code := a.Execute([]string{"-runs", "3", "-out", "figs", "svg", "T2", "F3"}); code != 0 {
		t.Fatalf("exit = %d", code)
	}
	for _, path := range []string{"figs/T2.svg", "figs/F3.svg"} {
		b, ok := files[path]
		if !ok {
			t.Fatalf("missing %s; wrote: %v", path, out.String())
		}
		if !strings.Contains(b.String(), "<svg") {
			t.Fatalf("%s is not SVG", path)
		}
	}
}

func TestReplayBuiltin(t *testing.T) {
	a, out, _, _ := testApp()
	if code := a.Execute([]string{"replay", "tmpfiles"}); code != 0 {
		t.Fatalf("exit = %d", code)
	}
	for _, want := range []string{"Linux 1.2.8", "FreeBSD 2.0.5R", "Solaris 2.4", "0 errors"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("replay output missing %q:\n%s", want, out.String())
		}
	}
}

func TestReplayFromFile(t *testing.T) {
	a, out, _, files := testApp()
	files["my.trace"] = bytes.NewBufferString("mkdir /d\ncreate /d/f 64K\nread /d/f\n")
	if code := a.Execute([]string{"replay", "my.trace"}); code != 0 {
		t.Fatalf("exit = %d", code)
	}
	if !strings.Contains(out.String(), "my.trace") {
		t.Fatal("trace name not echoed")
	}
}

func TestReplayMissingTrace(t *testing.T) {
	a, _, errb, _ := testApp()
	if code := a.Execute([]string{"replay", "nope.trace"}); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "no such file") {
		t.Fatalf("error not reported: %s", errb.String())
	}
}

func TestReplayBadTraceFile(t *testing.T) {
	a, _, errb, _ := testApp()
	files := map[string]*bytes.Buffer{"bad.trace": bytes.NewBufferString("frob /x\n")}
	a.ReadFile = func(p string) ([]byte, error) {
		if b, ok := files[p]; ok {
			return b.Bytes(), nil
		}
		return nil, fmt.Errorf("no file")
	}
	if code := a.Execute([]string{"replay", "bad.trace"}); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "unknown operation") {
		t.Fatalf("parse error not surfaced: %s", errb.String())
	}
}

func TestLatency(t *testing.T) {
	a, out, _, _ := testApp()
	if code := a.Execute([]string{"latency"}); code != 0 {
		t.Fatalf("exit = %d", code)
	}
	if !strings.Contains(out.String(), "selfpipe") || !strings.Contains(out.String(), "Solaris 2.4") {
		t.Fatalf("latency output malformed:\n%s", out.String())
	}
}

func TestNotes(t *testing.T) {
	a, out, _, _ := testApp()
	if code := a.Execute([]string{"notes"}); code != 0 {
		t.Fatalf("exit = %d", code)
	}
	for _, want := range []string{"Installation experiences", "Porting experiences", "Conclusions"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("notes missing %q", want)
		}
	}
}

func TestPlatform(t *testing.T) {
	a, out, _, _ := testApp()
	if code := a.Execute([]string{"platform"}); code != 0 {
		t.Fatalf("exit = %d", code)
	}
	for _, want := range []string{"Pentium", "HP 3725", "Quantum", "Table 1", "ext2fs"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("platform missing %q", want)
		}
	}
}

func TestFutureFlag(t *testing.T) {
	a, out, _, _ := testApp()
	if code := a.Execute([]string{"-runs", "3", "-future", "run", "T2"}); code != 0 {
		t.Fatalf("exit = %d", code)
	}
	if !strings.Contains(out.String(), "1.3.40") {
		t.Fatal("-future did not add the development kernels")
	}
}

func TestBadFlag(t *testing.T) {
	a, _, _, _ := testApp()
	if code := a.Execute([]string{"-nonsense"}); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}

func TestCheckCommand(t *testing.T) {
	if testing.Short() {
		t.Skip("check runs every exhibit")
	}
	a, out, _, _ := testApp()
	if code := a.Execute([]string{"check"}); code != 0 {
		t.Fatalf("check failed (exit %d):\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "30/30 claims hold.") {
		t.Fatalf("unexpected check summary:\n%s", out.String())
	}
}

func TestProfilesDumpAndReload(t *testing.T) {
	a, out, _, _ := testApp()
	if code := a.Execute([]string{"profiles"}); code != 0 {
		t.Fatalf("exit = %d", code)
	}
	dump := out.String()
	if !strings.Contains(dump, `"scan-all"`) || !strings.Contains(dump, "SunOS") {
		t.Fatalf("profiles dump incomplete:\n%.300s", dump)
	}
	// The dump must be loadable back through -profiles.
	b, bOut, _, _ := testApp()
	b.ReadFile = func(string) ([]byte, error) { return []byte(dump), nil }
	if code := b.Execute([]string{"-runs", "2", "-profiles", "x.json", "run", "T2"}); code != 0 {
		t.Fatalf("reload exit = %d", code)
	}
	// The run now includes built-ins twice over: just check one extra name.
	if !strings.Contains(bOut.String(), "SunOS 4.1.4") {
		t.Fatal("extra profiles not benchmarked")
	}
}

func TestProfilesFlagBadFile(t *testing.T) {
	a, _, errb, _ := testApp()
	if code := a.Execute([]string{"-profiles", "missing.json", "run", "T2"}); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if errb.Len() == 0 {
		t.Fatal("no error reported")
	}
}

func TestProfilesFlagBadJSON(t *testing.T) {
	a, _, errb, _ := testApp()
	a.ReadFile = func(string) ([]byte, error) { return []byte(`[{"Name":"X"}]`), nil }
	if code := a.Execute([]string{"-profiles", "x.json", "run", "T2"}); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "profile") {
		t.Fatalf("validation error not surfaced: %s", errb.String())
	}
}

func TestTraceCommand(t *testing.T) {
	a, out, _, _ := testApp()
	if code := a.Execute([]string{"trace"}); code != 0 {
		t.Fatalf("exit = %d", code)
	}
	for _, want := range []string{"dispatch", "pipe-write", "wake", "scanned 3", "miss true"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("trace output missing %q", want)
		}
	}
	// Solaris' trace must show its expensive dispatches.
	if !strings.Contains(out.String(), "Solaris 2.4 — one") {
		t.Error("trace should cover every system")
	}
}

func TestHTMLCommand(t *testing.T) {
	if testing.Short() {
		t.Skip("html runs every exhibit")
	}
	a, out, _, _ := testApp()
	if code := a.Execute([]string{"-runs", "3", "html"}); code != 0 {
		t.Fatalf("exit = %d", code)
	}
	doc := out.String()
	if !strings.Contains(doc, "<!DOCTYPE html>") || !strings.Contains(doc, "F12") {
		t.Fatalf("html output malformed: %.200s", doc)
	}
}

func TestNewAppBindsRealEnvironment(t *testing.T) {
	var out, errb bytes.Buffer
	a := NewApp(&out, &errb)
	if a.ReadFile == nil || a.CreateFile == nil || a.MkdirAll == nil {
		t.Fatal("NewApp left hooks nil")
	}
	if code := a.Execute([]string{"list"}); code != 0 {
		t.Fatal("real-environment app cannot list")
	}
}

func TestExperimentsCommand(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments runs every exhibit and claim")
	}
	a, out, _, _ := testApp()
	if code := a.Execute([]string{"-runs", "3", "experiments"}); code != 0 {
		t.Fatalf("exit = %d", code)
	}
	doc := out.String()
	for _, want := range []string{
		"# EXPERIMENTS — paper vs. measured",
		"## T7 —", "## F13 —", "## A7 —", "## X2 —",
		"## Claim audit", "| C30 |",
	} {
		if !strings.Contains(doc, want) {
			t.Errorf("experiments output missing %q", want)
		}
	}
}

func TestFlagsAfterCommand(t *testing.T) {
	// The flag package stops at the first positional; Execute re-parses so
	// `run T2 -j 2 -runs 3` works the same as `-j 2 -runs 3 run T2`.
	a, out, errb, _ := testApp()
	if code := a.Execute([]string{"run", "T2", "-j", "2", "-runs", "3"}); code != 0 {
		t.Fatalf("exit = %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "System Call") {
		t.Fatalf("interleaved flags dropped the run:\n%s", out.String())
	}

	b, bOut, bErr, _ := testApp()
	if code := b.Execute([]string{"-j", "2", "-runs", "3", "run", "T2"}); code != 0 {
		t.Fatalf("exit = %d: %s", code, bErr.String())
	}
	if out.String() != bOut.String() {
		t.Fatal("flag position changed the output")
	}
}

func TestRunParallelStdoutIdentical(t *testing.T) {
	// The tentpole guarantee at the CLI layer: -j N never changes a byte
	// of stdout.
	serial, sOut, _, _ := testApp()
	if code := serial.Execute([]string{"-runs", "3", "-j", "1", "run", "T2", "F3", "A1"}); code != 0 {
		t.Fatalf("serial exit = %d", code)
	}
	par, pOut, _, _ := testApp()
	if code := par.Execute([]string{"-runs", "3", "-j", "8", "run", "T2", "F3", "A1"}); code != 0 {
		t.Fatalf("parallel exit = %d", code)
	}
	if sOut.String() != pOut.String() {
		t.Fatal("-j 8 stdout differs from -j 1")
	}
}

func TestStatsGoToStderrOnly(t *testing.T) {
	a, out, errb, _ := testApp()
	if code := a.Execute([]string{"-runs", "3", "-j", "2", "-stats", "run", "T2"}); code != 0 {
		t.Fatalf("exit = %d", code)
	}
	for _, want := range []string{"runner:", "sweep memo:", "slowest:"} {
		if !strings.Contains(errb.String(), want) {
			t.Errorf("stderr missing %q:\n%s", want, errb.String())
		}
		if strings.Contains(out.String(), want) {
			t.Errorf("stats leaked into stdout (%q)", want)
		}
	}

	// Without -stats, stderr stays silent.
	b, _, bErr, _ := testApp()
	if code := b.Execute([]string{"-runs", "3", "run", "T2"}); code != 0 {
		t.Fatalf("exit = %d", code)
	}
	if bErr.Len() != 0 {
		t.Fatalf("unexpected stderr without -stats: %s", bErr.String())
	}
}

func TestSensitivityCommand(t *testing.T) {
	if testing.Short() {
		t.Skip("sensitivity runs perturbed replicas")
	}
	a, out, _, _ := testApp()
	if code := a.Execute([]string{"-runs", "3", "-trials", "1", "-eps", "0.05", "sensitivity"}); code != 0 {
		t.Fatalf("exit = %d", code)
	}
	if !strings.Contains(out.String(), "claims survive") {
		t.Fatalf("sensitivity summary missing:\n%.300s", out.String())
	}
}

// The profiling flags must work on any subcommand, writing both pprof
// files through the injectable CreateFile.
func TestProfileFlagsWriteProfiles(t *testing.T) {
	a, _, errb, files := testApp()
	if code := a.Execute([]string{"-cpuprofile", "cpu.pb", "-memprofile", "mem.pb", "list"}); code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, errb.String())
	}
	for _, path := range []string{"cpu.pb", "mem.pb"} {
		b, ok := files[path]
		if !ok {
			t.Fatalf("%s was not created", path)
		}
		if b.Len() == 0 {
			t.Errorf("%s is empty", path)
		}
	}
}

func TestProfileFileCreateError(t *testing.T) {
	for _, flag := range []string{"-cpuprofile", "-memprofile"} {
		a, _, errb, _ := testApp()
		a.CreateFile = func(path string) (io.WriteCloser, error) {
			return nil, fmt.Errorf("disk full: %s", path)
		}
		if code := a.Execute([]string{flag, "p.pb", "list"}); code != 2 {
			t.Fatalf("%s: exit = %d, want 2", flag, code)
		}
		if !strings.Contains(errb.String(), "disk full") {
			t.Fatalf("%s: error not reported: %s", flag, errb.String())
		}
	}
}

func TestMetricsCommandPhaseSums(t *testing.T) {
	// The acceptance criterion: `pentiumbench metrics F1` prints a
	// per-phase table whose phase columns sum to the reported total
	// within float tolerance.
	a, out, errb, _ := testApp()
	if code := a.Execute([]string{"metrics", "F1"}); code != 0 {
		t.Fatalf("exit = %d: %s", code, errb.String())
	}
	text := out.String()
	if !strings.Contains(text, "per-phase attribution (µs)") {
		t.Fatalf("missing table header:\n%s", text)
	}
	rows := 0
	cols := 0
	for _, line := range strings.Split(text, "\n") {
		fields := strings.Fields(line)
		// The header row fixes the table width; data rows carry exactly
		// that many trailing numeric columns after the system label
		// (which can itself contain version numbers like "Solaris 2.4").
		if len(fields) > 1 && fields[0] == "system" {
			cols = len(fields) - 1
			continue
		}
		if cols < 2 || len(fields) <= cols {
			continue
		}
		nums := make([]float64, 0, cols)
		bad := false
		for _, f := range fields[len(fields)-cols:] {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				bad = true
				break
			}
			nums = append(nums, v)
		}
		if bad {
			continue
		}
		total := nums[len(nums)-1]
		var sum float64
		for _, v := range nums[:len(nums)-1] {
			sum += v
		}
		if diff := sum - total; diff > 1e-6*total || diff < -1e-6*total {
			t.Errorf("row %q: phases sum %.4f != total %.4f", line, sum, total)
		}
		rows++
	}
	if rows < 3 {
		t.Fatalf("expected a row per system, found %d:\n%s", rows, text)
	}
}

func TestMetricsNeedsIDs(t *testing.T) {
	a, _, errb, _ := testApp()
	if code := a.Execute([]string{"metrics"}); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "observable") {
		t.Fatalf("error should list observable ids: %s", errb.String())
	}
}

func TestMetricsUnknownID(t *testing.T) {
	a, _, errb, _ := testApp()
	if code := a.Execute([]string{"metrics", "F99"}); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "F99") {
		t.Fatalf("error should name the id: %s", errb.String())
	}
}

func TestTraceChromeExport(t *testing.T) {
	a, out, errb, _ := testApp()
	if code := a.Execute([]string{"trace", "F12"}); code != 0 {
		t.Fatalf("exit = %d: %s", code, errb.String())
	}
	var events []map[string]any
	if err := json.Unmarshal(out.Bytes(), &events); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("chrome export is empty")
	}
	kinds := map[string]bool{}
	for _, e := range events {
		ph, _ := e["ph"].(string)
		kinds[ph] = true
	}
	for _, want := range []string{"M", "B", "E"} {
		if !kinds[want] {
			t.Errorf("chrome export missing %q events", want)
		}
	}
}

func TestTraceExportIdenticalAcrossWorkers(t *testing.T) {
	serial, sOut, _, _ := testApp()
	if code := serial.Execute([]string{"-j", "1", "trace", "F12", "F13"}); code != 0 {
		t.Fatal("serial trace failed")
	}
	par, pOut, _, _ := testApp()
	if code := par.Execute([]string{"-j", "8", "trace", "F12", "F13"}); code != 0 {
		t.Fatal("parallel trace failed")
	}
	if !bytes.Equal(sOut.Bytes(), pOut.Bytes()) {
		t.Fatal("-j 8 chrome trace differs from -j 1")
	}
}

func TestTraceTextFormat(t *testing.T) {
	a, out, errb, _ := testApp()
	if code := a.Execute([]string{"trace", "F12", "-format", "text"}); code != 0 {
		t.Fatalf("exit = %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "spans") || !strings.Contains(out.String(), "tracks") {
		t.Fatalf("text format missing span summary:\n%s", out.String())
	}
}

func TestTraceBadFormat(t *testing.T) {
	a, _, errb, _ := testApp()
	if code := a.Execute([]string{"trace", "F12", "-format", "yaml"}); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "yaml") {
		t.Fatalf("error should name the format: %s", errb.String())
	}
}

func TestTraceProcsFlag(t *testing.T) {
	a, out, _, _ := testApp()
	if code := a.Execute([]string{"trace", "-procs", "4"}); code != 0 {
		t.Fatalf("exit = %d", code)
	}
	if !strings.Contains(out.String(), "one 4-process token-ring lap") {
		t.Fatalf("-procs did not change the ring size:\n%s", out.String())
	}
	b, _, errb, _ := testApp()
	if code := b.Execute([]string{"trace", "-procs", "1"}); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "-procs") {
		t.Fatalf("error should mention -procs: %s", errb.String())
	}
}

func TestMetricsFooterReportsRecorderDrops(t *testing.T) {
	// The footer surfaces obs.Recorder ring drops so a truncated capture
	// is never mistaken for a complete one.
	a, out, errb, _ := testApp()
	if code := a.Execute([]string{"metrics", "F12"}); code != 0 {
		t.Fatalf("exit = %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "trace events dropped") {
		t.Fatalf("metrics footer missing drop count:\n%s", out.String())
	}
}
