package cli

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/obs"
)

// faults implements `pentiumbench faults <ids|all> -plan <file>`: run
// each observability probe twice — clean, then under the fault plan —
// and report per system where the injected faults sent the time, plus
// the injected-event counters. Both passes run on the worker pool, and
// every fault arrival derives from the sim RNG forked per (experiment,
// personality), so the whole report is byte-identical at every -j.
func (a *App) faults(cfg core.Config, runner *core.Runner, ids []string,
	opts core.ObserveOpts, plan *fault.Plan) int {
	if plan == nil {
		fmt.Fprintln(a.Stderr, "pentiumbench: faults needs -plan <file> (see examples/lossy-nfs.json)")
		return 2
	}
	if !plan.Active() {
		fmt.Fprintln(a.Stderr, "pentiumbench: the fault plan is inert (every probability is zero)")
		return 2
	}
	if len(ids) == 0 {
		fmt.Fprintf(a.Stderr, "pentiumbench: faults needs experiment ids or 'all' (faultable: %v)\n",
			core.FaultableIDs())
		return 2
	}
	if len(ids) == 1 && ids[0] == "all" {
		ids = core.FaultableIDs()
	}
	clean, code := a.observeSuite(cfg, runner, ids, opts)
	if clean == nil {
		return code
	}
	fopts := opts
	fopts.Faults = plan
	faulted, code := a.observeSuite(cfg, runner, ids, fopts)
	if faulted == nil {
		return code
	}
	name := plan.Name
	if name == "" {
		name = "unnamed"
	}
	for oi, co := range clean.Observations {
		fo := faulted.Observations[oi]
		if oi > 0 {
			fmt.Fprintln(a.Stdout)
		}
		unit := ""
		if len(co.Runs) > 0 {
			unit = co.Runs[0].Unit
		}
		fmt.Fprintf(a.Stdout, "%s — %s under plan %q (%s):\n", co.ID, co.Title, name, unit)
		fmt.Fprintf(a.Stdout, "  %-24s %14s %14s %9s\n", "system", "clean", "faulted", "delta")
		for ri, cr := range co.Runs {
			fr := fo.Runs[ri]
			fmt.Fprintf(a.Stdout, "  %-24s %14.2f %14.2f %9s\n",
				cr.Label, cr.Total, fr.Total, deltaPct(cr.Total, fr.Total))
		}
		counters := faultCounters(fo)
		if len(counters) == 0 {
			fmt.Fprintln(a.Stdout, "  (no faults fired for this probe)")
			continue
		}
		fmt.Fprintln(a.Stdout, "  injected (summed across systems):")
		for _, c := range counters {
			fmt.Fprintf(a.Stdout, "    %-32s %14.0f\n", c.Name, c.Value)
		}
	}
	return 0
}

// deltaPct formats the faulted-vs-clean slowdown of one run.
func deltaPct(clean, faulted float64) string {
	if clean == 0 {
		if faulted == 0 {
			return "+0.0%"
		}
		return "n/a"
	}
	return fmt.Sprintf("%+.1f%%", 100*(faulted-clean)/clean)
}

// faultCounters sums the fault.* counters across an observation's runs,
// dropping zero-valued ones, sorted by name.
func faultCounters(o *core.Observation) []obs.CounterValue {
	sums := map[string]float64{}
	for _, run := range o.Runs {
		for _, c := range run.Metrics.Counters {
			if strings.HasPrefix(c.Name, "fault.") {
				sums[c.Name] += c.Value
			}
		}
	}
	var out []obs.CounterValue
	for name, v := range sums {
		if v != 0 {
			out = append(out, obs.CounterValue{Name: name, Value: v})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
