package cli

import (
	"bytes"
	"os"
	"strings"
	"testing"
)

func TestTimeseriesCSV(t *testing.T) {
	a, out, errb, _ := testApp()
	if code := a.Execute([]string{"-clients", "2000", "timeseries", "F1", "S1"}); code != 0 {
		t.Fatalf("exit = %d: %s", code, errb.String())
	}
	text := out.String()
	if !strings.HasPrefix(text, "experiment,system,series,t_ns,value\n") {
		t.Fatalf("csv header missing:\n%.120s", text)
	}
	for _, want := range []string{
		"F1,Linux 1.2.8,kernel.switches,", "S1,Solaris 2.4,nfs.arrivals,",
		"nfs.latency_ns.p99", "kernel.runnable",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("csv missing %q", want)
		}
	}
}

func TestTimeseriesJSON(t *testing.T) {
	a, out, errb, _ := testApp()
	if code := a.Execute([]string{"timeseries", "F12", "-format", "json"}); code != 0 {
		t.Fatalf("exit = %d: %s", code, errb.String())
	}
	for _, want := range []string{`"experiment": "F12"`, `"width_ns"`, `"disk.ops"`} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("json missing %q:\n%.300s", want, out.String())
		}
	}
}

func TestTimeseriesSVGWritesTimelines(t *testing.T) {
	a, _, errb, files := testApp()
	if code := a.Execute([]string{"-out", "figs", "timeseries", "F1", "-format", "svg"}); code != 0 {
		t.Fatalf("exit = %d: %s", code, errb.String())
	}
	b, ok := files["figs/timeline-F1.svg"]
	if !ok {
		t.Fatalf("timeline SVG not written; files: %v", keysOf(files))
	}
	svg := b.String()
	if !strings.Contains(svg, "<svg") || !strings.Contains(svg, "kernel.switches") {
		t.Fatalf("timeline malformed:\n%.300s", svg)
	}
}

// A saturated lossy run must shade its overload windows and label the
// virtual-time axis; a clean kernel probe must shade nothing.
func TestTimeseriesSVGOverloadShadingAndTicks(t *testing.T) {
	a, _, errb, files := testApp()
	if plan, err := os.ReadFile("../../examples/scale-lossy.json"); err == nil {
		files["scale-lossy.json"] = bytes.NewBuffer(plan)
	}
	args := []string{"-out", "figs", "-clients", "2000", "-faults", "scale-lossy.json",
		"timeseries", "S1", "-format", "svg"}
	if code := a.Execute(args); code != 0 {
		t.Fatalf("exit = %d: %s", code, errb.String())
	}
	b, ok := files["figs/timeline-S1.svg"]
	if !ok {
		t.Fatalf("timeline SVG not written; files: %v", keysOf(files))
	}
	svg := b.String()
	for _, want := range []string{
		`fill="#d62728" fill-opacity="0.13"`, // overload shading
		"overloaded windows (queue full or sheds)",
		" virtual</text>",      // axis-end label
		`text-anchor="middle"`, // interior virtual-time ticks
	} {
		if !strings.Contains(svg, want) {
			t.Fatalf("lossy timeline missing %q:\n%.400s", want, svg)
		}
	}

	// The clean kernel probe has no overload series: no shading.
	a2, _, errb2, files2 := testApp()
	if code := a2.Execute([]string{"-out", "figs", "timeseries", "F1", "-format", "svg"}); code != 0 {
		t.Fatalf("exit = %d: %s", code, errb2.String())
	}
	if strings.Contains(files2["figs/timeline-F1.svg"].String(), "overloaded windows") {
		t.Fatal("clean run shaded overload windows")
	}
}

func keysOf(m map[string]*bytes.Buffer) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

func TestTimeseriesArgErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"no ids", []string{"timeseries"}, "sampled:"},
		{"unsampled id", []string{"timeseries", "T2"}, "T2"},
		{"unknown id", []string{"timeseries", "F99"}, "F99"},
		{"bad window", []string{"-window", "0s", "timeseries", "F1"}, "-window"},
		{"bad format", []string{"timeseries", "F1", "-format", "yaml"}, "yaml"},
	}
	for _, tc := range cases {
		a, _, errb, _ := testApp()
		if code := a.Execute(tc.args); code != 2 {
			t.Fatalf("%s: exit = %d, want 2", tc.name, code)
		}
		if !strings.Contains(errb.String(), tc.want) {
			t.Errorf("%s: stderr missing %q: %s", tc.name, tc.want, errb.String())
		}
	}
}

// timeseriesOut runs one timeseries invocation and returns its stdout.
func timeseriesOut(t *testing.T, args []string) string {
	t.Helper()
	a, out, errb, files := testApp()
	if plan, err := os.ReadFile("../../examples/scale-lossy.json"); err == nil {
		files["scale-lossy.json"] = bytes.NewBuffer(plan)
	}
	if code := a.Execute(args); code != 0 {
		t.Fatalf("%v: exit = %d: %s", args, code, errb.String())
	}
	return out.String()
}

// The tentpole determinism guarantee: the sampler's output is
// byte-identical at any worker count, with and without fault injection.
func TestTimeseriesIdenticalAcrossWorkers(t *testing.T) {
	base := []string{"-clients", "2000", "timeseries", "all", "-format", "csv"}
	serial := timeseriesOut(t, append([]string{"-j", "1"}, base...))
	parallel := timeseriesOut(t, append([]string{"-j", "8"}, base...))
	if serial != parallel {
		t.Fatal("-j 8 timeseries output differs from -j 1")
	}
	if !strings.Contains(serial, "nfs.queue_depth") {
		t.Fatalf("expected sampled series in output:\n%.200s", serial)
	}
}

func TestTimeseriesIdenticalAcrossWorkersWithFaults(t *testing.T) {
	base := []string{"-clients", "2000", "-faults", "scale-lossy.json",
		"timeseries", "S1", "S2", "-format", "json"}
	serial := timeseriesOut(t, append([]string{"-j", "1"}, base...))
	parallel := timeseriesOut(t, append([]string{"-j", "8"}, base...))
	if serial != parallel {
		t.Fatal("-j 8 faulted timeseries output differs from -j 1")
	}
	if !strings.Contains(serial, "fault.rpc_drops") {
		t.Fatalf("lossy plan should surface fault.rpc_drops:\n%.300s", serial)
	}
}
