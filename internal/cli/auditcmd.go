package cli

import (
	"encoding/json"
	"fmt"
	"slices"

	"repro/internal/core"
)

// audit re-runs the NFS scale probes with the double-entry accounting
// attached and evaluates every queueing-law invariant (Little's law,
// utilization law, flow balance, histogram-vs-ledger and per-window
// conservation, exemplar phase sums). -format=text prints a verdict
// table with violations ranked worst-first; -format=json the full
// machine-readable reports. Exit is nonzero when any invariant fails,
// so the command doubles as a CI gate.
func (a *App) audit(cfg core.Config, ids []string, opts core.ObserveOpts, format string) int {
	auditable := core.AuditableIDs()
	if len(ids) == 0 {
		fmt.Fprintf(a.Stderr, "pentiumbench: audit needs experiment ids or 'all' (auditable: %v)\n", auditable)
		return 2
	}
	if len(ids) == 1 && ids[0] == "all" {
		ids = auditable
	}
	for _, id := range ids {
		if !slices.Contains(auditable, id) {
			fmt.Fprintf(a.Stderr, "pentiumbench: %q is not auditable (auditable: %v)\n", id, auditable)
			return 2
		}
	}
	switch format {
	case "", "text", "json":
	default:
		fmt.Fprintf(a.Stderr, "pentiumbench: unknown audit format %q (want text or json)\n", format)
		return 2
	}
	var obsv []*core.AuditObservation
	for _, id := range ids {
		ao, err := core.Audit(cfg, id, opts)
		if err != nil {
			fmt.Fprintln(a.Stderr, "pentiumbench:", err)
			return 2
		}
		obsv = append(obsv, ao)
	}
	if format == "json" {
		enc := json.NewEncoder(a.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(obsv); err != nil {
			fmt.Fprintln(a.Stderr, "pentiumbench:", err)
			return 1
		}
		return exitFor(obsv)
	}
	a.auditText(obsv)
	return exitFor(obsv)
}

// exitFor maps the audit outcome onto the process exit code: 0 only
// when every personality of every experiment audited clean.
func exitFor(obsv []*core.AuditObservation) int {
	for _, ao := range obsv {
		if !ao.OK() {
			return 1
		}
	}
	return 0
}

// auditText renders the human-readable verdict: one summary row per
// personality, then any violations ranked worst-first with the concrete
// identity each one broke.
func (a *App) auditText(obsv []*core.AuditObservation) {
	systems, failed := 0, 0
	for oi, ao := range obsv {
		if oi > 0 {
			fmt.Fprintln(a.Stdout)
		}
		fmt.Fprintf(a.Stdout, "%s — %s: queueing-law audit\n", ao.ID, ao.Title)
		// The Report's Clients/Nfsd fields carry cpus/threads for the SMP
		// audit (one field shape for every consumer); label accordingly.
		c1, c2 := "clients", "nfsd"
		if ao.ID == "L1" {
			c1, c2 = "cpus", "threads"
		}
		fmt.Fprintf(a.Stdout, "  %-24s %9s %7s %8s %7s  %s\n",
			"system", c1, c2, "checks", "failed", "verdict")
		for _, rep := range ao.Reports {
			systems++
			verdict := "ok"
			if !rep.OK() {
				verdict = "FAIL"
				failed++
			}
			fmt.Fprintf(a.Stdout, "  %-24s %9d %7d %8d %7d  %s\n",
				rep.System, rep.Clients, rep.Nfsd, rep.Evaluated, rep.Failed, verdict)
		}
		for _, rep := range ao.Reports {
			if rep.OK() {
				continue
			}
			fmt.Fprintf(a.Stdout, "  %s violations (worst first):\n", rep.System)
			for _, v := range rep.Violations {
				where := "run"
				if v.Scope == "window" {
					where = fmt.Sprintf("window %d", v.Window)
				}
				fmt.Fprintf(a.Stdout, "    [%s] %s: %s (|err| %g, rel %.3g)\n",
					v.Invariant, where, v.Detail, v.AbsErr, v.RelErr)
			}
		}
	}
	fmt.Fprintln(a.Stdout)
	if failed == 0 {
		fmt.Fprintf(a.Stdout, "all invariants hold across %d audited runs.\n", systems)
		return
	}
	fmt.Fprintf(a.Stdout, "%d of %d audited runs violated at least one invariant.\n", failed, systems)
}
