package cpu

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestPentiumDescription(t *testing.T) {
	p := PentiumP54C100()
	if p.MHz != 100 {
		t.Errorf("MHz = %v, want 100", p.MHz)
	}
	if p.IssueWidth != 2 {
		t.Errorf("IssueWidth = %v, want 2 (P54C is dual-issue)", p.IssueWidth)
	}
	if !strings.Contains(p.String(), "100 MHz") {
		t.Errorf("String() = %q, want it to mention the clock", p.String())
	}
}

func TestCycleTime(t *testing.T) {
	p := PentiumP54C100()
	if got := p.CycleTime(); got != 10*sim.Nanosecond {
		t.Errorf("CycleTime() = %v, want 10ns at 100 MHz", got)
	}
}

func TestCycles(t *testing.T) {
	p := PentiumP54C100()
	if got := p.Cycles(100); got != sim.Microsecond {
		t.Errorf("Cycles(100) = %v, want 1µs", got)
	}
	if got := p.Cycles(0.5); got != 5*sim.Nanosecond {
		t.Errorf("Cycles(0.5) = %v, want 5ns", got)
	}
}

func TestInstructions(t *testing.T) {
	p := PentiumP54C100()
	// 1.1M instructions at IPC 1.1 = 1M cycles = 10ms (within float
	// truncation of a nanosecond).
	got := p.Instructions(1.1e6)
	if d := got - 10*sim.Millisecond; d < -1 || d > 1 {
		t.Errorf("Instructions(1.1e6) = %v, want ~10ms", got)
	}
}

func TestInstructionsPanicsOnZeroIPC(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Instructions with zero IPC did not panic")
		}
	}()
	CPU{MHz: 100}.Instructions(1)
}
