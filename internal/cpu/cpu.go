// Package cpu models the processor of the benchmarking platform: an Intel
// Pentium P54C at 100 MHz, as described in §2.2 of the paper.
//
// The model is deliberately coarse: it converts cycle counts produced by the
// cache and memory models into virtual time, and it provides a calibrated
// instructions-per-cycle figure for charging synthetic compute work (the
// compile phase of the Modified Andrew Benchmark, for example). It does not
// simulate the pipeline; the paper's results depend on the memory hierarchy
// and the operating systems, not on instruction scheduling details.
package cpu

import (
	"fmt"

	"repro/internal/sim"
)

// CPU describes a processor clock and its sustained superscalar throughput.
type CPU struct {
	// Name identifies the processor model.
	Name string
	// MHz is the core clock in megahertz.
	MHz float64
	// IssueWidth is the maximum instructions issued per cycle. The P54C is
	// a dual-issue design (U and V pipes).
	IssueWidth int
	// SustainedIPC is the average instructions per cycle achieved on
	// integer-heavy compiler-style code, used to convert instruction counts
	// into time. Real Pentium code rarely sustained full dual issue; 1.1 is
	// a representative figure for gcc-generated code.
	SustainedIPC float64
}

// PentiumP54C100 returns the paper's processor: a 100 MHz Pentium P54C.
func PentiumP54C100() CPU {
	return CPU{
		Name:         "Intel Pentium P54C",
		MHz:          100,
		IssueWidth:   2,
		SustainedIPC: 1.1,
	}
}

// CycleTime returns the duration of a single clock cycle.
func (c CPU) CycleTime() sim.Duration {
	return c.Cycles(1)
}

// Cycles converts a (possibly fractional) cycle count to virtual time.
// One cycle at f MHz lasts 1000/f nanoseconds.
func (c CPU) Cycles(n float64) sim.Duration {
	return sim.Duration(n * 1000 / c.MHz)
}

// Instructions converts an instruction count into virtual time using the
// sustained IPC.
func (c CPU) Instructions(n float64) sim.Duration {
	if c.SustainedIPC <= 0 {
		panic("cpu: SustainedIPC must be positive")
	}
	return c.Cycles(n / c.SustainedIPC)
}

// String describes the CPU.
func (c CPU) String() string {
	return fmt.Sprintf("%s @ %.0f MHz (%d-issue)", c.Name, c.MHz, c.IssueWidth)
}
