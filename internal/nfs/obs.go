package nfs

import "repro/internal/obs"

// FoldMetrics adds the client-observed RPC counters into a registry under
// the given prefix (e.g. "nfs."). Retransmits folds only when the mount
// actually retransmitted, so unfaulted metric snapshots are unchanged.
func (s Stats) FoldMetrics(reg *obs.Registry, prefix string) {
	reg.Counter(prefix + "rpcs").Add(float64(s.RPCs))
	reg.Counter(prefix + "read_rpcs").Add(float64(s.ReadRPCs))
	reg.Counter(prefix + "write_rpcs").Add(float64(s.WriteRPCs))
	reg.Counter(prefix + "lookup_rpcs").Add(float64(s.LookupRPCs))
	reg.Counter(prefix + "meta_rpcs").Add(float64(s.MetaRPCs))
	reg.Counter(prefix + "bytes_to_wire").Add(float64(s.BytesToWire))
	reg.Counter(prefix + "bytes_from_wire").Add(float64(s.BytesFromWire))
	reg.Counter(prefix + "cache_reads").Add(float64(s.CacheReads))
	if s.Retransmits > 0 {
		reg.Counter(prefix + "retransmits").Add(float64(s.Retransmits))
	}
}
