// Package nfs models the Sun Network File System client and server of
// §10: a client-side file system (implementing fs.VFS, so the Modified
// Andrew Benchmark runs over it unchanged) that translates operations
// into RPCs over a 10 Mb/s Ethernet to a server running its own local
// file system on its own disk.
//
// The mechanisms that produce Tables 6 and 7 are all here:
//
//   - the server's write policy: the Linux 1.2.8 server answers write
//     RPCs from its buffer cache (violating the NFS spec but fast), while
//     the SunOS server commits data and metadata to its disk before every
//     reply;
//   - client pipelining (biod): FreeBSD overlaps wire time with server
//     processing; the Linux 1.2.8 client is stop-and-wait; Solaris
//     pipelines, but conservatively serialises when the server commits
//     synchronously;
//   - transfer sizes: clients use small rsize/wsize against servers of a
//     foreign lineage (the Linux client drops to 1 KB, which is the heart
//     of its Table 7 collapse);
//   - client data and attribute caching, which the Linux 1.2.8 client
//     lacks;
//   - the §11 privileged-port quirk: the Linux server rejects clients
//     that do not bind a reserved port, which FreeBSD does not do by
//     default.
package nfs

import (
	"fmt"

	"repro/internal/disk"
	"repro/internal/fault"
	"repro/internal/fs"
	"repro/internal/netstack"
	"repro/internal/osprofile"
	"repro/internal/sim"
)

// rpcHeader is the approximate size of an NFS RPC header on the wire.
const rpcHeader = 128

// Server is an NFS server machine: an OS personality with a local file
// system on its own disk, accumulating its processing time on its own
// clock.
type Server struct {
	prof  *osprofile.Profile
	clock sim.Clock
	fsys  *fs.FileSystem
}

// NewServer builds a server running the given personality on a disk with
// the given geometry. Invalid geometry or an unusable personality is a
// returned error.
func NewServer(p *osprofile.Profile, geom disk.Geometry, seed uint64) (*Server, error) {
	s := &Server{prof: p}
	d, err := disk.New(geom, sim.NewRNG(seed))
	if err != nil {
		return nil, err
	}
	fsys, err := fs.New(&s.clock, d, p)
	if err != nil {
		return nil, err
	}
	s.fsys = fsys
	return s, nil
}

// SetFaults attaches disk and buffer-cache injectors to the server's
// local file system (nil injectors detach).
func (s *Server) SetFaults(inj fault.Injectors) { s.fsys.SetFaults(inj) }

// OS returns the server's personality.
func (s *Server) OS() *osprofile.Profile { return s.prof }

// FS exposes the server's local file system (for tests).
func (s *Server) FS() *fs.FileSystem { return s.fsys }

// process runs work on the server and returns the server time it took,
// including the fixed per-RPC service cost.
func (s *Server) process(work func()) sim.Duration {
	start := s.clock.Now()
	s.clock.Advance(s.prof.NFS.ServerPerRPC)
	if work != nil {
		work()
	}
	return s.clock.Now().Sub(start)
}

// MountOptions configure a client mount.
type MountOptions struct {
	// ResvPort makes the client bind a reserved port even if its default
	// is not to (the workaround §11 describes for FreeBSD clients against
	// the Linux server).
	ResvPort bool
}

// Mount is an NFS-mounted file system on a client machine. It implements
// fs.VFS.
type Mount struct {
	clock  *sim.Clock
	client *osprofile.Profile
	server *Server
	link   *netstack.Link
	faults *fault.NetInjector

	attrCached map[string]bool
	dataCache  *clientCache
	openFiles  map[string]*fs.File

	stats Stats
}

// Stats counts client-observed NFS activity.
type Stats struct {
	RPCs          uint64
	ReadRPCs      uint64
	WriteRPCs     uint64
	LookupRPCs    uint64
	MetaRPCs      uint64
	BytesToWire   uint64
	BytesFromWire uint64
	CacheReads    uint64 // reads satisfied from the client cache
	// Retransmits counts RPCs re-sent after an injected loss ate the
	// request or its reply (hard-mount retry).
	Retransmits uint64
}

// Add folds another mount's counters into s, field by field. A scale-out
// run aggregates thousands of mounts sharing one fault-plan RNG fork;
// summing per-mount Stats this way reproduces the shared injector's
// totals exactly (each drop is attributed to exactly one mount).
func (s *Stats) Add(o Stats) {
	s.RPCs += o.RPCs
	s.ReadRPCs += o.ReadRPCs
	s.WriteRPCs += o.WriteRPCs
	s.LookupRPCs += o.LookupRPCs
	s.MetaRPCs += o.MetaRPCs
	s.BytesToWire += o.BytesToWire
	s.BytesFromWire += o.BytesFromWire
	s.CacheReads += o.CacheReads
	s.Retransmits += o.Retransmits
}

// NewMount mounts the server on a client. The clock is the client
// machine's clock; all client-visible latency is charged to it.
func NewMount(clock *sim.Clock, client *osprofile.Profile, server *Server, link *netstack.Link, opts MountOptions) (*Mount, error) {
	if server.prof.NFS.RequiresPrivPort && !client.NFS.SendsPrivPort && !opts.ResvPort {
		return nil, fmt.Errorf(
			"nfs: %s server requires a privileged client port and the %s client does not bind one by default; mount with ResvPort (§11)",
			server.prof, client)
	}
	cacheBytes := int64(client.NFS.ClientCacheMB) << 20
	if !client.NFS.ClientCachesData {
		cacheBytes = 0
	}
	return &Mount{
		clock:      clock,
		client:     client,
		server:     server,
		link:       link,
		attrCached: make(map[string]bool),
		dataCache:  newClientCache(cacheBytes),
		openFiles:  make(map[string]*fs.File),
	}, nil
}

// Stats returns a copy of the counters.
func (m *Mount) Stats() Stats { return m.stats }

// SetFaults attaches a network injector to the mount's RPC path (nil
// detaches). NFS here runs over UDP, so injected loss triggers the
// hard-mount retry loop in retryRPC rather than an error.
func (m *Mount) SetFaults(inj *fault.NetInjector) { m.faults = inj }

// retryRPC models the hard-mount retransmission of NFS over UDP: while
// the injector eats the request or its reply, the client pays its
// per-RPC CPU and the request's wire time again, sits out the
// retransmission timeout (exponential backoff per attempt), and
// retries. The plan validator bounds loss probability below one, so the
// loop terminates; with no injector attached it draws nothing and adds
// zero time.
func (m *Mount) retryRPC(reqBytes int) {
	for attempt := 0; m.faults.DropRPC(); attempt++ {
		m.stats.Retransmits++
		// The re-sent request goes on the wire again; count its bytes so
		// aggregated per-mount wire totals stay exact under loss.
		m.stats.BytesToWire += uint64(reqBytes)
		m.clock.Advance(m.client.NFS.ClientPerRPC +
			m.link.TransmitTime(reqBytes) + m.faults.RTOWait(attempt))
	}
}

// transferSize returns the rsize/wsize for this client-server pairing.
func (m *Mount) transferSize() int {
	if m.client.Name == m.server.prof.Name {
		return m.client.NFS.TransferSize
	}
	return m.client.NFS.ForeignTransferSize
}

// pipelined reports whether this mount overlaps RPCs for bulk data. A
// conservative client serialises against a synchronously committing
// server.
func (m *Mount) pipelined() bool {
	if !m.client.NFS.Pipelined {
		return false
	}
	if m.client.NFS.SerializesSyncWrites && m.server.prof.NFS.ServerSyncWrites {
		return false
	}
	return true
}

// localEntry charges the client-side system call overhead of a VFS
// operation.
func (m *Mount) localEntry() {
	m.clock.Advance(m.client.Kernel.Syscall + m.client.FS.OpFixed)
}

// rpc performs one synchronous RPC: client CPU, request on the wire,
// server processing, reply on the wire.
func (m *Mount) rpc(reqBytes, replyBytes int, work func()) {
	m.stats.RPCs++
	m.stats.BytesToWire += uint64(reqBytes)
	m.stats.BytesFromWire += uint64(replyBytes)
	m.retryRPC(reqBytes)
	serverTime := m.server.process(work)
	m.clock.Advance(m.client.NFS.ClientPerRPC +
		m.link.TransmitTime(reqBytes) + serverTime + m.link.TransmitTime(replyBytes))
}

// rpcStream performs a stream of n bulk RPCs. A pipelined client keeps
// several in flight, so per-RPC elapsed time is the maximum of wire time
// and server time rather than their sum (one full round trip of latency
// is paid at the tail).
func (m *Mount) rpcStream(n int, reqBytes, replyBytes int, work func(i int)) {
	if n <= 0 {
		return
	}
	pipelined := m.pipelined()
	for i := 0; i < n; i++ {
		m.stats.RPCs++
		m.stats.BytesToWire += uint64(reqBytes)
		m.stats.BytesFromWire += uint64(replyBytes)
		// A lost RPC stalls the pipeline: even a pipelined client must
		// redrive the missing request before the stream can progress.
		m.retryRPC(reqBytes)
		var w func()
		if work != nil {
			i := i
			w = func() { work(i) }
		}
		serverTime := m.server.process(w)
		wire := m.link.TransmitTime(reqBytes) + m.link.TransmitTime(replyBytes)
		if pipelined {
			d := wire
			if serverTime > d {
				d = serverTime
			}
			m.clock.Advance(m.client.NFS.ClientPerRPC + d)
		} else {
			m.clock.Advance(m.client.NFS.ClientPerRPC + wire + serverTime)
		}
	}
}

// lookupPath charges the lookup traffic for resolving a path on open or
// stat. With a warm attribute cache it is free; otherwise one LOOKUP RPC
// (plus a GETATTR for clients with no attribute cache at all, which must
// revalidate).
func (m *Mount) lookupPath(path string) {
	if m.client.NFS.AttrCacheTTL > 0 && m.attrCached[path] {
		return
	}
	m.stats.LookupRPCs++
	m.rpc(rpcHeader, rpcHeader, nil)
	if m.client.NFS.AttrCacheTTL == 0 {
		m.stats.LookupRPCs++
		m.rpc(rpcHeader, rpcHeader, nil)
	} else {
		m.attrCached[path] = true
	}
}

// Mkdir implements fs.VFS.
func (m *Mount) Mkdir(path string) error {
	m.localEntry()
	var err error
	m.stats.MetaRPCs++
	m.rpc(rpcHeader+64, rpcHeader, func() { err = m.server.fsys.Mkdir(path) })
	if err == nil && m.client.NFS.AttrCacheTTL > 0 {
		m.attrCached[path] = true
	}
	return err
}

// Create implements fs.VFS.
func (m *Mount) Create(path string) (fs.Handle, error) {
	m.localEntry()
	var sf *fs.File
	var err error
	m.stats.MetaRPCs++
	m.rpc(rpcHeader+64, rpcHeader+64, func() { sf, err = m.server.fsys.Create(path) })
	if err != nil {
		return nil, err
	}
	m.openFiles[path] = sf
	if m.client.NFS.AttrCacheTTL > 0 {
		m.attrCached[path] = true
	}
	m.dataCache.drop(path)
	return &file{m: m, path: path, sf: sf}, nil
}

// Open implements fs.VFS.
func (m *Mount) Open(path string) (fs.Handle, error) {
	m.localEntry()
	m.lookupPath(path)
	sf, ok := m.openFiles[path]
	if !ok {
		var err error
		sf, err = m.server.fsys.Open(path)
		if err != nil {
			return nil, err
		}
		m.openFiles[path] = sf
	}
	return &file{m: m, path: path, sf: sf}, nil
}

// Unlink implements fs.VFS.
func (m *Mount) Unlink(path string) error {
	m.localEntry()
	var err error
	m.stats.MetaRPCs++
	m.rpc(rpcHeader+64, rpcHeader, func() { err = m.server.fsys.Unlink(path) })
	delete(m.attrCached, path)
	m.dataCache.drop(path)
	delete(m.openFiles, path)
	return err
}

// Rename implements fs.VFS: one RENAME RPC; the server commits its
// directory metadata per its own policy.
func (m *Mount) Rename(oldPath, newPath string) error {
	m.localEntry()
	var err error
	m.stats.MetaRPCs++
	m.rpc(rpcHeader+128, rpcHeader, func() { err = m.server.fsys.Rename(oldPath, newPath) })
	delete(m.attrCached, oldPath)
	m.dataCache.drop(oldPath)
	if sf, ok := m.openFiles[oldPath]; ok && err == nil {
		m.openFiles[newPath] = sf
		delete(m.openFiles, oldPath)
	}
	if err == nil && m.client.NFS.AttrCacheTTL > 0 {
		m.attrCached[newPath] = true
	}
	return err
}

// Stat implements fs.VFS.
func (m *Mount) Stat(path string) (fs.StatInfo, error) {
	m.localEntry()
	var st fs.StatInfo
	var err error
	if m.client.NFS.AttrCacheTTL > 0 && m.attrCached[path] {
		// Served from the client attribute cache.
		st, err = m.server.fsys.Stat(path) // consistency only; uncharged server op
		return st, err
	}
	m.stats.LookupRPCs++
	m.rpc(rpcHeader, rpcHeader+64, func() { st, err = m.server.fsys.Stat(path) })
	if m.client.NFS.AttrCacheTTL > 0 {
		m.attrCached[path] = true
	}
	return st, err
}

// List implements fs.VFS.
func (m *Mount) List(path string) ([]string, error) {
	m.localEntry()
	var names []string
	var err error
	m.stats.MetaRPCs++
	m.rpc(rpcHeader, rpcHeader+512, func() { names, err = m.server.fsys.List(path) })
	return names, err
}

// file is an open NFS file handle on the client.
type file struct {
	m       *Mount
	path    string
	sf      *fs.File
	offset  int64
	maxRead int64 // high-water mark of offsets this handle has fetched
	closed  bool
}

// Read implements fs.Handle. Reads satisfied by the client cache cost
// only the local copy; otherwise the data comes over the wire in
// rsize-sized READ RPCs.
func (f *file) Read(n int64) int64 {
	if f.closed {
		panic("nfs: read on closed file")
	}
	m := f.m
	m.clock.Advance(m.client.Kernel.Syscall + m.client.Kernel.ReadWriteExtra)
	size := f.sf.Size()
	if f.offset >= size {
		return 0
	}
	if f.offset+n > size {
		n = size - f.offset
	}
	// Pages this handle already fetched stay mapped for its lifetime
	// (every 1995 client had at least per-open page reuse), and a caching
	// client can also hit its cross-open data cache.
	if f.offset+n <= f.maxRead || m.dataCache.covers(f.path, f.offset+n) {
		m.stats.CacheReads++
		m.clock.Advance(sim.Duration(int64(m.client.FS.ReadPerKB) * n / 1024))
		f.offset += n
		return n
	}
	ts := int64(m.transferSize())
	rpcs := int((n + ts - 1) / ts)
	f.sf.SeekTo(f.offset)
	m.stats.ReadRPCs += uint64(rpcs)
	m.rpcStream(rpcs, rpcHeader, int(ts)+rpcHeader, func(i int) {
		f.sf.Read(ts)
	})
	// Client-side delivery copy.
	m.clock.Advance(sim.Duration(int64(m.client.FS.ReadPerKB) * n / 1024))
	f.offset += n
	if f.offset > f.maxRead {
		f.maxRead = f.offset
	}
	m.dataCache.extend(f.path, f.offset)
	return n
}

// Write implements fs.Handle: the data goes out in wsize-sized WRITE
// RPCs. Against a synchronously committing server, every RPC's data is
// forced to the server's disk (with the metadata updates the spec
// requires) before the reply.
func (f *file) Write(n int64) {
	if f.closed {
		panic("nfs: write on closed file")
	}
	m := f.m
	m.clock.Advance(m.client.Kernel.Syscall + m.client.Kernel.ReadWriteExtra)
	// Client-side copy out of the user buffer.
	m.clock.Advance(sim.Duration(int64(m.client.FS.WritePerKB) * n / 1024))
	ts := int64(m.transferSize())
	rpcs := int((n + ts - 1) / ts)
	f.sf.SeekTo(f.offset)
	srv := m.server
	sync := srv.prof.NFS.ServerSyncWrites
	m.stats.WriteRPCs += uint64(rpcs)
	m.rpcStream(rpcs, int(ts)+rpcHeader, rpcHeader, func(i int) {
		chunk := ts
		if rem := n - int64(i)*ts; chunk > rem {
			chunk = rem
		}
		f.sf.Write(chunk)
		if sync {
			srv.fsys.CommitFile(f.sf, srv.prof.NFS.ServerSyncMetaPerWrite)
		}
	})
	f.offset += n
	m.dataCache.extend(f.path, f.offset)
}

// SeekTo implements fs.Handle.
func (f *file) SeekTo(offset int64) {
	f.m.clock.Advance(f.m.client.Kernel.Syscall)
	f.offset = offset
}

// Size implements fs.Handle.
func (f *file) Size() int64 { return f.sf.Size() }

// Close implements fs.Handle. NFS has no close RPC; close-to-open
// consistency costs a GETATTR on the next open, modelled in lookupPath.
func (f *file) Close() {
	f.m.clock.Advance(f.m.client.Kernel.Syscall)
	f.closed = true
}

// clientCache is the client-side data cache: a byte-budgeted LRU of
// whole-file prefixes. Capacity zero disables it (the Linux 1.2.8
// client).
type clientCache struct {
	capacity int64
	bytes    int64
	extents  map[string]int64
	order    []string // LRU -> MRU
}

func newClientCache(capacity int64) *clientCache {
	return &clientCache{capacity: capacity, extents: make(map[string]int64)}
}

// covers reports whether the first n bytes of path are cached, promoting
// the file on a hit.
func (c *clientCache) covers(path string, n int64) bool {
	if c.capacity <= 0 {
		return false
	}
	if c.extents[path] < n {
		return false
	}
	c.promote(path)
	return true
}

// extend records that the first n bytes of path are now cached, evicting
// least recently used files beyond capacity.
func (c *clientCache) extend(path string, n int64) {
	if c.capacity <= 0 {
		return
	}
	old, ok := c.extents[path]
	if n <= old {
		c.promote(path)
		return
	}
	c.extents[path] = n
	c.bytes += n - old
	if !ok {
		c.order = append(c.order, path)
	} else {
		c.promote(path)
	}
	for c.bytes > c.capacity && len(c.order) > 1 {
		victim := c.order[0]
		if victim == path && len(c.order) == 1 {
			break
		}
		c.order = c.order[1:]
		c.bytes -= c.extents[victim]
		delete(c.extents, victim)
	}
}

func (c *clientCache) promote(path string) {
	for i, p := range c.order {
		if p == path {
			c.order = append(c.order[:i], c.order[i+1:]...)
			c.order = append(c.order, path)
			return
		}
	}
}

// drop forgets a file (truncation or unlink).
func (c *clientCache) drop(path string) {
	if ext, ok := c.extents[path]; ok {
		c.bytes -= ext
		delete(c.extents, path)
		for i, p := range c.order {
			if p == path {
				c.order = append(c.order[:i], c.order[i+1:]...)
				break
			}
		}
	}
}
