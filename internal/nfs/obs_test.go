package nfs

import (
	"testing"

	"repro/internal/disk"
	"repro/internal/netstack"
	"repro/internal/obs"
	"repro/internal/osprofile"
	"repro/internal/sim"
)

// FoldMetrics lands the client RPC counters in a registry.
func TestNFSFoldMetrics(t *testing.T) {
	srv := mustServer(NewServer(osprofile.FreeBSD205(), disk.HP3725(), 11))
	var clock sim.Clock
	m, err := NewMount(&clock, osprofile.FreeBSD205(), srv, netstack.Ethernet10(), MountOptions{})
	if err != nil {
		t.Fatal(err)
	}
	h, err := m.Create("/f")
	if err != nil {
		t.Fatal(err)
	}
	h.Write(64 << 10)
	h.SeekTo(0)
	h.Read(64 << 10)
	h.Close()
	if _, err := m.Stat("/f"); err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	m.Stats().FoldMetrics(reg, "nfs.")
	snap := reg.Snapshot()
	st := m.Stats()
	checks := map[string]float64{
		"nfs.rpcs":            float64(st.RPCs),
		"nfs.write_rpcs":      float64(st.WriteRPCs),
		"nfs.bytes_to_wire":   float64(st.BytesToWire),
		"nfs.bytes_from_wire": float64(st.BytesFromWire),
	}
	for name, want := range checks {
		if got, ok := snap.Get(name); !ok || got != want {
			t.Errorf("%s = %v (ok=%v), want %v", name, got, ok, want)
		}
	}
	if st.RPCs == 0 || st.WriteRPCs == 0 {
		t.Fatalf("workload produced no RPCs: %+v", st)
	}
}
