package nfs

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/disk"
	"repro/internal/fault"
	"repro/internal/fs"
	"repro/internal/netstack"
	"repro/internal/osprofile"
	"repro/internal/sim"
)

func mustServer(s *Server, err error) *Server {
	if err != nil {
		panic(err)
	}
	return s
}

func linuxServer() *Server {
	return mustServer(NewServer(osprofile.Linux128(), disk.QuantumEmpire2100(), 1))
}

func sunServer() *Server {
	p := osprofile.SunOS414()
	return mustServer(NewServer(p, disk.QuantumEmpire2100(), 1))
}

func mountOn(t *testing.T, client *osprofile.Profile, server *Server, opts MountOptions) (*sim.Clock, *Mount) {
	t.Helper()
	clock := &sim.Clock{}
	m, err := NewMount(clock, client, server, netstack.Ethernet10(), opts)
	if err != nil {
		t.Fatal(err)
	}
	return clock, m
}

func TestPrivilegedPortQuirk(t *testing.T) {
	// §11: the Linux server requires a privileged client port; FreeBSD
	// clients do not bind one by default.
	clock := &sim.Clock{}
	_, err := NewMount(clock, osprofile.FreeBSD205(), linuxServer(), netstack.Ethernet10(), MountOptions{})
	if err == nil {
		t.Fatal("FreeBSD client mounted a Linux server without ResvPort; the paper's quirk requires failure")
	}
	if !strings.Contains(err.Error(), "privileged") {
		t.Fatalf("error should explain the quirk, got: %v", err)
	}
	// With the workaround it mounts.
	if _, err := NewMount(clock, osprofile.FreeBSD205(), linuxServer(), netstack.Ethernet10(), MountOptions{ResvPort: true}); err != nil {
		t.Fatal(err)
	}
	// Linux and Solaris clients bind privileged ports by default.
	for _, p := range []*osprofile.Profile{osprofile.Linux128(), osprofile.Solaris24()} {
		if _, err := NewMount(clock, p, linuxServer(), netstack.Ethernet10(), MountOptions{}); err != nil {
			t.Errorf("%s client should mount the Linux server: %v", p, err)
		}
	}
}

func TestBasicOperationsRoundTrip(t *testing.T) {
	_, m := mountOn(t, osprofile.Solaris24(), linuxServer(), MountOptions{})
	if err := m.Mkdir("/d"); err != nil {
		t.Fatal(err)
	}
	f, err := m.Create("/d/file")
	if err != nil {
		t.Fatal(err)
	}
	f.Write(10000)
	f.Close()
	st, err := m.Stat("/d/file")
	if err != nil {
		t.Fatal(err)
	}
	if st.Size != 10000 {
		t.Fatalf("Stat size = %d, want 10000", st.Size)
	}
	g, err := m.Open("/d/file")
	if err != nil {
		t.Fatal(err)
	}
	if got := g.Read(20000); got != 10000 {
		t.Fatalf("Read = %d, want 10000", got)
	}
	g.Close()
	names, err := m.List("/d")
	if err != nil || len(names) != 1 || names[0] != "file" {
		t.Fatalf("List = %v, %v", names, err)
	}
	if err := m.Unlink("/d/file"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Open("/d/file"); err == nil {
		t.Fatal("open after unlink should fail")
	}
}

func TestErrorsPropagate(t *testing.T) {
	_, m := mountOn(t, osprofile.FreeBSD205(), sunServer(), MountOptions{})
	if _, err := m.Open("/missing"); err == nil {
		t.Error("Open of missing file must fail")
	}
	if err := m.Unlink("/missing"); err == nil {
		t.Error("Unlink of missing file must fail")
	}
	if _, err := m.Stat("/missing"); err == nil {
		t.Error("Stat of missing file must fail")
	}
	if _, err := m.List("/missing"); err == nil {
		t.Error("List of missing dir must fail")
	}
}

func TestWireTrafficAccounting(t *testing.T) {
	_, m := mountOn(t, osprofile.FreeBSD205(), sunServer(), MountOptions{})
	f, _ := m.Create("/f")
	f.Write(64 << 10)
	f.Close()
	s := m.Stats()
	if s.WriteRPCs != 8 {
		t.Fatalf("64 KB at 8 KB wsize = %d write RPCs, want 8", s.WriteRPCs)
	}
	if s.BytesToWire < 64<<10 {
		t.Fatalf("BytesToWire = %d, want at least the payload", s.BytesToWire)
	}
}

func TestClientCacheServesRereads(t *testing.T) {
	// FreeBSD's caching client reads back its own writes locally.
	_, m := mountOn(t, osprofile.FreeBSD205(), sunServer(), MountOptions{})
	f, _ := m.Create("/f")
	f.Write(32 << 10)
	f.Close()
	g, _ := m.Open("/f")
	g.Read(32 << 10)
	g.Close()
	if got := m.Stats().ReadRPCs; got != 0 {
		t.Fatalf("caching client issued %d read RPCs for self-written data, want 0", got)
	}
	if m.Stats().CacheReads == 0 {
		t.Fatal("cache reads not counted")
	}
}

func TestLinuxClientDoesNotCache(t *testing.T) {
	_, m := mountOn(t, osprofile.Linux128(), linuxServer(), MountOptions{})
	f, _ := m.Create("/f")
	f.Write(32 << 10)
	f.Close()
	g, _ := m.Open("/f")
	g.Read(32 << 10)
	g.Close()
	if got := m.Stats().ReadRPCs; got == 0 {
		t.Fatal("the Linux 1.2.8 client must re-fetch data over the wire (§10)")
	}
}

func TestPerHandlePageReuse(t *testing.T) {
	// Even the Linux client does not re-fetch a page the same open file
	// handle already read (the MAB header-scan pattern).
	_, m := mountOn(t, osprofile.Linux128(), linuxServer(), MountOptions{})
	f, _ := m.Create("/f")
	f.Write(8 << 10)
	f.Close()
	g, _ := m.Open("/f")
	g.Read(8 << 10)
	after := m.Stats().ReadRPCs
	for i := 0; i < 5; i++ {
		g.SeekTo(0)
		g.Read(8 << 10)
	}
	g.Close()
	if got := m.Stats().ReadRPCs; got != after {
		t.Fatalf("re-reads through one handle issued %d extra RPCs", got-after)
	}
}

func TestSyncServerSlowerThanAsync(t *testing.T) {
	// §10: the spec-compliant SunOS server must be much slower for the
	// same write workload.
	elapsed := func(server *Server) sim.Duration {
		clock, m := mountOn(t, osprofile.FreeBSD205(), server, MountOptions{ResvPort: true})
		start := clock.Now()
		f, _ := m.Create("/f")
		for i := 0; i < 32; i++ {
			f.Write(8 << 10)
		}
		f.Close()
		return clock.Now().Sub(start)
	}
	async := elapsed(linuxServer())
	sync := elapsed(sunServer())
	if sync < 2*async {
		t.Fatalf("sync server (%v) should be ≫ async server (%v)", sync, async)
	}
}

func TestSyncServerCommitsToDisk(t *testing.T) {
	server := sunServer()
	_, m := mountOn(t, osprofile.Solaris24(), server, MountOptions{})
	f, _ := m.Create("/f")
	f.Write(64 << 10)
	f.Close()
	if w := server.FS().Stats().DataDiskWrites; w == 0 {
		t.Fatal("sync server never wrote data to its disk")
	}
	if d := server.FS().Cache().DirtyBytes(); d != 0 {
		t.Fatalf("sync server left %d dirty bytes after replying", d)
	}
}

func TestAsyncServerAnswersFromCache(t *testing.T) {
	server := linuxServer()
	_, m := mountOn(t, osprofile.Solaris24(), server, MountOptions{})
	f, _ := m.Create("/f")
	f.Write(64 << 10)
	f.Close()
	if w := server.FS().Stats().DataDiskWrites; w != 0 {
		t.Fatalf("async Linux server wrote %d blocks synchronously; it should answer from cache", w)
	}
}

func TestForeignTransferSizeShrinks(t *testing.T) {
	// The Linux client drops to small transfers against a foreign server.
	_, native := mountOn(t, osprofile.Linux128(), linuxServer(), MountOptions{})
	f, _ := native.Create("/f")
	f.Write(32 << 10)
	f.Close()
	nativeRPCs := native.Stats().WriteRPCs

	_, foreign := mountOn(t, osprofile.Linux128(), sunServer(), MountOptions{})
	g, _ := foreign.Create("/f")
	g.Write(32 << 10)
	g.Close()
	foreignRPCs := foreign.Stats().WriteRPCs
	if foreignRPCs <= nativeRPCs {
		t.Fatalf("foreign server should force more, smaller write RPCs: native %d, foreign %d",
			nativeRPCs, foreignRPCs)
	}
}

func TestSolarisSerializesAgainstSyncServer(t *testing.T) {
	// Same byte count: Solaris should pay proportionally more against the
	// sync server than FreeBSD does, because it stops pipelining.
	run := func(p *osprofile.Profile, server *Server) sim.Duration {
		clock, m := mountOn(t, p, server, MountOptions{ResvPort: true})
		start := clock.Now()
		f, _ := m.Create("/f")
		for i := 0; i < 16; i++ {
			f.Write(8 << 10)
		}
		f.Close()
		return clock.Now().Sub(start)
	}
	fbsdRatio := float64(run(osprofile.FreeBSD205(), sunServer())) / float64(run(osprofile.FreeBSD205(), linuxServer()))
	solRatio := float64(run(osprofile.Solaris24(), sunServer())) / float64(run(osprofile.Solaris24(), linuxServer()))
	if solRatio <= fbsdRatio {
		t.Fatalf("Solaris sync/async ratio (%.2f) should exceed FreeBSD's (%.2f)", solRatio, fbsdRatio)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() sim.Time {
		server := sunServer()
		clock := &sim.Clock{}
		m, err := NewMount(clock, osprofile.FreeBSD205(), server, netstack.Ethernet10(), MountOptions{ResvPort: true})
		if err != nil {
			t.Fatal(err)
		}
		m.Mkdir("/d")
		for i := 0; i < 10; i++ {
			f, _ := m.Create("/d/f")
			f.Write(20 << 10)
			f.Close()
			g, _ := m.Open("/d/f")
			g.Read(20 << 10)
			g.Close()
		}
		return clock.Now()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("NFS model not deterministic: %v vs %v", a, b)
	}
}

func TestClientCacheEviction(t *testing.T) {
	c := newClientCache(10 << 10) // 10 KB budget
	c.extend("/a", 6<<10)
	c.extend("/b", 6<<10) // evicts /a
	if c.covers("/a", 1) {
		t.Fatal("LRU eviction failed: /a still covered")
	}
	if !c.covers("/b", 6<<10) {
		t.Fatal("/b should be covered")
	}
	// Touching /b then adding /c evicts nothing if /c fits after /b... it
	// does not fit, so /b goes (LRU after /c? /b was promoted by covers).
	c.extend("/c", 6<<10)
	if c.covers("/b", 1) && c.covers("/c", 1) && c.bytes > c.capacity {
		t.Fatal("cache exceeded its budget")
	}
	c.drop("/c")
	if c.covers("/c", 1) {
		t.Fatal("drop failed")
	}
}

func TestClientCacheZeroCapacity(t *testing.T) {
	c := newClientCache(0)
	c.extend("/a", 100)
	if c.covers("/a", 1) {
		t.Fatal("zero-capacity cache must never hit")
	}
}

func TestVFSInterfaceCompliance(t *testing.T) {
	var _ fs.VFS = (*Mount)(nil)
}

func TestRenameOverNFS(t *testing.T) {
	_, m := mountOn(t, osprofile.FreeBSD205(), sunServer(), MountOptions{})
	f, _ := m.Create("/a")
	f.Write(8 << 10)
	f.Close()
	before := m.Stats().MetaRPCs
	if err := m.Rename("/a", "/b"); err != nil {
		t.Fatal(err)
	}
	if m.Stats().MetaRPCs != before+1 {
		t.Fatal("rename should cost one RPC")
	}
	g, err := m.Open("/b")
	if err != nil {
		t.Fatal(err)
	}
	if g.Size() != 8<<10 {
		t.Fatalf("size after rename = %d", g.Size())
	}
	g.Close()
	if err := m.Rename("/missing", "/x"); err == nil {
		t.Fatal("rename of missing file must fail")
	}
}

// A scale-out population shares one fault-plan RNG fork across thousands
// of mounts. Every injected drop must be attributed to exactly one
// mount, so summing per-mount Stats reproduces the injector's totals —
// and retransmitted requests must count their wire bytes again.
func TestRetransmitCountersAggregateAcrossMounts(t *testing.T) {
	const mounts = 1000
	run := func(inj *fault.NetInjector) Stats {
		server := linuxServer()
		var total Stats
		for i := 0; i < mounts; i++ {
			clock := &sim.Clock{}
			m, err := NewMount(clock, osprofile.Linux128(), server, netstack.Ethernet10(), MountOptions{})
			if err != nil {
				t.Fatal(err)
			}
			m.SetFaults(inj)
			path := fmt.Sprintf("/f%d", i)
			f, err := m.Create(path)
			if err != nil {
				t.Fatal(err)
			}
			f.Write(8 << 10)
			f.Close()
			if _, err := m.Stat(path); err != nil {
				t.Fatal(err)
			}
			total.Add(m.Stats())
		}
		return total
	}

	clean := run(nil)
	plan := &fault.Plan{}
	plan.Net.UDPLossProb = 0.05
	inj := fault.New(plan, sim.NewRNG(99)).Net
	lossy := run(inj)

	if lossy.Retransmits == 0 {
		t.Fatal("5% loss across 1000 mounts produced no retransmits")
	}
	if lossy.Retransmits != inj.RPCRetransmits {
		t.Fatalf("sum of per-mount retransmits %d != shared injector's %d",
			lossy.Retransmits, inj.RPCRetransmits)
	}
	// Loss changes timing, never the operation stream: the RPC counts
	// match, and the lossy population's extra wire bytes are exactly its
	// retransmitted requests.
	if lossy.RPCs != clean.RPCs {
		t.Fatalf("loss changed the RPC count: %d vs %d", lossy.RPCs, clean.RPCs)
	}
	if lossy.BytesToWire <= clean.BytesToWire {
		t.Fatalf("retransmitted requests added no wire bytes: %d vs %d",
			lossy.BytesToWire, clean.BytesToWire)
	}
}
