package report

import (
	"strings"
	"testing"

	"repro/internal/core"
)

func TestMarkdownTables(t *testing.T) {
	var b strings.Builder
	Markdown(&b, []*core.Result{tableResult()})
	out := b.String()
	for _, want := range []string{
		"# EXPERIMENTS — paper vs. measured",
		"## T2 — System Call (getpid)",
		"| System | Measured (µs) | σ% | Paper (µs) | Paper σ% | Ratio |",
		"| Linux 1.2.8 | 2.31 |",
		"Shape claims reproduced:",
		"- Linux leads.",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
	// Series without a paper expectation get dashes.
	if !strings.Contains(out, "| FreeBSD 2.0.5R | 2.62 |") || !strings.Contains(out, "| — | — | — |") {
		t.Errorf("missing dash row:\n%s", out)
	}
}

func TestMarkdownTableWithoutExpectations(t *testing.T) {
	r := tableResult()
	r.Expected = nil
	var b strings.Builder
	Markdown(&b, []*core.Result{r})
	if strings.Contains(b.String(), "Paper (") {
		t.Error("no-expectation table should omit paper columns")
	}
	if !strings.Contains(b.String(), "| System | Measured (µs) | σ% |") {
		t.Error("plain header missing")
	}
}

func TestMarkdownFigures(t *testing.T) {
	r := figureResult()
	r.Expected = []core.Expectation{
		{Label: "FreeBSD peak", Mean: 48},
		{Label: "σ landmark", Mean: 80, StdDevPct: 4},
	}
	var b strings.Builder
	Markdown(&b, []*core.Result{r})
	out := b.String()
	for _, want := range []string{
		"| Series | First (Mb/s) | Peak (Mb/s) | Last (Mb/s) |",
		"| FreeBSD 2.0.5R | 20.00 | 48.00 | 48.00 |",
		"Paper landmarks:",
		"- FreeBSD peak: ~48 Mb/s",
		"- σ landmark: 80.00 Mb/s (σ 4.00%)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("figure markdown missing %q:\n%s", want, out)
		}
	}
}

func TestMarkdownClaimsSection(t *testing.T) {
	var b strings.Builder
	MarkdownClaims(&b, []ClaimLine{
		{ID: "C01", Exhibit: "T2", Statement: "ordering holds", Passed: true},
		{ID: "C02", Exhibit: "F1", Statement: "flat line", Passed: false, Err: "slope, detected"},
	})
	out := b.String()
	if !strings.Contains(out, "| C01 | T2 | pass | ordering holds |") {
		t.Errorf("pass row missing:\n%s", out)
	}
	if !strings.Contains(out, "**FAIL**: slope; detected") {
		t.Errorf("failure row (with sanitised comma) missing:\n%s", out)
	}
}

func TestHumanBytes(t *testing.T) {
	for v, want := range map[float64]string{
		64:      "64",
		2048:    "2K",
		8 << 20: "8M",
	} {
		if got := humanBytes(v); got != want {
			t.Errorf("humanBytes(%v) = %q, want %q", v, got, want)
		}
	}
}

func TestScaleXLinear(t *testing.T) {
	if scaleX(5, false) != 5 {
		t.Error("linear scale must be identity")
	}
	if scaleX(8, true) != 3 {
		t.Error("log2(8) != 3")
	}
	if scaleX(0, true) != 0 {
		t.Error("log scale of 0 should pass through")
	}
}
