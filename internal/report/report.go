// Package report renders experiment results: paper-style tables with
// mean / std-dev / normalised columns, ASCII plots for figures, and CSV
// for external plotting.
package report

import (
	"fmt"
	"io"
	"math"
	"strings"

	"repro/internal/core"
	"repro/internal/stats"
)

// Table writes a paper-style table: one row per series with Mean,
// Std Dev % and Norm. columns, plus the paper's reported value when the
// experiment carries one.
func Table(w io.Writer, r *core.Result) {
	fmt.Fprintf(w, "%s — %s\n", r.ID, r.Title)
	hasPaper := len(r.Expected) > 0

	means := make([]float64, len(r.Series))
	for i, s := range r.Series {
		means[i] = s.Samples[0].Mean()
	}
	norm := stats.Normalize(means, r.Direction)

	header := fmt.Sprintf("  %-34s %12s %9s %7s", "System", "Mean ("+r.YUnit+")", "Std Dev", "Norm.")
	if hasPaper {
		header += fmt.Sprintf(" %14s %9s", "Paper ("+r.YUnit+")", "Ratio")
	}
	fmt.Fprintln(w, header)
	fmt.Fprintln(w, "  "+strings.Repeat("-", len(header)-2))
	for i, s := range r.Series {
		line := fmt.Sprintf("  %-34s %12.2f %8.2f%% %7.2f",
			s.Label, means[i], 100*s.Samples[0].RelStdDev(), norm[i])
		if hasPaper {
			if exp, ok := r.ExpectationFor(s.Label); ok {
				line += fmt.Sprintf(" %14.2f %9.2f", exp.Mean, stats.Ratio(means[i], exp.Mean))
			} else {
				line += fmt.Sprintf(" %14s %9s", "-", "-")
			}
		}
		fmt.Fprintln(w, line)
	}
	writeNotes(w, r)
}

// Figure writes an ASCII plot of the result's series.
func Figure(w io.Writer, r *core.Result) {
	fmt.Fprintf(w, "%s — %s\n", r.ID, r.Title)
	plot(w, r, 72, 20)
	// Also print a compact numeric summary per series.
	for _, s := range r.Series {
		first := s.Samples[0].Mean()
		last := s.Samples[len(s.Samples)-1].Mean()
		peak := math.Inf(-1)
		for _, smp := range s.Samples {
			if m := smp.Mean(); m > peak {
				peak = m
			}
		}
		fmt.Fprintf(w, "  %-42s first %9.2f  peak %9.2f  last %9.2f %s\n",
			s.Label, first, peak, last, r.YUnit)
	}
	writeNotes(w, r)
}

// Render picks Table or Figure by kind.
func Render(w io.Writer, r *core.Result) {
	if r.Kind == core.Table {
		Table(w, r)
	} else {
		Figure(w, r)
	}
}

func writeNotes(w io.Writer, r *core.Result) {
	for _, n := range r.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
}

// plotGlyphs mark the different series.
var plotGlyphs = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// plot draws all series on one canvas. X may be log-scaled per the
// result; Y is linear from zero.
func plot(w io.Writer, r *core.Result, width, height int) {
	if len(r.Series) == 0 || len(r.Series[0].X) == 0 {
		fmt.Fprintln(w, "  (no points)")
		return
	}
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymax := math.Inf(-1)
	for _, s := range r.Series {
		for i, x := range s.X {
			fx := scaleX(x, r.LogX)
			xmin = math.Min(xmin, fx)
			xmax = math.Max(xmax, fx)
			ymax = math.Max(ymax, s.Samples[i].Mean())
		}
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax <= 0 {
		ymax = 1
	}

	canvas := make([][]byte, height)
	for i := range canvas {
		canvas[i] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range r.Series {
		glyph := plotGlyphs[si%len(plotGlyphs)]
		for i, x := range s.X {
			cx := int(float64(width-1) * (scaleX(x, r.LogX) - xmin) / (xmax - xmin))
			cy := int(float64(height-1) * s.Samples[i].Mean() / ymax)
			row := height - 1 - cy
			if row < 0 {
				row = 0
			}
			if cx < 0 {
				cx = 0
			}
			canvas[row][cx] = glyph
		}
	}
	fmt.Fprintf(w, "  %.6g %s\n", ymax, r.YUnit)
	for _, row := range canvas {
		fmt.Fprintf(w, "  |%s\n", string(row))
	}
	fmt.Fprintf(w, "  +%s\n", strings.Repeat("-", width))
	scale := "linear"
	if r.LogX {
		scale = "log"
	}
	fmt.Fprintf(w, "   %-12s %s (%s scale)\n", xLabelLeft(r), r.XLabel, scale)
	for si, s := range r.Series {
		fmt.Fprintf(w, "   %c = %s\n", plotGlyphs[si%len(plotGlyphs)], s.Label)
	}
}

func xLabelLeft(r *core.Result) string {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range r.Series {
		for _, x := range s.X {
			lo = math.Min(lo, x)
			hi = math.Max(hi, x)
		}
	}
	return fmt.Sprintf("%.6g..%.6g", lo, hi)
}

func scaleX(x float64, log bool) float64 {
	if log && x > 0 {
		return math.Log2(x)
	}
	return x
}

// CSV writes the result as comma-separated values: one line per
// (series, x) with mean and relative std dev.
func CSV(w io.Writer, r *core.Result) {
	fmt.Fprintf(w, "experiment,series,x,mean_%s,stddev_pct\n", sanitize(r.YUnit))
	for _, s := range r.Series {
		if len(s.X) == 0 {
			fmt.Fprintf(w, "%s,%s,,%g,%g\n", r.ID, sanitize(s.Label),
				s.Samples[0].Mean(), 100*s.Samples[0].RelStdDev())
			continue
		}
		for i, x := range s.X {
			fmt.Fprintf(w, "%s,%s,%g,%g,%g\n", r.ID, sanitize(s.Label), x,
				s.Samples[i].Mean(), 100*s.Samples[i].RelStdDev())
		}
	}
}

func sanitize(s string) string {
	return strings.NewReplacer(",", ";", "\n", " ").Replace(s)
}
