package report

import (
	"fmt"
	"io"
	"math"
	"strings"

	"repro/internal/core"
)

// SVG writes a publication-style plot of a figure result (or a bar chart
// for a table result) as a standalone SVG document, so the reproduction's
// figures can be compared with the paper's side by side.
func SVG(w io.Writer, r *core.Result) {
	const (
		width, height       = 720, 480
		left, right         = 70, 160 // right margin holds the legend
		top, bottom         = 50, 60
		plotW, plotH        = width - left - right, height - top - bottom
		tickLen             = 5
		fontSize, titleSize = 12, 15
	)

	fmt.Fprintf(w, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		width, height, width, height)
	fmt.Fprintf(w, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	fmt.Fprintf(w, `<text x="%d" y="%d" font-family="sans-serif" font-size="%d" font-weight="bold">%s — %s</text>`+"\n",
		left, top-25, titleSize, xmlEscape(r.ID), xmlEscape(r.Title))

	if len(r.Series) == 0 {
		fmt.Fprintln(w, `</svg>`)
		return
	}

	// Tables render as grouped bars.
	if r.Kind == core.Table {
		svgBars(w, r, left, top, plotW, plotH, fontSize)
		fmt.Fprintln(w, `</svg>`)
		return
	}

	// Domain.
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymax := 0.0
	for _, s := range r.Series {
		for i, x := range s.X {
			fx := scaleX(x, r.LogX)
			xmin, xmax = math.Min(xmin, fx), math.Max(xmax, fx)
			ymax = math.Max(ymax, s.Samples[i].Mean())
		}
	}
	if xmax == xmin {
		xmax++
	}
	ymax *= 1.05

	px := func(x float64) float64 {
		return left + plotW*(scaleX(x, r.LogX)-xmin)/(xmax-xmin)
	}
	py := func(y float64) float64 {
		return top + plotH*(1-y/ymax)
	}

	// Axes.
	fmt.Fprintf(w, `<rect x="%d" y="%d" width="%d" height="%d" fill="none" stroke="black"/>`+"\n",
		left, top, plotW, plotH)

	// Y ticks: 5 even divisions.
	for i := 0; i <= 5; i++ {
		v := ymax * float64(i) / 5
		y := py(v)
		fmt.Fprintf(w, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="black"/>`+"\n",
			left-tickLen, y, left, y)
		fmt.Fprintf(w, `<text x="%d" y="%.1f" font-family="sans-serif" font-size="%d" text-anchor="end">%s</text>`+"\n",
			left-tickLen-3, y+4, fontSize, trimNum(v))
		if i > 0 {
			fmt.Fprintf(w, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#dddddd"/>`+"\n",
				left, y, left+plotW, y)
		}
	}
	fmt.Fprintf(w, `<text x="18" y="%d" font-family="sans-serif" font-size="%d" transform="rotate(-90 18 %d)" text-anchor="middle">%s</text>`+"\n",
		top+plotH/2, fontSize, top+plotH/2, xmlEscape(r.YUnit))

	// X ticks at each decade (log) or 5 divisions (linear).
	if r.LogX {
		for e := math.Ceil(math.Exp2(0)); ; e++ {
			v := math.Exp2(float64(int(math.Floor(xmin))) + e - 1)
			if scaleX(v, true) > xmax {
				break
			}
			if scaleX(v, true) < xmin {
				continue
			}
			x := px(v)
			fmt.Fprintf(w, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="black"/>`+"\n",
				x, top+plotH, x, top+plotH+tickLen)
			if int(e)%2 == 1 { // label every other decade to avoid clutter
				fmt.Fprintf(w, `<text x="%.1f" y="%d" font-family="sans-serif" font-size="%d" text-anchor="middle">%s</text>`+"\n",
					x, top+plotH+tickLen+13, fontSize, humanBytes(v))
			}
		}
	} else {
		for i := 0; i <= 5; i++ {
			// Linear domains are plotted against raw X.
			v := xmin + (xmax-xmin)*float64(i)/5
			x := left + float64(plotW)*float64(i)/5
			fmt.Fprintf(w, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="black"/>`+"\n",
				x, top+plotH, x, top+plotH+tickLen)
			fmt.Fprintf(w, `<text x="%.1f" y="%d" font-family="sans-serif" font-size="%d" text-anchor="middle">%s</text>`+"\n",
				x, top+plotH+tickLen+13, fontSize, trimNum(v))
		}
	}
	fmt.Fprintf(w, `<text x="%d" y="%d" font-family="sans-serif" font-size="%d" text-anchor="middle">%s</text>`+"\n",
		left+plotW/2, height-18, fontSize, xmlEscape(r.XLabel))

	// Series.
	for si, s := range r.Series {
		color := svgColors[si%len(svgColors)]
		var pts []string
		for i, x := range s.X {
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", px(x), py(s.Samples[i].Mean())))
		}
		fmt.Fprintf(w, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.8"/>`+"\n",
			strings.Join(pts, " "), color)
		for i, x := range s.X {
			fmt.Fprintf(w, `<circle cx="%.1f" cy="%.1f" r="2.5" fill="%s"/>`+"\n",
				px(x), py(s.Samples[i].Mean()), color)
		}
		// Legend entry.
		ly := top + 16*si
		fmt.Fprintf(w, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="2"/>`+"\n",
			left+plotW+10, ly, left+plotW+30, ly, color)
		fmt.Fprintf(w, `<text x="%d" y="%d" font-family="sans-serif" font-size="%d">%s</text>`+"\n",
			left+plotW+35, ly+4, fontSize-1, xmlEscape(s.Label))
	}
	fmt.Fprintln(w, `</svg>`)
}

// svgBars renders a table result as horizontal bars.
func svgBars(w io.Writer, r *core.Result, left, top, plotW, plotH, fontSize int) {
	max := 0.0
	for _, s := range r.Series {
		max = math.Max(max, s.Samples[0].Mean())
	}
	if max == 0 {
		max = 1
	}
	n := len(r.Series)
	barH := plotH / (n*2 + 1)
	for i, s := range r.Series {
		v := s.Samples[0].Mean()
		bw := float64(plotW) * v / (max * 1.1)
		y := top + barH*(2*i+1)
		fmt.Fprintf(w, `<rect x="%d" y="%d" width="%.1f" height="%d" fill="%s"/>`+"\n",
			left, y, bw, barH, svgColors[i%len(svgColors)])
		fmt.Fprintf(w, `<text x="%.1f" y="%d" font-family="sans-serif" font-size="%d">%.2f %s</text>`+"\n",
			float64(left)+bw+5, y+barH/2+4, fontSize, v, xmlEscape(r.YUnit))
		fmt.Fprintf(w, `<text x="%d" y="%d" font-family="sans-serif" font-size="%d" text-anchor="end">%s</text>`+"\n",
			left-5, y+barH/2+4, fontSize, xmlEscape(s.Label))
	}
}

var svgColors = []string{
	"#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e",
	"#8c564b", "#17becf", "#7f7f7f",
}

func xmlEscape(s string) string {
	return strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;").Replace(s)
}

// trimNum formats a number compactly for tick labels.
func trimNum(v float64) string {
	switch {
	case v >= 1000:
		return fmt.Sprintf("%.0f", v)
	case v >= 10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

// humanBytes renders a byte count tick.
func humanBytes(v float64) string {
	switch {
	case v >= 1<<20:
		return fmt.Sprintf("%.0fM", v/(1<<20))
	case v >= 1<<10:
		return fmt.Sprintf("%.0fK", v/(1<<10))
	default:
		return fmt.Sprintf("%.0f", v)
	}
}
