package report

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/obs"
)

// TimelineRun is one sampled run's contribution to a timeline figure:
// the run label (an OS personality) and its flattened time series.
// Overload optionally marks windows where the run was saturated (queue
// at capacity — drops — or requests shed); marked windows are shaded
// behind every strip.
type TimelineRun struct {
	Label    string
	WidthNs  int64
	Series   []obs.FlatSeries
	Overload []bool
}

// Timeline writes a small-multiple SVG of virtual-time series: one strip
// per metric name (the union across runs), one polyline per run within
// each strip, all sharing the x axis (window index → virtual time).
// Output depends only on the inputs — same series, same bytes.
func Timeline(w io.Writer, id, title string, runs []TimelineRun) {
	const (
		width        = 860
		left, right  = 220, 20
		top          = 56
		stripH       = 56
		stripGap     = 14
		plotW        = width - left - right
		fontSize     = 11
		titleSize    = 15
	)

	// The strip list is the name-sorted union of every run's series.
	nameSet := map[string]bool{}
	for _, r := range runs {
		for _, s := range r.Series {
			nameSet[s.Name] = true
		}
	}
	names := make([]string, 0, len(nameSet))
	for n := range nameSet {
		names = append(names, n)
	}
	sort.Strings(names)

	windows := 0
	for _, r := range runs {
		for _, s := range r.Series {
			if len(s.Values) > windows {
				windows = len(s.Values)
			}
		}
	}

	height := top + len(names)*(stripH+stripGap) + 30
	fmt.Fprintf(w, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		width, height, width, height)
	fmt.Fprintf(w, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	fmt.Fprintf(w, `<text x="%d" y="%d" font-family="sans-serif" font-size="%d" font-weight="bold">%s — %s</text>`+"\n",
		16, 24, titleSize, xmlEscape(id), xmlEscape(title))

	// Legend: one swatch per run, on the title row.
	x := 16
	y := 42
	for ri, r := range runs {
		color := svgColors[ri%len(svgColors)]
		fmt.Fprintf(w, `<rect x="%d" y="%d" width="10" height="10" fill="%s"/>`+"\n", x, y-9, color)
		fmt.Fprintf(w, `<text x="%d" y="%d" font-family="sans-serif" font-size="%d">%s</text>`+"\n",
			x+14, y, fontSize, xmlEscape(r.Label))
		x += 14 + 7*len(r.Label) + 18
	}

	if len(names) == 0 || windows == 0 {
		fmt.Fprintln(w, `</svg>`)
		return
	}

	// Overload columns: the union across runs, merged into contiguous
	// spans so the shading stays one rect per episode per strip.
	overload := make([]bool, windows)
	for _, r := range runs {
		for i, v := range r.Overload {
			if i < windows && v {
				overload[i] = true
			}
		}
	}
	type span struct{ from, to int } // [from, to)
	var spans []span
	for i := 0; i < windows; i++ {
		if !overload[i] {
			continue
		}
		j := i
		for j < windows && overload[j] {
			j++
		}
		spans = append(spans, span{i, j})
		i = j
	}
	// colX maps a window index onto the shared x axis (same mapping the
	// polylines use); column edges sit half a window either side.
	colX := func(i float64) float64 {
		px := float64(left)
		if windows > 1 {
			px += i / float64(windows-1) * float64(plotW)
		}
		if px < float64(left) {
			px = float64(left)
		}
		if px > float64(left+plotW) {
			px = float64(left + plotW)
		}
		return px
	}

	for si, name := range names {
		sy := top + si*(stripH+stripGap)
		// Strip max across runs scales the y axis.
		var max int64 = 1
		for _, r := range runs {
			for _, s := range r.Series {
				if s.Name != name {
					continue
				}
				for _, v := range s.Values {
					if v > max {
						max = v
					}
				}
			}
		}
		fmt.Fprintf(w, `<rect x="%d" y="%d" width="%d" height="%d" fill="#f7f7f7"/>`+"\n",
			left, sy, plotW, stripH)
		for _, sp := range spans {
			x0 := colX(float64(sp.from) - 0.5)
			x1 := colX(float64(sp.to-1) + 0.5)
			fmt.Fprintf(w, `<rect x="%s" y="%d" width="%s" height="%d" fill="#d62728" fill-opacity="0.13"/>`+"\n",
				trimNum(x0), sy, trimNum(x1-x0), stripH)
		}
		fmt.Fprintf(w, `<text x="%d" y="%d" font-family="sans-serif" font-size="%d" text-anchor="end">%s</text>`+"\n",
			left-8, sy+stripH/2+4, fontSize, xmlEscape(name))
		fmt.Fprintf(w, `<text x="%d" y="%d" font-family="sans-serif" font-size="%d" fill="#888" text-anchor="end">max %d</text>`+"\n",
			width-right, sy-2, fontSize-2, max)
		for ri, r := range runs {
			for _, s := range r.Series {
				if s.Name != name || len(s.Values) == 0 {
					continue
				}
				pts := make([]byte, 0, len(s.Values)*12)
				for i, v := range s.Values {
					px := float64(left)
					if windows > 1 {
						px += float64(i) / float64(windows-1) * float64(plotW)
					}
					py := float64(sy+stripH) - float64(v)/float64(max)*float64(stripH-4)
					pts = append(pts, fmt.Sprintf("%s%s,%s", sep(i), trimNum(px), trimNum(py))...)
				}
				fmt.Fprintf(w, `<polyline fill="none" stroke="%s" stroke-width="1.2" points="%s"/>`+"\n",
					svgColors[ri%len(svgColors)], pts)
			}
		}
	}

	// Shared x axis, in virtual time off the first run's window width:
	// five ticks across the span, the last carrying the "virtual" unit.
	axisY := top + len(names)*(stripH+stripGap) + 4
	widthNs := int64(0)
	if len(runs) > 0 {
		widthNs = runs[0].WidthNs
	}
	total := int64(windows) * widthNs
	fmt.Fprintf(w, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#999" stroke-width="1"/>`+"\n",
		left, axisY, left+plotW, axisY)
	const ticks = 4
	for t := 0; t <= ticks; t++ {
		px := left + t*plotW/ticks
		fmt.Fprintf(w, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#999" stroke-width="1"/>`+"\n",
			px, axisY, px, axisY+4)
		label := "0"
		anchor := "middle"
		switch {
		case t == 0:
			anchor = "start"
		case t == ticks:
			anchor = "end"
			label = virtualSpan(total)
		default:
			label = virtualTick(total * int64(t) / ticks)
		}
		fmt.Fprintf(w, `<text x="%d" y="%d" font-family="sans-serif" font-size="%d" text-anchor="%s">%s</text>`+"\n",
			px, axisY+15, fontSize, anchor, xmlEscape(label))
	}
	if len(spans) > 0 {
		fmt.Fprintf(w, `<rect x="%d" y="%d" width="10" height="10" fill="#d62728" fill-opacity="0.13" stroke="#d62728" stroke-width="0.5"/>`+"\n",
			left, axisY+22)
		fmt.Fprintf(w, `<text x="%d" y="%d" font-family="sans-serif" font-size="%d">overloaded windows (queue full or sheds)</text>`+"\n",
			left+14, axisY+31, fontSize-1)
	}
	fmt.Fprintln(w, `</svg>`)
}

func sep(i int) string {
	if i == 0 {
		return ""
	}
	return " "
}

// virtualTick renders a virtual-ns instant for an interior axis tick.
func virtualTick(ns int64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2f s", float64(ns)/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.2f ms", float64(ns)/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.2f µs", float64(ns)/1e3)
	default:
		return fmt.Sprintf("%d ns", ns)
	}
}

// virtualSpan renders a virtual-ns span for the axis-end label.
func virtualSpan(ns int64) string { return virtualTick(ns) + " virtual" }
