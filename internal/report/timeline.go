package report

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/obs"
)

// TimelineRun is one sampled run's contribution to a timeline figure:
// the run label (an OS personality) and its flattened time series.
type TimelineRun struct {
	Label   string
	WidthNs int64
	Series  []obs.FlatSeries
}

// Timeline writes a small-multiple SVG of virtual-time series: one strip
// per metric name (the union across runs), one polyline per run within
// each strip, all sharing the x axis (window index → virtual time).
// Output depends only on the inputs — same series, same bytes.
func Timeline(w io.Writer, id, title string, runs []TimelineRun) {
	const (
		width        = 860
		left, right  = 220, 20
		top          = 56
		stripH       = 56
		stripGap     = 14
		plotW        = width - left - right
		fontSize     = 11
		titleSize    = 15
	)

	// The strip list is the name-sorted union of every run's series.
	nameSet := map[string]bool{}
	for _, r := range runs {
		for _, s := range r.Series {
			nameSet[s.Name] = true
		}
	}
	names := make([]string, 0, len(nameSet))
	for n := range nameSet {
		names = append(names, n)
	}
	sort.Strings(names)

	windows := 0
	for _, r := range runs {
		for _, s := range r.Series {
			if len(s.Values) > windows {
				windows = len(s.Values)
			}
		}
	}

	height := top + len(names)*(stripH+stripGap) + 30
	fmt.Fprintf(w, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		width, height, width, height)
	fmt.Fprintf(w, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	fmt.Fprintf(w, `<text x="%d" y="%d" font-family="sans-serif" font-size="%d" font-weight="bold">%s — %s</text>`+"\n",
		16, 24, titleSize, xmlEscape(id), xmlEscape(title))

	// Legend: one swatch per run, on the title row.
	x := 16
	y := 42
	for ri, r := range runs {
		color := svgColors[ri%len(svgColors)]
		fmt.Fprintf(w, `<rect x="%d" y="%d" width="10" height="10" fill="%s"/>`+"\n", x, y-9, color)
		fmt.Fprintf(w, `<text x="%d" y="%d" font-family="sans-serif" font-size="%d">%s</text>`+"\n",
			x+14, y, fontSize, xmlEscape(r.Label))
		x += 14 + 7*len(r.Label) + 18
	}

	if len(names) == 0 || windows == 0 {
		fmt.Fprintln(w, `</svg>`)
		return
	}

	for si, name := range names {
		sy := top + si*(stripH+stripGap)
		// Strip max across runs scales the y axis.
		var max int64 = 1
		for _, r := range runs {
			for _, s := range r.Series {
				if s.Name != name {
					continue
				}
				for _, v := range s.Values {
					if v > max {
						max = v
					}
				}
			}
		}
		fmt.Fprintf(w, `<rect x="%d" y="%d" width="%d" height="%d" fill="#f7f7f7"/>`+"\n",
			left, sy, plotW, stripH)
		fmt.Fprintf(w, `<text x="%d" y="%d" font-family="sans-serif" font-size="%d" text-anchor="end">%s</text>`+"\n",
			left-8, sy+stripH/2+4, fontSize, xmlEscape(name))
		fmt.Fprintf(w, `<text x="%d" y="%d" font-family="sans-serif" font-size="%d" fill="#888" text-anchor="end">max %d</text>`+"\n",
			width-right, sy-2, fontSize-2, max)
		for ri, r := range runs {
			for _, s := range r.Series {
				if s.Name != name || len(s.Values) == 0 {
					continue
				}
				pts := make([]byte, 0, len(s.Values)*12)
				for i, v := range s.Values {
					px := float64(left)
					if windows > 1 {
						px += float64(i) / float64(windows-1) * float64(plotW)
					}
					py := float64(sy+stripH) - float64(v)/float64(max)*float64(stripH-4)
					pts = append(pts, fmt.Sprintf("%s%s,%s", sep(i), trimNum(px), trimNum(py))...)
				}
				fmt.Fprintf(w, `<polyline fill="none" stroke="%s" stroke-width="1.2" points="%s"/>`+"\n",
					svgColors[ri%len(svgColors)], pts)
			}
		}
	}

	// Shared x axis, in virtual time off the first run's window width.
	axisY := top + len(names)*(stripH+stripGap) + 4
	widthNs := int64(0)
	if len(runs) > 0 {
		widthNs = runs[0].WidthNs
	}
	fmt.Fprintf(w, `<text x="%d" y="%d" font-family="sans-serif" font-size="%d">0</text>`+"\n",
		left, axisY+12, fontSize)
	fmt.Fprintf(w, `<text x="%d" y="%d" font-family="sans-serif" font-size="%d" text-anchor="end">%s</text>`+"\n",
		left+plotW, axisY+12, fontSize, xmlEscape(virtualSpan(int64(windows)*widthNs)))
	fmt.Fprintln(w, `</svg>`)
}

func sep(i int) string {
	if i == 0 {
		return ""
	}
	return " "
}

// virtualSpan renders a virtual-ns span for the axis label.
func virtualSpan(ns int64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2f s virtual", float64(ns)/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.2f ms virtual", float64(ns)/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.2f µs virtual", float64(ns)/1e3)
	default:
		return fmt.Sprintf("%d ns virtual", ns)
	}
}
