package report

import (
	"encoding/xml"
	"strings"
	"testing"

	"repro/internal/core"
)

// xmlWellFormed parses the document with encoding/xml to catch attribute
// and nesting errors.
func xmlWellFormed(t *testing.T, doc string) {
	t.Helper()
	dec := xml.NewDecoder(strings.NewReader(doc))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				return
			}
			t.Fatalf("SVG not well-formed XML: %v\n%s", err, doc)
		}
	}
}

func TestSVGFigure(t *testing.T) {
	var b strings.Builder
	SVG(&b, figureResult())
	doc := b.String()
	xmlWellFormed(t, doc)
	for _, want := range []string{
		"<svg", "polyline", "circle", "F13 — UDP Bandwidth",
		"FreeBSD 2.0.5R", "Linux 1.2.8", "Mb/s",
	} {
		if !strings.Contains(doc, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	// Two series → two polylines.
	if got := strings.Count(doc, "<polyline"); got != 2 {
		t.Errorf("polylines = %d, want 2", got)
	}
}

func TestSVGTableBars(t *testing.T) {
	var b strings.Builder
	SVG(&b, tableResult())
	doc := b.String()
	xmlWellFormed(t, doc)
	// Two rows → at least two bars (rect beyond the background).
	if got := strings.Count(doc, "<rect"); got < 3 {
		t.Errorf("rects = %d, want background + 2 bars", got)
	}
	if !strings.Contains(doc, "Linux 1.2.8") {
		t.Error("bar labels missing")
	}
}

func TestSVGEmptyResult(t *testing.T) {
	var b strings.Builder
	SVG(&b, &core.Result{ID: "X", Title: "empty", Kind: core.Figure})
	xmlWellFormed(t, b.String())
}

func TestSVGEscapesLabels(t *testing.T) {
	r := figureResult()
	r.Title = `Angle <brackets> & "quotes"`
	var b strings.Builder
	SVG(&b, r)
	xmlWellFormed(t, b.String())
	if strings.Contains(b.String(), "<brackets>") {
		t.Error("title not escaped")
	}
}
