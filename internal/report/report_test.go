package report

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/stats"
)

func sample(vals ...float64) *stats.Sample {
	s := &stats.Sample{}
	for _, v := range vals {
		s.Add(v)
	}
	return s
}

func tableResult() *core.Result {
	return &core.Result{
		ID: "T2", Title: "System Call (getpid)", Kind: core.Table,
		YUnit: "µs", Direction: stats.LowerIsBetter,
		Series: []core.Series{
			{Label: "Linux 1.2.8", Samples: []*stats.Sample{sample(2.30, 2.32)}},
			{Label: "FreeBSD 2.0.5R", Samples: []*stats.Sample{sample(2.61, 2.63)}},
		},
		Expected: []core.Expectation{
			{Label: "Linux 1.2.8", Mean: 2.31, StdDevPct: 0.10},
		},
		Notes: []string{"Linux leads."},
	}
}

func figureResult() *core.Result {
	return &core.Result{
		ID: "F13", Title: "UDP Bandwidth", Kind: core.Figure,
		YUnit: "Mb/s", XLabel: "packet bytes", LogX: true,
		Direction: stats.HigherIsBetter,
		Series: []core.Series{
			{
				Label:   "FreeBSD 2.0.5R",
				X:       []float64{1024, 8192},
				Samples: []*stats.Sample{sample(20), sample(48)},
			},
			{
				Label:   "Linux 1.2.8",
				X:       []float64{1024, 8192},
				Samples: []*stats.Sample{sample(8), sample(16)},
			},
		},
	}
}

func TestTableRendering(t *testing.T) {
	var b strings.Builder
	Table(&b, tableResult())
	out := b.String()
	for _, want := range []string{
		"T2 — System Call", "Linux 1.2.8", "FreeBSD 2.0.5R",
		"Mean (µs)", "Std Dev", "Norm.", "Paper (µs)",
		"1.00", // Linux normalises to 1.00
		"note: Linux leads.",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
	// The series without an expectation renders a dash.
	if !strings.Contains(out, "-") {
		t.Errorf("missing dash for absent expectation:\n%s", out)
	}
}

func TestFigureRendering(t *testing.T) {
	var b strings.Builder
	Figure(&b, figureResult())
	out := b.String()
	for _, want := range []string{
		"F13 — UDP Bandwidth",
		"packet bytes (log scale)",
		"* = FreeBSD 2.0.5R",
		"o = Linux 1.2.8",
		"first", "peak", "last",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("figure output missing %q:\n%s", want, out)
		}
	}
	// Canvas rows are present.
	if strings.Count(out, "\n  |") < 10 {
		t.Errorf("figure canvas too short:\n%s", out)
	}
}

func TestRenderDispatch(t *testing.T) {
	var b strings.Builder
	Render(&b, tableResult())
	if !strings.Contains(b.String(), "Norm.") {
		t.Error("Render did not dispatch to Table")
	}
	b.Reset()
	Render(&b, figureResult())
	if !strings.Contains(b.String(), "log scale") {
		t.Error("Render did not dispatch to Figure")
	}
}

func TestCSVOutput(t *testing.T) {
	var b strings.Builder
	CSV(&b, figureResult())
	out := b.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Header + 2 series x 2 points.
	if len(lines) != 5 {
		t.Fatalf("CSV has %d lines, want 5:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "experiment,series,x,mean_") {
		t.Errorf("bad CSV header: %s", lines[0])
	}
	if !strings.Contains(out, "F13,FreeBSD 2.0.5R,1024,20,") {
		t.Errorf("CSV missing data row:\n%s", out)
	}
}

func TestCSVTableForm(t *testing.T) {
	var b strings.Builder
	CSV(&b, tableResult())
	out := b.String()
	// Table rows have an empty x column.
	if !strings.Contains(out, "T2,Linux 1.2.8,,") {
		t.Errorf("table CSV should leave x empty:\n%s", out)
	}
}

func TestCSVSanitizesCommas(t *testing.T) {
	r := tableResult()
	r.Series[0].Label = "Linux, the fast one"
	var b strings.Builder
	CSV(&b, r)
	if strings.Contains(b.String(), "Linux, the") {
		t.Error("CSV did not sanitise commas in labels")
	}
}

func TestEmptyFigure(t *testing.T) {
	var b strings.Builder
	Figure(&b, &core.Result{ID: "X", Title: "empty", Kind: core.Figure})
	if !strings.Contains(b.String(), "(no points)") {
		t.Error("empty figure should say so")
	}
}

func TestHTMLReport(t *testing.T) {
	var b strings.Builder
	HTML(&b, []*core.Result{tableResult(), figureResult()})
	doc := b.String()
	for _, want := range []string{
		"<!DOCTYPE html>", "</html>", "<table>", "<svg",
		"T2 — System Call", "F13 — UDP Bandwidth",
		"±95%", "Paper (µs)",
	} {
		if !strings.Contains(doc, want) {
			t.Errorf("HTML missing %q", want)
		}
	}
}

func TestHTMLEscapes(t *testing.T) {
	r := tableResult()
	r.Notes = []string{`tags <b> & "quotes"`}
	var b strings.Builder
	HTML(&b, []*core.Result{r})
	if strings.Contains(b.String(), "<b>") {
		t.Error("notes not escaped")
	}
}
