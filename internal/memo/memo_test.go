package memo

import (
	"crypto/sha256"
	"encoding/hex"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func TestTableSingleFlight(t *testing.T) {
	tab := NewTable[int, int]()
	var computes int
	got := tab.Do(7, func() int { computes++; return 42 })
	if got != 42 || computes != 1 {
		t.Fatalf("first Do = %d (computes %d), want 42 computed once", got, computes)
	}
	got = tab.Do(7, func() int { computes++; return 99 })
	if got != 42 || computes != 1 {
		t.Fatalf("second Do = %d (computes %d), want memoized 42", got, computes)
	}
	st := tab.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want 1 hit 1 miss", st)
	}
}

func TestTableConcurrentComputesOnce(t *testing.T) {
	tab := NewTable[string, int]()
	var mu sync.Mutex
	computes := 0
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v := tab.Do("k", func() int {
				mu.Lock()
				computes++
				mu.Unlock()
				return 5
			})
			if v != 5 {
				t.Errorf("Do = %d, want 5", v)
			}
		}()
	}
	wg.Wait()
	if computes != 1 {
		t.Fatalf("computed %d times, want exactly once", computes)
	}
	st := tab.Stats()
	if st.Misses != 1 || st.Hits != 31 {
		t.Fatalf("stats = %+v, want 31 hits 1 miss", st)
	}
}

type testValue struct {
	Name string    `json:"name"`
	Xs   []float64 `json:"xs"`
}

func TestStoreRoundTrip(t *testing.T) {
	s, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := []byte(`{"id":"T2","seed":1}`)
	in := testValue{Name: "getpid", Xs: []float64{1.5, 2.25, 0.1}}
	var out testValue
	if s.Get(key, &out) {
		t.Fatal("Get hit on empty store")
	}
	if err := s.Put(key, in); err != nil {
		t.Fatal(err)
	}
	if !s.Get(key, &out) {
		t.Fatal("Get missed a just-Put key")
	}
	if out.Name != in.Name || len(out.Xs) != 3 || out.Xs[1] != 2.25 {
		t.Fatalf("round trip = %+v, want %+v", out, in)
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Stale != 0 || st.Puts != 1 {
		t.Fatalf("stats = %+v, want 1 hit 1 miss 0 stale 1 put", st)
	}
}

// entryPath mirrors Store.path for white-box corruption tests.
func entryPath(dir string, key []byte) string {
	sum := sha256.Sum256(key)
	h := hex.EncodeToString(sum[:])
	return filepath.Join(dir, h[:2], h[2:]+".json")
}

// TestStoreCorruptionRecomputes is the degradation contract: a
// truncated, garbage, or key-mismatched entry must read as a miss
// (counted stale), never as an error or a wrong value — the caller
// recomputes and the next Put repairs the entry.
func TestStoreCorruptionRecomputes(t *testing.T) {
	key := []byte("the-key")
	corruptions := []struct {
		name    string
		content []byte
	}{
		{"truncated", nil}, // filled below from a valid entry's prefix
		{"garbage", []byte("not json at all \x00\xff")},
		{"empty", []byte{}},
		{"wrong-key-echo", nil}, // filled below from a different key's entry
	}
	for _, tc := range corruptions {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			s, err := OpenStore(dir)
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Put(key, testValue{Name: "good"}); err != nil {
				t.Fatal(err)
			}
			path := entryPath(dir, key)
			content := tc.content
			switch tc.name {
			case "truncated":
				full, err := os.ReadFile(path)
				if err != nil {
					t.Fatal(err)
				}
				content = full[:len(full)/2]
			case "wrong-key-echo":
				// A valid entry stored under a different key, copied onto
				// this key's path — the echo check must reject it.
				if err := s.Put([]byte("other-key"), testValue{Name: "evil"}); err != nil {
					t.Fatal(err)
				}
				var err error
				content, err = os.ReadFile(entryPath(dir, []byte("other-key")))
				if err != nil {
					t.Fatal(err)
				}
			}
			if err := os.WriteFile(path, content, 0o644); err != nil {
				t.Fatal(err)
			}
			var out testValue
			if s.Get(key, &out) {
				t.Fatalf("Get hit on a %s entry (got %+v)", tc.name, out)
			}
			if st := s.Stats(); st.Stale != 1 {
				t.Fatalf("stats = %+v, want exactly 1 stale", st)
			}
			// Recompute-and-repair: a fresh Put over the bad entry serves
			// hits again.
			if err := s.Put(key, testValue{Name: "repaired"}); err != nil {
				t.Fatal(err)
			}
			if !s.Get(key, &out) || out.Name != "repaired" {
				t.Fatalf("repair failed: hit=%v out=%+v", s.Get(key, &out), out)
			}
		})
	}
}

func TestStoreDistinctKeysDistinctEntries(t *testing.T) {
	s, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put([]byte("a"), 1); err != nil {
		t.Fatal(err)
	}
	if err := s.Put([]byte("b"), 2); err != nil {
		t.Fatal(err)
	}
	var v int
	if !s.Get([]byte("a"), &v) || v != 1 {
		t.Fatalf("a = %d, want 1", v)
	}
	if !s.Get([]byte("b"), &v) || v != 2 {
		t.Fatalf("b = %d, want 2", v)
	}
}

func TestOpenStoreRejectsEmptyDir(t *testing.T) {
	if _, err := OpenStore(""); err == nil {
		t.Fatal("OpenStore(\"\") succeeded, want error")
	}
}
