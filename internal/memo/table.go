// Package memo provides the suite's memoization layers: an in-memory
// single-flight Table shared across the experiments of one run, and a
// persistent content-addressed Store that carries results across runs.
// Both are pure caches — the functions they memoize are deterministic
// functions of their keys, so serving a memoized value can never change
// a result, only how fast it arrives.
package memo

import (
	"sync"
	"sync/atomic"
)

// entry is one memoized value. The Once gives single-flight semantics:
// concurrent requests for the same key compute it exactly once and
// everyone else waits for the value.
type entry[V any] struct {
	once sync.Once
	v    V
}

// Table memoizes a pure function of a comparable key across one suite
// run. It generalizes the §6 sweep-point memo (memmodel.SweepCache now
// rides on it): any deterministic computation keyed by a flat comparable
// struct can share values through one. A Table is safe for concurrent
// use.
type Table[K comparable, V any] struct {
	mu      sync.Mutex
	entries map[K]*entry[V]
	hits    atomic.Uint64
	misses  atomic.Uint64
}

// NewTable returns an empty memo table.
func NewTable[K comparable, V any]() *Table[K, V] {
	return &Table[K, V]{entries: make(map[K]*entry[V])}
}

// Do returns the memoized value for key, invoking compute on first
// request and serving the stored value afterwards. Concurrent first
// requests compute once; the rest block until the value is ready.
func (t *Table[K, V]) Do(key K, compute func() V) V {
	t.mu.Lock()
	e, ok := t.entries[key]
	if !ok {
		e = &entry[V]{}
		t.entries[key] = e
	}
	t.mu.Unlock()
	computed := false
	e.once.Do(func() {
		e.v = compute()
		computed = true
	})
	if computed {
		t.misses.Add(1)
	} else {
		t.hits.Add(1)
	}
	return e.v
}

// TableStats reports memo effectiveness.
type TableStats struct {
	// Hits counts requests served without computing.
	Hits uint64
	// Misses counts values computed (equals the number of unique keys).
	Misses uint64
}

// Stats returns a snapshot of the hit/miss counters.
func (t *Table[K, V]) Stats() TableStats {
	return TableStats{Hits: t.hits.Load(), Misses: t.misses.Load()}
}
