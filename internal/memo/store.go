package memo

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
)

// Store is a persistent content-addressed memo: values live on disk under
// the SHA-256 of their canonical key material, so an unchanged
// computation re-run from a fresh process finds its result instead of
// re-simulating. The caller owns the key discipline — the key bytes must
// encode everything the value depends on (schema version, configuration,
// seeds, fault plans); the store only promises that a returned value was
// stored under byte-identical key material.
//
// Every entry file echoes its full key, so a hash collision, a truncated
// write, or stray garbage in the directory can never surface as a wrong
// value: any mismatch is counted as stale and reported as a miss, and the
// caller recomputes. A Store is safe for concurrent use; concurrent Puts
// of the same key are idempotent (last atomic rename wins, all writes
// carry the same value).
type Store struct {
	dir    string
	hits   atomic.Uint64
	misses atomic.Uint64
	stale  atomic.Uint64
	puts   atomic.Uint64
}

// storeEntry is the on-disk layout: the base64 key echo and the value,
// as one JSON object.
type storeEntry struct {
	// Key is the full canonical key material (JSON base64-encodes it),
	// verified on every read.
	Key []byte `json:"key"`
	// Value is the memoized value's JSON.
	Value json.RawMessage `json:"value"`
}

// OpenStore opens (creating if needed) a persistent store rooted at dir.
func OpenStore(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("memo: store directory must be non-empty")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("memo: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// path maps key material to its entry file: <dir>/<2 hex>/<64 hex>.json,
// the leading byte fanning entries out across 256 subdirectories.
func (s *Store) path(key []byte) string {
	sum := sha256.Sum256(key)
	h := hex.EncodeToString(sum[:])
	return filepath.Join(s.dir, h[:2], h[2:]+".json")
}

// Get looks the key up and, on a hit, unmarshals the stored value into
// value (a pointer). It reports whether the value was filled. An absent
// entry is a miss; an unreadable, corrupt, or key-mismatched entry is
// counted stale as well as missed — the caller recomputes either way and
// the next Put repairs the entry.
func (s *Store) Get(key []byte, value any) bool {
	data, err := os.ReadFile(s.path(key))
	if err != nil {
		s.misses.Add(1)
		return false
	}
	var e storeEntry
	if err := json.Unmarshal(data, &e); err != nil || !bytes.Equal(e.Key, key) ||
		json.Unmarshal(e.Value, value) != nil {
		s.stale.Add(1)
		s.misses.Add(1)
		return false
	}
	s.hits.Add(1)
	return true
}

// Put stores value under the key, atomically: the entry is written to a
// temporary file in the same directory and renamed into place, so a
// reader never observes a half-written entry and a crash leaves at worst
// a stray temp file (ignored by Get, cleaned by the next Put's rename
// pattern being per-process unique).
func (s *Store) Put(key []byte, value any) error {
	vj, err := json.Marshal(value)
	if err != nil {
		return fmt.Errorf("memo: marshal value: %w", err)
	}
	data, err := json.Marshal(storeEntry{Key: key, Value: vj})
	if err != nil {
		return fmt.Errorf("memo: marshal entry: %w", err)
	}
	path := s.path(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("memo: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".memo-*")
	if err != nil {
		return fmt.Errorf("memo: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("memo: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("memo: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("memo: %w", err)
	}
	s.puts.Add(1)
	return nil
}

// StoreStats reports the store's effectiveness counters.
type StoreStats struct {
	// Hits counts keys served from disk.
	Hits uint64
	// Misses counts keys that had to be computed (including stale ones).
	Misses uint64
	// Stale counts entries rejected as corrupt, truncated, or
	// key-mismatched; each is also a miss.
	Stale uint64
	// Puts counts entries written.
	Puts uint64
}

// Stats returns a snapshot of the counters.
func (s *Store) Stats() StoreStats {
	return StoreStats{
		Hits:   s.hits.Load(),
		Misses: s.misses.Load(),
		Stale:  s.stale.Load(),
		Puts:   s.puts.Load(),
	}
}
