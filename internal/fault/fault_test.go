package fault

import (
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/sim"
)

func TestValidateRejectsOutOfRange(t *testing.T) {
	cases := []struct {
		name string
		plan Plan
		want string
	}{
		{"negative prob", Plan{Disk: DiskFaults{LatencySpikeProb: -0.1}}, "disk.latency_spike_prob"},
		{"prob above one", Plan{Cache: CacheFaults{PageStealProb: 1.5}}, "cache.page_steal_prob"},
		{"udp loss of one hangs hard mounts", Plan{Net: NetFaults{UDPLossProb: 1}}, "udp_loss_prob"},
		{"tcp loss of one never drains", Plan{Net: NetFaults{TCPSegLossProb: 1}}, "tcp_seg_loss_prob"},
		{"negative spike", Plan{Disk: DiskFaults{LatencySpikeMs: -3}}, "non-negative"},
		{"backoff below one", Plan{Net: NetFaults{BackoffFactor: 0.5}}, "backoff_factor"},
		{"steal fraction of one empties the cache", Plan{Cache: CacheFaults{StealFraction: 1}}, "steal_fraction"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.plan.Validate()
			if err == nil {
				t.Fatalf("Validate(%+v) passed, want error about %s", tc.plan, tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %s", err, tc.want)
			}
		})
	}
	zero := Plan{}
	if err := zero.Validate(); err != nil {
		t.Errorf("zero plan must validate: %v", err)
	}
	if zero.Active() {
		t.Error("zero plan must be inert")
	}
}

func TestLoadRejectsUnknownFields(t *testing.T) {
	if _, err := Load([]byte(`{"net": {"udp_loss_probe": 0.1}}`)); err == nil {
		t.Fatal("a typo in a plan field must not silently disable the injector")
	}
	if _, err := Load([]byte(`{"net": {"udp_loss_prob": 0.1}`)); err == nil {
		t.Fatal("truncated JSON must not load")
	}
	p, err := Load([]byte(`{"name": "x", "net": {"udp_loss_prob": 0.1}}`))
	if err != nil {
		t.Fatal(err)
	}
	if !p.Active() || p.Net.UDPLossProb != 0.1 {
		t.Fatalf("loaded plan %+v", p)
	}
}

func TestMarshalLoadRoundTrip(t *testing.T) {
	p := &Plan{
		Name:  "rt",
		Disk:  DiskFaults{LatencySpikeProb: 0.25, LatencySpikeMs: 10, MaxRetries: 3},
		Net:   NetFaults{UDPLossProb: 0.05, RTOMs: 50, BackoffFactor: 2, MaxBackoffMs: 400},
		Cache: CacheFaults{PageStealProb: 0.01, StealFraction: 0.5, MinCapacityMB: 2},
	}
	data, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	q, err := Load(data)
	if err != nil {
		t.Fatal(err)
	}
	if *q != *p {
		t.Fatalf("round trip changed the plan:\n%+v\n%+v", p, q)
	}
}

// TestNilInjectorsAreInert is the byte-identity guarantee for unfaulted
// runs: every draw on a nil injector returns the no-fault answer and,
// critically, consumes no RNG state.
func TestNilInjectorsAreInert(t *testing.T) {
	var d *DiskInjector
	var n *NetInjector
	var c *CacheInjector
	if d.AccessExtra(10, 20, 30) != 0 {
		t.Error("nil DiskInjector injected time")
	}
	if n.DropUDP() || n.DupUDP() || n.ReorderUDP() || n.DropSegment() || n.DropRPC() {
		t.Error("nil NetInjector dropped something")
	}
	if n.RTOWait(3) != 0 || n.AckDelay() != 0 {
		t.Error("nil NetInjector charged time")
	}
	if _, ok := c.StealTarget(1 << 20); ok {
		t.Error("nil CacheInjector stole pages")
	}
	inj := New(nil, nil)
	if inj.Active() {
		t.Error("New(nil) built live injectors")
	}
	inj = New(&Plan{}, sim.NewRNG(1))
	if inj.Disk != nil || inj.Net != nil || inj.Cache != nil {
		t.Error("inert plan built live injectors")
	}
}

// TestInjectorDeterminism: the same plan and seed replay the identical
// fault sequence; subsystem streams are independent of one another.
func TestInjectorDeterminism(t *testing.T) {
	plan := &Plan{
		Disk: DiskFaults{LatencySpikeProb: 0.3, TransientErrorProb: 0.2, SlowSectorProb: 0.1},
		Net:  NetFaults{UDPLossProb: 0.2, UDPDupProb: 0.1, TCPSegLossProb: 0.1, AckDelayUs: 100},
	}
	drive := func(inj Injectors) (uint64, sim.Duration) {
		var events uint64
		var extra sim.Duration
		for i := 0; i < 500; i++ {
			extra += inj.Disk.AccessExtra(sim.Duration(11*sim.Millisecond), sim.Duration(10*sim.Millisecond), sim.Duration(500*sim.Microsecond))
			if inj.Net.DropUDP() {
				events++
			}
			if inj.Net.DupUDP() {
				events++
			}
			if inj.Net.DropSegment() {
				events++
				extra += inj.Net.RTOWait(int(events % 4))
			}
		}
		return events, extra
	}
	a := New(plan, sim.NewRNG(42))
	b := New(plan, sim.NewRNG(42))
	ea, xa := drive(a)
	eb, xb := drive(b)
	if ea != eb || xa != xb {
		t.Fatalf("same (plan, seed) diverged: %d/%v vs %d/%v", ea, xa, eb, xb)
	}
	if ea == 0 || xa == 0 {
		t.Fatal("no faults fired at these probabilities")
	}
	if a.Disk.Spikes != b.Disk.Spikes || a.Net.UDPLost != b.Net.UDPLost {
		t.Error("counters diverged between identical runs")
	}
}

func TestRTOWaitBacksOffAndCaps(t *testing.T) {
	inj := New(&Plan{Net: NetFaults{UDPLossProb: 0.5, RTOMs: 100, BackoffFactor: 2, MaxBackoffMs: 350}}, sim.NewRNG(1))
	w0 := inj.Net.RTOWait(0)
	w1 := inj.Net.RTOWait(1)
	w2 := inj.Net.RTOWait(2)
	w9 := inj.Net.RTOWait(9)
	if w0 != sim.Duration(100*sim.Millisecond) || w1 != sim.Duration(200*sim.Millisecond) {
		t.Errorf("backoff start %v, %v", w0, w1)
	}
	if w2 != sim.Duration(350*sim.Millisecond) || w9 != w2 {
		t.Errorf("cap not applied: %v, %v", w2, w9)
	}
	if inj.Net.RTOWaitTime != w0+w1+w2+w9 {
		t.Errorf("RTOWaitTime = %v", inj.Net.RTOWaitTime)
	}
}

func TestStealTargetFloorsAndCounts(t *testing.T) {
	inj := New(&Plan{Cache: CacheFaults{PageStealProb: 1 - 1e-12, StealFraction: 0.5, MinCapacityMB: 4}}, sim.NewRNG(3))
	target, ok := inj.Cache.StealTarget(16 << 20)
	if !ok || target != 8<<20 {
		t.Fatalf("StealTarget(16MB) = %d, %v", target, ok)
	}
	// Already at the floor: nothing left to steal.
	if _, ok := inj.Cache.StealTarget(4 << 20); ok {
		t.Error("stole below the configured floor")
	}
	if inj.Cache.Steals != 1 || inj.Cache.StolenBytes != 8<<20 {
		t.Errorf("counters = %d steals, %d bytes", inj.Cache.Steals, inj.Cache.StolenBytes)
	}
}

func TestFoldMetricsOnlyLiveInjectors(t *testing.T) {
	inj := New(&Plan{Disk: DiskFaults{LatencySpikeProb: 0.5}}, sim.NewRNG(7))
	for i := 0; i < 50; i++ {
		inj.Disk.AccessExtra(1000, 1000, 100)
	}
	reg := obs.NewRegistry()
	inj.FoldMetrics(reg, "fault.")
	snap := reg.Snapshot()
	if v, ok := snap.Get("fault.disk.latency_spikes"); !ok || v == 0 {
		t.Errorf("fault.disk.latency_spikes = %v, %v", v, ok)
	}
	if _, ok := snap.Get("fault.net.udp_lost"); ok {
		t.Error("inactive net injector folded metrics")
	}
	// The all-nil bundle folds nothing at all.
	empty := obs.NewRegistry()
	Injectors{}.FoldMetrics(empty, "fault.")
	if s := empty.Snapshot(); len(s.Counters) != 0 {
		t.Errorf("nil injectors folded %v", s.Counters)
	}
}
