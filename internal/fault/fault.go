// Package fault is the deterministic fault-injection engine: a seedable,
// JSON-serializable Plan describing per-subsystem perturbations, and the
// injector objects the models consult while they run. Every fault arrival
// is drawn from a sim.RNG stream forked per subsystem, so a (plan, seed)
// pair reproduces the identical fault sequence at any worker count — a
// faulted run is as bit-deterministic as an unfaulted one.
//
// A nil injector is inert: every draw method on a nil receiver returns
// the no-fault answer without touching the RNG, so un-faulted runs are
// byte-identical to builds that predate this package.
package fault

import (
	"bytes"
	"encoding/json"
	"fmt"

	"repro/internal/obs"
	"repro/internal/sim"
)

// Plan is a complete fault scenario. Plans are plain JSON so they can be
// checked in, diffed and replayed; see examples/lossy-nfs.json.
type Plan struct {
	// Name labels the plan in output.
	Name string `json:"name,omitempty"`
	// Disk perturbs the disk mechanics model.
	Disk DiskFaults `json:"disk,omitempty"`
	// Net perturbs UDP datagrams, the TCP sliding window, and NFS RPCs.
	Net NetFaults `json:"net,omitempty"`
	// Cache applies buffer-cache page-steal pressure.
	Cache CacheFaults `json:"cache,omitempty"`
}

// DiskFaults perturb the seek/rotate/transfer mechanics of disk.Access.
type DiskFaults struct {
	// LatencySpikeProb is the per-access probability of a latency spike
	// (thermal recalibration, bus contention) of LatencySpikeMs.
	LatencySpikeProb float64 `json:"latency_spike_prob,omitempty"`
	// LatencySpikeMs is the spike magnitude in milliseconds (default 30).
	LatencySpikeMs float64 `json:"latency_spike_ms,omitempty"`
	// TransientErrorProb is the per-access probability that the command
	// fails and is retried; each retry costs a full revolution plus the
	// controller overhead. Retries redraw, so bursts are geometric.
	TransientErrorProb float64 `json:"transient_error_prob,omitempty"`
	// MaxRetries bounds consecutive transient-error retries of one access
	// (default 8).
	MaxRetries int `json:"max_retries,omitempty"`
	// SlowSectorProb is the per-access probability the target sector was
	// remapped to the spare area: an extra average seek and a full
	// revolution, charged through the same mechanics as a normal access.
	SlowSectorProb float64 `json:"slow_sector_prob,omitempty"`
}

// NetFaults perturb the network models: datagram fates for UDP, segment
// loss and delayed ACKs for TCP, and loss with retry/timeout/backoff for
// NFS RPCs over UDP.
type NetFaults struct {
	// UDPLossProb is the per-datagram (and per-NFS-RPC round trip) loss
	// probability. Must be < 1: NFS mounts are hard mounts and retry
	// until the RPC gets through.
	UDPLossProb float64 `json:"udp_loss_prob,omitempty"`
	// UDPDupProb is the per-datagram duplication probability (the
	// receiver processes the copy too).
	UDPDupProb float64 `json:"udp_dup_prob,omitempty"`
	// UDPReorderProb is the per-datagram reordering probability. UDP has
	// no resequencing, so reorders are counted, not charged.
	UDPReorderProb float64 `json:"udp_reorder_prob,omitempty"`
	// TCPSegLossProb is the per-segment loss probability inside the TCP
	// sliding-window walk; a lost segment costs its transmission, a
	// retransmit timeout, and the retransmission.
	TCPSegLossProb float64 `json:"tcp_seg_loss_prob,omitempty"`
	// AckDelayUs delays every TCP ack cycle by this many microseconds
	// (delayed-ACK interaction). A one-packet window pays it per segment;
	// a 16-packet window amortizes it across the burst.
	AckDelayUs float64 `json:"ack_delay_us,omitempty"`
	// RTOMs is the initial retransmit timeout in milliseconds
	// (default 100).
	RTOMs float64 `json:"rto_ms,omitempty"`
	// BackoffFactor multiplies the timeout per consecutive retransmit of
	// the same request (default 2, classic exponential backoff).
	BackoffFactor float64 `json:"backoff_factor,omitempty"`
	// MaxBackoffMs caps the backed-off timeout (default 3000).
	MaxBackoffMs float64 `json:"max_backoff_ms,omitempty"`
}

// CacheFaults shrink the dynamically sized buffer cache mid-run: the VM
// system stealing pages back under memory pressure.
type CacheFaults struct {
	// PageStealProb is the per-file-operation probability of a steal.
	PageStealProb float64 `json:"page_steal_prob,omitempty"`
	// StealFraction is the fraction of current capacity taken per steal
	// (default 0.25).
	StealFraction float64 `json:"steal_fraction,omitempty"`
	// MinCapacityMB floors the shrunken cache (default 1).
	MinCapacityMB int `json:"min_capacity_mb,omitempty"`
}

// probability validates one probability field.
func probability(name string, v float64, allowOne bool) error {
	if v < 0 || v > 1 || (!allowOne && v == 1) {
		lim := "[0,1]"
		if !allowOne {
			lim = "[0,1)"
		}
		return fmt.Errorf("fault: %s = %v outside %s", name, v, lim)
	}
	return nil
}

// Validate checks every field is in range. A zero Plan is valid (and
// inert).
func (p *Plan) Validate() error {
	checks := []error{
		probability("disk.latency_spike_prob", p.Disk.LatencySpikeProb, true),
		probability("disk.transient_error_prob", p.Disk.TransientErrorProb, true),
		probability("disk.slow_sector_prob", p.Disk.SlowSectorProb, true),
		probability("net.udp_loss_prob", p.Net.UDPLossProb, false),
		probability("net.udp_dup_prob", p.Net.UDPDupProb, true),
		probability("net.udp_reorder_prob", p.Net.UDPReorderProb, true),
		probability("net.tcp_seg_loss_prob", p.Net.TCPSegLossProb, false),
		probability("cache.page_steal_prob", p.Cache.PageStealProb, true),
	}
	for _, err := range checks {
		if err != nil {
			return err
		}
	}
	if p.Disk.LatencySpikeMs < 0 || p.Disk.MaxRetries < 0 {
		return fmt.Errorf("fault: disk spike/retry fields must be non-negative")
	}
	if p.Net.AckDelayUs < 0 || p.Net.RTOMs < 0 || p.Net.MaxBackoffMs < 0 {
		return fmt.Errorf("fault: net delay/timeout fields must be non-negative")
	}
	if p.Net.BackoffFactor != 0 && p.Net.BackoffFactor < 1 {
		return fmt.Errorf("fault: net.backoff_factor = %v must be >= 1", p.Net.BackoffFactor)
	}
	if p.Cache.StealFraction < 0 || p.Cache.StealFraction >= 1 {
		return fmt.Errorf("fault: cache.steal_fraction = %v outside [0,1)", p.Cache.StealFraction)
	}
	if p.Cache.MinCapacityMB < 0 {
		return fmt.Errorf("fault: cache.min_capacity_mb must be non-negative")
	}
	return nil
}

// Active reports whether the plan injects anything at all.
func (p *Plan) Active() bool {
	if p == nil {
		return false
	}
	return p.Disk.active() || p.Net.active() || p.Cache.active()
}

func (d DiskFaults) active() bool {
	return d.LatencySpikeProb > 0 || d.TransientErrorProb > 0 || d.SlowSectorProb > 0
}

func (n NetFaults) active() bool {
	return n.UDPLossProb > 0 || n.UDPDupProb > 0 || n.UDPReorderProb > 0 ||
		n.TCPSegLossProb > 0 || n.AckDelayUs > 0
}

func (c CacheFaults) active() bool { return c.PageStealProb > 0 }

// Load parses and validates a plan from JSON. Unknown fields are errors,
// so a typo in a plan file cannot silently disable an injector.
func Load(data []byte) (*Plan, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	p := &Plan{}
	if err := dec.Decode(p); err != nil {
		return nil, fmt.Errorf("fault: bad plan: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// Marshal renders the plan as indented JSON.
func (p *Plan) Marshal() ([]byte, error) {
	return json.MarshalIndent(p, "", "  ")
}

// Injectors bundles one run's per-subsystem injectors. Inactive
// subsystems get nil members, which the models treat as "no faults".
type Injectors struct {
	Disk  *DiskInjector
	Net   *NetInjector
	Cache *CacheInjector
}

// New builds injectors for a plan, forking one independent RNG stream per
// subsystem so the draw sequence of one injector can never shift
// another's. A nil or inert plan yields all-nil injectors.
func New(plan *Plan, rng *sim.RNG) Injectors {
	var inj Injectors
	if plan == nil {
		return inj
	}
	if plan.Disk.active() {
		inj.Disk = &DiskInjector{cfg: plan.Disk, rng: rng.Fork(1)}
	}
	if plan.Net.active() {
		inj.Net = &NetInjector{cfg: plan.Net, rng: rng.Fork(2)}
	}
	if plan.Cache.active() {
		inj.Cache = &CacheInjector{cfg: plan.Cache, rng: rng.Fork(3)}
	}
	return inj
}

// Active reports whether any injector is live.
func (i Injectors) Active() bool { return i.Disk != nil || i.Net != nil || i.Cache != nil }

// FoldMetrics adds every live injector's counters to a registry under the
// given prefix ("fault." conventionally). Callers fold only on faulted
// runs, so un-faulted metric snapshots carry no fault keys.
func (i Injectors) FoldMetrics(reg *obs.Registry, prefix string) {
	if reg == nil {
		return
	}
	if i.Disk != nil {
		i.Disk.FoldMetrics(reg, prefix+"disk.")
	}
	if i.Net != nil {
		i.Net.FoldMetrics(reg, prefix+"net.")
	}
	if i.Cache != nil {
		i.Cache.FoldMetrics(reg, prefix+"cache.")
	}
}

// DiskInjector perturbs disk accesses. All methods are nil-receiver safe.
type DiskInjector struct {
	cfg DiskFaults
	rng *sim.RNG

	// Spikes, Remaps and Retries count injected events; ExtraTime is the
	// total time they added.
	Spikes, Remaps, Retries uint64
	ExtraTime               sim.Duration
}

func (j *DiskInjector) maxRetries() int {
	if j.cfg.MaxRetries > 0 {
		return j.cfg.MaxRetries
	}
	return 8
}

func (j *DiskInjector) spike() sim.Duration {
	ms := j.cfg.LatencySpikeMs
	if ms == 0 {
		ms = 30
	}
	return sim.Duration(ms * float64(sim.Millisecond))
}

// AccessExtra draws this access's faults and returns the extra time to
// charge, given the drive's rotation period, average seek and controller
// overhead. The extra time flows through the caller's normal charging
// path, so phase ledgers stay exact under injection.
func (j *DiskInjector) AccessExtra(rotation, avgSeek, controller sim.Duration) sim.Duration {
	if j == nil {
		return 0
	}
	var extra sim.Duration
	if j.cfg.LatencySpikeProb > 0 && j.rng.Float64() < j.cfg.LatencySpikeProb {
		j.Spikes++
		extra += j.spike()
	}
	if j.cfg.SlowSectorProb > 0 && j.rng.Float64() < j.cfg.SlowSectorProb {
		// Remapped sector: the arm excursion to the spare area and a full
		// revolution to pick the data up.
		j.Remaps++
		extra += avgSeek + rotation
	}
	if j.cfg.TransientErrorProb > 0 {
		for r := 0; r < j.maxRetries(); r++ {
			if j.rng.Float64() >= j.cfg.TransientErrorProb {
				break
			}
			// The command failed: wait a revolution and reissue.
			j.Retries++
			extra += rotation + controller
		}
	}
	j.ExtraTime += extra
	return extra
}

// FoldMetrics adds the disk fault counters under the given prefix.
func (j *DiskInjector) FoldMetrics(reg *obs.Registry, prefix string) {
	reg.Counter(prefix + "latency_spikes").Add(float64(j.Spikes))
	reg.Counter(prefix + "sector_remaps").Add(float64(j.Remaps))
	reg.Counter(prefix + "transient_retries").Add(float64(j.Retries))
	reg.Counter(prefix + "extra_us").Add(j.ExtraTime.Microseconds())
}

// NetInjector perturbs the network paths. All methods are nil-receiver
// safe.
type NetInjector struct {
	cfg NetFaults
	rng *sim.RNG

	// UDP datagram fates.
	UDPLost, UDPDuplicated, UDPReordered uint64
	// TCP segment losses and the accumulated fault time (RTO waits plus
	// delayed-ack time); SegTime+AckTime+SwitchTime+FaultTime equals a
	// faulted transfer's elapsed time exactly.
	TCPRetransmits uint64
	// NFS RPC round trips lost and retransmitted.
	RPCRetransmits uint64
	// RTOWaitTime and AckDelayTime attribute the injected waiting.
	RTOWaitTime, AckDelayTime sim.Duration
}

// DropUDP draws one datagram-loss decision.
func (j *NetInjector) DropUDP() bool {
	if j == nil || j.cfg.UDPLossProb <= 0 {
		return false
	}
	if j.rng.Float64() < j.cfg.UDPLossProb {
		j.UDPLost++
		return true
	}
	return false
}

// DupUDP draws one datagram-duplication decision.
func (j *NetInjector) DupUDP() bool {
	if j == nil || j.cfg.UDPDupProb <= 0 {
		return false
	}
	if j.rng.Float64() < j.cfg.UDPDupProb {
		j.UDPDuplicated++
		return true
	}
	return false
}

// ReorderUDP draws one datagram-reordering decision.
func (j *NetInjector) ReorderUDP() bool {
	if j == nil || j.cfg.UDPReorderProb <= 0 {
		return false
	}
	if j.rng.Float64() < j.cfg.UDPReorderProb {
		j.UDPReordered++
		return true
	}
	return false
}

// DropSegment draws one TCP segment-loss decision.
func (j *NetInjector) DropSegment() bool {
	if j == nil || j.cfg.TCPSegLossProb <= 0 {
		return false
	}
	if j.rng.Float64() < j.cfg.TCPSegLossProb {
		j.TCPRetransmits++
		return true
	}
	return false
}

// DropRPC draws one NFS round-trip-loss decision (request or reply lost
// on the wire; the client cannot tell which, it just times out).
func (j *NetInjector) DropRPC() bool {
	if j == nil || j.cfg.UDPLossProb <= 0 {
		return false
	}
	if j.rng.Float64() < j.cfg.UDPLossProb {
		j.RPCRetransmits++
		return true
	}
	return false
}

// RTOWait returns the retransmit timeout for the attempt'th consecutive
// loss of one request, with exponential backoff capped at MaxBackoffMs,
// and accounts the wait.
func (j *NetInjector) RTOWait(attempt int) sim.Duration {
	if j == nil {
		return 0
	}
	rto := j.cfg.RTOMs
	if rto == 0 {
		rto = 100
	}
	factor := j.cfg.BackoffFactor
	if factor == 0 {
		factor = 2
	}
	cap := j.cfg.MaxBackoffMs
	if cap == 0 {
		cap = 3000
	}
	for i := 0; i < attempt && rto < cap; i++ {
		rto *= factor
	}
	if rto > cap {
		rto = cap
	}
	d := sim.Duration(rto * float64(sim.Millisecond))
	j.RTOWaitTime += d
	return d
}

// AckDelay returns the delayed-ack time to add to one TCP ack cycle, and
// accounts it.
func (j *NetInjector) AckDelay() sim.Duration {
	if j == nil || j.cfg.AckDelayUs <= 0 {
		return 0
	}
	d := sim.Duration(j.cfg.AckDelayUs * float64(sim.Microsecond))
	j.AckDelayTime += d
	return d
}

// FoldMetrics adds the network fault counters under the given prefix.
func (j *NetInjector) FoldMetrics(reg *obs.Registry, prefix string) {
	reg.Counter(prefix + "udp_lost").Add(float64(j.UDPLost))
	reg.Counter(prefix + "udp_duplicated").Add(float64(j.UDPDuplicated))
	reg.Counter(prefix + "udp_reordered").Add(float64(j.UDPReordered))
	reg.Counter(prefix + "tcp_retransmits").Add(float64(j.TCPRetransmits))
	reg.Counter(prefix + "rpc_retransmits").Add(float64(j.RPCRetransmits))
	reg.Counter(prefix + "rto_wait_us").Add(j.RTOWaitTime.Microseconds())
	reg.Counter(prefix + "ack_delay_us").Add(j.AckDelayTime.Microseconds())
}

// CacheInjector applies page-steal pressure to a buffer cache. All
// methods are nil-receiver safe.
type CacheInjector struct {
	cfg CacheFaults
	rng *sim.RNG

	// Steals counts capacity shrinks; StolenBytes their total size.
	Steals      uint64
	StolenBytes int64
}

// StealTarget draws one page-steal decision for a cache currently sized
// current bytes. When a steal fires it returns the new (smaller)
// capacity and true.
func (j *CacheInjector) StealTarget(current int64) (int64, bool) {
	if j == nil || j.cfg.PageStealProb <= 0 {
		return 0, false
	}
	if j.rng.Float64() >= j.cfg.PageStealProb {
		return 0, false
	}
	frac := j.cfg.StealFraction
	if frac == 0 {
		frac = 0.25
	}
	min := int64(j.cfg.MinCapacityMB) << 20
	if min == 0 {
		min = 1 << 20
	}
	target := current - int64(float64(current)*frac)
	if target < min {
		target = min
	}
	if target >= current {
		return 0, false
	}
	j.Steals++
	j.StolenBytes += current - target
	return target, true
}

// FoldMetrics adds the cache fault counters under the given prefix.
func (j *CacheInjector) FoldMetrics(reg *obs.Registry, prefix string) {
	reg.Counter(prefix + "page_steals").Add(float64(j.Steals))
	reg.Counter(prefix + "stolen_bytes").Add(float64(j.StolenBytes))
}
