package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestEmptySample(t *testing.T) {
	var s Sample
	if s.N() != 0 || s.Mean() != 0 || s.StdDev() != 0 || s.RelStdDev() != 0 ||
		s.Min() != 0 || s.Max() != 0 || s.Median() != 0 {
		t.Fatal("empty sample should report zeros everywhere")
	}
}

func TestSingleObservation(t *testing.T) {
	var s Sample
	s.Add(7)
	if s.Mean() != 7 || s.StdDev() != 0 || s.Min() != 7 || s.Max() != 7 || s.Median() != 7 {
		t.Fatalf("single-observation stats wrong: %v", s.String())
	}
}

func TestMeanAndStdDev(t *testing.T) {
	var s Sample
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if !approx(s.Mean(), 5, 1e-12) {
		t.Errorf("Mean = %v, want 5", s.Mean())
	}
	// Sample std dev with n-1 = sqrt(32/7).
	want := math.Sqrt(32.0 / 7.0)
	if !approx(s.StdDev(), want, 1e-12) {
		t.Errorf("StdDev = %v, want %v", s.StdDev(), want)
	}
	if !approx(s.RelStdDev(), want/5, 1e-12) {
		t.Errorf("RelStdDev = %v, want %v", s.RelStdDev(), want/5)
	}
}

func TestMinMaxMedian(t *testing.T) {
	var s Sample
	for _, v := range []float64{9, 1, 5, 3, 7} {
		s.Add(v)
	}
	if s.Min() != 1 || s.Max() != 9 || s.Median() != 5 {
		t.Fatalf("min/max/median = %v/%v/%v, want 1/9/5", s.Min(), s.Max(), s.Median())
	}
	s.Add(11)
	if s.Median() != 6 {
		t.Fatalf("even-count median = %v, want 6", s.Median())
	}
}

func TestValuesCopy(t *testing.T) {
	var s Sample
	s.Add(1)
	v := s.Values()
	v[0] = 99
	if s.Mean() != 1 {
		t.Fatal("Values() must return a copy")
	}
}

func TestNormalizeLowerIsBetter(t *testing.T) {
	// Paper Table 2: Linux 2.31, FreeBSD 2.62, Solaris 3.52 →
	// Norm 1.00, 0.88, 0.66.
	norm := Normalize([]float64{2.31, 2.62, 3.52}, LowerIsBetter)
	if !approx(norm[0], 1.00, 0.005) || !approx(norm[1], 0.88, 0.005) || !approx(norm[2], 0.66, 0.005) {
		t.Fatalf("Norm = %v, want [1.00 0.88 0.66]", norm)
	}
}

func TestNormalizeHigherIsBetter(t *testing.T) {
	// Paper Table 4: 119.36, 98.03, 65.38 → 1.00, 0.82, 0.55.
	norm := Normalize([]float64{119.36, 98.03, 65.38}, HigherIsBetter)
	if !approx(norm[0], 1.00, 0.005) || !approx(norm[1], 0.82, 0.005) || !approx(norm[2], 0.55, 0.005) {
		t.Fatalf("Norm = %v, want [1.00 0.82 0.55]", norm)
	}
}

func TestNormalizeHandlesZeros(t *testing.T) {
	norm := Normalize([]float64{0, 2, 4}, LowerIsBetter)
	if norm[0] != 0 || norm[1] != 1 || norm[2] != 0.5 {
		t.Fatalf("Norm with zero = %v", norm)
	}
	norm = Normalize([]float64{0, 0}, HigherIsBetter)
	if norm[0] != 0 || norm[1] != 0 {
		t.Fatalf("all-zero Norm = %v", norm)
	}
	if got := Normalize(nil, LowerIsBetter); len(got) != 0 {
		t.Fatalf("nil Norm = %v", got)
	}
}

func TestRatio(t *testing.T) {
	if Ratio(6, 3) != 2 {
		t.Fatal("Ratio(6,3) != 2")
	}
	if Ratio(1, 0) != 0 {
		t.Fatal("Ratio(_, 0) should be 0")
	}
}

// Property: the best entry always normalises to exactly 1, all others to
// (0, 1].
func TestNormalizeProperty(t *testing.T) {
	f := func(raw []uint32, higher bool) bool {
		values := make([]float64, len(raw))
		anyPositive := false
		for i, r := range raw {
			values[i] = float64(r%10000) / 10
			if values[i] > 0 {
				anyPositive = true
			}
		}
		dir := LowerIsBetter
		if higher {
			dir = HigherIsBetter
		}
		norm := Normalize(values, dir)
		if !anyPositive {
			for _, n := range norm {
				if n != 0 {
					return false
				}
			}
			return true
		}
		sawOne := false
		for i, n := range norm {
			if values[i] <= 0 {
				if n != 0 {
					return false
				}
				continue
			}
			if n <= 0 || n > 1+1e-12 {
				return false
			}
			if approx(n, 1, 1e-12) {
				sawOne = true
			}
		}
		return sawOne
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: mean is bounded by min and max; stddev is non-negative.
func TestMomentsProperty(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		var s Sample
		for _, r := range raw {
			s.Add(float64(r))
		}
		m := s.Mean()
		if m < s.Min()-1e-9 || m > s.Max()+1e-9 {
			return false
		}
		return s.StdDev() >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
