package stats

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"
)

func TestHistogramBucketMappingExactBelow32(t *testing.T) {
	for v := int64(0); v < 32; v++ {
		h := &Histogram{}
		h.Observe(v)
		for _, q := range []float64{0, 0.5, 1} {
			if got := h.Quantile(q); got != v {
				t.Fatalf("Quantile(%v) of single value %d = %d, want exact", q, v, got)
			}
		}
	}
}

func TestHistogramBucketBoundariesConsistent(t *testing.T) {
	// Every bucket's upper boundary must map back into the bucket, and the
	// next value must map to a later bucket.
	for i := 0; i < histBuckets; i++ {
		up := bucketUpper(i)
		if up < 0 {
			// Octaves past int64 range overflow; the mapping never produces
			// them for valid inputs.
			continue
		}
		if got := bucketOf(up); got != i {
			t.Fatalf("bucketOf(bucketUpper(%d)=%d) = %d", i, up, got)
		}
		if up < math.MaxInt64 {
			if got := bucketOf(up + 1); got <= i {
				t.Fatalf("bucketOf(%d) = %d, want > %d", up+1, got, i)
			}
		}
	}
}

func TestHistogramQuantileEdges(t *testing.T) {
	empty := &Histogram{}
	if empty.Quantile(0.5) != 0 || empty.N() != 0 || empty.Mean() != 0 {
		t.Fatal("empty histogram must report zeros")
	}

	single := &Histogram{}
	single.Observe(1_000_000)
	p50, p999 := single.Quantile(0.5), single.Quantile(0.999)
	if p50 != p999 {
		t.Fatalf("single-op histogram: p50 %d != p999 %d", p50, p999)
	}
	if rel := float64(p50-1_000_000) / 1e6; rel < 0 || rel > 1.0/32 {
		t.Fatalf("single-op quantile %d outside one bucket above 1e6", p50)
	}

	onebucket := &Histogram{}
	for i := 0; i < 1000; i++ {
		onebucket.Observe(1024) // exact power of two: all in one bucket
	}
	if onebucket.Quantile(0) != onebucket.Quantile(1) {
		t.Fatal("all-in-one-bucket histogram must report one boundary everywhere")
	}
	if onebucket.Sum() != 1024*1000 || onebucket.Max() != 1024 {
		t.Fatalf("sum/max wrong: %d/%d", onebucket.Sum(), onebucket.Max())
	}
}

func TestHistogramQuantileMonotone(t *testing.T) {
	h := &Histogram{}
	for v := int64(1); v < 1<<20; v = v*3 + 7 {
		h.Observe(v)
	}
	prev := int64(-1)
	for q := 0.0; q <= 1.0; q += 0.01 {
		cur := h.Quantile(q)
		if cur < prev {
			t.Fatalf("quantile not monotone at q=%v: %d < %d", q, cur, prev)
		}
		prev = cur
	}
}

func TestHistogramNegativeClamps(t *testing.T) {
	h := &Histogram{}
	h.Observe(-5)
	if h.N() != 1 || h.Sum() != 0 || h.Quantile(1) != 0 {
		t.Fatal("negative observation must clamp to zero")
	}
}

func TestHistogramMergeOrderInvariance(t *testing.T) {
	vals := []int64{0, 1, 31, 32, 33, 1000, 1024, 1 << 20, 7_777_777, 1 << 40}
	build := func(order []int) *Histogram {
		h := &Histogram{}
		for _, i := range order {
			h.Observe(vals[i])
		}
		return h
	}
	direct := build([]int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9})

	a := build([]int{9, 7, 5, 3, 1})
	b := build([]int{0, 2, 4, 6, 8})
	ab := &Histogram{}
	ab.Merge(a)
	ab.Merge(b)
	ba := &Histogram{}
	ba.Merge(b)
	ba.Merge(a)

	for _, m := range []*Histogram{ab, ba} {
		if *m != *direct {
			t.Fatal("merged histogram differs from directly observed histogram")
		}
	}
	jd, _ := json.Marshal(direct)
	jm, _ := json.Marshal(ab)
	if !bytes.Equal(jd, jm) {
		t.Fatalf("merge-order JSON mismatch:\n%s\n%s", jd, jm)
	}
}

func TestHistogramJSONRoundTrip(t *testing.T) {
	h := &Histogram{}
	for v := int64(1); v < 1<<30; v = v*5 + 3 {
		h.Observe(v)
	}
	data, err := json.Marshal(h)
	if err != nil {
		t.Fatal(err)
	}
	var back Histogram
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back != *h {
		t.Fatal("JSON round trip changed the histogram")
	}
	data2, _ := json.Marshal(&back)
	if !bytes.Equal(data, data2) {
		t.Fatal("re-marshal not byte-identical")
	}
}

func TestHistogramJSONRejectsBadBuckets(t *testing.T) {
	for _, bad := range []string{
		`{"n":1,"sum":1,"max":1,"buckets":[[-1,1]]}`,
		`{"n":1,"sum":1,"max":1,"buckets":[[999999,1]]}`,
		`{"n":1,"sum":1,"max":1,"buckets":[[3,-2]]}`,
	} {
		var h Histogram
		if err := json.Unmarshal([]byte(bad), &h); err == nil {
			t.Fatalf("accepted bad histogram JSON %s", bad)
		}
	}
}

func TestHistogramQuantilePanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Quantile(1.2) did not panic")
		}
	}()
	(&Histogram{}).Quantile(1.2)
}

// TestHistogramQuantileBracketsPinned pins the p50/p99/p999 brackets for
// two known distributions. The constants were computed from the bucket
// geometry once and hand-checked against the exact order statistics:
// every exact quantile must sit inside [QuantileLower, Quantile], and a
// geometry change that moves any boundary fails here first.
func TestHistogramQuantileBracketsPinned(t *testing.T) {
	uniform := func() *Histogram {
		h := &Histogram{}
		for v := int64(1); v <= 1000; v++ {
			h.Observe(v)
		}
		return h
	}
	powers := func() *Histogram {
		h := &Histogram{}
		v := int64(1)
		for i := 0; i < 40; i++ {
			h.Observe(v)
			v *= 2
		}
		return h
	}
	cases := []struct {
		name         string
		h            *Histogram
		q            float64
		exact        int64 // true nearest-rank quantile of the inputs
		lower, upper int64
	}{
		{"uniform-1..1000 p50", uniform(), 0.50, 500, 496, 503},
		{"uniform-1..1000 p99", uniform(), 0.99, 990, 976, 991},
		{"uniform-1..1000 p999", uniform(), 0.999, 1000, 992, 1007},
		{"powers-of-two p50", powers(), 0.50, 524288, 524288, 540671},
		{"powers-of-two p99", powers(), 0.99, 549755813888, 549755813888, 566935683071},
		{"powers-of-two p999", powers(), 0.999, 549755813888, 549755813888, 566935683071},
	}
	for _, tc := range cases {
		lo, hi := tc.h.QuantileLower(tc.q), tc.h.Quantile(tc.q)
		if lo != tc.lower || hi != tc.upper {
			t.Errorf("%s: bracket [%d, %d], want [%d, %d]", tc.name, lo, hi, tc.lower, tc.upper)
		}
		if tc.exact < lo || tc.exact > hi {
			t.Errorf("%s: exact quantile %d escapes bracket [%d, %d]", tc.name, tc.exact, lo, hi)
		}
		if w := float64(hi-lo) / float64(hi); hi >= histSubBuckets && w > 1.0/histSubBuckets {
			t.Errorf("%s: bracket width %.4f exceeds 1/%d of the value", tc.name, w, histSubBuckets)
		}
	}
}

func TestHistogramQuantileLowerEdges(t *testing.T) {
	empty := &Histogram{}
	if got := empty.QuantileLower(0.5); got != 0 {
		t.Fatalf("empty QuantileLower = %d, want 0", got)
	}
	// Exact buckets collapse the bracket to a point.
	h := &Histogram{}
	h.Observe(17)
	if lo, hi := h.QuantileLower(0.5), h.Quantile(0.5); lo != 17 || hi != 17 {
		t.Fatalf("exact-bucket bracket [%d, %d], want [17, 17]", lo, hi)
	}
	// QuantileLower shares Quantile's out-of-range panic.
	defer func() {
		if recover() == nil {
			t.Fatal("QuantileLower(1.5) did not panic")
		}
	}()
	h.QuantileLower(1.5)
}

func TestHistogramBucketsAccessor(t *testing.T) {
	h := &Histogram{}
	vals := []int64{0, 5, 5, 31, 32, 1000, 1 << 20, -3}
	for _, v := range vals {
		h.Observe(v)
	}
	bs := h.Buckets()
	var n uint64
	prev := int64(-1)
	for _, b := range bs {
		if b.Upper <= prev {
			t.Fatalf("buckets not ascending: %d after %d", b.Upper, prev)
		}
		prev = b.Upper
		if b.Upper != BucketUpperBound(b.Index) {
			t.Fatalf("bucket %d upper %d != BucketUpperBound %d", b.Index, b.Upper, BucketUpperBound(b.Index))
		}
		n += b.Count
	}
	if n != h.N() {
		t.Fatalf("bucket counts sum %d, want N %d", n, h.N())
	}
	for _, v := range vals {
		i := BucketIndex(v)
		if v < 0 {
			v = 0
		}
		if got := bucketOf(v); got != i {
			t.Fatalf("BucketIndex(%d) = %d, want %d", v, i, got)
		}
	}
}
