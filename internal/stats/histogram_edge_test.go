package stats

// Pins for the degenerate histogram inputs the SMP lock audit leans on:
// empty histograms at the quantile extremes, and merging an empty (or
// nil) histogram as a byte-identical no-op. These behaviors were already
// correct; the pins keep them that way.

import (
	"bytes"
	"testing"
)

func TestHistogramEmptyQuantileExtremes(t *testing.T) {
	empty := &Histogram{}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := empty.Quantile(q); got != 0 {
			t.Errorf("empty Quantile(%g) = %d, want 0", q, got)
		}
		if got := empty.QuantileLower(q); got != 0 {
			t.Errorf("empty QuantileLower(%g) = %d, want 0", q, got)
		}
	}
}

func TestHistogramQuantileExtremesPinned(t *testing.T) {
	h := &Histogram{}
	for _, v := range []int64{3, 64, 1000, 1_000_000} {
		h.Observe(v)
	}
	// q=0 brackets the minimum's bucket, q=1 the maximum's: the lower
	// bound never exceeds the smallest observation, the upper bound
	// never undercuts the largest.
	if lo := h.QuantileLower(0); lo > 3 {
		t.Errorf("QuantileLower(0) = %d, above the minimum observation 3", lo)
	}
	if hi := h.Quantile(1); hi < 1_000_000 {
		t.Errorf("Quantile(1) = %d, below the maximum observation 1e6", hi)
	}
	if h.Quantile(0) > h.Quantile(1) || h.QuantileLower(0) > h.QuantileLower(1) {
		t.Error("quantile extremes out of order")
	}
}

func TestHistogramMergeEmptyIsByteIdenticalNoOp(t *testing.T) {
	mk := func() *Histogram {
		h := &Histogram{}
		for _, v := range []int64{1, 50, 50, 4096, 123456} {
			h.Observe(v)
		}
		return h
	}
	want, err := mk().MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	h := mk()
	h.Merge(&Histogram{})
	got, err := h.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("Merge(empty) changed the histogram:\n got %s\nwant %s", got, want)
	}
	h.Merge(nil)
	got, err = h.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("Merge(nil) changed the histogram:\n got %s\nwant %s", got, want)
	}
	// And the symmetric case: merging into an empty histogram equals the
	// source.
	e := &Histogram{}
	e.Merge(mk())
	got, err = e.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("empty.Merge(h) != h:\n got %s\nwant %s", got, want)
	}
}
