package stats

import (
	"encoding/json"
	"math"
	"testing"
)

// TestSampleJSONRoundTripExact certifies the property the persistent
// result memo rests on: marshal/unmarshal reproduces every observation
// bit for bit (encoding/json prints float64s in shortest round-tripping
// form), so a memoized sample's Mean and StdDev match a fresh one's
// exactly.
func TestSampleJSONRoundTripExact(t *testing.T) {
	var s Sample
	// Awkward values: non-terminating binary fractions, subnormal-ish
	// magnitudes, extremes of the benchmark range.
	vals := []float64{0.1, 1.0 / 3.0, 123456.789012345, 5e-312, math.MaxFloat64 / 1e10, 0}
	for _, v := range vals {
		s.Add(v)
	}
	data, err := json.Marshal(&s)
	if err != nil {
		t.Fatal(err)
	}
	var back Sample
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.N() != s.N() {
		t.Fatalf("N = %d, want %d", back.N(), s.N())
	}
	for i, v := range back.Values() {
		if math.Float64bits(v) != math.Float64bits(vals[i]) {
			t.Errorf("value %d = %x, want %x", i, math.Float64bits(v), math.Float64bits(vals[i]))
		}
	}
	if math.Float64bits(back.Mean()) != math.Float64bits(s.Mean()) ||
		math.Float64bits(back.StdDev()) != math.Float64bits(s.StdDev()) {
		t.Fatal("summary statistics drifted across the round trip")
	}
}

func TestSampleJSONEmpty(t *testing.T) {
	var s Sample
	data, err := json.Marshal(&s)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "[]" {
		t.Fatalf("empty sample = %s, want []", data)
	}
	var back Sample
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.N() != 0 || back.Mean() != 0 {
		t.Fatalf("empty round trip: N=%d Mean=%v", back.N(), back.Mean())
	}
}
