package stats

import (
	"math"
	"testing"

	"repro/internal/sim"
)

func TestTCritical(t *testing.T) {
	if got := tCritical95(1); got != 12.706 {
		t.Errorf("t(1) = %v", got)
	}
	if got := tCritical95(19); got != 2.093 {
		t.Errorf("t(19) = %v (the twenty-run protocol's value)", got)
	}
	if got := tCritical95(500); got != 1.960 {
		t.Errorf("t(500) = %v, want normal limit", got)
	}
	if !math.IsNaN(tCritical95(0)) {
		t.Error("t(0) should be NaN")
	}
}

func TestConfidenceIntervalKnownValues(t *testing.T) {
	// n=4, values 1,2,3,4: mean 2.5, s = sqrt(5/3) ≈ 1.2910,
	// CI half-width = 3.182 * 1.2910 / 2 ≈ 2.054.
	var s Sample
	for _, v := range []float64{1, 2, 3, 4} {
		s.Add(v)
	}
	got := s.ConfidenceInterval95()
	want := 3.182 * math.Sqrt(5.0/3.0) / 2
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("CI = %v, want %v", got, want)
	}
	if !s.MeanWithin95(2.6) {
		t.Error("2.6 should be inside the interval")
	}
	if s.MeanWithin95(5.0) {
		t.Error("5.0 should be outside the interval")
	}
}

func TestConfidenceIntervalDegenerate(t *testing.T) {
	var s Sample
	if s.ConfidenceInterval95() != 0 {
		t.Error("empty sample should have zero CI")
	}
	s.Add(5)
	if s.ConfidenceInterval95() != 0 {
		t.Error("single observation should have zero CI")
	}
	if !s.MeanWithin95(5) {
		t.Error("the mean itself is always within")
	}
}

func TestConfidenceIntervalShrinksWithN(t *testing.T) {
	rng := sim.NewRNG(1)
	small, large := &Sample{}, &Sample{}
	for i := 0; i < 10; i++ {
		small.Add(100 * rng.Noise(0.05))
	}
	for i := 0; i < 1000; i++ {
		large.Add(100 * rng.Noise(0.05))
	}
	if large.ConfidenceInterval95() >= small.ConfidenceInterval95() {
		t.Errorf("CI should shrink with n: %v (n=10) vs %v (n=1000)",
			small.ConfidenceInterval95(), large.ConfidenceInterval95())
	}
}

func TestConfidenceCoverage(t *testing.T) {
	// ~95% of 20-run samples should cover the true mean.
	rng := sim.NewRNG(42)
	const trials = 2000
	covered := 0
	for i := 0; i < trials; i++ {
		var s Sample
		for j := 0; j < 20; j++ {
			s.Add(50 * rng.Noise(0.10))
		}
		if s.MeanWithin95(50) {
			covered++
		}
	}
	frac := float64(covered) / trials
	if frac < 0.92 || frac > 0.98 {
		t.Errorf("95%% CI covered the truth %.1f%% of the time", 100*frac)
	}
}
