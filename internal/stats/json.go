package stats

import "encoding/json"

// MarshalJSON encodes the sample as its observation array, in insertion
// order. encoding/json prints float64s in their shortest round-tripping
// form, so a marshal/unmarshal cycle reproduces the sample bit for bit —
// the property the persistent result memo depends on (a memoized
// experiment must render byte-identically to a fresh one).
func (s *Sample) MarshalJSON() ([]byte, error) {
	if s.values == nil {
		return []byte("[]"), nil
	}
	return json.Marshal(s.values)
}

// UnmarshalJSON restores a sample from its observation array.
func (s *Sample) UnmarshalJSON(data []byte) error {
	s.values = nil
	return json.Unmarshal(data, &s.values)
}
