package stats

import (
	"encoding/json"
	"fmt"
	"math/bits"
)

// Histogram is a fixed-boundary log-bucket histogram of non-negative
// int64 observations (latencies in virtual nanoseconds, in this
// repository). The bucket boundaries are a pure function of the value —
// 32 sub-buckets per power of two, values below 32 recorded exactly — so
// two histograms built from the same observations in any order, on any
// worker, are identical field for field, and merging is exact integer
// addition. Memory is constant: no observation is ever stored, which is
// what lets a million-client sweep report percentiles in O(1) space per
// operation.
//
// The relative quantization error of a bucket is below 1/32 (~3.1%);
// Quantile returns a bucket's upper boundary, so reported percentiles
// never understate the observed latency by more than one bucket width.
//
// The zero value is an empty histogram ready to use.
type Histogram struct {
	counts [histBuckets]uint64
	n      uint64
	sum    int64
	max    int64
}

// Log-bucket geometry: histSubBits sub-buckets per octave. Values in
// [0, histSubBuckets) map to their own exact bucket; a value v >= 32 with
// top bit e maps to octave e-histSubBits+1, sub-bucket given by the
// histSubBits bits below the top bit.
const (
	histSubBits    = 5
	histSubBuckets = 1 << histSubBits // 32
	// histBuckets covers every non-negative int64: octave 0 (exact
	// values 0..31) plus 58 log octaves of 32 sub-buckets.
	histBuckets = histSubBuckets * (64 - histSubBits + 1)
)

// bucketOf maps a non-negative value to its bucket index.
func bucketOf(v int64) int {
	if v < histSubBuckets {
		return int(v)
	}
	e := bits.Len64(uint64(v)) - 1 // top set bit, >= histSubBits
	shift := uint(e - histSubBits)
	// v>>shift lies in [32, 64), so octave e's buckets follow octave
	// e-1's contiguously.
	return histSubBuckets*(e-histSubBits) + int(uint64(v)>>shift)
}

// bucketUpper returns the largest value mapping to bucket i (the
// boundary Quantile reports).
func bucketUpper(i int) int64 {
	return bucketLower(i) + bucketWidth(i) - 1
}

// bucketLower returns the smallest value mapping to bucket i (the
// boundary QuantileLower reports).
func bucketLower(i int) int64 {
	if i < histSubBuckets {
		return int64(i)
	}
	t := i / histSubBuckets // >= 1; the octave offset
	shift := uint(t - 1)
	s := int64(i - histSubBuckets*(t-1)) // in [32, 64)
	return s << shift
}

// bucketWidth returns the number of values bucket i covers: 1 in the
// exact octave, doubling each octave after.
func bucketWidth(i int) int64 {
	if i < histSubBuckets {
		return 1
	}
	return int64(1) << uint(i/histSubBuckets-1)
}

// BucketIndex maps a value to its histogram bucket index — the same
// function Observe applies, exported so exemplars can be attached to the
// bucket their latency lands in. Negative values clamp to zero, exactly
// as Observe does.
func BucketIndex(v int64) int {
	if v < 0 {
		v = 0
	}
	return bucketOf(v)
}

// BucketUpperBound returns the largest value mapping to bucket i — the
// inclusive upper boundary Quantile reports, and the `le` boundary a
// Prometheus exposition of this histogram uses.
func BucketUpperBound(i int) int64 { return bucketUpper(i) }

// Bucket is one non-empty histogram bucket: its index, inclusive upper
// boundary, and count.
type Bucket struct {
	Index int
	Upper int64
	Count uint64
}

// Buckets returns the non-empty buckets in ascending boundary order.
// Cumulating the counts reproduces exactly the ranks Quantile walks —
// the shape a Prometheus histogram exposition needs.
func (h *Histogram) Buckets() []Bucket {
	var out []Bucket
	for i, c := range h.counts {
		if c != 0 {
			out = append(out, Bucket{Index: i, Upper: bucketUpper(i), Count: c})
		}
	}
	return out
}

// Observe records one observation. Negative values clamp to zero (the
// histogram holds durations, and virtual time is monotonic — a negative
// duration is a model bug upstream, not a value to bucket).
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[bucketOf(v)]++
	h.n++
	h.sum += v
	if v > h.max {
		h.max = v
	}
}

// N returns the number of observations.
func (h *Histogram) N() uint64 { return h.n }

// Sum returns the exact sum of all observations (negatives clamped).
func (h *Histogram) Sum() int64 { return h.sum }

// Max returns the largest observation, exactly (not bucket-quantized).
func (h *Histogram) Max() int64 { return h.max }

// Mean returns the exact arithmetic mean, or 0 when empty.
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.n)
}

// Quantile returns the q-quantile (0 <= q <= 1) by the nearest-rank
// rule: the upper boundary of the bucket holding the ceil(q*N)-th
// smallest observation. Q(0) is the first bucket's boundary, Q(1) the
// last's. An empty histogram returns 0. Out-of-range q panics: a caller
// asking for p-120 has a bug worth surfacing.
//
// The upper boundary is the conservative choice for latency reporting —
// a quoted p99 is never below the true p99 — but it overstates by up to
// one bucket width. QuantileLower returns the same bucket's lower
// boundary; together they bracket the exact quantile:
//
//	QuantileLower(q) <= exact q-quantile <= Quantile(q)
//
// with the bracket width under 1/32 (~3.1%) of the value, and zero for
// values below 32, which occupy exact unit buckets.
func (h *Histogram) Quantile(q float64) int64 {
	i := h.quantileBucket(q)
	if i < 0 {
		return 0
	}
	return bucketUpper(i)
}

// QuantileLower returns the lower boundary of the bucket holding the
// nearest-rank observation — the optimistic end of the bracket Quantile
// documents. An empty histogram returns 0; out-of-range q panics.
func (h *Histogram) QuantileLower(q float64) int64 {
	i := h.quantileBucket(q)
	if i < 0 {
		return 0
	}
	return bucketLower(i)
}

// quantileBucket finds the bucket holding the nearest-rank observation
// for q, or -1 when the histogram is empty.
func (h *Histogram) quantileBucket(q float64) int {
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("stats: quantile %v outside [0,1]", q))
	}
	if h.n == 0 {
		return -1
	}
	// Nearest rank: k in [1, n].
	k := uint64(q * float64(h.n))
	if float64(k) < q*float64(h.n) {
		k++
	}
	if k < 1 {
		k = 1
	}
	if k > h.n {
		k = h.n
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum >= k {
			return i
		}
	}
	// Unreachable: counts sum to n.
	return histBuckets - 1
}

// Merge adds every bucket of o into h — exact integer addition, so
// merging per-shard histograms in any order yields the same result as
// observing the union directly.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil {
		return
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.n += o.n
	h.sum += o.sum
	if o.max > h.max {
		h.max = o.max
	}
}

// histogramJSON is the wire form: sparse [bucket, count] pairs in
// ascending bucket order (deterministic — no map iteration), plus the
// exact sum and max that buckets alone cannot reproduce.
type histogramJSON struct {
	N       uint64     `json:"n"`
	Sum     int64      `json:"sum"`
	Max     int64      `json:"max"`
	Buckets [][2]int64 `json:"buckets"`
}

// MarshalJSON encodes the histogram sparsely and deterministically:
// identical histograms marshal to identical bytes.
func (h *Histogram) MarshalJSON() ([]byte, error) {
	enc := histogramJSON{N: h.n, Sum: h.sum, Max: h.max}
	for i, c := range h.counts {
		if c != 0 {
			enc.Buckets = append(enc.Buckets, [2]int64{int64(i), int64(c)})
		}
	}
	return json.Marshal(enc)
}

// UnmarshalJSON restores a histogram from its wire form. A round trip
// reproduces the histogram field for field.
func (h *Histogram) UnmarshalJSON(data []byte) error {
	var enc histogramJSON
	if err := json.Unmarshal(data, &enc); err != nil {
		return err
	}
	*h = Histogram{n: enc.N, sum: enc.Sum, max: enc.Max}
	for _, b := range enc.Buckets {
		if b[0] < 0 || b[0] >= histBuckets {
			return fmt.Errorf("stats: histogram bucket %d outside [0,%d)", b[0], histBuckets)
		}
		if b[1] < 0 {
			return fmt.Errorf("stats: negative histogram count %d", b[1])
		}
		h.counts[b[0]] = uint64(b[1])
	}
	return nil
}
