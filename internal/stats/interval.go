package stats

import "math"

// Confidence intervals for benchmark samples. The paper reports only
// mean and standard deviation; a modern reproduction should also state
// how tightly the twenty-run protocol pins the mean, so the report adds
// a 95% Student-t interval.

// tTable95 holds two-sided 95% critical values of Student's t for ν
// degrees of freedom (1-based index; ν ≥ 30 uses the normal limit).
var tTable95 = []float64{
	0, // ν=0 unused
	12.706, 4.303, 3.182, 2.776, 2.571,
	2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131,
	2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060,
	2.056, 2.052, 2.048, 2.045, 2.042,
}

// tCritical95 returns the two-sided 95% t value for ν degrees of freedom.
func tCritical95(nu int) float64 {
	if nu <= 0 {
		return math.NaN()
	}
	if nu < len(tTable95) {
		return tTable95[nu]
	}
	return 1.960 // normal limit
}

// ConfidenceInterval95 returns the half-width of the 95% confidence
// interval of the sample mean (mean ± half). It returns 0 for samples of
// fewer than two observations.
func (s *Sample) ConfidenceInterval95() float64 {
	n := s.N()
	if n < 2 {
		return 0
	}
	return tCritical95(n-1) * s.StdDev() / math.Sqrt(float64(n))
}

// MeanWithin95 reports whether v lies inside the sample mean's 95%
// confidence interval. Used by EXPERIMENTS.md tooling to flag where the
// simulation's mean is statistically distinguishable from the paper's
// reported value (which, given deliberate calibration, it usually is not
// for the fitted tables).
func (s *Sample) MeanWithin95(v float64) bool {
	half := s.ConfidenceInterval95()
	d := s.Mean() - v
	if d < 0 {
		d = -d
	}
	return d <= half
}
