// Package stats implements the summary statistics the paper reports for
// every benchmark: the mean over twenty runs, the standard deviation
// expressed as a percentage of the mean, and the "Norm." column that ranks
// systems proportionally against the best performer.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Sample accumulates observations from repeated benchmark runs.
type Sample struct {
	values []float64
}

// Add appends one observation.
func (s *Sample) Add(v float64) { s.values = append(s.values, v) }

// N returns the number of observations.
func (s *Sample) N() int { return len(s.values) }

// Values returns a copy of the observations in insertion order.
func (s *Sample) Values() []float64 {
	out := make([]float64, len(s.values))
	copy(out, s.values)
	return out
}

// Mean returns the arithmetic mean, or 0 for an empty sample.
func (s *Sample) Mean() float64 {
	if len(s.values) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s.values {
		sum += v
	}
	return sum / float64(len(s.values))
}

// StdDev returns the sample standard deviation (n-1 denominator), or 0 for
// samples of fewer than two observations.
func (s *Sample) StdDev() float64 {
	n := len(s.values)
	if n < 2 {
		return 0
	}
	mean := s.Mean()
	sum := 0.0
	for _, v := range s.values {
		d := v - mean
		sum += d * d
	}
	return math.Sqrt(sum / float64(n-1))
}

// RelStdDev returns the standard deviation as a fraction of the mean — the
// quantity the paper's "Std Dev" columns report (as a percentage). It
// returns 0 if the mean is 0.
func (s *Sample) RelStdDev() float64 {
	m := s.Mean()
	if m == 0 {
		return 0
	}
	return s.StdDev() / math.Abs(m)
}

// Min returns the smallest observation, or 0 for an empty sample.
func (s *Sample) Min() float64 {
	if len(s.values) == 0 {
		return 0
	}
	min := s.values[0]
	for _, v := range s.values[1:] {
		if v < min {
			min = v
		}
	}
	return min
}

// Max returns the largest observation, or 0 for an empty sample.
func (s *Sample) Max() float64 {
	if len(s.values) == 0 {
		return 0
	}
	max := s.values[0]
	for _, v := range s.values[1:] {
		if v > max {
			max = v
		}
	}
	return max
}

// Median returns the median observation, or 0 for an empty sample.
func (s *Sample) Median() float64 {
	n := len(s.values)
	if n == 0 {
		return 0
	}
	sorted := s.Values()
	sort.Float64s(sorted)
	if n%2 == 1 {
		return sorted[n/2]
	}
	return (sorted[n/2-1] + sorted[n/2]) / 2
}

// String summarises the sample for debugging.
func (s *Sample) String() string {
	return fmt.Sprintf("n=%d mean=%.4g σ=%.2f%%", s.N(), s.Mean(), 100*s.RelStdDev())
}

// Direction states whether smaller or larger values are better, which
// controls how the Norm. column is computed.
type Direction int

const (
	// LowerIsBetter applies to latencies and elapsed times (Tables 2, 3, 6,
	// 7 and the create/delete figure).
	LowerIsBetter Direction = iota
	// HigherIsBetter applies to bandwidths and rates (Tables 4, 5 and the
	// bandwidth figures).
	HigherIsBetter
)

// Normalize computes the paper's "Norm." column: each value expressed as a
// proportional speed relative to the best value, so the best system scores
// 1.00 and slower systems score below 1. For latencies the ratio is
// best/value; for bandwidths it is value/best. Non-positive values
// normalise to 0.
func Normalize(values []float64, dir Direction) []float64 {
	out := make([]float64, len(values))
	best, ok := bestOf(values, dir)
	if !ok {
		return out
	}
	for i, v := range values {
		if v <= 0 {
			continue
		}
		switch dir {
		case LowerIsBetter:
			out[i] = best / v
		case HigherIsBetter:
			out[i] = v / best
		}
	}
	return out
}

// bestOf returns the best positive value under dir, and whether one exists.
func bestOf(values []float64, dir Direction) (float64, bool) {
	best := 0.0
	found := false
	for _, v := range values {
		if v <= 0 {
			continue
		}
		if !found {
			best, found = v, true
			continue
		}
		if dir == LowerIsBetter && v < best {
			best = v
		}
		if dir == HigherIsBetter && v > best {
			best = v
		}
	}
	return best, found
}

// Ratio returns a/b, or 0 when b is 0. It is a convenience for
// paper-vs-measured comparisons in EXPERIMENTS.md generation.
func Ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
