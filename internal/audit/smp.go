package audit

// SMP audits (DESIGN.md §16): the lock-contention runs carry the same
// double-entry accounting as the server model, so the same evaluator
// machinery cross-checks them — per-CPU ledger exactness (the SMP
// analogue of the utilization law, with the spin ledger as a third,
// explicitly-accounted column) and lock flow balance (every acquisition
// released, every block woken, every contended wait observed).

import (
	"fmt"

	"repro/internal/sim"
)

// LockFacts is one lock's counter set, as the kernel accumulated it.
type LockFacts struct {
	Acquires    uint64
	Releases    uint64
	Contended   uint64
	Uncontended uint64
	Blocks      uint64
	Wakeups     uint64
	// WaitCount is the lock's wait-histogram observation count.
	WaitCount uint64
}

// SMPInput bundles one SMP run's evidence.
type SMPInput struct {
	// System labels the personality (and lock kind) under audit.
	System string
	// NCPU and Threads size the run.
	NCPU    int
	Threads int
	// Elapsed is the machine's total virtual time; Busy, Idle and Spin
	// are the per-CPU ledgers (each len NCPU).
	Elapsed sim.Duration
	Busy    []sim.Duration
	Idle    []sim.Duration
	Spin    []sim.Duration
	// Locks carries the flow counters of every lock in the run.
	Locks []LockFacts
}

// EvaluateSMP runs the SMP invariants over one run's evidence. The
// Report's Clients field carries the CPU count and Nfsd the thread
// count (the JSON keys keep their names so every audit consumer parses
// one shape; the CLI labels the columns per exhibit).
func EvaluateSMP(in SMPInput) *Report {
	rep := &Report{System: in.System, Clients: in.NCPU, Nfsd: in.Threads}
	ev := &evaluator{rep: rep}

	// Per-CPU ledger exactness: busy + idle + spin == elapsed, to the
	// nanosecond, for every CPU. This is the house invariant that makes
	// the spin-vs-sleep comparison trustworthy — spin waste can't hide
	// in idle time or leak out of the accounting.
	for c := 0; c < in.NCPU; c++ {
		sum := in.Busy[c] + in.Idle[c] + in.Spin[c]
		ev.exact("cpu-ledger", "run", -1, int64(sum), int64(in.Elapsed),
			fmt.Sprintf("cpu %d: busy %v + idle %v + spin %v = %v vs elapsed %v",
				c, in.Busy[c], in.Idle[c], in.Spin[c], sum, in.Elapsed))
		ev.bound("cpu-utilization", "run", -1, int64(in.Busy[c]), int64(in.Elapsed),
			fmt.Sprintf("cpu %d: busy %v ≤ elapsed %v", c, in.Busy[c], in.Elapsed))
	}

	// Lock flow balance: a drained machine holds nothing, so every
	// acquisition was released, every acquisition was either contended
	// or not, every block got exactly one wakeup, and the wait histogram
	// observed exactly the contended acquisitions.
	for i, l := range in.Locks {
		ev.exact("lock-flow", "run", -1, int64(l.Acquires), int64(l.Releases),
			fmt.Sprintf("lock %d: acquires %d = releases %d", i, l.Acquires, l.Releases))
		ev.exact("lock-flow", "run", -1, int64(l.Contended+l.Uncontended), int64(l.Acquires),
			fmt.Sprintf("lock %d: contended %d + uncontended %d = acquires %d",
				i, l.Contended, l.Uncontended, l.Acquires))
		ev.exact("lock-flow", "run", -1, int64(l.Blocks), int64(l.Wakeups),
			fmt.Sprintf("lock %d: blocks %d = wakeups %d", i, l.Blocks, l.Wakeups))
		ev.exact("hist-ledger", "run", -1, int64(l.WaitCount), int64(l.Contended),
			fmt.Sprintf("lock %d: wait observations %d = contended acquires %d",
				i, l.WaitCount, l.Contended))
	}

	rank(ev.runChecks)
	rank(ev.violations)
	rep.Checks = ev.runChecks
	rep.Violations = ev.violations
	return rep
}
