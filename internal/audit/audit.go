// Package audit is the queueing-law audit engine (DESIGN.md §15): it
// cross-checks a model run's reported Result against independently
// collected evidence — occupancy area integrals, the request pool's
// free-list, per-client counter arrays, windowed time series, and
// exemplar lifecycles — and produces a machine-readable verdict report
// ranked worst-first.
//
// The deterministic simulator makes the classical queueing identities
// *exact*, not asymptotic: Little's law (L = λW) holds as an integer
// area identity ∫N(t)dt == Σ residence times, the utilization law
// (ρ = λS) as ∫busy(t)dt == total service time, and flow balance as
// arrivals == completions + sheds + in-flight, every term in exact
// virtual nanoseconds. A violation therefore never means "sampling
// noise"; it means the instrumentation or the model broke conservation,
// which is precisely what the audit exists to catch.
package audit

import (
	"fmt"
	"sort"

	"repro/internal/nfsserver"
	"repro/internal/obs"
	"repro/internal/stats"
)

// Check is one evaluated invariant instance. Lhs and Rhs are the two
// sides of the identity (or the value and its bound); for exact checks
// OK means Lhs == Rhs to the nanosecond.
type Check struct {
	// Invariant names the law, e.g. "little", "utilization",
	// "flow-balance", "hist-ledger", "exemplar-phase-sum".
	Invariant string `json:"invariant"`
	// Scope is "run" or "window"; Window is the window index for window
	// scope and -1 for run scope.
	Scope  string `json:"scope"`
	Window int    `json:"window"`
	// Detail states the identity with its concrete values.
	Detail string  `json:"detail"`
	Lhs    float64 `json:"lhs"`
	Rhs    float64 `json:"rhs"`
	AbsErr float64 `json:"abs_err"`
	RelErr float64 `json:"rel_err"`
	OK     bool    `json:"ok"`
}

// Report is one run's verdict: every run-scope check (ranked
// worst-first), every violation of any scope (ranked worst-first), and
// the total number of checks evaluated, window instances included.
type Report struct {
	System     string  `json:"system"`
	Clients    int     `json:"clients"`
	Nfsd       int     `json:"nfsd"`
	Evaluated  int     `json:"evaluated"`
	Failed     int     `json:"failed"`
	Checks     []Check `json:"checks"`
	Violations []Check `json:"violations"`
}

// OK reports whether every invariant held.
func (r *Report) OK() bool { return r.Failed == 0 }

// Input bundles one run's evidence. Series and Exemplars are optional;
// when present they widen the audit to per-window and per-request
// checks. ExemplarK is the reservoir bound Exemplars was built with.
type Input struct {
	System    string
	Res       *nfsserver.Result
	Facts     nfsserver.Facts
	Series    *obs.TimeSeries
	Exemplars []obs.ExemplarWindow
	ExemplarK int
}

type evaluator struct {
	rep        *Report
	violations []Check
	runChecks  []Check
}

// add records one evaluated check.
func (ev *evaluator) add(c Check) {
	ev.rep.Evaluated++
	if !c.OK {
		ev.rep.Failed++
		ev.violations = append(ev.violations, c)
	}
	if c.Scope == "run" {
		ev.runChecks = append(ev.runChecks, c)
	}
}

// relErr is |l−r| over the larger magnitude (or 1 when both are ~0).
func relErr(l, r float64) float64 {
	d := l - r
	if d < 0 {
		d = -d
	}
	m := l
	if m < 0 {
		m = -m
	}
	if n := r; n < 0 && -n > m {
		m = -n
	} else if n > m {
		m = n
	}
	if m < 1 {
		m = 1
	}
	return d / m
}

// exact records an integer identity lhs == rhs.
func (ev *evaluator) exact(invariant, scope string, window int, lhs, rhs int64, detail string) {
	l, r := float64(lhs), float64(rhs)
	ev.add(Check{Invariant: invariant, Scope: scope, Window: window,
		Detail: detail, Lhs: l, Rhs: r,
		AbsErr: abs(l - r), RelErr: relErr(l, r), OK: lhs == rhs})
}

// bound records an inequality lhs <= rhs; the error is the overshoot.
func (ev *evaluator) bound(invariant, scope string, window int, lhs, rhs int64, detail string) {
	over := lhs - rhs
	if over < 0 {
		over = 0
	}
	ev.add(Check{Invariant: invariant, Scope: scope, Window: window,
		Detail: detail, Lhs: float64(lhs), Rhs: float64(rhs),
		AbsErr: float64(over), RelErr: relErr(float64(lhs), float64(rhs)) * b2f(over > 0),
		OK: over == 0})
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// rank orders checks worst-first: failures before passes, then larger
// relative error, larger absolute error, invariant name, window.
func rank(cs []Check) {
	sort.SliceStable(cs, func(i, j int) bool {
		a, b := cs[i], cs[j]
		if a.OK != b.OK {
			return !a.OK
		}
		if a.RelErr != b.RelErr {
			return a.RelErr > b.RelErr
		}
		if a.AbsErr != b.AbsErr {
			return a.AbsErr > b.AbsErr
		}
		if a.Invariant != b.Invariant {
			return a.Invariant < b.Invariant
		}
		return a.Window < b.Window
	})
}

// Evaluate runs every applicable invariant over one run's evidence.
func Evaluate(in Input) *Report {
	res, f := in.Res, in.Facts
	rep := &Report{System: in.System, Clients: res.Clients, Nfsd: res.Nfsd}
	ev := &evaluator{rep: rep}

	// Flow balance: every arrival is completed, shed, or still holds a
	// pool slot; pool occupancy decomposes into queue+service and
	// backoff rings; attempts decompose into first sends plus resends.
	inflight := int64(f.PoolCap - f.PoolFree)
	ev.exact("flow-balance", "run", -1,
		int64(res.Arrivals), int64(res.Completed+res.Shed)+inflight,
		fmt.Sprintf("arrivals %d == completed %d + shed %d + in-flight %d",
			res.Arrivals, res.Completed, res.Shed, inflight))
	ev.exact("flow-balance.pool", "run", -1,
		inflight, int64(f.InSystem+f.RingPending),
		fmt.Sprintf("pool occupancy %d == in-system %d + ring-pending %d",
			inflight, f.InSystem, f.RingPending))
	ev.exact("flow-balance.attempts", "run", -1,
		int64(res.Attempts), int64(res.Arrivals+f.Resends),
		fmt.Sprintf("attempts %d == arrivals %d + resends %d",
			res.Attempts, res.Arrivals, f.Resends))

	// Client balance: the per-client counter arrays, summed, must agree
	// with the run counters.
	ev.exact("client-balance.issued", "run", -1, int64(f.ClIssued), int64(res.Arrivals),
		fmt.Sprintf("Σ per-client issued %d == arrivals %d", f.ClIssued, res.Arrivals))
	ev.exact("client-balance.done", "run", -1, int64(f.ClDone), int64(res.Completed),
		fmt.Sprintf("Σ per-client done %d == completed %d", f.ClDone, res.Completed))
	ev.exact("client-balance.retrans", "run", -1, int64(f.ClRetrans), int64(res.Retransmits),
		fmt.Sprintf("Σ per-client retrans %d == retransmits %d", f.ClRetrans, res.Retransmits))

	// Little's law, exact: ∫N(t)dt over the run equals the summed
	// residence time of completed requests plus the residual of requests
	// still in flight. The float L = λW form is the same identity
	// divided through by the elapsed time.
	led := res.Ledger
	residence := int64(led.QueueWait + led.CPU + led.DiskWait + led.DiskTime)
	littleDetail := fmt.Sprintf("∫N dt %d ns == residence %d + residual %d ns", f.SysAreaNs, residence, f.SysResidualNs)
	if f.AuditEndNs > 0 && res.Completed > 0 {
		sec := float64(f.AuditEndNs) / 1e9
		L := float64(f.SysAreaNs) / float64(f.AuditEndNs)
		lam := float64(res.Completed) / sec
		W := float64(residence) / float64(res.Completed) / 1e9
		littleDetail += fmt.Sprintf(" (L %.4f, λW %.4f + residual)", L, lam*W)
	}
	ev.exact("little", "run", -1, f.SysAreaNs, residence+f.SysResidualNs, littleDetail)

	// Utilization law, exact: ∫busy(t)dt equals the ledger's total
	// service time plus the residual of in-service requests, and the
	// busy time decomposes into cpu + disk wait + disk.
	utilDetail := fmt.Sprintf("∫busy dt %d ns == busy %d + residual %d ns", f.BusyAreaNs, int64(res.Busy), f.BusyResidualNs)
	if f.AuditEndNs > 0 && f.Nfsd > 0 {
		rho := float64(f.BusyAreaNs) / (float64(f.AuditEndNs) * float64(f.Nfsd))
		utilDetail += fmt.Sprintf(" (ρ %.4f)", rho)
	}
	ev.exact("utilization", "run", -1, f.BusyAreaNs, int64(res.Busy)+f.BusyResidualNs, utilDetail)
	ev.exact("utilization.service", "run", -1,
		int64(res.Busy), int64(led.CPU+led.DiskWait+led.DiskTime),
		fmt.Sprintf("busy %d == cpu %d + disk wait %d + disk %d",
			res.Busy, led.CPU, led.DiskWait, led.DiskTime))

	// Histogram vs ledger: the latency histogram's exact sum and count
	// must match the phase ledger and the completion counter.
	ev.exact("hist-ledger.sum", "run", -1, res.Hist.Sum(), int64(led.Sum()),
		fmt.Sprintf("histogram sum %d ns == ledger sum %d ns", res.Hist.Sum(), led.Sum()))
	ev.exact("hist-ledger.count", "run", -1, int64(res.Hist.N()), int64(res.Completed),
		fmt.Sprintf("histogram n %d == completed %d", res.Hist.N(), res.Completed))

	if in.Series != nil {
		auditSeries(ev, res, f, in.Series)
	}
	auditExemplars(ev, in)

	rank(ev.runChecks)
	rank(ev.violations)
	rep.Checks = ev.runChecks
	rep.Violations = ev.violations
	return rep
}

// auditSeries checks the windowed time series against the run totals
// (each counter's per-window deltas must sum exactly to its ledger
// counter) and per window (flow balance; gauge maxima within capacity).
func auditSeries(ev *evaluator, res *nfsserver.Result, f nfsserver.Facts, ts *obs.TimeSeries) {
	for _, tc := range []struct {
		name string
		want int64
	}{
		{"nfs.arrivals", int64(res.Arrivals)},
		{"nfs.completed", int64(res.Completed)},
		{"nfs.queue_drops", int64(res.QueueDrops)},
		{"nfs.retransmits", int64(res.Retransmits)},
		{"nfs.shed", int64(res.Shed)},
		{"nfs.busy_ns", int64(res.Busy)},
		{"nfs.op_inflight", int64(f.PoolCap - f.PoolFree)},
	} {
		got, ok := ts.CounterTotal(tc.name)
		if !ok {
			continue
		}
		ev.exact("series-total", "run", -1, got, tc.want,
			fmt.Sprintf("Σ windows of %s %d == result %d", tc.name, got, tc.want))
	}

	// Windowed flow balance: within every window, arrivals minus
	// completions minus sheds equals the in-flight population change.
	series := func(name string) []int64 {
		for _, c := range ts.Counters {
			if c.Name == name {
				return c.Values
			}
		}
		return nil
	}
	arr, done, shed, flight := series("nfs.arrivals"), series("nfs.completed"), series("nfs.shed"), series("nfs.op_inflight")
	if arr != nil && done != nil && shed != nil && flight != nil {
		for w := 0; w < ts.Windows; w++ {
			lhs := arr[w] - done[w] - shed[w]
			if lhs == flight[w] {
				// Keep passing window checks out of the report body; they
				// still count as evaluated.
				ev.rep.Evaluated++
				continue
			}
			ev.exact("flow-balance.window", "window", w, lhs, flight[w],
				fmt.Sprintf("window %d: arrivals %d − completed %d − shed %d == Δin-flight %d",
					w, arr[w], done[w], shed[w], flight[w]))
		}
	}

	// Windowed histogram conservation: flushed windows decompose the
	// run histogram's exact count and sum.
	for _, h := range ts.Hists {
		if h.Name != "nfs.latency_ns" {
			continue
		}
		var n uint64
		var sum int64
		for _, w := range h.Windows {
			n += w.N
			sum += w.Sum
		}
		ev.exact("hist-windows.count", "run", -1, int64(n), int64(res.Hist.N()),
			fmt.Sprintf("Σ window counts %d == histogram n %d", n, res.Hist.N()))
		ev.exact("hist-windows.sum", "run", -1, sum, res.Hist.Sum(),
			fmt.Sprintf("Σ window sums %d == histogram sum %d ns", sum, res.Hist.Sum()))
	}

	// Capacity bounds: the sampled queue depth never exceeds the ingress
	// queue capacity, nor busy slots the nfsd count.
	for _, g := range ts.Gauges {
		var cap int64
		var inv string
		switch g.Name {
		case "nfs.queue_depth":
			cap, inv = int64(f.QueueCap), "queue-bound"
		case "nfs.busy_slots":
			cap, inv = int64(f.Nfsd), "slot-bound"
		default:
			continue
		}
		var worst int64
		worstW := -1
		for w, v := range g.Max {
			if v > worst || worstW < 0 {
				worst, worstW = v, w
			}
			if v > cap {
				ev.bound(inv, "window", w, v, cap,
					fmt.Sprintf("window %d: max %s %d <= capacity %d", w, g.Name, v, cap))
			} else {
				ev.rep.Evaluated++
			}
		}
		ev.bound(inv, "run", -1, worst, cap,
			fmt.Sprintf("max %s %d (window %d) <= capacity %d", g.Name, worst, worstW, cap))
	}
}

// auditExemplars checks every retained exemplar: the phase sum equals
// the recorded lifetime exactly, the attached bucket is the bucket its
// latency lands in, and no window exceeds the reservoir bound.
func auditExemplars(ev *evaluator, in Input) {
	if len(in.Exemplars) == 0 {
		return
	}
	for _, w := range in.Exemplars {
		if in.ExemplarK > 0 {
			ev.bound("exemplar-k", "window", w.Window,
				int64(len(w.Exemplars)), int64(in.ExemplarK),
				fmt.Sprintf("window %d retains %d exemplars <= k %d", w.Window, len(w.Exemplars), in.ExemplarK))
		}
		for _, e := range w.Exemplars {
			ev.exact("exemplar-phase-sum", "window", w.Window, e.PhaseSum(), e.LatencyNs,
				fmt.Sprintf("request %d (%s): wire %d + rto %d + queue %d + cpu %d + disk wait %d + disk %d == lifetime %d ns",
					e.ID, e.Class, e.WireNs, e.RTONs, e.QueueNs, e.CPUNs, e.DiskWaitNs, e.DiskNs, e.LatencyNs))
			ev.exact("exemplar-bucket", "window", w.Window,
				int64(e.Bucket), int64(stats.BucketIndex(e.LatencyNs)),
				fmt.Sprintf("request %d: bucket %d == BucketIndex(%d) %d",
					e.ID, e.Bucket, e.LatencyNs, stats.BucketIndex(e.LatencyNs)))
			ev.exact("exemplar-lifetime", "window", w.Window, e.EndNs-e.IssueNs, e.LatencyNs,
				fmt.Sprintf("request %d: end %d − issue %d == latency %d ns", e.ID, e.EndNs, e.IssueNs, e.LatencyNs))
		}
	}
}
