package audit

import (
	"encoding/json"
	"testing"

	"repro/internal/fault"
	"repro/internal/nfsserver"
	"repro/internal/obs"
	"repro/internal/osprofile"
	"repro/internal/sim"
)

func lossyInjector(prob float64, seed uint64) *fault.NetInjector {
	plan := &fault.Plan{}
	plan.Net.UDPLossProb = prob
	return fault.New(plan, sim.NewRNG(seed)).Net
}

// runOne executes one instrumented server run and audits it.
func runOne(t *testing.T, cfg nfsserver.Config) (*Report, Input) {
	t.Helper()
	s := nfsserver.New(cfg)
	smp := obs.NewSampler(10 * sim.Millisecond)
	s.SetSampler(smp)
	ex := obs.NewExemplars(cfg.Seed, 4, 10*sim.Millisecond)
	s.SetExemplars(ex)
	res := s.Run()
	ts := smp.Snapshot(sim.Time(res.Elapsed))
	in := Input{System: cfg.Profile.Name, Res: res, Facts: s.Facts(),
		Series: &ts, Exemplars: ex.Snapshot(), ExemplarK: 4}
	return Evaluate(in), in
}

// A correct model must audit clean — every invariant exact — both on a
// lossless run and under wire loss with drops, retransmits, and sheds.
func TestAuditCleanRunsPass(t *testing.T) {
	for name, cfg := range map[string]nfsserver.Config{
		"clean": {Profile: osprofile.Linux128(), Clients: 500, Seed: 11, TargetOps: 2000},
		"lossy": {Profile: osprofile.Solaris24(), Clients: 200000, Seed: 17,
			TargetOps: 4000, AttemptBudget: 40000, QueueCap: 64,
			Faults: lossyInjector(0.05, 17)},
	} {
		t.Run(name, func(t *testing.T) {
			rep, _ := runOne(t, cfg)
			if !rep.OK() {
				j, _ := json.MarshalIndent(rep.Violations, "", "  ")
				t.Fatalf("audit failed %d/%d checks:\n%s", rep.Failed, rep.Evaluated, j)
			}
			if rep.Evaluated < 20 {
				t.Fatalf("only %d checks evaluated; series/exemplar audits missing", rep.Evaluated)
			}
			if len(rep.Checks) == 0 {
				t.Fatal("no run-scope checks reported")
			}
			for _, c := range rep.Checks {
				if c.Scope != "run" || c.Window != -1 {
					t.Fatalf("run check with scope %q window %d", c.Scope, c.Window)
				}
			}
		})
	}
}

// Corrupting the evidence must be detected and ranked worst-first.
func TestAuditDetectsCorruption(t *testing.T) {
	cfg := nfsserver.Config{Profile: osprofile.Linux128(), Clients: 500, Seed: 11, TargetOps: 2000}
	_, in := runOne(t, cfg)

	// A small and a large corruption: completed off by one (breaks flow
	// balance and client balance) and the system area halved (breaks
	// Little's law badly).
	res := *in.Res
	res.Completed++
	f := in.Facts
	f.SysAreaNs /= 2
	rep := Evaluate(Input{System: in.System, Res: &res, Facts: f,
		Series: in.Series, Exemplars: in.Exemplars, ExemplarK: in.ExemplarK})
	if rep.OK() {
		t.Fatal("corrupted run audited clean")
	}
	byName := map[string]bool{}
	for _, v := range rep.Violations {
		byName[v.Invariant] = true
	}
	for _, want := range []string{"flow-balance", "little", "client-balance.done", "hist-ledger.count"} {
		if !byName[want] {
			t.Fatalf("corruption not caught by %q; violations: %v", want, byName)
		}
	}
	// Worst first: the halved area (rel err ~0.5) must outrank the
	// off-by-one counters.
	if rep.Violations[0].Invariant != "little" {
		t.Fatalf("worst violation is %q (rel %v), want little",
			rep.Violations[0].Invariant, rep.Violations[0].RelErr)
	}
	for i := 1; i < len(rep.Violations); i++ {
		if rep.Violations[i].RelErr > rep.Violations[i-1].RelErr {
			t.Fatal("violations not ranked worst-first")
		}
	}
}

// A broken exemplar must fail the per-request checks.
func TestAuditDetectsBrokenExemplar(t *testing.T) {
	cfg := nfsserver.Config{Profile: osprofile.Linux128(), Clients: 500, Seed: 11, TargetOps: 2000}
	_, in := runOne(t, cfg)
	exs := append([]obs.ExemplarWindow(nil), in.Exemplars...)
	if len(exs) == 0 || len(exs[0].Exemplars) == 0 {
		t.Fatal("no exemplars to corrupt")
	}
	exs[0].Exemplars = append([]obs.Exemplar(nil), exs[0].Exemplars...)
	exs[0].Exemplars[0].CPUNs += 7
	rep := Evaluate(Input{System: in.System, Res: in.Res, Facts: in.Facts,
		Series: in.Series, Exemplars: exs, ExemplarK: in.ExemplarK})
	found := false
	for _, v := range rep.Violations {
		if v.Invariant == "exemplar-phase-sum" {
			found = true
		}
	}
	if !found {
		t.Fatalf("phase-sum corruption not caught; %d violations", len(rep.Violations))
	}
}

// The report must marshal deterministically (no map iteration).
func TestAuditReportDeterministicJSON(t *testing.T) {
	cfg := nfsserver.Config{Profile: osprofile.Solaris24(), Clients: 200000, Seed: 17,
		TargetOps: 4000, AttemptBudget: 40000, QueueCap: 64,
		Faults: lossyInjector(0.05, 17)}
	a, _ := runOne(t, cfg)
	cfg.Faults = lossyInjector(0.05, 17)
	b, _ := runOne(t, cfg)
	aj, _ := json.Marshal(a)
	bj, _ := json.Marshal(b)
	if string(aj) != string(bj) {
		t.Fatal("identical runs produced different audit reports")
	}
}
