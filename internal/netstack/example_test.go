package netstack_test

import (
	"fmt"

	"repro/internal/netstack"
	"repro/internal/osprofile"
)

// Example reproduces Table 5's headline: Linux 1.2.8's one-packet TCP
// window throttles it to a fraction of FreeBSD's bandwidth, and widening
// the window (ablation A5) recovers the loss.
func Example() {
	const transfer = 3 << 20 // lmbench bw_tcp: 3 MB

	fb := netstack.MustTCP(osprofile.FreeBSD205())
	fmt.Printf("FreeBSD, %2d-packet window: %5.1f Mb/s\n",
		fb.Window(), netstack.BandwidthMbps(transfer, fb.Transfer(transfer)))

	lx := netstack.MustTCP(osprofile.Linux128())
	fmt.Printf("Linux,   %2d-packet window: %5.1f Mb/s\n",
		lx.Window(), netstack.BandwidthMbps(transfer, lx.Transfer(transfer)))

	lx.WindowOverride = 16
	fmt.Printf("Linux,   %2d-packet window: %5.1f Mb/s\n",
		lx.Window(), netstack.BandwidthMbps(transfer, lx.Transfer(transfer)))

	// Output:
	// FreeBSD, 11-packet window:  66.1 Mb/s
	// Linux,    1-packet window:  24.8 Mb/s
	// Linux,   16-packet window:  44.5 Mb/s
}
