package netstack

import (
	"testing"

	"repro/internal/obs"
	"repro/internal/osprofile"
)

// TransferObserved returns the same elapsed time as Transfer, and its
// stats decompose that time exactly: SegTime + AckTime + SwitchTime is
// the elapsed total, on every personality.
func TestTransferObservedMatchesTransfer(t *testing.T) {
	const total = 4 << 20
	for _, p := range osprofile.All() {
		tcp := MustTCP(p)
		plain := tcp.Transfer(total)
		elapsed, st := tcp.TransferObserved(total, nil)
		if elapsed != plain {
			t.Errorf("%s: observed %v != plain %v", p.Name, elapsed, plain)
		}
		if sum := st.SegTime + st.AckTime + st.SwitchTime; sum != elapsed {
			t.Errorf("%s: stat sum %v != elapsed %v (%+v)", p.Name, sum, elapsed, st)
		}
		if st.Segments == 0 || st.Acks == 0 || st.Switches != 2*st.Acks {
			t.Errorf("%s: implausible counts %+v", p.Name, st)
		}
	}
}

// A window of one packet stalls on every segment but the last — the
// Table 5 Linux collapse as a counter.
func TestWindowStallsAtWindowOne(t *testing.T) {
	tcp := MustTCP(osprofile.FreeBSD205())
	tcp.WindowOverride = 1
	const total = 64 << 10
	_, st := tcp.TransferObserved(total, nil)
	if st.WindowStalls != st.Segments-1 {
		t.Fatalf("window 1: stalls %d, segments %d; want stalls = segments-1", st.WindowStalls, st.Segments)
	}
}

// Tracing a transfer emits balanced spans on the sender and receiver
// tracks without changing the result.
func TestTransferObservedSpans(t *testing.T) {
	tcp := MustTCP(osprofile.Solaris24())
	const total = 256 << 10
	plain, _ := tcp.TransferObserved(total, nil)

	rec := obs.NewRecorder(nil)
	traced, st := tcp.TransferObserved(total, rec)
	if traced != plain {
		t.Fatalf("tracing changed elapsed: %v vs %v", traced, plain)
	}
	var begins, ends, bursts uint64
	for _, e := range rec.Events() {
		switch e.Kind {
		case obs.EvBegin:
			begins++
			if e.Name == "send burst" {
				bursts++
			}
		case obs.EvEnd:
			ends++
		}
	}
	if begins == 0 || begins != ends {
		t.Fatalf("unbalanced spans: %d begins, %d ends", begins, ends)
	}
	if bursts == 0 {
		t.Fatal("no send bursts recorded")
	}
	tracks := rec.Tracks()
	found := 0
	for _, tr := range tracks {
		if tr == "tcp sender" || tr == "tcp receiver" {
			found++
		}
	}
	if found != 2 {
		t.Fatalf("missing tcp tracks in %v", tracks)
	}

	reg := obs.NewRegistry()
	st.FoldMetrics(reg, "tcp.")
	if v, ok := reg.Snapshot().Get("tcp.segments"); !ok || v != float64(st.Segments) {
		t.Fatalf("tcp.segments = %v, want %d", v, st.Segments)
	}
}

// The UDP breakdown's parts sum to PacketTime exactly.
func TestUDPPacketBreakdown(t *testing.T) {
	for _, p := range osprofile.All() {
		u := MustUDP(p)
		for _, size := range []int{64, 1024, 8192} {
			b := u.PacketBreakdown(size)
			if b.Total() != u.PacketTime(size) {
				t.Errorf("%s/%d: breakdown %v != packet time %v", p.Name, size, b.Total(), u.PacketTime(size))
			}
			if b.PerPacket == 0 || b.Syscall == 0 {
				t.Errorf("%s/%d: empty components %+v", p.Name, size, b)
			}
		}
	}
}
